// lamo_report_check — validates a JSON run report written by `lamo
// --report` against the schema documented in docs/FORMATS.md. Exits 0 when
// every required key is present with the right shape, 1 with a diagnostic
// otherwise. Extra arguments name counters that must be present *and*
// nonzero. Used by the report_schema ctest; handy interactively too:
//
//   lamo mine --graph g.txt --report r.json
//   lamo_report_check r.json esu.subgraphs
#include <cstdio>
#include <string>

#include "obs/json.h"

namespace lamo {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "report check failed: %s\n", message.c_str());
  return 1;
}

const JsonValue* RequireMember(const JsonValue& object, const char* key,
                               JsonValue::Type type, int* rc) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    *rc = Fail(std::string("missing key \"") + key + "\"");
    return nullptr;
  }
  if (value->type != type) {
    *rc = Fail(std::string("key \"") + key + "\" has the wrong type");
    return nullptr;
  }
  return value;
}

// A phase node needs name/wall_ms/children, recursively.
bool CheckPhase(const JsonValue& phase, int* rc) {
  if (RequireMember(phase, "name", JsonValue::Type::kString, rc) == nullptr)
    return false;
  if (RequireMember(phase, "wall_ms", JsonValue::Type::kNumber, rc) == nullptr)
    return false;
  const JsonValue* children =
      RequireMember(phase, "children", JsonValue::Type::kArray, rc);
  if (children == nullptr) return false;
  for (const JsonValue& child : children->items) {
    if (!CheckPhase(child, rc)) return false;
  }
  return true;
}

int Check(const std::string& path, int num_required, char** required) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Fail("cannot open " + path);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);

  JsonValue report;
  std::string error;
  if (!ParseJson(text, &report, &error)) return Fail("bad JSON: " + error);
  if (!report.is_object()) return Fail("top level is not an object");

  int rc = 0;
  const JsonValue* version = RequireMember(
      report, "lamo_report_version", JsonValue::Type::kNumber, &rc);
  if (version != nullptr && version->number_value != 1.0) {
    return Fail("unsupported lamo_report_version");
  }
  RequireMember(report, "command", JsonValue::Type::kString, &rc);
  RequireMember(report, "threads", JsonValue::Type::kNumber, &rc);
  RequireMember(report, "wall_ms", JsonValue::Type::kNumber, &rc);
  const JsonValue* phases =
      RequireMember(report, "phases", JsonValue::Type::kArray, &rc);
  const JsonValue* counters =
      RequireMember(report, "counters", JsonValue::Type::kObject, &rc);
  RequireMember(report, "gauges", JsonValue::Type::kObject, &rc);
  const JsonValue* workers =
      RequireMember(report, "workers", JsonValue::Type::kArray, &rc);
  if (rc != 0) return rc;

  for (const JsonValue& phase : phases->items) {
    if (!CheckPhase(phase, &rc)) return rc;
  }
  for (const auto& [name, value] : counters->members) {
    if (!value.is_number()) {
      return Fail("counter \"" + name + "\" not a number");
    }
  }
  for (const JsonValue& worker : workers->items) {
    if (RequireMember(worker, "name", JsonValue::Type::kString, &rc) ==
        nullptr)
      return rc;
    if (RequireMember(worker, "tasks", JsonValue::Type::kNumber, &rc) ==
        nullptr)
      return rc;
    if (RequireMember(worker, "counters", JsonValue::Type::kObject, &rc) ==
        nullptr)
      return rc;
  }

  // Demanded counters prove the pipeline recorded real work, not just a
  // well-shaped empty report.
  for (int i = 0; i < num_required; ++i) {
    const JsonValue* value = counters->Find(required[i]);
    if (value == nullptr || !value->is_number() || value->number_value <= 0.0) {
      return Fail(std::string("counter \"") + required[i] +
                  "\" missing or zero");
    }
  }
  std::printf("report OK: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace lamo

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: lamo_report_check <report.json> "
                 "[required-nonzero-counter ...]\n");
    return 2;
  }
  return lamo::Check(argv[1], argc - 2, argv + 2);
}
