// lamo_report_check — validates a JSON run report written by `lamo
// --report` against the schema documented in docs/FORMATS.md. Exits 0 when
// every required key is present with the right shape, 1 with a diagnostic
// otherwise. Extra arguments name counters that must be present *and*
// nonzero; a `hist:` prefix demands a histogram with a nonzero count
// instead. Used by the report_schema ctest; handy interactively too:
//
//   lamo mine --graph g.txt --report r.json
//   lamo_report_check r.json esu.subgraphs hist:esu.chunk_us
//
// Schema v2 adds the "histograms" object and the trace.dropped counter; v1
// reports (no histograms) are still accepted with a warning so archived
// reports keep checking out.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"

namespace lamo {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "report check failed: %s\n", message.c_str());
  return 1;
}

const JsonValue* RequireMember(const JsonValue& object, const char* key,
                               JsonValue::Type type, int* rc) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    *rc = Fail(std::string("missing key \"") + key + "\"");
    return nullptr;
  }
  if (value->type != type) {
    *rc = Fail(std::string("key \"") + key + "\" has the wrong type");
    return nullptr;
  }
  return value;
}

// A phase node needs name/wall_ms/children, recursively.
bool CheckPhase(const JsonValue& phase, int* rc) {
  if (RequireMember(phase, "name", JsonValue::Type::kString, rc) == nullptr)
    return false;
  if (RequireMember(phase, "wall_ms", JsonValue::Type::kNumber, rc) == nullptr)
    return false;
  const JsonValue* children =
      RequireMember(phase, "children", JsonValue::Type::kArray, rc);
  if (children == nullptr) return false;
  for (const JsonValue& child : children->items) {
    if (!CheckPhase(child, rc)) return false;
  }
  return true;
}

// Validates one histogram entry and its invariants: required numeric fields,
// bucket counts summing to "count", strictly increasing bucket bounds, and
// ordered percentiles confined to [min, max] (empty histograms may keep all
// fields at zero).
int CheckHistogram(const std::string& name, const JsonValue& hist) {
  const char* fields[] = {"count", "sum", "min", "max", "p50", "p90", "p99"};
  for (const char* field : fields) {
    const JsonValue* value = hist.Find(field);
    if (value == nullptr || !value->is_number()) {
      return Fail("histogram \"" + name + "\": missing numeric \"" + field +
                  "\"");
    }
  }
  const JsonValue* buckets = hist.Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    return Fail("histogram \"" + name + "\": missing \"buckets\" array");
  }
  const double count = hist.Find("count")->number_value;
  double bucket_total = 0.0;
  double previous_hi = -1.0;
  for (const JsonValue& bucket : buckets->items) {
    const JsonValue* lo = bucket.Find("lo");
    const JsonValue* hi = bucket.Find("hi");
    const JsonValue* bucket_count = bucket.Find("count");
    if (lo == nullptr || !lo->is_number() || hi == nullptr ||
        !hi->is_number() || bucket_count == nullptr ||
        !bucket_count->is_number()) {
      return Fail("histogram \"" + name + "\": malformed bucket");
    }
    if (lo->number_value > hi->number_value) {
      return Fail("histogram \"" + name + "\": bucket with lo > hi");
    }
    if (lo->number_value <= previous_hi) {
      return Fail("histogram \"" + name + "\": bucket bounds not increasing");
    }
    if (bucket_count->number_value <= 0.0) {
      return Fail("histogram \"" + name + "\": empty bucket emitted");
    }
    previous_hi = hi->number_value;
    bucket_total += bucket_count->number_value;
  }
  if (bucket_total != count) {
    return Fail("histogram \"" + name + "\": bucket counts do not sum to " +
                std::to_string(static_cast<uint64_t>(count)));
  }
  if (count == 0.0) return 0;  // empty: percentiles/min/max are all zero
  const double min = hist.Find("min")->number_value;
  const double max = hist.Find("max")->number_value;
  const double p50 = hist.Find("p50")->number_value;
  const double p90 = hist.Find("p90")->number_value;
  const double p99 = hist.Find("p99")->number_value;
  if (min > max) return Fail("histogram \"" + name + "\": min > max");
  if (!(p50 <= p90 && p90 <= p99)) {
    return Fail("histogram \"" + name + "\": percentiles not monotone");
  }
  if (p50 < min || p99 > max) {
    return Fail("histogram \"" + name + "\": percentiles outside [min, max]");
  }
  return 0;
}

int Check(const std::string& path, int num_required, char** required) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Fail("cannot open " + path);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);

  JsonValue report;
  std::string error;
  if (!ParseJson(text, &report, &error)) return Fail("bad JSON: " + error);
  if (!report.is_object()) return Fail("top level is not an object");

  int rc = 0;
  const JsonValue* version = RequireMember(
      report, "lamo_report_version", JsonValue::Type::kNumber, &rc);
  if (version == nullptr) return rc;
  const bool v2 = version->number_value == 2.0;
  if (!v2 && version->number_value != 1.0) {
    return Fail("unsupported lamo_report_version");
  }
  if (!v2) {
    std::fprintf(stderr,
                 "warning: %s is a legacy v1 report (no histograms); "
                 "re-run with a current lamo build for schema v2\n",
                 path.c_str());
  }
  RequireMember(report, "command", JsonValue::Type::kString, &rc);
  RequireMember(report, "threads", JsonValue::Type::kNumber, &rc);
  RequireMember(report, "wall_ms", JsonValue::Type::kNumber, &rc);
  const JsonValue* phases =
      RequireMember(report, "phases", JsonValue::Type::kArray, &rc);
  const JsonValue* counters =
      RequireMember(report, "counters", JsonValue::Type::kObject, &rc);
  RequireMember(report, "gauges", JsonValue::Type::kObject, &rc);
  const JsonValue* histograms =
      v2 ? RequireMember(report, "histograms", JsonValue::Type::kObject, &rc)
         : nullptr;
  const JsonValue* workers =
      RequireMember(report, "workers", JsonValue::Type::kArray, &rc);
  if (rc != 0) return rc;

  for (const JsonValue& phase : phases->items) {
    if (!CheckPhase(phase, &rc)) return rc;
  }
  for (const auto& [name, value] : counters->members) {
    if (!value.is_number()) {
      return Fail("counter \"" + name + "\" not a number");
    }
  }
  if (v2) {
    // Schema v2 ships trace-loss accounting in every report, traced or not.
    const JsonValue* dropped = counters->Find("trace.dropped");
    if (dropped == nullptr || !dropped->is_number()) {
      return Fail("v2 report lacks the \"trace.dropped\" counter");
    }
    for (const auto& [name, hist] : histograms->members) {
      if (!hist.is_object()) {
        return Fail("histogram \"" + name + "\" not an object");
      }
      const int hist_rc = CheckHistogram(name, hist);
      if (hist_rc != 0) return hist_rc;
    }
  }
  const auto counter_value = [&](const char* name) {
    const JsonValue* value = counters->Find(name);
    return value != nullptr && value->is_number() ? value->number_value : 0.0;
  };
  // Serve reports: when the daemon recorded traffic, the serve.* metrics
  // must be mutually consistent — the cache can't have resolved more lookups
  // than there were requests, errors are a subset of requests, and every
  // request must have been timed into the serve.request_us histogram.
  const JsonValue* serve_requests = counters->Find("serve.requests");
  if (serve_requests != nullptr && serve_requests->is_number() &&
      serve_requests->number_value > 0.0) {
    const double requests = serve_requests->number_value;
    if (counter_value("serve.errors") > requests) {
      return Fail("serve.errors exceeds serve.requests");
    }
    if (counter_value("serve.cache_hits") +
            counter_value("serve.cache_misses") >
        requests) {
      return Fail("serve cache hits+misses exceed serve.requests");
    }
    // Access logging is sampled: at most one log line per request.
    if (counter_value("serve.access_logged") > requests) {
      return Fail("serve.access_logged exceeds serve.requests");
    }
    if (v2) {
      const JsonValue* hist = histograms->Find("serve.request_us");
      const JsonValue* count =
          hist == nullptr ? nullptr : hist->Find("count");
      if (count == nullptr || !count->is_number() ||
          count->number_value != requests) {
        return Fail(
            "histogram \"serve.request_us\" count does not match "
            "serve.requests");
      }
    }
  }
  // Router reports: the front-end only counts a backend request at the
  // moment it successfully proxies a client request, so the two counters
  // must agree exactly; retried requests are a subset of all requests; and
  // every client request must have been timed into router.request_us.
  const JsonValue* router_requests = counters->Find("router.requests");
  if (router_requests != nullptr && router_requests->is_number() &&
      router_requests->number_value > 0.0) {
    const double requests = router_requests->number_value;
    if (counter_value("router.backend_requests") !=
        counter_value("router.proxied")) {
      return Fail("router.backend_requests does not match router.proxied");
    }
    if (counter_value("router.retries") > requests) {
      return Fail("router.retries exceeds router.requests");
    }
    if (counter_value("router.errors") > requests) {
      return Fail("router.errors exceeds router.requests");
    }
    // ID conservation: every stamped request either reached a backend or
    // ended in a router-originated error — nothing double-counted, nothing
    // dropped. Guarded on presence so archived pre-tracing reports still
    // check out.
    if (counters->Find("router.ids_issued") != nullptr &&
        counter_value("router.ids_issued") !=
            counter_value("router.backend_requests") +
                counter_value("router.errors")) {
      return Fail(
          "router.ids_issued does not match router.backend_requests + "
          "router.errors");
    }
    if (v2) {
      const JsonValue* hist = histograms->Find("router.request_us");
      const JsonValue* count =
          hist == nullptr ? nullptr : hist->Find("count");
      if (count == nullptr || !count->is_number() ||
          count->number_value != requests) {
        return Fail(
            "histogram \"router.request_us\" count does not match "
            "router.requests");
      }
    }
  }
  // Predict reports must say which backend answered (the registry key in
  // the "annotations" object), so archived reports and A/B comparisons stay
  // attributable. Other commands may omit annotations — older reports
  // predate the key entirely.
  const JsonValue* command = report.Find("command");
  const JsonValue* annotations = report.Find("annotations");
  if (annotations != nullptr && !annotations->is_object()) {
    return Fail("\"annotations\" is not an object");
  }
  if (command != nullptr && command->is_string() &&
      command->string_value == "predict") {
    const JsonValue* predictor =
        annotations == nullptr ? nullptr : annotations->Find("predictor");
    if (predictor == nullptr || !predictor->is_string() ||
        predictor->string_value.empty()) {
      return Fail("predict report lacks annotations.predictor");
    }
  }
  // Predictor backends: every scored protein that produced a ranking had at
  // least one vote behind it, so predictions can never outnumber votes; and
  // the GDS signature matrix is per-protein rows of the 73 graphlet orbits,
  // so its cell counter must be a multiple of 73.
  if (counter_value("predict.predictions") > counter_value("predict.votes")) {
    return Fail("predict.predictions exceeds predict.votes");
  }
  {
    const double cells = counter_value("gds.signature_cells");
    if (cells != 73.0 * static_cast<uint64_t>(cells / 73.0)) {
      return Fail("gds.signature_cells is not a multiple of 73 orbits");
    }
  }
  // Shared canonicalization table: Lookup ticks the lookup counter and then
  // exactly one of hit/miss, so the totals must agree exactly on every run
  // that used the table.
  if (counters->Find("esu.canon_shared_lookups") != nullptr &&
      counter_value("esu.canon_shared_lookups") !=
          counter_value("esu.canon_shared_hits") +
              counter_value("esu.canon_shared_misses")) {
    return Fail(
        "esu.canon_shared_lookups does not match esu.canon_shared_hits + "
        "esu.canon_shared_misses");
  }
  // Checkpointed runs: a resume can only replay chunks the run actually
  // tracked, and atomic checkpoint/output replaces are durable — one fsynced
  // rename per write, so the two counters must agree exactly.
  if (counters->Find("checkpoint.resumed_chunks") != nullptr &&
      counter_value("checkpoint.resumed_chunks") >
          counter_value("checkpoint.total_chunks")) {
    return Fail("checkpoint.resumed_chunks exceeds checkpoint.total_chunks");
  }
  if (counter_value("checkpoint.writes") > 0.0 &&
      counter_value("checkpoint.writes") !=
          counter_value("checkpoint.fsyncs")) {
    return Fail("checkpoint.writes does not match checkpoint.fsyncs");
  }
  // Live-update runs: every applied edge mutation is exactly one ADDEDGE or
  // one DELEDGE; journal replay only re-applies updates that were counted as
  // applied; and the incremental path re-enumerates pair-anchored subgraphs
  // through the same ESU emit hook, so it can never claim more re-enumerated
  // subgraphs than the run's esu.subgraphs total. Guarded on presence so
  // reports from builds predating live updates still check out.
  if (counters->Find("update.applied") != nullptr) {
    if (counter_value("update.applied") !=
        counter_value("update.added") + counter_value("update.deleted")) {
      return Fail("update.applied does not match update.added + "
                  "update.deleted");
    }
    if (counter_value("update.journal_replayed") >
        counter_value("update.applied")) {
      return Fail("update.journal_replayed exceeds update.applied");
    }
    if (counters->Find("esu.subgraphs") != nullptr &&
        counter_value("update.resubgraphs") > counter_value("esu.subgraphs")) {
      return Fail("update.resubgraphs exceeds esu.subgraphs");
    }
  }
  for (const JsonValue& worker : workers->items) {
    if (RequireMember(worker, "name", JsonValue::Type::kString, &rc) ==
        nullptr)
      return rc;
    if (RequireMember(worker, "tasks", JsonValue::Type::kNumber, &rc) ==
        nullptr)
      return rc;
    if (RequireMember(worker, "counters", JsonValue::Type::kObject, &rc) ==
        nullptr)
      return rc;
  }

  // Demanded counters/histograms prove the pipeline recorded real work, not
  // just a well-shaped empty report.
  for (int i = 0; i < num_required; ++i) {
    if (std::strncmp(required[i], "hist:", 5) == 0) {
      const char* name = required[i] + 5;
      if (!v2) continue;  // v1 reports predate histograms
      const JsonValue* hist = histograms->Find(name);
      const JsonValue* count =
          hist == nullptr ? nullptr : hist->Find("count");
      if (count == nullptr || !count->is_number() ||
          count->number_value <= 0.0) {
        return Fail(std::string("histogram \"") + name +
                    "\" missing or empty");
      }
      continue;
    }
    const JsonValue* value = counters->Find(required[i]);
    if (value == nullptr || !value->is_number() || value->number_value <= 0.0) {
      return Fail(std::string("counter \"") + required[i] +
                  "\" missing or zero");
    }
  }
  std::printf("report OK: %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace lamo

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: lamo_report_check <report.json> "
                 "[required-nonzero-counter | hist:NAME ...]\n");
    return 2;
  }
  return lamo::Check(argv[1], argc - 2, argv + 2);
}
