// lamo_trace_summary — digests a Chrome trace-event JSON written by `lamo
// --trace` into a terminal profile: per span name, the call count, total
// (inclusive) time and self time, overall and per thread. Self time is
// inclusive time minus the time covered by spans nested inside it on the
// same thread, so phase wrappers do not double-count their children.
//
//   lamo mine --graph g.txt --trace mine.trace.json --threads 4
//   lamo_trace_summary mine.trace.json --top 10
//
// The first output line is machine-greppable:
//   trace: <events> events, <names> span names, <threads> threads, <n> dropped
// and is what the cli_trace ctest asserts on.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/json.h"

namespace lamo {
namespace {

struct Span {
  std::string name;
  uint64_t tid = 0;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

struct NameStats {
  uint64_t calls = 0;
  uint64_t total_us = 0;  // inclusive
  uint64_t self_us = 0;   // exclusive of nested same-thread spans
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "trace summary failed: %s\n", message.c_str());
  return 1;
}

// Computes self time for one thread's spans: sort by (start, -dur) and run
// a stack of open spans; each span's nested children subtract from its
// inclusive time. Spans from a ring buffer never overlap partially on one
// thread (they are scope-nested by construction), so containment is enough.
void AccumulateThread(std::vector<Span> spans,
                      std::map<std::string, NameStats>* stats) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.dur_us > b.dur_us;
  });
  struct Open {
    size_t index;
    uint64_t end_us;
    uint64_t child_us = 0;
  };
  std::vector<Open> stack;
  auto close = [&](const Open& open) {
    const Span& span = spans[open.index];
    NameStats& s = (*stats)[span.name];
    s.calls += 1;
    s.total_us += span.dur_us;
    s.self_us += span.dur_us > open.child_us ? span.dur_us - open.child_us : 0;
  };
  for (size_t i = 0; i < spans.size(); ++i) {
    const uint64_t end_us = spans[i].start_us + spans[i].dur_us;
    while (!stack.empty() && stack.back().end_us <= spans[i].start_us) {
      close(stack.back());
      stack.pop_back();
    }
    if (!stack.empty()) stack.back().child_us += spans[i].dur_us;
    stack.push_back(Open{i, end_us});
  }
  while (!stack.empty()) {
    close(stack.back());
    stack.pop_back();
  }
}

void PrintTable(const std::string& heading,
                const std::map<std::string, NameStats>& stats, size_t top) {
  std::vector<std::pair<std::string, NameStats>> rows(stats.begin(),
                                                      stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us) {
      return a.second.total_us > b.second.total_us;
    }
    return a.first < b.first;
  });
  std::printf("%s\n", heading.c_str());
  std::printf("  %-28s %10s %14s %14s\n", "span", "calls", "total_us",
              "self_us");
  for (size_t i = 0; i < rows.size() && i < top; ++i) {
    std::printf("  %-28s %10llu %14llu %14llu\n", rows[i].first.c_str(),
                static_cast<unsigned long long>(rows[i].second.calls),
                static_cast<unsigned long long>(rows[i].second.total_us),
                static_cast<unsigned long long>(rows[i].second.self_us));
  }
}

int Summarize(const std::string& path, size_t top) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Fail("cannot open " + path);
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);

  JsonValue trace;
  std::string error;
  if (!ParseJson(text, &trace, &error)) return Fail("bad JSON: " + error);
  const JsonValue* events = trace.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Fail("no traceEvents array");
  }

  uint64_t dropped = 0;
  if (const JsonValue* other = trace.Find("otherData")) {
    if (const JsonValue* d = other->Find("dropped")) {
      if (d->is_number()) dropped = static_cast<uint64_t>(d->number_value);
    }
  }

  std::map<uint64_t, std::vector<Span>> by_thread;
  std::map<uint64_t, std::string> thread_names;
  std::set<std::string> span_names;
  size_t num_events = 0;
  for (const JsonValue& event : events->items) {
    const JsonValue* ph = event.Find("ph");
    const JsonValue* tid = event.Find("tid");
    const JsonValue* name = event.Find("name");
    if (ph == nullptr || !ph->is_string() || tid == nullptr ||
        !tid->is_number() || name == nullptr || !name->is_string()) {
      return Fail("malformed trace event");
    }
    const uint64_t thread = static_cast<uint64_t>(tid->number_value);
    if (ph->string_value == "M") {
      if (name->string_value == "thread_name") {
        if (const JsonValue* args = event.Find("args")) {
          if (const JsonValue* tname = args->Find("name")) {
            thread_names[thread] = tname->string_value;
          }
        }
      }
      continue;
    }
    if (ph->string_value != "X") continue;
    const JsonValue* ts = event.Find("ts");
    const JsonValue* dur = event.Find("dur");
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number()) {
      return Fail("X event without ts/dur");
    }
    Span span;
    span.name = name->string_value;
    span.tid = thread;
    span.start_us = static_cast<uint64_t>(ts->number_value);
    span.dur_us = static_cast<uint64_t>(dur->number_value);
    span_names.insert(span.name);
    by_thread[thread].push_back(std::move(span));
    ++num_events;
  }

  std::printf("trace: %zu events, %zu span names, %zu threads, %llu dropped\n",
              num_events, span_names.size(), by_thread.size(),
              static_cast<unsigned long long>(dropped));

  std::map<std::string, NameStats> overall;
  std::map<uint64_t, std::map<std::string, NameStats>> per_thread;
  for (auto& [thread, spans] : by_thread) {
    AccumulateThread(spans, &per_thread[thread]);
    AccumulateThread(std::move(spans), &overall);
  }
  PrintTable("all threads:", overall, top);
  for (const auto& [thread, stats] : per_thread) {
    const auto name_it = thread_names.find(thread);
    const std::string label =
        name_it == thread_names.end() ? "?" : name_it->second;
    PrintTable("thread " + std::to_string(thread) + " (" + label + "):",
               stats, top);
  }
  return 0;
}

}  // namespace
}  // namespace lamo

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: lamo_trace_summary <trace.json> [--top N]\n");
    return 2;
  }
  size_t top = 10;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--top") == 0) {
      top = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return lamo::Summarize(argv[1], top);
}
