// lamo_bench_client — load generator and one-shot client for `lamo serve`.
//
//   lamo_bench_client --port 7471 --connections 4 --requests 200 \
//       --out BENCH_serve.json
//   lamo_bench_client --port 7471 --query "PREDICT 42 3"
//
// Bench mode opens N concurrent TCP connections to 127.0.0.1:<port>, each
// issuing M requests back-to-back (a fixed deterministic mix of PREDICT and
// MOTIFS over the snapshot's protein range), and reports throughput plus
// p50/p90/p99 request latency. --out writes the numbers in the same
// {"context":..., "benchmarks":[...]} shape as the google-benchmark JSON
// the other bench harnesses archive, so BENCH_serve.json can be tracked
// across PRs next to bench_micro.json and bench_scaling.json.
//
// Query mode sends one request line and prints the payload lines verbatim
// (exit 0 on OK, 1 on ERR) — the byte-compare hook used by
// tests/cli_serve_test.sh to diff server answers against offline
// `lamo predict`.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/string_util.h"

namespace lamo {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: lamo_bench_client --port P [--connections N] [--requests M]\n"
      "                         [--out FILE.json] [--name BENCH_NAME]\n"
      "                         [--cluster --proteins N]\n"
      "                         [--query \"REQUEST LINE\"]\n"
      "                         [--abuse slowloris|longline|halfclose|burst]\n"
      "                         [--top [--watch N] [--interval-ms MS]]\n"
      "Bench mode (default): N connections x M requests against the lamo\n"
      "serve daemon on 127.0.0.1:P; prints throughput and latency\n"
      "percentiles, and with --out writes them as benchmark JSON (aggregate\n"
      "plus per-connection error counts and max latency).\n"
      "--cluster targets a lamo router front-end instead: the HEALTH probe\n"
      "expects the cluster view (ready/degraded backends=U/N ...), and the\n"
      "protein range for the request mix comes from --proteins (required,\n"
      "since the cluster HEALTH line carries no protein count).\n"
      "Query mode (--query): send one request, print the payload lines\n"
      "verbatim; exit 0 on OK, 1 on ERR.\n"
      "Top mode (--top): poll STATS + METRICS and print the raw stats (one\n"
      "`backend i ...` line per router backend) plus a table of the derived\n"
      "lifetime/10s/60s rate and percentile gauges per backend; one shot by\n"
      "default, --watch N repeats with --interval-ms between polls.\n"
      "Abuse mode (--abuse): behave like a hostile client and exit 0 iff\n"
      "the server honored its overload contract —\n"
      "  slowloris  unfinished request line -> ERR DeadlineExceeded + close\n"
      "  longline   oversized request line -> ERR InvalidArgument + close\n"
      "  halfclose  request then shutdown(WR) -> answer + clean close\n"
      "  burst      N idle-held connections, served FIFO past max-conns\n");
  return 2;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Buffered '\n'-delimited reads from a connected socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    line->clear();
    for (;;) {
      const size_t newline = buffer_.find('\n', pos_);
      if (newline != std::string::npos) {
        line->assign(buffer_, pos_, newline - pos_);
        pos_ = newline + 1;
        if (pos_ == buffer_.size()) {
          buffer_.clear();
          pos_ = 0;
        }
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

int Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one request and reads the complete response (header + payload).
/// Returns false on a transport failure or malformed header.
bool RoundTrip(int fd, LineReader& reader, const std::string& request,
               std::string* header, std::vector<std::string>* payload) {
  payload->clear();
  if (!SendAll(fd, request + "\n")) return false;
  if (!reader.ReadLine(header)) return false;
  if (header->rfind("OK ", 0) == 0) {
    uint64_t count = 0;
    if (!ParseUint64(header->substr(3), &count)) return false;
    payload->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      std::string line;
      if (!reader.ReadLine(&line)) return false;
      payload->push_back(std::move(line));
    }
    return true;
  }
  return header->rfind("ERR ", 0) == 0;
}

int RunQuery(uint16_t port, const std::string& query) {
  const int fd = Connect(port);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%u\n", port);
    return 1;
  }
  LineReader reader(fd);
  std::string header;
  std::vector<std::string> payload;
  const bool ok = RoundTrip(fd, reader, query, &header, &payload);
  ::close(fd);
  if (!ok) {
    std::fprintf(stderr, "error: transport failure or malformed response\n");
    return 1;
  }
  if (header.rfind("ERR", 0) == 0) {
    std::fprintf(stderr, "%s\n", header.c_str());
    return 1;
  }
  for (const std::string& line : payload) std::printf("%s\n", line.c_str());
  return 0;
}

struct WorkerResult {
  std::vector<double> latencies_us;
  uint64_t ok = 0;
  uint64_t err = 0;
  bool transport_failed = false;
  // The first failing request this connection saw, reported when the bench
  // exits nonzero so an ERR deep inside a long run is diagnosable.
  std::string first_err_request;
  std::string first_err_header;
};

void RunWorker(uint16_t port, size_t index, size_t requests,
               size_t num_proteins, WorkerResult* result) {
  const int fd = Connect(port);
  if (fd < 0) {
    result->transport_failed = true;
    return;
  }
  LineReader reader(fd);
  result->latencies_us.reserve(requests);
  char request[64];
  for (size_t i = 0; i < requests; ++i) {
    // Deterministic mix: 3 PREDICTs then a MOTIFS, proteins striding the
    // snapshot range differently per connection so cache hits and misses
    // both occur.
    const size_t protein = (index * 131 + i * 17) % std::max<size_t>(1, num_proteins);
    if (i % 4 == 3) {
      std::snprintf(request, sizeof request, "MOTIFS %zu", protein);
    } else {
      std::snprintf(request, sizeof request, "PREDICT %zu", protein);
    }
    std::string header;
    std::vector<std::string> payload;
    const auto start = std::chrono::steady_clock::now();
    if (!RoundTrip(fd, reader, request, &header, &payload)) {
      result->transport_failed = true;
      break;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    result->latencies_us.push_back(
        std::chrono::duration<double, std::micro>(elapsed).count());
    if (header.rfind("OK", 0) == 0) {
      ++result->ok;
    } else {
      ++result->err;
      if (result->first_err_request.empty()) {
        result->first_err_request = request;
        result->first_err_header = header;
      }
    }
  }
  ::close(fd);
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

int RunBench(uint16_t port, size_t connections, size_t requests,
             const std::string& out_path, const std::string& bench_name,
             bool cluster, size_t proteins_override) {
  // Untimed HEALTH probe: checks the server is up and learns the protein
  // count so the request mix spans the real snapshot range. A router's
  // cluster HEALTH carries no protein count, so --cluster takes the range
  // from --proteins and instead verifies every backend is up.
  size_t num_proteins = proteins_override > 0 ? proteins_override : 1;
  {
    const int fd = Connect(port);
    if (fd < 0) {
      std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%u\n", port);
      return 1;
    }
    LineReader reader(fd);
    std::string header;
    std::vector<std::string> payload;
    if (!RoundTrip(fd, reader, "HEALTH", &header, &payload) ||
        payload.empty()) {
      std::fprintf(stderr, "error: HEALTH probe failed\n");
      ::close(fd);
      return 1;
    }
    ::close(fd);
    if (cluster) {
      if (payload[0].rfind("ready", 0) != 0) {
        std::fprintf(stderr, "error: cluster not ready: %s\n",
                     payload[0].c_str());
        return 1;
      }
    } else if (proteins_override == 0) {
      const size_t marker = payload[0].find("proteins=");
      if (marker != std::string::npos) {
        uint64_t parsed = 0;
        const std::string tail = payload[0].substr(marker + 9);
        ParseUint64(tail.substr(0, tail.find(' ')), &parsed);
        if (parsed > 0) num_proteins = static_cast<size_t>(parsed);
      }
    }
  }

  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const auto bench_start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < connections; ++c) {
    workers.emplace_back(RunWorker, port, c, requests, num_proteins,
                         &results[c]);
  }
  for (std::thread& worker : workers) worker.join();
  const auto bench_elapsed = std::chrono::steady_clock::now() - bench_start;
  const double wall_s =
      std::chrono::duration<double>(bench_elapsed).count();

  std::vector<double> latencies;
  uint64_t ok = 0, err = 0;
  bool transport_failed = false;
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    ok += r.ok;
    err += r.err;
    transport_failed = transport_failed || r.transport_failed;
  }
  if (transport_failed) {
    std::fprintf(stderr, "error: at least one connection failed mid-run\n");
    return 1;
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0;
  for (double v : latencies) sum += v;
  const double mean = latencies.empty() ? 0 : sum / latencies.size();
  const double throughput = wall_s > 0 ? latencies.size() / wall_s : 0;
  const double p50 = Percentile(latencies, 0.50);
  const double p90 = Percentile(latencies, 0.90);
  const double p99 = Percentile(latencies, 0.99);
  const double max = latencies.empty() ? 0 : latencies.back();

  std::printf("%zu connections x %zu requests: %llu OK, %llu ERR in %.3f s\n",
              connections, requests,
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(err), wall_s);
  std::printf("throughput %.0f req/s; latency us: mean %.1f p50 %.1f "
              "p90 %.1f p99 %.1f max %.1f\n",
              throughput, mean, p50, p90, p99, max);

  if (!out_path.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Key("context");
    json.BeginObject();
    json.Key("host");
    json.String("127.0.0.1");
    json.Key("port");
    json.Int(port);
    json.Key("connections");
    json.Int(connections);
    json.Key("requests_per_connection");
    json.Int(requests);
    json.Key("proteins");
    json.Int(num_proteins);
    json.EndObject();
    json.Key("benchmarks");
    json.BeginArray();
    json.BeginObject();
    json.Key("name");
    json.String(bench_name);
    json.Key("requests");
    json.Int(ok + err);
    json.Key("errors");
    json.Int(err);
    json.Key("wall_seconds");
    json.Double(wall_s);
    json.Key("throughput_rps");
    json.Double(throughput);
    json.Key("mean_us");
    json.Double(mean);
    json.Key("p50_us");
    json.Double(p50);
    json.Key("p90_us");
    json.Double(p90);
    json.Key("p99_us");
    json.Double(p99);
    json.Key("max_us");
    json.Double(max);
    // Per-connection breakdown: a single slow or error-prone connection
    // (e.g. one pinned to a backend that was killed mid-run) shows up here
    // even when the aggregate percentiles look healthy.
    json.Key("per_connection");
    json.BeginArray();
    for (size_t c = 0; c < results.size(); ++c) {
      const WorkerResult& r = results[c];
      double worker_max = 0;
      for (const double v : r.latencies_us) worker_max = std::max(worker_max, v);
      json.BeginObject();
      json.Key("connection");
      json.Int(c);
      json.Key("requests");
      json.Int(r.ok + r.err);
      json.Key("errors");
      json.Int(r.err);
      json.Key("max_us");
      json.Double(worker_max);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    json.EndArray();
    json.EndObject();
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.str().c_str());
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (err > 0) {
    for (size_t c = 0; c < results.size(); ++c) {
      if (results[c].first_err_request.empty()) continue;
      std::fprintf(stderr,
                   "error: connection %zu request \"%s\" answered \"%s\" "
                   "(%llu ERR total)\n",
                   c, results[c].first_err_request.c_str(),
                   results[c].first_err_header.c_str(),
                   static_cast<unsigned long long>(err));
      break;
    }
    return 1;
  }
  return 0;
}

/// One window-labeled gauge sample extracted from a METRICS exposition:
/// `lamo_serve_requests_per_sec{backend="0",shard="0/2",window="10s"} 61.2`.
struct TopSample {
  std::string metric;
  std::string backend;  // "-" for the polled process's own series
  std::string window;   // "lifetime", "10s" or "60s"
  double value = 0.0;
};

/// Pulls `key="value"` out of a label substring; empty when absent.
std::string LabelValue(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  const size_t at = labels.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = labels.find('"', start);
  return end == std::string::npos ? "" : labels.substr(start, end - start);
}

/// Extracts every window-labeled sample (rates and percentiles) from raw
/// exposition lines; other series don't belong in the top table.
std::vector<TopSample> ParseTopSamples(const std::vector<std::string>& lines) {
  std::vector<TopSample> samples;
  for (const std::string& line : lines) {
    if (line.empty() || line[0] == '#') continue;
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (brace == std::string::npos || space == std::string::npos ||
        brace > space) {
      continue;  // unlabeled sample: no window, not a table row
    }
    const size_t close = line.find('}', brace);
    if (close == std::string::npos) continue;
    const std::string labels = line.substr(brace + 1, close - brace - 1);
    TopSample sample;
    sample.window = LabelValue(labels, "window");
    if (sample.window.empty()) continue;
    sample.metric = line.substr(0, brace);
    const std::string backend = LabelValue(labels, "backend");
    sample.backend = backend.empty() ? "-" : backend;
    const size_t value_at = line.find(' ', close);
    if (value_at == std::string::npos) continue;
    sample.value = std::strtod(line.c_str() + value_at + 1, nullptr);
    samples.push_back(std::move(sample));
  }
  return samples;
}

/// Top mode: polls STATS + METRICS and prints the raw stats (the router's
/// include one `backend i ...` line per backend) followed by a
/// metric x window table of the derived rate/percentile gauges, one row per
/// (metric, backend). One shot by default; --watch N repeats N times with
/// --interval-ms between polls.
int RunTop(uint16_t port, size_t iterations, uint64_t interval_ms) {
  for (size_t iter = 0; iter < iterations; ++iter) {
    if (iter > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      std::printf("\n");
    }
    const int fd = Connect(port);
    if (fd < 0) {
      std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%u\n", port);
      return 1;
    }
    LineReader reader(fd);
    std::string header;
    std::vector<std::string> stats;
    std::vector<std::string> metrics;
    if (!RoundTrip(fd, reader, "STATS", &header, &stats) ||
        header.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "error: STATS failed (%s)\n", header.c_str());
      ::close(fd);
      return 1;
    }
    if (!RoundTrip(fd, reader, "METRICS", &header, &metrics) ||
        header.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "error: METRICS failed (%s)\n", header.c_str());
      ::close(fd);
      return 1;
    }
    ::close(fd);

    std::printf("== lamo top: 127.0.0.1:%u (poll %zu/%zu) ==\n", port,
                iter + 1, iterations);
    for (const std::string& line : stats) std::printf("%s\n", line.c_str());

    // (metric, backend) -> window -> value. std::map keys sort the rows so
    // a backend's series group together under its metric.
    std::map<std::pair<std::string, std::string>, std::map<std::string, double>>
        rows;
    for (const TopSample& sample : ParseTopSamples(metrics)) {
      rows[{sample.metric, sample.backend}][sample.window] = sample.value;
    }
    if (rows.empty()) {
      std::printf("(no windowed series yet — scrape again after traffic)\n");
      continue;
    }
    std::printf("%-44s %-8s %12s %12s %12s\n", "metric", "backend", "lifetime",
                "10s", "60s");
    static const char* kWindows[] = {"lifetime", "10s", "60s"};
    for (const auto& [key, windows] : rows) {
      std::string cells;
      char cell[16];
      for (const char* window : kWindows) {
        const auto it = windows.find(window);
        if (it == windows.end()) {
          std::snprintf(cell, sizeof cell, " %12s", "-");
        } else {
          std::snprintf(cell, sizeof cell, " %12.1f", it->second);
        }
        cells += cell;
      }
      std::printf("%-44s %-8s%s\n", key.first.c_str(), key.second.c_str(),
                  cells.c_str());
    }
  }
  return 0;
}

/// Reads until the server closes the connection (or the receive timeout
/// trips); returns every byte received.
std::string RecvUntilClose(int fd) {
  std::string received;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<size_t>(n));
  }
  return received;
}

int ConnectAbuse(uint16_t port) {
  const int fd = Connect(port);
  if (fd < 0) {
    std::fprintf(stderr, "abuse: cannot connect to 127.0.0.1:%u\n", port);
    return -1;
  }
  // A server that wrongly hangs must fail the run, not wedge it.
  timeval timeout{15, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  return fd;
}

/// Misbehaves on purpose and verifies the server's documented overload
/// response. Exit 0 iff the contract held; diagnostics on stderr otherwise.
int RunAbuse(uint16_t port, const std::string& mode, size_t connections) {
  if (mode == "slowloris") {
    // Start a request line and never finish it. The server must answer with
    // ERR DeadlineExceeded once --request-timeout-ms expires, then close.
    const int fd = ConnectAbuse(port);
    if (fd < 0) return 1;
    SendAll(fd, "PRED");
    const std::string response = RecvUntilClose(fd);
    ::close(fd);
    if (response.find("ERR DeadlineExceeded") == std::string::npos) {
      std::fprintf(stderr, "abuse slowloris: expected ERR DeadlineExceeded, "
                   "got \"%s\"\n", response.c_str());
      return 1;
    }
    std::printf("abuse slowloris: ERR DeadlineExceeded + close\n");
    return 0;
  }
  if (mode == "longline") {
    // 8 KiB with no newline: overflows any --max-line-bytes below that. The
    // server must reject the line with ERR InvalidArgument, not buffer on.
    const int fd = ConnectAbuse(port);
    if (fd < 0) return 1;
    SendAll(fd, std::string(8192, 'A'));
    const std::string response = RecvUntilClose(fd);
    ::close(fd);
    if (response.find("ERR InvalidArgument") == std::string::npos ||
        response.find("request line too long") == std::string::npos) {
      std::fprintf(stderr, "abuse longline: expected ERR InvalidArgument "
                   "request line too long, got \"%s\"\n", response.c_str());
      return 1;
    }
    std::printf("abuse longline: ERR InvalidArgument + close\n");
    return 0;
  }
  if (mode == "halfclose") {
    // Pipeline one request, then shut down our write side. The server must
    // still answer the pipelined request and then close cleanly on the EOF.
    const int fd = ConnectAbuse(port);
    if (fd < 0) return 1;
    if (!SendAll(fd, "HEALTH\n")) {
      ::close(fd);
      std::fprintf(stderr, "abuse halfclose: send failed\n");
      return 1;
    }
    ::shutdown(fd, SHUT_WR);
    const std::string response = RecvUntilClose(fd);
    ::close(fd);
    if (response.rfind("OK ", 0) != 0) {
      std::fprintf(stderr, "abuse halfclose: expected OK response before "
                   "close, got \"%s\"\n", response.c_str());
      return 1;
    }
    std::printf("abuse halfclose: answered then closed cleanly\n");
    return 0;
  }
  if (mode == "burst") {
    // Open every connection up front — more than --max-conns — then serve
    // them one at a time in connect order. Excess connections sit in the
    // kernel backlog; every single one must still be answered (accept
    // backpressure, not drops) as earlier ones close and free slots.
    std::vector<int> fds;
    fds.reserve(connections);
    for (size_t c = 0; c < connections; ++c) {
      const int fd = ConnectAbuse(port);
      if (fd < 0) {
        for (int open_fd : fds) ::close(open_fd);
        return 1;
      }
      fds.push_back(fd);
    }
    size_t answered = 0;
    for (size_t c = 0; c < fds.size(); ++c) {
      LineReader reader(fds[c]);
      std::string header;
      std::vector<std::string> payload;
      const bool ok = RoundTrip(fds[c], reader, "HEALTH", &header, &payload) &&
                      header.rfind("OK ", 0) == 0;
      ::close(fds[c]);
      if (!ok) {
        std::fprintf(stderr,
                     "abuse burst: connection %zu/%zu was not answered "
                     "(header \"%s\")\n", c + 1, fds.size(), header.c_str());
        return 1;
      }
      ++answered;
    }
    std::printf("abuse burst: all %zu connections answered\n", answered);
    return 0;
  }
  std::fprintf(stderr, "error: unknown --abuse mode \"%s\"\n", mode.c_str());
  return Usage();
}

int Main(int argc, char** argv) {
  uint16_t port = 0;
  size_t connections = 4;
  size_t requests = 100;
  size_t proteins = 0;
  std::string out_path;
  std::string query;
  std::string abuse;
  std::string bench_name = "serve/mixed_predict_motifs";
  bool have_query = false;
  bool cluster = false;
  bool top = false;
  size_t watch = 1;
  uint64_t interval_ms = 2000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--port" || arg == "--connections" || arg == "--requests" ||
        arg == "--proteins" || arg == "--watch" || arg == "--interval-ms") {
      const char* value = need_value(arg.c_str());
      if (value == nullptr) return Usage();
      uint64_t parsed = 0;
      if (!ParseUint64(value, &parsed)) {
        std::fprintf(stderr, "error: invalid value \"%s\" for %s\n", value,
                     arg.c_str());
        return Usage();
      }
      if (arg == "--port") {
        port = static_cast<uint16_t>(parsed);
      } else if (arg == "--connections") {
        connections = static_cast<size_t>(parsed);
      } else if (arg == "--proteins") {
        proteins = static_cast<size_t>(parsed);
      } else if (arg == "--watch") {
        watch = static_cast<size_t>(parsed);
      } else if (arg == "--interval-ms") {
        interval_ms = parsed;
      } else {
        requests = static_cast<size_t>(parsed);
      }
    } else if (arg == "--cluster") {
      cluster = true;
    } else if (arg == "--top") {
      top = true;
    } else if (arg == "--name") {
      const char* value = need_value("--name");
      if (value == nullptr) return Usage();
      bench_name = value;
    } else if (arg == "--out") {
      const char* value = need_value("--out");
      if (value == nullptr) return Usage();
      out_path = value;
    } else if (arg == "--query") {
      const char* value = need_value("--query");
      if (value == nullptr) return Usage();
      query = value;
      have_query = true;
    } else if (arg == "--abuse") {
      const char* value = need_value("--abuse");
      if (value == nullptr) return Usage();
      abuse = value;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    return Usage();
  }
  if (have_query) return RunQuery(port, query);
  if (top) {
    if (watch == 0) {
      std::fprintf(stderr, "error: --watch must be > 0\n");
      return Usage();
    }
    return RunTop(port, watch, interval_ms);
  }
  if (!abuse.empty()) {
    if (connections == 0) {
      std::fprintf(stderr, "error: --connections must be > 0\n");
      return Usage();
    }
    return RunAbuse(port, abuse, connections);
  }
  if (connections == 0 || requests == 0) {
    std::fprintf(stderr, "error: --connections and --requests must be > 0\n");
    return Usage();
  }
  if (cluster && proteins == 0) {
    std::fprintf(stderr, "error: --cluster requires --proteins N\n");
    return Usage();
  }
  return RunBench(port, connections, requests, out_path, bench_name, cluster,
                  proteins);
}

}  // namespace
}  // namespace lamo

int main(int argc, char** argv) { return lamo::Main(argc, argv); }
