// lamo_metrics_check — validates a Prometheus text exposition produced by
// the METRICS verb of `lamo serve` / `lamo router`. Exits 0 when the
// document is well-formed, 1 with a diagnostic otherwise. Checked beyond
// what the shared parser enforces:
//
//   * every histogram family's buckets are cumulative per label group,
//     strictly increasing in `le`, and end in `le="+Inf"` whose value
//     equals the group's `_count` sample; `_sum` and `_count` are present;
//   * the `lamo_uptime_seconds` / `lamo_start_time_seconds` gauges exist
//     (every exposition carries them, sink or no sink);
//   * with `--report report.json`, each unlabeled `<name>_total` sample is
//     cross-checked against the counter of the same obs name in the JSON
//     run report: the scrape happened while the daemon was still serving
//     and the report is written at shutdown, so (counters being monotone)
//     the scraped value must be <= the reported one. Same for histogram
//     `_count` samples. Counters absent on either side are fine.
//
// Used by the cli_metrics ctest; handy interactively too:
//
//   lamo_bench_client --port P --query METRICS > metrics.txt
//   lamo_metrics_check metrics.txt --report serve_report.json
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/prometheus.h"

namespace lamo {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "metrics check failed: %s\n", message.c_str());
  return 1;
}

/// One parsed sample line: bare name, label set, numeric value.
struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Splits `name{k="v",...} value` (labels optional). The shared parser
/// already guaranteed a valid name and a finite value; this adds strict
/// label-pair syntax.
bool ParseSample(const std::string& line, Sample* sample, std::string* error) {
  const size_t name_end = line.find_first_of("{ ");
  if (name_end == std::string::npos) {
    *error = "no value in sample '" + line + "'";
    return false;
  }
  sample->name = line.substr(0, name_end);
  sample->labels.clear();
  size_t pos = name_end;
  if (line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      const size_t eq = line.find('=', pos);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        *error = "malformed label in '" + line + "'";
        return false;
      }
      const std::string key = line.substr(pos, eq - pos);
      std::string value;
      size_t v = eq + 2;
      while (v < line.size() && line[v] != '"') {
        if (line[v] == '\\' && v + 1 < line.size()) ++v;
        value += line[v++];
      }
      if (v >= line.size()) {
        *error = "unterminated label value in '" + line + "'";
        return false;
      }
      sample->labels[key] = value;
      pos = v + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      *error = "unterminated label set in '" + line + "'";
      return false;
    }
    ++pos;
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  char* end = nullptr;
  sample->value = std::strtod(line.c_str() + pos, &end);
  if (end == line.c_str() + pos || *end != '\0') {
    *error = "non-numeric value in '" + line + "'";
    return false;
  }
  return true;
}

/// The label set minus `le`, serialized as a grouping key (std::map keeps
/// it order-independent).
std::string GroupKey(const std::map<std::string, std::string>& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    if (k == "le") continue;
    key += k + "=" + v + ";";
  }
  return key;
}

/// Per-label-group histogram state accumulated across a family's samples.
struct HistGroup {
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative count)
  double count = -1.0;
  bool have_sum = false;
};

int CheckHistogramFamily(const PromFamily& family) {
  std::map<std::string, HistGroup> groups;
  std::string error;
  for (const std::string& line : family.samples) {
    Sample sample;
    if (!ParseSample(line, &sample, &error)) return Fail(error);
    HistGroup& group = groups[GroupKey(sample.labels)];
    if (sample.name == family.name + "_bucket") {
      const auto le = sample.labels.find("le");
      if (le == sample.labels.end()) {
        return Fail("histogram '" + family.name + "': bucket without le");
      }
      const double bound = le->second == "+Inf"
                               ? HUGE_VAL
                               : std::strtod(le->second.c_str(), nullptr);
      group.buckets.emplace_back(bound, sample.value);
    } else if (sample.name == family.name + "_sum") {
      group.have_sum = true;
    } else if (sample.name == family.name + "_count") {
      group.count = sample.value;
    } else {
      return Fail("histogram '" + family.name + "': stray sample '" +
                  sample.name + "'");
    }
  }
  for (const auto& [key, group] : groups) {
    const std::string where =
        "histogram '" + family.name + "'" +
        (key.empty() ? std::string() : " {" + key + "}");
    if (group.buckets.empty()) return Fail(where + ": no buckets");
    double prev_le = -HUGE_VAL;
    double prev_cum = -1.0;
    for (const auto& [le, cum] : group.buckets) {
      if (le <= prev_le) return Fail(where + ": le bounds not increasing");
      if (cum < prev_cum) return Fail(where + ": buckets not cumulative");
      prev_le = le;
      prev_cum = cum;
    }
    if (group.buckets.back().first != HUGE_VAL) {
      return Fail(where + ": last bucket is not le=\"+Inf\"");
    }
    if (group.count < 0.0) return Fail(where + ": missing _count");
    if (!group.have_sum) return Fail(where + ": missing _sum");
    if (group.buckets.back().second != group.count) {
      return Fail(where + ": +Inf bucket does not equal _count");
    }
  }
  return 0;
}

/// The unlabeled sample of family `name` (the daemon's own series; the
/// router's re-exported backend series carry backend=/shard= labels and are
/// skipped). Returns false when the family or an unlabeled sample is absent.
bool FindOwnSample(const std::vector<PromFamily>& families,
                   const std::string& name, double* value) {
  for (const PromFamily& family : families) {
    if (family.name != name) continue;
    for (const std::string& line : family.samples) {
      Sample sample;
      std::string error;
      if (!ParseSample(line, &sample, &error)) continue;
      if (sample.name == name && sample.labels.empty()) {
        *value = sample.value;
        return true;
      }
      // Histogram _count child, also unlabeled.
      if (sample.name == name + "_count" && sample.labels.empty()) {
        *value = sample.value;
        return true;
      }
    }
  }
  return false;
}

bool ReadFile(const std::string& path, std::string* text) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text->append(buffer, n);
  }
  std::fclose(f);
  return true;
}

/// Cross-checks the exposition against a --report JSON written at shutdown:
/// scraped counter/histogram-count values must not exceed the final ones.
int CrossCheckReport(const std::vector<PromFamily>& families,
                     const std::string& report_path) {
  std::string text;
  if (!ReadFile(report_path, &text)) {
    return Fail("cannot open " + report_path);
  }
  JsonValue report;
  std::string error;
  if (!ParseJson(text, &report, &error)) {
    return Fail(report_path + ": bad JSON: " + error);
  }
  const JsonValue* counters = report.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Fail(report_path + ": no \"counters\" object");
  }
  size_t checked = 0;
  for (const auto& [name, value] : counters->members) {
    if (!value.is_number()) continue;
    double scraped = 0.0;
    if (!FindOwnSample(families, PromMetricName(name) + "_total", &scraped)) {
      continue;  // zero at scrape time (omitted) or not in this exposition
    }
    if (scraped > value.number_value) {
      return Fail("counter " + name + ": scraped " + std::to_string(scraped) +
                  " exceeds final report value " +
                  std::to_string(value.number_value));
    }
    ++checked;
  }
  const JsonValue* histograms = report.Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, hist] : histograms->members) {
      const JsonValue* count = hist.is_object() ? hist.Find("count") : nullptr;
      if (count == nullptr || !count->is_number()) continue;
      double scraped = 0.0;
      if (!FindOwnSample(families, PromMetricName(name), &scraped)) continue;
      if (scraped > count->number_value) {
        return Fail("histogram " + name + ": scraped count " +
                    std::to_string(scraped) + " exceeds final report count " +
                    std::to_string(count->number_value));
      }
      ++checked;
    }
  }
  std::printf("report cross-check OK: %zu series within final totals\n",
              checked);
  return 0;
}

int Check(const std::string& path, const std::string& report_path) {
  std::string text;
  if (!ReadFile(path, &text)) return Fail("cannot open " + path);
  // Tolerate a raw wire capture that still carries the `OK <n>` header.
  if (text.rfind("OK ", 0) == 0) {
    const size_t eol = text.find('\n');
    text.erase(0, eol == std::string::npos ? text.size() : eol + 1);
  }

  std::vector<PromFamily> families;
  std::string error;
  if (!ParsePromFamilies(text, &families, &error)) return Fail(error);
  if (families.empty()) return Fail("no metric families in " + path);

  for (const PromFamily& family : families) {
    for (const std::string& line : family.samples) {
      Sample sample;
      if (!ParseSample(line, &sample, &error)) return Fail(error);
    }
    if (family.type == "histogram") {
      const int rc = CheckHistogramFamily(family);
      if (rc != 0) return rc;
    }
  }

  double uptime = 0.0;
  if (!FindOwnSample(families, "lamo_uptime_seconds", &uptime)) {
    return Fail("missing lamo_uptime_seconds gauge");
  }
  if (uptime < 0.0) return Fail("negative lamo_uptime_seconds");
  double start_time = 0.0;
  if (!FindOwnSample(families, "lamo_start_time_seconds", &start_time)) {
    return Fail("missing lamo_start_time_seconds gauge");
  }

  size_t samples = 0;
  for (const PromFamily& family : families) samples += family.samples.size();
  std::printf("metrics OK: %s (%zu families, %zu samples)\n", path.c_str(),
              families.size(), samples);
  if (!report_path.empty()) return CrossCheckReport(families, report_path);
  return 0;
}

}  // namespace
}  // namespace lamo

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (metrics_path.empty()) {
      metrics_path = argv[i];
    } else {
      metrics_path.clear();
      break;
    }
  }
  if (metrics_path.empty()) {
    std::fprintf(stderr,
                 "usage: lamo_metrics_check <metrics.txt> "
                 "[--report report.json]\n");
    return 2;
  }
  return lamo::Check(metrics_path, report_path);
}
