// lamo — command-line driver for the LaMoFinder pipeline.
//
//   lamo generate --proteins 1500 --seed 7 --out data/run1
//   lamo stats    --graph data/run1.graph.txt
//   lamo mine     --graph data/run1.graph.txt --min-size 3 --max-size 5
//                 --min-freq 40 --out data/run1.motifs.txt
//   lamo label    --graph data/run1.graph.txt --obo data/run1.obo
//                 --annotations data/run1.annotations.tsv
//                 --motifs data/run1.motifs.txt --sigma 10
//                 --out data/run1.labeled.txt
//   lamo predict  --graph data/run1.graph.txt --obo data/run1.obo
//                 --annotations data/run1.annotations.tsv
//                 --labeled data/run1.labeled.txt --protein 42
//   lamo pack     --graph data/run1.graph.txt --obo data/run1.obo
//                 --annotations data/run1.annotations.tsv
//                 --labeled data/run1.labeled.txt --out data/run1.lamosnap
//   lamo serve    --snapshot data/run1.lamosnap --port 7471
//
// The pipeline stages read and write the plain-text formats of src/io, so
// stages can be rerun, diffed and mixed with external tools; pack/serve add
// a binary snapshot compiled once and queried many times (src/serve).
//
// Flag parsing is strict: every command declares its flags, and an unknown
// flag, a missing value, or a malformed numeric value prints the usage text
// and exits nonzero.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/lamofinder.h"
#include "graph/algorithms.h"
#include "io/edge_list.h"
#include "io/gaf.h"
#include "io/motif_io.h"
#include "io/obo.h"
#include "motif/esu_finder.h"
#include "motif/uniqueness.h"
#include "obs/obs.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "predict/registry.h"
#include "router/cluster.h"
#include "router/router.h"
#include "serve/access_log.h"
#include "serve/journal.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/update.h"
#include "synth/dataset.h"
#include "util/checkpoint.h"
#include "util/fault.h"
#include "util/string_util.h"

namespace lamo {
namespace {

/// What a flag's value must look like. kBool flags take no value; all other
/// kinds require one, validated at parse time.
enum class FlagKind { kString, kSize, kDouble, kBool };

struct FlagSpec {
  const char* name;
  FlagKind kind;
};

/// Parsed `--name value` pairs, validated against one command's FlagSpec
/// list. Parse rejects unknown flags, missing values and malformed numbers
/// instead of silently ignoring them.
class Flags {
 public:
  static StatusOr<Flags> Parse(int argc, char** argv, int first,
                               const std::vector<FlagSpec>& specs) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        return Status::InvalidArgument("unexpected argument \"" +
                                       std::string(arg) +
                                       "\" (flags are --name [value])");
      }
      const std::string name = arg + 2;
      const auto spec = std::find_if(
          specs.begin(), specs.end(),
          [&name](const FlagSpec& s) { return name == s.name; });
      if (spec == specs.end()) {
        return Status::InvalidArgument("unknown flag --" + name);
      }
      if (spec->kind == FlagKind::kBool) {
        flags.values_[name] = "1";
        continue;
      }
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        return Status::InvalidArgument("missing value for --" + name);
      }
      const std::string value = argv[++i];
      if (spec->kind == FlagKind::kSize) {
        uint64_t parsed = 0;
        if (!ParseUint64(value, &parsed)) {
          return Status::InvalidArgument("invalid value \"" + value +
                                         "\" for --" + name +
                                         " (expected a non-negative integer)");
        }
      } else if (spec->kind == FlagKind::kDouble) {
        double parsed = 0;
        if (!ParseDouble(value, &parsed)) {
          return Status::InvalidArgument("invalid value \"" + value +
                                         "\" for --" + name +
                                         " (expected a number)");
        }
      }
      flags.values_[name] = value;
    }
    return flags;
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  size_t GetSize(const std::string& name, size_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    uint64_t value = 0;
    ParseUint64(it->second, &value);  // validated at Parse time
    return static_cast<size_t>(value);
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    double value = 0;
    ParseDouble(it->second, &value);  // validated at Parse time
    return value;
  }
  bool Has(const std::string& name) const { return values_.count(name) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// The observability + threading flags every pipeline command accepts.
std::vector<FlagSpec> WithCommonFlags(std::vector<FlagSpec> specs) {
  specs.push_back({"threads", FlagKind::kSize});
  specs.push_back({"report", FlagKind::kString});
  specs.push_back({"stats", FlagKind::kBool});
  specs.push_back({"trace", FlagKind::kString});
  specs.push_back({"trace-capacity", FlagKind::kSize});
  return specs;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// The crash-safety flags mine and label share. --checkpoint DIR enables
/// periodic atomic checkpoints, --checkpoint-every N sets the group size
/// (chunks/replicates/motifs per checkpoint), --resume restarts from the
/// newest valid checkpoint in DIR.
std::vector<FlagSpec> WithCheckpointFlags(std::vector<FlagSpec> specs) {
  specs.push_back({"checkpoint", FlagKind::kString});
  specs.push_back({"checkpoint-every", FlagKind::kSize});
  specs.push_back({"resume", FlagKind::kBool});
  return specs;
}

StatusOr<CheckpointOptions> CheckpointFromFlags(const Flags& flags) {
  CheckpointOptions checkpoint;
  checkpoint.dir = flags.Get("checkpoint", "");
  checkpoint.every = flags.GetSize("checkpoint-every", 1);
  checkpoint.resume = flags.Has("resume");
  if (checkpoint.resume && checkpoint.dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint DIR");
  }
  if (checkpoint.every == 0) {
    return Status::InvalidArgument("--checkpoint-every must be >= 1");
  }
  return checkpoint;
}

// Applies --threads N (0 = auto: LAMO_THREADS env, then hardware
// concurrency) for the stages that run on the parallel runtime.
void ApplyThreadFlag(const Flags& flags) {
  SetThreadCount(flags.GetSize("threads", 0));
}

// Turns on metric collection for one command when --report/--stats/--trace
// ask for it. Construct before the pipeline runs, call Finish() after it
// succeeds; early error returns rely on ~ObsSink / ~TraceCollector
// auto-uninstalling. The long-running daemons (serve, router) pass
// `always_collect` so a METRICS scrape sees live counters even when no
// --report/--stats flag was given — router backends in particular are
// spawned without either flag.
class ObsScope {
 public:
  explicit ObsScope(const Flags& flags, bool always_collect = false)
      : report_path_(flags.Get("report", "")),
        trace_path_(flags.Get("trace", "")),
        stats_(flags.Has("stats")) {
    if (always_collect || stats_ || !report_path_.empty()) {
      sink_.emplace();
      SetObsSink(&*sink_);
    }
    if (!trace_path_.empty()) {
      tracer_.emplace(flags.GetSize("trace-capacity",
                                    kDefaultTraceEventsPerThread));
      SetTraceCollector(&*tracer_);
    }
  }

  // Records a string fact about this run (e.g. the selected predictor
  // backend) for the report's "annotations" object.
  void Annotate(const std::string& key, const std::string& value) {
    annotations_[key] = value;
  }

  // Uninstalls the sink and tracer, prints the --stats summary, writes the
  // --report JSON and the --trace Chrome trace. Returns the command's exit
  // code (non-zero on report/trace I/O failure).
  int Finish(const std::string& command) {
    if (tracer_.has_value()) {
      SetTraceCollector(nullptr);
      const Status status = tracer_->WriteFile(trace_path_);
      if (!status.ok()) return Fail(status);
    }
    if (!sink_.has_value()) return 0;
    SetObsSink(nullptr);
    const size_t threads = ThreadCount();
    if (stats_) PrintRunSummary(*sink_, command, threads, stderr);
    if (!report_path_.empty()) {
      const Status status = WriteRunReport(*sink_, command, threads,
                                           report_path_, annotations_);
      if (!status.ok()) return Fail(status);
    }
    return 0;
  }

 private:
  std::string report_path_;
  std::string trace_path_;
  bool stats_;
  std::map<std::string, std::string> annotations_;
  std::optional<ObsSink> sink_;
  std::optional<TraceCollector> tracer_;
};

int CmdGenerate(const Flags& flags) {
  SyntheticDatasetConfig config = BindScaleConfig();
  config.num_proteins = flags.GetSize("proteins", 1500);
  config.seed = flags.GetSize("seed", 2007);
  config.copies_per_template = flags.GetSize("copies", 60);
  config.informative_threshold =
      flags.GetSize("informative", std::max<size_t>(5, config.num_proteins / 140));
  const std::string prefix = flags.Get("out", "lamo_dataset");

  const SyntheticDataset dataset = BuildSyntheticDataset(config);
  Status status = WriteEdgeList(dataset.ppi, prefix + ".graph.txt");
  if (!status.ok()) return Fail(status);
  status = WriteObo(dataset.ontology, prefix + ".obo");
  if (!status.ok()) return Fail(status);
  status = WriteAnnotations(dataset.annotations, dataset.ontology,
                            prefix + ".annotations.tsv");
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s.graph.txt (%s), %s.obo (%zu terms), "
              "%s.annotations.tsv (%zu annotated proteins)\n",
              prefix.c_str(), dataset.ppi.ToString().c_str(), prefix.c_str(),
              dataset.ontology.num_terms(), prefix.c_str(),
              dataset.annotations.CountAnnotated());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  std::printf("%s\n", graph->ToString().c_str());
  std::printf("components: %zu (largest %zu)\n", CountComponents(*graph),
              LargestComponent(*graph).size());
  std::printf("mean degree: %.2f, max degree: %zu\n", MeanDegree(*graph),
              graph->MaxDegree());
  std::printf("triangles: %zu, clustering coefficient: %.4f\n",
              CountTriangles(*graph), GlobalClusteringCoefficient(*graph));
  return 0;
}

int CmdMine(const Flags& flags) {
  ApplyThreadFlag(flags);
  auto checkpoint = CheckpointFromFlags(flags);
  if (!checkpoint.ok()) return Fail(checkpoint.status());
  ObsScope obs(flags);
  const auto graph = [&] {
    const ScopedTimer timer("load");
    return ReadEdgeList(flags.Get("graph", ""));
  }();
  if (!graph.ok()) return Fail(graph.status());

  const std::string algo = flags.Get("algo", "levelwise");
  std::vector<Motif> motifs;
  if (algo == "esu") {
    // FANMOD route: exhaustive per-size ESU enumeration + ensemble
    // uniqueness, one pass per size in [min-size, max-size].
    const ScopedTimer timer("mine");
    EsuMotifConfig config;
    config.min_frequency = flags.GetSize("min-freq", 40);
    config.num_random_networks = flags.GetSize("networks", 10);
    config.uniqueness_threshold = flags.GetDouble("uniqueness", 0.95);
    config.seed = flags.GetSize("seed", 42);
    config.checkpoint = *checkpoint;
    const size_t min_size = flags.GetSize("min-size", 3);
    const size_t max_size = flags.GetSize("max-size", 5);
    for (size_t size = min_size; size <= max_size; ++size) {
      config.size = size;
      auto per_size = FindNetworkMotifsEsu(*graph, config);
      for (auto& motif : per_size) motifs.push_back(std::move(motif));
    }
  } else if (algo == "levelwise") {
    const ScopedTimer timer("mine");
    MotifFindingConfig config;
    config.miner.min_size = flags.GetSize("min-size", 3);
    config.miner.max_size = flags.GetSize("max-size", 5);
    config.miner.min_frequency = flags.GetSize("min-freq", 40);
    config.miner.max_patterns_per_level = flags.GetSize("beam", 60);
    config.uniqueness.num_random_networks = flags.GetSize("networks", 10);
    config.uniqueness_threshold = flags.GetDouble("uniqueness", 0.95);
    config.checkpoint = *checkpoint;
    motifs = FindNetworkMotifs(*graph, config);
  } else {
    return Fail(Status::InvalidArgument("--algo must be levelwise or esu"));
  }
  std::printf("found %zu network motifs\n", motifs.size());

  {
    const ScopedTimer timer("write");
    const Status status = WriteMotifs(motifs, flags.Get("out", "motifs.txt"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("wrote %s\n", flags.Get("out", "motifs.txt").c_str());
  return obs.Finish("mine");
}

int CmdLabel(const Flags& flags) {
  ApplyThreadFlag(flags);
  auto checkpoint = CheckpointFromFlags(flags);
  if (!checkpoint.ok()) return Fail(checkpoint.status());
  ObsScope obs(flags);
  std::optional<ScopedTimer> load_timer;
  load_timer.emplace("load");
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  auto ontology = ReadObo(flags.Get("obo", ""));
  if (!ontology.ok()) return Fail(ontology.status());
  auto annotations = ReadAnnotations(flags.Get("annotations", ""), *ontology);
  if (!annotations.ok()) return Fail(annotations.status());
  auto motifs = ReadMotifs(flags.Get("motifs", ""));
  if (!motifs.ok()) return Fail(motifs.status());
  load_timer.reset();

  const TermWeights weights = TermWeights::Compute(*ontology, *annotations);
  InformativeConfig informative_config;
  informative_config.min_direct_proteins = flags.GetSize(
      "informative", std::max<size_t>(5, graph->num_vertices() / 140));
  const InformativeClasses informative =
      InformativeClasses::Compute(*ontology, *annotations, informative_config);

  LaMoFinder finder(*ontology, weights, informative, *annotations);
  LaMoFinderConfig config;
  config.sigma = flags.GetSize("sigma", 10);
  config.max_occurrences = flags.GetSize("max-occurrences", 300);
  config.checkpoint = *checkpoint;
  const auto labeled = [&] {
    const ScopedTimer timer("label");
    return finder.LabelAll(*motifs, config);
  }();
  std::printf("labeled %zu motifs -> %zu labeled motifs\n", motifs->size(),
              labeled.size());

  {
    const ScopedTimer timer("write");
    const Status status = WriteLabeledMotifs(labeled, *ontology,
                                             flags.Get("out", "labeled.txt"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("wrote %s\n", flags.Get("out", "labeled.txt").c_str());
  return obs.Finish("label");
}

/// Resolves the --predictor flag (default "lms") against the backend
/// registry. False means the name is not registered; the caller prints usage
/// and exits 2, matching every other malformed-flag path.
bool ResolvePredictorFlag(const Flags& flags, std::string* name) {
  *name = flags.Get("predictor", "lms");
  if (IsRegisteredPredictor(*name)) return true;
  std::fprintf(stderr, "error: unknown --predictor \"%s\" (registered: %s)\n",
               name->c_str(), PredictorNamesUsage().c_str());
  return false;
}

int Usage();

int CmdPredict(const Flags& flags) {
  ApplyThreadFlag(flags);
  ObsScope obs(flags);
  std::string predictor_name;
  if (!ResolvePredictorFlag(flags, &predictor_name)) return Usage();
  obs.Annotate("predictor", predictor_name);
  std::optional<ScopedTimer> load_timer;
  load_timer.emplace("load");
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  auto ontology = ReadObo(flags.Get("obo", ""));
  if (!ontology.ok()) return Fail(ontology.status());
  auto annotations = ReadAnnotations(flags.Get("annotations", ""), *ontology);
  if (!annotations.ok()) return Fail(annotations.status());
  auto labeled = ReadLabeledMotifs(flags.Get("labeled", ""), *ontology);
  if (!labeled.ok()) return Fail(labeled.status());
  load_timer.reset();

  // Closed before obs.Finish() so the phase makes it into report and trace.
  std::optional<ScopedTimer> predict_timer;
  predict_timer.emplace("predict");
  // Categories: the root's children; protein categories via the true-path.
  PredictionContext context;
  context.ppi = &*graph;
  const TermId root = ontology->Roots()[0];
  context.categories.assign(ontology->Children(root).begin(),
                            ontology->Children(root).end());
  context.protein_categories.resize(graph->num_vertices());
  for (ProteinId p = 0; p < graph->num_vertices(); ++p) {
    std::vector<TermId>& cats = context.protein_categories[p];
    for (TermId t : annotations->TermsOf(p)) {
      for (TermId c : context.categories) {
        if (ontology->IsAncestorOrEqual(c, t)) {
          if (!std::binary_search(cats.begin(), cats.end(), c)) {
            cats.insert(std::lower_bound(cats.begin(), cats.end(), c), c);
          }
        }
      }
    }
  }

  PredictorInputs inputs;
  inputs.context = &context;
  inputs.ontology = &*ontology;
  inputs.motifs = &*labeled;
  auto predictor = MakePredictor(predictor_name, inputs);
  if (!predictor.ok()) return Fail(predictor.status());
  const ProteinId protein =
      static_cast<ProteinId>(flags.GetSize("protein", 0));
  if (protein >= graph->num_vertices()) {
    return Fail(Status::InvalidArgument("--protein out of range"));
  }
  // Rendered through the same formatter the serve daemon uses for PREDICT,
  // so online and offline answers are byte-identical by construction.
  const size_t top_k = flags.GetSize("top-k", 3);
  for (const std::string& line : PredictionOutputLines(
           context, *ontology, **predictor, protein, top_k)) {
    std::printf("%s\n", line.c_str());
  }
  predict_timer.reset();
  return obs.Finish("predict");
}

/// `pack --apply-deltas FILE`: folds a file of `ADDEDGE u v` / `DELEDGE u v`
/// lines (blank lines and `#` comments skipped — the journal grammar) into
/// the freshly built snapshot through the same UpdateEngine the serve daemon
/// uses, so the packed file is byte-identical to what a live server reaches
/// after applying the same deltas.
Status ApplyDeltaFile(const std::string& path, Snapshot* snapshot) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open delta file " + path);
  }
  UpdateEngine engine(snapshot);
  std::string line;
  size_t line_no = 0;
  size_t applied = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsDeltaComment(line)) continue;
    auto entry = ParseDeltaLine(line);
    if (!entry.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + entry.status().message());
    }
    UpdateResult result;
    const Status status = engine.Apply(entry->add, entry->u, entry->v,
                                       &result);
    if (!status.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + status.message());
    }
    ++applied;
  }
  std::printf("applied %zu deltas from %s\n", applied, path.c_str());
  return Status::OK();
}

int CmdPack(const Flags& flags) {
  ApplyThreadFlag(flags);
  ObsScope obs(flags);
  std::optional<ScopedTimer> load_timer;
  load_timer.emplace("load");
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  auto ontology = ReadObo(flags.Get("obo", ""));
  if (!ontology.ok()) return Fail(ontology.status());
  auto annotations = ReadAnnotations(flags.Get("annotations", ""), *ontology);
  if (!annotations.ok()) return Fail(annotations.status());
  auto labeled = ReadLabeledMotifs(flags.Get("labeled", ""), *ontology);
  if (!labeled.ok()) return Fail(labeled.status());
  load_timer.reset();

  InformativeConfig informative_config;
  informative_config.min_direct_proteins = flags.GetSize(
      "informative", std::max<size_t>(5, graph->num_vertices() / 140));
  auto snapshot = [&] {
    const ScopedTimer timer("build");
    return BuildSnapshot(std::move(*graph), std::move(*ontology),
                         std::move(*annotations), std::move(*labeled),
                         informative_config);
  }();
  // Deltas fold in before versioning/sharding so shard files carry the
  // updated state too.
  const std::string deltas = flags.Get("apply-deltas", "");
  if (!deltas.empty()) {
    const ScopedTimer timer("apply-deltas");
    const Status status = ApplyDeltaFile(deltas, &snapshot);
    if (!status.ok()) return Fail(status);
  }
  // --snapshot-version 2 writes the previous layout (no predictor section)
  // for downgrade/compatibility testing; such a file serves lms only.
  const size_t snapshot_version =
      flags.GetSize("snapshot-version", kSnapshotVersion);
  if (snapshot_version < kMinSnapshotVersion ||
      snapshot_version > kSnapshotVersion) {
    return Fail(Status::InvalidArgument(
        "--snapshot-version must be in [" +
        std::to_string(kMinSnapshotVersion) + ", " +
        std::to_string(kSnapshotVersion) + "]"));
  }
  snapshot.version = static_cast<uint32_t>(snapshot_version);

  const std::string out = flags.Get("out", "model.lamosnap");
  {
    const ScopedTimer timer("write");
    const Status status = WriteSnapshot(snapshot, out);
    if (!status.ok()) return Fail(status);
  }
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(out, ec);
  std::printf("packed %zu proteins, %zu terms, %zu labeled motifs -> %s "
              "(%llu bytes)\n",
              snapshot.graph.num_vertices(), snapshot.ontology.num_terms(),
              snapshot.motifs.size(), out.c_str(),
              ec ? 0ull : static_cast<unsigned long long>(bytes));

  // --shards N additionally writes <out>.shard<i>ofN for the router's
  // sharded placement: shard i answers PREDICT/MOTIFS byte-identically to
  // the full snapshot for every protein with p % N == i.
  const size_t num_shards = flags.GetSize("shards", 1);
  if (num_shards > 1) {
    if (num_shards > 256) {
      return Fail(Status::InvalidArgument("--shards must be <= 256"));
    }
    const ScopedTimer timer("shards");
    for (size_t i = 0; i < num_shards; ++i) {
      const Snapshot shard =
          MakeShard(snapshot, static_cast<uint32_t>(i),
                    static_cast<uint32_t>(num_shards));
      const std::string shard_path = ShardSnapshotPath(
          out, static_cast<uint32_t>(i), static_cast<uint32_t>(num_shards));
      const Status status = WriteSnapshot(shard, shard_path);
      if (!status.ok()) return Fail(status);
      std::error_code shard_ec;
      const auto shard_bytes = std::filesystem::file_size(shard_path, shard_ec);
      std::printf("  shard %zu/%zu -> %s (%llu bytes)\n", i, num_shards,
                  shard_path.c_str(),
                  shard_ec ? 0ull
                           : static_cast<unsigned long long>(shard_bytes));
    }
  }
  return obs.Finish("pack");
}

/// Opens the sampled JSONL access log configured by --access-log /
/// --access-sample / --slow-ms, or returns nullptr when --access-log is
/// absent. --access-sample 0 is normalized to 1 (log everything) so a
/// mistyped zero cannot divide-by-zero the sampler.
StatusOr<std::unique_ptr<AccessLog>> OpenAccessLog(const Flags& flags) {
  const std::string path = flags.Get("access-log", "");
  if (path.empty()) return std::unique_ptr<AccessLog>();
  AccessLogOptions options;
  options.path = path;
  options.sample = std::max<uint64_t>(1, flags.GetSize("access-sample", 1));
  options.slow_ms = flags.GetSize("slow-ms", 0);
  return AccessLog::Open(options);
}

int CmdServe(const Flags& flags) {
  ApplyThreadFlag(flags);
  // Always collect: the METRICS verb reads the process-wide sink, and
  // backends spawned by the router never pass --stats/--report.
  ObsScope obs(flags, /*always_collect=*/true);
  std::optional<ScopedTimer> load_timer;
  load_timer.emplace("load");
  auto snapshot = ReadSnapshot(flags.Get("snapshot", ""));
  if (!snapshot.ok()) return Fail(snapshot.status());
  load_timer.reset();

  std::string predictor_name;
  if (!ResolvePredictorFlag(flags, &predictor_name)) return Usage();
  obs.Annotate("predictor", predictor_name);
  const size_t cache_capacity =
      flags.Has("no-cache")
          ? 0
          : flags.GetSize("cache-capacity", kDefaultServeCacheCapacity);
  SnapshotService service(std::move(*snapshot), cache_capacity);
  if (predictor_name != "lms") {
    const Status status = service.UsePredictor(predictor_name);
    if (!status.ok()) return Fail(status);
  }
  // Journal before serving starts: replay of a pre-existing journal must
  // finish before the first query, and AttachJournal is not synchronized
  // against concurrent Handle calls.
  const std::string journal_path = flags.Get("journal", "");
  if (!journal_path.empty()) {
    const Status status = service.AttachJournal(journal_path);
    if (!status.ok()) return Fail(status);
    std::fprintf(stderr, "lamo serve: journal %s attached (%llu updates)\n",
                 journal_path.c_str(),
                 static_cast<unsigned long long>(
                     service.stats().updates.load()));
  }
  auto access_log = OpenAccessLog(flags);
  if (!access_log.ok()) return Fail(access_log.status());
  if (*access_log != nullptr) service.set_access_log(access_log->get());
  // Load banner on stderr: in --stdin mode stdout carries only responses.
  std::fprintf(stderr,
               "lamo serve: loaded %s (%zu proteins, %zu terms, %zu labeled "
               "motifs, cache capacity %zu, predictor %s)\n",
               flags.Get("snapshot", "").c_str(),
               service.snapshot().graph.num_vertices(),
               service.snapshot().ontology.num_terms(),
               service.snapshot().motifs.size(), cache_capacity,
               service.predictor_name().c_str());

  // --watch-deltas FILE: a background poller tails the file for complete
  // `ADDEDGE u v` / `DELEDGE u v` lines (blank/# lines skipped) and feeds
  // each through the ordinary Handle path — same validation, journaling,
  // cache invalidation and update.* metrics as a TCP mutation. A torn
  // trailing line (writer mid-append) waits for its newline; a shrunken
  // file (rotation) restarts the tail from the top.
  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  const std::string watch_path = flags.Get("watch-deltas", "");
  if (!watch_path.empty()) {
    const uint64_t interval_ms = flags.GetSize("watch-interval-ms", 200);
    watcher = std::thread([&service, watch_path, interval_ms, &watch_stop] {
      uint64_t offset = 0;
      while (!watch_stop.load(std::memory_order_acquire)) {
        std::ifstream in(watch_path, std::ios::binary);
        if (in.is_open()) {
          in.seekg(0, std::ios::end);
          const uint64_t size = static_cast<uint64_t>(in.tellg());
          if (size < offset) offset = 0;  // truncated/rotated: re-tail
          if (size > offset) {
            in.seekg(static_cast<std::streamoff>(offset));
            std::string pending(size - offset, '\0');
            in.read(pending.data(),
                    static_cast<std::streamsize>(pending.size()));
            size_t consumed = 0;
            size_t newline;
            while ((newline = pending.find('\n', consumed)) !=
                   std::string::npos) {
              std::string line = pending.substr(consumed, newline - consumed);
              if (!line.empty() && line.back() == '\r') line.pop_back();
              consumed = newline + 1;
              if (!IsDeltaComment(line)) {
                std::string response = service.Handle(line);
                while (!response.empty() &&
                       (response.back() == '\n' || response.back() == '\r')) {
                  response.pop_back();
                }
                std::replace(response.begin(), response.end(), '\n', ' ');
                std::fprintf(stderr, "lamo serve: watch-deltas \"%s\": %s\n",
                             line.c_str(), response.c_str());
              }
            }
            offset += consumed;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
    });
    std::fprintf(stderr,
                 "lamo serve: watching %s for deltas every %llu ms\n",
                 watch_path.c_str(),
                 static_cast<unsigned long long>(interval_ms));
  }

  std::optional<ScopedTimer> serve_timer;
  serve_timer.emplace("serve");
  Status status;
  if (flags.Has("stdin")) {
    status = RunStreamServer(&service, std::cin, std::cout);
  } else {
    ServeOptions options;
    options.port = static_cast<uint16_t>(flags.GetSize("port", 0));
    options.request_timeout_ms =
        flags.GetSize("request-timeout-ms", options.request_timeout_ms);
    options.idle_timeout_ms =
        flags.GetSize("idle-timeout-ms", options.idle_timeout_ms);
    options.max_conns = flags.GetSize("max-conns", options.max_conns);
    options.max_line_bytes =
        flags.GetSize("max-line-bytes", options.max_line_bytes);
    options.log = stdout;
    status = RunTcpServer(&service, options);
  }
  if (watcher.joinable()) {
    watch_stop.store(true, std::memory_order_release);
    watcher.join();
  }
  serve_timer.reset();
  if (!status.ok()) return Fail(status);
  return obs.Finish("serve");
}

/// Absolute path of this executable, exec'd again as `lamo serve` for each
/// router backend so a relocated or renamed binary still supervises the
/// right code.
StatusOr<std::string> SelfExePath() {
  std::error_code ec;
  const auto path = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return Status::IoError("cannot resolve /proc/self/exe");
  return path.string();
}

int CmdRouter(const Flags& flags) {
  ApplyThreadFlag(flags);
  // Always collect, like serve: METRICS renders the router's own registry
  // and re-exports per-backend scrapes.
  ObsScope obs(flags, /*always_collect=*/true);

  const std::string mode = flags.Get("mode", "sharded");
  if (mode != "sharded" && mode != "replicated") {
    return Fail(
        Status::InvalidArgument("--mode must be sharded or replicated"));
  }
  auto binary = SelfExePath();
  if (!binary.ok()) return Fail(binary.status());

  ClusterOptions cluster_options;
  cluster_options.binary = *binary;
  cluster_options.snapshot = flags.Get("snapshot", "");
  cluster_options.sharded = mode == "sharded";
  cluster_options.num_backends = flags.GetSize("backends", 2);
  cluster_options.retry_deadline_ms =
      flags.GetSize("retry-deadline-ms", cluster_options.retry_deadline_ms);
  cluster_options.backend_access_log = flags.Get("backend-access-log", "");
  cluster_options.backend_access_sample =
      std::max<uint64_t>(1, flags.GetSize("access-sample", 1));
  cluster_options.backend_slow_ms = flags.GetSize("slow-ms", 0);
  // --predictors NAME[,NAME...] assigns backend i the i-th name (mod the
  // list), so `--predictors lms,gds` A/B-splits a replicated cluster across
  // two backends. Every name must be registered.
  if (flags.Has("predictors")) {
    for (const std::string& name : Split(flags.Get("predictors", ""), ',')) {
      if (!IsRegisteredPredictor(name)) {
        std::fprintf(stderr,
                     "error: unknown predictor \"%s\" in --predictors "
                     "(registered: %s)\n",
                     name.c_str(), PredictorNamesUsage().c_str());
        return Usage();
      }
      cluster_options.predictors.push_back(name);
    }
  }
  cluster_options.log = stdout;
  if (cluster_options.num_backends == 0 || cluster_options.num_backends > 64) {
    return Fail(Status::InvalidArgument("--backends must be in [1, 64]"));
  }
  // Fail with a pointer to `pack --shards` before spawning anything when
  // the shard files are missing.
  Cluster cluster(cluster_options);
  for (size_t i = 0; i < cluster_options.num_backends; ++i) {
    const std::string path =
        cluster.SnapshotPathFor(cluster_options.snapshot, i);
    if (!std::filesystem::exists(path)) {
      return Fail(Status::NotFound(
          path + " not found" +
          (cluster_options.sharded && cluster_options.num_backends > 1
               ? " (create shard files with: lamo pack ... --shards " +
                     std::to_string(cluster_options.num_backends) + ")"
               : "")));
    }
  }

  std::optional<ScopedTimer> start_timer;
  start_timer.emplace("start");
  const Status started = cluster.Start();
  if (!started.ok()) return Fail(started);
  start_timer.reset();
  std::fprintf(stderr,
               "lamo router: %zu %s backend(s) up on %s\n",
               cluster.size(), mode.c_str(),
               cluster_options.snapshot.c_str());

  RouterService service(&cluster, cluster_options.sharded);
  auto access_log = OpenAccessLog(flags);
  if (!access_log.ok()) return Fail(access_log.status());
  if (*access_log != nullptr) service.set_access_log(access_log->get());
  ServeOptions options;
  options.port = static_cast<uint16_t>(flags.GetSize("port", 0));
  // The router's own budget must exceed the backend retry deadline, or a
  // request waiting out a backend respawn times out client-side just
  // before it would have been answered.
  options.request_timeout_ms = flags.GetSize("request-timeout-ms", 30'000);
  options.idle_timeout_ms =
      flags.GetSize("idle-timeout-ms", options.idle_timeout_ms);
  options.max_conns = flags.GetSize("max-conns", options.max_conns);
  options.max_line_bytes =
      flags.GetSize("max-line-bytes", options.max_line_bytes);
  options.name = "lamo router";
  options.on_sighup = [&service] { service.ReloadAsync(); };
  options.log = stdout;

  std::optional<ScopedTimer> serve_timer;
  serve_timer.emplace("router");
  const Status status = RunTcpServer(&service, options);
  serve_timer.reset();
  cluster.Stop();
  if (!status.ok()) return Fail(status);
  return obs.Finish("router");
}

/// Prints every registered fault point, one per line. The crash-matrix test
/// iterates this list so a new fault point without test coverage fails CI
/// instead of silently shipping untested.
int CmdFaultPoints(const Flags&) {
  for (const std::string& name : FaultPointNames()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int Usage() {
  // Predictor names render from the registry so this text cannot drift from
  // the factories (the same string validates --predictor/--predictors).
  const std::string predictors = PredictorNamesUsage();
  std::fprintf(
      stderr,
      "usage: lamo <command> [--flag value ...]\n"
      "commands:\n"
      "  generate  --proteins N --seed S --copies C --out PREFIX\n"
      "  stats     --graph FILE\n"
      "  mine      --graph FILE --algo levelwise|esu --min-size K --max-size K\n"
      "            --min-freq F --networks R --uniqueness U --beam B --seed S\n"
      "            --threads N --out FILE\n"
      "  label     --graph FILE --obo FILE --annotations FILE --motifs FILE\n"
      "            --sigma S --max-occurrences M --informative T --threads N\n"
      "            --out FILE\n"
      "  predict   --graph FILE --obo FILE --annotations FILE\n"
      "            --labeled FILE --protein ID --top-k K --threads N\n"
      "            --predictor %s\n"
      "  pack      --graph FILE --obo FILE --annotations FILE --labeled FILE\n"
      "            --informative T --shards N --snapshot-version %u|%u\n"
      "            --apply-deltas FILE --out FILE.lamosnap\n"
      "  serve     --snapshot FILE.lamosnap [--port P | --stdin]\n"
      "            --predictor %s\n"
      "            --cache-capacity N --no-cache --threads N\n"
      "            --request-timeout-ms MS --idle-timeout-ms MS\n"
      "            --max-conns N --max-line-bytes B\n"
      "            --access-log FILE --access-sample N --slow-ms MS\n"
      "            --journal FILE --watch-deltas FILE --watch-interval-ms MS\n"
      "  router    --snapshot FILE.lamosnap --backends N\n"
      "            --predictors NAME[,NAME...]   (NAME: %s)\n"
      "            --mode sharded|replicated --port P\n"
      "            --retry-deadline-ms MS --request-timeout-ms MS\n"
      "            --idle-timeout-ms MS --max-conns N --max-line-bytes B\n"
      "            --access-log FILE --access-sample N --slow-ms MS\n"
      "            --backend-access-log PREFIX\n"
      "  fault-points   (list registered fault-injection points)\n"
      "Unknown flags, missing flag values and malformed numbers are rejected.\n"
      "mine and label are crash-safe: --checkpoint DIR writes atomic progress\n"
      "checkpoints (every --checkpoint-every N chunks/replicates/motifs, see\n"
      "docs/FORMATS.md), and --resume restarts from the newest valid\n"
      "checkpoint; a resumed run produces byte-identical output. The serve\n"
      "daemon sheds abusive clients: requests and unfinished request lines\n"
      "past --request-timeout-ms get ERR DeadlineExceeded, silent\n"
      "connections past --idle-timeout-ms are reaped, request lines over\n"
      "--max-line-bytes get ERR InvalidArgument, and past --max-conns live\n"
      "connections new clients wait in the TCP backlog (0 disables each).\n"
      "LAMO_FAULT=point:count[:action] injects a deterministic fault at the\n"
      "Nth hit of a fault point (see lamo fault-points) for crash testing.\n"
      "mine/label/predict/pack/serve run on the parallel runtime: --threads 0\n"
      "(default) resolves via LAMO_THREADS, then hardware concurrency;\n"
      "--threads 1 is fully serial. Output is identical for any thread count.\n"
      "They also take --report FILE (write a JSON run report: phase wall\n"
      "times, counters, latency histograms, per-worker breakdown; schema in\n"
      "docs/FORMATS.md), --stats (human summary of the same on stderr), and\n"
      "--trace FILE (write a Chrome trace-event JSON of pipeline spans,\n"
      "loadable in chrome://tracing or ui.perfetto.dev; per-thread ring\n"
      "capacity via --trace-capacity EVENTS, default 65536 — overflow drops\n"
      "oldest events and counts them in trace.dropped). Summarize a trace\n"
      "offline with lamo_trace_summary.\n"
      "pack compiles ontology+annotations+labeled motifs+network into one\n"
      "checksummed binary snapshot; serve answers PREDICT/MOTIFS/TERMINFO/\n"
      "HEALTH/STATS/METRICS queries over TCP on 127.0.0.1 (--port 0 picks a\n"
      "free port) or line-by-line on stdin (--stdin); see docs/FORMATS.md\n"
      "for the snapshot layout and the wire protocol. METRICS renders live\n"
      "counters, histograms and 10s/60s window rates in Prometheus text\n"
      "exposition format (validate with lamo_metrics_check). --access-log\n"
      "FILE appends one JSON line per served request (every --access-sample\n"
      "Nth; requests at or over --slow-ms always) with the request id, verb,\n"
      "status, latency and span breakdown. Benchmark a running server with\n"
      "lamo_bench_client; `lamo_bench_client --top` polls STATS+METRICS\n"
      "into a live per-backend table.\n"
      "router fronts N supervised serve backends with the same wire\n"
      "protocol: pack --shards N splits the per-protein index into\n"
      "FILE.lamosnap.shard<i>ofN files and --mode sharded routes by\n"
      "protein id; --mode replicated puts whole snapshots behind\n"
      "consistent hashing with least-loaded failover. Dead backends are\n"
      "respawned, and `RELOAD PATH` (or SIGHUP) rolls every backend onto a\n"
      "new snapshot one at a time without failing in-flight requests;\n"
      "aggregated HEALTH/STATS report per-backend snapshot checksums. The\n"
      "router stamps each forwarded query with a `#<id>` request-ID token\n"
      "so router and backend access logs correlate; METRICS on the router\n"
      "additionally scrapes every backend and re-exports its series with\n"
      "backend=/shard= labels. --backend-access-log PREFIX gives backend i\n"
      "its own access log at PREFIX.<i>.\n"
      "predict and serve answer through a pluggable predictor backend\n"
      "(--predictor %s): lms votes from labeled motifs (the paper's\n"
      "method), gds by graphlet-degree-signature similarity, role by\n"
      "iterative role similarity; for the same backend, served PREDICT\n"
      "responses are byte-identical to offline predict output. gds/role\n"
      "serving needs the snapshot's predictor section (version %u;\n"
      "--snapshot-version %u packs the old layout, which serves lms only).\n"
      "router --predictors lms,gds interleaves backends across predictors\n"
      "for A/B serving; STATS shows each backend's active predictor.\n"
      "serve also accepts live edge updates: ADDEDGE/DELEDGE patch the\n"
      "in-memory interactome incrementally (motif occurrences, frequencies,\n"
      "strengths, site index, predictor matrices) and PREDICT_EDGE scores a\n"
      "candidate interaction by weighted motif completion. --journal FILE\n"
      "write-ahead-logs every update (fsync before apply) and replays it on\n"
      "restart; --watch-deltas FILE tails a delta file for the same grammar\n"
      "every --watch-interval-ms (default 200). pack --apply-deltas FILE\n"
      "folds a delta file into the snapshot through the same engine, so a\n"
      "live-updated server and a repacked one answer byte-identically. The\n"
      "router fans ADDEDGE/DELEDGE out to every backend and routes\n"
      "PREDICT_EDGE like PREDICT.\n",
      predictors.c_str(), static_cast<unsigned>(kMinSnapshotVersion),
      static_cast<unsigned>(kSnapshotVersion), predictors.c_str(),
      predictors.c_str(), predictors.c_str(),
      static_cast<unsigned>(kSnapshotVersion),
      static_cast<unsigned>(kMinSnapshotVersion));
  return 2;
}

struct Command {
  const char* name;
  std::vector<FlagSpec> flags;
  int (*run)(const Flags&);
};

const std::vector<Command>& Commands() {
  static const std::vector<Command> kCommands = {
      {"generate",
       {{"proteins", FlagKind::kSize},
        {"seed", FlagKind::kSize},
        {"copies", FlagKind::kSize},
        {"informative", FlagKind::kSize},
        {"out", FlagKind::kString}},
       CmdGenerate},
      {"stats", {{"graph", FlagKind::kString}}, CmdStats},
      {"mine",
       WithCheckpointFlags(
           WithCommonFlags({{"graph", FlagKind::kString},
                            {"algo", FlagKind::kString},
                            {"min-size", FlagKind::kSize},
                            {"max-size", FlagKind::kSize},
                            {"min-freq", FlagKind::kSize},
                            {"networks", FlagKind::kSize},
                            {"uniqueness", FlagKind::kDouble},
                            {"beam", FlagKind::kSize},
                            {"seed", FlagKind::kSize},
                            {"out", FlagKind::kString}})),
       CmdMine},
      {"label",
       WithCheckpointFlags(
           WithCommonFlags({{"graph", FlagKind::kString},
                            {"obo", FlagKind::kString},
                            {"annotations", FlagKind::kString},
                            {"motifs", FlagKind::kString},
                            {"sigma", FlagKind::kSize},
                            {"max-occurrences", FlagKind::kSize},
                            {"informative", FlagKind::kSize},
                            {"out", FlagKind::kString}})),
       CmdLabel},
      {"predict",
       WithCommonFlags({{"graph", FlagKind::kString},
                        {"obo", FlagKind::kString},
                        {"annotations", FlagKind::kString},
                        {"labeled", FlagKind::kString},
                        {"protein", FlagKind::kSize},
                        {"top-k", FlagKind::kSize},
                        {"predictor", FlagKind::kString}}),
       CmdPredict},
      {"pack",
       WithCommonFlags({{"graph", FlagKind::kString},
                        {"obo", FlagKind::kString},
                        {"annotations", FlagKind::kString},
                        {"labeled", FlagKind::kString},
                        {"informative", FlagKind::kSize},
                        {"shards", FlagKind::kSize},
                        {"snapshot-version", FlagKind::kSize},
                        {"apply-deltas", FlagKind::kString},
                        {"out", FlagKind::kString}}),
       CmdPack},
      {"serve",
       WithCommonFlags({{"snapshot", FlagKind::kString},
                        {"predictor", FlagKind::kString},
                        {"port", FlagKind::kSize},
                        {"stdin", FlagKind::kBool},
                        {"cache-capacity", FlagKind::kSize},
                        {"no-cache", FlagKind::kBool},
                        {"request-timeout-ms", FlagKind::kSize},
                        {"idle-timeout-ms", FlagKind::kSize},
                        {"max-conns", FlagKind::kSize},
                        {"max-line-bytes", FlagKind::kSize},
                        {"access-log", FlagKind::kString},
                        {"access-sample", FlagKind::kSize},
                        {"slow-ms", FlagKind::kSize},
                        {"journal", FlagKind::kString},
                        {"watch-deltas", FlagKind::kString},
                        {"watch-interval-ms", FlagKind::kSize}}),
       CmdServe},
      {"router",
       WithCommonFlags({{"snapshot", FlagKind::kString},
                        {"predictors", FlagKind::kString},
                        {"backends", FlagKind::kSize},
                        {"mode", FlagKind::kString},
                        {"port", FlagKind::kSize},
                        {"retry-deadline-ms", FlagKind::kSize},
                        {"request-timeout-ms", FlagKind::kSize},
                        {"idle-timeout-ms", FlagKind::kSize},
                        {"max-conns", FlagKind::kSize},
                        {"max-line-bytes", FlagKind::kSize},
                        {"access-log", FlagKind::kString},
                        {"access-sample", FlagKind::kSize},
                        {"slow-ms", FlagKind::kSize},
                        {"backend-access-log", FlagKind::kString}}),
       CmdRouter},
      {"fault-points", {}, CmdFaultPoints},
  };
  return kCommands;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  for (const Command& cmd : Commands()) {
    if (command != cmd.name) continue;
    auto flags = Flags::Parse(argc, argv, 2, cmd.flags);
    if (!flags.ok()) {
      std::fprintf(stderr, "error: %s\n", flags.status().ToString().c_str());
      return Usage();
    }
    return cmd.run(*flags);
  }
  std::fprintf(stderr, "error: unknown command \"%s\"\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace lamo

int main(int argc, char** argv) { return lamo::Main(argc, argv); }
