// lamo — command-line driver for the LaMoFinder pipeline.
//
//   lamo generate --proteins 1500 --seed 7 --out data/run1
//   lamo stats    --graph data/run1.graph.txt
//   lamo mine     --graph data/run1.graph.txt --min-size 3 --max-size 5
//                 --min-freq 40 --out data/run1.motifs.txt
//   lamo label    --graph data/run1.graph.txt --obo data/run1.obo
//                 --annotations data/run1.annotations.tsv
//                 --motifs data/run1.motifs.txt --sigma 10
//                 --out data/run1.labeled.txt
//   lamo predict  --graph data/run1.graph.txt --obo data/run1.obo
//                 --annotations data/run1.annotations.tsv
//                 --labeled data/run1.labeled.txt --protein 42
//
// Each stage reads and writes the plain-text formats of src/io, so stages
// can be rerun, diffed and mixed with external tools.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "core/lamofinder.h"
#include "graph/algorithms.h"
#include "io/edge_list.h"
#include "io/gaf.h"
#include "io/motif_io.h"
#include "io/obo.h"
#include "motif/esu_finder.h"
#include "motif/uniqueness.h"
#include "obs/obs.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "predict/labeled_motif_predictor.h"
#include "synth/dataset.h"
#include "util/string_util.h"

namespace lamo {
namespace {

class Flags {
 public:
  // `--name value` pairs; a `--name` followed by another flag (or nothing)
  // is a boolean and stores "1" (e.g. --stats). Flag values never begin
  // with "--" in this CLI.
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        ++i;
        continue;
      }
      const char* name = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[name] = argv[i + 1];
        i += 2;
      } else {
        values_[name] = "1";
        ++i;
      }
    }
  }
  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  size_t GetSize(const std::string& name, size_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    uint64_t value = 0;
    return ParseUint64(it->second, &value) ? static_cast<size_t>(value)
                                           : fallback;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    double value = 0;
    return ParseDouble(it->second, &value) ? value : fallback;
  }
  bool Has(const std::string& name) const { return values_.count(name) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Applies --threads N (0 = auto: LAMO_THREADS env, then hardware
// concurrency) for the stages that run on the parallel runtime.
void ApplyThreadFlag(const Flags& flags) {
  SetThreadCount(flags.GetSize("threads", 0));
}

// Turns on metric collection for one command when --report/--stats/--trace
// ask for it. Construct before the pipeline runs, call Finish() after it
// succeeds; early error returns rely on ~ObsSink / ~TraceCollector
// auto-uninstalling.
class ObsScope {
 public:
  explicit ObsScope(const Flags& flags)
      : report_path_(flags.Get("report", "")),
        trace_path_(flags.Get("trace", "")),
        stats_(flags.Has("stats")) {
    if (stats_ || !report_path_.empty()) {
      sink_.emplace();
      SetObsSink(&*sink_);
    }
    if (!trace_path_.empty()) {
      tracer_.emplace(flags.GetSize("trace-capacity",
                                    kDefaultTraceEventsPerThread));
      SetTraceCollector(&*tracer_);
    }
  }

  // Uninstalls the sink and tracer, prints the --stats summary, writes the
  // --report JSON and the --trace Chrome trace. Returns the command's exit
  // code (non-zero on report/trace I/O failure).
  int Finish(const std::string& command) {
    if (tracer_.has_value()) {
      SetTraceCollector(nullptr);
      const Status status = tracer_->WriteFile(trace_path_);
      if (!status.ok()) return Fail(status);
    }
    if (!sink_.has_value()) return 0;
    SetObsSink(nullptr);
    const size_t threads = ThreadCount();
    if (stats_) PrintRunSummary(*sink_, command, threads, stderr);
    if (!report_path_.empty()) {
      const Status status =
          WriteRunReport(*sink_, command, threads, report_path_);
      if (!status.ok()) return Fail(status);
    }
    return 0;
  }

 private:
  std::string report_path_;
  std::string trace_path_;
  bool stats_;
  std::optional<ObsSink> sink_;
  std::optional<TraceCollector> tracer_;
};

int CmdGenerate(const Flags& flags) {
  SyntheticDatasetConfig config = BindScaleConfig();
  config.num_proteins = flags.GetSize("proteins", 1500);
  config.seed = flags.GetSize("seed", 2007);
  config.copies_per_template = flags.GetSize("copies", 60);
  config.informative_threshold =
      flags.GetSize("informative", std::max<size_t>(5, config.num_proteins / 140));
  const std::string prefix = flags.Get("out", "lamo_dataset");

  const SyntheticDataset dataset = BuildSyntheticDataset(config);
  Status status = WriteEdgeList(dataset.ppi, prefix + ".graph.txt");
  if (!status.ok()) return Fail(status);
  status = WriteObo(dataset.ontology, prefix + ".obo");
  if (!status.ok()) return Fail(status);
  status = WriteAnnotations(dataset.annotations, dataset.ontology,
                            prefix + ".annotations.tsv");
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s.graph.txt (%s), %s.obo (%zu terms), "
              "%s.annotations.tsv (%zu annotated proteins)\n",
              prefix.c_str(), dataset.ppi.ToString().c_str(), prefix.c_str(),
              dataset.ontology.num_terms(), prefix.c_str(),
              dataset.annotations.CountAnnotated());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  std::printf("%s\n", graph->ToString().c_str());
  std::printf("components: %zu (largest %zu)\n", CountComponents(*graph),
              LargestComponent(*graph).size());
  std::printf("mean degree: %.2f, max degree: %zu\n", MeanDegree(*graph),
              graph->MaxDegree());
  std::printf("triangles: %zu, clustering coefficient: %.4f\n",
              CountTriangles(*graph), GlobalClusteringCoefficient(*graph));
  return 0;
}

int CmdMine(const Flags& flags) {
  ApplyThreadFlag(flags);
  ObsScope obs(flags);
  const auto graph = [&] {
    const ScopedTimer timer("load");
    return ReadEdgeList(flags.Get("graph", ""));
  }();
  if (!graph.ok()) return Fail(graph.status());

  const std::string algo = flags.Get("algo", "levelwise");
  std::vector<Motif> motifs;
  if (algo == "esu") {
    // FANMOD route: exhaustive per-size ESU enumeration + ensemble
    // uniqueness, one pass per size in [min-size, max-size].
    const ScopedTimer timer("mine");
    EsuMotifConfig config;
    config.min_frequency = flags.GetSize("min-freq", 40);
    config.num_random_networks = flags.GetSize("networks", 10);
    config.uniqueness_threshold = flags.GetDouble("uniqueness", 0.95);
    config.seed = flags.GetSize("seed", 42);
    const size_t min_size = flags.GetSize("min-size", 3);
    const size_t max_size = flags.GetSize("max-size", 5);
    for (size_t size = min_size; size <= max_size; ++size) {
      config.size = size;
      auto per_size = FindNetworkMotifsEsu(*graph, config);
      for (auto& motif : per_size) motifs.push_back(std::move(motif));
    }
  } else if (algo == "levelwise") {
    const ScopedTimer timer("mine");
    MotifFindingConfig config;
    config.miner.min_size = flags.GetSize("min-size", 3);
    config.miner.max_size = flags.GetSize("max-size", 5);
    config.miner.min_frequency = flags.GetSize("min-freq", 40);
    config.miner.max_patterns_per_level = flags.GetSize("beam", 60);
    config.uniqueness.num_random_networks = flags.GetSize("networks", 10);
    config.uniqueness_threshold = flags.GetDouble("uniqueness", 0.95);
    motifs = FindNetworkMotifs(*graph, config);
  } else {
    return Fail(Status::InvalidArgument("--algo must be levelwise or esu"));
  }
  std::printf("found %zu network motifs\n", motifs.size());

  {
    const ScopedTimer timer("write");
    const Status status = WriteMotifs(motifs, flags.Get("out", "motifs.txt"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("wrote %s\n", flags.Get("out", "motifs.txt").c_str());
  return obs.Finish("mine");
}

int CmdLabel(const Flags& flags) {
  ApplyThreadFlag(flags);
  ObsScope obs(flags);
  std::optional<ScopedTimer> load_timer;
  load_timer.emplace("load");
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  auto ontology = ReadObo(flags.Get("obo", ""));
  if (!ontology.ok()) return Fail(ontology.status());
  auto annotations = ReadAnnotations(flags.Get("annotations", ""), *ontology);
  if (!annotations.ok()) return Fail(annotations.status());
  auto motifs = ReadMotifs(flags.Get("motifs", ""));
  if (!motifs.ok()) return Fail(motifs.status());
  load_timer.reset();

  const TermWeights weights = TermWeights::Compute(*ontology, *annotations);
  InformativeConfig informative_config;
  informative_config.min_direct_proteins = flags.GetSize(
      "informative", std::max<size_t>(5, graph->num_vertices() / 140));
  const InformativeClasses informative =
      InformativeClasses::Compute(*ontology, *annotations, informative_config);

  LaMoFinder finder(*ontology, weights, informative, *annotations);
  LaMoFinderConfig config;
  config.sigma = flags.GetSize("sigma", 10);
  config.max_occurrences = flags.GetSize("max-occurrences", 300);
  const auto labeled = [&] {
    const ScopedTimer timer("label");
    return finder.LabelAll(*motifs, config);
  }();
  std::printf("labeled %zu motifs -> %zu labeled motifs\n", motifs->size(),
              labeled.size());

  {
    const ScopedTimer timer("write");
    const Status status = WriteLabeledMotifs(labeled, *ontology,
                                             flags.Get("out", "labeled.txt"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("wrote %s\n", flags.Get("out", "labeled.txt").c_str());
  return obs.Finish("label");
}

int CmdPredict(const Flags& flags) {
  ApplyThreadFlag(flags);
  ObsScope obs(flags);
  std::optional<ScopedTimer> load_timer;
  load_timer.emplace("load");
  auto graph = ReadEdgeList(flags.Get("graph", ""));
  if (!graph.ok()) return Fail(graph.status());
  auto ontology = ReadObo(flags.Get("obo", ""));
  if (!ontology.ok()) return Fail(ontology.status());
  auto annotations = ReadAnnotations(flags.Get("annotations", ""), *ontology);
  if (!annotations.ok()) return Fail(annotations.status());
  auto labeled = ReadLabeledMotifs(flags.Get("labeled", ""), *ontology);
  if (!labeled.ok()) return Fail(labeled.status());
  load_timer.reset();

  // Closed before obs.Finish() so the phase makes it into report and trace.
  std::optional<ScopedTimer> predict_timer;
  predict_timer.emplace("predict");
  // Categories: the root's children; protein categories via the true-path.
  PredictionContext context;
  context.ppi = &*graph;
  const TermId root = ontology->Roots()[0];
  context.categories.assign(ontology->Children(root).begin(),
                            ontology->Children(root).end());
  context.protein_categories.resize(graph->num_vertices());
  for (ProteinId p = 0; p < graph->num_vertices(); ++p) {
    std::vector<TermId>& cats = context.protein_categories[p];
    for (TermId t : annotations->TermsOf(p)) {
      for (TermId c : context.categories) {
        if (ontology->IsAncestorOrEqual(c, t)) {
          if (!std::binary_search(cats.begin(), cats.end(), c)) {
            cats.insert(std::lower_bound(cats.begin(), cats.end(), c), c);
          }
        }
      }
    }
  }

  LabeledMotifPredictor predictor(context, *ontology, *labeled);
  const ProteinId protein =
      static_cast<ProteinId>(flags.GetSize("protein", 0));
  if (protein >= graph->num_vertices()) {
    return Fail(Status::InvalidArgument("--protein out of range"));
  }
  if (!predictor.Covers(protein)) {
    std::printf("protein %u occurs in no labeled motif; no prediction\n",
                protein);
    predict_timer.reset();
    return obs.Finish("predict");
  }
  const size_t top_k = flags.GetSize("top-k", 3);
  std::printf("top predictions for protein %u:\n", protein);
  const auto predictions = predictor.Predict(protein);
  for (size_t i = 0; i < std::min(top_k, predictions.size()); ++i) {
    std::printf("  %zu. %s (score %.3f)%s\n", i + 1,
                ontology->TermName(predictions[i].category).c_str(),
                predictions[i].score,
                context.HasCategory(protein, predictions[i].category)
                    ? "  [matches known annotation]"
                    : "");
  }
  predict_timer.reset();
  return obs.Finish("predict");
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: lamo <command> [--flag value ...]\n"
      "commands:\n"
      "  generate  --proteins N --seed S --copies C --out PREFIX\n"
      "  stats     --graph FILE\n"
      "  mine      --graph FILE --algo levelwise|esu --min-size K --max-size K\n"
      "            --min-freq F --networks R --uniqueness U --beam B --seed S\n"
      "            --threads N --out FILE\n"
      "  label     --graph FILE --obo FILE --annotations FILE --motifs FILE\n"
      "            --sigma S --max-occurrences M --informative T --threads N\n"
      "            --out FILE\n"
      "  predict   --graph FILE --obo FILE --annotations FILE\n"
      "            --labeled FILE --protein ID --top-k K --threads N\n"
      "mine/label/predict run on the parallel runtime: --threads 0 (default)\n"
      "resolves via LAMO_THREADS, then hardware concurrency; --threads 1 is\n"
      "fully serial. Output is identical for any thread count.\n"
      "mine/label/predict also take --report FILE (write a JSON run report:\n"
      "phase wall times, counters, latency histograms, per-worker breakdown;\n"
      "schema in docs/FORMATS.md), --stats (human summary of the same on\n"
      "stderr), and --trace FILE (write a Chrome trace-event JSON of pipeline\n"
      "spans, loadable in chrome://tracing or ui.perfetto.dev; per-thread\n"
      "ring capacity via --trace-capacity EVENTS, default 65536 — overflow\n"
      "drops oldest events and counts them in trace.dropped). Summarize a\n"
      "trace offline with lamo_trace_summary.\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Flags flags(argc, argv, 2);
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "mine") return CmdMine(flags);
  if (command == "label") return CmdLabel(flags);
  if (command == "predict") return CmdPredict(flags);
  return Usage();
}

}  // namespace
}  // namespace lamo

int main(int argc, char** argv) { return lamo::Main(argc, argv); }
