// Regenerates the Figure-5 argument of the paper: non-overlapping clustering
// (k-means/k-medoids) misses labeling schemes that the agglomerative
// hierarchical clustering of LaMoFinder finds, because occurrences may
// conform to several overlapping schemes at once.
//
// Setup: one triangle motif with three occurrence populations — "A-pure"
// occurrences annotated under branch A, "B-pure" under branch B, and a
// smaller "bridge" population annotated under both. Schemes A and B each
// conform to their pure population *plus* the bridge, so with sigma = 10 the
// hierarchy finds both (and the bridge scheme), while a disjoint partition
// must split the bridge occurrences one way or the other.
#include <iostream>
#include <set>

#include "core/kmedoids_baseline.h"
#include "core/lamofinder.h"
#include "core/paper_example.h"
#include "graph/canonical.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace {

using namespace lamo;

struct Scenario {
  Ontology ontology;
  AnnotationTable genome{0};
  TermWeights weights;
  InformativeClasses informative;
  AnnotationTable proteins{0};
  Motif motif;
};

Scenario BuildScenario() {
  Scenario s;
  OntologyBuilder builder;
  const TermId root = builder.AddTerm("root");
  const TermId a = builder.AddTerm("A");
  const TermId b = builder.AddTerm("B");
  const TermId a1 = builder.AddTerm("A1");
  const TermId a2 = builder.AddTerm("A2");
  const TermId b1 = builder.AddTerm("B1");
  const TermId b2 = builder.AddTerm("B2");
  LAMO_CHECK(builder.AddRelation(a, root, RelationType::kIsA).ok());
  LAMO_CHECK(builder.AddRelation(b, root, RelationType::kIsA).ok());
  LAMO_CHECK(builder.AddRelation(a1, a, RelationType::kIsA).ok());
  LAMO_CHECK(builder.AddRelation(a2, a, RelationType::kIsA).ok());
  LAMO_CHECK(builder.AddRelation(b1, b, RelationType::kIsA).ok());
  LAMO_CHECK(builder.AddRelation(b2, b, RelationType::kIsA).ok());
  auto built = builder.Build();
  LAMO_CHECK(built.ok());
  s.ontology = std::move(built).value();

  // Genome: both branches informative (>= 30 direct), leaves not.
  s.genome = AnnotationTable(120);
  ProteinId next = 0;
  for (int i = 0; i < 35; ++i) LAMO_CHECK(s.genome.Annotate(next++, a).ok());
  for (int i = 0; i < 35; ++i) LAMO_CHECK(s.genome.Annotate(next++, b).ok());
  for (int i = 0; i < 15; ++i) LAMO_CHECK(s.genome.Annotate(next++, a1).ok());
  for (int i = 0; i < 10; ++i) LAMO_CHECK(s.genome.Annotate(next++, a2).ok());
  for (int i = 0; i < 15; ++i) LAMO_CHECK(s.genome.Annotate(next++, b1).ok());
  for (int i = 0; i < 10; ++i) LAMO_CHECK(s.genome.Annotate(next++, b2).ok());
  s.weights = TermWeights::Compute(s.ontology, s.genome);
  s.informative = InformativeClasses::Compute(s.ontology, s.genome);

  // 30 disjoint triangle occurrences: 12 A-pure, 12 B-pure, 6 bridge.
  const size_t kOccurrences = 30;
  s.motif.pattern = SmallGraph(3);
  s.motif.pattern.AddEdge(0, 1);
  s.motif.pattern.AddEdge(1, 2);
  s.motif.pattern.AddEdge(0, 2);
  s.motif.code = CanonicalCode(s.motif.pattern);
  s.proteins = AnnotationTable(3 * kOccurrences);
  Rng rng(5);
  for (size_t o = 0; o < kOccurrences; ++o) {
    MotifOccurrence occ;
    for (uint32_t v = 0; v < 3; ++v) {
      const ProteinId p = static_cast<ProteinId>(3 * o + v);
      occ.proteins.push_back(p);
      const bool in_a = o < 12 || o >= 24;
      const bool in_b = o >= 12;
      if (in_a) {
        LAMO_CHECK(
            s.proteins.Annotate(p, rng.Bernoulli(0.5) ? a1 : a2).ok());
      }
      if (in_b) {
        LAMO_CHECK(
            s.proteins.Annotate(p, rng.Bernoulli(0.5) ? b1 : b2).ok());
      }
    }
    s.motif.occurrences.push_back(std::move(occ));
  }
  s.motif.frequency = s.motif.occurrences.size();
  s.motif.uniqueness = 1.0;
  return s;
}

}  // namespace

int main() {
  const Scenario s = BuildScenario();
  const size_t sigma = 10;

  std::cout << "=== Figure 5: hierarchical vs non-overlapping clustering "
               "===\n\n";
  std::cout << "occurrences: 12 under branch A, 12 under branch B, 6 under "
               "both (bridge); sigma = "
            << sigma << "\n\n";

  LaMoFinder finder(s.ontology, s.weights, s.informative, s.proteins);
  LaMoFinderConfig config;
  config.sigma = sigma;
  config.min_similarity = 0.35;
  const auto hierarchical = finder.LabelMotif(s.motif, config);

  KMedoidsConfig kmedoids_config;
  kmedoids_config.sigma = sigma;
  kmedoids_config.k = 3;
  const auto kmedoids =
      LabelMotifKMedoids(s.ontology, s.weights, s.informative, s.proteins,
                         s.motif, kmedoids_config);

  TablePrinter table({"method", "schemes found", "scheme", "conforming"});
  bool first = true;
  for (const auto& lm : hierarchical) {
    table.AddRow({first ? "LaMoFinder (hierarchical)" : "",
                  first ? std::to_string(hierarchical.size()) : "",
                  lm.SchemeToString(s.ontology), std::to_string(lm.frequency)});
    first = false;
  }
  first = true;
  for (const auto& lm : kmedoids) {
    table.AddRow({first ? "k-medoids (disjoint)" : "",
                  first ? std::to_string(kmedoids.size()) : "",
                  lm.SchemeToString(s.ontology), std::to_string(lm.frequency)});
    first = false;
  }
  if (kmedoids.empty()) {
    table.AddRow({"k-medoids (disjoint)", "0", "-", "-"});
  }
  table.Print(std::cout);

  std::cout << "\nExpected shape (paper): the hierarchy recovers overlapping "
               "schemes (>= the disjoint partition; the bridge occurrences "
               "support both branch schemes), k-means-style clustering "
               "cannot.\n";
  std::cout << "hierarchical: " << hierarchical.size()
            << " schemes, k-medoids: " << kmedoids.size() << " schemes -> "
            << (hierarchical.size() >= kmedoids.size() ? "OK" : "UNEXPECTED")
            << "\n";
  return 0;
}
