// Dynamic-interactome perf gate: a single live edge update through
// UpdateEngine::Apply (pair-anchored re-enumeration + in-place patches)
// must beat rebuilding the snapshot from scratch (full ESU re-mine +
// relabel + repack, which is what serving would otherwise have to do for
// every mutation) by a wide margin — the whole point of maintaining motifs
// incrementally.
//
//   bench_update [--proteins N] [--updates N] [--json PATH]
//                [--min-speedup X]
//
// The update workload alternates DELEDGE/ADDEDGE over existing edges, so
// the snapshot ends exactly where it started and every apply is a real
// mutation (never a rejected no-op). --json writes the measurements as one
// JSON document; scripts/reproduce.sh archives it as BENCH_update.json
// with --min-speedup 10, turning the incremental-vs-remine ratio into a
// hard regression gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "core/lamofinder.h"
#include "motif/uniqueness.h"
#include "serve/snapshot.h"
#include "serve/update.h"
#include "synth/dataset.h"

int main(int argc, char** argv) {
  using namespace lamo;
  using Clock = std::chrono::steady_clock;
  size_t num_proteins = 300;
  size_t num_updates = 20;
  const char* json_path = nullptr;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--proteins") == 0 && i + 1 < argc) {
      num_proteins = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--updates") == 0 && i + 1 < argc) {
      num_updates = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::strtod(argv[i + 1], nullptr);
    }
  }

  SyntheticDatasetConfig config;
  config.num_proteins = num_proteins;
  config.copies_per_template = num_proteins / 10;
  config.seed = 5;
  SyntheticDataset dataset = BuildSyntheticDataset(config);
  const Graph graph = dataset.ppi;  // kept: BuildSnapshot moves the original

  std::printf("=== live update vs full re-mine (%zu proteins, %zu edges, "
              "%zu updates) ===\n\n",
              graph.num_vertices(), graph.num_edges(), num_updates);

  // The re-mine baseline: the batch pipeline a server without incremental
  // maintenance would re-run per mutation. Timed once; its output also
  // seeds the snapshot the updates run against.
  const auto remine_start = Clock::now();
  MotifFindingConfig motif_config;
  motif_config.miner.min_size = 3;
  motif_config.miner.max_size = 4;
  motif_config.miner.min_frequency = 15;
  motif_config.uniqueness.num_random_networks = 4;
  motif_config.uniqueness_threshold = 0.8;
  const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);
  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 6;
  auto labeled = finder.LabelAll(motifs, label_config);
  InformativeConfig informative_config;
  informative_config.min_direct_proteins = config.informative_threshold;
  Snapshot snapshot = BuildSnapshot(
      std::move(dataset.ppi), std::move(dataset.ontology),
      std::move(dataset.annotations), std::move(labeled),
      informative_config);
  const double remine_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - remine_start)
          .count();

  // Alternate delete/re-add over spread-out existing edges: every apply
  // does real pair-anchored work and the final state equals the initial
  // one, so repeated runs measure the same graph.
  const auto edges = graph.Edges();
  if (edges.empty()) {
    std::fprintf(stderr, "no edges to mutate\n");
    return 1;
  }
  UpdateEngine engine(&snapshot);
  const size_t stride = edges.size() / (num_updates / 2 + 1) + 1;
  double total_update_ms = 0.0;
  size_t applied = 0;
  size_t resubgraphs = 0;
  for (size_t i = 0; applied < num_updates; ++i) {
    const auto [u, v] = edges[(i / 2) * stride % edges.size()];
    const bool add = (i % 2) == 1;  // delete first, then restore
    UpdateResult result;
    const auto start = Clock::now();
    const Status status = engine.Apply(add, u, v, &result);
    if (!status.ok()) {
      std::fprintf(stderr, "apply %s %u %u failed: %s\n",
                   add ? "ADDEDGE" : "DELEDGE", u, v,
                   status.message().c_str());
      return 1;
    }
    total_update_ms +=
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    ++applied;
    resubgraphs += result.resubgraphs;
  }
  const double mean_update_ms = total_update_ms / static_cast<double>(applied);
  const double speedup =
      mean_update_ms > 0.0 ? remine_ms / mean_update_ms : 0.0;

  std::printf("full re-mine (mine+label+pack):  %10.1f ms\n", remine_ms);
  std::printf("mean incremental apply:          %10.3f ms  "
              "(%zu updates, %zu re-enumerated subgraphs)\n",
              mean_update_ms, applied, resubgraphs);
  std::printf("speedup:                         %10.1fx\n\n", speedup);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"name\": \"update/incremental_vs_remine\",\n"
                 "  \"proteins\": %zu,\n"
                 "  \"edges\": %zu,\n"
                 "  \"updates\": %zu,\n"
                 "  \"resubgraphs\": %zu,\n"
                 "  \"remine_ms\": %.3f,\n"
                 "  \"mean_update_ms\": %.4f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"min_speedup\": %.2f\n"
                 "}\n",
                 graph.num_vertices(), graph.num_edges(), applied,
                 resubgraphs, remine_ms, mean_update_ms, speedup,
                 min_speedup);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: incremental update speedup %.1fx is below the "
                 "required %.1fx gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
