// Directed labeled motifs (the paper's §6 future work, implemented):
// recovers the feed-forward loop as the unique directed motif of a
// synthetic gene regulatory network — reproducing the classic Milo et al.
// (Science 2002) observation — and labels its roles with GO terms through
// the unchanged LaMoFinder pipeline.
#include <iostream>

#include "core/lamofinder.h"
#include "motif/directed_motifs.h"
#include "motif/frequency.h"
#include "synth/grn_generator.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace lamo;
  std::cout << "=== Directed motifs in a regulatory network (future-work "
               "extension; Milo et al. shape) ===\n\n";

  GrnConfig config;
  config.num_genes = 600;
  config.background_arcs = 1100;
  config.planted_ffls = 70;
  const GrnDataset dataset = BuildGrnDataset(config);
  std::cout << "network: " << dataset.grn.ToString() << " ("
            << dataset.ffls.size() << " planted FFLs)\n\n";

  DirectedMotifConfig motif_config;
  motif_config.size = 3;
  motif_config.min_frequency = 15;
  motif_config.num_random_networks = 20;
  motif_config.uniqueness_threshold = 0.0;  // show every frequent class
  const auto motifs = FindDirectedNetworkMotifs(dataset.grn, motif_config);

  SmallDigraph ffl(3);
  ffl.AddArc(0, 1);
  ffl.AddArc(0, 2);
  ffl.AddArc(1, 2);
  const auto ffl_code = DirectedCanonicalCode(ffl);

  TablePrinter table({"directed size-3 class", "freq (F1)",
                      "vertex-disjoint (F3)", "uniqueness", "motif?"});
  const DirectedMotif* ffl_motif = nullptr;
  for (const DirectedMotif& m : motifs) {
    const bool is_motif = m.as_motif.uniqueness > 0.95;
    table.AddRow({m.pattern.ToString() +
                      (m.as_motif.code == ffl_code ? "  <- FFL" : ""),
                  std::to_string(m.as_motif.frequency),
                  std::to_string(Frequency(
                      m.as_motif, FrequencyMeasure::kF3VertexDisjoint)),
                  FormatDouble(m.as_motif.uniqueness, 2),
                  is_motif ? "yes" : ""});
    if (m.as_motif.code == ffl_code) ffl_motif = &m;
  }
  table.Print(std::cout);

  if (ffl_motif == nullptr || ffl_motif->as_motif.uniqueness <= 0.95) {
    std::cout << "\nUNEXPECTED: the FFL should be the standout motif.\n";
    return 1;
  }
  std::cout << "\nExpected shape (Milo et al. / paper section 6): the "
               "feed-forward loop stands out against the arc-swap null "
               "model -> OK\n\n";

  // Label the FFL and report role coherence.
  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 10;
  label_config.max_occurrences = 200;
  const auto labeled = finder.LabelAll({ffl_motif->as_motif}, label_config);
  std::cout << "labeled FFL schemes (sigma = 10): " << labeled.size() << "\n";
  for (const LabeledMotif& lm : labeled) {
    std::cout << "  freq " << lm.frequency << ": "
              << lm.SchemeToString(dataset.ontology) << "\n";
  }
  std::cout << "\nplanted role terms: regulator "
            << dataset.ontology.TermName(dataset.ffl_role_terms[0])
            << ", intermediate "
            << dataset.ontology.TermName(dataset.ffl_role_terms[1])
            << ", target "
            << dataset.ontology.TermName(dataset.ffl_role_terms[2]) << "\n";
  return 0;
}
