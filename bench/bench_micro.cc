// Microbenchmarks of the library's hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/label_profile.h"
#include "core/occurrence_similarity.h"
#include "core/paper_example.h"
#include "graph/canonical.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "motif/esu.h"

namespace lamo {
namespace {

const PaperExample& Example() {
  static const PaperExample* example = new PaperExample(MakePaperExample());
  return *example;
}

void BM_TermSimilarityUncached(benchmark::State& state) {
  const PaperExample& ex = Example();
  for (auto _ : state) {
    // A fresh engine per iteration measures the uncached LCA search.
    TermSimilarity st(ex.ontology, ex.weights);
    benchmark::DoNotOptimize(
        st.Similarity(ex.term("G08"), ex.term("G09")));
  }
}
BENCHMARK(BM_TermSimilarityUncached);

void BM_TermSimilarityCached(benchmark::State& state) {
  const PaperExample& ex = Example();
  TermSimilarity st(ex.ontology, ex.weights);
  (void)st.Similarity(ex.term("G08"), ex.term("G09"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        st.Similarity(ex.term("G08"), ex.term("G09")));
  }
}
BENCHMARK(BM_TermSimilarityCached);

void BM_VertexSimilarity(benchmark::State& state) {
  const PaperExample& ex = Example();
  TermSimilarity st(ex.ontology, ex.weights);
  const LabelSet a{ex.term("G04"), ex.term("G09"), ex.term("G10")};
  const LabelSet b{ex.term("G03"), ex.term("G05"), ex.term("G07")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(VertexSimilarity(st, a, b));
  }
}
BENCHMARK(BM_VertexSimilarity);

void BM_OccurrenceSimilarity(benchmark::State& state) {
  const PaperExample& ex = Example();
  TermSimilarity st(ex.ontology, ex.weights);
  OccurrenceSimilarity so(st, ex.motif);
  LabelProfile o1(4), o2(4);
  for (uint32_t pos = 0; pos < 4; ++pos) {
    const auto t1 = ex.protein_annotations.TermsOf(ex.occurrences[0][pos]);
    const auto t2 = ex.protein_annotations.TermsOf(ex.occurrences[1][pos]);
    o1[pos].assign(t1.begin(), t1.end());
    o2[pos].assign(t2.begin(), t2.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(so.Score(o1, o2));
  }
}
BENCHMARK(BM_OccurrenceSimilarity);

void BM_Canonicalize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(n);
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.3)) g.AddEdge(i, j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Canonicalize(g));
  }
}
BENCHMARK(BM_Canonicalize)->Arg(5)->Arg(10)->Arg(15)->Arg(20);

void BM_CanonicalizeClique(benchmark::State& state) {
  // Worst case for naive search; the twin-cell rule must keep this flat.
  const size_t n = static_cast<size_t>(state.range(0));
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Canonicalize(g));
  }
}
BENCHMARK(BM_CanonicalizeClique)->Arg(8)->Arg(16)->Arg(24);

void BM_Vf2CountOccurrences(benchmark::State& state) {
  Rng rng(17);
  const Graph g = DuplicationDivergence(1000, 0.3, 0.15, rng);
  SmallGraph square(4);
  square.AddEdge(0, 1);
  square.AddEdge(1, 2);
  square.AddEdge(2, 3);
  square.AddEdge(3, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountOccurrences(square, g));
  }
}
BENCHMARK(BM_Vf2CountOccurrences);

void BM_EsuEnumerate(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(19);
  const Graph g = DuplicationDivergence(600, 0.3, 0.15, rng);
  for (auto _ : state) {
    size_t count = 0;
    EnumerateConnectedSubgraphs(g, k, [&](const std::vector<VertexId>&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EsuEnumerate)->Arg(3)->Arg(4);

void BM_DegreePreservingRewire(benchmark::State& state) {
  Rng rng(23);
  const Graph g = DuplicationDivergence(1000, 0.3, 0.15, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DegreePreservingRewire(g, 3.0, rng));
  }
}
BENCHMARK(BM_DegreePreservingRewire);

}  // namespace
}  // namespace lamo

BENCHMARK_MAIN();
