// Scaling benchmarks backing the complexity claims of Section 3:
//  - LaMoFinder's pairwise-similarity stage is O(|D|^2) in the number of
//    occurrences;
//  - the symmetry computation is polynomial in motif size (the paper cites
//    an O(n^3) heuristic; our twin classes are O(n^2) and exact orbits are
//    backtracking with refinement pruning);
//  - per-orbit pairing is O(t^3) Hungarian versus the paper's O(t!)
//    enumeration.
//
// The *Threads benchmarks sweep the worker count over the parallel hot
// stages (ESU enumeration, occurrence similarity). Run with
// --benchmark_out=<file>.json --benchmark_out_format=json to get
// machine-readable speedup curves ("threads" is emitted as a counter on
// every measurement); scripts/reproduce.sh does this for every bench.
#include <benchmark/benchmark.h>

#include <chrono>

#include "core/assignment.h"
#include "core/lamofinder.h"
#include "core/paper_example.h"
#include "graph/automorphism.h"
#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/esu.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/run_report.h"
#include "parallel/parallel_for.h"
#include "util/random.h"

namespace lamo {
namespace {

// The thread-sweep benchmarks pull their per-run counters out of the same
// JSON run report the CLI writes under --report (serialize, parse, read
// back), so the report schema is exercised on every bench run.
double ReportCounter(const JsonValue& report, const std::string& name) {
  const JsonValue* counters = report.Find("counters");
  const JsonValue* value =
      counters == nullptr ? nullptr : counters->Find(name);
  return value == nullptr ? 0.0 : value->number_value;
}

// Serializes `sink` as a run report and parses it back; aborts the
// benchmark on a parse failure (which would mean the emitter is broken).
JsonValue ParsedReport(const ObsSink& sink, const std::string& command,
                       size_t threads, benchmark::State& state) {
  const std::string json = RunReportJson(sink, command, threads);
  JsonValue report;
  std::string error;
  if (!ParseJson(json, &report, &error)) state.SkipWithError(error.c_str());
  return report;
}

// p99 of a named latency histogram, straight from the in-process snapshot
// (histograms carry per-item tails the summed counters cannot express).
double HistogramP99(const ObsSink& sink, const std::string& name) {
  for (const HistogramSnapshot& hist : sink.Histograms()) {
    if (hist.name == name && hist.count > 0) return hist.Percentile(0.99);
  }
  return 0.0;
}

const PaperExample& Example() {
  static const PaperExample* example = new PaperExample(MakePaperExample());
  return *example;
}

// A motif value with `d` synthetic occurrences over the example's proteins.
Motif MotifWithOccurrences(size_t d) {
  const PaperExample& ex = Example();
  Motif motif;
  motif.pattern = ex.motif;
  motif.code = CanonicalCode(ex.motif);
  Rng rng(d);
  for (size_t i = 0; i < d; ++i) {
    // Reuse the four real occurrences' proteins in rotated combinations so
    // profiles stay realistic.
    const auto& base = ex.occurrences[i % 4];
    MotifOccurrence occ;
    const size_t shift = rng.Uniform(4);
    for (size_t pos = 0; pos < 4; ++pos) {
      occ.proteins.push_back(base[(pos + shift) % 4]);
    }
    motif.occurrences.push_back(std::move(occ));
  }
  motif.frequency = d;
  motif.uniqueness = 1.0;
  return motif;
}

void BM_LaMoFinderVsOccurrenceCount(benchmark::State& state) {
  const PaperExample& ex = Example();
  const size_t d = static_cast<size_t>(state.range(0));
  const Motif motif = MotifWithOccurrences(d);
  LaMoFinder finder(ex.ontology, ex.weights, ex.informative,
                    ex.protein_annotations);
  LaMoFinderConfig config;
  config.sigma = d + 1;          // suppress emission: time the clustering
  config.max_occurrences = 0;    // no cap: expose the O(|D|^2) stage
  config.min_similarity = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.LabelMotif(motif, config));
  }
  state.SetComplexityN(static_cast<int64_t>(d));
}
BENCHMARK(BM_LaMoFinderVsOccurrenceCount)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Complexity();

void BM_TwinClasses(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(n * 7);
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.3)) g.AddEdge(i, j);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TwinClasses(g));
  }
}
BENCHMARK(BM_TwinClasses)->Arg(8)->Arg(16)->Arg(25);

void BM_VertexOrbits(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SmallGraph cycle(n);
  for (uint32_t i = 0; i < n; ++i) {
    cycle.AddEdge(i, static_cast<uint32_t>((i + 1) % n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(VertexOrbits(cycle));
  }
}
BENCHMARK(BM_VertexOrbits)->Arg(8)->Arg(16)->Arg(25);

void BM_HungarianAssignment(benchmark::State& state) {
  const size_t t = static_cast<size_t>(state.range(0));
  Rng rng(t * 13);
  std::vector<std::vector<double>> score(t, std::vector<double>(t));
  for (auto& row : score) {
    for (double& cell : row) cell = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxSumAssignment(score, nullptr));
  }
}
BENCHMARK(BM_HungarianAssignment)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Sweeps the thread count over parallel ESU enumeration
// (CountSubgraphClasses sharded by root vertex). Real time is the relevant
// axis for speedup, hence UseRealTime.
void BM_EsuEnumerationThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  Rng rng(2007);
  static const Graph* graph =
      new Graph(DuplicationDivergence(700, 0.4, 0.1, rng));
  SetThreadCount(threads);
  ObsSink sink;
  SetObsSink(&sink);
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountSubgraphClasses(*graph, 4));
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  SetObsSink(nullptr);
  SetThreadCount(0);
  const JsonValue report = ParsedReport(sink, "bench_esu", threads, state);
  const double hits = ReportCounter(report, "esu.canon_cache_hits");
  const double misses = ReportCounter(report, "esu.canon_cache_misses");
  const double shared_hits = ReportCounter(report, "esu.canon_shared_hits");
  const double shared_misses =
      ReportCounter(report, "esu.canon_shared_misses");
  state.counters["threads"] = static_cast<double>(threads);
  const double subgraphs = ReportCounter(report, "esu.subgraphs");
  state.counters["subgraphs"] =
      benchmark::Counter(subgraphs, benchmark::Counter::kAvgIterations);
  // The perf-regression headline: connected size-k sets enumerated and
  // classified per second of wall time (reproduce.sh archives this in
  // BENCH_mine.json and EXPERIMENTS.md tracks it across PRs). Computed
  // against measured wall time rather than Counter::kIsRate, which divides
  // by the benchmark thread's CPU time and overstates the rate when the
  // work runs on the internal pool.
  state.counters["subgraphs_per_sec"] =
      wall_seconds > 0.0 ? subgraphs / wall_seconds : 0.0;
  state.counters["canon_hit_rate"] =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  state.counters["canon_shared_hit_rate"] =
      shared_hits + shared_misses > 0.0
          ? shared_hits / (shared_hits + shared_misses)
          : 0.0;
  state.counters["chunk_p99_us"] = HistogramP99(sink, "esu.chunk_us");
  state.counters["queue_wait_us"] =
      benchmark::Counter(ReportCounter(report, "pool.queue_wait_us"),
                         benchmark::Counter::kAvgIterations);
  state.counters["queue_wait_p99_us"] = HistogramP99(sink, "pool.queue_wait_us");
}
BENCHMARK(BM_EsuEnumerationThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Sweeps the thread count over the O(|D|^2) occurrence-similarity stage of
// LabelMotif (sigma suppressed so clustering dominates, as in
// BM_LaMoFinderVsOccurrenceCount).
void BM_OccurrenceSimilarityThreads(benchmark::State& state) {
  const PaperExample& ex = Example();
  const size_t threads = static_cast<size_t>(state.range(0));
  const Motif motif = MotifWithOccurrences(192);
  LaMoFinder finder(ex.ontology, ex.weights, ex.informative,
                    ex.protein_annotations);
  LaMoFinderConfig config;
  config.sigma = 193;
  config.max_occurrences = 0;
  config.min_similarity = 0.0;
  SetThreadCount(threads);
  ObsSink sink;
  SetObsSink(&sink);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.LabelMotif(motif, config));
  }
  SetObsSink(nullptr);
  SetThreadCount(0);
  const JsonValue report = ParsedReport(sink, "bench_so", threads, state);
  const double hits = ReportCounter(report, "similarity.memo_hits");
  const double misses = ReportCounter(report, "similarity.memo_misses");
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["so_cells"] =
      benchmark::Counter(ReportCounter(report, "lamofinder.so_cells"),
                         benchmark::Counter::kAvgIterations);
  state.counters["memo_hit_rate"] =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  state.counters["lock_contention"] =
      benchmark::Counter(ReportCounter(report, "similarity.lock_contention"),
                         benchmark::Counter::kAvgIterations);
  state.counters["so_cell_p99_us"] = HistogramP99(sink, "lamofinder.so_cell_us");
}
BENCHMARK(BM_OccurrenceSimilarityThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BruteForceAssignment(benchmark::State& state) {
  // The paper's pairing enumeration: factorial — only tiny orbits are
  // feasible, which is exactly the point of the Hungarian replacement.
  const size_t t = static_cast<size_t>(state.range(0));
  Rng rng(t * 17);
  std::vector<std::vector<double>> score(t, std::vector<double>(t));
  for (auto& row : score) {
    for (double& cell : row) cell = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxSumAssignmentBruteForce(score, nullptr));
  }
}
BENCHMARK(BM_BruteForceAssignment)->Arg(4)->Arg(6)->Arg(8);

}  // namespace
}  // namespace lamo

BENCHMARK_MAIN();
