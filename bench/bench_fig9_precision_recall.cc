// Regenerates Figure 9 of the paper: precision vs. recall of protein
// function prediction, leave-one-out over the top functional categories, on
// the MIPS-scale synthetic dataset:
//
//   LabeledMotif (this paper)  vs  MRF, Chi2, NC, PRODISTIN, plus the
//   alternative registered serving backends GDS (graphlet degree
//   signatures) and RoleSimilarity.
//
// Expected shape (paper): the labeled-motif method dominates the curve;
// MRF is the strongest baseline.
//
//   bench_fig9_precision_recall [--full] [--proteins N] [--csv PATH]
//                               [--json PATH]
//
// --json writes the registered-backend comparison (LabeledMotif vs GDS vs
// RoleSimilarity) as one JSON document; scripts/reproduce.sh archives it as
// BENCH_predictors.json.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/lamofinder.h"
#include "motif/uniqueness.h"
#include "obs/json.h"
#include "predict/chi_square.h"
#include "predict/dataset_context.h"
#include "predict/evaluation.h"
#include "predict/gds.h"
#include "predict/labeled_motif_predictor.h"
#include "predict/mrf.h"
#include "predict/neighbor_counting.h"
#include "predict/prodistin.h"
#include "predict/role_similarity.h"
#include "synth/dataset.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace lamo;
  size_t num_proteins = 800;
  const char* csv_path = nullptr;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) num_proteins = 1877;
    if (std::strcmp(argv[i], "--proteins") == 0 && i + 1 < argc) {
      num_proteins = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  std::cout << "=== Figure 9: precision vs recall, leave-one-out function "
               "prediction (" << num_proteins << " proteins; paper: 1877 "
               "proteins / 2448 interactions / 13 categories) ===\n\n";

  SyntheticDatasetConfig config = MipsScaleConfig();
  config.num_proteins = num_proteins;
  config.copies_per_template = 40;
  config.template_min_size = 4;
  config.template_max_size = 5;
  config.role_annotation_probability = 0.9;
  config.complex_template_fraction = 0.0;
  config.informative_threshold = std::max<size_t>(5, num_proteins / 100);
  Timer timer;
  const SyntheticDataset dataset = BuildSyntheticDataset(config);
  std::cout << "dataset: " << dataset.ppi.ToString() << ", "
            << dataset.categories.size() << " top categories\n";

  MotifFindingConfig motif_config;
  motif_config.miner.min_size = 4;
  motif_config.miner.max_size = 5;
  motif_config.miner.min_frequency = 30;
  motif_config.uniqueness.num_random_networks = 10;
  motif_config.uniqueness_threshold = 0.95;
  const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);

  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 8;
  label_config.max_occurrences = 200;
  const auto labeled = finder.LabelAll(motifs, label_config);
  std::cout << motifs.size() << " network motifs -> " << labeled.size()
            << " labeled motifs   [" << timer.ElapsedSeconds() << "s]\n";

  const PredictionContext context = BuildPredictionContext(dataset);
  LabeledMotifPredictor motif_predictor(context, dataset.ontology, labeled);
  NeighborCountingPredictor nc(context);
  ChiSquarePredictor chi2(context);
  MrfPredictor mrf(context);
  ProdistinConfig prodistin_config;
  prodistin_config.max_tree_proteins = std::min<size_t>(600, num_proteins);
  ProdistinPredictor prodistin(context, prodistin_config);
  GdsPredictor gds(context);
  RolePredictor role(context);

  // Evaluation set: annotated proteins covered by at least one labeled
  // motif (restriction reported; all methods are compared on the same set).
  EvaluationConfig eval;
  for (ProteinId p = 0; p < dataset.ppi.num_vertices(); ++p) {
    if (context.IsAnnotated(p) && motif_predictor.Covers(p)) {
      eval.evaluation_set.push_back(p);
    }
  }
  std::cout << "evaluation set: " << eval.evaluation_set.size()
            << " motif-covered annotated proteins ("
            << FormatDouble(100.0 * motif_predictor.CoverageOfAnnotated(), 1)
            << "% coverage)\n\n";

  const FunctionPredictor* predictors[] = {&motif_predictor, &gds, &role,
                                           &mrf, &chi2, &nc, &prodistin};
  std::vector<PrCurve> curves;
  for (const FunctionPredictor* predictor : predictors) {
    curves.push_back(EvaluateLeaveOneOut(*predictor, context, eval));
  }

  TablePrinter table({"k", "LabeledMotif P/R", "GDS P/R", "Role P/R",
                      "MRF P/R", "Chi2 P/R", "NC P/R", "PRODISTIN P/R"});
  const size_t max_k = curves[0].points.size();
  for (size_t ki = 0; ki < max_k; ++ki) {
    std::vector<std::string> row{std::to_string(ki + 1)};
    for (const PrCurve& curve : curves) {
      row.push_back(FormatDouble(curve.points[ki].precision, 3) + "/" +
                    FormatDouble(curve.points[ki].recall, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nAUC(recall, precision):\n";
  double labeled_auc = 0.0, best_baseline_auc = 0.0;
  std::string best_baseline;
  for (const PrCurve& curve : curves) {
    const double auc = AreaUnderPrCurve(curve);
    std::cout << "  " << curve.method << ": " << FormatDouble(auc, 3) << "\n";
    if (curve.method == "LabeledMotif") {
      labeled_auc = auc;
    } else if (auc > best_baseline_auc) {
      best_baseline_auc = auc;
      best_baseline = curve.method;
    }
  }
  std::cout << "\nExpected shape (paper): LabeledMotif dominates -> "
            << (labeled_auc > best_baseline_auc ? "OK ("
                                                : "UNEXPECTED (")
            << "best baseline " << best_baseline << ")\n";

  // Secondary readout: macro-averaged curves (per-protein weighting).
  std::cout << "\nmacro-averaged AUC:\n";
  for (const FunctionPredictor* predictor : predictors) {
    const PrCurve macro =
        EvaluateLeaveOneOutMacro(*predictor, context, eval);
    std::cout << "  " << macro.method << ": "
              << FormatDouble(AreaUnderPrCurve(macro), 3) << "\n";
  }

  if (csv_path != nullptr) {
    CsvWriter csv(csv_path);
    csv.WriteRow({"method", "k", "precision", "recall"});
    for (const PrCurve& curve : curves) {
      for (const PrPoint& point : curve.points) {
        csv.WriteRow({curve.method, std::to_string(point.k),
                      FormatDouble(point.precision, 5),
                      FormatDouble(point.recall, 5)});
      }
    }
    std::cout << "curve written to " << csv_path << "\n";
  }

  if (json_path != nullptr) {
    // The registered-backend comparison (what `lamo predict --predictor`
    // serves), archived by scripts/reproduce.sh as BENCH_predictors.json.
    JsonWriter json;
    json.BeginObject();
    json.Key("bench");
    json.String("predictors");
    json.Key("proteins");
    json.Int(num_proteins);
    json.Key("evaluation_set");
    json.Int(eval.evaluation_set.size());
    json.Key("methods");
    json.BeginArray();
    for (const PrCurve& curve : curves) {
      if (curve.method != "LabeledMotif" && curve.method != "GDS" &&
          curve.method != "RoleSimilarity") {
        continue;
      }
      json.BeginObject();
      json.Key("method");
      json.String(curve.method);
      json.Key("auc");
      json.Double(AreaUnderPrCurve(curve));
      json.Key("points");
      json.BeginArray();
      for (const PrPoint& point : curve.points) {
        json.BeginObject();
        json.Key("k");
        json.Int(point.k);
        json.Key("precision");
        json.Double(point.precision);
        json.Key("recall");
        json.Double(point.recall);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    std::ofstream out(json_path);
    out << json.str() << "\n";
    std::cout << "predictor comparison written to " << json_path << "\n";
  }
  return 0;
}
