// Ablations of LaMoFinder's design choices (called out in DESIGN.md):
//
//  1. Symmetric-set semantics for Eq. 3: twin classes (paper-faithful,
//     every within-set pairing is an automorphism) vs full automorphism
//     orbits (looser pooling).
//  2. Eq.-5 delta source: scheme labels (dictionary reading) vs occurrence
//     proteins.
//
// Each ablation reruns the Figure-9 pipeline on a small dataset and reports
// the AUC deltas.
#include <iostream>

#include "core/lamofinder.h"
#include "core/occurrence_similarity.h"
#include "motif/uniqueness.h"
#include "predict/dataset_context.h"
#include "predict/evaluation.h"
#include "predict/labeled_motif_predictor.h"
#include "synth/dataset.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace lamo;
  std::cout << "=== Ablations: symmetry semantics and Eq.-5 delta source "
               "===\n\n";

  SyntheticDatasetConfig config = MipsScaleConfig();
  config.num_proteins = 600;
  config.copies_per_template = 35;
  config.template_min_size = 4;
  config.template_max_size = 5;
  config.role_annotation_probability = 0.9;
  config.complex_template_fraction = 0.0;
  config.informative_threshold = 6;
  const SyntheticDataset dataset = BuildSyntheticDataset(config);

  MotifFindingConfig motif_config;
  motif_config.miner.min_size = 4;
  motif_config.miner.max_size = 5;
  motif_config.miner.min_frequency = 25;
  motif_config.uniqueness.num_random_networks = 8;
  motif_config.uniqueness_threshold = 0.95;
  const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);

  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 8;
  label_config.max_occurrences = 150;
  const auto labeled = finder.LabelAll(motifs, label_config);
  std::cout << motifs.size() << " motifs -> " << labeled.size()
            << " labeled motifs\n\n";

  const PredictionContext context = BuildPredictionContext(dataset);

  // --- Ablation 2: delta source. ---
  LabeledMotifPredictor scheme_mode(context, dataset.ontology, labeled,
                                    LabeledMotifPredictor::DeltaMode::
                                        kSchemeLabels);
  LabeledMotifPredictor occurrence_mode(
      context, dataset.ontology, labeled,
      LabeledMotifPredictor::DeltaMode::kOccurrenceProteins);

  EvaluationConfig eval;
  for (ProteinId p = 0; p < dataset.ppi.num_vertices(); ++p) {
    if (context.IsAnnotated(p) && scheme_mode.Covers(p)) {
      eval.evaluation_set.push_back(p);
    }
  }

  TablePrinter delta_table({"Eq.-5 delta source", "P@1", "AUC"});
  for (const LabeledMotifPredictor* predictor :
       {&scheme_mode, &occurrence_mode}) {
    const PrCurve curve = EvaluateLeaveOneOut(*predictor, context, eval);
    delta_table.AddRow({predictor == &scheme_mode ? "scheme labels (paper)"
                                                  : "occurrence proteins",
                        FormatDouble(curve.points[0].precision, 3),
                        FormatDouble(AreaUnderPrCurve(curve), 3)});
  }
  delta_table.Print(std::cout);

  // --- Ablation 1: symmetry semantics, measured on similarity scores. ---
  std::cout << "\nSymmetric-set semantics (per-motif SO of the first two "
               "occurrences):\n\n";
  TablePrinter sym_table({"motif", "twin sets", "full orbits",
                          "SO twin", "SO orbits"});
  TermSimilarity st(dataset.ontology, dataset.weights);
  size_t shown = 0;
  for (const Motif& motif : motifs) {
    if (motif.occurrences.size() < 2 || shown >= 6) continue;
    ++shown;
    OccurrenceSimilarity twin(st, motif.pattern,
                              OccurrenceSimilarity::SymmetryMode::kTwinSets);
    OccurrenceSimilarity orbits(
        st, motif.pattern, OccurrenceSimilarity::SymmetryMode::kFullOrbits);
    auto profile = [&](const MotifOccurrence& occ) {
      LabelProfile result(occ.proteins.size());
      for (size_t pos = 0; pos < occ.proteins.size(); ++pos) {
        const auto terms = dataset.annotations.TermsOf(occ.proteins[pos]);
        result[pos].assign(terms.begin(), terms.end());
      }
      return result;
    };
    const LabelProfile a = profile(motif.occurrences[0]);
    const LabelProfile b = profile(motif.occurrences[1]);
    size_t twin_pooled = 0, orbit_pooled = 0;
    for (const auto& cls : twin.orbits()) {
      if (cls.size() > 1) twin_pooled += cls.size();
    }
    for (const auto& cls : orbits.orbits()) {
      if (cls.size() > 1) orbit_pooled += cls.size();
    }
    sym_table.AddRow({motif.ToString(), std::to_string(twin_pooled),
                      std::to_string(orbit_pooled),
                      FormatDouble(twin.Score(a, b), 3),
                      FormatDouble(orbits.Score(a, b), 3)});
  }
  sym_table.Print(std::cout);
  std::cout << "\nFull orbits pool at least as many vertices as twin sets, "
               "so SO(orbits) >= SO(twin) — the looser mode can overestimate "
               "similarity by pairing vertices whose exchange is not an "
               "independent automorphism.\n";
  return 0;
}
