// Regenerates Tables 2-4 and the Figure-4 labeling of the paper's worked
// example: the SV pairing table between occurrences o1 and o2 (Table 3),
// the pairwise least-general ("minimum common father") labels (Table 4),
// and the resulting least general labeling scheme.
//
// Values follow the closure-consistent reconstruction of the example DAG
// (the paper's own Figure 1 and Table 1 disagree in one spot); the pairing
// structure and the grouping decision are preserved.
#include <iostream>

#include "core/label_profile.h"
#include "core/occurrence_similarity.h"
#include "core/paper_example.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace lamo;
  const PaperExample example = MakePaperExample();
  TermSimilarity st(example.ontology, example.weights);
  OccurrenceSimilarity so(st, example.motif);

  auto profile = [&](size_t occurrence_index) {
    const auto& occ = example.occurrences[occurrence_index];
    LabelProfile result(occ.size());
    for (size_t pos = 0; pos < occ.size(); ++pos) {
      const auto terms = example.protein_annotations.TermsOf(occ[pos]);
      result[pos].assign(terms.begin(), terms.end());
    }
    return result;
  };
  auto protein_name = [&](size_t occurrence_index, uint32_t pos) {
    return "P" + std::to_string(
                     example.occurrences[occurrence_index][pos] + 1);
  };

  const LabelProfile o1 = profile(0);
  const LabelProfile o2 = profile(1);

  // --- Table 2: the annotations involved. ---
  std::cout << "=== Table 2 (excerpt): annotations of o1 and o2 ===\n\n";
  TablePrinter annotations({"occurrence", "vertex", "protein", "annotations"});
  for (size_t oi = 0; oi < 2; ++oi) {
    const LabelProfile& prof = oi == 0 ? o1 : o2;
    for (uint32_t pos = 0; pos < 4; ++pos) {
      annotations.AddRow({oi == 0 ? "o1" : "o2",
                          "v" + std::to_string(pos + 1),
                          protein_name(oi, pos),
                          LabelSetToString(example.ontology, prof[pos])});
    }
  }
  annotations.Print(std::cout);

  // --- Table 3: SV scores under the best symmetric pairing. ---
  std::vector<uint32_t> pairing;
  const double so_score = so.Score(o1, o2, &pairing);
  std::cout << "\n=== Table 3: similarity between occurrences o1 and o2 "
               "===\n\n";
  TablePrinter sv_table({"o1 vertex", "o2 vertex (best pairing)", "SV"});
  for (uint32_t pos = 0; pos < 4; ++pos) {
    sv_table.AddRow(
        {protein_name(0, pos) + " " +
             LabelSetToString(example.ontology, o1[pos]),
         protein_name(1, pairing[pos]) + " " +
             LabelSetToString(example.ontology, o2[pairing[pos]]),
         FormatDouble(VertexSimilarity(st, o1[pos], o2[pairing[pos]]), 2)});
  }
  sv_table.AddRow({"SO score", "", FormatDouble(so_score, 2)});
  sv_table.Print(std::cout);
  std::cout << "\nPaper reports SO(o1, o2) = 0.87 under its example DAG; "
               "the grouping decision (o1 with o2) is preserved:\n";
  const LabelProfile o3 = profile(2);
  std::cout << "  SO(o1, o2) = " << FormatDouble(so.Score(o1, o2), 2)
            << "  vs  SO(o1, o3) = " << FormatDouble(so.Score(o1, o3), 2)
            << "\n";

  // --- Table 4: pairwise least-general ("minimum common father") labels. ---
  std::cout << "\n=== Table 4: minimum common father labels of o1 and o2 "
               "===\n\n";
  TablePrinter lca_table({"o1 labels", "o2 labels", "common labels",
                          "label candidates only (Figure 4)"});
  std::vector<bool> candidate_filter(example.ontology.num_terms());
  for (TermId t = 0; t < example.ontology.num_terms(); ++t) {
    candidate_filter[t] = example.informative.IsLabelCandidate(t);
  }
  for (uint32_t pos = 0; pos < 4; ++pos) {
    const LabelSet& a = o1[pos];
    const LabelSet& b = o2[pairing[pos]];
    lca_table.AddRow(
        {LabelSetToString(example.ontology, a),
         LabelSetToString(example.ontology, b),
         LabelSetToString(example.ontology,
                          LeastGeneralLabels(st, a, b, nullptr)),
         LabelSetToString(example.ontology,
                          LeastGeneralLabels(st, a, b, &candidate_filter))});
  }
  lca_table.Print(std::cout);
  return 0;
}
