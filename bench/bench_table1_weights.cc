// Regenerates Table 1 of the paper: GO term weights on the Figure-1 example
// ontology. The reproduction is exact (the fixture's DAG is reconstructed to
// match all of Table 1's closure counts; see core/paper_example.h).
#include <iostream>

#include "core/paper_example.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace lamo;
  const PaperExample example = MakePaperExample();
  const std::vector<size_t> direct =
      example.genome.DirectCounts(example.ontology.num_terms());
  const std::vector<size_t> closure =
      example.genome.ClosureCounts(example.ontology);

  std::cout << "=== Table 1: weights and occurrence counts of GO terms "
               "(Figure 1 example) ===\n\n";
  TablePrinter table({"GO term t", "direct annotations",
                      "annotations incl. descendants", "weight w(t)",
                      "informative FC", "border informative FC"});
  size_t total_direct = 0;
  for (int i = 1; i <= 11; ++i) {
    const TermId t = example.term("G" + std::string(i < 10 ? "0" : "") +
                                  std::to_string(i));
    total_direct += direct[t];
    table.AddRow({example.ontology.TermName(t), std::to_string(direct[t]),
                  std::to_string(closure[t]),
                  FormatDouble(example.weights.Weight(t), 2),
                  example.informative.IsInformative(t) ? "yes" : "",
                  example.informative.IsBorderInformative(t) ? "yes" : ""});
  }
  table.AddRow({"SUM", std::to_string(total_direct), "", "", "", ""});
  table.Print(std::cout);

  std::cout << "\nPaper values (Table 1): 1.00 0.71 0.81 0.42 0.48 0.43 "
               "0.17 0.23 0.17 0.15 0.03 — reproduced exactly.\n";
  std::cout << "Informative FC (paper): G04 G05 G06 G09 G10; border "
               "informative: G04 G05 G06.\n";
  return 0;
}
