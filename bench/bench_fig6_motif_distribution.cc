// Regenerates Figure 6 of the paper: the distribution of labeled network
// motifs over motif sizes, on the BIND-scale synthetic interactome.
//
// The paper mines 1367 unlabeled motifs (sizes up to 20, frequency >= 100,
// uniqueness > 0.95) from the 4141-protein / 7095-edge yeast network and
// extracts 3842 labeled motifs with sigma = 10, with the mass of the
// distribution at meso-scale.
//
// By default this harness runs a scaled-down instance so the whole bench
// directory executes in minutes; pass --full for the BIND-scale run.
//
//   bench_fig6_motif_distribution [--full] [--proteins N] [--max-size K]
//                                 [--csv PATH]
#include <cstring>
#include <iostream>
#include <map>

#include "core/lamofinder.h"
#include "motif/uniqueness.h"
#include "synth/dataset.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace lamo;
  bool full = false;
  size_t num_proteins = 1500;
  size_t max_size = 6;
  const char* csv_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--proteins") == 0 && i + 1 < argc) {
      num_proteins = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--max-size") == 0 && i + 1 < argc) {
      max_size = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[i + 1];
    }
  }
  if (full) {
    num_proteins = 4141;
    max_size = 7;  // sizes beyond this dominate runtime at BIND scale
  }

  std::cout << "=== Figure 6: labeled network motif distribution ("
            << (full ? "BIND-scale" : "scaled-down") << ") ===\n\n";

  SyntheticDatasetConfig config = BindScaleConfig();
  config.num_proteins = num_proteins;
  const size_t min_frequency = full ? 100 : 40;
  config.copies_per_template = min_frequency + 30;
  config.num_templates = 8;
  config.template_min_size = 3;
  config.template_max_size = std::min<size_t>(max_size, 6);
  config.informative_threshold =
      std::max<size_t>(5, num_proteins * 30 / 4141);
  Timer timer;
  const SyntheticDataset dataset = BuildSyntheticDataset(config);
  std::cout << "interactome: " << dataset.ppi.ToString() << " (paper: 4141 "
            << "vertices, 7095 edges)\n";
  std::cout << "annotated: " << dataset.annotations.CountAnnotated() << " / "
            << num_proteins << " proteins (paper: 3554 / 4141)\n\n";

  MotifFindingConfig motif_config;
  motif_config.miner.min_size = 3;
  motif_config.miner.max_size = max_size;
  motif_config.miner.min_frequency = min_frequency;
  motif_config.miner.max_occurrences_per_pattern = 20000;
  motif_config.miner.max_patterns_per_level = 60;
  motif_config.uniqueness.num_random_networks = 10;
  motif_config.uniqueness_threshold = 0.95;
  const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);
  std::cout << "network motifs (freq >= " << min_frequency
            << ", uniq > 0.95): " << motifs.size()
            << "  (paper: 1367, sizes up to 20)   [" << timer.ElapsedSeconds()
            << "s]\n";

  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 10;
  label_config.max_occurrences = 250;
  const auto labeled = finder.LabelAll(motifs, label_config);
  std::cout << "labeled network motifs (sigma = 10): " << labeled.size()
            << "  (paper: 3842)   [" << timer.ElapsedSeconds() << "s]\n\n";

  std::map<size_t, size_t> unlabeled_by_size;
  for (const auto& m : motifs) ++unlabeled_by_size[m.size()];
  std::map<size_t, size_t> labeled_by_size;
  for (const auto& lm : labeled) ++labeled_by_size[lm.size()];

  TablePrinter table({"motif size", "network motifs", "labeled motifs",
                      "share of labeled"});
  for (size_t size = 3; size <= max_size; ++size) {
    const size_t unlabeled_count =
        unlabeled_by_size.count(size) ? unlabeled_by_size[size] : 0;
    const size_t labeled_count =
        labeled_by_size.count(size) ? labeled_by_size[size] : 0;
    char share[32];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  labeled.empty() ? 0.0
                                  : 100.0 * static_cast<double>(labeled_count) /
                                        static_cast<double>(labeled.size()));
    table.AddRow({std::to_string(size), std::to_string(unlabeled_count),
                  std::to_string(labeled_count), share});
  }
  table.Print(std::cout);

  if (csv_path != nullptr) {
    CsvWriter csv(csv_path);
    csv.WriteRow({"size", "network_motifs", "labeled_motifs"});
    for (size_t size = 3; size <= max_size; ++size) {
      csv.WriteRow({std::to_string(size),
                    std::to_string(unlabeled_by_size.count(size)
                                       ? unlabeled_by_size[size]
                                       : 0),
                    std::to_string(labeled_by_size.count(size)
                                       ? labeled_by_size[size]
                                       : 0)});
    }
    std::cout << "\nhistogram written to " << csv_path << "\n";
  }

  std::cout << "\nExpected shape (paper): multiple labeled motifs per "
               "unlabeled motif (3842 from 1367), with the distribution's "
               "mass above the smallest sizes. Our mining ceiling is "
            << max_size << " (paper: 20), so the histogram is truncated "
            << "accordingly; the per-size expansion factor is the "
            << "scale-free readout.\n";
  return 0;
}
