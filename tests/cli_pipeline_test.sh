#!/bin/sh
# End-to-end smoke test of the lamo CLI: generate -> stats -> mine -> label
# -> predict over the on-disk formats. Fails on any non-zero exit or if the
# outputs are missing the expected markers.
set -e
LAMO="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$LAMO" generate --proteins 400 --copies 30 --seed 5 --out "$WORK/ds" \
  | grep -q "wrote"
"$LAMO" stats --graph "$WORK/ds.graph.txt" | grep -q "Graph(400 vertices"
"$LAMO" mine --graph "$WORK/ds.graph.txt" --min-size 3 --max-size 4 \
  --min-freq 20 --networks 5 --uniqueness 0.8 --out "$WORK/motifs.txt" \
  | grep -q "wrote"
test -s "$WORK/motifs.txt"
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" | grep -q "labeled"
test -s "$WORK/labeled.txt"
"$LAMO" predict --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --protein 3 --top-k 2 > "$WORK/prediction.txt"
grep -Eq "top predictions|no prediction" "$WORK/prediction.txt"
echo "CLI pipeline OK"
