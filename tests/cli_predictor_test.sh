#!/bin/sh
# End-to-end predictor-backend contract: pack one v3 snapshot, then for each
# registered backend (lms, gds, role) prove the served PREDICT answers are
# byte-identical to offline `lamo predict --predictor X`, that STATS names
# the active backend, and that predict --report carries the backend in its
# annotations (validated by lamo_report_check). Compatibility: a v2 snapshot
# (pack --snapshot-version 2) still serves lms but refuses --predictor gds
# with a pointer to repacking. Finally an A/B drill: a replicated router
# with --predictors lms,gds must show one backend per predictor in STATS.
set -e
LAMO="$1"
BENCH="$2"
REPORT_CHECK="$3"
WORK="$(mktemp -d)"
SERVER=""
ROUTER=""
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null
  [ -n "$ROUTER" ] && kill "$ROUTER" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$LAMO" generate --proteins 300 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 3 --min-freq 15 --networks 4 --uniqueness 0.8 \
  --out "$WORK/motifs.txt" > /dev/null
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" > /dev/null
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model.lamosnap" > /dev/null
test -s "$WORK/model.lamosnap"

# An unknown backend name is a usage error (exit 2), not a crash.
rc=0
"$LAMO" predict --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --protein 0 --predictor bogus > /dev/null 2>&1 || rc=$?
test "$rc" -eq 2 || {
  echo "FAIL: --predictor bogus exited $rc, want usage exit 2" >&2
  exit 1
}

wait_port() {
  PORT=""
  for _ in $(seq 1 200); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1")"
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "FAIL: no listening banner in $1" >&2
  exit 1
}

# Per backend: offline predictions (with --report), served answers over TCP,
# byte-compare each protein, and STATS must echo the active predictor.
for NAME in lms gds role; do
  for protein in 0 7 17 42 123; do
    "$LAMO" predict --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
      --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
      --protein "$protein" --predictor "$NAME" \
      --report "$WORK/predict_$NAME.json" > "$WORK/offline.$NAME.$protein.txt"
  done
  "$REPORT_CHECK" "$WORK/predict_$NAME.json" predict.votes > /dev/null || {
    echo "FAIL: predict --predictor $NAME report failed validation" >&2
    exit 1
  }
  grep -q "\"predictor\":\"$NAME\"" "$WORK/predict_$NAME.json" || {
    echo "FAIL: predict report for $NAME lacks the predictor annotation" >&2
    exit 1
  }

  rm -f "$WORK/serve.$NAME.log"
  "$LAMO" serve --snapshot "$WORK/model.lamosnap" --predictor "$NAME" \
    --port 0 > "$WORK/serve.$NAME.log" 2>&1 &
  SERVER=$!
  wait_port "$WORK/serve.$NAME.log"
  for protein in 0 7 17 42 123; do
    "$BENCH" --port "$PORT" --query "PREDICT $protein" \
      > "$WORK/online.$NAME.$protein.txt"
    cmp "$WORK/offline.$NAME.$protein.txt" "$WORK/online.$NAME.$protein.txt" || {
      echo "FAIL: served PREDICT $protein ($NAME) differs from offline" >&2
      exit 1
    }
  done
  "$BENCH" --port "$PORT" --query "STATS" > "$WORK/stats.$NAME.txt"
  grep -q "predictor $NAME" "$WORK/stats.$NAME.txt" || {
    echo "FAIL: STATS does not name the active predictor $NAME" >&2
    cat "$WORK/stats.$NAME.txt" >&2
    exit 1
  }
  kill "$SERVER"
  wait "$SERVER" 2> /dev/null || true
  SERVER=""
  echo "backend $NAME: served answers byte-identical to offline predict"
done

# The three backends must not be trivially identical: across the sampled
# proteins at least one (gds or role) answer differs from lms.
if cmp -s "$WORK/offline.lms.42.txt" "$WORK/offline.gds.42.txt" &&
   cmp -s "$WORK/offline.lms.42.txt" "$WORK/offline.role.42.txt" &&
   cmp -s "$WORK/offline.lms.123.txt" "$WORK/offline.gds.123.txt" &&
   cmp -s "$WORK/offline.lms.123.txt" "$WORK/offline.role.123.txt"; then
  echo "FAIL: gds and role answers identical to lms on every sample" >&2
  exit 1
fi

# Snapshot version compatibility: a v2 file (no predictor section) still
# serves the default lms backend but refuses gds with a repack pointer.
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --snapshot-version 2 --out "$WORK/model_v2.lamosnap" > /dev/null
test "$(wc -c < "$WORK/model_v2.lamosnap")" -lt \
  "$(wc -c < "$WORK/model.lamosnap")" || {
  echo "FAIL: v2 snapshot is not smaller than v3" >&2
  exit 1
}
rc=0
"$LAMO" serve --snapshot "$WORK/model_v2.lamosnap" --predictor gds --stdin \
  < /dev/null > /dev/null 2> "$WORK/v2_gds.err" || rc=$?
test "$rc" -ne 0 || {
  echo "FAIL: v2 snapshot accepted --predictor gds" >&2
  exit 1
}
grep -q "pack" "$WORK/v2_gds.err" || {
  echo "FAIL: v2 gds refusal does not point at lamo pack" >&2
  cat "$WORK/v2_gds.err" >&2
  exit 1
}
rm -f "$WORK/serve.v2.log"
"$LAMO" serve --snapshot "$WORK/model_v2.lamosnap" --port 0 \
  > "$WORK/serve.v2.log" 2>&1 &
SERVER=$!
wait_port "$WORK/serve.v2.log"
"$BENCH" --port "$PORT" --query "PREDICT 42" > "$WORK/online.v2.42.txt"
cmp "$WORK/offline.lms.42.txt" "$WORK/online.v2.42.txt" || {
  echo "FAIL: v2 snapshot lms answers differ from v3" >&2
  exit 1
}
kill "$SERVER"
wait "$SERVER" 2> /dev/null || true
SERVER=""
echo "v2 snapshot: serves lms, refuses gds until repacked"

# A/B drill: replicated router, backend 0 on lms and backend 1 on gds.
# Aggregated STATS must show each backend's predictor, and the cluster must
# keep answering PREDICTs.
rm -f "$WORK/router.log"
"$LAMO" router --snapshot "$WORK/model.lamosnap" --backends 2 \
  --mode replicated --predictors lms,gds --port 0 \
  > "$WORK/router.log" 2> /dev/null &
ROUTER=$!
wait_port "$WORK/router.log"
"$BENCH" --port "$PORT" --query "STATS" > "$WORK/stats.ab.txt"
grep -q "backend 0 up .*predictor=lms" "$WORK/stats.ab.txt" || {
  echo "FAIL: A/B STATS does not show backend 0 on lms" >&2
  cat "$WORK/stats.ab.txt" >&2
  exit 1
}
grep -q "backend 1 up .*predictor=gds" "$WORK/stats.ab.txt" || {
  echo "FAIL: A/B STATS does not show backend 1 on gds" >&2
  cat "$WORK/stats.ab.txt" >&2
  exit 1
}
for protein in 3 42 123; do
  "$BENCH" --port "$PORT" --query "PREDICT $protein" \
    > "$WORK/online.ab.$protein.txt"
  test -s "$WORK/online.ab.$protein.txt" || {
    echo "FAIL: A/B cluster returned nothing for PREDICT $protein" >&2
    exit 1
  }
done
kill "$ROUTER"
wait "$ROUTER" 2> /dev/null || true
ROUTER=""

echo "predictor backends OK: lms/gds/role byte-identical offline vs served," \
  "v2 compatibility enforced, A/B cluster observable via STATS"
