#include "synth/dataset.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace lamo {
namespace {

SyntheticDatasetConfig SmallConfig() {
  SyntheticDatasetConfig config;
  config.num_proteins = 600;
  config.go.num_terms = 80;
  config.go.depth = 5;
  config.go.first_level_terms = 13;
  config.num_templates = 3;
  config.copies_per_template = 25;
  config.informative_threshold = 10;
  config.seed = 99;
  return config;
}

class DatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new SyntheticDataset(BuildSyntheticDataset(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static SyntheticDataset* dataset_;
};

SyntheticDataset* DatasetTest::dataset_ = nullptr;

TEST_F(DatasetTest, Sizes) {
  EXPECT_EQ(dataset_->ppi.num_vertices(), 600u);
  EXPECT_EQ(dataset_->ontology.num_terms(), 80u);
  EXPECT_EQ(dataset_->categories.size(), 13u);
  EXPECT_EQ(dataset_->templates.size(), 3u);
}

TEST_F(DatasetTest, AnnotatedFractionApproximate) {
  const double fraction =
      static_cast<double>(dataset_->annotations.CountAnnotated()) / 600.0;
  EXPECT_NEAR(fraction, SmallConfig().annotated_fraction, 0.05);
}

TEST_F(DatasetTest, PlantedInstancesAreEdges) {
  for (const PlantedTemplate& t : dataset_->templates) {
    EXPECT_EQ(t.instances.size(), 25u);
    for (const auto& instance : t.instances) {
      ASSERT_EQ(instance.size(), t.pattern.num_vertices());
      for (const auto& [a, b] : t.pattern.Edges()) {
        EXPECT_TRUE(dataset_->ppi.HasEdge(instance[a], instance[b]));
      }
    }
  }
}

TEST_F(DatasetTest, RoleAnnotationsCorrelate) {
  // A large share of annotated role-players must carry the role term or a
  // descendant of it.
  size_t role_slots = 0;
  size_t role_hits = 0;
  for (const PlantedTemplate& t : dataset_->templates) {
    for (const auto& instance : t.instances) {
      for (size_t r = 0; r < instance.size(); ++r) {
        const ProteinId p = instance[r];
        if (!dataset_->annotations.IsAnnotated(p)) continue;
        ++role_slots;
        for (TermId term : dataset_->annotations.TermsOf(p)) {
          if (dataset_->ontology.IsAncestorOrEqual(t.role_terms[r], term)) {
            ++role_hits;
            break;
          }
        }
      }
    }
  }
  ASSERT_GT(role_slots, 0u);
  EXPECT_GT(static_cast<double>(role_hits) / static_cast<double>(role_slots),
            0.6);
}

TEST_F(DatasetTest, CategoriesOfGeneralizes) {
  for (ProteinId p = 0; p < 50; ++p) {
    for (TermId c : dataset_->CategoriesOf(p)) {
      // Every reported category must be an ancestor of some direct term.
      bool supported = false;
      for (TermId t : dataset_->annotations.TermsOf(p)) {
        if (dataset_->ontology.IsAncestorOrEqual(c, t)) supported = true;
      }
      EXPECT_TRUE(supported);
    }
  }
}

TEST_F(DatasetTest, InformativeClassesExist) {
  EXPECT_FALSE(dataset_->informative.Informative().empty());
  EXPECT_FALSE(dataset_->informative.BorderInformative().empty());
}

TEST_F(DatasetTest, Reproducible) {
  const SyntheticDataset again = BuildSyntheticDataset(SmallConfig());
  EXPECT_EQ(again.ppi.Edges(), dataset_->ppi.Edges());
  EXPECT_EQ(again.annotations.TotalOccurrences(),
            dataset_->annotations.TotalOccurrences());
}

TEST_F(DatasetTest, GraphIsMostlyConnected) {
  const auto largest = LargestComponent(dataset_->ppi);
  EXPECT_GT(largest.size(), 400u);
}

TEST(DatasetPresetsTest, BindScaleShape) {
  const SyntheticDatasetConfig config = BindScaleConfig();
  EXPECT_EQ(config.num_proteins, 4141u);
  EXPECT_NEAR(config.annotated_fraction, 3554.0 / 4141.0, 1e-9);
}

TEST(DatasetPresetsTest, MipsScaleShape) {
  const SyntheticDatasetConfig config = MipsScaleConfig();
  EXPECT_EQ(config.num_proteins, 1877u);
}

}  // namespace
}  // namespace lamo
