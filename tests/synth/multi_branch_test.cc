#include "synth/multi_branch.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

MultiBranchConfig SmallConfig() {
  MultiBranchConfig config;
  config.base.num_proteins = 300;
  config.base.go.num_terms = 60;
  config.base.num_templates = 2;
  config.base.copies_per_template = 15;
  config.base.informative_threshold = 6;
  config.base.seed = 55;
  return config;
}

class MultiBranchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new MultiBranchDataset(BuildMultiBranchDataset(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static MultiBranchDataset* dataset_;
};

MultiBranchDataset* MultiBranchTest::dataset_ = nullptr;

TEST_F(MultiBranchTest, ThreeBranchesShareOneInteractome) {
  EXPECT_EQ(dataset_->ppi.num_vertices(), 300u);
  for (const BranchData& branch : dataset_->branches) {
    EXPECT_EQ(branch.annotations.num_proteins(), 300u);
    EXPECT_GT(branch.annotations.CountAnnotated(), 200u);
  }
}

TEST_F(MultiBranchTest, BranchIdentitiesCorrect) {
  EXPECT_EQ(dataset_->branches[0].branch, GoBranch::kMolecularFunction);
  EXPECT_EQ(dataset_->branches[1].branch, GoBranch::kBiologicalProcess);
  EXPECT_EQ(dataset_->branches[2].branch, GoBranch::kCellularComponent);
  EXPECT_EQ(&dataset_->branch(GoBranch::kCellularComponent),
            &dataset_->branches[2]);
}

TEST_F(MultiBranchTest, LocationBranchIsSmaller) {
  EXPECT_LT(dataset_->branches[2].ontology.num_terms(),
            dataset_->branches[0].ontology.num_terms());
}

TEST_F(MultiBranchTest, BranchesAnnotateIndependently) {
  // The function and process branches have different ontologies, so the
  // term-id streams must differ somewhere.
  bool any_difference = false;
  for (ProteinId p = 0; p < 300 && !any_difference; ++p) {
    const auto f = dataset_->branches[0].annotations.TermsOf(p);
    const auto pr = dataset_->branches[1].annotations.TermsOf(p);
    if (std::vector<TermId>(f.begin(), f.end()) !=
        std::vector<TermId>(pr.begin(), pr.end())) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(MultiBranchTest, RoleTermsPerBranchAligned) {
  for (const BranchData& branch : dataset_->branches) {
    ASSERT_EQ(branch.template_role_terms.size(), dataset_->templates.size());
    for (size_t t = 0; t < dataset_->templates.size(); ++t) {
      EXPECT_EQ(branch.template_role_terms[t].size(),
                dataset_->templates[t].pattern.num_vertices());
      for (TermId term : branch.template_role_terms[t]) {
        EXPECT_LT(term, branch.ontology.num_terms());
      }
    }
  }
}

TEST_F(MultiBranchTest, EachBranchRoleCorrelated) {
  for (const BranchData& branch : dataset_->branches) {
    size_t slots = 0, hits = 0;
    for (size_t t = 0; t < dataset_->templates.size(); ++t) {
      for (const auto& instance : dataset_->templates[t].instances) {
        for (size_t r = 0; r < instance.size(); ++r) {
          const ProteinId p = instance[r];
          if (!branch.annotations.IsAnnotated(p)) continue;
          ++slots;
          for (TermId term : branch.annotations.TermsOf(p)) {
            if (branch.ontology.IsAncestorOrEqual(
                    branch.template_role_terms[t][r], term)) {
              ++hits;
              break;
            }
          }
        }
      }
    }
    ASSERT_GT(slots, 0u);
    EXPECT_GT(static_cast<double>(hits) / static_cast<double>(slots), 0.5)
        << GoBranchName(branch.branch);
  }
}

TEST_F(MultiBranchTest, Reproducible) {
  const MultiBranchDataset again = BuildMultiBranchDataset(SmallConfig());
  EXPECT_EQ(again.ppi.Edges(), dataset_->ppi.Edges());
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(again.branches[b].annotations.TotalOccurrences(),
              dataset_->branches[b].annotations.TotalOccurrences());
  }
}

}  // namespace
}  // namespace lamo
