#include "synth/go_generator.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(GoGeneratorTest, BasicShape) {
  GoGeneratorConfig config;
  config.num_terms = 100;
  config.depth = 5;
  config.first_level_terms = 13;
  Rng rng(51);
  const Ontology onto = GenerateGoBranch(config, rng);
  EXPECT_EQ(onto.num_terms(), 100u);
  ASSERT_EQ(onto.Roots().size(), 1u);
  EXPECT_EQ(onto.Children(onto.Roots()[0]).size(), 13u);
}

TEST(GoGeneratorTest, EveryNonRootHasParent) {
  GoGeneratorConfig config;
  config.num_terms = 80;
  Rng rng(52);
  const Ontology onto = GenerateGoBranch(config, rng);
  const TermId root = onto.Roots()[0];
  for (TermId t = 0; t < onto.num_terms(); ++t) {
    if (t == root) continue;
    EXPECT_GE(onto.Parents(t).size(), 1u);
    EXPECT_TRUE(onto.IsAncestorOrEqual(root, t));
  }
}

TEST(GoGeneratorTest, SomeMultiParentTerms) {
  GoGeneratorConfig config;
  config.num_terms = 200;
  config.extra_parent_probability = 0.4;
  Rng rng(53);
  const Ontology onto = GenerateGoBranch(config, rng);
  size_t multi = 0;
  for (TermId t = 0; t < onto.num_terms(); ++t) {
    if (onto.Parents(t).size() >= 2) ++multi;
  }
  EXPECT_GT(multi, 10u) << "GO-like DAGs need multi-parent terms";
}

TEST(GoGeneratorTest, MixesRelationTypes) {
  GoGeneratorConfig config;
  config.num_terms = 200;
  config.part_of_fraction = 0.3;
  Rng rng(54);
  const Ontology onto = GenerateGoBranch(config, rng);
  size_t is_a = 0, part_of = 0;
  for (TermId t = 0; t < onto.num_terms(); ++t) {
    for (RelationType r : onto.ParentRelations(t)) {
      (r == RelationType::kIsA ? is_a : part_of) += 1;
    }
  }
  EXPECT_GT(is_a, 0u);
  EXPECT_GT(part_of, 0u);
}

TEST(GoGeneratorTest, RespectsDepth) {
  GoGeneratorConfig config;
  config.num_terms = 150;
  config.depth = 6;
  Rng rng(55);
  const Ontology onto = GenerateGoBranch(config, rng);
  uint32_t max_depth = 0;
  for (TermId t = 0; t < onto.num_terms(); ++t) {
    max_depth = std::max(max_depth, onto.Depth(t));
  }
  EXPECT_LE(max_depth, 6u);
  EXPECT_GE(max_depth, 4u);  // should actually use the depth budget
}

TEST(GoGeneratorTest, DeepTermsFilter) {
  GoGeneratorConfig config;
  config.num_terms = 120;
  config.depth = 5;
  Rng rng(56);
  const Ontology onto = GenerateGoBranch(config, rng);
  const auto deep = DeepTerms(onto, 3);
  EXPECT_FALSE(deep.empty());
  for (TermId t : deep) {
    EXPECT_GE(onto.Depth(t), 3u);
  }
}

TEST(GoGeneratorTest, Reproducible) {
  GoGeneratorConfig config;
  Rng rng1(57), rng2(57);
  const Ontology a = GenerateGoBranch(config, rng1);
  const Ontology b = GenerateGoBranch(config, rng2);
  ASSERT_EQ(a.num_terms(), b.num_terms());
  for (TermId t = 0; t < a.num_terms(); ++t) {
    ASSERT_EQ(a.Parents(t).size(), b.Parents(t).size());
    for (size_t i = 0; i < a.Parents(t).size(); ++i) {
      EXPECT_EQ(a.Parents(t)[i], b.Parents(t)[i]);
    }
  }
}

}  // namespace
}  // namespace lamo
