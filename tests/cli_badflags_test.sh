#!/bin/sh
# CLI strictness contract: every command rejects unknown flags, missing flag
# values, malformed numeric values, stray positional arguments and unknown
# commands with the usage text on stderr and exit code 2 — never by silently
# ignoring the mistake.
set -e
LAMO="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# expect_usage_error <description> <arg...>: the invocation must exit 2 and
# print both an error: line and the usage text.
expect_usage_error() {
  desc="$1"
  shift
  rc=0
  "$LAMO" "$@" > "$WORK/out.txt" 2> "$WORK/err.txt" || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "FAIL: $desc: expected exit 2, got $rc" >&2
    cat "$WORK/err.txt" >&2
    exit 1
  fi
  grep -q '^error:' "$WORK/err.txt" || {
    echo "FAIL: $desc: no error: line on stderr" >&2
    exit 1
  }
  grep -q '^usage: lamo' "$WORK/err.txt" || {
    echo "FAIL: $desc: no usage text on stderr" >&2
    exit 1
  }
}

# Unknown flags, on every command.
expect_usage_error "generate unknown flag" generate --bogus 1
expect_usage_error "stats unknown flag" stats --graph x --verbose
expect_usage_error "mine unknown flag" mine --graph x --frobnicate 3
expect_usage_error "label unknown flag" label --graph x --nope yes
expect_usage_error "predict unknown flag" predict --graph x --protien 1
expect_usage_error "pack unknown flag" pack --graph x --output y
expect_usage_error "serve unknown flag" serve --snapshot x --daemonize

# Missing flag values (flag at end of line or followed by another flag).
expect_usage_error "missing value at end" predict --protein
expect_usage_error "missing value before flag" mine --graph --min-size 3
expect_usage_error "serve missing value" serve --snapshot

# Malformed numeric values.
expect_usage_error "non-integer size" mine --min-size abc
expect_usage_error "negative size" generate --proteins -5
expect_usage_error "non-numeric double" mine --uniqueness high
expect_usage_error "trailing junk" label --sigma 10x

# Stray positional arguments and unknown commands.
expect_usage_error "stray positional" stats extra-arg
expect_usage_error "unknown command" frobnicate

# No command at all: usage + exit 2 (no error: prefix required here).
rc=0
"$LAMO" > /dev/null 2> "$WORK/err.txt" || rc=$?
test "$rc" -eq 2 || {
  echo "FAIL: bare lamo: expected exit 2, got $rc" >&2
  exit 1
}
grep -q '^usage: lamo' "$WORK/err.txt"

# Sanity: a correct invocation still succeeds after all that strictness.
"$LAMO" generate --proteins 120 --copies 10 --seed 3 --out "$WORK/ds" \
  > /dev/null
"$LAMO" stats --graph "$WORK/ds.graph.txt" > /dev/null

echo "bad-flags OK: strict rejection on every command, exit code 2"
