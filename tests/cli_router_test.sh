#!/bin/sh
# End-to-end cluster routing contract: pack a snapshot (plus 2- and 4-shard
# splits), then for every placement mode x backend count prove the router's
# PREDICT / MOTIFS / TERMINFO answers are byte-identical to a single-process
# `lamo serve` and to offline `lamo predict`. Then the operational drills:
# a rolling RELOAD under concurrent bench load must complete with zero
# client-visible errors, SIGHUP must trigger the same swap, aggregated STATS
# must show every backend on the new snapshot (matching checksums), and the
# router's --report must pass the router.* invariants in lamo_report_check.
set -e
LAMO="$1"
BENCH="$2"
REPORT_CHECK="$3"
WORK="$(mktemp -d)"
SERVER=""
ROUTER=""
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null
  [ -n "$ROUTER" ] && kill "$ROUTER" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$LAMO" generate --proteins 300 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 3 --min-freq 15 --networks 4 --uniqueness 0.8 \
  --out "$WORK/motifs.txt" > /dev/null
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" > /dev/null
# Two pack runs leave shard files for both backend counts next to the full
# snapshot: model.lamosnap.shard<i>of2 and .shard<i>of4.
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model.lamosnap" --shards 2 > /dev/null
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model.lamosnap" --shards 4 > /dev/null
for f in 0of2 1of2 0of4 1of4 2of4 3of4; do
  test -s "$WORK/model.lamosnap.shard$f" || {
    echo "FAIL: pack --shards did not write shard $f" >&2
    exit 1
  }
done

# A sharded router without its shard files must fail fast with a pointer to
# pack --shards, before spawning anything.
rc=0
"$LAMO" router --snapshot "$WORK/model.lamosnap" --backends 3 \
  --mode sharded --port 0 > /dev/null 2> "$WORK/missing_shards.err" || rc=$?
test "$rc" -ne 0 || {
  echo "FAIL: router started without shard files for --backends 3" >&2
  exit 1
}
grep -q "pack" "$WORK/missing_shards.err" || {
  echo "FAIL: missing-shard error does not mention pack --shards" >&2
  exit 1
}

wait_port() {
  PORT=""
  for _ in $(seq 1 200); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1")"
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "FAIL: no listening banner in $1" >&2
  exit 1
}

# The query sample: PREDICTs and MOTIFS spanning all shard residues mod 2
# and mod 4, plus TERMINFO and a malformed request (ERR must pass through).
QUERIES="$WORK/queries.txt"
: > "$QUERIES"
for p in 0 1 2 3 4 5 6 7 17 42 133 299; do
  echo "PREDICT $p 3" >> "$QUERIES"
  echo "MOTIFS $p" >> "$QUERIES"
done
echo "PREDICT 10" >> "$QUERIES"
echo "TERMINFO T0005" >> "$QUERIES"
echo "TERMINFO T0013" >> "$QUERIES"

# Collects the answer of every sample query from the server on port $1 into
# file $2 (payload lines, with a marker per query so ERR/OK boundaries
# align).
collect() {
  : > "$2"
  while IFS= read -r query; do
    echo "== $query" >> "$2"
    "$BENCH" --port "$1" --query "$query" >> "$2" 2>> "$2" || true
  done < "$QUERIES"
}

# Reference 1: single-process serve over the full snapshot.
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --port 0 \
  > "$WORK/serve.log" 2>&1 &
SERVER=$!
wait_port "$WORK/serve.log"
SERVE_PORT="$PORT"
collect "$SERVE_PORT" "$WORK/answers_serve.txt"

# Reference 2: offline predict must agree with the served PREDICT payloads
# (transitively proves the router answers match offline predictions too).
"$LAMO" predict --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --protein 42 --top-k 3 > "$WORK/offline_42.txt"
"$BENCH" --port "$SERVE_PORT" --query "PREDICT 42 3" > "$WORK/served_42.txt"
cmp "$WORK/offline_42.txt" "$WORK/served_42.txt" || {
  echo "FAIL: served PREDICT differs from offline lamo predict" >&2
  exit 1
}

# Router matrix: every placement mode x backend count must reproduce the
# single-process answers byte for byte.
for MODE in sharded replicated; do
  for N in 2 4; do
    rm -f "$WORK/router.log"
    "$LAMO" router --snapshot "$WORK/model.lamosnap" --backends "$N" \
      --mode "$MODE" --port 0 > "$WORK/router.log" 2> /dev/null &
    ROUTER=$!
    wait_port "$WORK/router.log"
    collect "$PORT" "$WORK/answers_router.txt"
    cmp "$WORK/answers_serve.txt" "$WORK/answers_router.txt" || {
      echo "FAIL: $MODE router with $N backends differs from" \
        "single-process serve" >&2
      diff "$WORK/answers_serve.txt" "$WORK/answers_router.txt" | head >&2
      exit 1
    }
    # Cluster HEALTH reports every backend up in the requested mode.
    "$BENCH" --port "$PORT" --query "HEALTH" > "$WORK/health.txt"
    grep -q "ready backends=$N/$N mode=$MODE" "$WORK/health.txt" || {
      echo "FAIL: unexpected cluster HEALTH: $(cat "$WORK/health.txt")" >&2
      exit 1
    }
    kill "$ROUTER"
    wait "$ROUTER" 2> /dev/null || true
    ROUTER=""
    echo "router $MODE x$N: byte-identical to single serve"
  done
done

# Operational drill on a sharded 2-backend cluster, with --report so the
# router.* invariants can be checked at the end.
rm -f "$WORK/router.log"
"$LAMO" router --snapshot "$WORK/model.lamosnap" --backends 2 \
  --mode sharded --port 0 --report "$WORK/router_report.json" \
  > "$WORK/router.log" 2> /dev/null &
ROUTER=$!
wait_port "$WORK/router.log"
RPORT="$PORT"

# Second model for the rolling reload: identical content, new path — the
# swap is observable via snapshot paths while answers stay byte-stable.
cp "$WORK/model.lamosnap" "$WORK/model_v2.lamosnap"
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model_v2.lamosnap" --shards 2 > /dev/null

# RELOAD under load: bench hammers the cluster while the swap rolls through
# both backends; the bench run must finish with ZERO errors and zero
# transport failures (exit 0), and every request answered.
"$BENCH" --port "$RPORT" --cluster --proteins 300 --connections 4 \
  --requests 250 --name "router/reload_under_load" \
  --out "$WORK/bench_reload.json" > "$WORK/bench_reload.out" 2>&1 &
BENCH_PID=$!
sleep 0.3
"$BENCH" --port "$RPORT" --query "RELOAD $WORK/model_v2.lamosnap" \
  > "$WORK/reload_answer.txt"
grep -q "reloaded backends=2" "$WORK/reload_answer.txt" || {
  echo "FAIL: RELOAD did not confirm: $(cat "$WORK/reload_answer.txt")" >&2
  exit 1
}
wait "$BENCH_PID" || {
  echo "FAIL: bench run over rolling reload saw errors:" >&2
  cat "$WORK/bench_reload.out" >&2
  exit 1
}
if grep -q '"errors":[1-9]' "$WORK/bench_reload.json"; then
  echo "FAIL: bench JSON reports client-visible errors during reload" >&2
  cat "$WORK/bench_reload.json" >&2
  exit 1
fi
grep -q '"per_connection"' "$WORK/bench_reload.json" || {
  echo "FAIL: bench JSON lacks the per_connection breakdown" >&2
  exit 1
}

# After the swap every backend must serve the v2 shard files, verified
# through the aggregated STATS (paths + per-backend checksums present).
"$BENCH" --port "$RPORT" --query "STATS" > "$WORK/stats_after.txt"
grep -q "reloads 1" "$WORK/stats_after.txt" || {
  echo "FAIL: STATS does not show the completed reload" >&2
  exit 1
}
grep -q "backend 0 up .*model_v2.lamosnap.shard0of2" "$WORK/stats_after.txt" || {
  echo "FAIL: backend 0 not on the v2 snapshot after RELOAD" >&2
  cat "$WORK/stats_after.txt" >&2
  exit 1
}
grep -q "backend 1 up .*model_v2.lamosnap.shard1of2" "$WORK/stats_after.txt" || {
  echo "FAIL: backend 1 not on the v2 snapshot after RELOAD" >&2
  exit 1
}
grep -c "checksum=" "$WORK/stats_after.txt" | grep -q "^2$" || {
  echo "FAIL: STATS missing per-backend snapshot checksums" >&2
  exit 1
}

# Answers after the rolling swap are still byte-identical to the reference.
collect "$RPORT" "$WORK/answers_after_reload.txt"
cmp "$WORK/answers_serve.txt" "$WORK/answers_after_reload.txt" || {
  echo "FAIL: answers changed after rolling reload of identical model" >&2
  exit 1
}

# SIGHUP triggers the same rolling swap (onto the current base path).
kill -HUP "$ROUTER"
for _ in $(seq 1 100); do
  "$BENCH" --port "$RPORT" --query "STATS" > "$WORK/stats_hup.txt" 2> /dev/null || true
  grep -q "reloads 2" "$WORK/stats_hup.txt" && break
  sleep 0.2
done
grep -q "reloads 2" "$WORK/stats_hup.txt" || {
  echo "FAIL: SIGHUP did not trigger a rolling reload" >&2
  exit 1
}

# A RELOAD pointing at garbage must be rejected without disturbing service.
rc=0
"$BENCH" --port "$RPORT" --query "RELOAD $WORK/nonexistent.lamosnap" \
  > /dev/null 2>&1 || rc=$?
test "$rc" -ne 0 || {
  echo "FAIL: RELOAD of a missing snapshot was accepted" >&2
  exit 1
}
"$BENCH" --port "$RPORT" --query "PREDICT 42 3" > "$WORK/after_bad_reload.txt"
cmp "$WORK/offline_42.txt" "$WORK/after_bad_reload.txt" || {
  echo "FAIL: service disturbed after rejected RELOAD" >&2
  exit 1
}

# Graceful shutdown: SIGTERM -> drain banner -> exit 0 -> valid report with
# the router.* invariants (proxied == backend_requests, retries <= requests).
kill "$ROUTER"
wait "$ROUTER" || {
  echo "FAIL: router did not exit cleanly on SIGTERM" >&2
  exit 1
}
ROUTER=""
grep -q "drained" "$WORK/router.log" || {
  echo "FAIL: router log lacks the drain banner" >&2
  exit 1
}
"$REPORT_CHECK" "$WORK/router_report.json" router.requests \
  router.proxied router.backend_requests > /dev/null || {
  echo "FAIL: router report failed validation" >&2
  exit 1
}

kill "$SERVER"
wait "$SERVER" 2> /dev/null || true
SERVER=""

echo "router cluster OK: sharded+replicated x 2+4 backends byte-identical," \
  "rolling reload under load error-free, SIGHUP swap, report validated"
