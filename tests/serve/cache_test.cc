// ResponseCache tests: hit/miss behavior, LRU eviction order, recency
// refresh on Get and Put, the capacity-0 kill switch, and thread safety
// under concurrent mixed traffic (meaningful under TSan via reproduce.sh).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"

namespace lamo {
namespace {

TEST(ResponseCacheTest, MissThenHit) {
  ResponseCache cache(/*capacity=*/8, /*num_shards=*/1);
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  cache.Put("a", "alpha");
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "alpha");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResponseCacheTest, PutRefreshesExistingKey) {
  ResponseCache cache(/*capacity=*/8, /*num_shards=*/1);
  cache.Put("a", "old");
  cache.Put("a", "new");
  EXPECT_EQ(cache.size(), 1u);
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));
  EXPECT_EQ(value, "new");
}

TEST(ResponseCacheTest, EvictsLeastRecentlyUsed) {
  // One shard, two slots: "a" then "b"; touching "a" makes "b" the LRU
  // victim when "c" arrives.
  ResponseCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));  // refresh "a"
  cache.Put("c", "3");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("c", &value));
}

TEST(ResponseCacheTest, CapacityZeroDisables) {
  ResponseCache cache(/*capacity=*/0);
  cache.Put("a", "alpha");
  std::string value;
  EXPECT_FALSE(cache.Get("a", &value));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 0u);
}

TEST(ResponseCacheTest, ShardedCapacityIsRespected) {
  ResponseCache cache(/*capacity=*/16, /*num_shards=*/4);
  for (int i = 0; i < 200; ++i) {
    cache.Put("key" + std::to_string(i), "value");
  }
  // ceil(16/4) = 4 slots per shard; total never exceeds shards * slice.
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.size(), 0u);
}

TEST(ResponseCacheTest, ConcurrentMixedTrafficIsSafe) {
  ResponseCache cache(/*capacity=*/64, /*num_shards=*/8);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&cache, w] {
      std::string value;
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "key" + std::to_string((w * 37 + i) % 100);
        if (i % 3 == 0) {
          cache.Put(key, "value" + std::to_string(i));
        } else {
          cache.Get(key, &value);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace lamo
