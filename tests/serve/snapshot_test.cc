// Snapshot codec tests: lossless roundtrip of every packed artifact,
// byte-reproducible encoding, and the corruption matrix — truncated files,
// wrong magic, unsupported versions, checksum mismatches and
// checksum-valid-but-inconsistent bodies must all yield a Status error (never
// a crash).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "predict/gds.h"
#include "serve/snapshot.h"
#include "serve_test_util.h"

namespace lamo {
namespace {

// Same FNV-1a 64 the codec uses; lets corruption tests patch a body byte and
// then re-seal the file so the damage reaches the structural validators
// behind the checksum gate.
uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// Recomputes and rewrites the trailing checksum over bytes[0, size-8).
void Reseal(std::string* bytes) {
  const size_t body = bytes->size() - 8;
  const uint64_t h = Fnv1a64(bytes->data(), body);
  for (int i = 0; i < 8; ++i) {
    (*bytes)[body + i] = static_cast<char>((h >> (8 * i)) & 0xff);
  }
}

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    encoded_ = new std::string(EncodeSnapshot(TestSnapshot()));
  }
  static void TearDownTestSuite() {
    delete encoded_;
    encoded_ = nullptr;
  }
  static std::string* encoded_;
};

std::string* SnapshotTest::encoded_ = nullptr;

TEST_F(SnapshotTest, FixtureIsNontrivial) {
  const Snapshot& snapshot = TestSnapshot();
  EXPECT_GT(snapshot.graph.num_vertices(), 0u);
  EXPECT_GT(snapshot.ontology.num_terms(), 0u);
  ASSERT_FALSE(snapshot.motifs.empty())
      << "fixture must mine at least one labeled motif";
  EXPECT_FALSE(snapshot.categories.empty());
  EXPECT_EQ(snapshot.sites.size(), snapshot.graph.num_vertices());
  EXPECT_EQ(snapshot.protein_categories.size(),
            snapshot.graph.num_vertices());
}

TEST_F(SnapshotTest, EncodingIsByteReproducible) {
  EXPECT_EQ(*encoded_, EncodeSnapshot(TestSnapshot()));
}

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  const Snapshot& original = TestSnapshot();
  auto decoded = DecodeSnapshot(*encoded_);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  // Graph: same vertices, edges, adjacency.
  ASSERT_EQ(decoded->graph.num_vertices(), original.graph.num_vertices());
  ASSERT_EQ(decoded->graph.num_edges(), original.graph.num_edges());
  for (ProteinId v = 0; v < original.graph.num_vertices(); ++v) {
    const auto a = original.graph.Neighbors(v);
    const auto b = decoded->graph.Neighbors(v);
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()))
        << "vertex " << v;
  }

  // Ontology: names, structure, closures (exercise IsAncestorOrEqual).
  ASSERT_EQ(decoded->ontology.num_terms(), original.ontology.num_terms());
  for (TermId t = 0; t < original.ontology.num_terms(); ++t) {
    EXPECT_EQ(decoded->ontology.TermName(t), original.ontology.TermName(t));
    EXPECT_EQ(decoded->ontology.Depth(t), original.ontology.Depth(t));
  }
  ASSERT_EQ(decoded->ontology.Roots(), original.ontology.Roots());
  const TermId root = original.ontology.Roots()[0];
  for (TermId t = 0; t < original.ontology.num_terms(); ++t) {
    EXPECT_EQ(decoded->ontology.IsAncestorOrEqual(root, t),
              original.ontology.IsAncestorOrEqual(root, t));
  }

  // Annotations, weights, informative flags.
  for (ProteinId p = 0; p < original.graph.num_vertices(); ++p) {
    const auto a = original.annotations.TermsOf(p);
    const auto b = decoded->annotations.TermsOf(p);
    ASSERT_EQ(std::vector<TermId>(a.begin(), a.end()),
              std::vector<TermId>(b.begin(), b.end()))
        << "protein " << p;
  }
  for (TermId t = 0; t < original.ontology.num_terms(); ++t) {
    EXPECT_DOUBLE_EQ(decoded->weights.Weight(t), original.weights.Weight(t));
    EXPECT_DOUBLE_EQ(decoded->weights.LogWeight(t),
                     original.weights.LogWeight(t));
    EXPECT_EQ(decoded->informative.IsInformative(t),
              original.informative.IsInformative(t));
    EXPECT_EQ(decoded->informative.IsBorderInformative(t),
              original.informative.IsBorderInformative(t));
    EXPECT_EQ(decoded->informative.IsLabelCandidate(t),
              original.informative.IsLabelCandidate(t));
  }
  EXPECT_EQ(decoded->informative.BorderInformative(),
            original.informative.BorderInformative());

  // Labeled motifs, site index and prediction context.
  ASSERT_EQ(decoded->motifs.size(), original.motifs.size());
  for (size_t m = 0; m < original.motifs.size(); ++m) {
    const LabeledMotif& a = original.motifs[m];
    const LabeledMotif& b = decoded->motifs[m];
    EXPECT_EQ(b.frequency, a.frequency);
    EXPECT_DOUBLE_EQ(b.uniqueness, a.uniqueness);
    EXPECT_DOUBLE_EQ(b.strength, a.strength);
    EXPECT_EQ(b.scheme, a.scheme);
    EXPECT_EQ(b.pattern.num_vertices(), a.pattern.num_vertices());
    ASSERT_EQ(b.occurrences.size(), a.occurrences.size());
    for (size_t o = 0; o < a.occurrences.size(); ++o) {
      EXPECT_EQ(b.occurrences[o].proteins, a.occurrences[o].proteins);
    }
  }
  EXPECT_EQ(decoded->sites.size(), original.sites.size());
  for (size_t p = 0; p < original.sites.size(); ++p) {
    EXPECT_EQ(decoded->sites[p], original.sites[p]) << "protein " << p;
  }
  EXPECT_EQ(decoded->categories, original.categories);
  EXPECT_EQ(decoded->protein_categories, original.protein_categories);

  // Predictor section (version 3): the precomputed GDS signature and role
  // vector matrices survive byte-for-byte.
  EXPECT_EQ(decoded->version, kSnapshotVersion);
  EXPECT_EQ(decoded->gds_signatures, original.gds_signatures);
  EXPECT_EQ(decoded->role_dim, original.role_dim);
  EXPECT_EQ(decoded->role_vectors, original.role_vectors);
}

TEST_F(SnapshotTest, PredictorSectionIsNontrivial) {
  const Snapshot& snapshot = TestSnapshot();
  ASSERT_EQ(snapshot.gds_signatures.size(),
            snapshot.graph.num_vertices() * kGdsOrbits);
  ASSERT_GT(snapshot.role_dim, 0u);
  ASSERT_EQ(snapshot.role_vectors.size(),
            snapshot.graph.num_vertices() * snapshot.role_dim);
  // A real network produces nonzero orbit counts and role features.
  uint64_t signature_sum = 0;
  for (const uint64_t cell : snapshot.gds_signatures) signature_sum += cell;
  EXPECT_GT(signature_sum, 0u);
}

TEST_F(SnapshotTest, Version2EncodeDecodesWithEmptyPredictorSection) {
  Snapshot v2 = TestSnapshot();
  v2.version = 2;
  const std::string bytes = EncodeSnapshot(v2);
  EXPECT_LT(bytes.size(), encoded_->size());  // no predictor section
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, 2u);
  EXPECT_TRUE(decoded->gds_signatures.empty());
  EXPECT_EQ(decoded->role_dim, 0u);
  EXPECT_TRUE(decoded->role_vectors.empty());
  // Everything else is intact: re-encoding the decoded image at version 2
  // reproduces the file.
  EXPECT_EQ(EncodeSnapshot(*decoded), bytes);
  EXPECT_EQ(decoded->categories, TestSnapshot().categories);
}

TEST_F(SnapshotTest, ShardsKeepTheFullPredictorSection) {
  // Scoring must be identical on every shard, so the precomputed matrices
  // are never sliced by ownership.
  const Snapshot shard = MakeShard(TestSnapshot(), 1, 2);
  EXPECT_EQ(shard.gds_signatures, TestSnapshot().gds_signatures);
  EXPECT_EQ(shard.role_dim, TestSnapshot().role_dim);
  EXPECT_EQ(shard.role_vectors, TestSnapshot().role_vectors);
  EXPECT_EQ(shard.version, TestSnapshot().version);
}

TEST_F(SnapshotTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/roundtrip.lamosnap";
  ASSERT_TRUE(WriteSnapshot(TestSnapshot(), path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(EncodeSnapshot(*loaded), *encoded_);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, ReadMissingFileFails) {
  const auto result = ReadSnapshot(::testing::TempDir() + "/no-such.lamosnap");
  EXPECT_FALSE(result.ok());
}

// ---- corruption matrix -----------------------------------------------------

TEST_F(SnapshotTest, RejectsEmptyAndShortInputs) {
  EXPECT_FALSE(DecodeSnapshot("").ok());
  EXPECT_FALSE(DecodeSnapshot("LAMO").ok());
  EXPECT_FALSE(DecodeSnapshot(std::string(12, '\0')).ok());
  EXPECT_FALSE(DecodeSnapshot(encoded_->substr(0, 19)).ok());
}

TEST_F(SnapshotTest, RejectsBadMagic) {
  std::string bytes = *encoded_;
  bytes[0] = 'X';
  const auto result = DecodeSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos)
      << result.status().ToString();
}

TEST_F(SnapshotTest, RejectsUnsupportedVersion) {
  // Both off the top (a future format) and off the bottom (the pre-shard v1
  // layout) of the supported [kMinSnapshotVersion, kSnapshotVersion] range.
  for (const uint32_t bad :
       {kSnapshotVersion + 1, kMinSnapshotVersion - 1}) {
    std::string bytes = *encoded_;
    bytes[8] = static_cast<char>(bad);  // u32 LE low byte
    Reseal(&bytes);  // valid checksum: must fail on the version, not the seal
    const auto result = DecodeSnapshot(bytes);
    ASSERT_FALSE(result.ok()) << "version " << bad;
    EXPECT_NE(result.status().message().find("version"), std::string::npos)
        << result.status().ToString();
  }
}

// ---- predictor-section corruption ------------------------------------------

TEST_F(SnapshotTest, RejectsMisshapenGdsSignatureMatrix) {
  Snapshot bad = TestSnapshot();
  bad.gds_signatures.pop_back();  // no longer n x 73
  const auto result = DecodeSnapshot(EncodeSnapshot(bad));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("GDS signature"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(SnapshotTest, RejectsMisshapenRoleVectorMatrix) {
  Snapshot bad = TestSnapshot();
  bad.role_vectors.pop_back();  // no longer n x role_dim
  EXPECT_FALSE(DecodeSnapshot(EncodeSnapshot(bad)).ok());

  Snapshot zero_dim = TestSnapshot();
  zero_dim.role_dim = 0;  // dim 0 with a nonempty matrix is incoherent
  EXPECT_FALSE(DecodeSnapshot(EncodeSnapshot(zero_dim)).ok());
}

TEST_F(SnapshotTest, RejectsPredictorSectionTruncation) {
  // A version-3 header with the bytes ending where a version-2 file would
  // (predictor section missing entirely) must fail, not silently decode.
  Snapshot v2 = TestSnapshot();
  v2.version = 2;
  std::string bytes = EncodeSnapshot(v2);
  bytes[8] = 3;  // claim version 3
  Reseal(&bytes);
  EXPECT_FALSE(DecodeSnapshot(bytes).ok());
}

TEST_F(SnapshotTest, RejectsTruncation) {
  // Cutting the file anywhere — inside the header, mid-section, or just
  // dropping the final byte — must fail cleanly.
  for (const size_t keep :
       {encoded_->size() - 1, encoded_->size() / 2, size_t{40}}) {
    EXPECT_FALSE(DecodeSnapshot(encoded_->substr(0, keep)).ok())
        << "kept " << keep << " of " << encoded_->size() << " bytes";
  }
}

TEST_F(SnapshotTest, RejectsBitFlips) {
  // A flip anywhere in the body breaks the checksum; a flip in the trailing
  // 8 bytes breaks the seal itself.
  for (const size_t offset :
       {size_t{13}, encoded_->size() / 3, 2 * encoded_->size() / 3,
        encoded_->size() - 3}) {
    std::string bytes = *encoded_;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    const auto result = DecodeSnapshot(bytes);
    EXPECT_FALSE(result.ok()) << "flip at offset " << offset;
  }
}

TEST_F(SnapshotTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(DecodeSnapshot(*encoded_ + "extra").ok());
}

TEST_F(SnapshotTest, ResealedBodyDamageNeverCrashes) {
  // Patch a byte, re-seal the checksum, and decode: the structural
  // validators behind the checksum gate must either reject the body or
  // produce a coherent snapshot — never crash or read out of bounds (the
  // reproduce script reruns these tests under ASan).
  for (size_t offset = 12; offset < encoded_->size() - 8;
       offset += encoded_->size() / 97 + 1) {
    std::string bytes = *encoded_;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0xff);
    Reseal(&bytes);
    const auto result = DecodeSnapshot(bytes);
    if (result.ok()) {
      // Harmless patch (e.g. a double's low mantissa bits): the decoded
      // snapshot must still be shape-consistent.
      EXPECT_EQ(result->sites.size(), result->graph.num_vertices());
    }
  }
}

}  // namespace
}  // namespace lamo
