// Differential and crash-safety tests for the dynamic-interactome serve
// path: UpdateEngine (incremental motif/predictor maintenance), the
// write-ahead UpdateJournal, and SnapshotService's mutation verbs.
//
// The engine differential pins the strongest claim: after a random sequence
// of live edge mutations, every piece of derived state the snapshot carries
// — occurrence multisets, global frequencies, LMS strengths, the site
// index, the GDS signature matrix, the role-vector matrix — equals a
// from-scratch recompute on the final graph. The recompute side enumerates
// the whole graph (full ESU, all k-sets), so it shares none of the
// pair-anchored delta machinery under test.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/lamofinder.h"
#include "graph/graph_index.h"
#include "motif/canon_cache.h"
#include "motif/esu_engine.h"
#include "motif/uniqueness.h"
#include "predict/gds.h"
#include "predict/role_similarity.h"
#include "serve/journal.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/update.h"
#include "synth/dataset.h"
#include "util/random.h"

namespace lamo {
namespace {

// A small pipeline run packed into a snapshot, with the occurrence cap far
// above any real count so the packed occurrence lists are the *complete*
// conforming sets — the invariant the differential oracle needs (and
// asserts) before mutating anything.
const Snapshot& SmallSnapshot() {
  static const Snapshot* const snapshot = [] {
    SyntheticDatasetConfig config;
    config.num_proteins = 70;
    config.go.num_terms = 50;
    config.go.depth = 4;
    config.num_templates = 2;
    config.copies_per_template = 6;
    config.template_min_size = 3;
    config.template_max_size = 4;
    config.informative_threshold = 8;
    config.seed = 913;
    SyntheticDataset dataset = BuildSyntheticDataset(config);

    MotifFindingConfig motif_config;
    motif_config.miner.min_size = 3;
    motif_config.miner.max_size = 4;
    motif_config.miner.min_frequency = 8;
    motif_config.uniqueness.num_random_networks = 3;
    motif_config.uniqueness_threshold = 0.0;
    const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);

    LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                      dataset.annotations);
    LaMoFinderConfig label_config;
    label_config.sigma = 6;
    label_config.max_occurrences = 1'000'000;  // uncapped in practice
    auto labeled = finder.LabelAll(motifs, label_config);

    InformativeConfig informative_config;
    informative_config.min_direct_proteins = config.informative_threshold;
    return new Snapshot(BuildSnapshot(
        std::move(dataset.ppi), std::move(dataset.ontology),
        std::move(dataset.annotations), std::move(labeled),
        informative_config));
  }();
  return *snapshot;
}

std::string CodeKey(const std::vector<uint8_t>& code) {
  return std::string(code.begin(), code.end());
}

// The stored occurrence list as a multiset of sorted vertex sets (alignment
// and order are presentation; the maintained *set* is the contract).
std::multiset<std::vector<VertexId>> StoredSets(const LabeledMotif& motif) {
  std::multiset<std::vector<VertexId>> sets;
  for (const MotifOccurrence& occ : motif.occurrences) {
    std::vector<VertexId> sorted = occ.proteins;
    std::sort(sorted.begin(), sorted.end());
    sets.insert(std::move(sorted));
  }
  return sets;
}

// Oracle: every conforming occurrence of `motif` in `graph`, by a full
// from-scratch enumeration of all connected k-sets (no pair anchoring).
std::multiset<std::vector<VertexId>> FullConformingSets(
    const Graph& graph, LaMoFinder& finder, const LabeledMotif& motif,
    SharedCanonCache& cache) {
  std::multiset<std::vector<VertexId>> sets;
  const GraphIndex index(graph);
  const std::string want = CodeKey(motif.code);
  esu_internal::RunEsu(
      index, motif.size(), 0, static_cast<VertexId>(graph.num_vertices()),
      [&](const VertexId* set, size_t size) {
        std::vector<VertexId> verts(set, set + size);
        std::sort(verts.begin(), verts.end());
        const uint64_t bits = index.InducedBits(verts.data(), size);
        const CanonicalResult& canon = cache.Lookup(bits);
        if (CodeKey(canon.code) != want) return true;
        MotifOccurrence occ;
        occ.proteins.resize(size);
        for (size_t i = 0; i < size; ++i) {
          occ.proteins[i] = verts[canon.canonical_to_original[i]];
        }
        const Motif probe{motif.pattern, motif.code, {occ}, 1, -1.0, {}};
        if (!finder.ConformingOccurrences(probe, motif.scheme).empty()) {
          sets.insert(std::move(verts));
        }
        return true;
      });
  return sets;
}

// The site index BuildSnapshot would derive from the current occurrence
// lists: first-seen dedup per protein, non-owned rows cleared on shards.
std::vector<std::vector<SnapshotSite>> RebuildSites(const Snapshot& snap) {
  std::vector<std::vector<SnapshotSite>> sites(snap.graph.num_vertices());
  for (uint32_t mi = 0; mi < snap.motifs.size(); ++mi) {
    for (const MotifOccurrence& occ : snap.motifs[mi].occurrences) {
      for (uint32_t pos = 0; pos < occ.proteins.size(); ++pos) {
        auto& row = sites[occ.proteins[pos]];
        const SnapshotSite site{mi, pos};
        if (std::find(row.begin(), row.end(), site) == row.end()) {
          row.push_back(site);
        }
      }
    }
  }
  if (snap.num_shards > 1) {
    for (uint32_t p = 0; p < sites.size(); ++p) {
      if (!snap.OwnsProtein(p)) sites[p].clear();
    }
  }
  return sites;
}

// A random mutation applicable to the current graph: deletes an existing
// edge or adds a missing one (never a self-loop).
DeltaEntry RandomMutation(const Graph& graph, Rng& rng) {
  DeltaEntry entry;
  const auto edges = graph.Edges();
  const bool del = !edges.empty() && rng.Uniform(2) == 0;
  if (del) {
    const auto [u, v] = edges[rng.Uniform(edges.size())];
    entry.add = false;
    entry.u = u;
    entry.v = v;
    return entry;
  }
  const size_t n = graph.num_vertices();
  while (true) {
    const VertexId u = static_cast<VertexId>(rng.Uniform(n));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    if (u == v || graph.HasEdge(u, v)) continue;
    entry.add = true;
    entry.u = u;
    entry.v = v;
    return entry;
  }
}

TEST(UpdateEngineDifferentialTest, MatchesFullRecomputeOverRandomSequence) {
  Snapshot snap = SmallSnapshot();  // mutable copy
  ASSERT_FALSE(snap.motifs.empty());
  ASSERT_FALSE(snap.gds_signatures.empty());
  ASSERT_FALSE(snap.role_vectors.empty());

  LaMoFinder finder(snap.ontology, snap.weights, snap.informative,
                    snap.annotations);
  std::map<size_t, std::unique_ptr<SharedCanonCache>> caches;
  const auto cache_for = [&caches](size_t k) -> SharedCanonCache& {
    auto it = caches.find(k);
    if (it == caches.end()) {
      it = caches.emplace(k, std::make_unique<SharedCanonCache>(k)).first;
    }
    return *it->second;
  };

  // Precondition the oracle rests on: the packed lists are complete.
  for (const LabeledMotif& motif : snap.motifs) {
    const auto expected =
        FullConformingSets(snap.graph, finder, motif, cache_for(motif.size()));
    ASSERT_EQ(StoredSets(motif), expected) << "packed occurrence list is not "
                                              "the complete conforming set";
    ASSERT_EQ(motif.frequency, expected.size());
  }

  UpdateEngine engine(&snap);
  Rng rng(777);
  for (int step = 0; step < 8; ++step) {
    const DeltaEntry mut = RandomMutation(snap.graph, rng);
    SCOPED_TRACE("step " + std::to_string(step) + " " +
                 std::string(mut.add ? "ADDEDGE " : "DELEDGE ") +
                 std::to_string(mut.u) + " " + std::to_string(mut.v));
    UpdateResult result;
    ASSERT_TRUE(engine.Apply(mut.add, mut.u, mut.v, &result).ok());
    EXPECT_EQ(snap.graph.HasEdge(mut.u, mut.v), mut.add);
    EXPECT_TRUE(std::binary_search(result.affected.begin(),
                                   result.affected.end(), mut.u));
    EXPECT_TRUE(std::binary_search(result.affected.begin(),
                                   result.affected.end(), mut.v));

    // Occurrences and frequencies against the full re-mine.
    std::vector<LabeledMotif> expected_motifs = snap.motifs;
    for (size_t mi = 0; mi < snap.motifs.size(); ++mi) {
      const LabeledMotif& motif = snap.motifs[mi];
      const auto expected = FullConformingSets(snap.graph, finder, motif,
                                               cache_for(motif.size()));
      EXPECT_EQ(StoredSets(motif), expected) << "motif " << mi;
      EXPECT_EQ(motif.frequency, expected.size()) << "motif " << mi;
      expected_motifs[mi].frequency = expected.size();
    }
    // Strengths: recomputing from the oracle frequencies must change
    // nothing (the engine already normalized within each size class).
    ComputeMotifStrengths(&expected_motifs);
    for (size_t mi = 0; mi < snap.motifs.size(); ++mi) {
      EXPECT_EQ(snap.motifs[mi].strength, expected_motifs[mi].strength)
          << "motif " << mi;
    }

    // Predictor matrices and the site index against global recomputes.
    EXPECT_EQ(snap.gds_signatures, ComputeGdsSignatures(snap.graph));
    EXPECT_EQ(snap.role_vectors,
              ComputeRoleVectors(snap.graph, snap.role_dim));
    EXPECT_EQ(snap.sites, RebuildSites(snap));
  }
}

TEST(UpdateEngineDifferentialTest, ShardUpdateMatchesShardOfUpdatedFull) {
  // Applying a mutation on every shard must produce exactly the shards of
  // the mutated full snapshot — the property the router's fan-out relies on.
  Snapshot full = SmallSnapshot();
  constexpr uint32_t kShards = 2;
  std::vector<Snapshot> shards;
  for (uint32_t i = 0; i < kShards; ++i) {
    shards.push_back(MakeShard(full, i, kShards));
  }

  UpdateEngine full_engine(&full);
  Rng rng(4242);
  std::vector<DeltaEntry> muts;
  for (int step = 0; step < 4; ++step) {
    const DeltaEntry mut = RandomMutation(full.graph, rng);
    muts.push_back(mut);
    UpdateResult result;
    ASSERT_TRUE(full_engine.Apply(mut.add, mut.u, mut.v, &result).ok());
  }
  for (uint32_t i = 0; i < kShards; ++i) {
    UpdateEngine engine(&shards[i]);
    for (const DeltaEntry& mut : muts) {
      UpdateResult result;
      ASSERT_TRUE(engine.Apply(mut.add, mut.u, mut.v, &result).ok());
    }
    const Snapshot expected = MakeShard(full, i, kShards);
    ASSERT_EQ(shards[i].motifs.size(), expected.motifs.size());
    for (size_t mi = 0; mi < expected.motifs.size(); ++mi) {
      SCOPED_TRACE("shard " + std::to_string(i) + " motif " +
                   std::to_string(mi));
      // Global frequency on the shard even where the occurrence is not
      // stored locally.
      EXPECT_EQ(shards[i].motifs[mi].frequency, expected.motifs[mi].frequency);
      EXPECT_EQ(shards[i].motifs[mi].strength, expected.motifs[mi].strength);
      EXPECT_EQ(StoredSets(shards[i].motifs[mi]),
                StoredSets(expected.motifs[mi]));
    }
    EXPECT_EQ(shards[i].sites, expected.sites);
  }
}

TEST(UpdateEngineTest, RejectsInvalidMutations) {
  Snapshot snap = SmallSnapshot();
  UpdateEngine engine(&snap);
  const std::string before = EncodeSnapshot(snap);
  UpdateResult result;
  EXPECT_FALSE(engine.Apply(true, 0, 0, &result).ok());  // self-loop
  EXPECT_FALSE(
      engine.Apply(true, 0, static_cast<VertexId>(snap.graph.num_vertices()),
                   &result)
          .ok());  // out of range
  const auto edges = snap.graph.Edges();
  ASSERT_FALSE(edges.empty());
  EXPECT_FALSE(
      engine.Apply(true, edges[0].first, edges[0].second, &result).ok());
  VertexId u = 0, v = 0;
  for (u = 0; u < snap.graph.num_vertices() && v == 0; ++u) {
    for (VertexId w = u + 1; w < snap.graph.num_vertices(); ++w) {
      if (!snap.graph.HasEdge(u, w)) {
        v = w;
        --u;
        break;
      }
    }
  }
  EXPECT_FALSE(engine.Apply(false, u, v, &result).ok());  // absent edge
  // Rejected mutations leave the snapshot untouched.
  EXPECT_EQ(EncodeSnapshot(snap), before);
}

TEST(UpdateEngineTest, ScoreEdgeCountsCompletedConformingInstances) {
  // Deleting an edge and re-scoring it must find exactly the conforming
  // instances the deletion destroyed, weighted by the refreshed strengths.
  Snapshot snap = SmallSnapshot();
  UpdateEngine engine(&snap);
  // Pick an edge that participates in at least one stored occurrence.
  VertexId u = 0, v = 0;
  bool found = false;
  for (const LabeledMotif& motif : snap.motifs) {
    for (const MotifOccurrence& occ : motif.occurrences) {
      for (size_t i = 0; i < occ.proteins.size() && !found; ++i) {
        for (size_t j = i + 1; j < occ.proteins.size() && !found; ++j) {
          if (snap.graph.HasEdge(occ.proteins[i], occ.proteins[j])) {
            u = occ.proteins[i];
            v = occ.proteins[j];
            found = true;
          }
        }
      }
      if (found) break;
    }
    if (found) break;
  }
  ASSERT_TRUE(found);

  EdgeScore present;
  EXPECT_FALSE(engine.ScoreEdge(u, v, &present).ok());  // edge exists

  UpdateResult del;
  ASSERT_TRUE(engine.Apply(false, u, v, &del).ok());
  EdgeScore score;
  ASSERT_TRUE(engine.ScoreEdge(u, v, &score).ok());
  // Every conforming instance the deletion removed from the global counts
  // is a completion for the candidate edge (freq deltas count conforming
  // instances whether or not this shard stores them; on 1 shard they agree
  // with occ_removed).
  EXPECT_EQ(score.completions, del.occ_removed);
  double expected_score = 0.0;
  for (const auto& [mi, count] : score.per_motif) {
    expected_score += static_cast<double>(count) * snap.motifs[mi].strength;
  }
  EXPECT_DOUBLE_EQ(score.score, expected_score);
  // Scoring leaves the graph unchanged.
  EXPECT_FALSE(snap.graph.HasEdge(u, v));

  // Re-adding restores the instances; the score predicted exactly what the
  // addition creates.
  UpdateResult addback;
  ASSERT_TRUE(engine.Apply(true, u, v, &addback).ok());
  EXPECT_EQ(addback.occ_added, score.completions);
}

// ---- journal ---------------------------------------------------------------

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(DeltaLineTest, ParsesWireGrammarExactly) {
  auto add = ParseDeltaLine("ADDEDGE 3 9");
  ASSERT_TRUE(add.ok());
  EXPECT_TRUE(add->add);
  EXPECT_EQ(add->u, 3u);
  EXPECT_EQ(add->v, 9u);
  auto del = ParseDeltaLine("DELEDGE 12 0");
  ASSERT_TRUE(del.ok());
  EXPECT_FALSE(del->add);
  EXPECT_EQ(del->u, 12u);
  EXPECT_EQ(del->v, 0u);
  EXPECT_FALSE(ParseDeltaLine("").ok());
  EXPECT_FALSE(ParseDeltaLine("ADDEDGE").ok());
  EXPECT_FALSE(ParseDeltaLine("ADDEDGE 1").ok());
  EXPECT_FALSE(ParseDeltaLine("ADDEDGE 1 2 3").ok());
  EXPECT_FALSE(ParseDeltaLine("ADDEDGE one two").ok());
  EXPECT_FALSE(ParseDeltaLine("PREDICT 1").ok());

  EXPECT_TRUE(IsDeltaComment(""));
  EXPECT_TRUE(IsDeltaComment("# note"));
  EXPECT_TRUE(IsDeltaComment("LAMOJOURNAL 1 0000000000000000"));
  EXPECT_FALSE(IsDeltaComment("ADDEDGE 1 2"));
}

TEST(UpdateJournalTest, AppendsAndReplaysAcrossReopen) {
  const std::string path = TempPath("journal.roundtrip");
  std::remove(path.c_str());
  {
    std::vector<DeltaEntry> replay;
    auto journal = UpdateJournal::Open(path, 0xABCDu, &replay);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    EXPECT_TRUE(replay.empty());
    ASSERT_TRUE(journal->Append({true, 4, 7}).ok());
    ASSERT_TRUE(journal->Append({false, 1, 2}).ok());
    EXPECT_EQ(journal->entries(), 2u);
  }
  std::vector<DeltaEntry> replay;
  auto journal = UpdateJournal::Open(path, 0xABCDu, &replay);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_TRUE(replay[0].add);
  EXPECT_EQ(replay[0].u, 4u);
  EXPECT_EQ(replay[0].v, 7u);
  EXPECT_FALSE(replay[1].add);
  EXPECT_EQ(replay[1].u, 1u);
  EXPECT_EQ(replay[1].v, 2u);
  std::remove(path.c_str());
}

TEST(UpdateJournalTest, IgnoresTornTrailingLine) {
  // A crash mid-append leaves a line without '\n'; that update was never
  // acknowledged, so replay must skip it — and the next append must not
  // fuse with the fragment.
  const std::string path = TempPath("journal.torn");
  WriteFile(path,
            "LAMOJOURNAL 1 0000000000001234\nADDEDGE 1 2\nDELEDGE 9");
  std::vector<DeltaEntry> replay;
  auto journal = UpdateJournal::Open(path, 0x1234u, &replay);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_TRUE(replay[0].add);
  std::remove(path.c_str());
}

TEST(UpdateJournalTest, RejectsChecksumMismatchAndGarbage) {
  const std::string path = TempPath("journal.bad");
  WriteFile(path, "LAMOJOURNAL 1 0000000000001234\nADDEDGE 1 2\n");
  std::vector<DeltaEntry> replay;
  // Journal written against a different base snapshot: refuse to replay.
  EXPECT_FALSE(UpdateJournal::Open(path, 0x9999u, &replay).ok());
  // A complete but unparseable entry is corruption, not a skip.
  WriteFile(path, "LAMOJOURNAL 1 0000000000001234\nADDEDGE one two\n");
  EXPECT_FALSE(UpdateJournal::Open(path, 0x1234u, &replay).ok());
  // Wrong header entirely.
  WriteFile(path, "not a journal\n");
  EXPECT_FALSE(UpdateJournal::Open(path, 0x1234u, &replay).ok());
  std::remove(path.c_str());
}

// ---- service ---------------------------------------------------------------

// An edge of some stored occurrence (deleting it changes answers) plus a
// non-edge for PREDICT_EDGE.
void PickInterestingPair(const Snapshot& snap, VertexId* u, VertexId* v) {
  for (const LabeledMotif& motif : snap.motifs) {
    for (const MotifOccurrence& occ : motif.occurrences) {
      for (size_t i = 0; i < occ.proteins.size(); ++i) {
        for (size_t j = i + 1; j < occ.proteins.size(); ++j) {
          if (snap.graph.HasEdge(occ.proteins[i], occ.proteins[j])) {
            *u = occ.proteins[i];
            *v = occ.proteins[j];
            return;
          }
        }
      }
    }
  }
  FAIL() << "no stored occurrence with an edge";
}

TEST(ServiceUpdateTest, CachedResponsesNeverGoStale) {
  // The regression the cache invalidation exists for: query, mutate, query
  // again. A cached service must answer exactly like an uncached one at
  // every step — if invalidation missed an affected entry, the second
  // PREDICT would serve the pre-update bytes.
  VertexId u = 0, v = 0;
  PickInterestingPair(SmallSnapshot(), &u, &v);
  SnapshotService cached{Snapshot(SmallSnapshot())};
  SnapshotService uncached{Snapshot(SmallSnapshot()), /*cache_capacity=*/0};

  std::vector<std::string> script;
  for (const VertexId p : {u, v}) {
    script.push_back("PREDICT " + std::to_string(p) + " 5");
    script.push_back("MOTIFS " + std::to_string(p));
  }
  script.push_back("DELEDGE " + std::to_string(u) + " " + std::to_string(v));
  for (const VertexId p : {u, v}) {
    script.push_back("PREDICT " + std::to_string(p) + " 5");  // was cached
    script.push_back("MOTIFS " + std::to_string(p));
  }
  script.push_back("PREDICT_EDGE " + std::to_string(u) + " " +
                   std::to_string(v));
  script.push_back("ADDEDGE " + std::to_string(u) + " " + std::to_string(v));
  for (const VertexId p : {u, v}) {
    script.push_back("PREDICT " + std::to_string(p) + " 5");
  }
  // The applied line's evicted= count legitimately differs (the uncached
  // service has nothing to invalidate); everything else must match.
  const auto strip_evicted = [](std::string response) {
    const size_t pos = response.find(" evicted=");
    if (pos != std::string::npos) {
      response.erase(pos, response.find('\n', pos) - pos);
    }
    return response;
  };
  for (const std::string& line : script) {
    SCOPED_TRACE(line);
    EXPECT_EQ(strip_evicted(cached.Handle(line)),
              strip_evicted(uncached.Handle(line)));
  }
  EXPECT_EQ(cached.stats().updates.load(), 2u);
}

TEST(ServiceUpdateTest, MutationVerbsValidateAndReport) {
  SnapshotService service{Snapshot(SmallSnapshot())};
  const auto edges = SmallSnapshot().graph.Edges();
  ASSERT_FALSE(edges.empty());
  const std::string edge = std::to_string(edges[0].first) + " " +
                           std::to_string(edges[0].second);
  EXPECT_EQ(service.Handle("ADDEDGE " + edge).rfind("ERR AlreadyExists", 0),
            0u);
  EXPECT_EQ(service.Handle("ADDEDGE 0 0").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(service.Handle("DELEDGE 999999 1").rfind("ERR InvalidArgument", 0),
            0u);
  EXPECT_EQ(service.Handle("ADDEDGE 1").rfind("ERR InvalidArgument", 0), 0u);
  const std::string applied = service.Handle("DELEDGE " + edge);
  EXPECT_EQ(applied.rfind("OK 1", 0), 0u);
  EXPECT_NE(applied.find("applied DELEDGE " + edge), std::string::npos);
  // STATS reports the update.
  const std::string stats = service.Handle("STATS");
  EXPECT_NE(stats.find("\nupdates 1\n"), std::string::npos);
}

TEST(ServiceUpdateTest, JournalReplayReproducesLiveState) {
  const std::string path = TempPath("journal.service");
  std::remove(path.c_str());
  VertexId u = 0, v = 0;
  PickInterestingPair(SmallSnapshot(), &u, &v);
  const std::string query = "PREDICT " + std::to_string(u) + " 5";
  std::string live_answer;
  {
    SnapshotService live{Snapshot(SmallSnapshot())};
    ASSERT_TRUE(live.AttachJournal(path).ok());
    ASSERT_EQ(live.Handle("DELEDGE " + std::to_string(u) + " " +
                          std::to_string(v))
                  .rfind("OK", 0),
              0u);
    live_answer = live.Handle(query);
  }
  // A fresh process over the untouched base snapshot + the journal must
  // replay to the exact same answers.
  SnapshotService restarted{Snapshot(SmallSnapshot())};
  ASSERT_TRUE(restarted.AttachJournal(path).ok());
  EXPECT_EQ(restarted.stats().updates.load(), 1u);
  EXPECT_EQ(restarted.Handle(query), live_answer);
  // Mismatched base snapshot: refuse.
  Snapshot other = SmallSnapshot();
  other.checksum ^= 0x1;
  SnapshotService wrong{std::move(other)};
  EXPECT_FALSE(wrong.AttachJournal(path).ok());
  std::remove(path.c_str());
}

TEST(ServiceUpdateTest, ConcurrentQueriesAndUpdatesAreSerialized) {
  // TSan-visible hammer: readers race PREDICT/MOTIFS against a writer
  // toggling an edge and scoring candidates. The service serializes
  // mutations behind the snapshot lock; every response must still be a
  // well-formed OK/ERR (and under TSan, data-race free).
  VertexId u = 0, v = 0;
  PickInterestingPair(SmallSnapshot(), &u, &v);
  SnapshotService service{Snapshot(SmallSnapshot())};
  const size_t n = SmallSnapshot().graph.num_vertices();
  std::atomic<bool> stop{false};
  std::atomic<size_t> malformed{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&service, &stop, &malformed, n, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const VertexId p = static_cast<VertexId>(rng.Uniform(n));
        const std::string verb = rng.Uniform(2) ? "PREDICT " : "MOTIFS ";
        const std::string response =
            service.Handle(verb + std::to_string(p));
        if (response.rfind("OK", 0) != 0 && response.rfind("ERR", 0) != 0) {
          malformed.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&service, u, v, &malformed] {
    const std::string del =
        "DELEDGE " + std::to_string(u) + " " + std::to_string(v);
    const std::string add =
        "ADDEDGE " + std::to_string(u) + " " + std::to_string(v);
    const std::string score =
        "PREDICT_EDGE " + std::to_string(u) + " " + std::to_string(v);
    for (int i = 0; i < 10; ++i) {
      if (service.Handle(del).rfind("OK", 0) != 0) malformed.fetch_add(1);
      if (service.Handle(score).rfind("OK", 0) != 0) malformed.fetch_add(1);
      if (service.Handle(add).rfind("OK", 0) != 0) malformed.fetch_add(1);
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(malformed.load(), 0u);
  EXPECT_EQ(service.stats().updates.load(), 20u);
}

}  // namespace
}  // namespace lamo
