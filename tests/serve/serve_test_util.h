#ifndef LAMO_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define LAMO_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <utility>

#include "core/lamofinder.h"
#include "motif/uniqueness.h"
#include "serve/snapshot.h"
#include "synth/dataset.h"

namespace lamo {

/// One small synthetic pipeline run (dataset -> mined motifs -> labeled
/// motifs) packed into a Snapshot. Built once per process and shared by the
/// serve tests; copy it before mutating or handing ownership to a service.
inline const Snapshot& TestSnapshot() {
  static const Snapshot* const snapshot = [] {
    SyntheticDatasetConfig config;
    config.num_proteins = 300;
    config.go.num_terms = 70;
    config.go.depth = 5;
    config.num_templates = 3;
    config.copies_per_template = 30;
    config.template_min_size = 3;
    config.template_max_size = 4;
    config.informative_threshold = 10;
    config.seed = 4242;
    SyntheticDataset dataset = BuildSyntheticDataset(config);

    MotifFindingConfig motif_config;
    motif_config.miner.min_size = 3;
    motif_config.miner.max_size = 4;
    motif_config.miner.min_frequency = 20;
    motif_config.uniqueness.num_random_networks = 3;
    motif_config.uniqueness_threshold = 0.0;  // keep all frequent patterns
    const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);

    LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                      dataset.annotations);
    LaMoFinderConfig label_config;
    label_config.sigma = 8;
    label_config.max_occurrences = 150;
    auto labeled = finder.LabelAll(motifs, label_config);

    InformativeConfig informative_config;
    informative_config.min_direct_proteins = config.informative_threshold;
    return new Snapshot(BuildSnapshot(
        std::move(dataset.ppi), std::move(dataset.ontology),
        std::move(dataset.annotations), std::move(labeled),
        informative_config));
  }();
  return *snapshot;
}

}  // namespace lamo

#endif  // LAMO_TESTS_SERVE_SERVE_TEST_UTIL_H_
