// Wire-protocol tests: request parsing, response framing, cache keys, the
// SnapshotService request handlers (including byte-identity between the
// PREDICT payload and the offline prediction formatter), and the stream
// server's ordered, deterministic output.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "predict/gds.h"
#include "predict/labeled_motif_predictor.h"
#include "predict/role_similarity.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve_test_util.h"

namespace lamo {
namespace {

// ---- ParseRequest ----------------------------------------------------------

TEST(ParseRequestTest, PredictWithDefaultK) {
  auto request = ParseRequest("PREDICT 17");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->type, RequestType::kPredict);
  EXPECT_EQ(request->protein, 17u);
  EXPECT_EQ(request->top_k, kDefaultPredictTopK);
}

TEST(ParseRequestTest, PredictWithExplicitK) {
  auto request = ParseRequest("PREDICT 17 5");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->top_k, 5u);
}

TEST(ParseRequestTest, ToleratesExtraWhitespaceAndCr) {
  auto request = ParseRequest("  PREDICT \t 17   5 \r");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->protein, 17u);
  EXPECT_EQ(request->top_k, 5u);
}

TEST(ParseRequestTest, OtherVerbs) {
  auto motifs = ParseRequest("MOTIFS 3");
  ASSERT_TRUE(motifs.ok());
  EXPECT_EQ(motifs->type, RequestType::kMotifs);
  EXPECT_EQ(motifs->protein, 3u);

  auto term = ParseRequest("TERMINFO T0005");
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term->type, RequestType::kTermInfo);
  EXPECT_EQ(term->term, "T0005");

  EXPECT_EQ(ParseRequest("HEALTH")->type, RequestType::kHealth);
  EXPECT_EQ(ParseRequest("STATS")->type, RequestType::kStats);
  EXPECT_EQ(ParseRequest("METRICS")->type, RequestType::kMetrics);
}

TEST(ParseRequestTest, RequestIdTokenIsStrippedIntoId) {
  auto request = ParseRequest("#7 PREDICT 3");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, 7u);
  EXPECT_EQ(request->type, RequestType::kPredict);
  EXPECT_EQ(request->protein, 3u);
  // No token: id stays 0 (= none).
  EXPECT_EQ(ParseRequest("PREDICT 3")->id, 0u);
  // The token rides any verb, whitespace included.
  auto stats = ParseRequest("  #42 \t STATS \r");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->id, 42u);
  EXPECT_EQ(stats->type, RequestType::kStats);
}

TEST(ParseRequestTest, MalformedRequestIdsAreRejected) {
  EXPECT_FALSE(ParseRequest("#x PREDICT 3").ok());
  EXPECT_FALSE(ParseRequest("# PREDICT 3").ok());
  EXPECT_FALSE(ParseRequest("#7").ok());  // an id alone is not a request
}

TEST(ParseRequestTest, Rejections) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("   \r").ok());
  EXPECT_FALSE(ParseRequest("BOGUS 1").ok());
  EXPECT_FALSE(ParseRequest("predict 1").ok());  // verbs are case-sensitive
  EXPECT_FALSE(ParseRequest("PREDICT").ok());
  EXPECT_FALSE(ParseRequest("PREDICT x").ok());
  EXPECT_FALSE(ParseRequest("PREDICT 1 0").ok());   // k must be positive
  EXPECT_FALSE(ParseRequest("PREDICT 1 2 3").ok());
  EXPECT_FALSE(ParseRequest("MOTIFS").ok());
  EXPECT_FALSE(ParseRequest("MOTIFS 1 2").ok());
  EXPECT_FALSE(ParseRequest("TERMINFO").ok());
  EXPECT_FALSE(ParseRequest("HEALTH now").ok());
  EXPECT_FALSE(ParseRequest("STATS all").ok());
  EXPECT_FALSE(ParseRequest("METRICS all").ok());
}

// ---- framing + cache keys --------------------------------------------------

TEST(FramingTest, OkResponse) {
  EXPECT_EQ(FormatOkResponse({}), "OK 0\n");
  EXPECT_EQ(FormatOkResponse({"a", "b"}), "OK 2\na\nb\n");
}

TEST(FramingTest, ErrorResponseIsOneLine) {
  const std::string response =
      FormatErrorResponse(Status::InvalidArgument("multi\nline\nmessage"));
  EXPECT_EQ(response, "ERR InvalidArgument multi line message\n");
}

TEST(CacheKeyTest, EquivalentSpellingsShareOneKey) {
  const auto a = ParseRequest("PREDICT 5");
  const auto b = ParseRequest(" PREDICT \t 5  3 \r");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(CacheKey(*a), CacheKey(*b));
  const auto c = ParseRequest("PREDICT 5 4");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(CacheKey(*a), CacheKey(*c));
}

TEST(CacheKeyTest, OnlyPureQueriesAreCacheable) {
  EXPECT_TRUE(IsCacheable(RequestType::kPredict));
  EXPECT_TRUE(IsCacheable(RequestType::kMotifs));
  EXPECT_TRUE(IsCacheable(RequestType::kTermInfo));
  EXPECT_FALSE(IsCacheable(RequestType::kHealth));
  EXPECT_FALSE(IsCacheable(RequestType::kStats));
  EXPECT_FALSE(IsCacheable(RequestType::kMetrics));
}

TEST(CacheKeyTest, RequestIdNeverChangesTheKey) {
  const auto plain = ParseRequest("PREDICT 5");
  const auto tagged = ParseRequest("#99 PREDICT 5");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(CacheKey(*plain), CacheKey(*tagged))
      << "ids must not fragment the response cache";
}

// ---- SnapshotService -------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : service_(TestSnapshot()) {}
  SnapshotService service_;
};

TEST_F(ServiceTest, HealthReportsSnapshotIdentity) {
  const std::string response = service_.Handle("HEALTH");
  EXPECT_EQ(response.rfind("OK 1\nready proteins=", 0), 0u) << response;
}

TEST_F(ServiceTest, PredictMatchesOfflineFormatter) {
  const Snapshot& snapshot = service_.snapshot();
  // Rebuild the offline context + predictor exactly as `lamo predict` does
  // and compare payloads for every protein: served answers must be
  // byte-identical to offline ones.
  PredictionContext context;
  context.ppi = &snapshot.graph;
  context.categories = snapshot.categories;
  context.protein_categories = snapshot.protein_categories;
  const LabeledMotifPredictor predictor(context, snapshot.ontology,
                                        snapshot.motifs);
  for (ProteinId p = 0; p < snapshot.graph.num_vertices(); ++p) {
    const auto lines = PredictionOutputLines(context, snapshot.ontology,
                                             predictor, p, 3);
    EXPECT_EQ(service_.Handle("PREDICT " + std::to_string(p)),
              FormatOkResponse(lines))
        << "protein " << p;
  }
}

TEST_F(ServiceTest, UsePredictorSwapsBackendAndMatchesOffline) {
  EXPECT_EQ(service_.predictor_name(), "lms");
  ASSERT_TRUE(service_.UsePredictor("gds").ok());
  EXPECT_EQ(service_.predictor_name(), "gds");
  EXPECT_NE(service_.Handle("STATS").find("predictor gds"),
            std::string::npos);

  // Served answers under the swapped backend are byte-identical to an
  // offline GdsPredictor built from the snapshot's precomputed matrices.
  const Snapshot& snapshot = service_.snapshot();
  PredictionContext context;
  context.ppi = &snapshot.graph;
  context.categories = snapshot.categories;
  context.protein_categories = snapshot.protein_categories;
  const GdsPredictor gds(context, snapshot.gds_signatures);
  for (ProteinId p = 0; p < snapshot.graph.num_vertices(); p += 17) {
    EXPECT_EQ(service_.Handle("PREDICT " + std::to_string(p)),
              FormatOkResponse(
                  PredictionOutputLines(context, snapshot.ontology, gds, p, 3)))
        << "protein " << p;
  }

  // And the role backend swaps in the same way.
  ASSERT_TRUE(service_.UsePredictor("role").ok());
  EXPECT_EQ(service_.predictor_name(), "role");
  EXPECT_NE(service_.Handle("STATS").find("predictor role"),
            std::string::npos);
}

TEST_F(ServiceTest, UsePredictorRejectsUnknownName) {
  const Status status = service_.UsePredictor("nope");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(service_.predictor_name(), "lms");  // active backend unchanged
}

TEST(SnapshotServiceVersionTest, Version2SnapshotServesOnlyLms) {
  Snapshot v2 = TestSnapshot();
  v2.version = 2;
  v2.gds_signatures.clear();
  v2.role_dim = 0;
  v2.role_vectors.clear();
  SnapshotService service(std::move(v2));
  EXPECT_TRUE(service.UsePredictor("lms").ok());
  const Status status = service.UsePredictor("gds");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("repack"), std::string::npos)
      << status.ToString();
}

TEST_F(ServiceTest, MotifsListsSites) {
  const Snapshot& snapshot = service_.snapshot();
  ProteinId covered = snapshot.graph.num_vertices();
  for (ProteinId p = 0; p < snapshot.sites.size(); ++p) {
    if (!snapshot.sites[p].empty()) {
      covered = p;
      break;
    }
  }
  ASSERT_LT(covered, snapshot.graph.num_vertices())
      << "fixture must cover at least one protein";
  const std::string response =
      service_.Handle("MOTIFS " + std::to_string(covered));
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  EXPECT_NE(response.find("motif "), std::string::npos) << response;
}

TEST_F(ServiceTest, TermInfoKnownAndUnknown) {
  const std::string name = service_.snapshot().ontology.TermName(0);
  const std::string response = service_.Handle("TERMINFO " + name);
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  EXPECT_NE(response.find("term " + name), std::string::npos) << response;

  const std::string missing = service_.Handle("TERMINFO NO_SUCH_TERM");
  EXPECT_EQ(missing.rfind("ERR NotFound", 0), 0u) << missing;
}

TEST_F(ServiceTest, ErrorsAreStatusLinesNotCrashes) {
  EXPECT_EQ(service_.Handle("BOGUS").rfind("ERR InvalidArgument", 0), 0u);
  EXPECT_EQ(service_.Handle("PREDICT 999999999").rfind("ERR ", 0), 0u);
  EXPECT_EQ(service_.Handle("MOTIFS 999999999").rfind("ERR ", 0), 0u);
  EXPECT_EQ(service_.Handle("").rfind("ERR ", 0), 0u);
}

TEST_F(ServiceTest, StatsTrackRequestsAndCache) {
  service_.Handle("PREDICT 1");
  service_.Handle("PREDICT 1");      // cache hit
  service_.Handle("PREDICT 1 3");    // same canonical key: another hit
  service_.Handle("BOGUS");
  EXPECT_EQ(service_.stats().requests.load(), 4u);
  EXPECT_EQ(service_.stats().errors.load(), 1u);
  EXPECT_EQ(service_.stats().cache_misses.load(), 1u);
  EXPECT_EQ(service_.stats().cache_hits.load(), 2u);
  EXPECT_EQ(service_.cache_entries(), 1u);

  const std::string stats = service_.Handle("STATS");
  EXPECT_NE(stats.find("requests 5"), std::string::npos) << stats;
  EXPECT_NE(stats.find("errors 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("uptime_s "), std::string::npos) << stats;
  EXPECT_NE(stats.find("start_time "), std::string::npos) << stats;
}

TEST_F(ServiceTest, MetricsRendersExpositionEvenWithoutSink) {
  // No obs sink installed (unit-test default): the scrape still answers OK
  // with the uptime gauges instead of erroring, so probes never flap.
  ASSERT_EQ(GetObsSink(), nullptr);
  const std::string response = service_.Handle("METRICS");
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  EXPECT_NE(response.find("# TYPE lamo_uptime_seconds gauge"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("lamo_start_time_seconds"), std::string::npos)
      << response;
}

TEST_F(ServiceTest, MetricsReflectsLiveCounters) {
  ObsSink sink;
  SetObsSink(&sink);
  service_.Handle("PREDICT 1");
  service_.Handle("BOGUS");
  const std::string response = service_.Handle("METRICS");
  SetObsSink(nullptr);
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  // 3 requests at scrape time (the METRICS request counts itself).
  EXPECT_NE(response.find("lamo_serve_requests_total 3"), std::string::npos)
      << response;
  EXPECT_NE(response.find("lamo_serve_errors_total 1"), std::string::npos)
      << response;
  // The request_us histogram is present with its cumulative +Inf bucket.
  EXPECT_NE(response.find("# TYPE lamo_serve_request_us histogram"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("lamo_serve_request_us_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << response;
}

TEST_F(ServiceTest, CacheOffNeverChangesResponses) {
  SnapshotService uncached(TestSnapshot(), /*cache_capacity=*/0);
  for (const char* request :
       {"PREDICT 1", "PREDICT 1", "MOTIFS 2", "TERMINFO T0001", "HEALTH"}) {
    EXPECT_EQ(uncached.Handle(request), service_.Handle(request)) << request;
  }
  EXPECT_EQ(uncached.stats().cache_hits.load(), 0u);
  EXPECT_EQ(uncached.cache_entries(), 0u);
}

// ---- stream server ---------------------------------------------------------

TEST(StreamServerTest, AnswersInOrderAndDeterministically) {
  const std::string script =
      "HEALTH\nPREDICT 0\nMOTIFS 1\nBOGUS\nPREDICT 0\n";
  std::string first;
  for (int run = 0; run < 2; ++run) {
    SnapshotService service(TestSnapshot());
    std::istringstream in(script);
    std::ostringstream out;
    ASSERT_TRUE(RunStreamServer(&service, in, out).ok());
    // Responses appear in request order: reply 1 is the HEALTH banner and
    // the BOGUS error precedes the final PREDICT payload.
    const std::string text = out.str();
    EXPECT_EQ(text.rfind("OK 1\nready proteins=", 0), 0u);
    EXPECT_NE(text.find("ERR InvalidArgument"), std::string::npos);
    EXPECT_EQ(service.stats().requests.load(), 5u);
    if (run == 0) {
      first = text;
    } else {
      EXPECT_EQ(text, first) << "stream output must be deterministic";
    }
  }
}

TEST(StreamServerTest, EmptyInputIsFine) {
  SnapshotService service(TestSnapshot());
  std::istringstream in("");
  std::ostringstream out;
  ASSERT_TRUE(RunStreamServer(&service, in, out).ok());
  EXPECT_TRUE(out.str().empty());
  EXPECT_EQ(service.stats().requests.load(), 0u);
}

}  // namespace
}  // namespace lamo
