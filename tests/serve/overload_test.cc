// In-process abuse tests for the TCP server's overload protection: a
// slowloris writer, an oversized request line, a half-closed socket, an
// idle connection, and a connection burst past max_conns each get the
// documented protocol error (or a clean disconnect) within the configured
// deadline — and the server still drains and returns OK afterwards.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "serve/server.h"
#include "serve_test_util.h"
#include "util/status.h"

namespace lamo {
namespace {

/// Runs RunTcpServer on a background thread with the given options and an
/// ephemeral port, and shuts it down with SIGTERM on destruction (the same
/// signal production uses), asserting the server drained cleanly.
class TestServer {
 public:
  explicit TestServer(ServeOptions options)
      : service_(Snapshot(TestSnapshot())) {
    options.port = 0;
    options.on_listening = [this](uint16_t port) {
      std::lock_guard<std::mutex> lock(mu_);
      port_ = port;
      cv_.notify_all();
    };
    log_ = std::tmpfile();  // keep listening/drained banners out of the log
    options.log = log_;
    thread_ = std::thread(
        [this, options] { status_ = RunTcpServer(&service_, options); });
    std::unique_lock<std::mutex> lock(mu_);
    EXPECT_TRUE(cv_.wait_for(lock, std::chrono::seconds(10),
                             [this] { return port_ != 0; }))
        << "server did not start listening";
  }

  ~TestServer() {
    raise(SIGTERM);
    thread_.join();
    EXPECT_TRUE(status_.ok()) << status_.ToString();
    if (log_ != nullptr) std::fclose(log_);
  }

  uint16_t port() const { return port_; }
  SnapshotService& service() { return service_; }

 private:
  SnapshotService service_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint16_t port_ = 0;
  std::thread thread_;
  Status status_;
  std::FILE* log_ = nullptr;
};

/// A blocking client socket with a receive timeout, so a server that wrongly
/// hangs fails the test instead of wedging the suite.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval timeout{10, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0)
        << std::strerror(errno);
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  void HalfClose() { shutdown(fd_, SHUT_WR); }

  /// Reads until EOF (server closed) or the socket timeout; returns all
  /// bytes received.
  std::string RecvUntilClose() {
    std::string received;
    char chunk[4096];
    while (true) {
      const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) break;
      received.append(chunk, static_cast<size_t>(n));
    }
    return received;
  }

  /// Reads one '\n'-terminated line (blocking, bounded by the timeout).
  std::string RecvLine() {
    std::string line;
    char c;
    while (recv(fd_, &c, 1, 0) == 1) {
      line.push_back(c);
      if (c == '\n') break;
    }
    return line;
  }

 private:
  int fd_ = -1;
};

TEST(OverloadTest, NormalRequestStillWorks) {
  ServeOptions options;
  options.request_timeout_ms = 5000;
  TestServer server(options);
  Client client(server.port());
  client.Send("HEALTH\n");
  const std::string line = client.RecvLine();
  EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;
}

TEST(OverloadTest, SlowlorisPartialLineGetsDeadlineError) {
  ServeOptions options;
  options.request_timeout_ms = 300;
  options.idle_timeout_ms = 60'000;  // isolate: only the line deadline armed
  TestServer server(options);
  Client client(server.port());
  client.Send("PRED");  // never finishes the line
  const auto start = std::chrono::steady_clock::now();
  const std::string response = client.RecvUntilClose();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_NE(response.find("ERR DeadlineExceeded"), std::string::npos)
      << response;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(OverloadTest, OversizedRequestLineGetsProtocolError) {
  ServeOptions options;
  options.max_line_bytes = 1024;
  TestServer server(options);
  Client client(server.port());
  client.Send(std::string(5000, 'A'));  // no newline, 5x over the limit
  const std::string response = client.RecvUntilClose();
  EXPECT_NE(response.find("ERR InvalidArgument"), std::string::npos)
      << response;
  EXPECT_NE(response.find("request line too long"), std::string::npos)
      << response;
}

TEST(OverloadTest, IdleConnectionIsReaped) {
  ServeOptions options;
  options.idle_timeout_ms = 200;
  options.request_timeout_ms = 60'000;  // isolate: only the idle reaper armed
  TestServer server(options);
  Client client(server.port());
  // Send nothing. The server must close the connection on its own.
  const auto start = std::chrono::steady_clock::now();
  const std::string response = client.RecvUntilClose();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(response, "");  // reaped silently, no protocol error
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(OverloadTest, HalfClosedSocketDisconnectsCleanly) {
  ServeOptions options;
  TestServer server(options);
  Client client(server.port());
  client.Send("HEALTH\n");
  client.HalfClose();  // client will never send again
  const std::string response = client.RecvUntilClose();
  // The pipelined request is still answered, then the connection closes
  // (EOF) instead of lingering on a dead peer.
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
}

TEST(OverloadTest, BurstBeyondMaxConnsIsBackpressuredNotDropped) {
  ServeOptions options;
  options.max_conns = 2;
  options.idle_timeout_ms = 60'000;
  TestServer server(options);

  // Two connections hold both slots (kept alive by the generous idle
  // budget).
  Client holder1(server.port());
  Client holder2(server.port());
  // Give the server time to accept both before the burst.
  Client probe(server.port());
  probe.Send("HEALTH\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // probe sits in the kernel backlog: not accepted, not answered yet, but
  // also not rejected. Freeing one slot must let it through.
  holder1.HalfClose();
  const std::string response = probe.RecvLine();
  EXPECT_EQ(response.rfind("OK ", 0), 0u) << response;
  // All three clients were eventually served over at most 2 live slots.
  EXPECT_LE(server.service().stats().connections.load(), 3u);
}

TEST(OverloadTest, ServerDrainsWithAbusersStillConnected) {
  ServeOptions options;
  options.request_timeout_ms = 60'000;
  options.idle_timeout_ms = 60'000;
  auto server = std::make_unique<TestServer>(options);
  Client abuser(server->port());
  abuser.Send("PARTIAL");  // unfinished line at shutdown time
  Client healthy(server->port());
  healthy.Send("HEALTH\n");
  EXPECT_EQ(healthy.RecvLine().rfind("OK ", 0), 0u);
  // Destroying the server raises SIGTERM and asserts RunTcpServer returned
  // OK — with the abuser's connection still open.
  server.reset();
  EXPECT_EQ(abuser.RecvUntilClose().find("OK"), std::string::npos);
}

}  // namespace
}  // namespace lamo
