#!/bin/sh
# Live-update contract, end to end: pack a snapshot, then prove the three
# roads to the same dynamic interactome are byte-identical — (1) a live
# server applying ADDEDGE/DELEDGE with a write-ahead --journal, (2) an
# offline `pack --apply-deltas` repack, and (3) a restarted server replaying
# that journal. Then the operational drills: a DELEDGE through a cached TCP
# server must invalidate stale PREDICT answers, PREDICT_EDGE must score the
# removed edge (and reject an existing one), the final --report must pass
# the update.* invariants in lamo_report_check, the router must fan
# mutations out to every backend while routing PREDICT_EDGE like PREDICT,
# and --watch-deltas must pick a mutation up from a tailed file.
set -e
LAMO="$1"
BENCH="$2"
REPORT_CHECK="$3"
WORK="$(mktemp -d)"
SERVER=""
SERVER2=""
ROUTER=""
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null
  [ -n "$SERVER2" ] && kill "$SERVER2" 2> /dev/null
  [ -n "$ROUTER" ] && kill "$ROUTER" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$LAMO" generate --proteins 300 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 3 --min-freq 15 --networks 4 --uniqueness 0.8 \
  --out "$WORK/motifs.txt" > /dev/null
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" > /dev/null
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model.lamosnap" --shards 2 > /dev/null

# Two distinct edges from the edge list (line 1 is a comment, line 2 the
# vertex count). E1 is deleted and re-added (net no-op); E2 stays deleted,
# so the updated state differs from the base snapshot by exactly one edge.
E1="$(sed -n '3p' "$WORK/ds.graph.txt")"
E2="$(sed -n '20p' "$WORK/ds.graph.txt")"
E1U="${E1%% *}"; E1V="${E1##* }"
E2U="${E2%% *}"; E2V="${E2##* }"
test "$E1" != "$E2" || { echo "FAIL: edge sample collided" >&2; exit 1; }

cat > "$WORK/deltas.txt" << EOF
# exercise both verbs; net effect: base graph minus edge $E2
DELEDGE $E1U $E1V
ADDEDGE $E1U $E1V
DELEDGE $E2U $E2V
EOF
cat > "$WORK/queries.txt" << EOF
PREDICT $E2U 3
PREDICT $E2V 3
MOTIFS $E2U
MOTIFS $E1U
PREDICT_EDGE $E2U $E2V
TERMINFO T0005
EOF

# --- Part 1: live == repack == replay, byte for byte. --------------------
# Live: mutations then queries through one --stdin server with a journal.
# Each mutation answers with a 2-line OK response; drop all 6.
grep -v '^#' "$WORK/deltas.txt" | cat - "$WORK/queries.txt" \
  | "$LAMO" serve --snapshot "$WORK/model.lamosnap" --stdin \
    --journal "$WORK/journal" > "$WORK/live_all.out" 2> /dev/null
head -6 "$WORK/live_all.out" | grep -q "applied DELEDGE $E2U $E2V" || {
  echo "FAIL: live server did not acknowledge DELEDGE" >&2
  head -6 "$WORK/live_all.out" >&2
  exit 1
}
head -6 "$WORK/live_all.out" | grep -q "applied ADDEDGE $E1U $E1V" || {
  echo "FAIL: live server did not acknowledge ADDEDGE" >&2
  exit 1
}
sed '1,6d' "$WORK/live_all.out" > "$WORK/live.out"

# Repack: the same deltas folded in offline, comments and all.
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --apply-deltas "$WORK/deltas.txt" --out "$WORK/updated.lamosnap" \
  --shards 2 > "$WORK/pack_deltas.out"
grep -q "applied 3 deltas" "$WORK/pack_deltas.out" || {
  echo "FAIL: pack --apply-deltas did not report 3 applied deltas" >&2
  cat "$WORK/pack_deltas.out" >&2
  exit 1
}
"$LAMO" serve --snapshot "$WORK/updated.lamosnap" --stdin \
  < "$WORK/queries.txt" > "$WORK/repack.out" 2> /dev/null
cmp "$WORK/live.out" "$WORK/repack.out" || {
  echo "FAIL: live-updated server differs from pack --apply-deltas" >&2
  diff "$WORK/live.out" "$WORK/repack.out" | head >&2
  exit 1
}

# Replay: a fresh server on the BASE snapshot + the journal must converge
# to the same answers, and say how many entries it replayed.
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --stdin \
  --journal "$WORK/journal" < "$WORK/queries.txt" > "$WORK/replay.out" \
  2> "$WORK/replay.err"
cmp "$WORK/replay.out" "$WORK/repack.out" || {
  echo "FAIL: journal replay differs from pack --apply-deltas" >&2
  diff "$WORK/replay.out" "$WORK/repack.out" | head >&2
  exit 1
}
grep -q "journal .* attached (3 updates)" "$WORK/replay.err" || {
  echo "FAIL: replay banner does not show 3 replayed updates" >&2
  cat "$WORK/replay.err" >&2
  exit 1
}
# Journal layout (docs/FORMATS.md): versioned header binding the base
# snapshot checksum, then one wire-grammar line per acknowledged update.
head -1 "$WORK/journal" | grep -q '^LAMOJOURNAL 1 [0-9a-f]\{16\}$' || {
  echo "FAIL: journal header malformed: $(head -1 "$WORK/journal")" >&2
  exit 1
}
test "$(grep -c 'EDGE' "$WORK/journal")" -eq 3 || {
  echo "FAIL: journal does not hold exactly 3 entries" >&2
  cat "$WORK/journal" >&2
  exit 1
}

wait_port() {
  PORT=""
  for _ in $(seq 1 200); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1")"
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "FAIL: no listening banner in $1" >&2
  exit 1
}

# --- Part 2: stale-cache regression + PREDICT_EDGE over TCP. -------------
# Server A serves the base snapshot with the response cache on; server B
# serves the repacked (edge-deleted) snapshot as the oracle.
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --port 0 \
  --report "$WORK/serve_report.json" > "$WORK/serve_a.log" 2>&1 &
SERVER=$!
wait_port "$WORK/serve_a.log"
APORT="$PORT"
"$LAMO" serve --snapshot "$WORK/updated.lamosnap" --port 0 \
  > "$WORK/serve_b.log" 2>&1 &
SERVER2=$!
wait_port "$WORK/serve_b.log"
BPORT="$PORT"

# Warm A's cache on the pre-delete answer, then mutate, then re-ask: the
# answer must be the post-delete one (a stale cache would replay the first).
"$BENCH" --port "$APORT" --query "PREDICT $E2U 3" > "$WORK/pre.txt"
"$BENCH" --port "$BPORT" --query "PREDICT $E2U 3" > "$WORK/post_expected.txt"
"$BENCH" --port "$APORT" --query "DELEDGE $E2U $E2V" > "$WORK/applied.txt"
grep -q "applied DELEDGE $E2U $E2V" "$WORK/applied.txt" || {
  echo "FAIL: TCP DELEDGE not acknowledged: $(cat "$WORK/applied.txt")" >&2
  exit 1
}
"$BENCH" --port "$APORT" --query "PREDICT $E2U 3" > "$WORK/post.txt"
cmp "$WORK/post.txt" "$WORK/post_expected.txt" || {
  echo "FAIL: PREDICT after DELEDGE differs from a fresh server on the" \
    "updated snapshot (stale cache?)" >&2
  diff "$WORK/post.txt" "$WORK/post_expected.txt" | head >&2
  exit 1
}

# PREDICT_EDGE scores the now-missing edge as a candidate interaction...
"$BENCH" --port "$APORT" --query "PREDICT_EDGE $E2U $E2V" > "$WORK/edge.txt"
grep -q "candidate edge $E2U $E2V score" "$WORK/edge.txt" || {
  echo "FAIL: PREDICT_EDGE payload malformed: $(cat "$WORK/edge.txt")" >&2
  exit 1
}
# ...and must reject an edge that is still present.
rc=0
"$BENCH" --port "$APORT" --query "PREDICT_EDGE $E1U $E1V" \
  > /dev/null 2>&1 || rc=$?
test "$rc" -ne 0 || {
  echo "FAIL: PREDICT_EDGE accepted an existing edge" >&2
  exit 1
}

# The update counters surface in the METRICS exposition before shutdown.
"$BENCH" --port "$APORT" --query "METRICS" > "$WORK/metrics.txt"
grep -q '^lamo_update_applied_total 1$' "$WORK/metrics.txt" || {
  echo "FAIL: METRICS lacks lamo_update_applied_total after one DELEDGE" >&2
  grep '^lamo_update' "$WORK/metrics.txt" >&2 || true
  exit 1
}

kill -TERM "$SERVER"
wait "$SERVER" || {
  echo "FAIL: server A exited nonzero after SIGTERM" >&2
  cat "$WORK/serve_a.log" >&2
  exit 1
}
SERVER=""
# The report must carry nonzero update traffic and pass the update.*
# invariants (applied == added + deleted, journal_replayed <= applied,
# resubgraphs <= esu.subgraphs) checked inside lamo_report_check.
"$REPORT_CHECK" "$WORK/serve_report.json" serve.requests update.applied \
  update.deleted update.resubgraphs hist:update.update_us > /dev/null || {
  echo "FAIL: serve report failed the update.* invariants" >&2
  exit 1
}

# --- Part 3: router fans mutations out to every backend. -----------------
"$LAMO" router --snapshot "$WORK/model.lamosnap" --backends 2 \
  --mode sharded --port 0 > "$WORK/router.log" 2> /dev/null &
ROUTER=$!
wait_port "$WORK/router.log"
RPORT="$PORT"
"$BENCH" --port "$RPORT" --query "DELEDGE $E2U $E2V" > "$WORK/fan.txt"
grep -q "applied DELEDGE $E2U $E2V backends=2" "$WORK/fan.txt" || {
  echo "FAIL: router fan-out not confirmed: $(cat "$WORK/fan.txt")" >&2
  exit 1
}
# After the fan-out every routed answer matches the single updated server.
"$BENCH" --port "$RPORT" --query "PREDICT $E2U 3" > "$WORK/router_post.txt"
cmp "$WORK/router_post.txt" "$WORK/post_expected.txt" || {
  echo "FAIL: router PREDICT after fan-out differs from updated serve" >&2
  diff "$WORK/router_post.txt" "$WORK/post_expected.txt" | head >&2
  exit 1
}
# PREDICT_EDGE routes like PREDICT and scores identically on any backend
# (each shard keeps the full graph and the global motif tables).
"$BENCH" --port "$RPORT" --query "PREDICT_EDGE $E2U $E2V" \
  > "$WORK/router_edge.txt"
cmp "$WORK/router_edge.txt" "$WORK/edge.txt" || {
  echo "FAIL: routed PREDICT_EDGE differs from single-server answer" >&2
  exit 1
}
kill "$ROUTER"
wait "$ROUTER" 2> /dev/null || true
ROUTER=""

# --- Part 4: --watch-deltas tails a file into the same update path. ------
: > "$WORK/watched.txt"
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --port 0 \
  --watch-deltas "$WORK/watched.txt" --watch-interval-ms 50 \
  > "$WORK/serve_w.log" 2>&1 &
SERVER=$!
wait_port "$WORK/serve_w.log"
WPORT="$PORT"
printf '# rotated in by an external pipeline\nDELEDGE %s %s\n' \
  "$E2U" "$E2V" >> "$WORK/watched.txt"
ok=""
for _ in $(seq 1 100); do
  if grep -q "watch-deltas \"DELEDGE $E2U $E2V\": OK" "$WORK/serve_w.log"
  then
    ok=1
    break
  fi
  sleep 0.1
done
test -n "$ok" || {
  echo "FAIL: --watch-deltas never applied the appended DELEDGE" >&2
  cat "$WORK/serve_w.log" >&2
  exit 1
}
"$BENCH" --port "$WPORT" --query "PREDICT $E2U 3" > "$WORK/watch_post.txt"
cmp "$WORK/watch_post.txt" "$WORK/post_expected.txt" || {
  echo "FAIL: answer after watched delta differs from updated serve" >&2
  exit 1
}
kill "$SERVER"
wait "$SERVER" 2> /dev/null || true
SERVER=""
kill "$SERVER2"
wait "$SERVER2" 2> /dev/null || true
SERVER2=""

echo "live update OK: live == repack == replay byte-identical, stale cache" \
  "invalidated, PREDICT_EDGE scored+rejected, update.* report invariants," \
  "router fan-out x2, watch-deltas applied"
