#include "io/motif_io.h"

#include <fstream>

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "synth/go_generator.h"

namespace lamo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Motif MakeSquareMotif() {
  Motif m;
  m.pattern = SmallGraph(4);
  m.pattern.AddEdge(0, 1);
  m.pattern.AddEdge(1, 2);
  m.pattern.AddEdge(2, 3);
  m.pattern.AddEdge(3, 0);
  m.code = CanonicalCode(m.pattern);
  m.occurrences.push_back(MotifOccurrence{{10, 11, 12, 13}});
  m.occurrences.push_back(MotifOccurrence{{20, 25, 22, 27}});
  m.frequency = 2;
  m.uniqueness = 0.97;
  return m;
}

TEST(MotifIoTest, RoundTrip) {
  const std::vector<Motif> motifs{MakeSquareMotif()};
  const std::string path = TempPath("motifs.txt");
  ASSERT_TRUE(WriteMotifs(motifs, path).ok());
  auto loaded = ReadMotifs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1u);
  const Motif& m = (*loaded)[0];
  EXPECT_TRUE(m.pattern == motifs[0].pattern);
  EXPECT_EQ(m.code, motifs[0].code);
  EXPECT_EQ(m.frequency, 2u);
  EXPECT_DOUBLE_EQ(m.uniqueness, 0.97);
  ASSERT_EQ(m.occurrences.size(), 2u);
  EXPECT_EQ(m.occurrences[1].proteins,
            (std::vector<VertexId>{20, 25, 22, 27}));
}

TEST(MotifIoTest, MultipleMotifs) {
  std::vector<Motif> motifs{MakeSquareMotif(), MakeSquareMotif()};
  motifs[1].pattern.AddEdge(0, 2);
  motifs[1].code = CanonicalCode(motifs[1].pattern);
  const std::string path = TempPath("motifs2.txt");
  ASSERT_TRUE(WriteMotifs(motifs, path).ok());
  auto loaded = ReadMotifs(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_NE((*loaded)[0].code, (*loaded)[1].code);
}

TEST(MotifIoTest, CorruptInputs) {
  const std::string path = TempPath("bad_motifs.txt");
  std::ofstream(path) << "motif 3 5 1.0\nocc 1 2\nend\n";  // arity mismatch
  EXPECT_TRUE(ReadMotifs(path).status().IsCorruption());
  std::ofstream(path) << "occ 1 2 3\n";  // stray occ
  EXPECT_TRUE(ReadMotifs(path).status().IsCorruption());
  std::ofstream(path) << "motif 3 5 1.0\nedges 0-1\n";  // unterminated
  EXPECT_TRUE(ReadMotifs(path).status().IsCorruption());
  EXPECT_TRUE(ReadMotifs("/nonexistent/x").status().IsIoError());
}

TEST(LabeledMotifIoTest, RoundTripWithOntology) {
  GoGeneratorConfig config;
  config.num_terms = 40;
  Rng rng(81);
  const Ontology ontology = GenerateGoBranch(config, rng);

  LabeledMotif lm;
  lm.pattern = SmallGraph(3);
  lm.pattern.AddEdge(0, 1);
  lm.pattern.AddEdge(1, 2);
  lm.code = CanonicalCode(lm.pattern);
  lm.scheme.resize(3);
  lm.scheme[0] = {5, 9};
  lm.scheme[2] = {12};  // position 1 stays "unknown"
  lm.occurrences.push_back(MotifOccurrence{{1, 2, 3}});
  lm.occurrences.push_back(MotifOccurrence{{7, 8, 9}});
  lm.frequency = 2;
  lm.uniqueness = 1.0;
  lm.strength = 0.5;

  const std::string path = TempPath("labeled.txt");
  ASSERT_TRUE(WriteLabeledMotifs({lm}, ontology, path).ok());
  auto loaded = ReadLabeledMotifs(path, ontology);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1u);
  const LabeledMotif& back = (*loaded)[0];
  EXPECT_TRUE(back.pattern == lm.pattern);
  EXPECT_EQ(back.scheme, lm.scheme);
  EXPECT_EQ(back.frequency, 2u);
  EXPECT_DOUBLE_EQ(back.strength, 0.5);
  ASSERT_EQ(back.occurrences.size(), 2u);
  EXPECT_EQ(back.occurrences[0].proteins, (std::vector<VertexId>{1, 2, 3}));
}

TEST(LabeledMotifIoTest, UnknownTermRejected) {
  GoGeneratorConfig config;
  config.num_terms = 10;
  Rng rng(82);
  const Ontology ontology = GenerateGoBranch(config, rng);
  const std::string path = TempPath("bad_labeled.txt");
  std::ofstream(path) << "labeled 3 1 1.0 0.5\nedges 0-1 1-2\n"
                      << "labels 0 NOPE\nocc 1 2 3\nend\n";
  EXPECT_TRUE(ReadLabeledMotifs(path, ontology).status().IsCorruption());
}

}  // namespace
}  // namespace lamo
