#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "io/edge_list.h"
#include "io/gaf.h"
#include "io/obo.h"
#include "synth/dataset.h"
#include "synth/go_generator.h"

namespace lamo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(EdgeListTest, RoundTrip) {
  GraphBuilder builder(5);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4).ok());
  const Graph original = builder.Build();

  const std::string path = TempPath("graph.txt");
  ASSERT_TRUE(WriteEdgeList(original, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_vertices(), 5u);
  EXPECT_EQ(loaded->Edges(), original.Edges());
}

TEST(EdgeListTest, MissingFile) {
  EXPECT_TRUE(ReadEdgeList("/nonexistent/nope.txt").status().IsIoError());
}

TEST(EdgeListTest, MissingHeader) {
  const std::string path = TempPath("bad_graph.txt");
  std::ofstream(path) << "0 1\n";
  EXPECT_TRUE(ReadEdgeList(path).status().IsCorruption());
}

TEST(EdgeListTest, OutOfRangeEndpoint) {
  const std::string path = TempPath("bad_graph2.txt");
  std::ofstream(path) << "vertices 2\n0 5\n";
  EXPECT_TRUE(ReadEdgeList(path).status().IsCorruption());
}

TEST(EdgeListTest, CommentsAndBlanksIgnored) {
  const std::string path = TempPath("commented_graph.txt");
  std::ofstream(path) << "# header comment\n\nvertices 3\n# edge\n0 1\n";
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), 1u);
}

TEST(OboTest, RoundTripGeneratedOntology) {
  GoGeneratorConfig config;
  config.num_terms = 60;
  Rng rng(71);
  const Ontology original = GenerateGoBranch(config, rng);

  const std::string path = TempPath("branch.obo");
  ASSERT_TRUE(WriteObo(original, path).ok());
  auto loaded = ReadObo(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_terms(), original.num_terms());
  for (TermId t = 0; t < original.num_terms(); ++t) {
    EXPECT_EQ(loaded->TermName(t), original.TermName(t));
    const auto orig_parents = original.Parents(t);
    const auto load_parents = loaded->Parents(t);
    ASSERT_EQ(load_parents.size(), orig_parents.size());
    for (size_t i = 0; i < orig_parents.size(); ++i) {
      EXPECT_EQ(original.TermName(orig_parents[i]),
                loaded->TermName(load_parents[i]));
      EXPECT_EQ(original.ParentRelations(t)[i], loaded->ParentRelations(t)[i]);
    }
  }
}

TEST(OboTest, ToleratesRealGoNoise) {
  const std::string path = TempPath("noisy.obo");
  std::ofstream(path) << "format-version: 1.2\n"
                      << "ontology: go\n\n"
                      << "[Term]\n"
                      << "id: GO:0001\n"
                      << "name: root thing\n"
                      << "namespace: molecular_function\n\n"
                      << "[Term]\n"
                      << "id: GO:0002\n"
                      << "is_a: GO:0001 ! root thing\n"
                      << "def: \"something\"\n\n"
                      << "[Typedef]\n"
                      << "id: part_of\n";
  auto loaded = ReadObo(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_terms(), 2u);
  EXPECT_EQ(loaded->Parents(1).size(), 1u);
}

TEST(OboTest, UnknownParentIsCorruption) {
  const std::string path = TempPath("dangling.obo");
  std::ofstream(path) << "[Term]\nid: A\nis_a: MISSING\n";
  EXPECT_TRUE(ReadObo(path).status().IsCorruption());
}

TEST(GafTest, RoundTrip) {
  GoGeneratorConfig config;
  config.num_terms = 40;
  Rng rng(72);
  const Ontology onto = GenerateGoBranch(config, rng);

  AnnotationTable table(5);
  ASSERT_TRUE(table.Annotate(0, 3).ok());
  ASSERT_TRUE(table.Annotate(0, 7).ok());
  ASSERT_TRUE(table.Annotate(4, 1).ok());

  const std::string path = TempPath("annotations.tsv");
  ASSERT_TRUE(WriteAnnotations(table, onto, path).ok());
  auto loaded = ReadAnnotations(path, onto);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_proteins(), 5u);
  EXPECT_EQ(loaded->TermsOf(0).size(), 2u);
  EXPECT_EQ(loaded->TermsOf(0)[0], 3u);
  EXPECT_EQ(loaded->TermsOf(4).size(), 1u);
  EXPECT_FALSE(loaded->IsAnnotated(2));
}

TEST(GafTest, UnknownTermIsCorruption) {
  GoGeneratorConfig config;
  config.num_terms = 10;
  Rng rng(73);
  const Ontology onto = GenerateGoBranch(config, rng);
  const std::string path = TempPath("bad_annotations.tsv");
  std::ofstream(path) << "proteins 2\n0\tNOPE\n";
  EXPECT_TRUE(ReadAnnotations(path, onto).status().IsCorruption());
}

TEST(DatasetIoTest, FullDatasetRoundTrip) {
  SyntheticDatasetConfig config;
  config.num_proteins = 200;
  config.go.num_terms = 50;
  config.num_templates = 2;
  config.copies_per_template = 10;
  config.seed = 77;
  const SyntheticDataset dataset = BuildSyntheticDataset(config);

  const std::string graph_path = TempPath("ds_graph.txt");
  const std::string obo_path = TempPath("ds.obo");
  const std::string gaf_path = TempPath("ds.tsv");
  ASSERT_TRUE(WriteEdgeList(dataset.ppi, graph_path).ok());
  ASSERT_TRUE(WriteObo(dataset.ontology, obo_path).ok());
  ASSERT_TRUE(WriteAnnotations(dataset.annotations, dataset.ontology,
                               gaf_path).ok());

  auto graph = ReadEdgeList(graph_path);
  auto onto = ReadObo(obo_path);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(onto.ok());
  auto annotations = ReadAnnotations(gaf_path, *onto);
  ASSERT_TRUE(annotations.ok());

  EXPECT_EQ(graph->Edges(), dataset.ppi.Edges());
  EXPECT_EQ(annotations->TotalOccurrences(),
            dataset.annotations.TotalOccurrences());
  // Weights recomputed from the reloaded pieces agree.
  const TermWeights weights = TermWeights::Compute(*onto, *annotations);
  for (TermId t = 0; t < onto->num_terms(); ++t) {
    EXPECT_NEAR(weights.Weight(t), dataset.weights.Weight(t), 1e-12);
  }
}

}  // namespace
}  // namespace lamo
