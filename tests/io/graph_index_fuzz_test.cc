// Deterministic mutation fuzzing of the GraphIndex build path: 500 seeded
// mutations of a valid edge-list document (same mutation battery as
// parser_fuzz_test.cc). Corrupt documents must be answered by ReadEdgeList
// with a non-OK Status; documents that still parse must always produce an
// index that passes its structural Validate() — on both the dense-bitset
// and forced-sparse layouts — and never crash. Run under ASan via
// scripts/reproduce.sh.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "graph/graph_index.h"
#include "io/edge_list.h"
#include "motif/esu.h"
#include "synth/dataset.h"
#include "util/random.h"

namespace lamo {
namespace {

constexpr int kMutations = 500;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One seeded mutation of `seed` (the parser_fuzz_test.cc battery:
/// truncations, bit flips, line splices, huge tokens, duplicated chunks,
/// garbage bytes). Every draw comes from `rng`, so trial N is identical on
/// every run and platform.
std::string Mutate(const std::string& seed, Rng& rng) {
  std::string doc = seed;
  switch (rng.Uniform(6)) {
    case 0:  // truncation at a random byte
      doc.resize(rng.Uniform(doc.size() + 1));
      break;
    case 1: {  // bit flips at up to 8 random positions
      const size_t flips = 1 + rng.Uniform(8);
      for (size_t i = 0; i < flips && !doc.empty(); ++i) {
        const size_t pos = rng.Uniform(doc.size());
        doc[pos] = static_cast<char>(doc[pos] ^ (1u << rng.Uniform(8)));
      }
      break;
    }
    case 2: {  // splice: move a random line to a random other position
      std::vector<std::string> lines;
      size_t start = 0;
      while (start <= doc.size()) {
        const size_t nl = doc.find('\n', start);
        if (nl == std::string::npos) {
          lines.push_back(doc.substr(start));
          break;
        }
        lines.push_back(doc.substr(start, nl - start));
        start = nl + 1;
      }
      if (lines.size() > 1) {
        const size_t from = rng.Uniform(lines.size());
        std::string moved = lines[from];
        lines.erase(lines.begin() + from);
        lines.insert(lines.begin() + rng.Uniform(lines.size() + 1),
                     std::move(moved));
      }
      doc.clear();
      for (size_t i = 0; i < lines.size(); ++i) {
        if (i > 0) doc += '\n';
        doc += lines[i];
      }
      break;
    }
    case 3: {  // huge token injected at a random position
      const std::string token(1 + rng.Uniform(100000),
                              "0123456789ee+-."[rng.Uniform(15)]);
      doc.insert(rng.Uniform(doc.size() + 1), token);
      break;
    }
    case 4: {  // duplicate a random chunk
      const size_t pos = rng.Uniform(doc.size() + 1);
      const size_t len = rng.Uniform(doc.size() - pos + 1);
      doc.insert(pos, doc.substr(pos, len));
      break;
    }
    default: {  // random garbage bytes (NULs, high bit, control chars)
      const size_t n = 1 + rng.Uniform(64);
      std::string garbage;
      for (size_t i = 0; i < n; ++i) {
        garbage.push_back(static_cast<char>(rng.Uniform(256)));
      }
      doc.insert(rng.Uniform(doc.size() + 1), garbage);
      break;
    }
  }
  return doc;
}

TEST(GraphIndexFuzzTest, IndexBuildSurvivesMutatedEdgeLists) {
  SyntheticDatasetConfig config;
  config.num_proteins = 120;
  config.seed = 20260807;
  const SyntheticDataset dataset = BuildSyntheticDataset(config);
  const std::string path = TempPath("seed_index_graph.txt");
  ASSERT_TRUE(WriteEdgeList(dataset.ppi, path).ok());
  const std::string seed_document = ReadWholeFile(path);

  Rng rng(0x1dec5 ^ 20260807u);
  const std::string fuzz_path = TempPath("fuzz_index_graph.txt");
  size_t parsed_ok = 0;
  for (int trial = 0; trial < kMutations; ++trial) {
    const std::string mutated = Mutate(seed_document, rng);
    WriteWholeFile(fuzz_path, mutated);
    // Corrupt documents must surface as a Status from the reader — the
    // index builder itself only ever sees structurally valid Graphs.
    auto result = ReadEdgeList(fuzz_path);
    if (!result.ok()) continue;
    ++parsed_ok;
    const Graph& g = result.value();
    const GraphIndex index(g);
    EXPECT_TRUE(index.Validate().ok()) << "trial " << trial;
    const GraphIndex sparse(g, 0);
    EXPECT_TRUE(sparse.Validate().ok()) << "trial " << trial;
    // Small graphs also get an enumeration smoke: the engine must not read
    // out of bounds on whatever adjacency the mutated document produced
    // (the real assertion is ASan staying quiet).
    if (g.num_vertices() <= 64) {
      size_t count = 0;
      EnumerateConnectedSubgraphsInRootRange(
          index, 3, 0, static_cast<VertexId>(g.num_vertices()),
          [&](const std::vector<VertexId>&) { return ++count < 10000; });
    }
  }
  // The battery is useless if every mutation fails to parse; the seeded mix
  // reliably leaves a healthy fraction of documents readable.
  EXPECT_GT(parsed_ok, 50u);

  // The unmutated document must parse and index cleanly.
  WriteWholeFile(fuzz_path, seed_document);
  auto result = ReadEdgeList(fuzz_path);
  ASSERT_TRUE(result.ok());
  const GraphIndex index(result.value());
  EXPECT_TRUE(index.Validate().ok());
  EXPECT_EQ(index.num_edges(), dataset.ppi.num_edges());
}

}  // namespace
}  // namespace lamo
