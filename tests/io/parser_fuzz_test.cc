// Deterministic mutation fuzzing of every text reader in src/io. Each
// reader gets a valid seed document and 500 seeded mutations — truncations,
// bit flips, line splices, huge tokens — and must answer every one with a
// Status (ok or not), never a crash, hang, or unbounded allocation. Run
// under ASan via scripts/reproduce.sh.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "io/edge_list.h"
#include "io/gaf.h"
#include "io/motif_io.h"
#include "io/obo.h"
#include "synth/dataset.h"
#include "util/random.h"

namespace lamo {
namespace {

constexpr int kMutationsPerReader = 500;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One seeded mutation of `seed`: the mutation kind and every position are
/// drawn from `rng`, so trial N is identical on every run and platform.
std::string Mutate(const std::string& seed, Rng& rng) {
  std::string doc = seed;
  switch (rng.Uniform(6)) {
    case 0:  // truncation at a random byte
      doc.resize(rng.Uniform(doc.size() + 1));
      break;
    case 1: {  // bit flips at up to 8 random positions
      const size_t flips = 1 + rng.Uniform(8);
      for (size_t i = 0; i < flips && !doc.empty(); ++i) {
        const size_t pos = rng.Uniform(doc.size());
        doc[pos] = static_cast<char>(doc[pos] ^ (1u << rng.Uniform(8)));
      }
      break;
    }
    case 2: {  // splice: move a random line to a random other position
      std::vector<std::string> lines;
      size_t start = 0;
      while (start <= doc.size()) {
        const size_t nl = doc.find('\n', start);
        if (nl == std::string::npos) {
          lines.push_back(doc.substr(start));
          break;
        }
        lines.push_back(doc.substr(start, nl - start));
        start = nl + 1;
      }
      if (lines.size() > 1) {
        const size_t from = rng.Uniform(lines.size());
        std::string moved = lines[from];
        lines.erase(lines.begin() + from);
        lines.insert(lines.begin() + rng.Uniform(lines.size() + 1),
                     std::move(moved));
      }
      doc.clear();
      for (size_t i = 0; i < lines.size(); ++i) {
        if (i > 0) doc += '\n';
        doc += lines[i];
      }
      break;
    }
    case 3: {  // huge token injected at a random position
      const std::string token(1 + rng.Uniform(100000),
                              "0123456789ee+-."[rng.Uniform(15)]);
      doc.insert(rng.Uniform(doc.size() + 1), token);
      break;
    }
    case 4: {  // duplicate a random chunk (repeated headers, repeated rows)
      const size_t pos = rng.Uniform(doc.size() + 1);
      const size_t len = rng.Uniform(doc.size() - pos + 1);
      doc.insert(pos, doc.substr(pos, len));
      break;
    }
    default: {  // random garbage bytes (NULs, high bit, control chars)
      const size_t n = 1 + rng.Uniform(64);
      std::string garbage;
      for (size_t i = 0; i < n; ++i) {
        garbage.push_back(static_cast<char>(rng.Uniform(256)));
      }
      doc.insert(rng.Uniform(doc.size() + 1), garbage);
      break;
    }
  }
  return doc;
}

/// Runs the full mutation battery for one reader. `parse` must swallow the
/// path and return whether the reader survived (it always does unless it
/// crashes the process — the EXPECT is documentation; the real assertion is
/// that the loop finishes under ASan).
void FuzzReader(const std::string& name, const std::string& seed_document,
                const std::function<void(const std::string&)>& parse) {
  Rng rng(std::hash<std::string>{}(name) ^ 0x5eed);
  const std::string path = TempPath("fuzz_" + name);
  for (int trial = 0; trial < kMutationsPerReader; ++trial) {
    const std::string mutated = Mutate(seed_document, rng);
    WriteWholeFile(path, mutated);
    parse(path);  // must return, whatever the Status
  }
  // The unmutated document must still parse, proving the seed exercised the
  // reader's happy path and not just its error returns.
  WriteWholeFile(path, seed_document);
  parse(path);
}

/// One small pipeline's worth of valid documents to mutate.
struct FuzzFixture {
  FuzzFixture() {
    SyntheticDatasetConfig config;
    config.num_proteins = 120;
    config.seed = 20260806;
    dataset = BuildSyntheticDataset(config);
  }
  SyntheticDataset dataset;
};

FuzzFixture& Fixture() {
  static FuzzFixture* fixture = new FuzzFixture();
  return *fixture;
}

TEST(ParserFuzzTest, EdgeListReaderNeverCrashes) {
  const std::string path = TempPath("seed_graph.txt");
  ASSERT_TRUE(WriteEdgeList(Fixture().dataset.ppi, path).ok());
  FuzzReader("edge_list", ReadWholeFile(path), [](const std::string& p) {
    auto result = ReadEdgeList(p);
    (void)result;
  });
}

TEST(ParserFuzzTest, OboReaderNeverCrashes) {
  const std::string path = TempPath("seed_onto.obo");
  ASSERT_TRUE(WriteObo(Fixture().dataset.ontology, path).ok());
  FuzzReader("obo", ReadWholeFile(path), [](const std::string& p) {
    auto result = ReadObo(p);
    (void)result;
  });
}

TEST(ParserFuzzTest, AnnotationReaderNeverCrashes) {
  const FuzzFixture& fixture = Fixture();
  const std::string path = TempPath("seed_annotations.tsv");
  ASSERT_TRUE(WriteAnnotations(fixture.dataset.annotations,
                               fixture.dataset.ontology, path)
                  .ok());
  FuzzReader("gaf", ReadWholeFile(path), [&fixture](const std::string& p) {
    auto result = ReadAnnotations(p, fixture.dataset.ontology);
    (void)result;
  });
}

TEST(ParserFuzzTest, MotifReaderNeverCrashes) {
  // A couple of handwritten motifs in the documented format keep this
  // independent of the miner.
  Motif triangle;
  triangle.pattern = SmallGraph(3);
  triangle.pattern.AddEdge(0, 1);
  triangle.pattern.AddEdge(1, 2);
  triangle.pattern.AddEdge(0, 2);
  triangle.occurrences.push_back({{0, 1, 2}});
  triangle.occurrences.push_back({{3, 4, 5}});
  triangle.frequency = 2;
  triangle.uniqueness = 0.9;
  Motif path3;
  path3.pattern = SmallGraph(3);
  path3.pattern.AddEdge(0, 1);
  path3.pattern.AddEdge(1, 2);
  path3.occurrences.push_back({{7, 8, 9}});
  path3.frequency = 1;
  path3.uniqueness = 0.5;

  const std::string path = TempPath("seed_motifs.txt");
  ASSERT_TRUE(WriteMotifs({triangle, path3}, path).ok());
  FuzzReader("motifs", ReadWholeFile(path), [](const std::string& p) {
    auto result = ReadMotifs(p);
    (void)result;
  });
}

}  // namespace
}  // namespace lamo
