// Property sweeps over randomized synthetic datasets: invariants that every
// LaMoFinder run must satisfy, parameterized over seeds so regressions in
// any pipeline stage surface across diverse inputs.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/lamofinder.h"
#include "motif/miner.h"
#include "synth/dataset.h"

namespace lamo {
namespace {

struct RunResult {
  SyntheticDataset dataset;
  std::vector<Motif> motifs;
  std::vector<LabeledMotif> labeled;
  LaMoFinderConfig config;
};

RunResult RunPipeline(uint64_t seed) {
  RunResult result;
  SyntheticDatasetConfig dataset_config;
  dataset_config.num_proteins = 350;
  dataset_config.go.num_terms = 60;
  dataset_config.num_templates = 2;
  dataset_config.copies_per_template = 20;
  dataset_config.informative_threshold = 8;
  dataset_config.seed = seed;
  result.dataset = BuildSyntheticDataset(dataset_config);

  MinerConfig miner_config;
  miner_config.min_size = 3;
  miner_config.max_size = 4;
  miner_config.min_frequency = 15;
  result.motifs =
      FrequentSubgraphMiner(result.dataset.ppi, miner_config).Mine();
  for (Motif& m : result.motifs) m.uniqueness = 1.0;

  result.config.sigma = 6;
  result.config.max_occurrences = 120;
  LaMoFinder finder(result.dataset.ontology, result.dataset.weights,
                    result.dataset.informative, result.dataset.annotations);
  result.labeled = finder.LabelAll(result.motifs, result.config);
  return result;
}

class LaMoFinderProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LaMoFinderProperties, EmittedLabelsAreCandidates) {
  const RunResult run = RunPipeline(GetParam());
  for (const LabeledMotif& lm : run.labeled) {
    for (const LabelSet& labels : lm.scheme) {
      for (TermId t : labels) {
        EXPECT_TRUE(run.dataset.informative.IsLabelCandidate(t))
            << "non-candidate label " << run.dataset.ontology.TermName(t);
      }
    }
  }
}

TEST_P(LaMoFinderProperties, FrequenciesMeetSigma) {
  const RunResult run = RunPipeline(GetParam());
  for (const LabeledMotif& lm : run.labeled) {
    EXPECT_GE(lm.frequency, run.config.sigma);
    EXPECT_EQ(lm.frequency, lm.occurrences.size());
  }
}

TEST_P(LaMoFinderProperties, AtLeastHalfVerticesLabeled) {
  const RunResult run = RunPipeline(GetParam());
  for (const LabeledMotif& lm : run.labeled) {
    size_t labeled_vertices = 0;
    for (const LabelSet& labels : lm.scheme) {
      if (!labels.empty()) ++labeled_vertices;
    }
    EXPECT_GE(2 * labeled_vertices, lm.size());
  }
}

TEST_P(LaMoFinderProperties, SchemesConformToOwnOccurrences) {
  const RunResult run = RunPipeline(GetParam());
  for (const LabeledMotif& lm : run.labeled) {
    for (const MotifOccurrence& occ : lm.occurrences) {
      for (size_t pos = 0; pos < lm.scheme.size(); ++pos) {
        const auto terms =
            run.dataset.annotations.TermsOf(occ.proteins[pos]);
        EXPECT_TRUE(LabelsConform(run.dataset.ontology, lm.scheme[pos],
                                  LabelSet(terms.begin(), terms.end())));
      }
    }
  }
}

TEST_P(LaMoFinderProperties, NoSubsumedDuplicates) {
  const RunResult run = RunPipeline(GetParam());
  for (size_t i = 0; i < run.labeled.size(); ++i) {
    for (size_t j = 0; j < run.labeled.size(); ++j) {
      if (i == j) continue;
      const LabeledMotif& a = run.labeled[i];
      const LabeledMotif& b = run.labeled[j];
      if (a.code != b.code || a.frequency != b.frequency) continue;
      // b's scheme must not be a strict per-vertex subset of a's.
      bool subset = true;
      bool equal = true;
      for (size_t pos = 0; pos < a.scheme.size(); ++pos) {
        if (!std::includes(a.scheme[pos].begin(), a.scheme[pos].end(),
                           b.scheme[pos].begin(), b.scheme[pos].end())) {
          subset = false;
        }
        if (a.scheme[pos] != b.scheme[pos]) equal = false;
      }
      EXPECT_FALSE(subset && !equal)
          << "scheme " << j << " subsumed by " << i;
    }
  }
}

TEST_P(LaMoFinderProperties, OccurrencesComeFromMotifOccurrenceSets) {
  const RunResult run = RunPipeline(GetParam());
  for (const LabeledMotif& lm : run.labeled) {
    // Locate the source motif by code.
    const Motif* source = nullptr;
    for (const Motif& m : run.motifs) {
      if (m.code == lm.code) source = &m;
    }
    ASSERT_NE(source, nullptr);
    std::set<std::vector<VertexId>> motif_sets;
    for (const MotifOccurrence& occ : source->occurrences) {
      std::vector<VertexId> sorted = occ.proteins;
      std::sort(sorted.begin(), sorted.end());
      motif_sets.insert(std::move(sorted));
    }
    for (const MotifOccurrence& occ : lm.occurrences) {
      std::vector<VertexId> sorted = occ.proteins;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(motif_sets.count(sorted) != 0);
    }
  }
}

TEST_P(LaMoFinderProperties, DeterministicAcrossRuns) {
  const RunResult a = RunPipeline(GetParam());
  const RunResult b = RunPipeline(GetParam());
  ASSERT_EQ(a.labeled.size(), b.labeled.size());
  for (size_t i = 0; i < a.labeled.size(); ++i) {
    EXPECT_EQ(a.labeled[i].scheme, b.labeled[i].scheme);
    EXPECT_EQ(a.labeled[i].frequency, b.labeled[i].frequency);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaMoFinderProperties,
                         ::testing::Values(11, 222, 3333));

}  // namespace
}  // namespace lamo
