// Pins the Motif::symmetric_sets_override path: when a motif carries
// explicit symmetric sets (as directed motifs do), LaMoFinder's pairing and
// conformance honor them instead of the undirected pattern's twin classes.
#include <gtest/gtest.h>

#include "core/lamofinder.h"
#include "core/paper_example.h"
#include "graph/canonical.h"

namespace lamo {
namespace {

class SymmetricOverrideTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    example_ = new PaperExample(MakePaperExample());
    finder_ = new LaMoFinder(example_->ontology, example_->weights,
                             example_->informative,
                             example_->protein_annotations);
  }
  static void TearDownTestSuite() {
    delete finder_;
    delete example_;
  }
  static Motif PaperMotif() {
    Motif motif;
    motif.pattern = example_->motif;  // the 4-cycle
    motif.code = CanonicalCode(example_->motif);
    for (const auto& occ : example_->occurrences) {
      motif.occurrences.push_back(MotifOccurrence{occ});
    }
    motif.frequency = motif.occurrences.size();
    motif.uniqueness = 1.0;
    return motif;
  }
  static PaperExample* example_;
  static LaMoFinder* finder_;
};

PaperExample* SymmetricOverrideTest::example_ = nullptr;
LaMoFinder* SymmetricOverrideTest::finder_ = nullptr;

TEST_F(SymmetricOverrideTest, AllSingletonOverrideForbidsRealignment) {
  // A scheme that fits occurrence o1 only after swapping positions 1/3:
  // with the 4-cycle's natural twin classes it conforms; with an
  // all-singleton override (as an asymmetric directed version would have)
  // the swap is no longer allowed.
  Motif natural = PaperMotif();
  LabelProfile scheme(4);
  scheme[1] = {example_->term("G09")};  // P4's annotation, at position 3

  const size_t with_symmetry =
      finder_->ConformingOccurrences(natural, scheme).size();

  Motif rigid = PaperMotif();
  rigid.symmetric_sets_override = {{0}, {1}, {2}, {3}};
  const size_t without_symmetry =
      finder_->ConformingOccurrences(rigid, scheme).size();

  EXPECT_GT(with_symmetry, without_symmetry);
}

TEST_F(SymmetricOverrideTest, FullOverrideMatchesNaturalTwins) {
  // Supplying exactly the pattern's twin classes must reproduce the
  // default behavior.
  Motif natural = PaperMotif();
  Motif explicit_sets = PaperMotif();
  explicit_sets.symmetric_sets_override = {{0, 2}, {1, 3}};

  LaMoFinderConfig config;
  config.sigma = 2;
  config.min_similarity = 0.3;
  const auto a = finder_->LabelMotif(natural, config);
  const auto b = finder_->LabelMotif(explicit_sets, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scheme, b[i].scheme);
    EXPECT_EQ(a[i].frequency, b[i].frequency);
  }
}

TEST_F(SymmetricOverrideTest, LabelingRunsWithSingletonOverride) {
  Motif rigid = PaperMotif();
  rigid.symmetric_sets_override = {{0}, {1}, {2}, {3}};
  LaMoFinderConfig config;
  config.sigma = 2;
  config.min_similarity = 0.0;
  const auto labeled = finder_->LabelMotif(rigid, config);
  for (const auto& lm : labeled) {
    EXPECT_GE(lm.frequency, 2u);
  }
}

}  // namespace
}  // namespace lamo
