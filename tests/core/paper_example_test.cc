#include "core/paper_example.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/automorphism.h"
#include "graph/isomorphism.h"
#include "util/string_util.h"

namespace lamo {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { example_ = new PaperExample(MakePaperExample()); }
  static void TearDownTestSuite() {
    delete example_;
    example_ = nullptr;
  }
  static PaperExample* example_;
};

PaperExample* PaperExampleTest::example_ = nullptr;

TEST_F(PaperExampleTest, Table1WeightsExact) {
  // The two-decimal weights of Table 1, in order G01..G11.
  const double expected[] = {1.00, 0.71, 0.81, 0.42, 0.48, 0.43,
                             0.17, 0.23, 0.17, 0.15, 0.03};
  for (int i = 1; i <= 11; ++i) {
    const TermId t = example_->term(
        "G" + std::string(i < 10 ? "0" : "") + std::to_string(i));
    const double w = example_->weights.Weight(t);
    EXPECT_NEAR(w, expected[i - 1], 0.005)
        << "weight of G" << i << " = " << w;
  }
}

TEST_F(PaperExampleTest, G04WeightStory) {
  // "the weight of G04 is 0.42 because 245 out of 585 proteins are
  // annotated with G04 or its descendants".
  EXPECT_NEAR(example_->weights.Weight(example_->term("G04")), 245.0 / 585.0,
              1e-12);
}

TEST_F(PaperExampleTest, InformativeClassesMatchPaper) {
  // "G04, G05, G06, G09, and G10 are informative FC."
  const char* informative[] = {"G04", "G05", "G06", "G09", "G10"};
  const char* not_informative[] = {"G01", "G02", "G03", "G07", "G08", "G11"};
  for (const char* name : informative) {
    EXPECT_TRUE(example_->informative.IsInformative(example_->term(name)))
        << name;
  }
  for (const char* name : not_informative) {
    EXPECT_FALSE(example_->informative.IsInformative(example_->term(name)))
        << name;
  }
}

TEST_F(PaperExampleTest, BorderInformativeExcludesG09G10) {
  // G09 and G10 have the informative ancestor G05, so the border is
  // {G04, G05, G06}.
  EXPECT_TRUE(example_->informative.IsBorderInformative(example_->term("G04")));
  EXPECT_TRUE(example_->informative.IsBorderInformative(example_->term("G05")));
  EXPECT_TRUE(example_->informative.IsBorderInformative(example_->term("G06")));
  EXPECT_FALSE(
      example_->informative.IsBorderInformative(example_->term("G09")));
  EXPECT_FALSE(
      example_->informative.IsBorderInformative(example_->term("G10")));
}

TEST_F(PaperExampleTest, HierarchyFactsFromSection2) {
  const Ontology& onto = example_->ontology;
  // "G04 is a child of G02 following the is-a relationship."
  EXPECT_TRUE(onto.IsAncestorOrEqual(example_->term("G02"),
                                     example_->term("G04")));
  // "G06 is a child of G03 following the part-of relationship."
  const TermId g06 = example_->term("G06");
  const auto parents = onto.Parents(g06);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], example_->term("G03"));
  EXPECT_EQ(onto.ParentRelations(g06)[0], RelationType::kPartOf);
  // "G05 has G02 and G03 as its parents."
  const auto g05_parents = onto.Parents(example_->term("G05"));
  ASSERT_EQ(g05_parents.size(), 2u);
  EXPECT_EQ(g05_parents[0], example_->term("G02"));
  EXPECT_EQ(g05_parents[1], example_->term("G03"));
  // "G10 is in fact a descendant of G08" (the o1 labeling discussion).
  EXPECT_TRUE(onto.IsAncestorOrEqual(example_->term("G08"),
                                     example_->term("G10")));
  // "p3's annotation of G08 is a descendant of G04".
  EXPECT_TRUE(onto.IsAncestorOrEqual(example_->term("G04"),
                                     example_->term("G08")));
  // "p4's annotation of G09 is a descendant of G05".
  EXPECT_TRUE(onto.IsAncestorOrEqual(example_->term("G05"),
                                     example_->term("G09")));
}

TEST_F(PaperExampleTest, MotifHasPaperSymmetricSets) {
  const auto sets = SymmetricVertexSets(example_->motif);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<uint32_t>{0, 2}));  // {v1, v3}
  EXPECT_EQ(sets[1], (std::vector<uint32_t>{1, 3}));  // {v2, v4}
}

TEST_F(PaperExampleTest, PpiContainsExactlyTheFourOccurrences) {
  const auto occurrences = FindOccurrences(example_->motif, example_->ppi);
  EXPECT_EQ(occurrences.size(), 4u);
}

TEST_F(PaperExampleTest, ListedOccurrencesAreCycles) {
  for (const auto& occ : example_->occurrences) {
    ASSERT_EQ(occ.size(), 4u);
    EXPECT_TRUE(example_->ppi.HasEdge(occ[0], occ[1]));
    EXPECT_TRUE(example_->ppi.HasEdge(occ[1], occ[2]));
    EXPECT_TRUE(example_->ppi.HasEdge(occ[2], occ[3]));
    EXPECT_TRUE(example_->ppi.HasEdge(occ[3], occ[0]));
    EXPECT_FALSE(example_->ppi.HasEdge(occ[0], occ[2]));
    EXPECT_FALSE(example_->ppi.HasEdge(occ[1], occ[3]));
  }
}

TEST_F(PaperExampleTest, Table2Annotations) {
  // Spot-check Table 2 rows.
  const auto p1 = example_->protein_annotations.TermsOf(example_->protein(1));
  ASSERT_EQ(p1.size(), 3u);
  EXPECT_EQ(p1[0], example_->term("G04"));
  EXPECT_EQ(p1[1], example_->term("G09"));
  EXPECT_EQ(p1[2], example_->term("G10"));

  const auto p12 =
      example_->protein_annotations.TermsOf(example_->protein(12));
  ASSERT_EQ(p12.size(), 1u);
  EXPECT_EQ(p12[0], example_->term("G09"));

  EXPECT_FALSE(example_->protein_annotations.IsAnnotated(
      example_->protein(17)));
  EXPECT_FALSE(example_->protein_annotations.IsAnnotated(
      example_->protein(22)));
}

}  // namespace
}  // namespace lamo
