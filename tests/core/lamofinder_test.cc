#include "core/lamofinder.h"

#include <gtest/gtest.h>

#include "core/kmedoids_baseline.h"
#include "core/paper_example.h"
#include "graph/canonical.h"

namespace lamo {
namespace {

class LaMoFinderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    example_ = new PaperExample(MakePaperExample());
    finder_ = new LaMoFinder(example_->ontology, example_->weights,
                             example_->informative,
                             example_->protein_annotations);
  }
  static void TearDownTestSuite() {
    delete finder_;
    delete example_;
  }

  // The fixture's motif with its four occurrences as a Motif value.
  static Motif PaperMotif() {
    Motif motif;
    motif.pattern = example_->motif;
    motif.code = CanonicalCode(example_->motif);
    for (const auto& occ : example_->occurrences) {
      motif.occurrences.push_back(MotifOccurrence{occ});
    }
    motif.frequency = motif.occurrences.size();
    motif.uniqueness = 1.0;
    return motif;
  }

  static PaperExample* example_;
  static LaMoFinder* finder_;
};

PaperExample* LaMoFinderTest::example_ = nullptr;
LaMoFinder* LaMoFinderTest::finder_ = nullptr;

TEST_F(LaMoFinderTest, LabelsPaperMotif) {
  LaMoFinderConfig config;
  config.sigma = 2;  // four occurrences total in the toy example
  config.min_similarity = 0.3;
  const auto labeled = finder_->LabelMotif(PaperMotif(), config);
  ASSERT_FALSE(labeled.empty());
  for (const auto& lm : labeled) {
    EXPECT_GE(lm.frequency, config.sigma);
    EXPECT_EQ(lm.scheme.size(), 4u);
    EXPECT_EQ(lm.occurrences.size(), lm.frequency);
  }
}

TEST_F(LaMoFinderTest, SchemesUseOnlyLabelCandidatesOrFallback) {
  LaMoFinderConfig config;
  config.sigma = 2;
  config.min_similarity = 0.3;
  for (const auto& lm : finder_->LabelMotif(PaperMotif(), config)) {
    for (const LabelSet& labels : lm.scheme) {
      for (TermId t : labels) {
        EXPECT_LT(t, example_->ontology.num_terms());
      }
    }
  }
}

TEST_F(LaMoFinderTest, EmittedSchemesConformToTheirOccurrences) {
  LaMoFinderConfig config;
  config.sigma = 2;
  config.min_similarity = 0.3;
  for (const auto& lm : finder_->LabelMotif(PaperMotif(), config)) {
    for (const MotifOccurrence& occ : lm.occurrences) {
      for (size_t pos = 0; pos < lm.scheme.size(); ++pos) {
        const auto terms =
            example_->protein_annotations.TermsOf(occ.proteins[pos]);
        EXPECT_TRUE(LabelsConform(example_->ontology, lm.scheme[pos],
                                  LabelSet(terms.begin(), terms.end())))
            << "scheme " << lm.SchemeToString(example_->ontology)
            << " position " << pos;
      }
    }
  }
}

TEST_F(LaMoFinderTest, SigmaFiltersSchemes) {
  LaMoFinderConfig config;
  config.sigma = 5;  // more than the 4 available occurrences
  config.min_similarity = 0.0;
  EXPECT_TRUE(finder_->LabelMotif(PaperMotif(), config).empty());
}

TEST_F(LaMoFinderTest, ConformingOccurrencesHonorsSymmetry) {
  // A scheme matching o1 only under the flipped {v2,v4} pairing must still
  // count o1 as conforming.
  const Motif motif = PaperMotif();
  LabelProfile scheme(4);
  // o1 = (P1, P2, P3, P4): P4 has {G07, G09}, P2 has {G03, G10}. A scheme
  // putting G09 at position 1 conforms only after swapping positions 1 / 3.
  scheme[1] = {example_->term("G09")};
  const auto conforming = finder_->ConformingOccurrences(motif, scheme);
  bool found_o1 = false;
  for (const auto& occ : conforming) {
    if (occ.proteins[1] == example_->protein(4)) found_o1 = true;
  }
  EXPECT_TRUE(found_o1);
}

TEST_F(LaMoFinderTest, ConformingOccurrenceCountAtLeastClusterSize) {
  LaMoFinderConfig config;
  config.sigma = 2;
  config.min_similarity = 0.3;
  const Motif motif = PaperMotif();
  for (const auto& lm : finder_->LabelMotif(motif, config)) {
    EXPECT_EQ(lm.frequency,
              finder_->ConformingOccurrences(motif, lm.scheme).size());
  }
}

TEST_F(LaMoFinderTest, EmptyMotifYieldsNothing) {
  Motif empty;
  empty.pattern = SmallGraph(0);
  LaMoFinderConfig config;
  EXPECT_TRUE(finder_->LabelMotif(empty, config).empty());
}

TEST_F(LaMoFinderTest, LabelAllComputesStrengths) {
  LaMoFinderConfig config;
  config.sigma = 2;
  config.min_similarity = 0.3;
  const auto labeled = finder_->LabelAll({PaperMotif()}, config);
  ASSERT_FALSE(labeled.empty());
  double max_strength = 0.0;
  for (const auto& lm : labeled) {
    EXPECT_GE(lm.strength, 0.0);
    EXPECT_LE(lm.strength, 1.0);
    max_strength = std::max(max_strength, lm.strength);
  }
  EXPECT_DOUBLE_EQ(max_strength, 1.0)
      << "the best motif of a size class has LMS 1";
}

TEST_F(LaMoFinderTest, MaxOccurrencesCapStillLabels) {
  LaMoFinderConfig config;
  config.sigma = 2;
  config.min_similarity = 0.3;
  config.max_occurrences = 3;  // force the strided sample path
  const auto labeled = finder_->LabelMotif(PaperMotif(), config);
  for (const auto& lm : labeled) {
    EXPECT_GE(lm.frequency, config.sigma);
  }
}

TEST_F(LaMoFinderTest, KMedoidsBaselineProducesDisjointSchemes) {
  KMedoidsConfig config;
  config.sigma = 2;
  config.k = 2;
  const auto labeled = LabelMotifKMedoids(
      example_->ontology, example_->weights, example_->informative,
      example_->protein_annotations, PaperMotif(), config);
  // Disjoint partition of 4 occurrences: total membership <= 4.
  size_t total = 0;
  for (const auto& lm : labeled) total += lm.occurrences.size();
  EXPECT_LE(total, 4u);
}

TEST_F(LaMoFinderTest, ComputeMotifStrengthsPerSizeClass) {
  std::vector<LabeledMotif> motifs(3);
  motifs[0].pattern = SmallGraph(3);
  motifs[0].frequency = 10;
  motifs[0].uniqueness = 1.0;
  motifs[1].pattern = SmallGraph(3);
  motifs[1].frequency = 5;
  motifs[1].uniqueness = 1.0;
  motifs[2].pattern = SmallGraph(4);
  motifs[2].frequency = 2;
  motifs[2].uniqueness = 0.5;
  ComputeMotifStrengths(&motifs);
  EXPECT_DOUBLE_EQ(motifs[0].strength, 1.0);
  EXPECT_DOUBLE_EQ(motifs[1].strength, 0.5);
  EXPECT_DOUBLE_EQ(motifs[2].strength, 1.0);  // alone in its size class
}

}  // namespace
}  // namespace lamo
