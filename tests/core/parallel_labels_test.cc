#include "core/parallel_labels.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

LabeledMotif MakeLabeled(const std::vector<uint8_t>& code,
                         std::vector<std::vector<VertexId>> occurrence_sets,
                         TermId label) {
  LabeledMotif lm;
  lm.pattern = SmallGraph(3);
  lm.pattern.AddEdge(0, 1);
  lm.pattern.AddEdge(1, 2);
  lm.code = code;
  lm.scheme.assign(3, {label});
  for (auto& set : occurrence_sets) {
    lm.occurrences.push_back(MotifOccurrence{std::move(set)});
  }
  lm.frequency = lm.occurrences.size();
  return lm;
}

TEST(ParallelLabelsTest, FusesOverlappingBranches) {
  const std::vector<uint8_t> code{1, 2, 3};
  std::array<std::vector<LabeledMotif>, 3> per_branch;
  per_branch[0].push_back(
      MakeLabeled(code, {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}, 10));
  per_branch[2].push_back(
      MakeLabeled(code, {{0, 1, 2}, {3, 4, 5}, {9, 10, 11}}, 20));

  const auto parallel = CombineBranchLabels(per_branch, 2);
  ASSERT_EQ(parallel.size(), 1u);
  EXPECT_EQ(parallel[0].num_branches(), 2u);
  EXPECT_TRUE(parallel[0].schemes[0].has_value());
  EXPECT_FALSE(parallel[0].schemes[1].has_value());
  EXPECT_TRUE(parallel[0].schemes[2].has_value());
  EXPECT_EQ(parallel[0].frequency, 2u);  // two shared occurrence sets
}

TEST(ParallelLabelsTest, RespectsMinimumOverlap) {
  const std::vector<uint8_t> code{1};
  std::array<std::vector<LabeledMotif>, 3> per_branch;
  per_branch[0].push_back(MakeLabeled(code, {{0, 1, 2}, {3, 4, 5}}, 10));
  per_branch[1].push_back(MakeLabeled(code, {{0, 1, 2}, {9, 10, 11}}, 20));
  EXPECT_TRUE(CombineBranchLabels(per_branch, 2).empty());
  EXPECT_EQ(CombineBranchLabels(per_branch, 1).size(), 1u);
}

TEST(ParallelLabelsTest, DifferentPatternsNeverFuse) {
  std::array<std::vector<LabeledMotif>, 3> per_branch;
  per_branch[0].push_back(MakeLabeled({1}, {{0, 1, 2}}, 10));
  per_branch[1].push_back(MakeLabeled({2}, {{0, 1, 2}}, 20));
  EXPECT_TRUE(CombineBranchLabels(per_branch, 1).empty());
}

TEST(ParallelLabelsTest, SymmetricAlignmentOfOccurrenceSets) {
  // Occurrences listed in different vertex orders still overlap (the
  // comparison is by sorted vertex set).
  const std::vector<uint8_t> code{1};
  std::array<std::vector<LabeledMotif>, 3> per_branch;
  per_branch[0].push_back(MakeLabeled(code, {{2, 1, 0}}, 10));
  per_branch[1].push_back(MakeLabeled(code, {{0, 2, 1}}, 20));
  const auto parallel = CombineBranchLabels(per_branch, 1);
  ASSERT_EQ(parallel.size(), 1u);
  EXPECT_EQ(parallel[0].frequency, 1u);
  // Output keeps the seed branch's alignment.
  EXPECT_EQ(parallel[0].occurrences[0].proteins,
            (std::vector<VertexId>{2, 1, 0}));
}

TEST(ParallelLabelsTest, ThreeBranchFusion) {
  const std::vector<uint8_t> code{7};
  std::array<std::vector<LabeledMotif>, 3> per_branch;
  per_branch[0].push_back(MakeLabeled(code, {{0, 1, 2}, {3, 4, 5}}, 1));
  per_branch[1].push_back(MakeLabeled(code, {{0, 1, 2}, {3, 4, 5}}, 2));
  per_branch[2].push_back(MakeLabeled(code, {{0, 1, 2}}, 3));
  const auto parallel = CombineBranchLabels(per_branch, 1);
  ASSERT_FALSE(parallel.empty());
  EXPECT_EQ(parallel[0].num_branches(), 3u);
  EXPECT_EQ(parallel[0].frequency, 1u);  // the triple intersection
}

TEST(ParallelLabelsTest, OrderedByFrequency) {
  const std::vector<uint8_t> code{1};
  std::array<std::vector<LabeledMotif>, 3> per_branch;
  per_branch[0].push_back(MakeLabeled(code, {{0, 1, 2}}, 10));
  per_branch[0].push_back(
      MakeLabeled(code, {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}, 11));
  per_branch[1].push_back(
      MakeLabeled(code, {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}, 20));
  const auto parallel = CombineBranchLabels(per_branch, 1);
  ASSERT_GE(parallel.size(), 2u);
  EXPECT_GE(parallel[0].frequency, parallel[1].frequency);
}

}  // namespace
}  // namespace lamo
