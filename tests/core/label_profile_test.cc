#include "core/label_profile.h"

#include <gtest/gtest.h>

#include "core/paper_example.h"

namespace lamo {
namespace {

class LabelProfileTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    example_ = new PaperExample(MakePaperExample());
    st_ = new TermSimilarity(example_->ontology, example_->weights);
  }
  static void TearDownTestSuite() {
    delete st_;
    delete example_;
  }
  static LabelSet Terms(std::initializer_list<const char*> names) {
    LabelSet set;
    for (const char* name : names) InsertLabel(&set, example_->term(name));
    return set;
  }
  static PaperExample* example_;
  static TermSimilarity* st_;
};

PaperExample* LabelProfileTest::example_ = nullptr;
TermSimilarity* LabelProfileTest::st_ = nullptr;

TEST_F(LabelProfileTest, InsertLabelSortedUnique) {
  LabelSet set;
  InsertLabel(&set, 5);
  InsertLabel(&set, 2);
  InsertLabel(&set, 5);
  InsertLabel(&set, 9);
  EXPECT_EQ(set, (LabelSet{2, 5, 9}));
}

TEST_F(LabelProfileTest, VertexSimilaritySelf) {
  const LabelSet a = Terms({"G04", "G09"});
  EXPECT_DOUBLE_EQ(VertexSimilarity(*st_, a, a), 1.0);
}

TEST_F(LabelProfileTest, VertexSimilarityUnknownConventions) {
  const LabelSet a = Terms({"G04"});
  const LabelSet empty;
  EXPECT_DOUBLE_EQ(VertexSimilarity(*st_, empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(VertexSimilarity(*st_, a, empty), 0.5);
  EXPECT_DOUBLE_EQ(VertexSimilarity(*st_, empty, a), 0.5);
}

TEST_F(LabelProfileTest, OneGoodMatchDominates) {
  // Sharing G09 exactly should pull SV to 1 regardless of the other labels
  // ("two vertices are considered similar if they share at least one
  // biological feature").
  const LabelSet a = Terms({"G04", "G09", "G10"});
  const LabelSet b = Terms({"G09"});
  EXPECT_DOUBLE_EQ(VertexSimilarity(*st_, a, b), 1.0);
}

TEST_F(LabelProfileTest, DissimilarLabelsScoreLow) {
  // G07 vs G06 share history only through low-information ancestors.
  const double sv = VertexSimilarity(*st_, Terms({"G07"}), Terms({"G06"}));
  EXPECT_LT(sv, 0.6);
  EXPECT_GE(sv, 0.0);
}

TEST_F(LabelProfileTest, SimilarityMonotoneInExtraLabels) {
  // Adding labels can only increase SV (the product shrinks).
  const LabelSet base = Terms({"G07"});
  const LabelSet more = Terms({"G07", "G09"});
  const LabelSet other = Terms({"G06"});
  EXPECT_GE(VertexSimilarity(*st_, more, other),
            VertexSimilarity(*st_, base, other));
}

TEST_F(LabelProfileTest, LeastGeneralLabelsTable4Row1) {
  // o1 vertex {G04, G09, G10} vs o2 vertex {G09}: the pairwise lowest
  // common parents under our (closure-consistent) DAG.
  const LabelSet merged = LeastGeneralLabels(
      *st_, Terms({"G04", "G09", "G10"}), Terms({"G09"}), nullptr);
  // (G04,G09)->G02; (G09,G09)->G09; (G10,G09)->G05.
  EXPECT_EQ(merged, Terms({"G02", "G05", "G09"}));
}

TEST_F(LabelProfileTest, LeastGeneralLabelsCandidateFilter) {
  std::vector<bool> filter(example_->ontology.num_terms());
  for (TermId t = 0; t < example_->ontology.num_terms(); ++t) {
    filter[t] = example_->informative.IsLabelCandidate(t);
  }
  const LabelSet merged = LeastGeneralLabels(
      *st_, Terms({"G04", "G09", "G10"}), Terms({"G09"}), &filter);
  // G02 is not a label candidate and is dropped, as in Figure 4's
  // v1 = (G09, G05).
  EXPECT_EQ(merged, Terms({"G05", "G09"}));
}

TEST_F(LabelProfileTest, LeastGeneralLabelsUnknownPassThrough) {
  const LabelSet a = Terms({"G04"});
  EXPECT_EQ(LeastGeneralLabels(*st_, a, {}, nullptr), a);
  EXPECT_EQ(LeastGeneralLabels(*st_, {}, a, nullptr), a);
  EXPECT_TRUE(LeastGeneralLabels(*st_, {}, {}, nullptr).empty());
}

TEST_F(LabelProfileTest, FilterFallsBackWhenEmpty) {
  // If no common parent is a candidate, the unfiltered set is returned.
  std::vector<bool> nothing(example_->ontology.num_terms(), false);
  const LabelSet merged =
      LeastGeneralLabels(*st_, Terms({"G04"}), Terms({"G06"}), &nothing);
  EXPECT_FALSE(merged.empty());
}

TEST_F(LabelProfileTest, ConformanceFromSection2) {
  // "assigning G08 to v2 is appropriate since it is more general than the
  // annotation of p2 (G10)".
  EXPECT_TRUE(LabelsConform(example_->ontology, Terms({"G08"}),
                            Terms({"G03", "G10"})));
  // G04 conforms to p1 = {G04, G09, G10}.
  EXPECT_TRUE(LabelsConform(example_->ontology, Terms({"G04"}),
                            Terms({"G04", "G09", "G10"})));
  // G07 generalizes only {G07, G10}, so it does not conform to {G04, G09}.
  EXPECT_FALSE(LabelsConform(example_->ontology, Terms({"G07"}),
                             Terms({"G04", "G09"})));
  // Multi-label scheme: every label must generalize something.
  EXPECT_TRUE(LabelsConform(example_->ontology, Terms({"G05", "G09"}),
                            Terms({"G04", "G09", "G10"})));
  EXPECT_FALSE(LabelsConform(example_->ontology, Terms({"G05", "G06"}),
                             Terms({"G04", "G10"})));
}

TEST_F(LabelProfileTest, ConformanceUnknownConventions) {
  EXPECT_TRUE(LabelsConform(example_->ontology, {}, Terms({"G04"})));
  EXPECT_TRUE(LabelsConform(example_->ontology, Terms({"G04"}), {}));
}

TEST_F(LabelProfileTest, ToStringRendersNames) {
  EXPECT_EQ(LabelSetToString(example_->ontology, Terms({"G04", "G09"})),
            "{G04, G09}");
  EXPECT_EQ(LabelSetToString(example_->ontology, {}), "{unknown}");
}

}  // namespace
}  // namespace lamo
