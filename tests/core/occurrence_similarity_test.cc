#include "core/occurrence_similarity.h"

#include <gtest/gtest.h>

#include "core/paper_example.h"

namespace lamo {
namespace {

class OccurrenceSimilarityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    example_ = new PaperExample(MakePaperExample());
    st_ = new TermSimilarity(example_->ontology, example_->weights);
  }
  static void TearDownTestSuite() {
    delete st_;
    delete example_;
  }

  // Annotation profile of one of the fixture's occurrences.
  static LabelProfile Profile(size_t occurrence_index) {
    const auto& occ = example_->occurrences[occurrence_index];
    LabelProfile profile(occ.size());
    for (size_t pos = 0; pos < occ.size(); ++pos) {
      const auto terms =
          example_->protein_annotations.TermsOf(occ[pos]);
      profile[pos].assign(terms.begin(), terms.end());
    }
    return profile;
  }

  static PaperExample* example_;
  static TermSimilarity* st_;
};

PaperExample* OccurrenceSimilarityTest::example_ = nullptr;
TermSimilarity* OccurrenceSimilarityTest::st_ = nullptr;

TEST_F(OccurrenceSimilarityTest, SelfSimilarityIsOne) {
  OccurrenceSimilarity so(*st_, example_->motif);
  const LabelProfile o1 = Profile(0);
  EXPECT_DOUBLE_EQ(so.Score(o1, o1), 1.0);
}

TEST_F(OccurrenceSimilarityTest, SymmetricInArguments) {
  OccurrenceSimilarity so(*st_, example_->motif);
  const LabelProfile o1 = Profile(0);
  const LabelProfile o2 = Profile(1);
  EXPECT_NEAR(so.Score(o1, o2), so.Score(o2, o1), 1e-12);
}

TEST_F(OccurrenceSimilarityTest, O1VsO2HighSimilarityTable3) {
  // Table 3 reports SO(o1, o2) = 0.87 under the paper's (inconsistent)
  // example DAG; under the closure-consistent reconstruction the value
  // shifts but must stay high — o1 and o2 are the pair the paper groups.
  OccurrenceSimilarity so(*st_, example_->motif);
  const double score = so.Score(Profile(0), Profile(1));
  EXPECT_GT(score, 0.75);
  EXPECT_LE(score, 1.0);
}

TEST_F(OccurrenceSimilarityTest, PairingStaysWithinOrbits) {
  OccurrenceSimilarity so(*st_, example_->motif);
  std::vector<uint32_t> pairing;
  so.Score(Profile(0), Profile(1), &pairing);
  ASSERT_EQ(pairing.size(), 4u);
  // Orbits are {0,2} and {1,3}: position 0 may pair to 0 or 2 only, etc.
  EXPECT_TRUE(pairing[0] == 0 || pairing[0] == 2);
  EXPECT_TRUE(pairing[2] == 0 || pairing[2] == 2);
  EXPECT_NE(pairing[0], pairing[2]);
  EXPECT_TRUE(pairing[1] == 1 || pairing[1] == 3);
  EXPECT_TRUE(pairing[3] == 1 || pairing[3] == 3);
  EXPECT_NE(pairing[1], pairing[3]);
}

TEST_F(OccurrenceSimilarityTest, PairingBeatsIdentityWhenShifted) {
  // Rotate o1's profile by two positions (a motif automorphism): similarity
  // to the unrotated profile must still be 1 via the symmetric pairing.
  OccurrenceSimilarity so(*st_, example_->motif);
  const LabelProfile o1 = Profile(0);
  LabelProfile rotated(4);
  for (size_t pos = 0; pos < 4; ++pos) rotated[pos] = o1[(pos + 2) % 4];
  EXPECT_DOUBLE_EQ(so.Score(o1, rotated), 1.0);
}

TEST_F(OccurrenceSimilarityTest, SimilarPairScoresAboveDissimilarPair) {
  // The paper groups o1 with o2; o3 (P5..P8) carries mostly unrelated
  // annotations, so SO(o1,o2) should dominate SO(o1,o3).
  OccurrenceSimilarity so(*st_, example_->motif);
  EXPECT_GT(so.Score(Profile(0), Profile(1)),
            so.Score(Profile(0), Profile(2)));
}

TEST_F(OccurrenceSimilarityTest, BoundedByOne) {
  OccurrenceSimilarity so(*st_, example_->motif);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      const double s = so.Score(Profile(i), Profile(j));
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
    }
  }
}

TEST_F(OccurrenceSimilarityTest, AsymmetricMotifIdentityPairing) {
  // A path motif 0-1-2 has orbits {0,2},{1}; a triangle with a tail has all
  // singleton orbits except none — use a 3-path on 3 proteins.
  SmallGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  OccurrenceSimilarity so(*st_, path);
  EXPECT_EQ(so.orbits().size(), 2u);
  LabelProfile a(3), b(3);
  a[0] = {example_->term("G04")};
  a[1] = {example_->term("G06")};
  a[2] = {example_->term("G07")};
  // b mirrors a: the pairing should flip the endpoint orbit for a perfect
  // match.
  b[0] = a[2];
  b[1] = a[1];
  b[2] = a[0];
  EXPECT_DOUBLE_EQ(so.Score(a, b), 1.0);
}

}  // namespace
}  // namespace lamo
