#include "core/assignment.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace lamo {
namespace {

TEST(AssignmentTest, EmptyMatrix) {
  std::vector<int> matching{1, 2, 3};
  EXPECT_DOUBLE_EQ(MaxSumAssignment({}, &matching), 0.0);
  EXPECT_TRUE(matching.empty());
}

TEST(AssignmentTest, SingleCell) {
  std::vector<int> matching;
  EXPECT_DOUBLE_EQ(MaxSumAssignment({{0.7}}, &matching), 0.7);
  EXPECT_EQ(matching, (std::vector<int>{0}));
}

TEST(AssignmentTest, TwoByTwoPrefersCross) {
  // Diagonal gives 0.1 + 0.1; cross gives 0.9 + 0.8.
  const std::vector<std::vector<double>> score = {{0.1, 0.9}, {0.8, 0.1}};
  std::vector<int> matching;
  EXPECT_NEAR(MaxSumAssignment(score, &matching), 1.7, 1e-12);
  EXPECT_EQ(matching, (std::vector<int>{1, 0}));
}

TEST(AssignmentTest, IdentityOptimal) {
  const std::vector<std::vector<double>> score = {
      {1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}};
  std::vector<int> matching;
  EXPECT_NEAR(MaxSumAssignment(score, &matching), 3.0, 1e-12);
  EXPECT_EQ(matching, (std::vector<int>{0, 1, 2}));
}

TEST(AssignmentTest, MatchingIsPermutation) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Uniform(8);
    std::vector<std::vector<double>> score(n, std::vector<double>(n));
    for (auto& row : score) {
      for (double& cell : row) cell = rng.NextDouble();
    }
    std::vector<int> matching;
    const double total = MaxSumAssignment(score, &matching);
    std::vector<bool> used(n, false);
    double check = 0.0;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_GE(matching[i], 0);
      ASSERT_LT(matching[i], static_cast<int>(n));
      EXPECT_FALSE(used[matching[i]]);
      used[matching[i]] = true;
      check += score[i][matching[i]];
    }
    EXPECT_NEAR(total, check, 1e-9);
  }
}

// Property: Hungarian result equals brute force on random instances.
class AssignmentEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(AssignmentEquivalence, MatchesBruteForce) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::vector<double>> score(n, std::vector<double>(n));
    for (auto& row : score) {
      for (double& cell : row) cell = rng.NextDouble();
    }
    const double hungarian = MaxSumAssignment(score, nullptr);
    const double brute = MaxSumAssignmentBruteForce(score, nullptr);
    EXPECT_NEAR(hungarian, brute, 1e-9) << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AssignmentEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(AssignmentTest, TiesResolveToValidMatching) {
  const std::vector<std::vector<double>> score = {{1.0, 1.0}, {1.0, 1.0}};
  std::vector<int> matching;
  EXPECT_NEAR(MaxSumAssignment(score, &matching), 2.0, 1e-12);
  EXPECT_NE(matching[0], matching[1]);
}

}  // namespace
}  // namespace lamo
