#!/bin/sh
# Golden-file regression test for `lamo label`: the full generate -> mine ->
# label pipeline over a pinned synthetic dataset must reproduce the
# committed labeled-motif output byte for byte. Catches accidental changes
# to the labeling algorithm, iteration orders, or the on-disk format.
#
# To regenerate after an *intentional* output change:
#   LAMO_UPDATE_GOLDEN=1 sh tests/golden_label_test.sh build/tools/lamo \
#     tests/golden/labeled.golden.txt
set -e
LAMO="$1"
GOLDEN="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$LAMO" generate --proteins 400 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null
"$LAMO" mine --graph "$WORK/ds.graph.txt" --min-size 3 --max-size 4 \
  --min-freq 20 --networks 5 --uniqueness 0.8 --out "$WORK/motifs.txt" \
  > /dev/null
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" > /dev/null

if [ -n "$LAMO_UPDATE_GOLDEN" ]; then
  cp "$WORK/labeled.txt" "$GOLDEN"
  echo "updated $GOLDEN"
  exit 0
fi

diff -u "$GOLDEN" "$WORK/labeled.txt" || {
  echo "FAIL: lamo label output drifted from $GOLDEN" >&2
  echo "(rerun with LAMO_UPDATE_GOLDEN=1 if the change is intentional)" >&2
  exit 1
}
echo "golden label output OK"
