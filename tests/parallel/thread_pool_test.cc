#include "parallel/thread_pool.h"

#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownIdle) {
  // Construct and destroy without ever submitting: workers must start and
  // join cleanly.
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroWorkersRunsTasksAtDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(0);
    pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Tasks after the throwing one still ran.
  EXPECT_EQ(completed.load(), 10);
  // The error was consumed: a second Wait is clean.
  pool.Wait();
}

TEST(ThreadPoolTest, InWorkerTrueOnlyOnWorkerThreads) {
  EXPECT_FALSE(ThreadPool::InWorker());
  std::atomic<bool> saw_worker_flag{false};
  ThreadPool pool(2);
  pool.Submit([&saw_worker_flag] {
    saw_worker_flag.store(ThreadPool::InWorker());
  });
  pool.Wait();
  EXPECT_TRUE(saw_worker_flag.load());
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  std::atomic<int> counter{0};
  ThreadPool pool(3);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

}  // namespace
}  // namespace lamo
