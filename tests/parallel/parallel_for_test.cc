#include "parallel/parallel_for.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ontology/annotation.h"
#include "ontology/ontology.h"
#include "ontology/similarity.h"
#include "ontology/weights.h"

namespace lamo {
namespace {

/// Restores the process thread count on scope exit so tests are independent.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(size_t n) { SetThreadCount(n); }
  ~ScopedThreadCount() { SetThreadCount(0); }
};

TEST(ThreadCountTest, ExplicitOverrideWins) {
  ScopedThreadCount guard(3);
  EXPECT_EQ(ThreadCount(), 3u);
}

TEST(ThreadCountTest, EnvOverrideWhenNoExplicitCount) {
  SetThreadCount(0);
  ASSERT_EQ(setenv("LAMO_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadCount(), 5u);
  ASSERT_EQ(setenv("LAMO_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(ThreadCount(), HardwareConcurrency());
  ASSERT_EQ(unsetenv("LAMO_THREADS"), 0);
  EXPECT_EQ(ThreadCount(), HardwareConcurrency());
}

TEST(ThreadCountTest, AutoFallsBackToHardware) {
  SetThreadCount(0);
  EXPECT_EQ(ThreadCount(), HardwareConcurrency());
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ScopedThreadCount guard(4);
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(0, visits.size(), 7, [&](size_t i) {
    visits[i].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, EmptyAndSingleRanges) {
  ScopedThreadCount guard(4);
  int count = 0;
  ParallelFor(5, 5, 1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  ParallelFor(5, 6, 1, [&](size_t i) {
    EXPECT_EQ(i, 5u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ScopedThreadCount guard(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The runtime stays usable after a throwing region.
  std::atomic<int> counter{0};
  ParallelFor(0, 10, 1, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, NestedForIsRejectedAndRunsSerially) {
  ScopedThreadCount guard(4);
  std::atomic<int> inner_total{0};
  std::atomic<int> nested_regions{0};
  ParallelFor(0, 8, 1, [&](size_t) {
    EXPECT_TRUE(InParallelRegion());
    // Nested fan-out must degrade to an inline serial loop, not deadlock.
    ParallelFor(0, 10, 1, [&](size_t) { inner_total.fetch_add(1); });
    nested_regions.fetch_add(1);
  });
  EXPECT_EQ(nested_regions.load(), 8);
  EXPECT_EQ(inner_total.load(), 80);
  EXPECT_FALSE(InParallelRegion());
}

TEST(ParallelForChunksTest, ChunkBoundariesDependOnlyOnGrain) {
  // Chunking is the determinism anchor: record boundaries at 1 and at 4
  // threads and require them identical.
  auto boundaries_at = [](size_t threads) {
    ScopedThreadCount guard(threads);
    std::vector<std::vector<size_t>> chunks(7);  // ceil(20/3)
    ParallelForChunks(0, 20, 3, [&](size_t chunk, size_t lo, size_t hi) {
      chunks[chunk] = {lo, hi};
    });
    return chunks;
  };
  EXPECT_EQ(boundaries_at(1), boundaries_at(4));
}

TEST(ParallelMapTest, ResultsInIndexOrderForAnyThreadCount) {
  auto square_map = [](size_t threads) {
    ScopedThreadCount guard(threads);
    return ParallelMap(100, 3, [](size_t i) { return i * i; });
  };
  const std::vector<size_t> serial = square_map(1);
  const std::vector<size_t> parallel = square_map(4);
  ASSERT_EQ(serial.size(), 100u);
  for (size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(serial[i], i * i);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelReduceTest, OrderedFoldIsThreadCountInvariant) {
  // A deliberately non-commutative floating-point sum: identical results
  // across thread counts only hold because partials fold in chunk order.
  auto noisy_sum = [](size_t threads) {
    ScopedThreadCount guard(threads);
    return ParallelReduce<double>(
        1000, 17, 0.0,
        [](size_t lo, size_t hi) {
          double s = 0.0;
          for (size_t i = lo; i < hi; ++i) s += 1.0 / (1.0 + i);
          return s;
        },
        [](double acc, double part) { return acc + part; });
  };
  const double serial = noisy_sum(1);
  const double parallel = noisy_sum(4);
  EXPECT_EQ(serial, parallel);  // bitwise, not approximate
  EXPECT_NEAR(serial, 7.4854708605503449, 1e-12);
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  ScopedThreadCount guard(4);
  const int result = ParallelReduce<int>(
      0, 1, 42, [](size_t, size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(TermSimilarityConcurrencyTest, SharedMemoIsSafeAndConsistent) {
  // A small ontology: root -> a, b; a -> a1; b -> b1; s with parents a, b.
  OntologyBuilder builder;
  const TermId root = builder.AddTerm("root");
  const TermId a = builder.AddTerm("a");
  const TermId b = builder.AddTerm("b");
  const TermId a1 = builder.AddTerm("a1");
  const TermId b1 = builder.AddTerm("b1");
  const TermId s = builder.AddTerm("s");
  ASSERT_TRUE(builder.AddRelation(a, root, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(b, root, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(a1, a, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(b1, b, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(s, a, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(s, b, RelationType::kPartOf).ok());
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  const Ontology onto = std::move(built).value();

  AnnotationTable annotations(60);
  ProteinId next = 0;
  for (TermId t : {root, a, b, a1, b1, s}) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(annotations.Annotate(next++, t).ok());
    }
  }
  const TermWeights weights = TermWeights::Compute(onto, annotations);
  const TermSimilarity st(onto, weights);

  // Reference values computed on a cold cache, serially.
  const size_t num_terms = onto.num_terms();
  std::vector<double> expected(num_terms * num_terms);
  for (TermId x = 0; x < num_terms; ++x) {
    for (TermId y = 0; y < num_terms; ++y) {
      expected[x * num_terms + y] = st.Similarity(x, y);
    }
  }

  ScopedThreadCount guard(4);
  const TermSimilarity concurrent(onto, weights);
  std::atomic<int> mismatches{0};
  // Every pair queried many times from competing tasks: races on the memo
  // shards must neither crash nor change any value.
  ParallelFor(0, 64, 1, [&](size_t round) {
    for (TermId x = 0; x < num_terms; ++x) {
      for (TermId y = 0; y < num_terms; ++y) {
        const TermId qx = (round % 2 == 0) ? x : y;
        const TermId qy = (round % 2 == 0) ? y : x;
        if (concurrent.Similarity(qx, qy) !=
            expected[qx * num_terms + qy]) {
          mismatches.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(concurrent.cache_size(), 0u);
}

}  // namespace
}  // namespace lamo
