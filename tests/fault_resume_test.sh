#!/bin/sh
# Crash matrix: for EVERY fault point registered in the binary (as printed
# by `lamo fault-points`), run the pipeline stage that owns the point with
# LAMO_FAULT armed until the injected abort fires, then run again with
# --resume and require the final outputs byte-identical to an uninterrupted
# run — with no *.tmp debris left behind. A fault point with no entry in the
# case below fails the suite, so new fault points cannot ship untested.
set -e
LAMO="$1"
REPORT_CHECK="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

FAULT_EXIT=42  # kFaultExitCode: proves the abort came from the armed point

"$LAMO" generate --proteins 260 --copies 25 --seed 11 --out "$WORK/ds" \
  > /dev/null

# Uninterrupted baselines, one per pipeline the matrix drives. Baselines run
# WITHOUT checkpointing, so the matrix also proves that checkpointed and
# resumed runs reproduce the plain run byte for byte.
LW_FLAGS="--graph $WORK/ds.graph.txt --min-size 3 --max-size 4 --min-freq 15"
ESU_FLAGS="--graph $WORK/ds.graph.txt --algo esu --min-size 3 --max-size 3 \
  --min-freq 15 --networks 4 --seed 9"
LABEL_FLAGS="--graph $WORK/ds.graph.txt --obo $WORK/ds.obo \
  --annotations $WORK/ds.annotations.tsv --sigma 6"

"$LAMO" mine $LW_FLAGS --out "$WORK/base_lw.txt" > /dev/null 2>&1
"$LAMO" mine $ESU_FLAGS --out "$WORK/base_esu.txt" > /dev/null 2>&1
"$LAMO" label $LABEL_FLAGS --motifs "$WORK/base_lw.txt" \
  --out "$WORK/base_label.txt" > /dev/null 2>&1

# run_case <point> <spec> <expected_exit> <baseline> <command...>
# Arms <spec>, expects the run to exit with <expected_exit>, then reruns
# with --resume and compares the output against <baseline>.
run_case() {
  point="$1"; spec="$2"; want_exit="$3"; baseline="$4"; shift 4
  ck="$WORK/ck_$point"
  out="$WORK/out_$point.txt"
  rm -rf "$ck" "$out"
  rc=0
  LAMO_FAULT="$spec" "$@" --checkpoint "$ck" --out "$out" \
    > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne "$want_exit" ]; then
    echo "FAIL: $point: armed run exited $rc, expected $want_exit" >&2
    exit 1
  fi
  if [ "$want_exit" -ne 0 ]; then
    "$@" --checkpoint "$ck" --resume --out "$out" > /dev/null 2>&1 || {
      echo "FAIL: $point: resume run failed" >&2
      exit 1
    }
  fi
  cmp "$baseline" "$out" || {
    echo "FAIL: $point: resumed output differs from uninterrupted run" >&2
    exit 1
  }
  leftovers="$(find "$ck" "$WORK" -maxdepth 1 -name '*.tmp' 2> /dev/null)"
  if [ -n "$leftovers" ]; then
    echo "FAIL: $point: tmp files left behind: $leftovers" >&2
    exit 1
  fi
}

POINTS="$("$LAMO" fault-points)"
test -n "$POINTS" || {
  echo "FAIL: lamo fault-points printed nothing" >&2
  exit 1
}

for point in $POINTS; do
  case "$point" in
    mine.enum.chunk | mine.uniq.replicate)
      # ESU route: crash on the 2nd hit so at least one checkpoint exists.
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_esu.txt" \
        "$LAMO" mine $ESU_FLAGS
      ;;
    mine.level | uniqueness.replicate)
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_lw.txt" \
        "$LAMO" mine $LW_FLAGS
      ;;
    atomic.write | atomic.pre_rename)
      # Crash inside the atomic-write machinery itself (mid checkpoint or
      # mid final output): the interrupted file must never be observed torn.
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_lw.txt" \
        "$LAMO" mine $LW_FLAGS
      ;;
    checkpoint.save)
      # A failing checkpoint save is NON-fatal: the run must finish with
      # exit 0 and correct output, just without that checkpoint.
      run_case "$point" "$point:1:error" 0 "$WORK/base_lw.txt" \
        "$LAMO" mine $LW_FLAGS
      ;;
    label.motif)
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_label.txt" \
        "$LAMO" label $LABEL_FLAGS --motifs "$WORK/base_lw.txt"
      ;;
    *)
      echo "FAIL: fault point '$point' has no crash-matrix entry —" \
        "add one to tests/fault_resume_test.sh" >&2
      exit 1
      ;;
  esac
done

# Resumed runs surface their progress in the run report: checkpoint.* obs
# counters must exist and satisfy the report checker's invariants
# (resumed_chunks <= total_chunks, writes == fsyncs).
rm -rf "$WORK/ck_report"
rc=0
LAMO_FAULT="mine.level:2" "$LAMO" mine $LW_FLAGS \
  --checkpoint "$WORK/ck_report" --out "$WORK/report_out.txt" \
  > /dev/null 2>&1 || rc=$?
test "$rc" -eq "$FAULT_EXIT"
"$LAMO" mine $LW_FLAGS --checkpoint "$WORK/ck_report" --resume \
  --report "$WORK/resume_report.json" --out "$WORK/report_out.txt" \
  > /dev/null 2>&1
"$REPORT_CHECK" "$WORK/resume_report.json" checkpoint.writes \
  checkpoint.resumed_chunks > /dev/null

# A corrupted checkpoint must force a clean restart, not a wrong resume:
# flip one byte in the saved checkpoint and verify output is still exact.
rm -rf "$WORK/ck_corrupt"
rc=0
LAMO_FAULT="mine.level:2" "$LAMO" mine $LW_FLAGS \
  --checkpoint "$WORK/ck_corrupt" --out "$WORK/corrupt_out.txt" \
  > /dev/null 2>&1 || rc=$?
test "$rc" -eq "$FAULT_EXIT"
CKPT="$WORK/ck_corrupt/mine_levels.ckpt"
test -s "$CKPT"
printf 'X' | dd of="$CKPT" bs=1 seek=30 conv=notrunc 2> /dev/null
"$LAMO" mine $LW_FLAGS --checkpoint "$WORK/ck_corrupt" --resume \
  --out "$WORK/corrupt_out.txt" > /dev/null 2>&1
cmp "$WORK/base_lw.txt" "$WORK/corrupt_out.txt" || {
  echo "FAIL: resume after checkpoint corruption produced wrong output" >&2
  exit 1
}

echo "fault matrix OK: every fault point crash-resumed to byte-identical" \
  "output, checkpoint corruption forced a clean restart"
