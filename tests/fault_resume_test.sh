#!/bin/sh
# Crash matrix: for EVERY fault point registered in the binary (as printed
# by `lamo fault-points`), run the pipeline stage that owns the point with
# LAMO_FAULT armed until the injected abort fires, then run again with
# --resume and require the final outputs byte-identical to an uninterrupted
# run — with no *.tmp debris left behind. A fault point with no entry in the
# case below fails the suite, so new fault points cannot ship untested.
set -e
LAMO="$1"
REPORT_CHECK="$2"
BENCH="$3"
WORK="$(mktemp -d)"
ROUTER_PID=""
cleanup() {
  [ -n "$ROUTER_PID" ] && kill "$ROUTER_PID" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

FAULT_EXIT=42  # kFaultExitCode: proves the abort came from the armed point

"$LAMO" generate --proteins 260 --copies 25 --seed 11 --out "$WORK/ds" \
  > /dev/null

# Uninterrupted baselines, one per pipeline the matrix drives. Baselines run
# WITHOUT checkpointing, so the matrix also proves that checkpointed and
# resumed runs reproduce the plain run byte for byte.
LW_FLAGS="--graph $WORK/ds.graph.txt --min-size 3 --max-size 4 --min-freq 15"
ESU_FLAGS="--graph $WORK/ds.graph.txt --algo esu --min-size 3 --max-size 3 \
  --min-freq 15 --networks 4 --seed 9"
LABEL_FLAGS="--graph $WORK/ds.graph.txt --obo $WORK/ds.obo \
  --annotations $WORK/ds.annotations.tsv --sigma 6"

"$LAMO" mine $LW_FLAGS --out "$WORK/base_lw.txt" > /dev/null 2>&1
"$LAMO" mine $ESU_FLAGS --out "$WORK/base_esu.txt" > /dev/null 2>&1
"$LAMO" label $LABEL_FLAGS --motifs "$WORK/base_lw.txt" \
  --out "$WORK/base_label.txt" > /dev/null 2>&1

# run_case <point> <spec> <expected_exit> <baseline> <command...>
# Arms <spec>, expects the run to exit with <expected_exit>, then reruns
# with --resume and compares the output against <baseline>.
run_case() {
  point="$1"; spec="$2"; want_exit="$3"; baseline="$4"; shift 4
  ck="$WORK/ck_$point"
  out="$WORK/out_$point.txt"
  rm -rf "$ck" "$out"
  rc=0
  LAMO_FAULT="$spec" "$@" --checkpoint "$ck" --out "$out" \
    > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne "$want_exit" ]; then
    echo "FAIL: $point: armed run exited $rc, expected $want_exit" >&2
    exit 1
  fi
  if [ "$want_exit" -ne 0 ]; then
    "$@" --checkpoint "$ck" --resume --out "$out" > /dev/null 2>&1 || {
      echo "FAIL: $point: resume run failed" >&2
      exit 1
    }
  fi
  cmp "$baseline" "$out" || {
    echo "FAIL: $point: resumed output differs from uninterrupted run" >&2
    exit 1
  }
  leftovers="$(find "$ck" "$WORK" -maxdepth 1 -name '*.tmp' 2> /dev/null)"
  if [ -n "$leftovers" ]; then
    echo "FAIL: $point: tmp files left behind: $leftovers" >&2
    exit 1
  fi
}

# Lazy one-time setup for the router.* fault points: pack a snapshot from
# the label baseline, and record the un-faulted answer the faulted router
# run must reproduce.
router_setup() {
  [ -f "$WORK/model.lamosnap" ] && return 0
  "$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
    --annotations "$WORK/ds.annotations.tsv" \
    --labeled "$WORK/base_label.txt" --out "$WORK/model.lamosnap" > /dev/null
  printf 'PREDICT 7 3\n' | "$LAMO" serve \
    --snapshot "$WORK/model.lamosnap" --stdin 2> /dev/null \
    | sed '1d' > "$WORK/router_baseline_answer.txt"
}

# Polls a router log for the listening banner; sets ROUTER_PORT.
router_wait_port() {
  ROUTER_PORT=""
  for _ in $(seq 1 200); do
    ROUTER_PORT="$(sed -n \
      's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1")"
    [ -n "$ROUTER_PORT" ] && return 0
    sleep 0.1
  done
  echo "FAIL: router did not start (no listening banner in $1)" >&2
  exit 1
}

POINTS="$("$LAMO" fault-points)"
test -n "$POINTS" || {
  echo "FAIL: lamo fault-points printed nothing" >&2
  exit 1
}

for point in $POINTS; do
  case "$point" in
    mine.enum.chunk | mine.uniq.replicate)
      # ESU route: crash on the 2nd hit so at least one checkpoint exists.
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_esu.txt" \
        "$LAMO" mine $ESU_FLAGS
      ;;
    mine.level | uniqueness.replicate)
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_lw.txt" \
        "$LAMO" mine $LW_FLAGS
      ;;
    atomic.write | atomic.pre_rename)
      # Crash inside the atomic-write machinery itself (mid checkpoint or
      # mid final output): the interrupted file must never be observed torn.
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_lw.txt" \
        "$LAMO" mine $LW_FLAGS
      ;;
    checkpoint.save)
      # A failing checkpoint save is NON-fatal: the run must finish with
      # exit 0 and correct output, just without that checkpoint.
      run_case "$point" "$point:1:error" 0 "$WORK/base_lw.txt" \
        "$LAMO" mine $LW_FLAGS
      ;;
    label.motif)
      run_case "$point" "$point:2" "$FAULT_EXIT" "$WORK/base_label.txt" \
        "$LAMO" label $LABEL_FLAGS --motifs "$WORK/base_lw.txt"
      ;;
    router.forward)
      # Injected transport error on the router's forward path: the request
      # must be retried transparently — the client still gets the correct
      # answer and the router reports zero errors. Backends unset LAMO_FAULT
      # on exec, so the armed point fires in the router process only.
      router_setup
      rm -f "$WORK/router_fwd.log"
      LAMO_FAULT="router.forward:1:error" "$LAMO" router \
        --snapshot "$WORK/model.lamosnap" --backends 1 --mode replicated \
        --port 0 > "$WORK/router_fwd.log" 2> /dev/null &
      ROUTER_PID=$!
      router_wait_port "$WORK/router_fwd.log"
      "$BENCH" --port "$ROUTER_PORT" --query "PREDICT 7 3" \
        > "$WORK/router_fwd_answer.txt"
      cmp "$WORK/router_baseline_answer.txt" "$WORK/router_fwd_answer.txt" || {
        echo "FAIL: router.forward: retried answer differs from baseline" >&2
        exit 1
      }
      kill "$ROUTER_PID" 2> /dev/null
      wait "$ROUTER_PID" || true
      ROUTER_PID=""
      ;;
    router.spawn)
      # Crash the router while it is spawning backend 2 of 2: the exit code
      # must be the fault code, and the already-spawned backend must die
      # with its parent (PR_SET_PDEATHSIG) instead of leaking.
      router_setup
      rc=0
      LAMO_FAULT="router.spawn:2" "$LAMO" router \
        --snapshot "$WORK/model.lamosnap" --backends 2 --mode replicated \
        --port 0 > /dev/null 2>&1 || rc=$?
      if [ "$rc" -ne "$FAULT_EXIT" ]; then
        echo "FAIL: router.spawn: armed run exited $rc, expected" \
          "$FAULT_EXIT" >&2
        exit 1
      fi
      sleep 1
      if pgrep -f "serve --snapshot $WORK/model.lamosnap" > /dev/null 2>&1
      then
        echo "FAIL: router.spawn: backend serve process leaked" >&2
        exit 1
      fi
      ;;
    update.journal | update.apply)
      # Kill the serve daemon mid-update, at both sides of the write-ahead
      # barrier. update.journal fires BEFORE the entry reaches the journal:
      # the update was never acknowledged, so a restart must answer exactly
      # like an untouched server. update.apply fires AFTER the fsync'd
      # append but BEFORE the in-memory apply: the entry is durable, so a
      # restart must replay it and answer exactly like a server that
      # completed the update. Both compared byte-for-byte.
      router_setup
      EDGE_LINE="$(sed -n '3p' "$WORK/ds.graph.txt")"
      EU="${EDGE_LINE%% *}"
      EV="${EDGE_LINE##* }"
      QUERIES="$WORK/update_queries.txt"
      if [ ! -f "$QUERIES" ]; then
        printf 'PREDICT %s 3\nPREDICT %s 3\nMOTIFS %s\n' \
          "$EU" "$EV" "$EU" > "$QUERIES"
        "$LAMO" serve --snapshot "$WORK/model.lamosnap" --stdin \
          < "$QUERIES" 2> /dev/null > "$WORK/update_pre_baseline.txt"
        { printf 'DELEDGE %s %s\n' "$EU" "$EV"; cat "$QUERIES"; } \
          | "$LAMO" serve --snapshot "$WORK/model.lamosnap" --stdin \
            2> /dev/null | sed '1,2d' > "$WORK/update_post_baseline.txt"
      fi
      JOURNAL="$WORK/journal_$point"
      rm -f "$JOURNAL" "$WORK/serve_$point.log"
      LAMO_FAULT="$point:1" "$LAMO" serve \
        --snapshot "$WORK/model.lamosnap" --journal "$JOURNAL" --port 0 \
        > "$WORK/serve_$point.log" 2> /dev/null &
      ROUTER_PID=$!
      router_wait_port "$WORK/serve_$point.log"
      "$BENCH" --port "$ROUTER_PORT" --query "DELEDGE $EU $EV" \
        > /dev/null 2>&1 || true
      rc=0
      wait "$ROUTER_PID" || rc=$?
      ROUTER_PID=""
      if [ "$rc" -ne "$FAULT_EXIT" ]; then
        echo "FAIL: $point: armed serve exited $rc, expected $FAULT_EXIT" >&2
        exit 1
      fi
      case "$point" in
        update.journal) EXPECT="$WORK/update_pre_baseline.txt" ;;
        *) EXPECT="$WORK/update_post_baseline.txt" ;;
      esac
      "$LAMO" serve --snapshot "$WORK/model.lamosnap" --journal "$JOURNAL" \
        --stdin < "$QUERIES" 2> /dev/null > "$WORK/update_replay_$point.txt"
      cmp "$EXPECT" "$WORK/update_replay_$point.txt" || {
        echo "FAIL: $point: restarted server state differs from the" \
          "$([ "$point" = update.journal ] && echo pre || echo post)-update" \
          "baseline" >&2
        exit 1
      }
      ;;
    *)
      echo "FAIL: fault point '$point' has no crash-matrix entry —" \
        "add one to tests/fault_resume_test.sh" >&2
      exit 1
      ;;
  esac
done

# Resumed runs surface their progress in the run report: checkpoint.* obs
# counters must exist and satisfy the report checker's invariants
# (resumed_chunks <= total_chunks, writes == fsyncs).
rm -rf "$WORK/ck_report"
rc=0
LAMO_FAULT="mine.level:2" "$LAMO" mine $LW_FLAGS \
  --checkpoint "$WORK/ck_report" --out "$WORK/report_out.txt" \
  > /dev/null 2>&1 || rc=$?
test "$rc" -eq "$FAULT_EXIT"
"$LAMO" mine $LW_FLAGS --checkpoint "$WORK/ck_report" --resume \
  --report "$WORK/resume_report.json" --out "$WORK/report_out.txt" \
  > /dev/null 2>&1
"$REPORT_CHECK" "$WORK/resume_report.json" checkpoint.writes \
  checkpoint.resumed_chunks > /dev/null

# A corrupted checkpoint must force a clean restart, not a wrong resume:
# flip one byte in the saved checkpoint and verify output is still exact.
rm -rf "$WORK/ck_corrupt"
rc=0
LAMO_FAULT="mine.level:2" "$LAMO" mine $LW_FLAGS \
  --checkpoint "$WORK/ck_corrupt" --out "$WORK/corrupt_out.txt" \
  > /dev/null 2>&1 || rc=$?
test "$rc" -eq "$FAULT_EXIT"
CKPT="$WORK/ck_corrupt/mine_levels.ckpt"
test -s "$CKPT"
printf 'X' | dd of="$CKPT" bs=1 seek=30 conv=notrunc 2> /dev/null
"$LAMO" mine $LW_FLAGS --checkpoint "$WORK/ck_corrupt" --resume \
  --out "$WORK/corrupt_out.txt" > /dev/null 2>&1
cmp "$WORK/base_lw.txt" "$WORK/corrupt_out.txt" || {
  echo "FAIL: resume after checkpoint corruption produced wrong output" >&2
  exit 1
}

echo "fault matrix OK: every fault point crash-resumed to byte-identical" \
  "output, checkpoint corruption forced a clean restart"
