#include "motif/uniqueness.h"

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/miner.h"

namespace lamo {
namespace {

// Sparse background + many planted 4-cycles: the 4-cycle should be unique
// (rewiring destroys most of them), while the single-edge-ish patterns are
// not distinctive.
Graph PlantedSquares(size_t num_squares, size_t background, Rng& rng) {
  GraphBuilder builder(4 * num_squares + background);
  for (size_t s = 0; s < num_squares; ++s) {
    const VertexId base = static_cast<VertexId>(4 * s);
    EXPECT_TRUE(builder.AddEdge(base, base + 1).ok());
    EXPECT_TRUE(builder.AddEdge(base + 1, base + 2).ok());
    EXPECT_TRUE(builder.AddEdge(base + 2, base + 3).ok());
    EXPECT_TRUE(builder.AddEdge(base + 3, base).ok());
  }
  const VertexId offset = static_cast<VertexId>(4 * num_squares);
  for (VertexId v = 0; v + 1 < background; ++v) {
    EXPECT_TRUE(builder.AddEdge(offset + v, offset + v + 1).ok());
  }
  // A few cross links so rewiring has room to scramble.
  for (size_t i = 0; i < num_squares; ++i) {
    const VertexId a = static_cast<VertexId>(rng.Uniform(4 * num_squares));
    const VertexId b =
        offset + static_cast<VertexId>(rng.Uniform(background));
    EXPECT_TRUE(builder.AddEdge(a, b).ok());
  }
  return builder.Build();
}

TEST(UniquenessTest, PlantedPatternScoresHigh) {
  Rng rng(41);
  const Graph g = PlantedSquares(15, 40, rng);

  MinerConfig miner_config;
  miner_config.min_size = 4;
  miner_config.max_size = 4;
  miner_config.min_frequency = 10;
  auto motifs = FrequentSubgraphMiner(g, miner_config).Mine();

  SmallGraph square(4);
  square.AddEdge(0, 1);
  square.AddEdge(1, 2);
  square.AddEdge(2, 3);
  square.AddEdge(3, 0);
  const auto square_code = CanonicalCode(square);

  UniquenessConfig config;
  config.num_random_networks = 10;
  config.swaps_per_edge = 3.0;
  config.seed = 7;
  EvaluateUniqueness(g, config, &motifs);

  bool square_found = false;
  for (const Motif& m : motifs) {
    EXPECT_GE(m.uniqueness, 0.0);
    EXPECT_LE(m.uniqueness, 1.0);
    if (m.code == square_code) {
      square_found = true;
      EXPECT_GE(m.uniqueness, 0.9)
          << "15 planted chordless squares should not survive rewiring";
    }
  }
  EXPECT_TRUE(square_found);
}

TEST(UniquenessTest, FilterUnique) {
  std::vector<Motif> motifs(3);
  motifs[0].uniqueness = 1.0;
  motifs[1].uniqueness = 0.5;
  motifs[2].uniqueness = 0.96;
  const auto kept = FilterUnique(std::move(motifs), 0.95);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].uniqueness, 1.0);
  EXPECT_DOUBLE_EQ(kept[1].uniqueness, 0.96);
}

TEST(UniquenessTest, NoRandomNetworksLeavesUnevaluated) {
  Rng rng(42);
  const Graph g = ErdosRenyi(20, 40, rng);
  std::vector<Motif> motifs(1);
  motifs[0].pattern = SmallGraph(3);
  motifs[0].pattern.AddEdge(0, 1);
  motifs[0].pattern.AddEdge(1, 2);
  motifs[0].frequency = 5;
  UniquenessConfig config;
  config.num_random_networks = 0;
  EvaluateUniqueness(g, config, &motifs);
  EXPECT_DOUBLE_EQ(motifs[0].uniqueness, -1.0);
}

TEST(UniquenessTest, FindNetworkMotifsFacade) {
  Rng rng(43);
  const Graph g = PlantedSquares(15, 40, rng);
  MotifFindingConfig config;
  config.miner.min_size = 3;
  config.miner.max_size = 4;
  config.miner.min_frequency = 10;
  config.uniqueness.num_random_networks = 8;
  config.uniqueness.seed = 11;
  config.uniqueness_threshold = 0.9;
  const auto motifs = FindNetworkMotifs(g, config);
  for (const Motif& m : motifs) {
    EXPECT_GE(m.uniqueness, 0.9);
    EXPECT_GE(m.frequency, 10u);
    EXPECT_GE(m.size(), 3u);
    EXPECT_LE(m.size(), 4u);
  }
  EXPECT_FALSE(motifs.empty());
}

TEST(MotifStructTest, ToString) {
  Motif m;
  m.pattern = SmallGraph(3);
  m.pattern.AddEdge(0, 1);
  m.frequency = 7;
  EXPECT_EQ(m.ToString(), "Motif(size=3, edges=1, freq=7)");
  m.uniqueness = 0.5;
  EXPECT_NE(m.ToString().find("uniq=0.5"), std::string::npos);
}

}  // namespace
}  // namespace lamo
