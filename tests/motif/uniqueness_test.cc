#include "motif/uniqueness.h"

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"
#include "motif/miner.h"

namespace lamo {
namespace {

// Sparse background + many planted 4-cycles: the 4-cycle should be unique
// (rewiring destroys most of them), while the single-edge-ish patterns are
// not distinctive.
Graph PlantedSquares(size_t num_squares, size_t background, Rng& rng) {
  GraphBuilder builder(4 * num_squares + background);
  for (size_t s = 0; s < num_squares; ++s) {
    const VertexId base = static_cast<VertexId>(4 * s);
    EXPECT_TRUE(builder.AddEdge(base, base + 1).ok());
    EXPECT_TRUE(builder.AddEdge(base + 1, base + 2).ok());
    EXPECT_TRUE(builder.AddEdge(base + 2, base + 3).ok());
    EXPECT_TRUE(builder.AddEdge(base + 3, base).ok());
  }
  const VertexId offset = static_cast<VertexId>(4 * num_squares);
  for (VertexId v = 0; v + 1 < background; ++v) {
    EXPECT_TRUE(builder.AddEdge(offset + v, offset + v + 1).ok());
  }
  // A few cross links so rewiring has room to scramble.
  for (size_t i = 0; i < num_squares; ++i) {
    const VertexId a = static_cast<VertexId>(rng.Uniform(4 * num_squares));
    const VertexId b =
        offset + static_cast<VertexId>(rng.Uniform(background));
    EXPECT_TRUE(builder.AddEdge(a, b).ok());
  }
  return builder.Build();
}

TEST(UniquenessTest, PlantedPatternScoresHigh) {
  Rng rng(41);
  const Graph g = PlantedSquares(15, 40, rng);

  MinerConfig miner_config;
  miner_config.min_size = 4;
  miner_config.max_size = 4;
  miner_config.min_frequency = 10;
  auto motifs = FrequentSubgraphMiner(g, miner_config).Mine();

  SmallGraph square(4);
  square.AddEdge(0, 1);
  square.AddEdge(1, 2);
  square.AddEdge(2, 3);
  square.AddEdge(3, 0);
  const auto square_code = CanonicalCode(square);

  UniquenessConfig config;
  config.num_random_networks = 10;
  config.swaps_per_edge = 3.0;
  config.seed = 7;
  EvaluateUniqueness(g, config, &motifs);

  bool square_found = false;
  for (const Motif& m : motifs) {
    EXPECT_GE(m.uniqueness, 0.0);
    EXPECT_LE(m.uniqueness, 1.0);
    if (m.code == square_code) {
      square_found = true;
      EXPECT_GE(m.uniqueness, 0.9)
          << "15 planted chordless squares should not survive rewiring";
    }
  }
  EXPECT_TRUE(square_found);
}

TEST(UniquenessTest, FilterUnique) {
  std::vector<Motif> motifs(3);
  motifs[0].uniqueness = 1.0;
  motifs[1].uniqueness = 0.5;
  motifs[2].uniqueness = 0.96;
  const auto kept = FilterUnique(std::move(motifs), 0.95);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].uniqueness, 1.0);
  EXPECT_DOUBLE_EQ(kept[1].uniqueness, 0.96);
}

TEST(UniquenessTest, NoRandomNetworksLeavesUnevaluated) {
  Rng rng(42);
  const Graph g = ErdosRenyi(20, 40, rng);
  std::vector<Motif> motifs(1);
  motifs[0].pattern = SmallGraph(3);
  motifs[0].pattern.AddEdge(0, 1);
  motifs[0].pattern.AddEdge(1, 2);
  motifs[0].frequency = 5;
  UniquenessConfig config;
  config.num_random_networks = 0;
  EvaluateUniqueness(g, config, &motifs);
  EXPECT_DOUBLE_EQ(motifs[0].uniqueness, -1.0);
}

TEST(UniquenessTest, FindNetworkMotifsFacade) {
  Rng rng(43);
  const Graph g = PlantedSquares(15, 40, rng);
  MotifFindingConfig config;
  config.miner.min_size = 3;
  config.miner.max_size = 4;
  config.miner.min_frequency = 10;
  config.uniqueness.num_random_networks = 8;
  config.uniqueness.seed = 11;
  config.uniqueness_threshold = 0.9;
  const auto motifs = FindNetworkMotifs(g, config);
  for (const Motif& m : motifs) {
    EXPECT_GE(m.uniqueness, 0.9);
    EXPECT_GE(m.frequency, 10u);
    EXPECT_GE(m.size(), 3u);
    EXPECT_LE(m.size(), 4u);
  }
  EXPECT_FALSE(motifs.empty());
}

TEST(UniquenessTest, ReplicateOrderDoesNotChangeVerdict) {
  // The ensemble is a sum of per-replicate indicator vectors, each driven
  // by its own Rng::Stream(seed, r) — so evaluating the replicates in any
  // order (here: reversed, by hand) must reproduce EvaluateUniqueness's
  // scores and verdicts exactly.
  Rng rng(41);
  const Graph g = PlantedSquares(12, 30, rng);

  MinerConfig miner_config;
  miner_config.min_size = 3;
  miner_config.max_size = 4;
  miner_config.min_frequency = 8;
  auto motifs = FrequentSubgraphMiner(g, miner_config).Mine();
  ASSERT_FALSE(motifs.empty());

  UniquenessConfig config;
  config.num_random_networks = 6;
  config.swaps_per_edge = 3.0;
  config.seed = 19;
  EvaluateUniqueness(g, config, &motifs);

  std::vector<size_t> wins(motifs.size(), 0);
  for (size_t r = config.num_random_networks; r-- > 0;) {
    Rng stream = Rng::Stream(config.seed, r);
    const Graph randomized =
        DegreePreservingRewire(g, config.swaps_per_edge, stream);
    for (size_t i = 0; i < motifs.size(); ++i) {
      const size_t random_frequency = CountOccurrences(
          motifs[i].pattern, randomized, motifs[i].frequency + 1);
      if (motifs[i].frequency >= random_frequency) ++wins[i];
    }
  }
  for (size_t i = 0; i < motifs.size(); ++i) {
    const double reversed_uniqueness =
        static_cast<double>(wins[i]) /
        static_cast<double>(config.num_random_networks);
    EXPECT_DOUBLE_EQ(motifs[i].uniqueness, reversed_uniqueness)
        << "motif " << i << " verdict depends on replicate order";
  }
}

TEST(MotifStructTest, ToString) {
  Motif m;
  m.pattern = SmallGraph(3);
  m.pattern.AddEdge(0, 1);
  m.frequency = 7;
  EXPECT_EQ(m.ToString(), "Motif(size=3, edges=1, freq=7)");
  m.uniqueness = 0.5;
  EXPECT_NE(m.ToString().find("uniq=0.5"), std::string::npos);
}

}  // namespace
}  // namespace lamo
