// Differential test: ESU versus a naive brute-force connected-subgraph
// enumerator. The brute force walks every C(n, k) vertex subset and keeps
// the connected ones, so it is obviously correct (and hopeless beyond tiny
// n); ESU must produce exactly the same multiset of canonical classes on
// random graphs of every density.
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/esu.h"
#include "util/random.h"

namespace lamo {
namespace {

using ClassCounts = std::map<std::vector<uint8_t>, size_t>;

// All connected induced size-k subgraphs by subset enumeration.
ClassCounts BruteForceClasses(const Graph& g, size_t k) {
  ClassCounts counts;
  const size_t n = g.num_vertices();
  if (k == 0 || k > n) return counts;
  std::vector<VertexId> subset(k);
  // Lexicographic k-combinations of [0, n).
  for (size_t i = 0; i < k; ++i) subset[i] = static_cast<VertexId>(i);
  while (true) {
    const SmallGraph sub = SmallGraph::InducedSubgraph(g, subset);
    if (sub.IsConnected()) ++counts[CanonicalCode(sub)];
    // Advance: find the rightmost position that can still move up.
    size_t pos = k;
    while (pos > 0 && subset[pos - 1] == n - k + pos - 1) --pos;
    if (pos == 0) break;
    ++subset[pos - 1];
    for (size_t i = pos; i < k; ++i) subset[i] = subset[i - 1] + 1;
  }
  return counts;
}

// The same multiset via ESU, both through the raw enumerator and through
// the parallel class-counting pipeline.
ClassCounts EsuClasses(const Graph& g, size_t k) {
  ClassCounts counts;
  EnumerateConnectedSubgraphs(g, k, [&](const std::vector<VertexId>& set) {
    ++counts[CanonicalCode(SmallGraph::InducedSubgraph(g, set))];
    return true;
  });
  return counts;
}

TEST(EsuDifferentialTest, MatchesBruteForceOnRandomGraphs) {
  // 30 random graphs, n <= 12, densities from near-empty to near-complete,
  // every k in 3..5 — identical canonical-class multisets throughout.
  Rng rng(20070406);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 4 + rng.Uniform(9);  // 4..12
    const size_t max_edges = n * (n - 1) / 2;
    const size_t m = rng.Uniform(max_edges + 1);
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, m, graph_rng);
    for (size_t k = 3; k <= 5 && k <= n; ++k) {
      const ClassCounts expected = BruteForceClasses(g, k);
      SCOPED_TRACE(testing::Message() << "trial " << trial << " n=" << n
                                      << " m=" << m << " k=" << k);
      EXPECT_EQ(EsuClasses(g, k), expected);
      EXPECT_EQ(CountSubgraphClasses(g, k), expected);
    }
  }
}

TEST(EsuDifferentialTest, RootRangesPartitionTheEnumeration) {
  // Splitting the root range anywhere must reproduce the full multiset —
  // the property the parallel sharding relies on.
  Rng rng(77);
  const Graph g = ErdosRenyi(12, 30, rng);
  const ClassCounts expected = EsuClasses(g, 4);
  for (VertexId split = 0; split <= 12; ++split) {
    ClassCounts merged;
    const auto add = [&](const std::vector<VertexId>& set) {
      ++merged[CanonicalCode(SmallGraph::InducedSubgraph(g, set))];
      return true;
    };
    EnumerateConnectedSubgraphsInRootRange(g, 4, 0, split, add);
    EnumerateConnectedSubgraphsInRootRange(g, 4, split, 12, add);
    EXPECT_EQ(merged, expected) << "split at root " << split;
  }
}

}  // namespace
}  // namespace lamo
