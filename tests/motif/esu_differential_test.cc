// Differential tests for the ESU enumeration stack, two layers deep:
//
//  1. ESU versus a naive brute-force connected-subgraph enumerator. The
//     brute force walks every C(n, k) vertex subset and keeps the connected
//     ones, so it is obviously correct (and hopeless beyond tiny n); ESU
//     must produce exactly the same multiset of canonical classes on random
//     graphs of every density.
//  2. The index-centric engine (CSR + dense bitset, and its sparse
//     CSR-only fallback) versus the original pointer-chasing walk it
//     replaced, kept as internal::EnumerateConnectedSubgraphsLegacy. These
//     are required to agree on the exact emission *sequence*, not just the
//     multiset — the pipelines' byte-identical-output guarantee rests on
//     the emission order being preserved.
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "graph/graph_index.h"
#include "motif/canon_cache.h"
#include "motif/esu.h"
#include "util/random.h"

namespace lamo {
namespace {

using ClassCounts = std::map<std::vector<uint8_t>, size_t>;

// All connected induced size-k subgraphs by subset enumeration.
ClassCounts BruteForceClasses(const Graph& g, size_t k) {
  ClassCounts counts;
  const size_t n = g.num_vertices();
  if (k == 0 || k > n) return counts;
  std::vector<VertexId> subset(k);
  // Lexicographic k-combinations of [0, n).
  for (size_t i = 0; i < k; ++i) subset[i] = static_cast<VertexId>(i);
  while (true) {
    const SmallGraph sub = SmallGraph::InducedSubgraph(g, subset);
    if (sub.IsConnected()) ++counts[CanonicalCode(sub)];
    // Advance: find the rightmost position that can still move up.
    size_t pos = k;
    while (pos > 0 && subset[pos - 1] == n - k + pos - 1) --pos;
    if (pos == 0) break;
    ++subset[pos - 1];
    for (size_t i = pos; i < k; ++i) subset[i] = subset[i - 1] + 1;
  }
  return counts;
}

// The same multiset via ESU, both through the raw enumerator and through
// the parallel class-counting pipeline.
ClassCounts EsuClasses(const Graph& g, size_t k) {
  ClassCounts counts;
  EnumerateConnectedSubgraphs(g, k, [&](const std::vector<VertexId>& set) {
    ++counts[CanonicalCode(SmallGraph::InducedSubgraph(g, set))];
    return true;
  });
  return counts;
}

TEST(EsuDifferentialTest, MatchesBruteForceOnRandomGraphs) {
  // 30 random graphs, n <= 12, densities from near-empty to near-complete,
  // every k in 3..5 — identical canonical-class multisets throughout.
  Rng rng(20070406);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 4 + rng.Uniform(9);  // 4..12
    const size_t max_edges = n * (n - 1) / 2;
    const size_t m = rng.Uniform(max_edges + 1);
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, m, graph_rng);
    for (size_t k = 3; k <= 5 && k <= n; ++k) {
      const ClassCounts expected = BruteForceClasses(g, k);
      SCOPED_TRACE(testing::Message() << "trial " << trial << " n=" << n
                                      << " m=" << m << " k=" << k);
      EXPECT_EQ(EsuClasses(g, k), expected);
      EXPECT_EQ(CountSubgraphClasses(g, k), expected);
    }
  }
}

using SetSequence = std::vector<std::vector<VertexId>>;

// The exact emission sequence of the original pointer-chasing walk.
SetSequence LegacySequence(const Graph& g, size_t k) {
  SetSequence sets;
  internal::EnumerateConnectedSubgraphsLegacy(
      g, k, [&](const std::vector<VertexId>& set) {
        sets.push_back(set);
        return true;
      });
  return sets;
}

// The exact emission sequence of the index engine over a prebuilt index
// (dense bitset or, with dense_vertex_limit = 0, the sparse CSR fallback).
SetSequence IndexSequence(const GraphIndex& index, size_t k) {
  SetSequence sets;
  EnumerateConnectedSubgraphsInRootRange(
      index, k, 0, static_cast<VertexId>(index.num_vertices()),
      [&](const std::vector<VertexId>& set) {
        sets.push_back(set);
        return true;
      });
  return sets;
}

// A graph from one of several structural families, cycling with `trial` so
// the battery covers shapes random edge counts rarely hit: stars (one hub,
// maximal degree skew), cliques (densest case), disjoint unions
// (disconnected graphs), and near-empty graphs, with Erdos-Renyi across the
// full density range in between.
Graph TrialGraph(int trial, size_t n, Rng& rng) {
  GraphBuilder b(n);
  switch (trial % 8) {
    case 0:  // star: vertex 0 adjacent to everyone
      for (VertexId v = 1; v < n; ++v) EXPECT_TRUE(b.AddEdge(0, v).ok());
      return b.Build();
    case 1:  // clique
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) {
          EXPECT_TRUE(b.AddEdge(u, v).ok());
        }
      }
      return b.Build();
    case 2: {  // two disjoint cliques (disconnected)
      const VertexId half = static_cast<VertexId>(n / 2);
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) {
          if ((u < half) == (v < half)) {
            EXPECT_TRUE(b.AddEdge(u, v).ok());
          }
        }
      }
      return b.Build();
    }
    case 3: {  // path plus isolated vertices (sparse, disconnected)
      const VertexId end = static_cast<VertexId>(n - n / 3);
      for (VertexId v = 1; v < end; ++v) {
        EXPECT_TRUE(b.AddEdge(v - 1, v).ok());
      }
      return b.Build();
    }
    default: {  // Erdos-Renyi across the density range
      const size_t max_edges = n * (n - 1) / 2;
      Rng graph_rng(rng.Next64());
      return ErdosRenyi(n, rng.Uniform(max_edges + 1), graph_rng);
    }
  }
}

TEST(EsuDifferentialTest, IndexEngineMatchesLegacyWalkOn120Graphs) {
  // 120 graphs (stars, cliques, disjoint unions, paths, random at all
  // densities), n <= 14, every k in 3..5. The dense-bitset engine, the
  // forced-sparse engine, and the legacy walk must emit the *same sequence*
  // of vertex sets; the class-counting pipeline (with and without a shared
  // canonicalization table) and the brute force must agree on the multiset.
  Rng rng(20070715);
  for (int trial = 0; trial < 120; ++trial) {
    const size_t n = 4 + rng.Uniform(11);  // 4..14
    const Graph g = TrialGraph(trial, n, rng);
    const GraphIndex dense_index(g);
    const GraphIndex sparse_index(g, 0);
    ASSERT_TRUE(dense_index.dense());
    ASSERT_FALSE(sparse_index.dense());
    for (size_t k = 3; k <= 5 && k <= n; ++k) {
      SCOPED_TRACE(testing::Message()
                   << "trial " << trial << " n=" << n
                   << " m=" << g.num_edges() << " k=" << k);
      const SetSequence legacy = LegacySequence(g, k);
      EXPECT_EQ(IndexSequence(dense_index, k), legacy);
      EXPECT_EQ(IndexSequence(sparse_index, k), legacy);

      const ClassCounts expected = BruteForceClasses(g, k);
      EXPECT_EQ(CountSubgraphClasses(g, k), expected);
      SharedCanonCache shared(k);
      EXPECT_EQ(CountSubgraphClasses(g, k, &shared), expected);
    }
  }
}

TEST(EsuDifferentialTest, IndexEngineHonorsCallbackAbort) {
  // Returning false must stop the enumeration immediately on both engine
  // paths, exactly as the legacy walk does.
  Rng rng(11);
  const Graph g = ErdosRenyi(12, 40, rng);
  const SetSequence all = LegacySequence(g, 4);
  ASSERT_GT(all.size(), 5u);
  for (const size_t limit : {size_t{1}, size_t{5}, all.size() - 1}) {
    for (const size_t dense_limit : {GraphIndex::kDenseVertexLimit,
                                     size_t{0}}) {
      const GraphIndex index(g, dense_limit);
      SetSequence prefix;
      EnumerateConnectedSubgraphsInRootRange(
          index, 4, 0, 12, [&](const std::vector<VertexId>& set) {
            prefix.push_back(set);
            return prefix.size() < limit;
          });
      EXPECT_EQ(prefix.size(), limit);
      EXPECT_EQ(prefix, SetSequence(all.begin(), all.begin() + limit));
    }
  }
}

TEST(EsuDifferentialTest, RootRangesPartitionTheEnumeration) {
  // Splitting the root range anywhere must reproduce the full multiset —
  // the property the parallel sharding relies on.
  Rng rng(77);
  const Graph g = ErdosRenyi(12, 30, rng);
  const ClassCounts expected = EsuClasses(g, 4);
  for (VertexId split = 0; split <= 12; ++split) {
    ClassCounts merged;
    const auto add = [&](const std::vector<VertexId>& set) {
      ++merged[CanonicalCode(SmallGraph::InducedSubgraph(g, set))];
      return true;
    };
    EnumerateConnectedSubgraphsInRootRange(g, 4, 0, split, add);
    EnumerateConnectedSubgraphsInRootRange(g, 4, split, 12, add);
    EXPECT_EQ(merged, expected) << "split at root " << split;
  }
}

}  // namespace
}  // namespace lamo
