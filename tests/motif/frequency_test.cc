#include "motif/frequency.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

Motif TriangleMotifWithOccurrences(
    std::vector<std::vector<VertexId>> occurrence_sets) {
  Motif m;
  m.pattern = SmallGraph(3);
  m.pattern.AddEdge(0, 1);
  m.pattern.AddEdge(1, 2);
  m.pattern.AddEdge(0, 2);
  for (auto& set : occurrence_sets) {
    m.occurrences.push_back(MotifOccurrence{std::move(set)});
  }
  m.frequency = m.occurrences.size();
  return m;
}

TEST(FrequencyTest, DisjointOccurrencesAgreeAcrossMeasures) {
  const Motif m =
      TriangleMotifWithOccurrences({{0, 1, 2}, {3, 4, 5}, {6, 7, 8}});
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF1AllOccurrences), 3u);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF2EdgeDisjoint), 3u);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF3VertexDisjoint), 3u);
}

TEST(FrequencyTest, SharedVertexCountsForF2NotF3) {
  // Two triangles sharing exactly one vertex: vertex-disjointness rejects
  // the second; edge-disjointness keeps both.
  const Motif m = TriangleMotifWithOccurrences({{0, 1, 2}, {2, 3, 4}});
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF1AllOccurrences), 2u);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF2EdgeDisjoint), 2u);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF3VertexDisjoint), 1u);
}

TEST(FrequencyTest, SharedEdgeRejectedByF2) {
  // Triangles {0,1,2} and {0,1,3} share the edge 0-1.
  const Motif m = TriangleMotifWithOccurrences({{0, 1, 2}, {0, 1, 3}});
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF2EdgeDisjoint), 1u);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF3VertexDisjoint), 1u);
}

TEST(FrequencyTest, EdgeDisjointnessUsesMappedPatternEdges) {
  // A path pattern 0-1-2: occurrences (0,1,2) and (2,1,0)... same mapped
  // edges; but (0,1,2) and (3,1,2)? mapped edges {0-1,1-2} vs {3-1,1-2}
  // share 1-2.
  Motif m;
  m.pattern = SmallGraph(3);
  m.pattern.AddEdge(0, 1);
  m.pattern.AddEdge(1, 2);
  m.occurrences.push_back(MotifOccurrence{{0, 1, 2}});
  m.occurrences.push_back(MotifOccurrence{{3, 1, 2}});
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF2EdgeDisjoint), 1u);
  // But (0,1,2) and (2,3,4) share only vertex 2 and no edge.
  m.occurrences[1] = MotifOccurrence{{2, 3, 4}};
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF2EdgeDisjoint), 2u);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF3VertexDisjoint), 1u);
}

TEST(FrequencyTest, MonotoneOrdering) {
  // F3 <= F2 <= F1 always.
  const Motif m = TriangleMotifWithOccurrences(
      {{0, 1, 2}, {2, 3, 4}, {0, 1, 5}, {6, 7, 8}, {8, 9, 0}});
  const size_t f1 = Frequency(m, FrequencyMeasure::kF1AllOccurrences);
  const size_t f2 = Frequency(m, FrequencyMeasure::kF2EdgeDisjoint);
  const size_t f3 = Frequency(m, FrequencyMeasure::kF3VertexDisjoint);
  EXPECT_LE(f3, f2);
  EXPECT_LE(f2, f1);
}

TEST(FrequencyTest, EmptyOccurrences) {
  Motif m;
  m.pattern = SmallGraph(3);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF2EdgeDisjoint), 0u);
  EXPECT_EQ(Frequency(m, FrequencyMeasure::kF3VertexDisjoint), 0u);
}

}  // namespace
}  // namespace lamo
