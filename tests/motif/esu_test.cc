#include "motif/esu.h"

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "graph/isomorphism.h"

namespace lamo {
namespace {

Graph MakeK4() {
  GraphBuilder b(4);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(b.AddEdge(i, j).ok());
    }
  }
  return b.Build();
}

Graph MakePath(size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) {
    EXPECT_TRUE(b.AddEdge(v, v + 1).ok());
  }
  return b.Build();
}

size_t CountSets(const Graph& g, size_t k) {
  size_t count = 0;
  EnumerateConnectedSubgraphs(g, k, [&](const std::vector<VertexId>&) {
    ++count;
    return true;
  });
  return count;
}

TEST(EsuTest, K4AllTriples) {
  EXPECT_EQ(CountSets(MakeK4(), 3), 4u);  // C(4,3)
}

TEST(EsuTest, PathConnectedSubsets) {
  // A path of n vertices has exactly n-k+1 connected size-k subsets.
  const Graph path = MakePath(10);
  EXPECT_EQ(CountSets(path, 3), 8u);
  EXPECT_EQ(CountSets(path, 5), 6u);
  EXPECT_EQ(CountSets(path, 10), 1u);
}

TEST(EsuTest, EachSetEmittedOnce) {
  Rng rng(21);
  const Graph g = ErdosRenyi(25, 60, rng);
  std::set<std::vector<VertexId>> seen;
  EnumerateConnectedSubgraphs(g, 4, [&](const std::vector<VertexId>& set) {
    EXPECT_TRUE(seen.insert(set).second) << "duplicate vertex set";
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    return true;
  });
  EXPECT_FALSE(seen.empty());
}

TEST(EsuTest, SetsAreConnected) {
  Rng rng(22);
  const Graph g = ErdosRenyi(20, 40, rng);
  EnumerateConnectedSubgraphs(g, 4, [&](const std::vector<VertexId>& set) {
    EXPECT_TRUE(SmallGraph::InducedSubgraph(g, set).IsConnected());
    return true;
  });
}

TEST(EsuTest, EarlyStop) {
  const Graph k4 = MakeK4();
  size_t count = 0;
  EnumerateConnectedSubgraphs(k4, 3, [&](const std::vector<VertexId>&) {
    return ++count < 2;
  });
  EXPECT_EQ(count, 2u);
}

TEST(EsuTest, DegenerateSizes) {
  const Graph k4 = MakeK4();
  EXPECT_EQ(CountSets(k4, 0), 0u);
  EXPECT_EQ(CountSets(k4, 1), 4u);
  EXPECT_EQ(CountSets(k4, 5), 0u);  // larger than the graph
}

TEST(EsuTest, ClassCountsAgreeWithVf2) {
  // For every class ESU finds, VF2 occurrence counting must agree.
  Rng rng(23);
  const Graph g = ErdosRenyi(22, 45, rng);
  const auto classes = CountSubgraphClasses(g, 4);
  size_t total = 0;
  for (const auto& [code, count] : classes) {
    total += count;
    // Reconstruct one representative by finding a set with this code.
    SmallGraph representative(0);
    EnumerateConnectedSubgraphs(g, 4, [&](const std::vector<VertexId>& set) {
      const SmallGraph sub = SmallGraph::InducedSubgraph(g, set);
      if (CanonicalCode(sub) == code) {
        representative = sub;
        return false;
      }
      return true;
    });
    ASSERT_EQ(representative.num_vertices(), 4u);
    EXPECT_EQ(CountOccurrences(representative, g), count);
  }
  EXPECT_EQ(total, CountSets(g, 4));
}

TEST(RandEsuTest, FullProbabilityMatchesExhaustive) {
  Rng rng(24);
  const Graph g = ErdosRenyi(20, 45, rng);
  const auto exact = CountSubgraphClasses(g, 3);
  Rng sample_rng(25);
  const auto sampled =
      SampleSubgraphClasses(g, 3, {1.0, 1.0, 1.0}, sample_rng);
  ASSERT_EQ(sampled.estimated_counts.size(), exact.size());
  for (const auto& [code, count] : exact) {
    EXPECT_NEAR(sampled.estimated_counts.at(code),
                static_cast<double>(count), 1e-9);
  }
}

TEST(RandEsuTest, PartialSamplingUnbiasedish) {
  Rng rng(26);
  const Graph g = BarabasiAlbert(150, 3, rng);
  const auto exact = CountSubgraphClasses(g, 3);
  double exact_total = 0;
  for (const auto& [code, count] : exact) exact_total += count;

  // Average several sampling runs; the estimate of the total should land
  // within ~15% of the truth.
  double estimate_sum = 0.0;
  const int runs = 8;
  for (int r = 0; r < runs; ++r) {
    Rng sample_rng(100 + r);
    const auto sampled =
        SampleSubgraphClasses(g, 3, {1.0, 0.7, 0.7}, sample_rng);
    estimate_sum += sampled.estimated_total;
    EXPECT_LT(sampled.samples, static_cast<size_t>(exact_total));
  }
  EXPECT_NEAR(estimate_sum / runs, exact_total, exact_total * 0.15);
}

}  // namespace
}  // namespace lamo
