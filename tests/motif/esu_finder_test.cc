#include "motif/esu_finder.h"

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/miner.h"

namespace lamo {
namespace {

TEST(EsuFinderTest, AgreesWithLevelWiseMiner) {
  // Both pipelines must find exactly the same frequent classes with the
  // same frequencies and aligned occurrences.
  Rng rng(91);
  const Graph g = ErdosRenyi(30, 70, rng);

  EsuMotifConfig esu_config;
  esu_config.size = 4;
  esu_config.min_frequency = 3;
  esu_config.num_random_networks = 0;  // keep everything
  auto esu_motifs = FindNetworkMotifsEsu(g, esu_config);

  MinerConfig miner_config;
  miner_config.min_size = 4;
  miner_config.max_size = 4;
  miner_config.min_frequency = 3;
  auto miner_motifs = FrequentSubgraphMiner(g, miner_config).Mine();

  ASSERT_EQ(esu_motifs.size(), miner_motifs.size());
  std::map<std::vector<uint8_t>, size_t> esu_freq, miner_freq;
  for (const Motif& m : esu_motifs) esu_freq[m.code] = m.frequency;
  for (const Motif& m : miner_motifs) miner_freq[m.code] = m.frequency;
  EXPECT_EQ(esu_freq, miner_freq);
}

TEST(EsuFinderTest, OccurrencesAreAligned) {
  Rng rng(92);
  const Graph g = ErdosRenyi(25, 55, rng);
  EsuMotifConfig config;
  config.size = 3;
  config.min_frequency = 1;
  config.num_random_networks = 0;
  for (const Motif& m : FindNetworkMotifsEsu(g, config)) {
    for (const MotifOccurrence& occ : m.occurrences) {
      for (uint32_t a = 0; a < 3; ++a) {
        for (uint32_t b = a + 1; b < 3; ++b) {
          EXPECT_EQ(m.pattern.HasEdge(a, b),
                    g.HasEdge(occ.proteins[a], occ.proteins[b]));
        }
      }
    }
  }
}

TEST(EsuFinderTest, UniquenessFiltersCommonShapes) {
  // Planted chordless squares on a sparse background: the square passes,
  // the ubiquitous path does not.
  GraphBuilder builder(80);
  for (int s = 0; s < 12; ++s) {
    const VertexId base = static_cast<VertexId>(4 * s);
    ASSERT_TRUE(builder.AddEdge(base, base + 1).ok());
    ASSERT_TRUE(builder.AddEdge(base + 1, base + 2).ok());
    ASSERT_TRUE(builder.AddEdge(base + 2, base + 3).ok());
    ASSERT_TRUE(builder.AddEdge(base + 3, base).ok());
  }
  for (VertexId v = 48; v + 1 < 80; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  Rng rng(93);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(builder
                    .AddEdge(static_cast<VertexId>(rng.Uniform(48)),
                             48 + static_cast<VertexId>(rng.Uniform(32)))
                    .ok());
  }
  const Graph g = builder.Build();

  EsuMotifConfig config;
  config.size = 4;
  config.min_frequency = 8;
  config.num_random_networks = 10;
  config.uniqueness_threshold = 0.9;
  config.seed = 3;
  const auto motifs = FindNetworkMotifsEsu(g, config);

  SmallGraph square(4);
  square.AddEdge(0, 1);
  square.AddEdge(1, 2);
  square.AddEdge(2, 3);
  square.AddEdge(3, 0);
  bool square_found = false;
  for (const Motif& m : motifs) {
    EXPECT_GE(m.uniqueness, 0.9);
    if (m.code == CanonicalCode(square)) square_found = true;
  }
  EXPECT_TRUE(square_found);
}

TEST(EsuFinderTest, Deterministic) {
  Rng rng(94);
  const Graph g = BarabasiAlbert(60, 2, rng);
  EsuMotifConfig config;
  config.size = 3;
  config.min_frequency = 5;
  config.num_random_networks = 4;
  config.uniqueness_threshold = -1.0;
  const auto a = FindNetworkMotifsEsu(g, config);
  const auto b = FindNetworkMotifsEsu(g, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].code, b[i].code);
    EXPECT_EQ(a[i].frequency, b[i].frequency);
    EXPECT_DOUBLE_EQ(a[i].uniqueness, b[i].uniqueness);
  }
}

}  // namespace
}  // namespace lamo
