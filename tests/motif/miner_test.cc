#include "motif/miner.h"

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/esu.h"

namespace lamo {
namespace {

TEST(MinerTest, MatchesEsuWhenUnpruned) {
  // With min_frequency 1 and no caps, the level-wise grower must find
  // exactly the classes and counts that exhaustive ESU finds.
  Rng rng(31);
  const Graph g = ErdosRenyi(20, 40, rng);
  MinerConfig config;
  config.min_size = 3;
  config.max_size = 4;
  config.min_frequency = 1;
  config.max_occurrences_per_pattern = 0;
  FrequentSubgraphMiner miner(g, config);
  const auto motifs = miner.Mine();

  for (size_t k = 3; k <= 4; ++k) {
    const auto exact = CountSubgraphClasses(g, k);
    std::map<std::vector<uint8_t>, size_t> mined;
    for (const Motif& m : motifs) {
      if (m.size() == k) mined[m.code] = m.frequency;
    }
    EXPECT_EQ(mined, exact) << "size " << k;
  }
}

TEST(MinerTest, FrequencyThresholdPrunes) {
  Rng rng(32);
  const Graph g = ErdosRenyi(30, 60, rng);
  MinerConfig config;
  config.min_size = 3;
  config.max_size = 3;
  config.min_frequency = 5;
  FrequentSubgraphMiner miner(g, config);
  for (const Motif& m : miner.Mine()) {
    EXPECT_GE(m.frequency, 5u);
  }
}

TEST(MinerTest, OccurrencesAreAlignedEmbeddings) {
  Rng rng(33);
  const Graph g = ErdosRenyi(25, 55, rng);
  MinerConfig config;
  config.min_size = 3;
  config.max_size = 4;
  config.min_frequency = 2;
  FrequentSubgraphMiner miner(g, config);
  for (const Motif& m : miner.Mine()) {
    for (const MotifOccurrence& occ : m.occurrences) {
      ASSERT_EQ(occ.proteins.size(), m.size());
      // The embedding maps motif edges to graph edges and non-edges to
      // non-edges (vertex-induced occurrence).
      for (uint32_t a = 0; a < m.size(); ++a) {
        for (uint32_t b = a + 1; b < m.size(); ++b) {
          EXPECT_EQ(m.pattern.HasEdge(a, b),
                    g.HasEdge(occ.proteins[a], occ.proteins[b]));
        }
      }
    }
  }
}

TEST(MinerTest, OccurrenceSetsDistinct) {
  Rng rng(34);
  const Graph g = ErdosRenyi(25, 55, rng);
  MinerConfig config;
  config.min_size = 3;
  config.max_size = 4;
  config.min_frequency = 1;
  FrequentSubgraphMiner miner(g, config);
  for (const Motif& m : miner.Mine()) {
    std::set<std::vector<VertexId>> sets;
    for (const MotifOccurrence& occ : m.occurrences) {
      std::vector<VertexId> sorted = occ.proteins;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(sets.insert(sorted).second);
    }
  }
}

TEST(MinerTest, PlantedCliquePatternFound) {
  // Plant 12 disjoint triangles on top of a sparse random background.
  Rng rng(35);
  GraphBuilder builder(100);
  for (int t = 0; t < 12; ++t) {
    const VertexId base = static_cast<VertexId>(3 * t);
    ASSERT_TRUE(builder.AddEdge(base, base + 1).ok());
    ASSERT_TRUE(builder.AddEdge(base + 1, base + 2).ok());
    ASSERT_TRUE(builder.AddEdge(base, base + 2).ok());
  }
  // Background tail so the graph is bigger than the plants.
  for (VertexId v = 36; v + 1 < 100; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  const Graph g = builder.Build();

  MinerConfig config;
  config.min_size = 3;
  config.max_size = 3;
  config.min_frequency = 10;
  FrequentSubgraphMiner miner(g, config);
  const auto motifs = miner.Mine();

  SmallGraph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  const auto triangle_code = CanonicalCode(triangle);
  bool found = false;
  for (const Motif& m : motifs) {
    if (m.code == triangle_code) {
      found = true;
      EXPECT_EQ(m.frequency, 12u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, OccurrenceCapBoundsMemory) {
  Rng rng(36);
  const Graph g = BarabasiAlbert(120, 3, rng);
  MinerConfig config;
  config.min_size = 3;
  config.max_size = 3;
  config.min_frequency = 1;
  config.max_occurrences_per_pattern = 10;
  FrequentSubgraphMiner miner(g, config);
  for (const Motif& m : miner.Mine()) {
    EXPECT_LE(m.occurrences.size(), 10u);
  }
}

TEST(MinerTest, BeamKeepsMostFrequent) {
  Rng rng(37);
  const Graph g = ErdosRenyi(40, 120, rng);
  MinerConfig unlimited;
  unlimited.min_size = 3;
  unlimited.max_size = 3;
  unlimited.min_frequency = 1;
  const auto all = FrequentSubgraphMiner(g, unlimited).Mine();

  MinerConfig beamed = unlimited;
  beamed.max_patterns_per_level = 1;
  const auto top = FrequentSubgraphMiner(g, beamed).Mine();
  ASSERT_EQ(top.size(), 1u);
  size_t max_freq = 0;
  for (const Motif& m : all) max_freq = std::max(max_freq, m.frequency);
  EXPECT_EQ(top[0].frequency, max_freq);
}

}  // namespace
}  // namespace lamo
