#include "motif/directed_motifs.h"

#include <gtest/gtest.h>

#include "motif/esu.h"
#include "synth/grn_generator.h"

namespace lamo {
namespace {

DiGraph SmallGrn(Rng& rng, size_t genes, size_t arcs) {
  DiGraphBuilder b(genes);
  for (size_t i = 0; i < arcs; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(genes / 5));
    const VertexId t = static_cast<VertexId>(rng.Uniform(genes));
    EXPECT_TRUE(b.AddArc(s, t).ok());
  }
  return b.Build();
}

TEST(ArcSwapRewireTest, PreservesInOutDegrees) {
  Rng rng(71);
  const DiGraph g = SmallGrn(rng, 100, 300);
  const DiGraph rewired = ArcSwapRewire(g, 3.0, rng);
  EXPECT_EQ(rewired.num_arcs(), g.num_arcs());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(rewired.OutDegree(v), g.OutDegree(v)) << v;
    EXPECT_EQ(rewired.InDegree(v), g.InDegree(v)) << v;
  }
}

TEST(ArcSwapRewireTest, ChangesArcs) {
  Rng rng(72);
  const DiGraph g = SmallGrn(rng, 100, 300);
  const DiGraph rewired = ArcSwapRewire(g, 3.0, rng);
  EXPECT_NE(rewired.Arcs(), g.Arcs());
}

TEST(DirectedClassesTest, CountsMatchEnumeration) {
  Rng rng(73);
  const DiGraph g = SmallGrn(rng, 60, 150);
  const auto classes = CountDirectedSubgraphClasses(g, 3);
  size_t total = 0;
  for (const auto& [code, count] : classes) total += count;
  // The total must equal the number of weakly-connected triples.
  size_t triples = 0;
  const Graph underlying = g.Underlying();
  EnumerateConnectedSubgraphs(underlying, 3,
                              [&](const std::vector<VertexId>&) {
                                ++triples;
                                return true;
                              });
  EXPECT_EQ(total, triples);
  EXPECT_GT(classes.size(), 1u);
}

TEST(DirectedMotifsTest, RecoversPlantedFfl) {
  GrnConfig config;
  config.num_genes = 300;
  config.background_arcs = 500;
  config.planted_ffls = 40;
  config.seed = 7;
  const GrnDataset dataset = BuildGrnDataset(config);

  DirectedMotifConfig motif_config;
  motif_config.size = 3;
  motif_config.min_frequency = 20;
  motif_config.num_random_networks = 8;
  motif_config.uniqueness_threshold = 0.9;
  motif_config.seed = 11;
  const auto motifs = FindDirectedNetworkMotifs(dataset.grn, motif_config);

  SmallDigraph ffl(3);
  ffl.AddArc(0, 1);
  ffl.AddArc(0, 2);
  ffl.AddArc(1, 2);
  const auto ffl_code = DirectedCanonicalCode(ffl);
  bool found = false;
  for (const DirectedMotif& m : motifs) {
    if (m.as_motif.code == ffl_code) {
      found = true;
      EXPECT_GE(m.as_motif.frequency, 40u);
      EXPECT_GE(m.as_motif.uniqueness, 0.9);
    }
  }
  EXPECT_TRUE(found) << "the planted feed-forward loop must be a motif";
}

TEST(DirectedMotifsTest, OccurrencesAlignedToDirectedCanonicalOrder) {
  GrnConfig config;
  config.num_genes = 200;
  config.background_arcs = 300;
  config.planted_ffls = 25;
  config.seed = 13;
  const GrnDataset dataset = BuildGrnDataset(config);

  DirectedMotifConfig motif_config;
  motif_config.size = 3;
  motif_config.min_frequency = 10;
  motif_config.num_random_networks = 0;  // keep everything
  motif_config.uniqueness_threshold = 0.0;
  const auto motifs = FindDirectedNetworkMotifs(dataset.grn, motif_config);
  ASSERT_FALSE(motifs.empty());
  for (const DirectedMotif& m : motifs) {
    for (const MotifOccurrence& occ : m.as_motif.occurrences) {
      // The induced digraph at the aligned positions must match the
      // canonical pattern arc for arc.
      for (uint32_t a = 0; a < 3; ++a) {
        for (uint32_t b = 0; b < 3; ++b) {
          if (a == b) continue;
          EXPECT_EQ(m.pattern.HasArc(a, b),
                    dataset.grn.HasArc(occ.proteins[a], occ.proteins[b]));
        }
      }
    }
  }
}

TEST(DirectedMotifsTest, SymmetricSetsOverridePopulated) {
  GrnConfig config;
  config.num_genes = 150;
  config.background_arcs = 250;
  config.planted_ffls = 15;
  const GrnDataset dataset = BuildGrnDataset(config);
  DirectedMotifConfig motif_config;
  motif_config.size = 3;
  motif_config.min_frequency = 5;
  motif_config.num_random_networks = 0;
  const auto motifs = FindDirectedNetworkMotifs(dataset.grn, motif_config);
  for (const DirectedMotif& m : motifs) {
    size_t covered = 0;
    for (const auto& cls : m.as_motif.symmetric_sets_override) {
      covered += cls.size();
    }
    EXPECT_EQ(covered, 3u) << "override must partition the vertices";
  }
}

TEST(GrnGeneratorTest, ShapeAndReproducibility) {
  GrnConfig config;
  config.num_genes = 250;
  const GrnDataset a = BuildGrnDataset(config);
  const GrnDataset b = BuildGrnDataset(config);
  EXPECT_EQ(a.grn.Arcs(), b.grn.Arcs());
  EXPECT_EQ(a.ffls.size(), config.planted_ffls);
  for (const auto& ffl : a.ffls) {
    EXPECT_TRUE(a.grn.HasArc(ffl[0], ffl[1]));
    EXPECT_TRUE(a.grn.HasArc(ffl[0], ffl[2]));
    EXPECT_TRUE(a.grn.HasArc(ffl[1], ffl[2]));
  }
  EXPECT_GT(a.annotations.CountAnnotated(), 150u);
}

}  // namespace
}  // namespace lamo
