// The headline differential battery for the dynamic-interactome path.
//
// The incremental maintenance claim is: after any sequence of edge
// additions and deletions, an occurrence store patched only through
// EnumeratePairSubgraphs deltas (the connected k-sets containing *both*
// changed endpoints) is exactly — multiset-per-canonical-class exactly —
// the store a from-scratch re-mine of the final graph would build. The
// battery proves it over random graphs x random mutation sequences on both
// GraphIndex layouts, after first pinning the three primitives the delta
// math rests on: the pair-bit layout, the packed-mask connectivity test,
// and the exactly-once/complete enumeration of pair-anchored sets.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_index.h"
#include "graph/mutable_index.h"
#include "graph/small_graph.h"
#include "motif/canon_cache.h"
#include "motif/delta_esu.h"
#include "motif/esu_engine.h"
#include "util/random.h"

namespace lamo {
namespace {

TEST(PairBitIndexTest, MatchesInducedBitsAndUnpackBitsLayout) {
  // PairBitIndex must name exactly the bit InducedBits sets for each vertex
  // pair, and agree with SharedCanonCache::UnpackBits — the delta
  // classifier clears the anchor pair's bit by this index, so a layout
  // mismatch would corrupt every "without the edge" pattern.
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 6 + rng.Uniform(6);  // 6..11
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, rng.Uniform(n * (n - 1) / 2 + 1), graph_rng);
    const GraphIndex index(g);
    for (size_t k = 2; k <= 5 && k <= n; ++k) {
      // A random ascending k-subset.
      std::vector<VertexId> verts;
      while (verts.size() < k) {
        const VertexId v = static_cast<VertexId>(rng.Uniform(n));
        if (!std::count(verts.begin(), verts.end(), v)) verts.push_back(v);
      }
      std::sort(verts.begin(), verts.end());
      const uint64_t bits = index.InducedBits(verts.data(), k);
      const SmallGraph unpacked = SharedCanonCache::UnpackBits(bits, k);
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = i + 1; j < k; ++j) {
          const bool bit_set =
              (bits >> PairBitIndex(i, j, k)) & uint64_t{1};
          EXPECT_EQ(bit_set, g.HasEdge(verts[i], verts[j]))
              << "n=" << n << " k=" << k << " i=" << i << " j=" << j;
          EXPECT_EQ(bit_set, unpacked.HasEdge(i, j));
        }
      }
    }
  }
}

TEST(MaskConnectedTest, MatchesSmallGraphConnectivity) {
  // Exhaustive for k <= 5, sampled above: MaskConnected must agree with
  // SmallGraph::IsConnected on the unpacked graph for every mask.
  for (size_t k = 2; k <= 5; ++k) {
    const uint64_t masks = uint64_t{1} << (k * (k - 1) / 2);
    for (uint64_t bits = 0; bits < masks; ++bits) {
      EXPECT_EQ(MaskConnected(bits, k),
                SharedCanonCache::UnpackBits(bits, k).IsConnected())
          << "k=" << k << " bits=" << bits;
    }
  }
  Rng rng(202);
  for (size_t k = 6; k <= 8; ++k) {
    for (int trial = 0; trial < 2000; ++trial) {
      const uint64_t bits = rng.Next64() & ((uint64_t{1} << (k * (k - 1) / 2)) - 1);
      EXPECT_EQ(MaskConnected(bits, k),
                SharedCanonCache::UnpackBits(bits, k).IsConnected())
          << "k=" << k << " bits=" << bits;
    }
  }
}

// Every connected k-set containing u and v, by filtering a full ESU run.
std::set<std::vector<VertexId>> BruteForcePairSets(const GraphIndex& index,
                                                   VertexId u, VertexId v,
                                                   size_t k) {
  std::set<std::vector<VertexId>> sets;
  esu_internal::RunEsu(index, k, 0,
                       static_cast<VertexId>(index.num_vertices()),
                       [&](const VertexId* set, size_t size) {
                         const bool has_u = std::count(set, set + size, u);
                         const bool has_v = std::count(set, set + size, v);
                         if (has_u && has_v) {
                           sets.emplace(set, set + size);
                         }
                         return true;
                       });
  return sets;
}

TEST(EnumeratePairSubgraphsTest, ExactlyOnceAndCompleteOnRandomGraphs) {
  // The pair-anchored walk must emit every connected k-set containing both
  // endpoints exactly once, on the dense and the sparse index alike, with
  // self-consistent bit packings.
  Rng rng(303);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 5 + rng.Uniform(10);  // 5..14
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, rng.Uniform(n * (n - 1) / 2 + 1), graph_rng);
    if (g.num_edges() == 0) continue;
    // A random edge: walk Edges() a random distance.
    const auto edges = g.Edges();
    const auto [u, v] = edges[rng.Uniform(edges.size())];
    for (const size_t dense_limit :
         {GraphIndex::kDenseVertexLimit, size_t{0}}) {
      const GraphIndex index(g, dense_limit);
      for (size_t k = 2; k <= 5 && k <= n; ++k) {
        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << " n=" << n << " m="
                     << g.num_edges() << " edge {" << u << "," << v
                     << "} k=" << k << " dense_limit=" << dense_limit);
        std::vector<PairSubgraph> subs;
        EnumeratePairSubgraphs(index, u, v, k, &subs);
        std::set<std::vector<VertexId>> seen;
        for (const PairSubgraph& ps : subs) {
          ASSERT_EQ(ps.verts.size(), k);
          EXPECT_TRUE(std::is_sorted(ps.verts.begin(), ps.verts.end()));
          EXPECT_TRUE(seen.insert(ps.verts).second)
              << "duplicate emission";
          EXPECT_EQ(ps.bits_with, index.InducedBits(ps.verts.data(), k));
          EXPECT_TRUE(MaskConnected(ps.bits_with, k));
          EXPECT_EQ(ps.connected_without,
                    k > 2 && MaskConnected(ps.bits_without, k));
          // bits_without differs from bits_with in exactly the anchor bit.
          const uint64_t diff = ps.bits_with ^ ps.bits_without;
          EXPECT_EQ(diff & (diff - 1), 0u);
          EXPECT_NE(diff, 0u);
        }
        EXPECT_EQ(seen, BruteForcePairSets(index, u, v, k));
      }
    }
  }
}

TEST(EnumeratePairSubgraphsTest, ClosedFormCounts) {
  // Clique K_n, edge {0, 1}: every k-set containing both endpoints is
  // connected, so the count is C(n-2, k-2), and every set stays connected
  // without the edge for k > 2.
  {
    const size_t n = 9;
    GraphBuilder b(n);
    for (VertexId x = 0; x < n; ++x) {
      for (VertexId y = x + 1; y < n; ++y) ASSERT_TRUE(b.AddEdge(x, y).ok());
    }
    const Graph g = b.Build();
    const GraphIndex index(g);
    const auto choose = [](size_t a, size_t c) {
      size_t r = 1;
      for (size_t i = 0; i < c; ++i) r = r * (a - i) / (i + 1);
      return r;
    };
    for (size_t k = 2; k <= 5; ++k) {
      std::vector<PairSubgraph> subs;
      EnumeratePairSubgraphs(index, 0, 1, k, &subs);
      EXPECT_EQ(subs.size(), choose(n - 2, k - 2)) << "clique k=" << k;
      for (const PairSubgraph& ps : subs) {
        EXPECT_EQ(ps.connected_without, k > 2);
      }
    }
  }
  // Star with hub 0, edge {0, 1}: k-sets must take the hub, leaf 1, and
  // k-2 of the other n-2 leaves — C(n-2, k-2) again — but removing the
  // hub-leaf edge always strands leaf 1.
  {
    const size_t n = 10;
    GraphBuilder b(n);
    for (VertexId leaf = 1; leaf < n; ++leaf) {
      ASSERT_TRUE(b.AddEdge(0, leaf).ok());
    }
    const Graph g = b.Build();
    const GraphIndex index(g);
    size_t expected = 1;  // C(8, k-2) accumulated below
    for (size_t k = 2; k <= 5; ++k) {
      std::vector<PairSubgraph> subs;
      EnumeratePairSubgraphs(index, 0, 1, k, &subs);
      EXPECT_EQ(subs.size(), expected) << "star k=" << k;
      expected = expected * (n - k) / (k - 1);  // C(n-2,k-2) -> C(n-2,k-1)
      for (const PairSubgraph& ps : subs) {
        EXPECT_FALSE(ps.connected_without);
      }
    }
  }
  // Path 0-1-...-n-1, middle edge {i, i+1}: connected k-sets are exactly
  // the length-k windows covering the edge, and cutting the edge splits
  // every window.
  {
    const size_t n = 12;
    GraphBuilder b(n);
    for (VertexId x = 0; x + 1 < n; ++x) ASSERT_TRUE(b.AddEdge(x, x + 1).ok());
    const Graph g = b.Build();
    const GraphIndex index(g);
    for (const VertexId i : {VertexId{0}, VertexId{5}, VertexId{10}}) {
      for (size_t k = 2; k <= 5; ++k) {
        std::vector<PairSubgraph> subs;
        EnumeratePairSubgraphs(index, i, i + 1, k, &subs);
        const size_t lo = i + 1 >= k ? i + 2 - k : 0;  // first window start
        const size_t hi = std::min<size_t>(i, n - k);  // last window start
        EXPECT_EQ(subs.size(), hi - lo + 1) << "path i=" << i << " k=" << k;
        for (const PairSubgraph& ps : subs) {
          EXPECT_FALSE(ps.connected_without);
        }
      }
    }
  }
}

// ---- The incremental-vs-full differential ---------------------------------

// Occurrence store: canonical code -> multiset of sorted vertex sets, the
// exact shape the serve-path update engine maintains per motif pattern.
using Store = std::map<std::string, std::multiset<std::vector<VertexId>>>;

std::string CodeKey(const CanonicalResult& canon) {
  return std::string(canon.code.begin(), canon.code.end());
}

// From-scratch re-mine of every connected k-set, the ground truth.
Store FullMine(const GraphIndex& index, size_t k, SharedCanonCache* cache) {
  Store store;
  esu_internal::RunEsu(index, k, 0,
                       static_cast<VertexId>(index.num_vertices()),
                       [&](const VertexId* set, size_t size) {
                         const uint64_t bits = index.InducedBits(set, size);
                         store[CodeKey(cache->Lookup(bits))].emplace(
                             set, set + size);
                         return true;
                       });
  return store;
}

void EraseOne(Store* store, const std::string& key,
              const std::vector<VertexId>& verts) {
  auto it = store->find(key);
  ASSERT_NE(it, store->end()) << "removing from absent pattern class";
  auto inst = it->second.find(verts);
  ASSERT_NE(inst, it->second.end()) << "removing absent occurrence";
  it->second.erase(inst);
  if (it->second.empty()) store->erase(it);
}

// Patches one store for one edge mutation using only the pair-anchored
// delta sets — the operation under test. The graph must already contain
// the edge (for deletions: call before removing it).
void PatchStore(MutableGraphIndex* graph, Store* store, bool add, VertexId u,
                VertexId v, size_t k, SharedCanonCache* cache) {
  std::vector<PairSubgraph> subs;
  EnumeratePairSubgraphs(graph->index(), u, v, k, &subs);
  for (const PairSubgraph& ps : subs) {
    if (add) {
      if (ps.connected_without) {
        EraseOne(store, CodeKey(cache->Lookup(ps.bits_without)), ps.verts);
      }
      (*store)[CodeKey(cache->Lookup(ps.bits_with))].insert(ps.verts);
    } else {
      EraseOne(store, CodeKey(cache->Lookup(ps.bits_with)), ps.verts);
      if (ps.connected_without) {
        (*store)[CodeKey(cache->Lookup(ps.bits_without))].insert(ps.verts);
      }
    }
  }
}

// A starting graph cycling through structural families so sequences hit
// hubs, dense cores, and near-trees, not just mid-density noise.
Graph SeedGraph(int trial, size_t n, Rng& rng) {
  Rng graph_rng(rng.Next64());
  switch (trial % 4) {
    case 0:
      return DuplicationDivergence(n, 0.4, 0.3, graph_rng);
    case 1:
      return BarabasiAlbert(n, 2, graph_rng);
    case 2:
      return ErdosRenyi(n, n * (n - 1) / 8, graph_rng);  // dense-ish
    default:
      return ErdosRenyi(n, n + rng.Uniform(n), graph_rng);  // sparse
  }
}

TEST(IncrementalEsuDifferentialTest, MatchesFullRemineOver120Sequences) {
  // 60 random graphs x {dense, sparse} index = 120 mutation sequences.
  // Each sequence applies 12 random add/delete mutations while maintaining
  // k=3 and k=4 stores incrementally; after EVERY mutation both stores must
  // equal a from-scratch re-mine of the current graph, multiset-exactly.
  Rng rng(20260807);
  SharedCanonCache cache3(3), cache4(4);
  size_t sequences = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 12 + rng.Uniform(29);  // 12..40
    const Graph g0 = SeedGraph(trial, n, rng);
    const uint64_t mutation_seed = rng.Next64();
    for (const size_t dense_limit :
         {GraphIndex::kDenseVertexLimit, size_t{0}}) {
      ++sequences;
      Rng mut_rng(mutation_seed);  // same sequence on both index layouts
      MutableGraphIndex graph(g0, dense_limit);
      Store store3 = FullMine(graph.index(), 3, &cache3);
      Store store4 = FullMine(graph.index(), 4, &cache4);
      for (int step = 0; step < 12; ++step) {
        // A random endpoint pair; toggle its edge.
        VertexId u = static_cast<VertexId>(mut_rng.Uniform(n));
        VertexId v = static_cast<VertexId>(mut_rng.Uniform(n));
        if (u == v) v = (v + 1) % n;
        const bool add = !graph.HasEdge(u, v);
        SCOPED_TRACE(testing::Message()
                     << "trial " << trial << " dense_limit=" << dense_limit
                     << " step " << step << (add ? " ADD {" : " DEL {") << u
                     << "," << v << "} n=" << n);
        if (add) {
          ASSERT_TRUE(graph.AddEdge(u, v).ok());
        }
        PatchStore(&graph, &store3, add, u, v, 3, &cache3);
        PatchStore(&graph, &store4, add, u, v, 4, &cache4);
        if (!add) {
          ASSERT_TRUE(graph.RemoveEdge(u, v).ok());
        }
        ASSERT_EQ(store3, FullMine(graph.index(), 3, &cache3));
        ASSERT_EQ(store4, FullMine(graph.index(), 4, &cache4));
      }
    }
  }
  EXPECT_GE(sequences, 100u);
}

}  // namespace
}  // namespace lamo
