// Checkpoint payload codecs: Encode/Decode round-trips for SmallGraph,
// Motif and LabeledMotif over randomized instances, plus rejection of
// malformed byte streams (every prefix truncation must fail cleanly).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/labeled_motif.h"
#include "motif/motif.h"
#include "util/random.h"

namespace lamo {
namespace {

SmallGraph RandomPattern(Rng& rng) {
  const size_t n = 2 + rng.Uniform(SmallGraph::kMaxVertices - 1);
  SmallGraph g(n);
  // A path keeps it connected; extra random edges vary the shape.
  for (size_t v = 1; v < n; ++v) g.AddEdge(v - 1, v);
  const size_t extra = rng.Uniform(n);
  for (size_t i = 0; i < extra; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(n));
    if (a != b) g.AddEdge(a, b);
  }
  return g;
}

Motif RandomMotif(Rng& rng) {
  Motif m;
  m.pattern = RandomPattern(rng);
  const size_t n = m.pattern.num_vertices();
  const size_t code_len = rng.Uniform(16);
  for (size_t i = 0; i < code_len; ++i) {
    m.code.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  const size_t occs = rng.Uniform(8);
  for (size_t i = 0; i < occs; ++i) {
    MotifOccurrence occ;
    for (size_t v = 0; v < n; ++v) {
      occ.proteins.push_back(static_cast<VertexId>(rng.Uniform(10000)));
    }
    m.occurrences.push_back(std::move(occ));
  }
  m.frequency = static_cast<size_t>(rng.Uniform(1000));
  m.uniqueness = rng.NextDouble();
  if (rng.Bernoulli(0.3)) {
    m.symmetric_sets_override.push_back(
        {0, static_cast<uint32_t>(n - 1)});
  }
  return m;
}

void ExpectSameMotif(const Motif& a, const Motif& b) {
  EXPECT_EQ(a.pattern.num_vertices(), b.pattern.num_vertices());
  for (size_t u = 0; u < a.pattern.num_vertices(); ++u) {
    for (size_t v = 0; v < a.pattern.num_vertices(); ++v) {
      EXPECT_EQ(a.pattern.HasEdge(u, v), b.pattern.HasEdge(u, v));
    }
  }
  EXPECT_EQ(a.code, b.code);
  ASSERT_EQ(a.occurrences.size(), b.occurrences.size());
  for (size_t i = 0; i < a.occurrences.size(); ++i) {
    EXPECT_EQ(a.occurrences[i].proteins, b.occurrences[i].proteins);
  }
  EXPECT_EQ(a.frequency, b.frequency);
  EXPECT_EQ(a.uniqueness, b.uniqueness);
  EXPECT_EQ(a.symmetric_sets_override, b.symmetric_sets_override);
}

TEST(MotifCodecTest, RoundTripsRandomMotifs) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const Motif original = RandomMotif(rng);
    ByteWriter writer;
    EncodeMotif(original, &writer);
    ByteReader reader(writer.bytes());
    Motif decoded;
    ASSERT_TRUE(DecodeMotif(&reader, &decoded).ok()) << "trial " << trial;
    EXPECT_TRUE(reader.AtEnd());
    ExpectSameMotif(original, decoded);
  }
}

TEST(MotifCodecTest, EveryTruncationIsRejected) {
  Rng rng(8);
  const Motif original = RandomMotif(rng);
  ByteWriter writer;
  EncodeMotif(original, &writer);
  const std::string bytes = writer.bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader reader(std::string_view(bytes).substr(0, len));
    Motif decoded;
    EXPECT_FALSE(DecodeMotif(&reader, &decoded).ok())
        << "accepted truncation to " << len << " of " << bytes.size();
  }
}

TEST(MotifCodecTest, OversizedVertexCountIsRejected) {
  ByteWriter writer;
  writer.PutU32(1000);  // way past kMaxVertices
  writer.PutU32(0);
  ByteReader reader(writer.bytes());
  SmallGraph g;
  EXPECT_FALSE(DecodeSmallGraph(&reader, &g).ok());
}

LabeledMotif RandomLabeledMotif(Rng& rng) {
  LabeledMotif m;
  m.pattern = RandomPattern(rng);
  const size_t n = m.pattern.num_vertices();
  const size_t code_len = rng.Uniform(16);
  for (size_t i = 0; i < code_len; ++i) {
    m.code.push_back(static_cast<uint8_t>(rng.Uniform(256)));
  }
  m.scheme.resize(n);
  for (LabelSet& set : m.scheme) {
    const size_t labels = rng.Uniform(4);
    for (size_t i = 0; i < labels; ++i) {
      set.push_back(static_cast<TermId>(rng.Uniform(500)));
    }
  }
  const size_t occs = rng.Uniform(6);
  for (size_t i = 0; i < occs; ++i) {
    MotifOccurrence occ;
    for (size_t v = 0; v < n; ++v) {
      occ.proteins.push_back(static_cast<VertexId>(rng.Uniform(10000)));
    }
    m.occurrences.push_back(std::move(occ));
  }
  m.frequency = m.occurrences.size();
  m.uniqueness = rng.NextDouble();
  m.strength = rng.NextDouble();
  return m;
}

TEST(LabeledMotifCodecTest, RoundTripsRandomLabeledMotifs) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const LabeledMotif original = RandomLabeledMotif(rng);
    ByteWriter writer;
    EncodeLabeledMotif(original, &writer);
    ByteReader reader(writer.bytes());
    LabeledMotif decoded;
    ASSERT_TRUE(DecodeLabeledMotif(&reader, &decoded).ok())
        << "trial " << trial;
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(original.code, decoded.code);
    EXPECT_EQ(original.scheme, decoded.scheme);
    ASSERT_EQ(original.occurrences.size(), decoded.occurrences.size());
    for (size_t i = 0; i < original.occurrences.size(); ++i) {
      EXPECT_EQ(original.occurrences[i].proteins,
                decoded.occurrences[i].proteins);
    }
    EXPECT_EQ(original.frequency, decoded.frequency);
    EXPECT_EQ(original.uniqueness, decoded.uniqueness);
    EXPECT_EQ(original.strength, decoded.strength);
  }
}

TEST(LabeledMotifCodecTest, EveryTruncationIsRejected) {
  Rng rng(10);
  const LabeledMotif original = RandomLabeledMotif(rng);
  ByteWriter writer;
  EncodeLabeledMotif(original, &writer);
  const std::string bytes = writer.bytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    ByteReader reader(std::string_view(bytes).substr(0, len));
    LabeledMotif decoded;
    EXPECT_FALSE(DecodeLabeledMotif(&reader, &decoded).ok())
        << "accepted truncation to " << len << " of " << bytes.size();
  }
}

}  // namespace
}  // namespace lamo
