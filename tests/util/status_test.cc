#include "util/status.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("hello");
  std::string s = std::move(result).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsesAssignOrReturn(int x, int* out) {
  LAMO_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  *out = value * 2;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(UsesAssignOrReturn(-1, &out).IsInvalidArgument());
}

Status UsesReturnIfError(bool fail) {
  LAMO_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(UsesReturnIfError(false).ok());
  EXPECT_TRUE(UsesReturnIfError(true).IsInternal());
}

}  // namespace
}  // namespace lamo
