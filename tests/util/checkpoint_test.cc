// Checkpoint container: round-trip property over random payloads, a
// corruption matrix (every mutation must be rejected with a Status, never
// accepted or crashed on), and fault-injected atomic writes.
#include "util/checkpoint.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/atomic_io.h"
#include "util/fault.h"
#include "util/random.h"

namespace lamo {
namespace {

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("lamo_ckpt_test_" + std::to_string(getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A random stage payload mimicking real checkpoint state: a mix of scalar
/// fields and variable-length strings.
std::string RandomPayload(Rng& rng) {
  ByteWriter writer;
  const size_t fields = rng.Uniform(20);
  for (size_t i = 0; i < fields; ++i) {
    switch (rng.Uniform(4)) {
      case 0:
        writer.PutU32(static_cast<uint32_t>(rng.Next64()));
        break;
      case 1:
        writer.PutU64(rng.Next64());
        break;
      case 2:
        writer.PutDouble(rng.NextDouble());
        break;
      default: {
        std::string s;
        const size_t len = rng.Uniform(64);
        for (size_t j = 0; j < len; ++j) {
          s.push_back(static_cast<char>(rng.Uniform(256)));
        }
        writer.PutString(s);
        break;
      }
    }
  }
  return writer.TakeBytes();
}

TEST(ByteCodecTest, RoundTripsScalarsAndStrings) {
  ByteWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefull);
  writer.PutDouble(-1.5);
  writer.PutString("hello\0world");  // embedded NUL truncated by literal: ok
  writer.PutString("");
  ByteReader reader(writer.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0;
  std::string s1, s2;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  ASSERT_TRUE(reader.GetString(&s1).ok());
  ASSERT_TRUE(reader.GetString(&s2).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(d, -1.5);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, TruncatedReadsFail) {
  ByteWriter writer;
  writer.PutU64(1);
  ByteReader reader(std::string_view(writer.bytes()).substr(0, 3));
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetU64(&v).ok());
  // A string whose declared length exceeds the remaining bytes must fail,
  // not allocate or read out of bounds.
  ByteWriter evil;
  evil.PutU64(1ull << 40);
  ByteReader evil_reader(evil.bytes());
  std::string s;
  EXPECT_FALSE(evil_reader.GetString(&s).ok());
}

TEST(CheckpointTest, RoundTripsRandomPayloads) {
  ScratchDir dir;
  Rng rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string payload = RandomPayload(rng);
    const uint64_t fingerprint = rng.Next64();
    const std::string stage = "stage" + std::to_string(trial % 5);
    ASSERT_TRUE(SaveCheckpoint(dir.str(), stage, fingerprint, payload).ok());
    std::string reloaded;
    ASSERT_TRUE(
        LoadCheckpoint(dir.str(), stage, fingerprint, &reloaded).ok());
    EXPECT_EQ(reloaded, payload) << "trial " << trial;
  }
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  ScratchDir dir;
  std::string payload;
  const Status status = LoadCheckpoint(dir.str(), "absent", 1, &payload);
  EXPECT_TRUE(status.IsNotFound()) << status.ToString();
}

TEST(CheckpointTest, FingerprintMismatchIsFailedPrecondition) {
  ScratchDir dir;
  ASSERT_TRUE(SaveCheckpoint(dir.str(), "stage", 111, "payload").ok());
  std::string payload;
  const Status status = LoadCheckpoint(dir.str(), "stage", 222, &payload);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST(CheckpointTest, StageNameMismatchRejected) {
  ScratchDir dir;
  ASSERT_TRUE(SaveCheckpoint(dir.str(), "mine", 1, "payload").ok());
  // Copy the file under another stage's name: the embedded stage string no
  // longer matches and the load must fail.
  std::filesystem::copy_file(CheckpointPath(dir.str(), "mine"),
                             CheckpointPath(dir.str(), "label"));
  std::string payload;
  EXPECT_FALSE(LoadCheckpoint(dir.str(), "label", 1, &payload).ok());
}

/// Every single-byte flip and every truncation of a valid checkpoint must be
/// rejected with a non-OK Status — corruption can cost a restart but never
/// a silently wrong resume.
TEST(CheckpointTest, CorruptionMatrixRejectsEveryMutation) {
  ScratchDir dir;
  Rng rng(99);
  const std::string payload = RandomPayload(rng);
  ASSERT_TRUE(SaveCheckpoint(dir.str(), "stage", 1234, payload).ok());
  const std::string path = CheckpointPath(dir.str(), "stage");
  const std::string pristine = ReadWholeFile(path);
  ASSERT_GT(pristine.size(), 24u);

  // Truncations at every prefix length.
  for (size_t len = 0; len < pristine.size(); ++len) {
    WriteWholeFile(path, pristine.substr(0, len));
    std::string out;
    const Status status = LoadCheckpoint(dir.str(), "stage", 1234, &out);
    EXPECT_FALSE(status.ok()) << "accepted truncation to " << len << " bytes";
  }

  // Bit flips in every byte (one randomly chosen bit per byte keeps the
  // matrix quadratic-free; the checksum covers all positions equally).
  for (size_t pos = 0; pos < pristine.size(); ++pos) {
    std::string mutated = pristine;
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1u << rng.Uniform(8)));
    WriteWholeFile(path, mutated);
    std::string out;
    const Status status = LoadCheckpoint(dir.str(), "stage", 1234, &out);
    EXPECT_FALSE(status.ok()) << "accepted bit flip at byte " << pos;
  }

  // Trailing garbage after a valid container.
  WriteWholeFile(path, pristine + "x");
  std::string out;
  EXPECT_FALSE(LoadCheckpoint(dir.str(), "stage", 1234, &out).ok());

  // The pristine bytes still load (the matrix itself didn't wear them out).
  WriteWholeFile(path, pristine);
  ASSERT_TRUE(LoadCheckpoint(dir.str(), "stage", 1234, &out).ok());
  EXPECT_EQ(out, payload);
}

TEST(CheckpointTest, SaveReplacesAtomically) {
  ScratchDir dir;
  ASSERT_TRUE(SaveCheckpoint(dir.str(), "stage", 1, "first").ok());
  ASSERT_TRUE(SaveCheckpoint(dir.str(), "stage", 1, "second").ok());
  std::string payload;
  ASSERT_TRUE(LoadCheckpoint(dir.str(), "stage", 1, &payload).ok());
  EXPECT_EQ(payload, "second");
  // No tmp file may survive a successful save.
  EXPECT_FALSE(std::filesystem::exists(
      AtomicTmpPath(CheckpointPath(dir.str(), "stage"))));
}

TEST(AtomicIoFaultTest, ShortWritesAndEintrAreRecovered) {
  ScratchDir dir;
  const std::string path = dir.str() + "/file.txt";
  std::string big(300000, 'a');
  for (size_t i = 0; i < big.size(); i += 37) big[i] = 'b';

  FaultArmForTest("atomic.write:1:short_write");
  EXPECT_TRUE(WriteFileAtomic(path, big).ok());
  EXPECT_EQ(ReadWholeFile(path), big);

  FaultArmForTest("atomic.write:2:eintr");
  EXPECT_TRUE(WriteFileAtomic(path, big + "tail").ok());
  EXPECT_EQ(ReadWholeFile(path), big + "tail");
  FaultArmForTest(nullptr);
}

TEST(AtomicIoFaultTest, InjectedErrorLeavesPreviousFileIntact) {
  ScratchDir dir;
  const std::string path = dir.str() + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old contents").ok());

  FaultArmForTest("atomic.write:1:error");
  size_t fsyncs = 0;
  const Status status = WriteFileAtomic(path, "new contents", &fsyncs);
  FaultArmForTest(nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(fsyncs, 0u);
  // The failed replace must not leave a tmp file or touch the old contents.
  EXPECT_EQ(ReadWholeFile(path), "old contents");
  EXPECT_FALSE(std::filesystem::exists(AtomicTmpPath(path)));
}

TEST(AtomicIoFaultTest, FsyncCounterCountsDurableReplaces) {
  ScratchDir dir;
  const std::string path = dir.str() + "/file.txt";
  size_t fsyncs = 0;
  ASSERT_TRUE(WriteFileAtomic(path, "a", &fsyncs).ok());
  ASSERT_TRUE(WriteFileAtomic(path, "b", &fsyncs).ok());
  EXPECT_EQ(fsyncs, 2u);
}

TEST(CheckpointFaultTest, InjectedSaveErrorIsReported) {
  ScratchDir dir;
  FaultArmForTest("checkpoint.save:1:error");
  const Status status = SaveCheckpoint(dir.str(), "stage", 1, "payload");
  FaultArmForTest(nullptr);
  EXPECT_FALSE(status.ok());
  // A failed save must not leave a checkpoint behind that a resume would
  // then trust.
  std::string payload;
  EXPECT_TRUE(LoadCheckpoint(dir.str(), "stage", 1, &payload).IsNotFound());
}

}  // namespace
}  // namespace lamo
