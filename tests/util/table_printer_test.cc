#include "util/table_printer.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name   | value |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 22    |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|--------|-------|"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("| only |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableJustHeader) {
  TablePrinter table({"h"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("| h |"), std::string::npos);
}

TEST(CsvWriterTest, WritesAndQuotes) {
  const std::string path = ::testing::TempDir() + "/out.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.WriteRow({"a", "b,c", "d\"e"});
    csv.WriteRow({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1,2,3");
}

TEST(CsvWriterTest, BadPathNotOk) {
  CsvWriter csv("/nonexistent/dir/file.csv");
  EXPECT_FALSE(csv.ok());
  csv.WriteRow({"ignored"});  // must not crash
}

}  // namespace
}  // namespace lamo
