#include "util/random.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next64() != b.Next64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PowerLawBounds) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.PowerLaw(2.5, 100);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(RngTest, PowerLawHeavyTail) {
  Rng rng(29);
  // Small values should dominate under alpha=2.5.
  int ones = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.PowerLaw(2.5, 1000) == 1) ++ones;
  }
  EXPECT_GT(ones, trials / 2);
}

TEST(RngTest, PoissonMean) {
  Rng rng(31);
  const int n = 20000;
  double small_sum = 0, large_sum = 0;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(rng.Poisson(3.0));
    large_sum += static_cast<double>(rng.Poisson(100.0));
  }
  EXPECT_NEAR(small_sum / n, 3.0, 0.1);
  EXPECT_NEAR(large_sum / n, 100.0, 1.0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 10);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleAllElements) {
  Rng rng(43);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng parent1(47), parent2(47);
  Rng child1 = parent1.Fork();
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.Next64(), child2.Next64());
  }
}

TEST(RngTest, ForkDoesNotReplayParentStream) {
  Rng parent(47);
  Rng child = parent.Fork();
  Rng fresh(47);
  fresh.Next64();  // skip the draw consumed by Fork
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (child.Next64() != fresh.Next64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, StreamPrefixesPairwiseIndependent) {
  // 64 replicate substreams of one seed (the shape of a uniqueness
  // ensemble): no two may share even a short prefix, and none may replay
  // the base stream. A collision here would silently correlate replicates.
  constexpr size_t kReplicates = 64;
  constexpr size_t kPrefix = 8;
  std::vector<std::array<uint64_t, kPrefix>> prefixes(kReplicates);
  for (size_t r = 0; r < kReplicates; ++r) {
    Rng stream = Rng::Stream(123, r);
    for (size_t i = 0; i < kPrefix; ++i) prefixes[r][i] = stream.Next64();
  }
  Rng base(123);
  std::array<uint64_t, kPrefix> base_prefix;
  for (size_t i = 0; i < kPrefix; ++i) base_prefix[i] = base.Next64();
  for (size_t a = 0; a < kReplicates; ++a) {
    EXPECT_NE(prefixes[a], base_prefix) << "stream " << a;
    for (size_t b = a + 1; b < kReplicates; ++b) {
      EXPECT_NE(prefixes[a], prefixes[b])
          << "streams " << a << " and " << b << " share a prefix";
    }
  }
}

TEST(RngTest, StreamDependsOnlyOnSeedAndIndex) {
  // Stream(seed, r) must not depend on construction order or on how many
  // draws other streams made — the property that lets replicates run in
  // any order on any thread count.
  Rng first = Rng::Stream(9, 5);
  Rng burn = Rng::Stream(9, 4);
  for (int i = 0; i < 100; ++i) burn.Next64();
  Rng second = Rng::Stream(9, 5);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(first.Next64(), second.Next64());
  }
  EXPECT_NE(Rng::Stream(9, 5).Next64(), Rng::Stream(10, 5).Next64());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(53);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace lamo
