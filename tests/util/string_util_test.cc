#include "util/string_util.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("GO:0001", "GO:"));
  EXPECT_FALSE(StartsWith("GO", "GO:"));
  EXPECT_TRUE(EndsWith("graph.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("x", ".tsv"));
}

TEST(ParseUint64Test, Valid) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
}

TEST(ParseUint64Test, Invalid) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
  EXPECT_FALSE(ParseUint64(" 5", &v));
}

TEST(ParseDoubleTest, Valid) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_DOUBLE_EQ(d, -1000.0);
}

TEST(ParseDoubleTest, Invalid) {
  double d = 0;
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("1.5zz", &d));
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

}  // namespace
}  // namespace lamo
