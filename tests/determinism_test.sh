#!/bin/sh
# Determinism contract of the parallel runtime: mine -> label over a synth
# dataset must produce byte-identical outputs with --threads 1 and
# --threads 4 (and under a LAMO_THREADS override). See DESIGN.md "Parallel
# runtime".
set -e
LAMO="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$LAMO" generate --proteins 400 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null

# Each run also writes a JSON run report (--report) and a Chrome trace
# (--trace). Both contain wall times, so they are *not* part of the
# byte-compare below — the contract covers pipeline outputs only. Collecting
# them here proves instrumentation does not perturb the deterministic
# results.
for threads in 1 4; do
  "$LAMO" mine --graph "$WORK/ds.graph.txt" --min-size 3 --max-size 4 \
    --min-freq 20 --networks 5 --uniqueness 0.8 --threads "$threads" \
    --report "$WORK/mine.t$threads.json" \
    --trace "$WORK/mine.t$threads.trace.json" \
    --out "$WORK/motifs.t$threads.txt" > /dev/null
  test -s "$WORK/mine.t$threads.json"
  test -s "$WORK/mine.t$threads.trace.json"
  "$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
    --annotations "$WORK/ds.annotations.tsv" \
    --motifs "$WORK/motifs.t$threads.txt" --sigma 6 \
    --threads "$threads" --report "$WORK/label.t$threads.json" \
    --trace "$WORK/label.t$threads.trace.json" \
    --out "$WORK/labeled.t$threads.txt" > /dev/null
  test -s "$WORK/label.t$threads.json"
  test -s "$WORK/label.t$threads.trace.json"
done

cmp "$WORK/motifs.t1.txt" "$WORK/motifs.t4.txt" || {
  echo "FAIL: mine output differs between --threads 1 and --threads 4" >&2
  exit 1
}
cmp "$WORK/labeled.t1.txt" "$WORK/labeled.t4.txt" || {
  echo "FAIL: label output differs between --threads 1 and --threads 4" >&2
  exit 1
}

# The env override must route through the same policy (flag absent -> env).
LAMO_THREADS=3 "$LAMO" mine --graph "$WORK/ds.graph.txt" --min-size 3 \
  --max-size 4 --min-freq 20 --networks 5 --uniqueness 0.8 \
  --out "$WORK/motifs.env.txt" > /dev/null
cmp "$WORK/motifs.t1.txt" "$WORK/motifs.env.txt" || {
  echo "FAIL: mine output differs under LAMO_THREADS=3" >&2
  exit 1
}

echo "determinism OK: serial and parallel outputs are byte-identical"
