#!/bin/sh
# Determinism contract of the parallel runtime: mine -> label over a synth
# dataset must produce byte-identical outputs with --threads 1 and
# --threads 4 (and under a LAMO_THREADS override). See DESIGN.md "Parallel
# runtime".
set -e
LAMO="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$LAMO" generate --proteins 400 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null

# Each run also writes a JSON run report (--report) and a Chrome trace
# (--trace). Both contain wall times, so they are *not* part of the
# byte-compare below — the contract covers pipeline outputs only. Collecting
# them here proves instrumentation does not perturb the deterministic
# results.
for threads in 1 4; do
  "$LAMO" mine --graph "$WORK/ds.graph.txt" --min-size 3 --max-size 4 \
    --min-freq 20 --networks 5 --uniqueness 0.8 --threads "$threads" \
    --report "$WORK/mine.t$threads.json" \
    --trace "$WORK/mine.t$threads.trace.json" \
    --out "$WORK/motifs.t$threads.txt" > /dev/null
  test -s "$WORK/mine.t$threads.json"
  test -s "$WORK/mine.t$threads.trace.json"
  "$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
    --annotations "$WORK/ds.annotations.tsv" \
    --motifs "$WORK/motifs.t$threads.txt" --sigma 6 \
    --threads "$threads" --report "$WORK/label.t$threads.json" \
    --trace "$WORK/label.t$threads.trace.json" \
    --out "$WORK/labeled.t$threads.txt" > /dev/null
  test -s "$WORK/label.t$threads.json"
  test -s "$WORK/label.t$threads.trace.json"
done

cmp "$WORK/motifs.t1.txt" "$WORK/motifs.t4.txt" || {
  echo "FAIL: mine output differs between --threads 1 and --threads 4" >&2
  exit 1
}
cmp "$WORK/labeled.t1.txt" "$WORK/labeled.t4.txt" || {
  echo "FAIL: label output differs between --threads 1 and --threads 4" >&2
  exit 1
}

# The env override must route through the same policy (flag absent -> env).
LAMO_THREADS=3 "$LAMO" mine --graph "$WORK/ds.graph.txt" --min-size 3 \
  --max-size 4 --min-freq 20 --networks 5 --uniqueness 0.8 \
  --out "$WORK/motifs.env.txt" > /dev/null
cmp "$WORK/motifs.t1.txt" "$WORK/motifs.env.txt" || {
  echo "FAIL: mine output differs under LAMO_THREADS=3" >&2
  exit 1
}

# The serving artifacts obey the same contract: `lamo pack` must be
# byte-reproducible for any thread count, and served responses must be
# identical across thread counts and with the response cache on or off
# (cache hits replay the same bytes recomputation would produce).
for threads in 1 4; do
  "$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
    --annotations "$WORK/ds.annotations.tsv" \
    --labeled "$WORK/labeled.t1.txt" --threads "$threads" \
    --out "$WORK/snap.t$threads.lamosnap" > /dev/null
done
cmp "$WORK/snap.t1.lamosnap" "$WORK/snap.t4.lamosnap" || {
  echo "FAIL: pack output differs between --threads 1 and --threads 4" >&2
  exit 1
}

awk 'BEGIN {
  print "HEALTH";
  for (p = 0; p < 400; p += 13) printf "PREDICT %d\n", p;
  for (p = 0; p < 400; p += 29) printf "MOTIFS %d\n", p;
  for (p = 0; p < 400; p += 37) printf "PREDICT %d 5\n", p;
  print "PREDICT 7"; print "PREDICT 7";  # repeat: exercises a cache hit
}' > "$WORK/requests.txt"
"$LAMO" serve --snapshot "$WORK/snap.t1.lamosnap" --stdin --threads 1 \
  < "$WORK/requests.txt" > "$WORK/resp.t1.txt" 2> /dev/null
"$LAMO" serve --snapshot "$WORK/snap.t1.lamosnap" --stdin --threads 4 \
  < "$WORK/requests.txt" > "$WORK/resp.t4.txt" 2> /dev/null
"$LAMO" serve --snapshot "$WORK/snap.t1.lamosnap" --stdin --threads 4 \
  --no-cache < "$WORK/requests.txt" > "$WORK/resp.nocache.txt" 2> /dev/null
cmp "$WORK/resp.t1.txt" "$WORK/resp.t4.txt" || {
  echo "FAIL: serve responses differ between --threads 1 and --threads 4" >&2
  exit 1
}
cmp "$WORK/resp.t1.txt" "$WORK/resp.nocache.txt" || {
  echo "FAIL: serve responses differ with the cache disabled" >&2
  exit 1
}

echo "determinism OK: serial and parallel outputs are byte-identical" \
  "(mine/label/pack/serve)"
