#!/bin/sh
# End-to-end overload contract for the serve daemon: start `lamo serve` with
# deliberately tight limits (--request-timeout-ms / --max-conns /
# --max-line-bytes), attack it with the bench client's abuse modes
# (slowloris, oversized line, half-close, connection burst), check that a
# normal query is still answered correctly throughout, then SIGTERM and
# require a clean drain (exit 0) plus serve.* overload counters in the run
# report.
set -e
LAMO="$1"
BENCH="$2"
REPORT_CHECK="$3"
WORK="$(mktemp -d)"
SERVER=""
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$LAMO" generate --proteins 300 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 3 --min-freq 15 --networks 4 --uniqueness 0.8 \
  --out "$WORK/motifs.txt" > /dev/null
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" > /dev/null
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model.lamosnap" > /dev/null

# Tight limits so every abuse mode trips its guard quickly: a 500 ms line
# deadline, 2 connection slots, and a 1 KiB request-line cap (the longline
# abuse sends 8 KiB).
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --port 0 \
  --request-timeout-ms 500 --max-conns 2 --max-line-bytes 1024 \
  --report "$WORK/serve_report.json" > "$WORK/serve.log" 2>&1 &
SERVER=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/serve.log")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
test -n "$PORT" || {
  echo "FAIL: server never reported its port" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

# Each abuse mode exits 0 only if the server honored the documented
# contract (see lamo_bench_client --help).
for mode in slowloris longline halfclose; do
  "$BENCH" --port "$PORT" --abuse "$mode" > /dev/null || {
    echo "FAIL: abuse mode '$mode' contract violated" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  }
done
# 6 connections against 2 slots: excess waits in the accept backlog and every
# one is still answered (backpressure, never drops).
"$BENCH" --port "$PORT" --abuse burst --connections 6 > /dev/null || {
  echo "FAIL: burst past --max-conns dropped connections" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

# The daemon must still serve correct answers after all that abuse.
"$LAMO" predict --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --protein 42 > "$WORK/offline.txt"
"$BENCH" --port "$PORT" --query "PREDICT 42" > "$WORK/online.txt"
cmp "$WORK/offline.txt" "$WORK/online.txt" || {
  echo "FAIL: served answer differs from offline predict after abuse" >&2
  exit 1
}

# Clean drain under SIGTERM, and the report must carry the overload
# counters the abuse provoked.
kill -TERM "$SERVER"
wait "$SERVER" || {
  echo "FAIL: server exited nonzero after SIGTERM" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
SERVER=""
grep -q "drained" "$WORK/serve.log" || {
  echo "FAIL: no drain message in server log" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
"$REPORT_CHECK" "$WORK/serve_report.json" serve.requests serve.timeouts \
  serve.overlong_lines > /dev/null

echo "overload OK: slowloris/longline/halfclose/burst all handled per" \
  "contract, normal queries unaffected, clean drain"
