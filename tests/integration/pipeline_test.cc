// End-to-end pipeline test: synthetic dataset -> motif mining + uniqueness
// -> LaMoFinder labeling -> function prediction, on a small instance so the
// whole paper pipeline runs in seconds.
#include <gtest/gtest.h>

#include "core/lamofinder.h"
#include "motif/uniqueness.h"
#include "predict/dataset_context.h"
#include "predict/evaluation.h"
#include "predict/labeled_motif_predictor.h"
#include "predict/neighbor_counting.h"
#include "synth/dataset.h"

namespace lamo {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticDatasetConfig config;
    config.num_proteins = 500;
    config.go.num_terms = 70;
    config.go.depth = 5;
    config.num_templates = 3;
    config.copies_per_template = 30;
    config.template_min_size = 3;
    config.template_max_size = 4;
    config.informative_threshold = 10;
    config.seed = 4242;
    dataset_ = new SyntheticDataset(BuildSyntheticDataset(config));

    MotifFindingConfig motif_config;
    motif_config.miner.min_size = 3;
    motif_config.miner.max_size = 4;
    motif_config.miner.min_frequency = 25;
    motif_config.miner.max_occurrences_per_pattern = 5000;
    motif_config.uniqueness.num_random_networks = 5;
    motif_config.uniqueness_threshold = 0.0;  // keep all frequent patterns
    motifs_ = new std::vector<Motif>(
        FindNetworkMotifs(dataset_->ppi, motif_config));

    finder_ = new LaMoFinder(dataset_->ontology, dataset_->weights,
                             dataset_->informative, dataset_->annotations);
    LaMoFinderConfig label_config;
    label_config.sigma = 8;
    label_config.max_occurrences = 150;
    labeled_ = new std::vector<LabeledMotif>(
        finder_->LabelAll(*motifs_, label_config));
  }
  static void TearDownTestSuite() {
    delete labeled_;
    delete finder_;
    delete motifs_;
    delete dataset_;
  }

  static SyntheticDataset* dataset_;
  static std::vector<Motif>* motifs_;
  static LaMoFinder* finder_;
  static std::vector<LabeledMotif>* labeled_;
};

SyntheticDataset* PipelineTest::dataset_ = nullptr;
std::vector<Motif>* PipelineTest::motifs_ = nullptr;
LaMoFinder* PipelineTest::finder_ = nullptr;
std::vector<LabeledMotif>* PipelineTest::labeled_ = nullptr;

TEST_F(PipelineTest, MinerFindsFrequentPatterns) {
  ASSERT_FALSE(motifs_->empty());
  for (const Motif& m : *motifs_) {
    EXPECT_GE(m.frequency, 25u);
    EXPECT_TRUE(m.pattern.IsConnected());
  }
}

TEST_F(PipelineTest, LabelerProducesSchemes) {
  ASSERT_FALSE(labeled_->empty());
  for (const LabeledMotif& lm : *labeled_) {
    EXPECT_GE(lm.frequency, 8u);
    EXPECT_EQ(lm.scheme.size(), lm.pattern.num_vertices());
    EXPECT_GE(lm.strength, 0.0);
    EXPECT_LE(lm.strength, 1.0);
  }
}

TEST_F(PipelineTest, SchemesConformToTheirOccurrences) {
  for (const LabeledMotif& lm : *labeled_) {
    for (const MotifOccurrence& occ : lm.occurrences) {
      for (size_t pos = 0; pos < lm.scheme.size(); ++pos) {
        const auto terms =
            dataset_->annotations.TermsOf(occ.proteins[pos]);
        EXPECT_TRUE(LabelsConform(dataset_->ontology, lm.scheme[pos],
                                  LabelSet(terms.begin(), terms.end())));
      }
    }
  }
}

TEST_F(PipelineTest, PredictionPipelineRuns) {
  const PredictionContext context = BuildPredictionContext(*dataset_);
  LabeledMotifPredictor motif_predictor(context, dataset_->ontology,
                                        *labeled_);
  NeighborCountingPredictor nc(context);

  EXPECT_GT(motif_predictor.CoverageOfAnnotated(), 0.1)
      << "labeled motifs should cover a nontrivial protein fraction";

  // Evaluate on motif-covered annotated proteins.
  EvaluationConfig eval_config;
  for (ProteinId p = 0; p < dataset_->ppi.num_vertices(); ++p) {
    if (context.IsAnnotated(p) && motif_predictor.Covers(p)) {
      eval_config.evaluation_set.push_back(p);
    }
  }
  ASSERT_GT(eval_config.evaluation_set.size(), 20u);

  const PrCurve motif_curve =
      EvaluateLeaveOneOut(motif_predictor, context, eval_config);
  const PrCurve nc_curve = EvaluateLeaveOneOut(nc, context, eval_config);
  ASSERT_FALSE(motif_curve.points.empty());
  // Sanity: both curves are proper PR curves.
  for (const PrPoint& point : motif_curve.points) {
    EXPECT_GE(point.precision, 0.0);
    EXPECT_LE(point.precision, 1.0);
    EXPECT_GE(point.recall, 0.0);
    EXPECT_LE(point.recall, 1.0);
  }
  // The motif predictor must materially beat random: with 13 categories a
  // random top-1 precision is ~ prior level. Demand a healthy margin.
  EXPECT_GT(motif_curve.points[0].precision, 0.3);
  (void)nc_curve;
}

TEST_F(PipelineTest, StrengthNormalizedPerSizeClass) {
  std::map<size_t, double> max_strength;
  for (const LabeledMotif& lm : *labeled_) {
    auto [it, inserted] = max_strength.emplace(lm.size(), lm.strength);
    if (!inserted) it->second = std::max(it->second, lm.strength);
  }
  for (const auto& [size, strength] : max_strength) {
    EXPECT_NEAR(strength, 1.0, 1e-9) << "size " << size;
  }
}

}  // namespace
}  // namespace lamo
