#include "ontology/annotation.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

Ontology MakeChain() {
  // root -> mid -> leaf.
  OntologyBuilder builder;
  const TermId root = builder.AddTerm("root");
  const TermId mid = builder.AddTerm("mid");
  const TermId leaf = builder.AddTerm("leaf");
  EXPECT_TRUE(builder.AddRelation(mid, root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(leaf, mid, RelationType::kIsA).ok());
  auto built = builder.Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

TEST(AnnotationTest, BasicAnnotate) {
  AnnotationTable table(3);
  EXPECT_TRUE(table.Annotate(0, 5).ok());
  EXPECT_TRUE(table.Annotate(0, 2).ok());
  EXPECT_TRUE(table.Annotate(0, 5).ok());  // idempotent
  EXPECT_EQ(table.TermsOf(0).size(), 2u);
  EXPECT_EQ(table.TermsOf(0)[0], 2u);  // sorted
  EXPECT_EQ(table.TermsOf(0)[1], 5u);
  EXPECT_TRUE(table.IsAnnotated(0));
  EXPECT_FALSE(table.IsAnnotated(1));
}

TEST(AnnotationTest, OutOfRange) {
  AnnotationTable table(2);
  EXPECT_TRUE(table.Annotate(5, 0).IsInvalidArgument());
}

TEST(AnnotationTest, Counts) {
  AnnotationTable table(4);
  ASSERT_TRUE(table.Annotate(0, 1).ok());
  ASSERT_TRUE(table.Annotate(0, 2).ok());
  ASSERT_TRUE(table.Annotate(2, 1).ok());
  EXPECT_EQ(table.CountAnnotated(), 2u);
  EXPECT_EQ(table.TotalOccurrences(), 3u);
  EXPECT_DOUBLE_EQ(table.MeanTermsPerAnnotatedProtein(), 1.5);
}

TEST(AnnotationTest, DirectCounts) {
  AnnotationTable table(3);
  ASSERT_TRUE(table.Annotate(0, 1).ok());
  ASSERT_TRUE(table.Annotate(1, 1).ok());
  ASSERT_TRUE(table.Annotate(2, 0).ok());
  const auto counts = table.DirectCounts(3);
  EXPECT_EQ(counts, (std::vector<size_t>{1, 2, 0}));
}

TEST(AnnotationTest, ClosureCountsChain) {
  const Ontology onto = MakeChain();
  const TermId root = onto.FindTerm("root");
  const TermId mid = onto.FindTerm("mid");
  const TermId leaf = onto.FindTerm("leaf");

  AnnotationTable table(3);
  ASSERT_TRUE(table.Annotate(0, leaf).ok());
  ASSERT_TRUE(table.Annotate(1, mid).ok());
  ASSERT_TRUE(table.Annotate(2, leaf).ok());

  const auto closure = table.ClosureCounts(onto);
  EXPECT_EQ(closure[leaf], 2u);
  EXPECT_EQ(closure[mid], 3u);
  EXPECT_EQ(closure[root], 3u);
}

TEST(AnnotationTest, ClosureCountsNoDoubleCountingMultiPath) {
  // Diamond: annotation at the multi-parent leaf must count once at root.
  OntologyBuilder builder;
  const TermId root = builder.AddTerm("root");
  const TermId a = builder.AddTerm("a");
  const TermId b = builder.AddTerm("b");
  const TermId leaf = builder.AddTerm("leaf");
  ASSERT_TRUE(builder.AddRelation(a, root, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(b, root, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(leaf, a, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(leaf, b, RelationType::kIsA).ok());
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());

  AnnotationTable table(1);
  ASSERT_TRUE(table.Annotate(0, leaf).ok());
  const auto closure = table.ClosureCounts(*built);
  EXPECT_EQ(closure[root], 1u) << "multi-path ancestor counted once";
  EXPECT_EQ(closure[a], 1u);
  EXPECT_EQ(closure[b], 1u);
  EXPECT_EQ(closure[leaf], 1u);
}

TEST(AnnotationTest, EmptyTable) {
  AnnotationTable table;
  EXPECT_EQ(table.num_proteins(), 0u);
  EXPECT_EQ(table.CountAnnotated(), 0u);
  EXPECT_EQ(table.TotalOccurrences(), 0u);
  EXPECT_DOUBLE_EQ(table.MeanTermsPerAnnotatedProtein(), 0.0);
}

}  // namespace
}  // namespace lamo
