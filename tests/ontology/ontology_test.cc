#include "ontology/ontology.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace lamo {
namespace {

// Diamond: root -> a, b; a -> leaf; b -> leaf (multi-parent leaf).
Ontology MakeDiamond() {
  OntologyBuilder builder;
  const TermId root = builder.AddTerm("root");
  const TermId a = builder.AddTerm("a");
  const TermId b = builder.AddTerm("b");
  const TermId leaf = builder.AddTerm("leaf");
  EXPECT_TRUE(builder.AddRelation(a, root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(b, root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(leaf, a, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(leaf, b, RelationType::kPartOf).ok());
  auto built = builder.Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

TEST(OntologyBuilderTest, RejectsSelfParent) {
  OntologyBuilder builder;
  const TermId t = builder.AddTerm("t");
  EXPECT_TRUE(
      builder.AddRelation(t, t, RelationType::kIsA).IsInvalidArgument());
}

TEST(OntologyBuilderTest, RejectsOutOfRange) {
  OntologyBuilder builder;
  builder.AddTerm("t");
  EXPECT_TRUE(
      builder.AddRelation(0, 5, RelationType::kIsA).IsInvalidArgument());
}

TEST(OntologyBuilderTest, RejectsCycle) {
  OntologyBuilder builder;
  const TermId a = builder.AddTerm("a");
  const TermId b = builder.AddTerm("b");
  const TermId c = builder.AddTerm("c");
  ASSERT_TRUE(builder.AddRelation(a, b, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(b, c, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(c, a, RelationType::kIsA).ok());
  EXPECT_FALSE(builder.Build().ok());
}

TEST(OntologyBuilderTest, RejectsEmpty) {
  OntologyBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
}

TEST(OntologyBuilderTest, DeduplicatesRelations) {
  OntologyBuilder builder;
  const TermId a = builder.AddTerm("a");
  const TermId b = builder.AddTerm("b");
  ASSERT_TRUE(builder.AddRelation(a, b, RelationType::kIsA).ok());
  ASSERT_TRUE(builder.AddRelation(a, b, RelationType::kIsA).ok());
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->Parents(a).size(), 1u);
}

TEST(OntologyTest, ParentsChildrenRoots) {
  const Ontology onto = MakeDiamond();
  const TermId root = onto.FindTerm("root");
  const TermId a = onto.FindTerm("a");
  const TermId b = onto.FindTerm("b");
  const TermId leaf = onto.FindTerm("leaf");

  EXPECT_EQ(onto.Roots(), (std::vector<TermId>{root}));
  EXPECT_EQ(onto.Parents(root).size(), 0u);
  ASSERT_EQ(onto.Parents(leaf).size(), 2u);
  EXPECT_EQ(onto.Parents(leaf)[0], a);
  EXPECT_EQ(onto.Parents(leaf)[1], b);
  ASSERT_EQ(onto.Children(root).size(), 2u);
  EXPECT_EQ(onto.Children(a).size(), 1u);
}

TEST(OntologyTest, ParentRelationsAligned) {
  const Ontology onto = MakeDiamond();
  const TermId leaf = onto.FindTerm("leaf");
  const auto relations = onto.ParentRelations(leaf);
  ASSERT_EQ(relations.size(), 2u);
  EXPECT_EQ(relations[0], RelationType::kIsA);      // parent a
  EXPECT_EQ(relations[1], RelationType::kPartOf);   // parent b
}

TEST(OntologyTest, TopologicalOrderParentsFirst) {
  const Ontology onto = MakeDiamond();
  const auto& topo = onto.TopologicalOrder();
  ASSERT_EQ(topo.size(), 4u);
  auto position = [&](TermId t) {
    return std::find(topo.begin(), topo.end(), t) - topo.begin();
  };
  for (TermId t = 0; t < onto.num_terms(); ++t) {
    for (TermId p : onto.Parents(t)) {
      EXPECT_LT(position(p), position(t));
    }
  }
}

TEST(OntologyTest, AncestorClosureIncludesSelf) {
  const Ontology onto = MakeDiamond();
  const TermId root = onto.FindTerm("root");
  const TermId leaf = onto.FindTerm("leaf");
  const auto anc = onto.AncestorsOf(leaf);
  EXPECT_EQ(anc.size(), 4u);  // leaf, a, b, root
  EXPECT_TRUE(onto.IsAncestorOrEqual(leaf, leaf));
  EXPECT_TRUE(onto.IsAncestorOrEqual(root, leaf));
  EXPECT_FALSE(onto.IsAncestorOrEqual(leaf, root));
}

TEST(OntologyTest, MultiParentAncestry) {
  const Ontology onto = MakeDiamond();
  const TermId a = onto.FindTerm("a");
  const TermId b = onto.FindTerm("b");
  const TermId leaf = onto.FindTerm("leaf");
  EXPECT_TRUE(onto.IsAncestorOrEqual(a, leaf));
  EXPECT_TRUE(onto.IsAncestorOrEqual(b, leaf));
  EXPECT_FALSE(onto.IsAncestorOrEqual(a, b));
}

TEST(OntologyTest, DescendantsIncludeSelf) {
  const Ontology onto = MakeDiamond();
  const TermId root = onto.FindTerm("root");
  const TermId a = onto.FindTerm("a");
  EXPECT_EQ(onto.DescendantsOf(root).size(), 4u);
  const auto desc_a = onto.DescendantsOf(a);
  EXPECT_EQ(desc_a.size(), 2u);  // a and leaf
}

TEST(OntologyTest, Depths) {
  const Ontology onto = MakeDiamond();
  EXPECT_EQ(onto.Depth(onto.FindTerm("root")), 0u);
  EXPECT_EQ(onto.Depth(onto.FindTerm("a")), 1u);
  EXPECT_EQ(onto.Depth(onto.FindTerm("leaf")), 2u);
}

TEST(OntologyTest, FindTermMissing) {
  const Ontology onto = MakeDiamond();
  EXPECT_EQ(onto.FindTerm("nope"), kInvalidTerm);
}

TEST(OntologyTest, MultipleRootsAllowed) {
  OntologyBuilder builder;
  builder.AddTerm("r1");
  builder.AddTerm("r2");
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->Roots().size(), 2u);
}

TEST(GoBranchTest, Names) {
  EXPECT_STREQ(GoBranchName(GoBranch::kMolecularFunction),
               "molecular_function");
  EXPECT_STREQ(GoBranchName(GoBranch::kBiologicalProcess),
               "biological_process");
  EXPECT_STREQ(GoBranchName(GoBranch::kCellularComponent),
               "cellular_component");
}

}  // namespace
}  // namespace lamo
