// Property sweep: Lin term similarity over randomly generated GO branches
// and annotation sets must satisfy its structural invariants for every
// seed.
#include <gtest/gtest.h>

#include "core/label_profile.h"
#include "ontology/similarity.h"
#include "synth/go_generator.h"

namespace lamo {
namespace {

struct Fixture {
  Ontology onto;
  AnnotationTable annotations{0};
  TermWeights weights;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  GoGeneratorConfig config;
  config.num_terms = 80;
  config.depth = 5;
  // A proper DAG, not a tree: every non-root term gets an extra parent with
  // probability 1/2, so multi-parent ancestor closures are exercised.
  config.extra_parent_probability = 0.5;
  Rng rng(seed);
  f.onto = GenerateGoBranch(config, rng);
  // Random annotations over all terms.
  f.annotations = AnnotationTable(400);
  for (ProteinId p = 0; p < 400; ++p) {
    const size_t count = 1 + rng.Uniform(3);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(
          f.annotations
              .Annotate(p, static_cast<TermId>(rng.Uniform(80)))
              .ok());
    }
  }
  f.weights = TermWeights::Compute(f.onto, f.annotations);
  return f;
}

class SimilarityProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityProperties, RangeSymmetryIdentity) {
  const Fixture f = MakeFixture(GetParam());
  TermSimilarity st(f.onto, f.weights);
  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 200; ++trial) {
    const TermId a = static_cast<TermId>(rng.Uniform(f.onto.num_terms()));
    const TermId b = static_cast<TermId>(rng.Uniform(f.onto.num_terms()));
    const double sim = st.Similarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
    EXPECT_DOUBLE_EQ(sim, st.Similarity(b, a));
    EXPECT_DOUBLE_EQ(st.Similarity(a, a), 1.0);
  }
}

TEST_P(SimilarityProperties, LowestCommonParentIsCommonAncestor) {
  const Fixture f = MakeFixture(GetParam());
  TermSimilarity st(f.onto, f.weights);
  Rng rng(GetParam() * 37);
  for (int trial = 0; trial < 200; ++trial) {
    const TermId a = static_cast<TermId>(rng.Uniform(f.onto.num_terms()));
    const TermId b = static_cast<TermId>(rng.Uniform(f.onto.num_terms()));
    const TermId lcp = st.LowestCommonParent(a, b);
    ASSERT_NE(lcp, kInvalidTerm);  // single root: always some ancestor
    EXPECT_TRUE(f.onto.IsAncestorOrEqual(lcp, a));
    EXPECT_TRUE(f.onto.IsAncestorOrEqual(lcp, b));
    // Minimality: no common ancestor has a smaller weight.
    for (TermId c : f.onto.AncestorsOf(a)) {
      if (f.onto.IsAncestorOrEqual(c, b)) {
        EXPECT_GE(f.weights.Weight(c) + 1e-15, f.weights.Weight(lcp));
      }
    }
  }
}

TEST_P(SimilarityProperties, AncestorSimilarityBeatsRootPath) {
  const Fixture f = MakeFixture(GetParam());
  TermSimilarity st(f.onto, f.weights);
  const TermId root = f.onto.Roots()[0];
  Rng rng(GetParam() * 41);
  for (int trial = 0; trial < 100; ++trial) {
    const TermId a = static_cast<TermId>(rng.Uniform(f.onto.num_terms()));
    if (a == root) continue;
    // Similarity to a parent is at least the similarity implied by meeting
    // only at the root (which is 0).
    for (TermId p : f.onto.Parents(a)) {
      EXPECT_GE(st.Similarity(a, p), 0.0);
      if (f.weights.Weight(p) < 1.0) {
        EXPECT_GT(st.Similarity(a, p), 0.0)
            << "informative parent must share information";
      }
    }
  }
}

TEST_P(SimilarityProperties, VertexSimilarityMonotoneInLabels) {
  // SV = 1 - prod (1 - ST) over all label pairs: appending a label to
  // either side only multiplies more factors <= 1 into the product, so SV
  // must be monotone non-decreasing as label sets grow (and stay in
  // [0, 1]).
  const Fixture f = MakeFixture(GetParam());
  TermSimilarity st(f.onto, f.weights);
  Rng rng(GetParam() * 43);
  for (int trial = 0; trial < 50; ++trial) {
    LabelSet a{static_cast<TermId>(rng.Uniform(f.onto.num_terms()))};
    LabelSet b{static_cast<TermId>(rng.Uniform(f.onto.num_terms()))};
    double previous = VertexSimilarity(st, a, b);
    for (int step = 0; step < 8; ++step) {
      const TermId extra = static_cast<TermId>(rng.Uniform(f.onto.num_terms()));
      (step % 2 == 0 ? a : b).push_back(extra);
      const double current = VertexSimilarity(st, a, b);
      EXPECT_GE(current, previous - 1e-12)
          << "SV decreased after adding a label pair (step " << step << ")";
      EXPECT_GE(current, 0.0);
      EXPECT_LE(current, 1.0);
      previous = current;
    }
  }
}

TEST_P(SimilarityProperties, VertexSimilarityUnknownConventions) {
  const Fixture f = MakeFixture(GetParam());
  TermSimilarity st(f.onto, f.weights);
  const LabelSet unknown;
  const LabelSet annotated{static_cast<TermId>(1)};
  EXPECT_DOUBLE_EQ(VertexSimilarity(st, unknown, unknown), 1.0);
  EXPECT_DOUBLE_EQ(VertexSimilarity(st, unknown, annotated), 0.5);
  EXPECT_DOUBLE_EQ(VertexSimilarity(st, annotated, unknown), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityProperties,
                         ::testing::Values(3, 77, 2024));

}  // namespace
}  // namespace lamo
