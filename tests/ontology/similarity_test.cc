#include "ontology/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "ontology/informative.h"

namespace lamo {
namespace {

// root(20 direct) -> a(40), b(40); a -> a1(50); b -> b1(50); shared child
// s with parents a and b (0 direct... give 10). Total occurrences = 210.
struct Fixture {
  Ontology onto;
  AnnotationTable annotations{0};
  TermWeights weights;
  TermId root, a, b, a1, b1, s;
};

Fixture MakeFixture() {
  Fixture f;
  OntologyBuilder builder;
  f.root = builder.AddTerm("root");
  f.a = builder.AddTerm("a");
  f.b = builder.AddTerm("b");
  f.a1 = builder.AddTerm("a1");
  f.b1 = builder.AddTerm("b1");
  f.s = builder.AddTerm("s");
  EXPECT_TRUE(builder.AddRelation(f.a, f.root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(f.b, f.root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(f.a1, f.a, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(f.b1, f.b, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(f.s, f.a, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(f.s, f.b, RelationType::kPartOf).ok());
  auto built = builder.Build();
  EXPECT_TRUE(built.ok());
  f.onto = std::move(built).value();

  const std::vector<std::pair<TermId, size_t>> direct = {
      {f.root, 20}, {f.a, 40}, {f.b, 40}, {f.a1, 50}, {f.b1, 50}, {f.s, 10}};
  size_t total = 0;
  for (const auto& [t, c] : direct) total += c;
  f.annotations = AnnotationTable(total);
  ProteinId next = 0;
  for (const auto& [t, c] : direct) {
    for (size_t i = 0; i < c; ++i) {
      EXPECT_TRUE(f.annotations.Annotate(next++, t).ok());
    }
  }
  f.weights = TermWeights::Compute(f.onto, f.annotations);
  return f;
}

TEST(WeightsTest, RootWeighsOne) {
  const Fixture f = MakeFixture();
  EXPECT_DOUBLE_EQ(f.weights.Weight(f.root), 1.0);
  EXPECT_DOUBLE_EQ(f.weights.LogWeight(f.root), 0.0);
}

TEST(WeightsTest, DescendantOccurrencesIncluded) {
  const Fixture f = MakeFixture();
  // a's closure: a(40) + a1(50) + s(10) = 100 of 210.
  EXPECT_NEAR(f.weights.Weight(f.a), 100.0 / 210.0, 1e-12);
  EXPECT_NEAR(f.weights.Weight(f.a1), 50.0 / 210.0, 1e-12);
  EXPECT_NEAR(f.weights.Weight(f.s), 10.0 / 210.0, 1e-12);
}

TEST(WeightsTest, MonotoneUpward) {
  const Fixture f = MakeFixture();
  // A parent's weight is at least each child's weight.
  for (TermId t = 0; t < f.onto.num_terms(); ++t) {
    for (TermId p : f.onto.Parents(t)) {
      EXPECT_GE(f.weights.Weight(p), f.weights.Weight(t));
    }
  }
}

TEST(SimilarityTest, IdenticalTermsScoreOne) {
  const Fixture f = MakeFixture();
  TermSimilarity st(f.onto, f.weights);
  EXPECT_DOUBLE_EQ(st.Similarity(f.a1, f.a1), 1.0);
  EXPECT_DOUBLE_EQ(st.Similarity(f.root, f.root), 1.0);
}

TEST(SimilarityTest, RootOnlyCommonAncestorScoresZero) {
  const Fixture f = MakeFixture();
  TermSimilarity st(f.onto, f.weights);
  // a1 and b1 share only the root.
  EXPECT_DOUBLE_EQ(st.Similarity(f.a1, f.b1), 0.0);
}

TEST(SimilarityTest, LinFormulaValue) {
  const Fixture f = MakeFixture();
  TermSimilarity st(f.onto, f.weights);
  // a1 vs s: common ancestors {a, root}; lowest = a.
  const double expected = 2.0 * std::log(f.weights.Weight(f.a)) /
                          (std::log(f.weights.Weight(f.a1)) +
                           std::log(f.weights.Weight(f.s)));
  EXPECT_NEAR(st.Similarity(f.a1, f.s), expected, 1e-12);
  EXPECT_GT(st.Similarity(f.a1, f.s), 0.0);
  EXPECT_LT(st.Similarity(f.a1, f.s), 1.0);
}

TEST(SimilarityTest, LowestCommonParentPicksMostInformative) {
  const Fixture f = MakeFixture();
  TermSimilarity st(f.onto, f.weights);
  EXPECT_EQ(st.LowestCommonParent(f.a1, f.s), f.a);
  EXPECT_EQ(st.LowestCommonParent(f.a1, f.b1), f.root);
  EXPECT_EQ(st.LowestCommonParent(f.a1, f.a1), f.a1);
  // s has two parents; with b1 the common ancestry goes through b.
  EXPECT_EQ(st.LowestCommonParent(f.s, f.b1), f.b);
}

TEST(SimilarityTest, SymmetricAndCached) {
  const Fixture f = MakeFixture();
  TermSimilarity st(f.onto, f.weights);
  const double ab = st.Similarity(f.a1, f.s);
  const double ba = st.Similarity(f.s, f.a1);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_EQ(st.cache_size(), 1u);  // one unordered pair memoized
}

TEST(SimilarityTest, AncestorDescendantHigherThanCousins) {
  const Fixture f = MakeFixture();
  TermSimilarity st(f.onto, f.weights);
  EXPECT_GT(st.Similarity(f.a, f.a1), st.Similarity(f.a1, f.b1));
}

TEST(SimilarityTest, DisjointRootsScoreZero) {
  OntologyBuilder builder;
  const TermId r1 = builder.AddTerm("r1");
  const TermId r2 = builder.AddTerm("r2");
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  AnnotationTable table(2);
  ASSERT_TRUE(table.Annotate(0, r1).ok());
  ASSERT_TRUE(table.Annotate(1, r2).ok());
  const TermWeights w = TermWeights::Compute(*built, table);
  TermSimilarity st(*built, w);
  EXPECT_DOUBLE_EQ(st.Similarity(r1, r2), 0.0);
}

TEST(InformativeTest, ThresholdRule) {
  const Fixture f = MakeFixture();
  InformativeConfig config;
  config.min_direct_proteins = 40;
  const auto classes =
      InformativeClasses::Compute(f.onto, f.annotations, config);
  EXPECT_TRUE(classes.IsInformative(f.a));
  EXPECT_TRUE(classes.IsInformative(f.a1));
  EXPECT_FALSE(classes.IsInformative(f.s));
  EXPECT_FALSE(classes.IsInformative(f.root));
}

TEST(InformativeTest, BorderExcludesDominatedTerms) {
  const Fixture f = MakeFixture();
  InformativeConfig config;
  config.min_direct_proteins = 40;
  const auto classes =
      InformativeClasses::Compute(f.onto, f.annotations, config);
  // a is informative with no informative ancestor -> border.
  EXPECT_TRUE(classes.IsBorderInformative(f.a));
  // a1 is informative but sits under informative a -> not border.
  EXPECT_FALSE(classes.IsBorderInformative(f.a1));
  EXPECT_EQ(classes.BorderInformative(),
            (std::vector<TermId>{f.a, f.b}));
}

TEST(InformativeTest, LabelCandidates) {
  const Fixture f = MakeFixture();
  InformativeConfig config;
  config.min_direct_proteins = 40;
  const auto classes =
      InformativeClasses::Compute(f.onto, f.annotations, config);
  EXPECT_TRUE(classes.IsLabelCandidate(f.a));
  EXPECT_TRUE(classes.IsLabelCandidate(f.a1));  // descendant of border a
  EXPECT_TRUE(classes.IsLabelCandidate(f.s));   // descendant of border a, b
  EXPECT_FALSE(classes.IsLabelCandidate(f.root));
}

}  // namespace
}  // namespace lamo
