#!/bin/sh
# Live telemetry contract: METRICS scrapes from both `lamo serve` and
# `lamo router` must pass lamo_metrics_check (valid Prometheus exposition,
# consistent histograms) and stay within the final --report totals; request
# IDs stamped by the router must round-trip into the backend access logs
# one-to-one; --access-log must never perturb response bytes (cmp over an
# identical --stdin script); and `lamo_bench_client --top` must render the
# per-backend live table. Also covers the STATS uptime_s/start_time fields
# and the bench client's nonzero exit on ERR responses.
set -e
LAMO="$1"
BENCH="$2"
METRICS_CHECK="$3"
REPORT_CHECK="$4"
WORK="$(mktemp -d)"
SERVER=""
ROUTER=""
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null
  [ -n "$ROUTER" ] && kill "$ROUTER" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$LAMO" generate --proteins 300 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 3 --min-freq 15 --networks 4 --uniqueness 0.8 \
  --out "$WORK/motifs.txt" > /dev/null
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" > /dev/null
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model.lamosnap" --shards 2 > /dev/null

wait_port() {
  PORT=""
  for _ in $(seq 1 200); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1")"
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "FAIL: no listening banner in $1" >&2
  exit 1
}

# --- Part 1: --access-log must never change a single response byte. ------
# Identical --stdin scripts (including client-supplied #id tokens and a
# malformed line) with and without the access log; stdout must cmp equal.
# Time-varying verbs (STATS/METRICS) are deliberately excluded.
cat > "$WORK/script.txt" << 'EOF'
PREDICT 7 3
#5 PREDICT 7 3
MOTIFS 42
#900719925474099 TERMINFO T0005
HEALTH
PREDICT nope
PREDICT 17 2
EOF
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --stdin \
  < "$WORK/script.txt" > "$WORK/plain.out" 2> /dev/null
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --stdin \
  --access-log "$WORK/stdin_access.jsonl" --access-sample 1 --slow-ms 0 \
  < "$WORK/script.txt" > "$WORK/logged.out" 2> /dev/null
cmp "$WORK/plain.out" "$WORK/logged.out" || {
  echo "FAIL: --access-log perturbed response bytes" >&2
  exit 1
}
# Sample 1 logs every request, echoing client-supplied ids verbatim.
test "$(wc -l < "$WORK/stdin_access.jsonl")" -eq 7 || {
  echo "FAIL: expected 7 access-log lines at --access-sample 1" >&2
  cat "$WORK/stdin_access.jsonl" >&2
  exit 1
}
grep -q '"id":5,' "$WORK/stdin_access.jsonl" || {
  echo "FAIL: client-supplied request id not echoed into the access log" >&2
  exit 1
}
grep -q '"status":"err"' "$WORK/stdin_access.jsonl" || {
  echo "FAIL: malformed request missing from the access log" >&2
  exit 1
}

# --- Part 2: serve METRICS under load + report cross-check. --------------
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --port 0 \
  --report "$WORK/serve_report.json" \
  --access-log "$WORK/serve_access.jsonl" --access-sample 3 --slow-ms 0 \
  > "$WORK/serve.log" 2>&1 &
SERVER=$!
wait_port "$WORK/serve.log"
SPORT="$PORT"

"$BENCH" --port "$SPORT" --proteins 300 --connections 4 --requests 50 \
  --out "$WORK/bench_serve.json" > /dev/null
# STATS carries the uptime/start-time fields backing the window rates.
"$BENCH" --port "$SPORT" --query "STATS" > "$WORK/serve_stats.txt"
grep -q "uptime_s " "$WORK/serve_stats.txt" || {
  echo "FAIL: serve STATS lacks uptime_s" >&2
  exit 1
}
grep -q "start_time " "$WORK/serve_stats.txt" || {
  echo "FAIL: serve STATS lacks start_time" >&2
  exit 1
}
# One live edge mutation before the scrape, so the update.* counter family
# shows up in the exposition and the final report.
EDGE="$(sed -n '3p' "$WORK/ds.graph.txt")"
"$BENCH" --port "$SPORT" --query "DELEDGE $EDGE" > "$WORK/deledge.txt"
grep -q "applied DELEDGE $EDGE" "$WORK/deledge.txt" || {
  echo "FAIL: DELEDGE not acknowledged: $(cat "$WORK/deledge.txt")" >&2
  exit 1
}
# Two scrapes a beat apart so the window ring has an archived slot.
"$BENCH" --port "$SPORT" --query "METRICS" > /dev/null
sleep 1
"$BENCH" --port "$SPORT" --query "METRICS" > "$WORK/serve_metrics.txt"
"$METRICS_CHECK" "$WORK/serve_metrics.txt" || {
  echo "FAIL: serve METRICS failed lamo_metrics_check" >&2
  exit 1
}
grep -q '^lamo_serve_requests_total ' "$WORK/serve_metrics.txt" || {
  echo "FAIL: serve METRICS lacks lamo_serve_requests_total" >&2
  exit 1
}
grep -q 'lamo_serve_request_us_bucket{le="+Inf"}' "$WORK/serve_metrics.txt" || {
  echo "FAIL: serve METRICS lacks the request latency histogram" >&2
  exit 1
}
grep -q 'window="lifetime"' "$WORK/serve_metrics.txt" || {
  echo "FAIL: serve METRICS lacks lifetime window rates" >&2
  exit 1
}
grep -q '^lamo_update_applied_total 1$' "$WORK/serve_metrics.txt" || {
  echo "FAIL: serve METRICS lacks lamo_update_applied_total after DELEDGE" >&2
  grep '^lamo_update' "$WORK/serve_metrics.txt" >&2 || true
  exit 1
}

# Bench client contract: a load run that hits ERR responses must exit
# nonzero and name the first failing request (proteins beyond the snapshot).
rc=0
"$BENCH" --port "$SPORT" --proteins 100000 --connections 2 --requests 20 \
  > /dev/null 2> "$WORK/bench_err.txt" || rc=$?
test "$rc" -ne 0 || {
  echo "FAIL: bench client exited 0 despite ERR responses" >&2
  exit 1
}
grep -q "error: connection" "$WORK/bench_err.txt" || {
  echo "FAIL: bench client did not report the first failing request" >&2
  cat "$WORK/bench_err.txt" >&2
  exit 1
}

kill -TERM "$SERVER"
wait "$SERVER" || {
  echo "FAIL: server exited nonzero after SIGTERM" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
SERVER=""
# Mid-run scrape totals must be <= the final report (counters are monotone),
# and the report itself must pass the serve.* invariants (including
# serve.access_logged <= serve.requests).
"$METRICS_CHECK" "$WORK/serve_metrics.txt" \
  --report "$WORK/serve_report.json" || {
  echo "FAIL: serve METRICS exceeded final --report totals" >&2
  exit 1
}
"$REPORT_CHECK" "$WORK/serve_report.json" serve.requests \
  serve.access_logged update.applied hist:serve.request_us > /dev/null
grep -q '"id":' "$WORK/serve_access.jsonl" || {
  echo "FAIL: serve access log is empty" >&2
  exit 1
}

# --- Part 3: router telemetry + request-ID round-trip. -------------------
"$LAMO" router --snapshot "$WORK/model.lamosnap" --backends 2 \
  --mode sharded --port 0 --report "$WORK/router_report.json" \
  --access-log "$WORK/router_access.jsonl" --access-sample 1 --slow-ms 0 \
  --backend-access-log "$WORK/backend_access.jsonl" \
  > "$WORK/router.log" 2> /dev/null &
ROUTER=$!
wait_port "$WORK/router.log"
RPORT="$PORT"

"$BENCH" --port "$RPORT" --cluster --proteins 300 --connections 4 \
  --requests 100 --out "$WORK/bench_router.json" > /dev/null
grep -q '"errors":0' "$WORK/bench_router.json" || {
  echo "FAIL: bench over the router saw errors" >&2
  exit 1
}
"$BENCH" --port "$RPORT" --query "STATS" > "$WORK/router_stats.txt"
grep -q "uptime_s " "$WORK/router_stats.txt" || {
  echo "FAIL: router STATS lacks uptime_s" >&2
  exit 1
}
grep -q "ids_issued " "$WORK/router_stats.txt" || {
  echo "FAIL: router STATS lacks ids_issued" >&2
  exit 1
}
"$BENCH" --port "$RPORT" --query "METRICS" > /dev/null
sleep 1
"$BENCH" --port "$RPORT" --query "METRICS" > "$WORK/router_metrics.txt"
"$METRICS_CHECK" "$WORK/router_metrics.txt" || {
  echo "FAIL: router METRICS failed lamo_metrics_check" >&2
  exit 1
}
# The router re-exports every backend's series labeled by backend and shard.
grep -q 'backend="0"' "$WORK/router_metrics.txt" || {
  echo "FAIL: router METRICS lacks backend=\"0\" labeled series" >&2
  exit 1
}
grep -q 'backend="1"' "$WORK/router_metrics.txt" || {
  echo "FAIL: router METRICS lacks backend=\"1\" labeled series" >&2
  exit 1
}
grep -q 'shard="0/2"' "$WORK/router_metrics.txt" || {
  echo "FAIL: router METRICS lacks shard=\"0/2\" labeled series" >&2
  exit 1
}
grep -q '^lamo_router_ids_issued_total ' "$WORK/router_metrics.txt" || {
  echo "FAIL: router METRICS lacks lamo_router_ids_issued_total" >&2
  exit 1
}

# lamo top: one poll must show the verbatim per-backend STATS lines plus the
# windowed metric table.
"$BENCH" --port "$RPORT" --top --watch 1 > "$WORK/top.txt"
grep -q "lamo top: 127.0.0.1:$RPORT" "$WORK/top.txt" || {
  echo "FAIL: --top did not print its banner" >&2
  cat "$WORK/top.txt" >&2
  exit 1
}
grep -q "backend 0 " "$WORK/top.txt" || {
  echo "FAIL: --top output lacks the per-backend STATS lines" >&2
  exit 1
}

kill -TERM "$ROUTER"
wait "$ROUTER" || {
  echo "FAIL: router exited nonzero after SIGTERM" >&2
  cat "$WORK/router.log" >&2
  exit 1
}
ROUTER=""

# Every nonzero id the router logged must appear exactly once across the
# backend access logs, and vice versa (admin verbs carry id 0; router parse
# errors never reach a backend, but this run sends only well-formed queries).
grep -o '"id":[0-9]*' "$WORK/router_access.jsonl" | cut -d: -f2 \
  | grep -v '^0$' | sort -n > "$WORK/router_ids.txt"
cat "$WORK/backend_access.jsonl.0" "$WORK/backend_access.jsonl.1" \
  | grep -o '"id":[0-9]*' | cut -d: -f2 | grep -v '^0$' | sort -n \
  > "$WORK/backend_ids.txt"
test -s "$WORK/router_ids.txt" || {
  echo "FAIL: router access log has no stamped request ids" >&2
  exit 1
}
cmp "$WORK/router_ids.txt" "$WORK/backend_ids.txt" || {
  echo "FAIL: router and backend access-log request ids do not match" >&2
  diff "$WORK/router_ids.txt" "$WORK/backend_ids.txt" | head >&2
  exit 1
}
# Backend log lines carry the backend_us span the router measured around.
grep -q '"backend":' "$WORK/router_access.jsonl" || {
  echo "FAIL: router access log lacks backend attribution" >&2
  exit 1
}

# Router report: ids_issued == backend_requests + errors is checked inside
# lamo_report_check whenever router.ids_issued is present.
"$METRICS_CHECK" "$WORK/router_metrics.txt" \
  --report "$WORK/router_report.json" || {
  echo "FAIL: router METRICS exceeded final --report totals" >&2
  exit 1
}
"$REPORT_CHECK" "$WORK/router_report.json" router.requests \
  router.ids_issued router.backend_requests > /dev/null

echo "metrics OK: exposition validated on serve+router, ids round-trip" \
  "$(wc -l < "$WORK/router_ids.txt" | tr -d ' ') requests, access log" \
  "byte-neutral, top table rendered"
