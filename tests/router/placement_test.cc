#include "router/placement.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lamo {
namespace {

TEST(RouterHashTest, DeterministicAndSpread) {
  EXPECT_EQ(RouterHash("p:42"), RouterHash("p:42"));
  EXPECT_NE(RouterHash("p:42"), RouterHash("p:43"));
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(RouterHash(""), 1469598103934665603ULL);
  // Sequential keys should not collapse onto a few values.
  std::set<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(RouterHash("p:" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(ShardBackendTest, MatchesModularOwnership) {
  for (uint32_t protein = 0; protein < 100; ++protein) {
    for (size_t n = 1; n <= 8; ++n) {
      EXPECT_EQ(ShardBackend(protein, n), protein % n);
    }
  }
}

TEST(HashRingTest, PrimaryInRangeAndStablePerKey) {
  const HashRing ring(4);
  const HashRing same(4);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "p:" + std::to_string(i);
    const size_t node = ring.Primary(key);
    EXPECT_LT(node, 4u);
    // Placement is a pure function of (key, ring shape): a rebuilt ring
    // answers identically, so a router restart keeps cache affinity.
    EXPECT_EQ(node, same.Primary(key));
  }
}

TEST(HashRingTest, EveryNodeOwnsASlice) {
  const HashRing ring(4);
  std::map<size_t, int> owned;
  const int kKeys = 4000;
  for (int i = 0; i < kKeys; ++i) {
    owned[ring.Primary("p:" + std::to_string(i))]++;
  }
  ASSERT_EQ(owned.size(), 4u);
  for (const auto& [node, count] : owned) {
    // With 64 virtual nodes the max/min share stays far from degenerate;
    // require every node to own at least a third of its fair share.
    EXPECT_GT(count, kKeys / 12) << "node " << node << " starved";
  }
}

TEST(HashRingTest, AddingANodeMovesOnlyASmallFraction) {
  const HashRing four(4);
  const HashRing five(5);
  const int kKeys = 4000;
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "p:" + std::to_string(i);
    if (four.Primary(key) != five.Primary(key)) ++moved;
  }
  // Consistent hashing: going 4 -> 5 nodes should move ~1/5 of keys.
  // Modular placement would move ~4/5. Allow double the ideal.
  EXPECT_LT(moved, 2 * kKeys / 5)
      << "ring moved " << moved << "/" << kKeys << " keys";
  EXPECT_GT(moved, 0);
}

TEST(HashRingTest, PreferenceCoversAllNodesOncePrimaryFirst) {
  const HashRing ring(5);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "p:" + std::to_string(i);
    const std::vector<size_t> order = ring.Preference(key);
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order[0], ring.Primary(key));
    std::set<size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 5u);
  }
}

TEST(HashRingTest, SingleNodeRing) {
  const HashRing ring(1);
  EXPECT_EQ(ring.Primary("anything"), 0u);
  EXPECT_EQ(ring.Preference("anything"), std::vector<size_t>{0});
}

}  // namespace
}  // namespace lamo
