// Process-level router tests: spawn real `lamo serve` backends (the lamo
// binary path is compiled in via LAMO_BINARY_PATH), route through Cluster /
// RouterService, and compare every answer byte-for-byte against an
// in-process SnapshotService over the same snapshot. Includes the
// backend-death drill: SIGKILL a backend mid-burst and require every request
// to still be answered correctly through the respawn window.
#include "router/cluster.h"

#include <gtest/gtest.h>
#include <signal.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "router/router.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "../serve/serve_test_util.h"

namespace lamo {
namespace {

/// Temp dir with the test snapshot (and its 2-shard split) written once.
class RouterClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("lamo_router_test_" + std::to_string(getpid())));
    std::filesystem::create_directories(*dir_);
    base_ = new std::string((*dir_ / "model.lamosnap").string());
    ASSERT_TRUE(WriteSnapshot(TestSnapshot(), *base_).ok());
    for (uint32_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(WriteSnapshot(MakeShard(TestSnapshot(), i, 2),
                                ShardSnapshotPath(*base_, i, 2))
                      .ok());
    }
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    std::filesystem::remove_all(*dir_, ec);
    delete dir_;
    delete base_;
    dir_ = nullptr;
    base_ = nullptr;
  }

  static ClusterOptions Options(size_t backends, bool sharded) {
    ClusterOptions options;
    options.binary = LAMO_BINARY_PATH;
    options.snapshot = *base_;
    options.sharded = sharded;
    options.num_backends = backends;
    options.retry_deadline_ms = 15'000;
    return options;
  }

  static std::filesystem::path* dir_;
  static std::string* base_;
};

std::filesystem::path* RouterClusterTest::dir_ = nullptr;
std::string* RouterClusterTest::base_ = nullptr;

TEST_F(RouterClusterTest, ForwardAnswersLikeLocalService) {
  Cluster cluster(Options(1, /*sharded=*/false));
  ASSERT_TRUE(cluster.Start().ok());
  SnapshotService local(TestSnapshot());

  std::string response;
  bool retried = false;
  ASSERT_TRUE(cluster.Forward(0, "PREDICT 5 3", &response, &retried).ok());
  EXPECT_EQ(response, local.Handle("PREDICT 5 3"));
  EXPECT_FALSE(retried);
  ASSERT_TRUE(cluster.Forward(0, "MOTIFS 5", &response, &retried).ok());
  EXPECT_EQ(response, local.Handle("MOTIFS 5"));
  EXPECT_EQ(cluster.num_up(), 1u);
  cluster.Stop();
}

TEST_F(RouterClusterTest, RouterServiceShardedMatchesSingleSnapshot) {
  Cluster cluster(Options(2, /*sharded=*/true));
  ASSERT_TRUE(cluster.Start().ok());
  RouterService router(&cluster, /*sharded=*/true);
  SnapshotService local(TestSnapshot());

  for (uint32_t p = 0; p < 24; ++p) {
    const std::string predict = "PREDICT " + std::to_string(p) + " 3";
    EXPECT_EQ(router.Handle(predict), local.Handle(predict)) << predict;
    const std::string motifs = "MOTIFS " + std::to_string(p);
    EXPECT_EQ(router.Handle(motifs), local.Handle(motifs)) << motifs;
  }
  // TERMINFO answers are placement-independent (every shard keeps the full
  // ontology).
  const std::string term =
      "TERMINFO " +
      TestSnapshot().ontology.TermName(TestSnapshot().categories[0]);
  EXPECT_EQ(router.Handle(term), local.Handle(term));
  EXPECT_EQ(router.stats().errors.load(), 0u);
  cluster.Stop();
}

TEST_F(RouterClusterTest, RouterServiceReplicatedMatchesSingleSnapshot) {
  Cluster cluster(Options(2, /*sharded=*/false));
  ASSERT_TRUE(cluster.Start().ok());
  RouterService router(&cluster, /*sharded=*/false);
  SnapshotService local(TestSnapshot());

  for (uint32_t p = 0; p < 24; ++p) {
    const std::string predict = "PREDICT " + std::to_string(p) + " 2";
    EXPECT_EQ(router.Handle(predict), local.Handle(predict)) << predict;
  }
  // Both backends took some share of the traffic (consistent hashing
  // spreads keys; 24 distinct proteins make a one-sided split vanishingly
  // unlikely).
  EXPECT_GT(cluster.backend(0).requests() + cluster.backend(1).requests(),
            23u);
  cluster.Stop();
}

TEST_F(RouterClusterTest, HealthAndStatsAggregateClusterView) {
  Cluster cluster(Options(2, /*sharded=*/true));
  ASSERT_TRUE(cluster.Start().ok());
  RouterService router(&cluster, /*sharded=*/true);

  const std::string health = router.Handle("HEALTH");
  EXPECT_EQ(health.rfind("OK 1\nready backends=2/2 mode=sharded", 0), 0u)
      << health;

  router.Handle("PREDICT 3 3");
  const std::string stats = router.Handle("STATS");
  EXPECT_NE(stats.find("mode sharded"), std::string::npos);
  EXPECT_NE(stats.find("backend 0 up"), std::string::npos);
  EXPECT_NE(stats.find("backend 1 up"), std::string::npos);
  EXPECT_NE(stats.find("checksum="), std::string::npos);
  EXPECT_NE(stats.find("shard=0/2"), std::string::npos);
  EXPECT_NE(stats.find("shard=1/2"), std::string::npos);
  cluster.Stop();
}

TEST_F(RouterClusterTest, BackendDeathMidBurstLosesNoRequests) {
  Cluster cluster(Options(1, /*sharded=*/false));
  ASSERT_TRUE(cluster.Start().ok());
  RouterService router(&cluster, /*sharded=*/false);
  SnapshotService local(TestSnapshot());

  ASSERT_EQ(router.Handle("PREDICT 1 3"), local.Handle("PREDICT 1 3"));

  // SIGKILL the only backend, then burst queries immediately: each must be
  // answered correctly once the monitor respawns it — the client never sees
  // a transport error or an ERR.
  const pid_t victim = cluster.backend(0).pid();
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(victim, SIGKILL), 0);
  for (uint32_t p = 0; p < 8; ++p) {
    const std::string line = "PREDICT " + std::to_string(p) + " 3";
    EXPECT_EQ(router.Handle(line), local.Handle(line)) << line;
  }
  EXPECT_GE(cluster.backend(0).respawns(), 1u);
  EXPECT_GE(router.stats().retries.load(), 1u);
  EXPECT_EQ(router.stats().errors.load(), 0u);
  cluster.Stop();
}

TEST_F(RouterClusterTest, ReplicatedFailoverWhileBackendDown) {
  Cluster cluster(Options(2, /*sharded=*/false));
  ASSERT_TRUE(cluster.Start().ok());
  RouterService router(&cluster, /*sharded=*/false);
  SnapshotService local(TestSnapshot());

  const pid_t victim = cluster.backend(1).pid();
  ASSERT_GT(victim, 0);
  ASSERT_EQ(kill(victim, SIGKILL), 0);
  for (uint32_t p = 0; p < 16; ++p) {
    const std::string line = "PREDICT " + std::to_string(p) + " 3";
    EXPECT_EQ(router.Handle(line), local.Handle(line)) << line;
  }
  EXPECT_EQ(router.stats().errors.load(), 0u);
  cluster.Stop();
}

TEST_F(RouterClusterTest, RollingReloadKeepsAnswering) {
  Cluster cluster(Options(2, /*sharded=*/true));
  ASSERT_TRUE(cluster.Start().ok());
  RouterService router(&cluster, /*sharded=*/true);
  SnapshotService local(TestSnapshot());

  // Reload onto a copy of the same model under a new path: every backend
  // must swap (respawns bump, snapshot paths change) with zero failed
  // requests before/after.
  const std::string new_base = (*dir_ / "model_v2.lamosnap").string();
  ASSERT_TRUE(WriteSnapshot(TestSnapshot(), new_base).ok());
  for (uint32_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(WriteSnapshot(MakeShard(TestSnapshot(), i, 2),
                              ShardSnapshotPath(new_base, i, 2))
                    .ok());
  }

  const std::string reload_response = router.Handle("RELOAD " + new_base);
  EXPECT_EQ(reload_response.rfind("OK 1\nreloaded backends=2", 0), 0u)
      << reload_response;
  EXPECT_EQ(cluster.reloads(), 1u);
  EXPECT_EQ(cluster.base_snapshot(), new_base);
  EXPECT_GE(cluster.backend(0).respawns(), 1u);
  EXPECT_GE(cluster.backend(1).respawns(), 1u);
  EXPECT_EQ(cluster.backend(0).snapshot_path(),
            ShardSnapshotPath(new_base, 0, 2));

  for (uint32_t p = 0; p < 8; ++p) {
    const std::string line = "PREDICT " + std::to_string(p) + " 3";
    EXPECT_EQ(router.Handle(line), local.Handle(line)) << line;
  }
  EXPECT_EQ(router.stats().errors.load(), 0u);
  cluster.Stop();
}

TEST_F(RouterClusterTest, ReloadRejectsBadSnapshotAndKeepsServing) {
  Cluster cluster(Options(1, /*sharded=*/false));
  ASSERT_TRUE(cluster.Start().ok());
  RouterService router(&cluster, /*sharded=*/false);

  const std::string response =
      router.Handle("RELOAD " + (*dir_ / "missing.lamosnap").string());
  EXPECT_EQ(response.rfind("ERR ", 0), 0u) << response;
  EXPECT_EQ(cluster.reloads(), 0u);
  EXPECT_EQ(cluster.backend(0).respawns(), 0u);
  EXPECT_EQ(router.Handle("PREDICT 2 3").rfind("OK ", 0), 0u);

  // A truncated file must be rejected by pack-validation, untouched cluster.
  const std::string truncated = (*dir_ / "truncated.lamosnap").string();
  {
    std::FILE* f = std::fopen(truncated.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("LAMOSNAPxxxx", 1, 12, f);
    std::fclose(f);
  }
  const std::string rejected = router.Handle("RELOAD " + truncated);
  EXPECT_EQ(rejected.rfind("ERR ", 0), 0u) << rejected;
  EXPECT_EQ(router.Handle("PREDICT 2 3").rfind("OK ", 0), 0u);
  cluster.Stop();
}

TEST_F(RouterClusterTest, ShardedReloadRejectsMismatchedShardCount) {
  Cluster cluster(Options(2, /*sharded=*/true));
  ASSERT_TRUE(cluster.Start().ok());

  // Hand-build shard files whose embedded shard section says 3-of-3 under a
  // 2-backend cluster: Reload must refuse them.
  const std::string bad_base = (*dir_ / "bad_shards.lamosnap").string();
  for (uint32_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(WriteSnapshot(MakeShard(TestSnapshot(), i, 3),
                              ShardSnapshotPath(bad_base, i, 2))
                    .ok());
  }
  const Status status = cluster.Reload(bad_base);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(cluster.reloads(), 0u);
  cluster.Stop();
}

}  // namespace
}  // namespace lamo
