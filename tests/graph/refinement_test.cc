#include "graph/refinement.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

SmallGraph Path(size_t n) {
  SmallGraph g(n);
  for (uint32_t v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  return g;
}

TEST(RefinementTest, RegularGraphStaysMonochromatic) {
  // Cycles are regular: 1-WL cannot split them.
  SmallGraph c5(5);
  for (uint32_t i = 0; i < 5; ++i) c5.AddEdge(i, (i + 1) % 5);
  const auto colors = RefineColors(c5);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(colors[v], colors[0]);
}

TEST(RefinementTest, PathSplitsByDistanceToEnds) {
  const auto colors = RefineColors(Path(5));
  // Ends share a color, their neighbors share a color, the center is alone.
  EXPECT_EQ(colors[0], colors[4]);
  EXPECT_EQ(colors[1], colors[3]);
  EXPECT_NE(colors[0], colors[1]);
  EXPECT_NE(colors[1], colors[2]);
  EXPECT_NE(colors[0], colors[2]);
}

TEST(RefinementTest, RespectsInitialColoring) {
  // Individualizing one end of a path breaks the mirror symmetry.
  std::vector<uint32_t> initial(5, 1);
  initial[0] = 0;
  const auto colors = RefineColors(Path(5), initial);
  EXPECT_NE(colors[0], colors[4]);
  EXPECT_NE(colors[1], colors[3]);
}

TEST(RefinementTest, ColorsInvariantUnderIsomorphism) {
  // The color *histogram* must be identical for relabeled graphs.
  const SmallGraph g = Path(6);
  const auto colors_a = RefineColors(g);
  const SmallGraph permuted = g.Permuted({5, 3, 1, 0, 2, 4});
  const auto colors_b = RefineColors(permuted);
  std::vector<uint32_t> hist_a(6, 0), hist_b(6, 0);
  for (uint32_t c : colors_a) ++hist_a[c];
  for (uint32_t c : colors_b) ++hist_b[c];
  EXPECT_EQ(hist_a, hist_b);
}

TEST(RefinementTest, ColorCellsGroupsVertices) {
  const auto colors = RefineColors(Path(5));
  const auto cells = ColorCells(colors);
  size_t total = 0;
  for (const auto& cell : cells) {
    total += cell.size();
    EXPECT_TRUE(std::is_sorted(cell.begin(), cell.end()));
  }
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(cells.size(), 3u);
}

TEST(RefinementTest, EmptyGraph) {
  EXPECT_TRUE(RefineColors(SmallGraph(0)).empty());
  EXPECT_TRUE(ColorCells({}).empty());
}

}  // namespace
}  // namespace lamo
