#include "graph/small_graph.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

SmallGraph Cycle(size_t n) {
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    g.AddEdge(i, static_cast<uint32_t>((i + 1) % n));
  }
  return g;
}

TEST(SmallGraphTest, AddRemoveEdges) {
  SmallGraph g(4);
  EXPECT_EQ(g.num_edges(), 0u);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  g.RemoveEdge(0, 1);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SmallGraphTest, SelfLoopIgnored) {
  SmallGraph g(3);
  g.AddEdge(1, 1);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(SmallGraphTest, FromEdgesValid) {
  auto g = SmallGraph::FromEdges(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(SmallGraphTest, FromEdgesRejectsBadInput) {
  EXPECT_FALSE(SmallGraph::FromEdges(3, {{0, 3}}).ok());
  EXPECT_FALSE(SmallGraph::FromEdges(3, {{1, 1}}).ok());
  EXPECT_FALSE(SmallGraph::FromEdges(65, {}).ok());
}

TEST(SmallGraphTest, DegreesAndNeighbors) {
  const SmallGraph g = Cycle(5);
  for (uint32_t v = 0; v < 5; ++v) {
    EXPECT_EQ(g.Degree(v), 2u);
  }
  EXPECT_EQ(g.Neighbors(0), (std::vector<uint32_t>{1, 4}));
}

TEST(SmallGraphTest, EdgesLexicographic) {
  const SmallGraph g = Cycle(4);
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0], std::make_pair(0u, 1u));
  EXPECT_EQ(edges[1], std::make_pair(0u, 3u));
  EXPECT_EQ(edges[2], std::make_pair(1u, 2u));
  EXPECT_EQ(edges[3], std::make_pair(2u, 3u));
}

TEST(SmallGraphTest, Connectivity) {
  EXPECT_TRUE(Cycle(6).IsConnected());
  SmallGraph disconnected(4);
  disconnected.AddEdge(0, 1);
  disconnected.AddEdge(2, 3);
  EXPECT_FALSE(disconnected.IsConnected());
  EXPECT_TRUE(SmallGraph(1).IsConnected());
  EXPECT_TRUE(SmallGraph(0).IsConnected());
  SmallGraph isolated(2);
  EXPECT_FALSE(isolated.IsConnected());
}

TEST(SmallGraphTest, PermutedRelabels) {
  // Path 0-1-2; permutation [2,1,0] reverses it (still a path).
  SmallGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  const SmallGraph reversed = path.Permuted({2, 1, 0});
  EXPECT_TRUE(reversed.HasEdge(0, 1));
  EXPECT_TRUE(reversed.HasEdge(1, 2));
  EXPECT_FALSE(reversed.HasEdge(0, 2));

  // Permutation [1,2,0]: result vertex i is original perm[i].
  // Result edge (i,j) iff original has (perm[i], perm[j]).
  const SmallGraph rotated = path.Permuted({1, 2, 0});
  EXPECT_TRUE(rotated.HasEdge(0, 1));   // orig (1,2)
  EXPECT_TRUE(rotated.HasEdge(0, 2));   // orig (1,0)
  EXPECT_FALSE(rotated.HasEdge(1, 2));  // orig (2,0)
}

TEST(SmallGraphTest, InducedSubgraph) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  ASSERT_TRUE(b.AddEdge(0, 4).ok());
  const Graph g = b.Build();
  const SmallGraph sub = SmallGraph::InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_FALSE(sub.HasEdge(0, 2));
}

TEST(SmallGraphTest, AdjacencyCodeDistinguishes) {
  SmallGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  SmallGraph other(3);
  other.AddEdge(0, 1);
  other.AddEdge(0, 2);
  EXPECT_NE(path.AdjacencyCode(), other.AdjacencyCode());
  EXPECT_EQ(path.AdjacencyCode(), path.AdjacencyCode());
}

TEST(SmallGraphTest, EqualityStructural) {
  EXPECT_TRUE(Cycle(4) == Cycle(4));
  EXPECT_FALSE(Cycle(4) == Cycle(5));
  SmallGraph a = Cycle(4);
  SmallGraph b = Cycle(4);
  b.AddEdge(0, 2);
  EXPECT_FALSE(a == b);
}

TEST(SmallGraphTest, MaxVerticesBoundary) {
  SmallGraph g(64);
  g.AddEdge(0, 63);
  EXPECT_TRUE(g.HasEdge(63, 0));
  EXPECT_EQ(g.Degree(63), 1u);
}

}  // namespace
}  // namespace lamo
