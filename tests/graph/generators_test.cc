#include "graph/generators.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace lamo {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  const Graph g = ErdosRenyi(50, 120, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 120u);
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  Rng rng(2);
  const Graph g = ErdosRenyi(20, 50, rng);
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
  }
}

TEST(BarabasiAlbertTest, SizeAndEdgeBudget) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(200, 3, rng);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Seed clique C(4,2)=6 edges + 196*3 new edges.
  EXPECT_EQ(g.num_edges(), 6u + 196u * 3u);
}

TEST(BarabasiAlbertTest, HeavyTail) {
  Rng rng(4);
  const Graph g = BarabasiAlbert(500, 2, rng);
  // Preferential attachment produces hubs far above the mean degree.
  EXPECT_GT(g.MaxDegree(), 4 * static_cast<size_t>(MeanDegree(g)));
}

TEST(DuplicationDivergenceTest, ScaleMatchesPaperCalibration) {
  Rng rng(5);
  // Retention tuned near the yeast interactome's sparsity: the paper's BIND
  // network has mean degree ~3.4 (7095 edges / 4141 proteins).
  const Graph g = DuplicationDivergence(1000, 0.38, 0.25, rng);
  EXPECT_EQ(g.num_vertices(), 1000u);
  const double mean_degree = MeanDegree(g);
  EXPECT_GT(mean_degree, 1.5);
  EXPECT_LT(mean_degree, 8.0);
}

TEST(DuplicationDivergenceTest, EveryVertexConnectedAtBirth) {
  Rng rng(6);
  const Graph g = DuplicationDivergence(300, 0.3, 0.1, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.Degree(v), 1u) << "vertex " << v;
  }
}

TEST(RewireTest, PreservesDegreeSequence) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(150, 2, rng);
  const Graph rewired = DegreePreservingRewire(g, 3.0, rng);
  EXPECT_EQ(rewired.num_vertices(), g.num_vertices());
  EXPECT_EQ(rewired.num_edges(), g.num_edges());
  EXPECT_EQ(rewired.Degrees(), g.Degrees());
}

TEST(RewireTest, ActuallyChangesEdges) {
  Rng rng(8);
  const Graph g = ErdosRenyi(100, 300, rng);
  const Graph rewired = DegreePreservingRewire(g, 3.0, rng);
  const auto e1 = g.Edges();
  const auto e2 = rewired.Edges();
  EXPECT_NE(e1, e2);
}

TEST(RewireTest, DestroysClustering) {
  Rng rng(9);
  // Duplication-divergence graphs are strongly clustered; rewiring should
  // push clustering toward the random-graph baseline.
  const Graph g = DuplicationDivergence(800, 0.45, 0.3, rng);
  const Graph rewired = DegreePreservingRewire(g, 5.0, rng);
  EXPECT_LT(GlobalClusteringCoefficient(rewired),
            GlobalClusteringCoefficient(g));
}

TEST(RewireTest, TinyGraphUnchanged) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  const Graph g = b.Build();
  Rng rng(10);
  const Graph rewired = DegreePreservingRewire(g, 3.0, rng);
  EXPECT_EQ(rewired.num_edges(), 1u);
}

TEST(GeneratorsTest, Reproducibility) {
  Rng rng1(42), rng2(42);
  const Graph a = DuplicationDivergence(200, 0.4, 0.2, rng1);
  const Graph b = DuplicationDivergence(200, 0.4, 0.2, rng2);
  EXPECT_EQ(a.Edges(), b.Edges());
}

}  // namespace
}  // namespace lamo
