#include "graph/isomorphism.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace lamo {
namespace {

SmallGraph Triangle() {
  SmallGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  return g;
}

SmallGraph Path3() {
  SmallGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  return g;
}

Graph MakeK4() {
  GraphBuilder b(4);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(b.AddEdge(i, j).ok());
    }
  }
  return b.Build();
}

TEST(IsomorphismTest, TriangleOccurrencesInK4) {
  const Graph k4 = MakeK4();
  // K4 contains C(4,3)=4 triangles as vertex sets.
  const auto occurrences = FindOccurrences(Triangle(), k4);
  EXPECT_EQ(occurrences.size(), 4u);
}

TEST(IsomorphismTest, InducedPathAbsentFromK4) {
  // Every 3-subset of K4 induces a triangle, so no *induced* path exists.
  const Graph k4 = MakeK4();
  EXPECT_EQ(CountOccurrences(Path3(), k4), 0u);
}

TEST(IsomorphismTest, NonInducedPathPresentInK4) {
  const Graph k4 = MakeK4();
  EmbeddingOptions options;
  options.induced = false;
  const auto embeddings = FindEmbeddings(Path3(), k4, options);
  // 4*3*2 = 24 ordered path embeddings.
  EXPECT_EQ(embeddings.size(), 24u);
}

TEST(IsomorphismTest, EmbeddingCountRelatesToAutomorphisms) {
  const Graph k4 = MakeK4();
  // Each triangle vertex set admits |Aut(C3)| = 6 embeddings.
  const auto embeddings = FindEmbeddings(Triangle(), k4);
  EXPECT_EQ(embeddings.size(), 24u);  // 4 occurrences * 6 automorphisms
}

TEST(IsomorphismTest, EmbeddingsMapEdgesToEdges) {
  Rng rng(3);
  const Graph g = ErdosRenyi(30, 60, rng);
  SmallGraph square(4);
  square.AddEdge(0, 1);
  square.AddEdge(1, 2);
  square.AddEdge(2, 3);
  square.AddEdge(3, 0);
  for (const Embedding& e : FindEmbeddings(square, g)) {
    for (uint32_t a = 0; a < 4; ++a) {
      for (uint32_t b = a + 1; b < 4; ++b) {
        EXPECT_EQ(square.HasEdge(a, b), g.HasEdge(e[a], e[b]))
            << "induced embedding must match edges AND non-edges";
      }
    }
  }
}

TEST(IsomorphismTest, MaxEmbeddingsCap) {
  const Graph k4 = MakeK4();
  EmbeddingOptions options;
  options.max_embeddings = 5;
  EXPECT_EQ(FindEmbeddings(Triangle(), k4, options).size(), 5u);
}

TEST(IsomorphismTest, MaxOccurrencesCap) {
  const Graph k4 = MakeK4();
  EXPECT_EQ(FindOccurrences(Triangle(), k4, 2).size(), 2u);
  EXPECT_EQ(CountOccurrences(Triangle(), k4, 2), 2u);
}

TEST(IsomorphismTest, PatternLargerThanTarget) {
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  const Graph tiny = b.Build();
  EXPECT_EQ(CountOccurrences(Triangle(), tiny), 0u);
}

TEST(IsomorphismTest, OccurrenceSetsSortedAndUnique) {
  const Graph k4 = MakeK4();
  const auto occurrences = FindOccurrences(Triangle(), k4);
  std::set<std::vector<VertexId>> unique(occurrences.begin(),
                                         occurrences.end());
  EXPECT_EQ(unique.size(), occurrences.size());
  for (const auto& occ : occurrences) {
    EXPECT_TRUE(std::is_sorted(occ.begin(), occ.end()));
  }
}

TEST(IsomorphismTest, DisconnectedTargetComponents) {
  // Two disjoint triangles: exactly 2 occurrences.
  GraphBuilder b(6);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(3, 4).ok());
  ASSERT_TRUE(b.AddEdge(4, 5).ok());
  ASSERT_TRUE(b.AddEdge(3, 5).ok());
  EXPECT_EQ(CountOccurrences(Triangle(), b.Build()), 2u);
}

}  // namespace
}  // namespace lamo
