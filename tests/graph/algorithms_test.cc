#include "graph/algorithms.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

Graph TwoComponents() {
  // Triangle {0,1,2} and path {3,4}.
  GraphBuilder b(5);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(0, 2).ok());
  EXPECT_TRUE(b.AddEdge(3, 4).ok());
  return b.Build();
}

TEST(ComponentsTest, CountsAndIds) {
  const Graph g = TwoComponents();
  EXPECT_EQ(CountComponents(g), 2u);
  const auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(ComponentsTest, LargestComponent) {
  const Graph g = TwoComponents();
  EXPECT_EQ(LargestComponent(g), (std::vector<VertexId>{0, 1, 2}));
}

TEST(ComponentsTest, IsolatedVertices) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  const Graph g = b.Build();
  EXPECT_EQ(CountComponents(g), 2u);
}

TEST(BfsTest, Distances) {
  // Path 0-1-2-3.
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 3).ok());
  const Graph g = b.Build();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(TrianglesTest, Counts) {
  const Graph g = TwoComponents();
  EXPECT_EQ(CountTriangles(g), 1u);

  GraphBuilder k4(4);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      ASSERT_TRUE(k4.AddEdge(i, j).ok());
    }
  }
  EXPECT_EQ(CountTriangles(k4.Build()), 4u);
}

TEST(ClusteringTest, TriangleIsOne) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(b.Build()), 1.0);
}

TEST(ClusteringTest, TreeIsZero) {
  GraphBuilder b(4);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 2).ok());
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(b.Build()), 0.0);
}

TEST(DegreeStatsTest, HistogramAndMean) {
  const Graph g = TwoComponents();
  const auto hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 3u);  // max degree 2
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);  // vertices 3, 4
  EXPECT_EQ(hist[2], 3u);  // triangle vertices
  EXPECT_DOUBLE_EQ(MeanDegree(g), 2.0 * 4 / 5);
}

TEST(DegreeStatsTest, EmptyGraph) {
  Graph g;
  EXPECT_DOUBLE_EQ(MeanDegree(g), 0.0);
  EXPECT_EQ(CountComponents(g), 0u);
}

}  // namespace
}  // namespace lamo
