#include "graph/directed_isomorphism.h"

#include <gtest/gtest.h>

#include "motif/directed_motifs.h"
#include "synth/grn_generator.h"

namespace lamo {
namespace {

SmallDigraph Ffl() {
  SmallDigraph g(3);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 2);
  return g;
}

DiGraph OneFflPlusNoise() {
  // FFL on {0,1,2}; extra arcs that do not form another FFL.
  DiGraphBuilder b(6);
  EXPECT_TRUE(b.AddArc(0, 1).ok());
  EXPECT_TRUE(b.AddArc(0, 2).ok());
  EXPECT_TRUE(b.AddArc(1, 2).ok());
  EXPECT_TRUE(b.AddArc(3, 4).ok());
  EXPECT_TRUE(b.AddArc(4, 5).ok());
  return b.Build();
}

TEST(DirectedIsomorphismTest, FindsTheFfl) {
  const DiGraph g = OneFflPlusNoise();
  const auto occurrences = FindDirectedOccurrences(Ffl(), g);
  ASSERT_EQ(occurrences.size(), 1u);
  EXPECT_EQ(occurrences[0], (std::vector<VertexId>{0, 1, 2}));
}

TEST(DirectedIsomorphismTest, EmbeddingRespectsRoles) {
  const DiGraph g = OneFflPlusNoise();
  const auto embeddings = FindDirectedEmbeddings(Ffl(), g);
  // The FFL is asymmetric: exactly one embedding per occurrence.
  ASSERT_EQ(embeddings.size(), 1u);
  EXPECT_EQ(embeddings[0], (std::vector<VertexId>{0, 1, 2}));
}

TEST(DirectedIsomorphismTest, DirectedCycleNotMatchedAsFfl) {
  DiGraphBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  ASSERT_TRUE(b.AddArc(1, 2).ok());
  ASSERT_TRUE(b.AddArc(2, 0).ok());
  EXPECT_EQ(CountDirectedOccurrences(Ffl(), b.Build()), 0u);
}

TEST(DirectedIsomorphismTest, InducedVsNonInduced) {
  // FFL plus the back-arc 2->0: the plain FFL is no longer induced but is
  // still present as a (non-induced) sub-digraph.
  DiGraphBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  ASSERT_TRUE(b.AddArc(0, 2).ok());
  ASSERT_TRUE(b.AddArc(1, 2).ok());
  ASSERT_TRUE(b.AddArc(2, 0).ok());
  const DiGraph g = b.Build();
  EXPECT_EQ(CountDirectedOccurrences(Ffl(), g), 0u);
  DirectedEmbeddingOptions options;
  options.induced = false;
  EXPECT_EQ(FindDirectedEmbeddings(Ffl(), g, options).size(), 1u);
}

TEST(DirectedIsomorphismTest, SymmetricPatternMultipleEmbeddings) {
  // Fan-out 0 -> {1,2}: two embeddings (targets interchangeable), one
  // occurrence.
  SmallDigraph fan(3);
  fan.AddArc(0, 1);
  fan.AddArc(0, 2);
  DiGraphBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  ASSERT_TRUE(b.AddArc(0, 2).ok());
  const DiGraph g = b.Build();
  EXPECT_EQ(FindDirectedEmbeddings(fan, g).size(), 2u);
  EXPECT_EQ(CountDirectedOccurrences(fan, g), 1u);
}

TEST(DirectedIsomorphismTest, CountsAgreeWithClassEnumeration) {
  // Cross-check against CountDirectedSubgraphClasses on a synthetic GRN.
  GrnConfig config;
  config.num_genes = 120;
  config.background_arcs = 220;
  config.planted_ffls = 12;
  const GrnDataset dataset = BuildGrnDataset(config);
  const auto classes = CountDirectedSubgraphClasses(dataset.grn, 3);
  const auto ffl_code = DirectedCanonicalCode(Ffl());
  const auto it = classes.find(ffl_code);
  const size_t expected = it == classes.end() ? 0 : it->second;
  EXPECT_EQ(CountDirectedOccurrences(Ffl(), dataset.grn), expected);
}

TEST(DirectedIsomorphismTest, MaxCaps) {
  GrnConfig config;
  config.num_genes = 100;
  config.background_arcs = 200;
  config.planted_ffls = 10;
  const GrnDataset dataset = BuildGrnDataset(config);
  EXPECT_LE(FindDirectedOccurrences(Ffl(), dataset.grn, 3).size(), 3u);
  EXPECT_EQ(CountDirectedOccurrences(Ffl(), dataset.grn, 2), 2u);
}

}  // namespace
}  // namespace lamo
