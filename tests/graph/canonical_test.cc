#include "graph/canonical.h"

#include <gtest/gtest.h>

#include "graph/automorphism.h"
#include "util/random.h"

namespace lamo {
namespace {

SmallGraph Cycle(size_t n) {
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    g.AddEdge(i, static_cast<uint32_t>((i + 1) % n));
  }
  return g;
}

SmallGraph Clique(size_t n) {
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

SmallGraph Star(size_t leaves) {
  SmallGraph g(leaves + 1);
  for (uint32_t i = 1; i <= leaves; ++i) g.AddEdge(0, i);
  return g;
}

std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  rng.Shuffle(perm);
  return perm;
}

TEST(CanonicalTest, IsomorphicGraphsShareCode) {
  Rng rng(5);
  const SmallGraph c5 = Cycle(5);
  const auto code = CanonicalCode(c5);
  for (int trial = 0; trial < 20; ++trial) {
    const SmallGraph permuted = c5.Permuted(RandomPermutation(5, rng));
    EXPECT_EQ(CanonicalCode(permuted), code);
  }
}

TEST(CanonicalTest, NonIsomorphicGraphsDiffer) {
  SmallGraph path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  SmallGraph star = Star(3);
  EXPECT_NE(CanonicalCode(path), CanonicalCode(star));
  EXPECT_NE(CanonicalCode(Cycle(4)), CanonicalCode(path));
}

TEST(CanonicalTest, CanonicalGraphIsIsomorphicToInput) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 6;
    SmallGraph g(n);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.4)) g.AddEdge(i, j);
      }
    }
    const CanonicalResult result = Canonicalize(g);
    EXPECT_EQ(result.graph.num_edges(), g.num_edges());
    // The labeling must be a permutation mapping canonical back to input.
    const SmallGraph reconstructed = g.Permuted(result.canonical_to_original);
    EXPECT_TRUE(reconstructed == result.graph);
    EXPECT_EQ(result.code, result.graph.AdjacencyCode());
  }
}

TEST(CanonicalTest, HighlySymmetricGraphsFast) {
  // Cliques and stars have factorial automorphism groups; the twin-cell
  // shortcut must keep canonicalization instantaneous.
  const SmallGraph k16 = Clique(16);
  const auto code = CanonicalCode(k16);
  Rng rng(13);
  const SmallGraph permuted = k16.Permuted(RandomPermutation(16, rng));
  EXPECT_EQ(CanonicalCode(permuted), code);

  const SmallGraph star = Star(20);
  const SmallGraph star_permuted = star.Permuted(RandomPermutation(21, rng));
  EXPECT_EQ(CanonicalCode(star), CanonicalCode(star_permuted));
}

TEST(CanonicalTest, CompleteBipartite) {
  // K_{3,4}: another twin-heavy shape common in Y2H data.
  SmallGraph g(7);
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 3; b < 7; ++b) g.AddEdge(a, b);
  }
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const SmallGraph permuted = g.Permuted(RandomPermutation(7, rng));
    EXPECT_EQ(CanonicalCode(permuted), CanonicalCode(g));
  }
}

TEST(CanonicalTest, MesoScaleCycle) {
  // C_20: refinement alone cannot split a cycle, exercising the branching
  // path of the search at the paper's largest motif size.
  Rng rng(19);
  const SmallGraph c20 = Cycle(20);
  const SmallGraph permuted = c20.Permuted(RandomPermutation(20, rng));
  EXPECT_EQ(CanonicalCode(c20), CanonicalCode(permuted));
}

TEST(CanonicalTest, EmptyAndSingleton) {
  EXPECT_EQ(Canonicalize(SmallGraph(0)).graph.num_vertices(), 0u);
  EXPECT_EQ(Canonicalize(SmallGraph(1)).graph.num_vertices(), 1u);
}

TEST(AreIsomorphicTest, Basic) {
  EXPECT_TRUE(AreIsomorphic(Cycle(6), Cycle(6).Permuted({3, 1, 5, 0, 4, 2})));
  EXPECT_FALSE(AreIsomorphic(Cycle(6), Cycle(5)));
  SmallGraph two_triangles(6);
  two_triangles.AddEdge(0, 1);
  two_triangles.AddEdge(1, 2);
  two_triangles.AddEdge(0, 2);
  two_triangles.AddEdge(3, 4);
  two_triangles.AddEdge(4, 5);
  two_triangles.AddEdge(3, 5);
  EXPECT_FALSE(AreIsomorphic(Cycle(6), two_triangles));  // same n, same m
}

// Property sweep: for random graphs of several sizes, canonical codes are
// invariant under relabeling and differ across edge-count classes.
class CanonicalSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CanonicalSweep, InvariantUnderRelabeling) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  for (int trial = 0; trial < 15; ++trial) {
    SmallGraph g(n);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.3)) g.AddEdge(i, j);
      }
    }
    const auto code = CanonicalCode(g);
    const SmallGraph permuted = g.Permuted(RandomPermutation(n, rng));
    EXPECT_EQ(CanonicalCode(permuted), code)
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CanonicalSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 10, 12));

}  // namespace
}  // namespace lamo
