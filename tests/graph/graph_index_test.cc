// Property tests for the GraphIndex builder (CSR + dense bitset): the
// neighbor arrays are sorted and deduplicated, the CSR round-trips back to
// the source edge list, the bitset kernels agree with the STL reference
// algorithms, and the build is byte-stable regardless of the configured
// thread count (the index feeds byte-identical pipelines, so its own bytes
// must never depend on --threads).
#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_index.h"
#include "graph/small_graph.h"
#include "motif/canon_cache.h"
#include "parallel/parallel_for.h"
#include "util/random.h"

namespace lamo {
namespace {

using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

// The {min, max} edge pairs of a graph, via its own adjacency.
EdgeSet EdgesOf(const Graph& g) {
  EdgeSet edges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.Neighbors(v)) {
      edges.emplace(std::min(v, u), std::max(v, u));
    }
  }
  return edges;
}

// The same, reconstructed purely from the index's CSR arrays.
EdgeSet EdgesOfIndex(const GraphIndex& index) {
  EdgeSet edges;
  const auto offsets = index.Offsets();
  const auto neighbors = index.NeighborArray();
  for (VertexId v = 0; v < index.num_vertices(); ++v) {
    for (uint32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const VertexId u = neighbors[i];
      edges.emplace(std::min(v, u), std::max(v, u));
    }
  }
  return edges;
}

TEST(GraphIndexTest, NeighborArraysSortedDedupedAndValid) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.Uniform(60);
    const size_t m = rng.Uniform(n * (n - 1) / 2 + 1);
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, m, graph_rng);
    const GraphIndex index(g);
    ASSERT_EQ(index.num_vertices(), n);
    ASSERT_EQ(index.num_edges(), g.num_edges());
    for (VertexId v = 0; v < n; ++v) {
      const auto nbrs = index.Neighbors(v);
      EXPECT_EQ(nbrs.size(), index.Degree(v));
      for (size_t i = 0; i + 1 < nbrs.size(); ++i) {
        EXPECT_LT(nbrs[i], nbrs[i + 1]) << "vertex " << v;
      }
    }
    EXPECT_TRUE(index.Validate().ok());
    const GraphIndex sparse(g, 0);
    EXPECT_FALSE(sparse.dense());
    EXPECT_TRUE(sparse.Validate().ok());
  }
}

TEST(GraphIndexTest, CsrRoundTripsToEdgeList) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.Uniform(50);
    const size_t m = rng.Uniform(n * (n - 1) / 2 + 1);
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, m, graph_rng);
    const GraphIndex index(g);
    EXPECT_EQ(EdgesOfIndex(index), EdgesOf(g));
    // And back: a graph rebuilt from the index's edge list produces an
    // identical index.
    GraphBuilder b(n);
    for (const auto& [u, v] : EdgesOfIndex(index)) {
      ASSERT_TRUE(b.AddEdge(u, v).ok());
    }
    const GraphIndex rebuilt(b.Build());
    EXPECT_EQ(std::vector<uint32_t>(index.Offsets().begin(),
                                    index.Offsets().end()),
              std::vector<uint32_t>(rebuilt.Offsets().begin(),
                                    rebuilt.Offsets().end()));
    EXPECT_EQ(std::vector<VertexId>(index.NeighborArray().begin(),
                                    index.NeighborArray().end()),
              std::vector<VertexId>(rebuilt.NeighborArray().begin(),
                                    rebuilt.NeighborArray().end()));
  }
}

TEST(GraphIndexTest, IntersectionKernelsMatchStdSetIntersection) {
  // 500 random vertex pairs across graphs of varied density: the dense
  // word-AND path (CommonNeighbors), the sparse merge path, and the static
  // IntersectSorted kernel must all equal std::set_intersection of the
  // neighbor lists.
  Rng rng(43);
  size_t pairs = 0;
  while (pairs < 500) {
    const size_t n = 2 + rng.Uniform(80);
    const size_t m = rng.Uniform(n * (n - 1) / 2 + 1);
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, m, graph_rng);
    const GraphIndex dense(g);
    const GraphIndex sparse(g, 0);
    ASSERT_TRUE(dense.dense());
    for (int p = 0; p < 25 && pairs < 500; ++p, ++pairs) {
      const VertexId a = static_cast<VertexId>(rng.Uniform(n));
      const VertexId b = static_cast<VertexId>(rng.Uniform(n));
      const auto na = g.Neighbors(a);
      const auto nb = g.Neighbors(b);
      std::vector<VertexId> expected;
      std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                            std::back_inserter(expected));
      std::vector<VertexId> got;
      EXPECT_EQ(dense.CommonNeighbors(a, b, &got), expected.size());
      EXPECT_EQ(got, expected);
      EXPECT_EQ(sparse.CommonNeighbors(a, b, &got), expected.size());
      EXPECT_EQ(got, expected);
      EXPECT_EQ(GraphIndex::IntersectSorted(dense.Neighbors(a),
                                            dense.Neighbors(b), &got),
                expected.size());
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(GraphIndexTest, HasEdgeMatchesGraphOnBothPaths) {
  Rng rng(44);
  const Graph g = ErdosRenyi(40, 200, rng);
  const GraphIndex dense(g);
  const GraphIndex sparse(g, 0);
  for (VertexId a = 0; a < 40; ++a) {
    for (VertexId b = 0; b < 40; ++b) {
      EXPECT_EQ(dense.HasEdge(a, b), g.HasEdge(a, b));
      EXPECT_EQ(sparse.HasEdge(a, b), g.HasEdge(a, b));
    }
  }
  EXPECT_FALSE(dense.HasEdge(0, 40));
  EXPECT_FALSE(dense.HasEdge(40, 0));
}

TEST(GraphIndexTest, InducedBitsAgreesWithInducedSubgraph) {
  // The packed key, unpacked, must reproduce exactly the SmallGraph the
  // legacy pipeline would have built for the same vertex set — that
  // equivalence is what lets SharedCanonCache key on the packed bits.
  Rng rng(45);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 6 + rng.Uniform(30);
    const size_t m = rng.Uniform(n * (n - 1) / 2 + 1);
    Rng graph_rng(rng.Next64());
    const Graph g = ErdosRenyi(n, m, graph_rng);
    const GraphIndex dense(g);
    const GraphIndex sparse(g, 0);
    const size_t k = 2 + rng.Uniform(5);  // 2..6
    std::vector<VertexId> verts;
    while (verts.size() < k) {
      const VertexId v = static_cast<VertexId>(rng.Uniform(n));
      if (std::find(verts.begin(), verts.end(), v) == verts.end()) {
        verts.push_back(v);
      }
    }
    std::sort(verts.begin(), verts.end());
    const uint64_t bits = dense.InducedBits(verts.data(), k);
    EXPECT_EQ(sparse.InducedBits(verts.data(), k), bits);
    const SmallGraph expected = SmallGraph::InducedSubgraph(g, verts);
    const SmallGraph unpacked = SharedCanonCache::UnpackBits(bits, k);
    ASSERT_EQ(unpacked.num_vertices(), expected.num_vertices());
    for (uint32_t i = 0; i < k; ++i) {
      for (uint32_t j = 0; j < k; ++j) {
        EXPECT_EQ(unpacked.HasEdge(i, j), expected.HasEdge(i, j));
      }
    }
    EXPECT_EQ(SharedCanonCache::PackBits(expected), bits);
  }
}

TEST(GraphIndexTest, BuildIsByteStableAcrossThreadCounts) {
  // The build is serial by design; this pins that the bytes (CSR arrays and
  // bitset words) cannot drift with the configured worker count.
  Rng rng(46);
  const Graph g = DuplicationDivergence(300, 0.4, 0.1, rng);
  SetThreadCount(1);
  const GraphIndex one(g);
  SetThreadCount(4);
  const GraphIndex four(g);
  SetThreadCount(0);
  EXPECT_EQ(std::vector<uint32_t>(one.Offsets().begin(), one.Offsets().end()),
            std::vector<uint32_t>(four.Offsets().begin(),
                                  four.Offsets().end()));
  EXPECT_EQ(std::vector<VertexId>(one.NeighborArray().begin(),
                                  one.NeighborArray().end()),
            std::vector<VertexId>(four.NeighborArray().begin(),
                                  four.NeighborArray().end()));
  ASSERT_TRUE(one.dense());
  EXPECT_EQ(std::vector<uint64_t>(one.DenseBits().begin(),
                                  one.DenseBits().end()),
            std::vector<uint64_t>(four.DenseBits().begin(),
                                  four.DenseBits().end()));
  EXPECT_EQ(one.words_per_row(), four.words_per_row());
}

TEST(GraphIndexTest, DenseLimitIsHonored) {
  Rng rng(47);
  const Graph g = ErdosRenyi(65, 200, rng);
  EXPECT_TRUE(GraphIndex(g, 65).dense());
  EXPECT_FALSE(GraphIndex(g, 64).dense());
  EXPECT_EQ(GraphIndex(g, 65).words_per_row(), 2u);  // 65 bits -> 2 words
  const Graph empty = GraphBuilder(0).Build();
  const GraphIndex empty_index(empty);
  EXPECT_EQ(empty_index.num_vertices(), 0u);
  EXPECT_FALSE(empty_index.dense());
  EXPECT_TRUE(empty_index.Validate().ok());
}

}  // namespace
}  // namespace lamo
