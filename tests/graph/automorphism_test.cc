#include "graph/automorphism.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

SmallGraph Cycle(size_t n) {
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    g.AddEdge(i, static_cast<uint32_t>((i + 1) % n));
  }
  return g;
}

SmallGraph Clique(size_t n) {
  SmallGraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

TEST(OrbitsTest, PaperMotifFourCycle) {
  // The paper's Figure 2 motif: the 4-cycle v1-v2-v3-v4 has symmetric
  // vertex sets {v1, v3} and {v2, v4}.
  SmallGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  const auto sets = SymmetricVertexSets(g);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(sets[1], (std::vector<uint32_t>{1, 3}));
}

TEST(OrbitsTest, CycleSingleOrbit) {
  const auto orbits = VertexOrbits(Cycle(6));
  ASSERT_EQ(orbits.size(), 1u);
  EXPECT_EQ(orbits[0].size(), 6u);
}

TEST(OrbitsTest, FourCycleFullOrbitIsTransitive) {
  // Rotations make C4 vertex-transitive: the *full* automorphism orbit is
  // one set of 4, while the paper's symmetric sets (twin classes) split it
  // into {v1,v3} / {v2,v4} — the pair of tests pins the distinction.
  const auto orbits = VertexOrbits(Cycle(4));
  ASSERT_EQ(orbits.size(), 1u);
  EXPECT_EQ(orbits[0].size(), 4u);
}

TEST(TwinClassesTest, PathHasNoTwins) {
  // Path endpoints are exchanged only by the mirror (which also moves the
  // middle vertices), so no transposition alone is an automorphism.
  SmallGraph path(5);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  path.AddEdge(3, 4);
  EXPECT_TRUE(SymmetricVertexSets(path).empty());
  EXPECT_EQ(TwinClasses(path).size(), 5u);
}

TEST(TwinClassesTest, CliqueIsOneClass) {
  const auto classes = TwinClasses(Clique(5));
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].size(), 5u);
}

TEST(TwinClassesTest, StarLeavesAreTwins) {
  SmallGraph star(5);
  for (uint32_t i = 1; i < 5; ++i) star.AddEdge(0, i);
  const auto sets = SymmetricVertexSets(star);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], (std::vector<uint32_t>{1, 2, 3, 4}));
}

TEST(TwinClassesTest, EverySwapWithinClassIsAutomorphism) {
  // Property check on a mixed graph: for any twins u, v the transposition
  // preserves all adjacency.
  SmallGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(2, 4);
  g.AddEdge(3, 5);
  g.AddEdge(4, 5);
  for (const auto& cls : TwinClasses(g)) {
    for (size_t i = 0; i < cls.size(); ++i) {
      for (size_t j = i + 1; j < cls.size(); ++j) {
        std::vector<uint32_t> perm(6);
        for (uint32_t v = 0; v < 6; ++v) perm[v] = v;
        std::swap(perm[cls[i]], perm[cls[j]]);
        EXPECT_TRUE(g.Permuted(perm) == g);
      }
    }
  }
}

TEST(OrbitsTest, PathHasMirrorOrbits) {
  // Path 0-1-2-3-4: orbits {0,4}, {1,3}, {2}.
  SmallGraph path(5);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  path.AddEdge(3, 4);
  const auto orbits = VertexOrbits(path);
  ASSERT_EQ(orbits.size(), 3u);
  EXPECT_EQ(orbits[0], (std::vector<uint32_t>{0, 4}));
  EXPECT_EQ(orbits[1], (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(orbits[2], (std::vector<uint32_t>{2}));
}

TEST(OrbitsTest, AsymmetricGraphAllSingletons) {
  // The smallest asymmetric graph has 6 vertices; this is one of them.
  SmallGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(1, 3);
  g.AddEdge(1, 4);
  const auto orbits = VertexOrbits(g);
  EXPECT_EQ(orbits.size(), 6u);
  EXPECT_TRUE(SymmetricVertexSets(g).empty());
}

TEST(FindAutomorphismTest, CycleRotation) {
  const SmallGraph c5 = Cycle(5);
  const auto mapping = FindAutomorphismMapping(c5, 0, 2);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ((*mapping)[0], 2u);
  // The mapping must preserve adjacency.
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = 0; b < 5; ++b) {
      EXPECT_EQ(c5.HasEdge(a, b), c5.HasEdge((*mapping)[a], (*mapping)[b]));
    }
  }
}

TEST(FindAutomorphismTest, ImpossibleMapping) {
  // Path 0-1-2: endpoint cannot map to the center (degrees differ).
  SmallGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  EXPECT_FALSE(FindAutomorphismMapping(path, 0, 1).has_value());
  EXPECT_TRUE(FindAutomorphismMapping(path, 0, 2).has_value());
}

TEST(GroupSizeTest, KnownGroups) {
  EXPECT_EQ(AutomorphismGroupSize(Cycle(5)), 10u);   // dihedral D5
  EXPECT_EQ(AutomorphismGroupSize(Cycle(6)), 12u);   // dihedral D6
  EXPECT_EQ(AutomorphismGroupSize(Clique(4)), 24u);  // S4
  EXPECT_EQ(AutomorphismGroupSize(Clique(5)), 120u);

  SmallGraph path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  EXPECT_EQ(AutomorphismGroupSize(path), 2u);  // mirror only

  SmallGraph star(5);
  for (uint32_t i = 1; i < 5; ++i) star.AddEdge(0, i);
  EXPECT_EQ(AutomorphismGroupSize(star), 24u);  // S4 on the leaves
}

TEST(GroupSizeTest, LargeCliqueViaOrbitStabilizer) {
  // 12! = 479001600 — enumeration would be hopeless; orbit-stabilizer isn't.
  EXPECT_EQ(AutomorphismGroupSize(Clique(12)), 479001600u);
}

TEST(OrbitsTest, CompleteBipartiteOrbits) {
  // K_{2,3}: two orbits (the sides).
  SmallGraph g(5);
  for (uint32_t a = 0; a < 2; ++a) {
    for (uint32_t b = 2; b < 5; ++b) g.AddEdge(a, b);
  }
  const auto orbits = VertexOrbits(g);
  ASSERT_EQ(orbits.size(), 2u);
  EXPECT_EQ(orbits[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(orbits[1], (std::vector<uint32_t>{2, 3, 4}));
}

}  // namespace
}  // namespace lamo
