#include "graph/graph.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

Graph MakeTriangleWithTail() {
  // 0-1, 1-2, 0-2 triangle; 2-3 tail.
  GraphBuilder b(4);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(0, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  return b.Build();
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(GraphTest, BasicCounts) {
  const Graph g = MakeTriangleWithTail();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(2), 3u);
  EXPECT_EQ(g.Degree(3), 1u);
  EXPECT_EQ(g.MaxDegree(), 3u);
}

TEST(GraphTest, HasEdgeSymmetric) {
  const Graph g = MakeTriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, HasEdgeOutOfRange) {
  const Graph g = MakeTriangleWithTail();
  EXPECT_FALSE(g.HasEdge(0, 99));
  EXPECT_FALSE(g.HasEdge(99, 0));
}

TEST(GraphTest, NeighborsSorted) {
  const Graph g = MakeTriangleWithTail();
  const auto n2 = g.Neighbors(2);
  ASSERT_EQ(n2.size(), 3u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
  EXPECT_EQ(n2[2], 3u);
}

TEST(GraphTest, EdgesListedOnceOrdered) {
  const Graph g = MakeTriangleWithTail();
  const auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_EQ(edges[0], std::make_pair(VertexId{0}, VertexId{1}));
  EXPECT_EQ(edges[1], std::make_pair(VertexId{0}, VertexId{2}));
  EXPECT_EQ(edges[2], std::make_pair(VertexId{1}, VertexId{2}));
  EXPECT_EQ(edges[3], std::make_pair(VertexId{2}, VertexId{3}));
}

TEST(GraphBuilderTest, RemovesSelfLinksAndDuplicates) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 0).ok());  // self-link: silently dropped
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());  // duplicate in reverse orientation
  EXPECT_TRUE(b.AddEdge(0, 1).ok());  // exact duplicate
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 3).IsInvalidArgument());
  EXPECT_TRUE(b.AddEdge(5, 1).IsInvalidArgument());
}

TEST(GraphBuilderTest, ReusableAfterBuild) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  const Graph g1 = b.Build();
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  const Graph g2 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphTest, DegreesVector) {
  const Graph g = MakeTriangleWithTail();
  EXPECT_EQ(g.Degrees(), (std::vector<size_t>{2, 2, 3, 1}));
}

TEST(GraphTest, ToStringMentionsCounts) {
  const Graph g = MakeTriangleWithTail();
  EXPECT_EQ(g.ToString(), "Graph(4 vertices, 4 edges)");
}

}  // namespace
}  // namespace lamo
