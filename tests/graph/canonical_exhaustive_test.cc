// Exhaustive validation of canonical labeling: over *every* graph on small
// vertex counts, the canonical code must induce exactly the isomorphism
// partition — equal codes iff isomorphic. (The code is not required to be
// the lexicographic minimum over all n! relabelings: like nauty, the search
// only considers refinement-compatible orderings, which is sound for class
// identification and is what the exhaustive bijection below certifies.)
#include <algorithm>
#include <map>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/small_digraph.h"

namespace lamo {
namespace {

SmallGraph GraphFromMask(size_t n, uint32_t mask) {
  SmallGraph g(n);
  size_t bit = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j, ++bit) {
      if ((mask >> bit) & 1u) g.AddEdge(i, j);
    }
  }
  return g;
}

// Ground-truth class id: the minimum adjacency code over all relabelings.
std::vector<uint8_t> BruteForceClassId(const SmallGraph& g) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<uint8_t> best;
  do {
    std::vector<uint8_t> code = g.Permuted(perm).AdjacencyCode();
    if (best.empty() || code < best) best = std::move(code);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class ExhaustiveCanonical : public ::testing::TestWithParam<size_t> {};

TEST_P(ExhaustiveCanonical, PartitionMatchesBruteForce) {
  const size_t n = GetParam();
  const size_t num_edges = n * (n - 1) / 2;
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> truth_to_ours;
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> ours_to_truth;
  for (uint32_t mask = 0; mask < (1u << num_edges); ++mask) {
    const SmallGraph g = GraphFromMask(n, mask);
    const auto ours = CanonicalCode(g);
    const auto truth = BruteForceClassId(g);
    // Same truth class must always map to the same code of ours, and vice
    // versa (codes must neither split nor merge isomorphism classes).
    auto [it1, inserted1] = truth_to_ours.emplace(truth, ours);
    EXPECT_EQ(it1->second, ours) << "class split: n=" << n << " mask=" << mask;
    auto [it2, inserted2] = ours_to_truth.emplace(ours, truth);
    EXPECT_EQ(it2->second, truth)
        << "class merged: n=" << n << " mask=" << mask;
  }
  EXPECT_EQ(truth_to_ours.size(), ours_to_truth.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveCanonical,
                         ::testing::Values(2, 3, 4, 5));

SmallDigraph DigraphFromMask(size_t n, uint32_t mask) {
  SmallDigraph g(n);
  size_t bit = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if ((mask >> bit) & 1u) g.AddArc(i, j);
      ++bit;
    }
  }
  return g;
}

std::vector<uint8_t> BruteForceDirectedClassId(const SmallDigraph& g) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<uint8_t> best;
  do {
    std::vector<uint8_t> code = g.Permuted(perm).AdjacencyCode();
    if (best.empty() || code < best) best = std::move(code);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class ExhaustiveDirectedCanonical : public ::testing::TestWithParam<size_t> {
};

TEST_P(ExhaustiveDirectedCanonical, PartitionMatchesBruteForce) {
  const size_t n = GetParam();
  const size_t num_arcs = n * (n - 1);
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> truth_to_ours;
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> ours_to_truth;
  for (uint32_t mask = 0; mask < (1u << num_arcs); ++mask) {
    const SmallDigraph g = DigraphFromMask(n, mask);
    const auto ours = DirectedCanonicalCode(g);
    const auto truth = BruteForceDirectedClassId(g);
    auto [it1, inserted1] = truth_to_ours.emplace(truth, ours);
    ASSERT_EQ(it1->second, ours) << "class split: n=" << n
                                 << " mask=" << mask;
    auto [it2, inserted2] = ours_to_truth.emplace(ours, truth);
    ASSERT_EQ(it2->second, truth)
        << "class merged: n=" << n << " mask=" << mask;
  }
  EXPECT_EQ(truth_to_ours.size(), ours_to_truth.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExhaustiveDirectedCanonical,
                         ::testing::Values(2, 3));

TEST(ExhaustiveDirectedCanonicalHeavy, AllFourVertexDigraphs) {
  // 2^12 = 4096 digraphs on 4 vertices: the directed partition must have
  // exactly 218 classes (OEIS A000273: digraphs on 4 nodes).
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> truth_to_ours;
  std::map<std::vector<uint8_t>, std::vector<uint8_t>> ours_to_truth;
  for (uint32_t mask = 0; mask < (1u << 12); ++mask) {
    const SmallDigraph g = DigraphFromMask(4, mask);
    const auto ours = DirectedCanonicalCode(g);
    const auto truth = BruteForceDirectedClassId(g);
    auto [it1, inserted1] = truth_to_ours.emplace(truth, ours);
    ASSERT_EQ(it1->second, ours) << "mask=" << mask;
    auto [it2, inserted2] = ours_to_truth.emplace(ours, truth);
    ASSERT_EQ(it2->second, truth) << "mask=" << mask;
  }
  EXPECT_EQ(truth_to_ours.size(), 218u);
}

TEST(ExhaustiveCanonicalCounts, KnownGraphCounts) {
  // Numbers of non-isomorphic simple graphs (OEIS A000088): 4 -> 11,
  // 5 -> 34.
  for (const auto& [n, expected] :
       std::vector<std::pair<size_t, size_t>>{{4, 11}, {5, 34}}) {
    std::set<std::vector<uint8_t>> classes;
    const size_t num_edges = n * (n - 1) / 2;
    for (uint32_t mask = 0; mask < (1u << num_edges); ++mask) {
      classes.insert(CanonicalCode(GraphFromMask(n, mask)));
    }
    EXPECT_EQ(classes.size(), expected) << "n=" << n;
  }
}

}  // namespace
}  // namespace lamo
