#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

DiGraph MakeFflPlusTail() {
  // FFL 0->1, 0->2, 1->2 and a tail 2->3.
  DiGraphBuilder b(4);
  EXPECT_TRUE(b.AddArc(0, 1).ok());
  EXPECT_TRUE(b.AddArc(0, 2).ok());
  EXPECT_TRUE(b.AddArc(1, 2).ok());
  EXPECT_TRUE(b.AddArc(2, 3).ok());
  return b.Build();
}

TEST(DiGraphTest, BasicCounts) {
  const DiGraph g = MakeFflPlusTail();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.OutDegree(2), 1u);
  EXPECT_EQ(g.InDegree(2), 2u);
}

TEST(DiGraphTest, HasArcIsDirected) {
  const DiGraph g = MakeFflPlusTail();
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_TRUE(g.HasArc(2, 3));
  EXPECT_FALSE(g.HasArc(3, 2));
}

TEST(DiGraphTest, NeighborsSortedAndConsistent) {
  const DiGraph g = MakeFflPlusTail();
  const auto out0 = g.OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);
  EXPECT_EQ(out0[1], 2u);
  const auto in2 = g.InNeighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);
}

TEST(DiGraphTest, ArcsLexicographic) {
  const DiGraph g = MakeFflPlusTail();
  const auto arcs = g.Arcs();
  ASSERT_EQ(arcs.size(), 4u);
  EXPECT_EQ(arcs[0], std::make_pair(VertexId{0}, VertexId{1}));
  EXPECT_EQ(arcs[3], std::make_pair(VertexId{2}, VertexId{3}));
}

TEST(DiGraphTest, AntiparallelArcsAllowed) {
  DiGraphBuilder b(2);
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  ASSERT_TRUE(b.AddArc(1, 0).ok());
  const DiGraph g = b.Build();
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_TRUE(g.HasArc(1, 0));
}

TEST(DiGraphBuilderTest, DropsSelfLoopsAndDuplicates) {
  DiGraphBuilder b(3);
  ASSERT_TRUE(b.AddArc(1, 1).ok());
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  EXPECT_EQ(b.Build().num_arcs(), 1u);
}

TEST(DiGraphBuilderTest, RejectsOutOfRange) {
  DiGraphBuilder b(2);
  EXPECT_TRUE(b.AddArc(0, 5).IsInvalidArgument());
}

TEST(DiGraphTest, UnderlyingMergesAntiparallel) {
  DiGraphBuilder b(3);
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  ASSERT_TRUE(b.AddArc(1, 0).ok());
  ASSERT_TRUE(b.AddArc(1, 2).ok());
  const Graph underlying = b.Build().Underlying();
  EXPECT_EQ(underlying.num_edges(), 2u);
  EXPECT_TRUE(underlying.HasEdge(0, 1));
  EXPECT_TRUE(underlying.HasEdge(1, 2));
}

}  // namespace
}  // namespace lamo
