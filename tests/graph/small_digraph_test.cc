#include "graph/small_digraph.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace lamo {
namespace {

SmallDigraph Ffl() {
  SmallDigraph g(3);
  g.AddArc(0, 1);
  g.AddArc(0, 2);
  g.AddArc(1, 2);
  return g;
}

SmallDigraph DirectedCycle(size_t n) {
  SmallDigraph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    g.AddArc(i, static_cast<uint32_t>((i + 1) % n));
  }
  return g;
}

std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  rng.Shuffle(perm);
  return perm;
}

TEST(SmallDigraphTest, ArcsAndDegrees) {
  const SmallDigraph g = Ffl();
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.OutDegree(2), 0u);
}

TEST(SmallDigraphTest, FromArcsValidation) {
  EXPECT_TRUE(SmallDigraph::FromArcs(3, {{0, 1}, {1, 2}}).ok());
  EXPECT_FALSE(SmallDigraph::FromArcs(3, {{0, 3}}).ok());
  EXPECT_FALSE(SmallDigraph::FromArcs(3, {{1, 1}}).ok());
  EXPECT_FALSE(SmallDigraph::FromArcs(65, {}).ok());
}

TEST(SmallDigraphTest, InducedSubgraphKeepsDirections) {
  DiGraphBuilder b(5);
  ASSERT_TRUE(b.AddArc(0, 1).ok());
  ASSERT_TRUE(b.AddArc(1, 2).ok());
  ASSERT_TRUE(b.AddArc(2, 0).ok());
  ASSERT_TRUE(b.AddArc(3, 4).ok());
  const DiGraph g = b.Build();
  const SmallDigraph sub = SmallDigraph::InducedSubgraph(g, {0, 1, 2});
  EXPECT_TRUE(sub.HasArc(0, 1));
  EXPECT_TRUE(sub.HasArc(1, 2));
  EXPECT_TRUE(sub.HasArc(2, 0));
  EXPECT_FALSE(sub.HasArc(1, 0));
}

TEST(SmallDigraphTest, WeakConnectivity) {
  EXPECT_TRUE(Ffl().IsWeaklyConnected());
  SmallDigraph disconnected(4);
  disconnected.AddArc(0, 1);
  disconnected.AddArc(2, 3);
  EXPECT_FALSE(disconnected.IsWeaklyConnected());
}

TEST(SmallDigraphTest, UnderlyingGraph) {
  const SmallGraph u = Ffl().Underlying();
  EXPECT_EQ(u.num_edges(), 3u);  // triangle
  EXPECT_TRUE(u.HasEdge(0, 1));
  EXPECT_TRUE(u.HasEdge(1, 2));
  EXPECT_TRUE(u.HasEdge(0, 2));
}

TEST(DirectedCanonicalTest, InvariantUnderRelabeling) {
  Rng rng(61);
  const SmallDigraph ffl = Ffl();
  const auto code = DirectedCanonicalCode(ffl);
  for (int trial = 0; trial < 10; ++trial) {
    const SmallDigraph permuted = ffl.Permuted(RandomPermutation(3, rng));
    EXPECT_EQ(DirectedCanonicalCode(permuted), code);
  }
}

TEST(DirectedCanonicalTest, DirectionMatters) {
  // FFL vs directed triangle (cycle): same underlying graph, different
  // digraphs.
  EXPECT_FALSE(AreIsomorphicDirected(Ffl(), DirectedCycle(3)));
  EXPECT_EQ(Ffl().Underlying().AdjacencyCode(),
            DirectedCycle(3).Underlying().AdjacencyCode());
}

TEST(DirectedCanonicalTest, CycleOrientationsAreIsomorphic) {
  // A directed 3-cycle reversed is still a directed 3-cycle.
  SmallDigraph reversed(3);
  reversed.AddArc(1, 0);
  reversed.AddArc(2, 1);
  reversed.AddArc(0, 2);
  EXPECT_TRUE(AreIsomorphicDirected(DirectedCycle(3), reversed));
}

TEST(DirectedCanonicalTest, RandomSweep) {
  Rng rng(62);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5;
    SmallDigraph g(n);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        if (i != j && rng.Bernoulli(0.3)) g.AddArc(i, j);
      }
    }
    const auto code = DirectedCanonicalCode(g);
    const SmallDigraph permuted = g.Permuted(RandomPermutation(n, rng));
    EXPECT_EQ(DirectedCanonicalCode(permuted), code) << "trial " << trial;
  }
}

TEST(DirectedCanonicalTest, CanonicalGraphIsPermutationOfInput) {
  Rng rng(63);
  SmallDigraph g(5);
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 5; ++j) {
      if (i != j && rng.Bernoulli(0.4)) g.AddArc(i, j);
    }
  }
  const DirectedCanonicalResult result = CanonicalizeDirected(g);
  EXPECT_TRUE(g.Permuted(result.canonical_to_original) == result.graph);
  EXPECT_EQ(result.code, result.graph.AdjacencyCode());
}

TEST(DirectedTwinsTest, FflHasNoTwins) {
  const auto classes = DirectedTwinClasses(Ffl());
  EXPECT_EQ(classes.size(), 3u);  // all singletons: roles are distinct
}

TEST(DirectedTwinsTest, FanOutTargetsAreTwins) {
  // 0 -> 1, 0 -> 2, 0 -> 3: the targets are interchangeable.
  SmallDigraph fan(4);
  fan.AddArc(0, 1);
  fan.AddArc(0, 2);
  fan.AddArc(0, 3);
  const auto classes = DirectedTwinClasses(fan);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(classes[1], (std::vector<uint32_t>{1, 2, 3}));
}

TEST(DirectedTwinsTest, DirectionBreaksTwinhood) {
  // 0 -> 1, 2 -> 0: vertices 1 and 2 have the same underlying neighborhood
  // {0} but opposite arc directions — not directed twins.
  SmallDigraph g(3);
  g.AddArc(0, 1);
  g.AddArc(2, 0);
  const auto classes = DirectedTwinClasses(g);
  EXPECT_EQ(classes.size(), 3u);
}

TEST(DirectedTwinsTest, MutualPairIsTwin) {
  // 0 <-> 1 both feeding 2: swapping 0 and 1 is an automorphism.
  SmallDigraph g(3);
  g.AddArc(0, 1);
  g.AddArc(1, 0);
  g.AddArc(0, 2);
  g.AddArc(1, 2);
  const auto classes = DirectedTwinClasses(g);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], (std::vector<uint32_t>{0, 1}));
}

}  // namespace
}  // namespace lamo
