#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "parallel/parallel_for.h"
#include "predict/gds.h"
#include "util/random.h"

namespace lamo {
namespace {

// The orbit a vertex of the complete graph K_k occupies (all vertices of a
// clique share one orbit).
int CliqueOrbit(size_t k) {
  SmallGraph g(k);
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) g.AddEdge(i, j);
  }
  return GdsOrbitTable::Get().OrbitOf(g, 0);
}

// The size-k star with vertex 0 at the center; *center/*leaf get the two
// orbit ids (equal for k = 2, where the edge graphlet has a single orbit).
void StarOrbits(size_t k, int* center, int* leaf) {
  SmallGraph g(k);
  for (uint32_t i = 1; i < k; ++i) g.AddEdge(0, i);
  *center = GdsOrbitTable::Get().OrbitOf(g, 0);
  *leaf = GdsOrbitTable::Get().OrbitOf(g, 1);
}

// The size-k path 0-1-...-(k-1); returns the orbit of endpoint 0.
int PathEndpointOrbit(size_t k) {
  SmallGraph g(k);
  for (uint32_t i = 0; i + 1 < k; ++i) g.AddEdge(i, i + 1);
  return GdsOrbitTable::Get().OrbitOf(g, 0);
}

// Brute-force graphlet degree signature of vertex `u`: enumerate every
// vertex subset of size 2..5 containing u, keep the connected induced
// subgraphs, and classify u's position through the (independently exercised)
// canonical OrbitOf path.
std::vector<uint64_t> BruteForceSignature(const Graph& g, VertexId u) {
  std::vector<uint64_t> counts(kGdsOrbits, 0);
  const size_t n = g.num_vertices();
  for (size_t k = 2; k <= 5 && k <= n; ++k) {
    // Combination cursor over {0..n-1} \ {u} choose (k-1); u is always in.
    std::vector<VertexId> others;
    for (VertexId v = 0; v < n; ++v) {
      if (v != u) others.push_back(v);
    }
    std::vector<size_t> pick(k - 1);
    for (size_t i = 0; i < k - 1; ++i) pick[i] = i;
    while (true) {
      std::vector<VertexId> verts{u};
      for (size_t i : pick) verts.push_back(others[i]);
      std::sort(verts.begin(), verts.end());
      const SmallGraph sub = SmallGraph::InducedSubgraph(g, verts);
      if (sub.IsConnected()) {
        const uint32_t pos = static_cast<uint32_t>(
            std::find(verts.begin(), verts.end(), u) - verts.begin());
        const int orbit = GdsOrbitTable::Get().OrbitOf(sub, pos);
        EXPECT_GE(orbit, 0) << verts.size();
        if (orbit >= 0) ++counts[orbit];
      }
      // Advance the combination.
      size_t i = k - 1;
      while (i > 0 && pick[i - 1] == others.size() - (k - 1) + (i - 1)) --i;
      if (i == 0) break;
      ++pick[i - 1];
      for (size_t j = i; j < k - 1; ++j) pick[j] = pick[j - 1] + 1;
    }
  }
  return counts;
}

Graph RandomGraph(size_t n, double p, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(p)) EXPECT_TRUE(builder.AddEdge(a, b).ok());
    }
  }
  return builder.Build();
}

TEST(GdsOrbitTableTest, CensusMatchesPrzulj) {
  const GdsOrbitTable& table = GdsOrbitTable::Get();
  EXPECT_EQ(table.num_graphlets(), 30u);
  // Every (graphlet, vertex) pair maps into 0..72 and all 73 ids occur.
  std::set<int> seen;
  for (size_t k = 2; k <= 5; ++k) {
    const uint32_t masks = 1u << (k * (k - 1) / 2);
    for (uint32_t mask = 0; mask < masks; ++mask) {
      SmallGraph g(k);
      size_t bit = 0;
      for (uint32_t i = 0; i < k; ++i) {
        for (uint32_t j = i + 1; j < k; ++j, ++bit) {
          if ((mask >> bit) & 1u) g.AddEdge(i, j);
        }
      }
      if (!g.IsConnected()) continue;
      ASSERT_TRUE(table.ConnectedMask(k, mask));
      const uint8_t* orbits = table.OrbitsOfMask(k, mask);
      for (uint32_t v = 0; v < k; ++v) {
        ASSERT_LT(orbits[v], kGdsOrbits);
        EXPECT_EQ(orbits[v], table.OrbitOf(g, v));
        seen.insert(orbits[v]);
      }
    }
  }
  EXPECT_EQ(seen.size(), kGdsOrbits);
}

TEST(GdsOrbitTableTest, RejectsNonGraphlets) {
  SmallGraph single(1);
  EXPECT_EQ(GdsOrbitTable::Get().OrbitOf(single, 0), -1);
  SmallGraph disconnected(4);
  disconnected.AddEdge(0, 1);
  disconnected.AddEdge(2, 3);
  EXPECT_EQ(GdsOrbitTable::Get().OrbitOf(disconnected, 0), -1);
}

TEST(GdsSignatureTest, CliqueClosedForm) {
  // K5: vertex v lies in C(4, k-1) induced k-cliques and nothing else.
  GraphBuilder builder(5);
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = a + 1; b < 5; ++b) ASSERT_TRUE(builder.AddEdge(a, b).ok());
  }
  const Graph g = builder.Build();
  const std::vector<uint64_t> sig = ComputeGdsSignatures(g);
  const uint64_t expected[] = {4, 6, 4, 1};  // C(4,1..4)
  for (VertexId v = 0; v < 5; ++v) {
    uint64_t total = 0;
    for (size_t o = 0; o < kGdsOrbits; ++o) total += sig[v * kGdsOrbits + o];
    EXPECT_EQ(total, 15u);
    for (size_t k = 2; k <= 5; ++k) {
      EXPECT_EQ(sig[v * kGdsOrbits + CliqueOrbit(k)], expected[k - 2])
          << "K" << k << " count of vertex " << v;
    }
  }
}

TEST(GdsSignatureTest, StarClosedForm) {
  // Star with center 0 and 6 leaves: the only connected induced subgraphs
  // are sub-stars, so center counts C(6, k-1) and each leaf C(5, k-2).
  GraphBuilder builder(7);
  for (VertexId leaf = 1; leaf < 7; ++leaf) {
    ASSERT_TRUE(builder.AddEdge(0, leaf).ok());
  }
  const Graph g = builder.Build();
  const std::vector<uint64_t> sig = ComputeGdsSignatures(g);
  for (size_t k = 2; k <= 5; ++k) {
    int center = 0, leaf = 0;
    StarOrbits(k, &center, &leaf);
    uint64_t center_expected = 1;  // C(6, k-1)
    for (size_t i = 0; i < k - 1; ++i) {
      center_expected = center_expected * (6 - i) / (i + 1);
    }
    uint64_t leaf_expected = 1;  // C(5, k-2)
    for (size_t i = 0; i < k - 2; ++i) {
      leaf_expected = leaf_expected * (5 - i) / (i + 1);
    }
    if (k == 2) {
      // The edge graphlet has a single orbit shared by center and leaf.
      EXPECT_EQ(sig[0 * kGdsOrbits + center], 6u);
      EXPECT_EQ(sig[1 * kGdsOrbits + leaf], 1u);
    } else {
      EXPECT_EQ(sig[0 * kGdsOrbits + center], center_expected);
      EXPECT_EQ(sig[0 * kGdsOrbits + leaf], 0u);
      EXPECT_EQ(sig[1 * kGdsOrbits + leaf], leaf_expected);
      EXPECT_EQ(sig[1 * kGdsOrbits + center], 0u);
    }
  }
}

TEST(GdsSignatureTest, PathClosedForm) {
  // P5: the connected induced subgraphs are the contiguous subpaths, so
  // endpoint 0 lies in exactly one subpath of each size.
  GraphBuilder builder(5);
  for (VertexId v = 0; v + 1 < 5; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  const Graph g = builder.Build();
  const std::vector<uint64_t> sig = ComputeGdsSignatures(g);
  uint64_t total = 0;
  for (size_t o = 0; o < kGdsOrbits; ++o) total += sig[0 * kGdsOrbits + o];
  EXPECT_EQ(total, 4u);
  for (size_t k = 2; k <= 5; ++k) {
    EXPECT_EQ(sig[0 * kGdsOrbits + PathEndpointOrbit(k)], 1u);
  }
}

TEST(GdsSignatureTest, DifferentialAgainstBruteForce) {
  // >= 50 random graphs across sizes 4..12 and three densities.
  size_t graphs = 0;
  for (uint64_t seed = 0; seed < 54; ++seed) {
    const size_t n = 4 + seed % 9;
    const double p = 0.2 + 0.15 * static_cast<double>(seed % 3);
    const Graph g = RandomGraph(n, p, 1000 + seed);
    const std::vector<uint64_t> sig = ComputeGdsSignatures(g);
    for (VertexId u = 0; u < n; ++u) {
      const std::vector<uint64_t> expected = BruteForceSignature(g, u);
      for (size_t o = 0; o < kGdsOrbits; ++o) {
        ASSERT_EQ(sig[u * kGdsOrbits + o], expected[o])
            << "seed " << seed << " vertex " << u << " orbit " << o;
      }
    }
    ++graphs;
  }
  EXPECT_GE(graphs, 50u);
}

TEST(GdsSignatureTest, ThreadCountInvariant) {
  const Graph g = RandomGraph(60, 0.1, 7);
  SetThreadCount(1);
  const std::vector<uint64_t> serial = ComputeGdsSignatures(g);
  SetThreadCount(4);
  const std::vector<uint64_t> parallel = ComputeGdsSignatures(g);
  SetThreadCount(0);
  EXPECT_EQ(serial, parallel);
}

TEST(GdsPredictorTest, SimilarRolesVoteAndLeaveOneOutHolds) {
  // Two disjoint triangles; triangle A's other members carry cat 100,
  // triangle B carries 200. Protein 0's own (contradictory) annotation must
  // not influence its prediction: topology ties it to its own triangle.
  GraphBuilder builder(6);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5).ok());
  ASSERT_TRUE(builder.AddEdge(3, 5).ok());
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {100, 200};
  context.protein_categories = {{200}, {100}, {100}, {200}, {200}, {}};

  const GdsPredictor predictor(context);
  EXPECT_TRUE(predictor.Covers(0));
  // All six vertices have identical signatures (same orbit profile), so
  // the vote reduces to annotation frequency: 200 has 3 voters for protein
  // 0 at equal similarity vs 2 for 100... except protein 0 itself never
  // votes, leaving 100:2 vs 200:2 with sim ties broken by the prior.
  const auto self_excluded = predictor.Predict(0);
  ASSERT_EQ(self_excluded.size(), 2u);
  EXPECT_DOUBLE_EQ(predictor.Similarity(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(self_excluded[0].score, self_excluded[1].score);

  // The unannotated protein 5 sees the full electorate: 200 wins 3:2.
  const auto full = predictor.Predict(5);
  EXPECT_EQ(full[0].category, 200u);
  EXPECT_DOUBLE_EQ(full[0].score, 1.0);
}

TEST(GdsPredictorTest, PrecomputedSignaturesMatchComputed) {
  const Graph g = RandomGraph(40, 0.15, 11);
  PredictionContext context;
  context.ppi = &g;
  context.categories = {10, 20};
  context.protein_categories.assign(40, {});
  for (VertexId p = 0; p < 40; p += 3) {
    context.protein_categories[p] = {p % 2 == 0 ? TermId{10} : TermId{20}};
  }
  const GdsPredictor computed(context);
  const GdsPredictor precomputed(context, ComputeGdsSignatures(g));
  for (VertexId p = 0; p < 40; ++p) {
    const auto a = computed.Predict(p);
    const auto b = precomputed.Predict(p);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].category, b[i].category);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

}  // namespace
}  // namespace lamo
