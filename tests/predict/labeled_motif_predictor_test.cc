#include "predict/labeled_motif_predictor.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

// Ontology: root -> cat1, cat2; cat1 -> leaf1; cat2 -> leaf2.
Ontology MakeCategoryOntology(TermId* cat1, TermId* cat2, TermId* leaf1,
                              TermId* leaf2) {
  OntologyBuilder builder;
  const TermId root = builder.AddTerm("root");
  *cat1 = builder.AddTerm("cat1");
  *cat2 = builder.AddTerm("cat2");
  *leaf1 = builder.AddTerm("leaf1");
  *leaf2 = builder.AddTerm("leaf2");
  EXPECT_TRUE(builder.AddRelation(*cat1, root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(*cat2, root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(*leaf1, *cat1, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(*leaf2, *cat2, RelationType::kIsA).ok());
  auto built = builder.Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

// Motif: edge pattern (2 vertices). Occurrences pair proteins so that
// vertex 0 is always played by a cat1 protein and vertex 1 by a cat2
// protein; the scheme labels vertex 0 leaf1 and vertex 1 leaf2.
struct MotifFixture {
  Graph ppi;
  Ontology ontology;
  TermId cat1 = 0, cat2 = 0, leaf1 = 0, leaf2 = 0;
  PredictionContext context;
  std::vector<LabeledMotif> motifs;

  MotifFixture() {
    ontology = MakeCategoryOntology(&cat1, &cat2, &leaf1, &leaf2);
    GraphBuilder builder(8);
    EXPECT_TRUE(builder.AddEdge(0, 4).ok());
    EXPECT_TRUE(builder.AddEdge(1, 5).ok());
    EXPECT_TRUE(builder.AddEdge(2, 6).ok());
    EXPECT_TRUE(builder.AddEdge(3, 7).ok());
    ppi = builder.Build();
    context.ppi = &ppi;
    context.categories = {cat1, cat2};
    context.protein_categories = {
        {cat1}, {cat1}, {cat1}, {cat1},  // proteins 0-3 play vertex 0
        {cat2}, {cat2}, {cat2}, {},      // 4-6 play vertex 1; 7 unannotated
    };

    LabeledMotif motif;
    motif.pattern = SmallGraph(2);
    motif.pattern.AddEdge(0, 1);
    motif.scheme.resize(2);
    motif.scheme[0] = {leaf1};
    motif.scheme[1] = {leaf2};
    for (VertexId p = 0; p < 4; ++p) {
      motif.occurrences.push_back(MotifOccurrence{{p, p + 4}});
    }
    motif.frequency = 4;
    motif.uniqueness = 1.0;
    motif.strength = 1.0;
    motifs.push_back(std::move(motif));
  }
};

TEST(LabeledMotifPredictorTest, SchemeLabelsVoteTheirCategory) {
  MotifFixture f;
  LabeledMotifPredictor predictor(f.context, f.ontology, f.motifs);
  // Protein 0 plays vertex 0, labeled leaf1 (under cat1).
  const auto predictions = predictor.Predict(0);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].category, f.cat1);
  EXPECT_DOUBLE_EQ(predictions[0].score, 1.0);
  EXPECT_DOUBLE_EQ(predictions[1].score, 0.0);
  // Protein 4 plays vertex 1 -> cat2.
  EXPECT_EQ(predictor.Predict(4)[0].category, f.cat2);
}

TEST(LabeledMotifPredictorTest, TooGeneralLabelsVoteNothing) {
  MotifFixture f;
  // Relabel vertex 0 with the root: above every category.
  f.motifs[0].scheme[0] = {f.ontology.FindTerm("root")};
  LabeledMotifPredictor predictor(f.context, f.ontology, f.motifs);
  for (const Prediction& p : predictor.Predict(0)) {
    EXPECT_DOUBLE_EQ(p.score, 0.0);
  }
}

TEST(LabeledMotifPredictorTest, CategoryItselfAsLabelVotes) {
  MotifFixture f;
  f.motifs[0].scheme[0] = {f.cat1};
  LabeledMotifPredictor predictor(f.context, f.ontology, f.motifs);
  EXPECT_EQ(predictor.Predict(0)[0].category, f.cat1);
}

TEST(LabeledMotifPredictorTest, OccurrenceModePredictsFromCorresponding) {
  MotifFixture f;
  LabeledMotifPredictor predictor(
      f.context, f.ontology, f.motifs,
      LabeledMotifPredictor::DeltaMode::kOccurrenceProteins);
  const auto predictions = predictor.Predict(0);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].category, f.cat1);
  EXPECT_DOUBLE_EQ(predictions[0].score, 1.0);
}

TEST(LabeledMotifPredictorTest, OccurrenceModeLeaveOneOutExcludesSelf) {
  MotifFixture f;
  // Make protein 0 the only cat2 player of vertex 0: its own label must not
  // leak into its occurrence-mode prediction.
  f.context.protein_categories[0] = {f.cat2};
  LabeledMotifPredictor predictor(
      f.context, f.ontology, f.motifs,
      LabeledMotifPredictor::DeltaMode::kOccurrenceProteins);
  EXPECT_EQ(predictor.Predict(0)[0].category, f.cat1);
}

TEST(LabeledMotifPredictorTest, CoverageReporting) {
  MotifFixture f;
  LabeledMotifPredictor predictor(f.context, f.ontology, f.motifs);
  EXPECT_TRUE(predictor.Covers(0));
  EXPECT_TRUE(predictor.Covers(7));
  EXPECT_DOUBLE_EQ(predictor.CoverageOfAnnotated(), 1.0);
}

TEST(LabeledMotifPredictorTest, UncoveredProteinScoresFlat) {
  MotifFixture f;
  f.motifs[0].occurrences.resize(3);
  f.motifs[0].frequency = 3;
  LabeledMotifPredictor predictor(f.context, f.ontology, f.motifs);
  EXPECT_FALSE(predictor.Covers(3));
  for (const Prediction& p : predictor.Predict(3)) {
    EXPECT_DOUBLE_EQ(p.score, 0.0);
  }
}

TEST(LabeledMotifPredictorTest, StrengthWeighting) {
  MotifFixture f;
  // A second, weaker motif labels protein 0's vertex with leaf2 (cat2).
  LabeledMotif weak;
  weak.pattern = SmallGraph(2);
  weak.pattern.AddEdge(0, 1);
  weak.scheme.resize(2);
  weak.scheme[0] = {f.leaf2};
  weak.scheme[1] = {f.leaf2};
  weak.occurrences.push_back(MotifOccurrence{{0, 4}});
  weak.frequency = 1;
  weak.uniqueness = 1.0;
  weak.strength = 0.1;
  f.motifs.push_back(std::move(weak));

  LabeledMotifPredictor predictor(f.context, f.ontology, f.motifs);
  const auto predictions = predictor.Predict(0);
  // Strong motif's cat1 vote (strength 1) beats the weak cat2 vote (0.1).
  EXPECT_EQ(predictions[0].category, f.cat1);
  EXPECT_GT(predictions[0].score, predictions[1].score);
  EXPECT_GT(predictions[1].score, 0.0);
}

}  // namespace
}  // namespace lamo
