#include "predict/evaluation.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

// Oracle: always scores the true categories 1.0 and others 0.
class OraclePredictor : public FunctionPredictor {
 public:
  explicit OraclePredictor(const PredictionContext& context)
      : context_(context) {}
  std::string name() const override { return "Oracle"; }
  std::vector<Prediction> Predict(ProteinId p) const override {
    std::vector<Prediction> predictions;
    for (TermId c : context_.categories) {
      predictions.push_back({c, context_.HasCategory(p, c) ? 1.0 : 0.0});
    }
    SortPredictions(&predictions);
    return predictions;
  }

 private:
  const PredictionContext& context_;
};

// Anti-oracle: inverts the oracle's scores.
class WrongPredictor : public FunctionPredictor {
 public:
  explicit WrongPredictor(const PredictionContext& context)
      : context_(context) {}
  std::string name() const override { return "Wrong"; }
  std::vector<Prediction> Predict(ProteinId p) const override {
    std::vector<Prediction> predictions;
    for (TermId c : context_.categories) {
      predictions.push_back({c, context_.HasCategory(p, c) ? 0.0 : 1.0});
    }
    SortPredictions(&predictions);
    return predictions;
  }

 private:
  const PredictionContext& context_;
};

PredictionContext MakeContext(Graph* storage) {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddEdge(0, 1).ok());
  *storage = builder.Build();
  PredictionContext context;
  context.ppi = storage;
  context.categories = {10, 20, 30};
  context.protein_categories = {{10}, {20, 30}, {10}, {}};
  return context;
}

TEST(EvaluationTest, OraclePerfectAtKOne) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  OraclePredictor oracle(context);
  const PrCurve curve = EvaluateLeaveOneOut(oracle, context);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 1.0);
  // 3 correct at k=1 over 4 true annotations.
  EXPECT_DOUBLE_EQ(curve.points[0].recall, 3.0 / 4.0);
  // At k = 3 all truths are found: recall 1.
  EXPECT_DOUBLE_EQ(curve.points[2].recall, 1.0);
  // Precision at k=3: 4 correct over 9 predictions.
  EXPECT_DOUBLE_EQ(curve.points[2].precision, 4.0 / 9.0);
}

TEST(EvaluationTest, WrongPredictorZeroAtKOne) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  WrongPredictor wrong(context);
  const PrCurve curve = EvaluateLeaveOneOut(wrong, context);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 0.0);
  EXPECT_DOUBLE_EQ(curve.points[0].recall, 0.0);
  // At k = |categories| everything is eventually predicted.
  EXPECT_DOUBLE_EQ(curve.points[2].recall, 1.0);
}

TEST(EvaluationTest, RestrictedEvaluationSet) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  OraclePredictor oracle(context);
  EvaluationConfig config;
  config.evaluation_set = {1};
  const PrCurve curve = EvaluateLeaveOneOut(oracle, context, config);
  // Protein 1 has two categories; k=2 finds both.
  EXPECT_DOUBLE_EQ(curve.points[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.points[1].recall, 1.0);
}

TEST(EvaluationTest, MaxKTruncatesCurve) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  OraclePredictor oracle(context);
  EvaluationConfig config;
  config.max_k = 2;
  EXPECT_EQ(EvaluateLeaveOneOut(oracle, context, config).points.size(), 2u);
}

TEST(EvaluationTest, AucOrdersOracleAboveWrong) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  OraclePredictor oracle(context);
  WrongPredictor wrong(context);
  const double auc_oracle = AreaUnderPrCurve(EvaluateLeaveOneOut(oracle, context));
  const double auc_wrong = AreaUnderPrCurve(EvaluateLeaveOneOut(wrong, context));
  EXPECT_GT(auc_oracle, auc_wrong);
}

TEST(EvaluationTest, EmptyCurveAucZero) {
  EXPECT_DOUBLE_EQ(AreaUnderPrCurve(PrCurve{}), 0.0);
}

TEST(EvaluationMacroTest, OraclePerfectAtKOne) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  OraclePredictor oracle(context);
  const PrCurve curve = EvaluateLeaveOneOutMacro(oracle, context);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 1.0);
  // Per-protein recalls at k=1: 1, 1/2, 1 -> mean 5/6.
  EXPECT_DOUBLE_EQ(curve.points[0].recall, 5.0 / 6.0);
}

TEST(EvaluationMacroTest, MacroDiffersFromMicroOnSkewedTruths) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  OraclePredictor oracle(context);
  const PrCurve micro = EvaluateLeaveOneOut(oracle, context);
  const PrCurve macro = EvaluateLeaveOneOutMacro(oracle, context);
  // Micro recall at k=1 is 3/4 (protein 1 holds two of four truths), macro
  // is 5/6: the multi-annotation protein weighs less under macro.
  EXPECT_GT(macro.points[0].recall, micro.points[0].recall);
}

TEST(EvaluationMacroTest, MacroPrecisionAveragesPerProtein) {
  Graph g;
  const PredictionContext context = MakeContext(&g);
  WrongPredictor wrong(context);
  const PrCurve curve = EvaluateLeaveOneOutMacro(wrong, context);
  EXPECT_DOUBLE_EQ(curve.points[0].precision, 0.0);
  // At k=3 each protein's precision is (#truths)/3: (1 + 2 + 1)/3 proteins.
  EXPECT_NEAR(curve.points[2].precision, (1.0 / 3 + 2.0 / 3 + 1.0 / 3) / 3,
              1e-12);
}

}  // namespace
}  // namespace lamo
