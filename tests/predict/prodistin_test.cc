#include "predict/prodistin.h"

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(CzekanowskiDiceTest, IdenticalAugmentedListsScoreZero) {
  // Triangle: N(a) ∪ {a} is the same vertex set for all three.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  const Graph ppi = builder.Build();
  EXPECT_DOUBLE_EQ(ProdistinPredictor::CzekanowskiDice(ppi, 0, 1), 0.0);
}

TEST(CzekanowskiDiceTest, HandComputedValue) {
  // Edges a-b, a-c. A = {a,b,c}, B = {a,b}: |A∪B|=3, |A∩B|=2, |AΔB|=1.
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  const Graph ppi = builder.Build();
  EXPECT_NEAR(ProdistinPredictor::CzekanowskiDice(ppi, 0, 1), 1.0 / 5.0,
              1e-12);
}

TEST(CzekanowskiDiceTest, DisjointNeighborhoodsScoreHigh) {
  // Two disjoint edges: A = {0,1}, B = {2,3}: inter 0, union 4, delta 4.
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  const Graph ppi = builder.Build();
  EXPECT_DOUBLE_EQ(ProdistinPredictor::CzekanowskiDice(ppi, 0, 2), 1.0);
}

TEST(ProdistinTest, ClassifiesByClade) {
  // Two 5-cliques sharing no edges: the BIONJ tree separates them, so a
  // clique member's clade votes for its clique's category.
  GraphBuilder builder(10);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) {
      ASSERT_TRUE(builder.AddEdge(i, j).ok());
      ASSERT_TRUE(builder.AddEdge(i + 5, j + 5).ok());
    }
  }
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {1, 2};
  context.protein_categories.assign(10, {});
  for (VertexId v = 0; v < 5; ++v) context.protein_categories[v] = {1};
  for (VertexId v = 5; v < 10; ++v) context.protein_categories[v] = {2};

  ProdistinPredictor prodistin(context);
  for (ProteinId p = 0; p < 10; ++p) {
    const auto predictions = prodistin.Predict(p);
    ASSERT_FALSE(predictions.empty());
    EXPECT_EQ(predictions[0].category, p < 5 ? 1u : 2u) << "protein " << p;
  }
}

TEST(ProdistinTest, FallbackForIsolatedProteins) {
  GraphBuilder builder(6);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  ASSERT_TRUE(builder.AddEdge(3, 0).ok());
  // Proteins 4, 5 are isolated (degree 0): not in the tree.
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {1, 2};
  context.protein_categories = {{1}, {1}, {1}, {2}, {2}, {}};
  ProdistinPredictor prodistin(context);
  const auto predictions = prodistin.Predict(4);
  ASSERT_EQ(predictions.size(), 2u);
  // Prior fallback: category 1 (3 of 5 annotated) outranks 2.
  EXPECT_EQ(predictions[0].category, 1u);
}

TEST(ProdistinTest, TreeCapRespected) {
  GraphBuilder builder(30);
  for (VertexId v = 0; v + 1 < 30; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, v + 1).ok());
  }
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {1};
  context.protein_categories.assign(30, {1});
  ProdistinConfig config;
  config.max_tree_proteins = 10;
  ProdistinPredictor prodistin(context, config);
  // Predictions still produced for everyone (in-tree or fallback).
  for (ProteinId p = 0; p < 30; ++p) {
    EXPECT_FALSE(prodistin.Predict(p).empty());
  }
}

}  // namespace
}  // namespace lamo
