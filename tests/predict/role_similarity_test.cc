#include <gtest/gtest.h>

#include "parallel/parallel_for.h"
#include "predict/role_similarity.h"
#include "util/random.h"

namespace lamo {
namespace {

Graph RandomGraph(size_t n, double p, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(p)) EXPECT_TRUE(builder.AddEdge(a, b).ok());
    }
  }
  return builder.Build();
}

TEST(RoleVectorsTest, ShapeAndRange) {
  const Graph g = RandomGraph(30, 0.2, 3);
  const std::vector<double> vectors = ComputeRoleVectors(g);
  ASSERT_EQ(vectors.size(), 30 * kRoleIterations);
  for (const double v : vectors) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RoleVectorsTest, FirstFeatureOrdersByDegree) {
  // Star: the center has the largest degree, so its first (walk-length-1)
  // feature must be the column max.
  GraphBuilder builder(5);
  for (VertexId leaf = 1; leaf < 5; ++leaf) {
    ASSERT_TRUE(builder.AddEdge(0, leaf).ok());
  }
  const Graph g = builder.Build();
  const std::vector<double> vectors = ComputeRoleVectors(g);
  EXPECT_DOUBLE_EQ(vectors[0 * kRoleIterations], 1.0);
  for (VertexId leaf = 1; leaf < 5; ++leaf) {
    EXPECT_LT(vectors[leaf * kRoleIterations], 1.0);
  }
}

TEST(RoleVectorsTest, ThreadCountInvariantBits) {
  const Graph g = RandomGraph(200, 0.05, 17);
  SetThreadCount(1);
  const std::vector<double> serial = ComputeRoleVectors(g);
  SetThreadCount(4);
  const std::vector<double> parallel = ComputeRoleVectors(g);
  SetThreadCount(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Bit-exact, not approximate: the serving byte-identity contract
    // depends on it.
    EXPECT_EQ(serial[i], parallel[i]) << i;
  }
}

TEST(RolePredictorTest, SymmetricVerticesAreMaximallySimilar) {
  // Two disjoint triangles: all six vertices play identical roles.
  GraphBuilder builder(6);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(0, 2).ok());
  ASSERT_TRUE(builder.AddEdge(3, 4).ok());
  ASSERT_TRUE(builder.AddEdge(4, 5).ok());
  ASSERT_TRUE(builder.AddEdge(3, 5).ok());
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {100, 200};
  context.protein_categories = {{200}, {100}, {100}, {200}, {200}, {}};

  const RolePredictor predictor(context);
  EXPECT_DOUBLE_EQ(predictor.Similarity(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(predictor.Similarity(2, 5), 1.0);
  EXPECT_DOUBLE_EQ(predictor.Similarity(0, 3), predictor.Similarity(3, 0));

  // Protein 5 (unannotated) sees votes 200:3 vs 100:2 at equal similarity.
  const auto predictions = predictor.Predict(5);
  EXPECT_EQ(predictions[0].category, 200u);
  EXPECT_DOUBLE_EQ(predictions[0].score, 1.0);
}

TEST(RolePredictorTest, LeaveOneOutExcludesSelf) {
  GraphBuilder builder(4);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  ASSERT_TRUE(builder.AddEdge(2, 3).ok());
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {7, 9};
  context.protein_categories = {{7}, {9}, {9}, {7}};
  const RolePredictor predictor(context);

  // Changing p's own annotation must not change its prediction.
  PredictionContext mutated = context;
  mutated.protein_categories[0] = {9};
  const RolePredictor mutated_predictor(mutated);
  const auto a = predictor.Predict(0);
  const auto b = mutated_predictor.Predict(0);
  ASSERT_EQ(a.size(), b.size());
  // The electorate for p=0 is unchanged, so the prediction is identical.
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

TEST(RolePredictorTest, PrecomputedVectorsMatchComputed) {
  const Graph g = RandomGraph(50, 0.1, 23);
  PredictionContext context;
  context.ppi = &g;
  context.categories = {10, 20};
  context.protein_categories.assign(50, {});
  for (VertexId p = 0; p < 50; p += 4) {
    context.protein_categories[p] = {p % 8 == 0 ? TermId{10} : TermId{20}};
  }
  const RolePredictor computed(context);
  const RolePredictor precomputed(context, ComputeRoleVectors(g),
                                  kRoleIterations);
  for (VertexId p = 0; p < 50; ++p) {
    const auto a = computed.Predict(p);
    const auto b = precomputed.Predict(p);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].category, b[i].category);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

}  // namespace
}  // namespace lamo
