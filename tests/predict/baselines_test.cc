#include <gtest/gtest.h>

#include "predict/chi_square.h"
#include "predict/mrf.h"
#include "predict/neighbor_counting.h"
#include "predict/predictor.h"

namespace lamo {
namespace {

// Star: protein 0 in the middle; neighbors 1-3 carry category 100,
// neighbor 4 carries category 200. Proteins 5-6 are an isolated annotated
// pair carrying 200 (they shape the priors).
struct StarFixture {
  Graph ppi;
  PredictionContext context;

  StarFixture() {
    GraphBuilder builder(7);
    EXPECT_TRUE(builder.AddEdge(0, 1).ok());
    EXPECT_TRUE(builder.AddEdge(0, 2).ok());
    EXPECT_TRUE(builder.AddEdge(0, 3).ok());
    EXPECT_TRUE(builder.AddEdge(0, 4).ok());
    EXPECT_TRUE(builder.AddEdge(5, 6).ok());
    ppi = builder.Build();
    context.ppi = &ppi;
    context.categories = {100, 200};
    context.protein_categories = {
        {100},       // p0 (its own truth; must not be used)
        {100}, {100}, {100},
        {200},
        {200}, {200},
    };
  }
};

TEST(PredictionContextTest, HasCategoryAndPrior) {
  StarFixture f;
  EXPECT_TRUE(f.context.HasCategory(1, 100));
  EXPECT_FALSE(f.context.HasCategory(1, 200));
  EXPECT_TRUE(f.context.IsAnnotated(0));
  // 4 of 7 annotated proteins carry 100.
  EXPECT_NEAR(f.context.CategoryPrior(100), 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(f.context.CategoryPrior(200), 3.0 / 7.0, 1e-12);
}

TEST(NeighborCountingTest, MajorityNeighborsWin) {
  StarFixture f;
  NeighborCountingPredictor nc(f.context);
  const auto predictions = nc.Predict(0);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].category, 100u);
  EXPECT_DOUBLE_EQ(predictions[0].score, 3.0);
  EXPECT_EQ(predictions[1].category, 200u);
  EXPECT_DOUBLE_EQ(predictions[1].score, 1.0);
}

TEST(NeighborCountingTest, IsolatedProteinScoresZero) {
  GraphBuilder builder(3);
  ASSERT_TRUE(builder.AddEdge(1, 2).ok());
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {7};
  context.protein_categories = {{7}, {7}, {7}};
  NeighborCountingPredictor nc(context);
  const auto predictions = nc.Predict(0);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_DOUBLE_EQ(predictions[0].score, 0.0);
}

TEST(ChiSquareTest, EnrichmentOutranksDepletion) {
  StarFixture f;
  ChiSquarePredictor chi2(f.context);
  const auto predictions = chi2.Predict(0);
  ASSERT_EQ(predictions.size(), 2u);
  // Observed 3 of 4 for category 100 vs expected 4*4/7 ~ 2.3: enriched.
  EXPECT_EQ(predictions[0].category, 100u);
  EXPECT_GT(predictions[0].score, 0.0);
  // Category 200: observed 1 vs expected ~1.7: depleted, negative score.
  EXPECT_LT(predictions[1].score, 0.0);
}

TEST(ChiSquareTest, StatisticValue) {
  StarFixture f;
  ChiSquarePredictor chi2(f.context);
  const auto predictions = chi2.Predict(0);
  const double expected_100 = (4.0 / 7.0) * 4.0;
  const double chi_100 = (3.0 - expected_100) * (3.0 - expected_100) /
                         expected_100;
  EXPECT_NEAR(predictions[0].score, chi_100, 1e-9);
}

TEST(MrfTest, LearnsHomophily) {
  // Two annotated cliques with opposite labels: the coupling to same-label
  // neighbors (beta) should exceed the coupling to other-label ones (gamma).
  GraphBuilder builder(10);
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) {
      ASSERT_TRUE(builder.AddEdge(i, j).ok());
      ASSERT_TRUE(builder.AddEdge(i + 5, j + 5).ok());
    }
  }
  const Graph ppi = builder.Build();
  PredictionContext context;
  context.ppi = &ppi;
  context.categories = {1};
  context.protein_categories.assign(10, {});
  for (VertexId v = 0; v < 5; ++v) context.protein_categories[v] = {1};
  for (VertexId v = 5; v < 10; ++v) context.protein_categories[v] = {0};
  // Category "0" is a dummy marker: proteins 5..9 are annotated but do not
  // carry category 1.
  for (VertexId v = 5; v < 10; ++v) context.protein_categories[v] = {2};
  context.categories = {1, 2};

  MrfPredictor mrf(context);
  EXPECT_GT(mrf.parameters(0).beta, mrf.parameters(0).gamma);

  const auto predictions = mrf.Predict(0);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].category, 1u)
      << "a clique member's own category must rank first";
}

TEST(MrfTest, PredictionsAreProbabilities) {
  StarFixture f;
  MrfPredictor mrf(f.context);
  for (ProteinId p = 0; p < 7; ++p) {
    for (const Prediction& pred : mrf.Predict(p)) {
      EXPECT_GE(pred.score, 0.0);
      EXPECT_LE(pred.score, 1.0);
    }
  }
}

TEST(SortPredictionsTest, TieBreakByCategory) {
  std::vector<Prediction> predictions = {{5, 1.0}, {2, 1.0}, {9, 2.0}};
  SortPredictions(&predictions);
  EXPECT_EQ(predictions[0].category, 9u);
  EXPECT_EQ(predictions[1].category, 2u);
  EXPECT_EQ(predictions[2].category, 5u);
}

}  // namespace
}  // namespace lamo
