#include <gtest/gtest.h>

#include "predict/registry.h"

namespace lamo {
namespace {

// Ontology: root -> cat1, cat2; cat1 -> leaf1; cat2 -> leaf2 (the labeled
// motif scheme labels live one level under the categories).
Ontology MakeCategoryOntology(TermId* cat1, TermId* cat2, TermId* leaf1,
                              TermId* leaf2) {
  OntologyBuilder builder;
  const TermId root = builder.AddTerm("root");
  *cat1 = builder.AddTerm("cat1");
  *cat2 = builder.AddTerm("cat2");
  *leaf1 = builder.AddTerm("leaf1");
  *leaf2 = builder.AddTerm("leaf2");
  EXPECT_TRUE(builder.AddRelation(*cat1, root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(*cat2, root, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(*leaf1, *cat1, RelationType::kIsA).ok());
  EXPECT_TRUE(builder.AddRelation(*leaf2, *cat2, RelationType::kIsA).ok());
  auto built = builder.Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

// A fixture rich enough for every backend: a network with distinct raw
// scores and ties, labeled motifs for lms, annotations for the similarity
// electorates.
struct RegistryFixture {
  Graph ppi;
  Ontology ontology;
  TermId cat1 = 0, cat2 = 0, leaf1 = 0, leaf2 = 0;
  PredictionContext context;
  std::vector<LabeledMotif> motifs;
  PredictorInputs inputs;

  RegistryFixture() {
    ontology = MakeCategoryOntology(&cat1, &cat2, &leaf1, &leaf2);
    GraphBuilder builder(8);
    EXPECT_TRUE(builder.AddEdge(0, 4).ok());
    EXPECT_TRUE(builder.AddEdge(1, 5).ok());
    EXPECT_TRUE(builder.AddEdge(2, 6).ok());
    EXPECT_TRUE(builder.AddEdge(3, 7).ok());
    EXPECT_TRUE(builder.AddEdge(0, 1).ok());
    ppi = builder.Build();
    context.ppi = &ppi;
    context.categories = {cat1, cat2};
    context.protein_categories = {
        {cat1}, {cat1}, {cat1}, {cat1},
        {cat2}, {cat2}, {cat2}, {},
    };
    LabeledMotif motif;
    motif.pattern = SmallGraph(2);
    motif.pattern.AddEdge(0, 1);
    motif.scheme.resize(2);
    motif.scheme[0] = {leaf1};
    motif.scheme[1] = {leaf2};
    for (VertexId p = 0; p < 4; ++p) {
      motif.occurrences.push_back(MotifOccurrence{{p, p + 4}});
    }
    motif.frequency = 4;
    motif.uniqueness = 1.0;
    motif.strength = 1.0;
    motifs.push_back(std::move(motif));

    inputs.context = &context;
    inputs.ontology = &ontology;
    inputs.motifs = &motifs;
  }
};

TEST(RegistryTest, NamesAreStableAndUsageDerivesFromThem) {
  const std::vector<std::string> names = RegisteredPredictorNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "lms");
  EXPECT_EQ(names[1], "gds");
  EXPECT_EQ(names[2], "role");
  EXPECT_EQ(PredictorNamesUsage(), "lms|gds|role");
  for (const std::string& name : names) {
    EXPECT_TRUE(IsRegisteredPredictor(name));
  }
  EXPECT_FALSE(IsRegisteredPredictor("mrf"));
  EXPECT_FALSE(IsRegisteredPredictor(""));
}

TEST(RegistryTest, UnknownNameIsInvalidArgument) {
  RegistryFixture f;
  const auto made = MakePredictor("nope", f.inputs);
  ASSERT_FALSE(made.ok());
  EXPECT_TRUE(made.status().IsInvalidArgument());
  EXPECT_NE(made.status().message().find("lms|gds|role"), std::string::npos);
}

TEST(RegistryTest, LmsNeedsMotifs) {
  RegistryFixture f;
  f.inputs.motifs = nullptr;
  EXPECT_FALSE(MakePredictor("lms", f.inputs).ok());
}

TEST(RegistryTest, EveryBackendConstructsAndNamesItself) {
  RegistryFixture f;
  const char* display[] = {"LabeledMotif", "GDS", "RoleSimilarity"};
  size_t i = 0;
  for (const std::string& name : RegisteredPredictorNames()) {
    auto made = MakePredictor(name, f.inputs);
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ(made.value()->name(), display[i]) << name;
    ++i;
  }
}

TEST(RegistryTest, RejectsMisshapenPrecomputedMatrices) {
  RegistryFixture f;
  const std::vector<uint64_t> bad_sig(7, 1);
  f.inputs.gds_signatures = &bad_sig;
  EXPECT_FALSE(MakePredictor("gds", f.inputs).ok());
  const std::vector<double> bad_role(3, 0.5);
  f.inputs.role_vectors = &bad_role;
  f.inputs.role_dim = 2;
  EXPECT_FALSE(MakePredictor("role", f.inputs).ok());
}

// Shared conformance contract, asserted against every registered backend:
// Predict returns one entry per category; scores are normalized into [0, 1]
// and non-increasing; equal scores are ordered by descending category prior
// and then ascending category id; repeated calls are deterministic.
TEST(PredictorConformanceTest, TieBreakOrderingHoldsForAllBackends) {
  RegistryFixture f;
  std::vector<double> priors;
  for (const TermId c : f.context.categories) {
    priors.push_back(f.context.CategoryPrior(c));
  }
  for (const std::string& name : RegisteredPredictorNames()) {
    auto made = MakePredictor(name, f.inputs);
    ASSERT_TRUE(made.ok()) << name;
    const FunctionPredictor& predictor = *made.value();
    for (ProteinId p = 0; p < f.ppi.num_vertices(); ++p) {
      const auto predictions = predictor.Predict(p);
      ASSERT_EQ(predictions.size(), f.context.categories.size()) << name;
      for (size_t i = 0; i < predictions.size(); ++i) {
        EXPECT_GE(predictions[i].score, 0.0) << name;
        EXPECT_LE(predictions[i].score, 1.0) << name;
        if (i == 0) continue;
        const Prediction& prev = predictions[i - 1];
        const Prediction& cur = predictions[i];
        EXPECT_GE(prev.score, cur.score) << name << " protein " << p;
        if (prev.score == cur.score) {
          const auto prior_of = [&](TermId c) {
            for (size_t ci = 0; ci < f.context.categories.size(); ++ci) {
              if (f.context.categories[ci] == c) return priors[ci];
            }
            return 0.0;
          };
          const double prior_prev = prior_of(prev.category);
          const double prior_cur = prior_of(cur.category);
          EXPECT_GE(prior_prev, prior_cur) << name << " protein " << p;
          if (prior_prev == prior_cur) {
            EXPECT_LT(prev.category, cur.category) << name << " protein " << p;
          }
        }
      }
      // Determinism: a second call reproduces the ranking bit-for-bit.
      const auto again = predictor.Predict(p);
      ASSERT_EQ(again.size(), predictions.size()) << name;
      for (size_t i = 0; i < predictions.size(); ++i) {
        EXPECT_EQ(again[i].category, predictions[i].category) << name;
        EXPECT_EQ(again[i].score, predictions[i].score) << name;
      }
    }
  }
}

}  // namespace
}  // namespace lamo
