#!/bin/sh
# End-to-end serving contract: pack a snapshot from pipeline outputs, start
# the TCP daemon, drive it with the bench client over 4 concurrent
# connections, check served PREDICT answers byte-identical to offline
# `lamo predict`, verify corrupt snapshots are rejected, and shut the server
# down cleanly (SIGTERM -> drain -> exit 0 with a valid --report).
set -e
LAMO="$1"
BENCH="$2"
REPORT_CHECK="$3"
WORK="$(mktemp -d)"
SERVER=""
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2> /dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

"$LAMO" generate --proteins 300 --copies 30 --seed 5 --out "$WORK/ds" \
  > /dev/null
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 3 --min-freq 15 --networks 4 --uniqueness 0.8 \
  --out "$WORK/motifs.txt" > /dev/null
"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 6 --out "$WORK/labeled.txt" > /dev/null
"$LAMO" pack --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --out "$WORK/model.lamosnap" > /dev/null
test -s "$WORK/model.lamosnap"

# Corrupt snapshots are rejected with an error, not a crash: a truncated
# prefix and a bit-flipped copy must both fail to serve.
head -c 100 "$WORK/model.lamosnap" > "$WORK/truncated.lamosnap"
rc=0
"$LAMO" serve --snapshot "$WORK/truncated.lamosnap" --stdin \
  < /dev/null > /dev/null 2>&1 || rc=$?
test "$rc" -ne 0 || {
  echo "FAIL: truncated snapshot was accepted" >&2
  exit 1
}
cp "$WORK/model.lamosnap" "$WORK/flipped.lamosnap"
printf 'X' | dd of="$WORK/flipped.lamosnap" bs=1 seek=100 conv=notrunc \
  2> /dev/null
rc=0
"$LAMO" serve --snapshot "$WORK/flipped.lamosnap" --stdin \
  < /dev/null > /dev/null 2>&1 || rc=$?
test "$rc" -ne 0 || {
  echo "FAIL: bit-flipped snapshot was accepted" >&2
  exit 1
}

# Start the daemon on an ephemeral port and discover it from the log.
"$LAMO" serve --snapshot "$WORK/model.lamosnap" --port 0 \
  --report "$WORK/serve_report.json" > "$WORK/serve.log" 2>&1 &
SERVER=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/serve.log")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
test -n "$PORT" || {
  echo "FAIL: server never reported its port" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

# Served PREDICT answers must be byte-identical to offline `lamo predict`.
for protein in 0 7 17 42 123; do
  "$LAMO" predict --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
    --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
    --protein "$protein" > "$WORK/offline.$protein.txt"
  "$BENCH" --port "$PORT" --query "PREDICT $protein" \
    > "$WORK/online.$protein.txt"
  cmp "$WORK/offline.$protein.txt" "$WORK/online.$protein.txt" || {
    echo "FAIL: served PREDICT $protein differs from offline predict" >&2
    exit 1
  }
done

# Concurrency + latency: 4 connections x 50 requests, archived as benchmark
# JSON with throughput and p50/p99.
"$BENCH" --port "$PORT" --connections 4 --requests 50 \
  --out "$WORK/BENCH_serve.json" > /dev/null
grep -q '"p99_us"' "$WORK/BENCH_serve.json"
grep -q '"errors":0' "$WORK/BENCH_serve.json"

# Graceful shutdown: SIGTERM -> drain -> exit 0, report written and valid
# (including the serve.* counter/histogram invariants).
kill -TERM "$SERVER"
wait "$SERVER" || {
  echo "FAIL: server exited nonzero after SIGTERM" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
SERVER=""
grep -q "drained" "$WORK/serve.log" || {
  echo "FAIL: no drain message in server log" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
test -s "$WORK/serve_report.json"
"$REPORT_CHECK" "$WORK/serve_report.json" serve.requests \
  hist:serve.request_us > /dev/null

echo "serve OK: concurrent answers byte-identical to offline predict," \
  "corrupt snapshots rejected, clean shutdown"
