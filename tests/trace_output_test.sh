#!/bin/sh
# End-to-end test of --trace: mine and label a small synthetic dataset at
# --threads 4 with span tracing enabled, then assert via lamo_trace_summary
# that the traces are valid Chrome trace-event JSON with real breadth — at
# least 5 distinct span names spread over at least 2 threads for the mine
# stage (the acceptance bar for the tracer), and a non-empty label trace.
# Also checks the drop-oldest path: a tiny --trace-capacity must yield a
# parseable trace that reports dropped events instead of failing.
set -e
LAMO="$1"
SUMMARY="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$LAMO" generate --proteins 300 --copies 20 --seed 9 --out "$WORK/ds" \
  > /dev/null

"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 4 --min-freq 15 --networks 4 --uniqueness 0.5 --threads 4 \
  --trace "$WORK/mine.trace.json" --out "$WORK/motifs.txt" > /dev/null
test -s "$WORK/mine.trace.json"
"$SUMMARY" "$WORK/mine.trace.json" > "$WORK/mine.summary.txt"
head -n 1 "$WORK/mine.summary.txt"

# "trace: <events> events, <names> span names, <threads> threads, <n> dropped"
read -r _ events _ names _ _ threads _ _ _ << EOF
$(head -n 1 "$WORK/mine.summary.txt")
EOF
events="${events%,}"; names="${names%,}"
test "$events" -gt 0 || { echo "FAIL: empty mine trace" >&2; exit 1; }
test "$names" -ge 5 || {
  echo "FAIL: expected >= 5 span names, got $names" >&2; exit 1; }
test "$threads" -ge 2 || {
  echo "FAIL: expected >= 2 traced threads, got $threads" >&2; exit 1; }

"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 5 --threads 4 --trace "$WORK/label.trace.json" \
  --out "$WORK/labeled.txt" > /dev/null
test -s "$WORK/label.trace.json"
"$SUMMARY" "$WORK/label.trace.json" > "$WORK/label.summary.txt"
head -n 1 "$WORK/label.summary.txt"
read -r _ label_events _ _ _ _ _ _ _ _ << EOF
$(head -n 1 "$WORK/label.summary.txt")
EOF
label_events="${label_events%,}"
test "$label_events" -gt 0 || { echo "FAIL: empty label trace" >&2; exit 1; }

# Overflow: a 16-event ring must still produce a valid trace and account for
# what it shed.
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 4 --min-freq 15 --networks 4 --uniqueness 0.5 --threads 4 \
  --trace "$WORK/tiny.trace.json" --trace-capacity 16 \
  --out "$WORK/motifs2.txt" > /dev/null
"$SUMMARY" "$WORK/tiny.trace.json" > "$WORK/tiny.summary.txt"
head -n 1 "$WORK/tiny.summary.txt"
if grep -q " 0 dropped" "$WORK/tiny.summary.txt"; then
  echo "FAIL: tiny ring reported no drops" >&2
  exit 1
fi

# Tracing must not perturb the pipeline: same motifs with and without it.
cmp "$WORK/motifs.txt" "$WORK/motifs2.txt" || {
  echo "FAIL: output differs across --trace-capacity settings" >&2; exit 1; }
"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 4 --min-freq 15 --networks 4 --uniqueness 0.5 --threads 4 \
  --out "$WORK/motifs_plain.txt" > /dev/null
cmp "$WORK/motifs.txt" "$WORK/motifs_plain.txt" || {
  echo "FAIL: --trace changed the mined motifs" >&2; exit 1; }

echo "trace output OK"
