#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/obs.h"
#include "obs/run_report.h"
#include "util/random.h"

namespace lamo {
namespace {

const size_t kTestHist = ObsHistogramId("obs_test.latency_us");
const size_t kTestHistB = ObsHistogramId("obs_test.idle_us");

TEST(HistogramTest, HistogramIdIsIdempotent) {
  EXPECT_EQ(ObsHistogramId("obs_test.latency_us"), kTestHist);
  EXPECT_EQ(ObsHistogramId("obs_test.idle_us"), kTestHistB);
  EXPECT_NE(kTestHist, kTestHistB);
  const auto names = ObsHistogramNames();
  ASSERT_GT(names.size(), kTestHist);
  EXPECT_EQ(names[kTestHist], "obs_test.latency_us");
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(ObsHistogramBucket(0), 0u);
  EXPECT_EQ(ObsHistogramBucket(1), 1u);
  EXPECT_EQ(ObsHistogramBucket(2), 2u);
  EXPECT_EQ(ObsHistogramBucket(3), 2u);
  EXPECT_EQ(ObsHistogramBucket(4), 3u);
  EXPECT_EQ(ObsHistogramBucket(UINT64_MAX), kObsHistogramBuckets - 1);
  EXPECT_EQ(ObsHistogramBucketLo(0), 0u);
  EXPECT_EQ(ObsHistogramBucketHi(0), 0u);
  EXPECT_EQ(ObsHistogramBucketLo(1), 1u);
  EXPECT_EQ(ObsHistogramBucketHi(1), 1u);
  EXPECT_EQ(ObsHistogramBucketLo(3), 4u);
  EXPECT_EQ(ObsHistogramBucketHi(3), 7u);
  EXPECT_EQ(ObsHistogramBucketHi(kObsHistogramBuckets - 1), UINT64_MAX);
  // Every value lands inside its bucket's inclusive bounds, and bounds tile
  // the axis without gaps.
  for (uint64_t value : {0ull, 1ull, 2ull, 5ull, 1023ull, 1024ull, 1ull << 20,
                         ~0ull}) {
    const size_t bucket = ObsHistogramBucket(value);
    EXPECT_GE(value, ObsHistogramBucketLo(bucket)) << value;
    EXPECT_LE(value, ObsHistogramBucketHi(bucket)) << value;
  }
  for (size_t b = 1; b < kObsHistogramBuckets; ++b) {
    EXPECT_EQ(ObsHistogramBucketLo(b), ObsHistogramBucketHi(b - 1) + 1);
  }
}

TEST(HistogramTest, DisabledIsNoOp) {
  ASSERT_EQ(GetObsSink(), nullptr);
  ObsObserve(kTestHist, 42);  // must be a no-op, not a crash
}

TEST(HistogramTest, ObservationsMergeAcrossThreads) {
  ObsSink sink;
  SetObsSink(&sink);
  ObsObserve(kTestHist, 0);
  ObsObserve(kTestHist, 100);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (uint64_t i = 0; i < 100; ++i) {
        ObsObserve(kTestHist, static_cast<uint64_t>(t) * 1000 + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SetObsSink(nullptr);

  const auto histograms = sink.Histograms();
  ASSERT_GT(histograms.size(), std::max(kTestHist, kTestHistB));
  const HistogramSnapshot& hist = histograms[kTestHist];
  EXPECT_EQ(hist.name, "obs_test.latency_us");
  EXPECT_EQ(hist.count, 402u);
  EXPECT_EQ(hist.min, 0u);
  EXPECT_EQ(hist.max, 3099u);
  uint64_t bucket_total = 0;
  for (uint64_t b : hist.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist.count);
  EXPECT_EQ(histograms[kTestHistB].count, 0u)
      << "registered histograms must appear even when untouched";
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  ObsSink sink;
  SetObsSink(&sink);
  Rng rng(2007);
  uint64_t min = UINT64_MAX;
  uint64_t max = 0;
  for (int i = 0; i < 500; ++i) {
    const uint64_t value = rng.Uniform(1 << 20);
    min = std::min(min, value);
    max = std::max(max, value);
    ObsObserve(kTestHist, value);
  }
  SetObsSink(nullptr);
  const HistogramSnapshot hist = sink.Histograms()[kTestHist];
  EXPECT_EQ(hist.min, min);
  EXPECT_EQ(hist.max, max);
  uint64_t previous = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const uint64_t p = hist.Percentile(q);
    EXPECT_GE(p, hist.min) << "q=" << q;
    EXPECT_LE(p, hist.max) << "q=" << q;
    EXPECT_GE(p, previous) << "q=" << q;
    previous = p;
  }
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Percentile(0.5), 0u);
  EXPECT_EQ(empty.Percentile(0.99), 0u);
}

// Builds a snapshot directly from values (no sink), for the merge property
// test below.
HistogramSnapshot SnapshotOf(const std::vector<uint64_t>& values) {
  HistogramSnapshot snapshot;
  if (values.empty()) return snapshot;
  snapshot.min = UINT64_MAX;
  for (uint64_t value : values) {
    snapshot.buckets[ObsHistogramBucket(value)] += 1;
    snapshot.count += 1;
    snapshot.sum += value;
    snapshot.min = std::min(snapshot.min, value);
    snapshot.max = std::max(snapshot.max, value);
  }
  return snapshot;
}

void ExpectEqualSnapshots(const HistogramSnapshot& a,
                          const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    auto random_values = [&] {
      std::vector<uint64_t> values;
      const size_t n = rng.Uniform(8);  // empty sides included
      for (size_t i = 0; i < n; ++i) {
        values.push_back(rng.Uniform(1u << 16));
      }
      return values;
    };
    const HistogramSnapshot a = SnapshotOf(random_values());
    const HistogramSnapshot b = SnapshotOf(random_values());
    const HistogramSnapshot c = SnapshotOf(random_values());
    ExpectEqualSnapshots(MergeHistograms(a, b), MergeHistograms(b, a));
    ExpectEqualSnapshots(MergeHistograms(MergeHistograms(a, b), c),
                         MergeHistograms(a, MergeHistograms(b, c)));
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  const HistogramSnapshot a = SnapshotOf({3, 9, 100});
  const HistogramSnapshot empty;
  ExpectEqualSnapshots(MergeHistograms(a, empty), a);
  ExpectEqualSnapshots(MergeHistograms(empty, a), a);
}

TEST(HistogramTest, RunReportEmitsSchemaV2Histograms) {
  ObsSink sink;
  SetObsSink(&sink);
  for (uint64_t v : {1ull, 5ull, 5ull, 900ull}) ObsObserve(kTestHist, v);
  SetObsSink(nullptr);

  const std::string json = RunReportJson(sink, "test", 1);
  JsonValue report;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &report, &error)) << error;
  const JsonValue* version = report.Find("lamo_report_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number_value, 2.0);
  const JsonValue* histograms = report.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_TRUE(histograms->is_object());
  const JsonValue* hist = histograms->Find("obs_test.latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->number_value, 4.0);
  EXPECT_EQ(hist->Find("sum")->number_value, 911.0);
  EXPECT_EQ(hist->Find("min")->number_value, 1.0);
  EXPECT_EQ(hist->Find("max")->number_value, 900.0);
  const JsonValue* buckets = hist->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  double bucket_total = 0.0;
  for (const JsonValue& bucket : buckets->items) {
    EXPECT_LE(bucket.Find("lo")->number_value, bucket.Find("hi")->number_value);
    bucket_total += bucket.Find("count")->number_value;
  }
  EXPECT_EQ(bucket_total, 4.0);
  // Untouched histograms appear too (stable key set).
  EXPECT_NE(histograms->Find("obs_test.idle_us"), nullptr);
  // trace.dropped ships in every v2 report, traced or not.
  const JsonValue* counters = report.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Find("trace.dropped"), nullptr);
}

}  // namespace
}  // namespace lamo
