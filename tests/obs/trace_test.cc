#include "obs/trace.h"

#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/obs.h"

namespace lamo {
namespace {

const size_t kTestSpan = ObsSpanId("obs_test.work");
const size_t kTestSpanB = ObsSpanId("obs_test.more_work");
const size_t kTestItemHist = ObsHistogramId("obs_test.item_us");

// Collects the ph=="X" events of a parsed trace, optionally for one name.
std::vector<const JsonValue*> CompleteEvents(const JsonValue& trace,
                                             const std::string& name = "") {
  std::vector<const JsonValue*> events;
  const JsonValue* items = trace.Find("traceEvents");
  if (items == nullptr) return events;
  for (const JsonValue& event : items->items) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || ph->string_value != "X") continue;
    if (!name.empty() && event.Find("name")->string_value != name) continue;
    events.push_back(&event);
  }
  return events;
}

JsonValue Parse(const TraceCollector& collector) {
  JsonValue trace;
  std::string error;
  EXPECT_TRUE(ParseJson(collector.ToJson(), &trace, &error)) << error;
  return trace;
}

TEST(TraceTest, SpanIdIsIdempotent) {
  EXPECT_EQ(ObsSpanId("obs_test.work"), kTestSpan);
  EXPECT_EQ(ObsSpanId("obs_test.more_work"), kTestSpanB);
  EXPECT_NE(kTestSpan, kTestSpanB);
  const auto names = ObsSpanNames();
  ASSERT_GT(names.size(), kTestSpan);
  EXPECT_EQ(names[kTestSpan], "obs_test.work");
}

TEST(TraceTest, DisabledIsNoOp) {
  ASSERT_EQ(GetTraceCollector(), nullptr);
  EXPECT_FALSE(TraceEnabled());
  EXPECT_EQ(ObsActiveMask() & kObsTraceBit, 0);
  const auto now = std::chrono::steady_clock::now();
  TraceRecordSpan(kTestSpan, now, now);  // must be a no-op, not a crash
  { const ScopedSpan span(kTestSpan, 1, 2); }
  { const ScopedItemTimer timer(kTestSpan, kTestItemHist); }
}

TEST(TraceTest, ActiveMaskTracksInstalledConsumers) {
  EXPECT_EQ(ObsActiveMask(), 0);
  {
    TraceCollector collector;
    SetTraceCollector(&collector);
    EXPECT_EQ(ObsActiveMask(), kObsTraceBit);
    EXPECT_TRUE(TraceEnabled());
    ObsSink sink;
    SetObsSink(&sink);
    EXPECT_EQ(ObsActiveMask(), kObsSinkBit | kObsTraceBit);
    SetObsSink(nullptr);
    SetTraceCollector(nullptr);
  }
  EXPECT_EQ(ObsActiveMask(), 0);
}

TEST(TraceTest, RecordedSpansRoundTripThroughJson) {
  TraceCollector collector;
  SetTraceCollector(&collector);
  { const ScopedSpan span(kTestSpan, 7, 9); }
  { const ScopedSpan span(kTestSpanB); }
  SetTraceCollector(nullptr);
  EXPECT_EQ(collector.RecordedEvents(), 2u);
  EXPECT_EQ(collector.DroppedEvents(), 0u);

  const JsonValue trace = Parse(collector);
  const auto events = CompleteEvents(trace, "obs_test.work");
  ASSERT_EQ(events.size(), 1u);
  const JsonValue& event = *events[0];
  EXPECT_TRUE(event.Find("ts")->is_number());
  EXPECT_TRUE(event.Find("dur")->is_number());
  const JsonValue* args = event.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("a0")->number_value, 7.0);
  EXPECT_EQ(args->Find("a1")->number_value, 9.0);
  // The zero-arg span carries no args object at all.
  const auto plain = CompleteEvents(trace, "obs_test.more_work");
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0]->Find("args"), nullptr);
  // otherData totals match the collector's accounting.
  const JsonValue* other = trace.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("recorded")->number_value, 2.0);
  EXPECT_EQ(other->Find("dropped")->number_value, 0.0);
}

TEST(TraceTest, OverflowDropsOldestAndCountsThem) {
  ObsSink sink;  // so trace.dropped accumulates
  SetObsSink(&sink);
  TraceCollector collector(/*events_per_thread=*/4);
  SetTraceCollector(&collector);
  for (uint64_t i = 0; i < 10; ++i) {
    const ScopedSpan span(kTestSpan, i);
  }
  SetTraceCollector(nullptr);
  SetObsSink(nullptr);

  EXPECT_EQ(collector.RecordedEvents(), 10u);
  EXPECT_EQ(collector.DroppedEvents(), 6u);
  EXPECT_EQ(sink.CounterTotals().at("trace.dropped"), 6u);

  // The ring keeps the newest events: args 6..9 survive, in order.
  const JsonValue trace = Parse(collector);
  const auto events = CompleteEvents(trace, "obs_test.work");
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i]->Find("args")->Find("a0")->number_value,
              static_cast<double>(6 + i));
  }
}

TEST(TraceTest, ThreadsGetSeparateRingsAndMetadata) {
  TraceCollector collector;
  SetTraceCollector(&collector);
  { const ScopedSpan span(kTestSpan); }  // main thread
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      ObsSetThreadName("hammer" + std::to_string(t));
      for (int i = 0; i < 200; ++i) {
        const ScopedSpan span(kTestSpanB, static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SetTraceCollector(nullptr);
  EXPECT_EQ(collector.RecordedEvents(), 601u);

  const JsonValue trace = Parse(collector);
  std::set<double> tids;
  for (const JsonValue* event : CompleteEvents(trace)) {
    tids.insert(event->Find("tid")->number_value);
  }
  EXPECT_EQ(tids.size(), 4u) << "each thread records into its own ring";
  std::set<std::string> thread_names;
  for (const JsonValue& event : trace.Find("traceEvents")->items) {
    if (event.Find("ph")->string_value != "M") continue;
    thread_names.insert(event.Find("args")->Find("name")->string_value);
  }
  EXPECT_TRUE(thread_names.count("main"));
  EXPECT_TRUE(thread_names.count("hammer0"));
}

TEST(TraceTest, CollectorSwapIsolatesRings) {
  TraceCollector first;
  SetTraceCollector(&first);
  { const ScopedSpan span(kTestSpan); }
  SetTraceCollector(nullptr);
  TraceCollector second;
  SetTraceCollector(&second);
  { const ScopedSpan span(kTestSpan); }
  { const ScopedSpan span(kTestSpan); }
  SetTraceCollector(nullptr);
  EXPECT_EQ(first.RecordedEvents(), 1u);
  EXPECT_EQ(second.RecordedEvents(), 2u);
}

TEST(TraceTest, ScopedTimerEmitsPhaseSpan) {
  ObsSink sink;
  SetObsSink(&sink);
  TraceCollector collector;
  SetTraceCollector(&collector);
  {
    const ScopedTimer timer("trace_test_phase");
    { const ScopedTimer inner("trace_test_inner"); }
  }
  SetTraceCollector(nullptr);
  SetObsSink(nullptr);
  const JsonValue trace = Parse(collector);
  EXPECT_EQ(CompleteEvents(trace, "trace_test_phase").size(), 1u);
  EXPECT_EQ(CompleteEvents(trace, "trace_test_inner").size(), 1u);
}

TEST(TraceTest, ScopedItemTimerFeedsBothLayers) {
  ObsSink sink;
  SetObsSink(&sink);
  TraceCollector collector;
  SetTraceCollector(&collector);
  { const ScopedItemTimer timer(kTestSpan, kTestItemHist, 11, 0, 1); }
  SetTraceCollector(nullptr);
  SetObsSink(nullptr);
  EXPECT_EQ(sink.Histograms()[kTestItemHist].count, 1u);
  const JsonValue trace = Parse(collector);
  const auto events = CompleteEvents(trace, "obs_test.work");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0]->Find("args")->Find("a0")->number_value, 11.0);
}

TEST(TraceTest, MultiThreadHammerUnderSmallRings) {
  // TSan target: concurrent recording into per-thread rings with overflow,
  // alongside histogram observations, must be race-free.
  ObsSink sink;
  SetObsSink(&sink);
  TraceCollector collector(/*events_per_thread=*/64);
  SetTraceCollector(&collector);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (uint64_t i = 0; i < 5000; ++i) {
        const ScopedItemTimer timer(kTestSpanB, kTestItemHist, i, 0, 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SetTraceCollector(nullptr);
  SetObsSink(nullptr);
  EXPECT_EQ(collector.RecordedEvents(), 20000u);
  EXPECT_EQ(collector.DroppedEvents(), 20000u - 4 * 64);
  EXPECT_EQ(sink.Histograms()[kTestItemHist].count, 20000u);
  const JsonValue trace = Parse(collector);
  EXPECT_EQ(CompleteEvents(trace).size(), 4u * 64u);
}

}  // namespace
}  // namespace lamo
