#include "obs/window.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "obs/prometheus.h"
#include "util/random.h"

namespace lamo {
namespace {

const size_t kWinCounter = ObsCounterId("window_test.ops");
const size_t kWinHist = ObsHistogramId("window_test.us");

std::map<std::string, uint64_t> Counters(uint64_t value) {
  return {{"c", value}};
}

HistogramSnapshot SnapshotOf(const std::vector<uint64_t>& values) {
  HistogramSnapshot snapshot;
  if (values.empty()) return snapshot;
  snapshot.min = UINT64_MAX;
  for (uint64_t value : values) {
    snapshot.buckets[ObsHistogramBucket(value)] += 1;
    snapshot.count += 1;
    snapshot.sum += value;
    snapshot.min = std::min(snapshot.min, value);
    snapshot.max = std::max(snapshot.max, value);
  }
  return snapshot;
}

void ExpectEqualBuckets(const HistogramSnapshot& a,
                        const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(MetricWindowsTest, FirstUpdateSeedsRingWithoutDelta) {
  MetricWindows windows(/*slot_ms=*/1000, /*capacity=*/8);
  EXPECT_EQ(windows.slots(), 0u);
  windows.Update(500, Counters(10), {});
  EXPECT_EQ(windows.slots(), 1u);  // seeded so the second scrape has a base
  EXPECT_EQ(windows.latest_ms(), 500u);
  MetricWindows::Delta delta;
  EXPECT_FALSE(windows.WindowDelta(1000, &delta))
      << "no slot strictly older than the only update";
}

TEST(MetricWindowsTest, SecondUpdateYieldsDeltaAgainstSeed) {
  MetricWindows windows(1000, 8);
  windows.Update(0, Counters(10), {});
  windows.Update(2500, Counters(17), {});
  MetricWindows::Delta delta;
  ASSERT_TRUE(windows.WindowDelta(10'000, &delta));
  EXPECT_DOUBLE_EQ(delta.span_s, 2.5);  // best effort: shorter than asked
  EXPECT_EQ(delta.counters.at("c"), 7u);
}

TEST(MetricWindowsTest, WindowPicksNewestSlotAtLeastWindowOld) {
  MetricWindows windows(1000, 16);
  // One slot per 5s tick, counter +100 each.
  for (uint64_t t = 0; t <= 20'000; t += 5000) {
    windows.Update(t, Counters(t / 50), {});
  }
  MetricWindows::Delta delta;
  // 10s lookback from t=20000: the newest slot >= 10s old is t=10000.
  ASSERT_TRUE(windows.WindowDelta(10'000, &delta));
  EXPECT_DOUBLE_EQ(delta.span_s, 10.0);
  EXPECT_EQ(delta.counters.at("c"), 200u);
  // 60s lookback: nothing is 60s old, fall back to the oldest slot (t=0).
  ASSERT_TRUE(windows.WindowDelta(60'000, &delta));
  EXPECT_DOUBLE_EQ(delta.span_s, 20.0);
  EXPECT_EQ(delta.counters.at("c"), 400u);
}

TEST(MetricWindowsTest, BackToBackScrapesCollapseIntoOneSlot) {
  MetricWindows windows(1000, 8);
  windows.Update(0, Counters(0), {});
  // A burst of scrapes inside one slot must not grow the ring...
  for (uint64_t t = 10; t < 500; t += 10) {
    windows.Update(t, Counters(t), {});
  }
  EXPECT_EQ(windows.slots(), 1u);
  // ...but the span stays nonzero (latest vs the slot-boundary archive).
  MetricWindows::Delta delta;
  ASSERT_TRUE(windows.WindowDelta(100, &delta));
  EXPECT_GT(delta.span_s, 0.0);
  // Once a latest snapshot lands a full slot past the last archive, the
  // next scrape archives it.
  windows.Update(1600, Counters(1600), {});
  EXPECT_EQ(windows.slots(), 1u);
  windows.Update(1700, Counters(1700), {});
  EXPECT_EQ(windows.slots(), 2u);
}

TEST(MetricWindowsTest, CapacityTrimsOldestSlot) {
  MetricWindows windows(1000, /*capacity=*/4);
  for (uint64_t t = 0; t <= 10'000; t += 1000) {
    windows.Update(t, Counters(t), {});
  }
  EXPECT_LE(windows.slots(), 4u);
  // The longest answerable window shrank to what the ring retains: the
  // oldest surviving slot, not t=0.
  MetricWindows::Delta delta;
  ASSERT_TRUE(windows.WindowDelta(60'000, &delta));
  EXPECT_LE(delta.span_s, 4.0 + 1e-9);
  EXPECT_GT(delta.span_s, 0.0);
}

TEST(MetricWindowsTest, CounterDeltasSaturateAtZero) {
  MetricWindows windows(1000, 8);
  windows.Update(0, Counters(100), {});
  // A counter going backwards (e.g. a scrape racing a restart) must clamp,
  // not wrap to ~2^64.
  windows.Update(5000, Counters(40), {});
  MetricWindows::Delta delta;
  ASSERT_TRUE(windows.WindowDelta(1000, &delta));
  EXPECT_EQ(delta.counters.at("c"), 0u);
}

TEST(MetricWindowsTest, HistogramWindowDeltaMatchesObservedTail) {
  MetricWindows windows(1000, 8);
  const std::vector<uint64_t> early = {1, 5, 9, 1000};
  std::vector<uint64_t> all = early;
  const std::vector<uint64_t> tail = {2, 2, 64, 70000};
  all.insert(all.end(), tail.begin(), tail.end());
  windows.Update(0, {}, {SnapshotOf(early)});
  windows.Update(10'000, {}, {SnapshotOf(all)});
  MetricWindows::Delta delta;
  ASSERT_TRUE(windows.WindowDelta(10'000, &delta));
  ASSERT_EQ(delta.histograms.size(), 1u);
  ExpectEqualBuckets(delta.histograms[0], SnapshotOf(tail));
  // Window min/max carry bucket bounds, the best the ring retains.
  const HistogramSnapshot& d = delta.histograms[0];
  EXPECT_EQ(d.min, ObsHistogramBucketLo(ObsHistogramBucket(2)));
  EXPECT_EQ(d.max, ObsHistogramBucketHi(ObsHistogramBucket(70000)));
  // Percentiles stay within those bounds.
  EXPECT_GE(d.Percentile(0.5), d.min);
  EXPECT_LE(d.Percentile(0.99), d.max);
}

TEST(MetricWindowsTest, DiffComposesLikeMergeInReverse) {
  // For cumulative snapshots a ⊆ b ⊆ c, the window algebra must be
  // self-consistent: diff(c,a) == merge(diff(c,b), diff(b,a)), mirroring the
  // MergeHistograms associativity property.
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    auto extend = [&](std::vector<uint64_t> values) {
      const size_t n = rng.Uniform(8);  // empty increments included
      for (size_t i = 0; i < n; ++i) {
        values.push_back(rng.Uniform(1u << 16));
      }
      return values;
    };
    const std::vector<uint64_t> a = extend({});
    const std::vector<uint64_t> b = extend(a);
    const std::vector<uint64_t> c = extend(b);
    const HistogramSnapshot sa = SnapshotOf(a);
    const HistogramSnapshot sb = SnapshotOf(b);
    const HistogramSnapshot sc = SnapshotOf(c);
    ExpectEqualBuckets(DiffHistograms(sc, sa),
                       MergeHistograms(DiffHistograms(sc, sb),
                                       DiffHistograms(sb, sa)));
    // Diffing a snapshot against itself is empty.
    EXPECT_EQ(DiffHistograms(sb, sb).count, 0u);
  }
}

TEST(PrometheusTest, RenderParseRoundTrip) {
  ObsSink sink;
  SetObsSink(&sink);
  ObsAdd(kWinCounter, 42);
  for (uint64_t v : {3ull, 700ull, 15ull, 0ull}) ObsObserve(kWinHist, v);
  SetObsSink(nullptr);

  MetricWindows windows(1000, 8);
  // Two collections so the 10s window has a base and rate samples appear.
  CollectPromFamilies(&sink, &windows, 0, 1.0, 123.0);
  const std::vector<PromFamily> families =
      CollectPromFamilies(&sink, &windows, 10'000, 11.0, 123.0);
  std::string text;
  for (const std::string& line : RenderPromLines(families)) {
    text += line + "\n";
  }
  std::vector<PromFamily> reparsed;
  std::string error;
  ASSERT_TRUE(ParsePromFamilies(text, &reparsed, &error)) << error;

  auto find = [&reparsed](const std::string& name) -> const PromFamily* {
    for (const PromFamily& f : reparsed) {
      if (f.name == name) return &f;
    }
    return nullptr;
  };
  ASSERT_NE(find("lamo_uptime_seconds"), nullptr);
  const PromFamily* total = find("lamo_window_test_ops_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->type, "counter");
  ASSERT_EQ(total->samples.size(), 1u);
  EXPECT_EQ(total->samples[0], "lamo_window_test_ops_total 42");
  const PromFamily* rates = find("lamo_window_test_ops_per_sec");
  ASSERT_NE(rates, nullptr);
  EXPECT_EQ(rates->type, "gauge");
  bool have_10s = false;
  for (const std::string& s : rates->samples) {
    if (s.find("window=\"10s\"") != std::string::npos) have_10s = true;
  }
  EXPECT_TRUE(have_10s);
  const PromFamily* hist = find("lamo_window_test_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->type, "histogram");
  bool have_inf = false;
  for (const std::string& s : hist->samples) {
    if (s.find("le=\"+Inf\"} 4") != std::string::npos) have_inf = true;
  }
  EXPECT_TRUE(have_inf) << "+Inf bucket must equal the observation count";
  ASSERT_NE(find("lamo_window_test_us_p99"), nullptr);
}

TEST(PrometheusTest, ParserRejectsMalformedInput) {
  std::vector<PromFamily> families;
  std::string error;
  EXPECT_FALSE(ParsePromFamilies("lamo_x 1\n", &families, &error))
      << "sample before any TYPE header";
  EXPECT_FALSE(
      ParsePromFamilies("# TYPE lamo_x counter\nlamo_y 1\n", &families,
                        &error))
      << "sample outside its family";
  EXPECT_FALSE(
      ParsePromFamilies("# TYPE lamo_x counter\nlamo_x abc\n", &families,
                        &error))
      << "non-numeric value";
  EXPECT_FALSE(ParsePromFamilies("# TYPE 9bad counter\n", &families, &error))
      << "digit-first metric name";
  EXPECT_TRUE(ParsePromFamilies(
      "# HELP lamo_x help text\n# TYPE lamo_x counter\nlamo_x{a=\"b\"} 7\n",
      &families, &error))
      << error;
}

TEST(PrometheusTest, InjectedLabelsMergeIntoExistingSets) {
  EXPECT_EQ(InjectPromLabels("m 1", "backend=\"0\""), "m{backend=\"0\"} 1");
  EXPECT_EQ(InjectPromLabels("m{le=\"8\"} 1", "backend=\"0\""),
            "m{backend=\"0\",le=\"8\"} 1");
}

// The TSan target of the obs suite: writers hammer the per-thread counter
// blocks while a scraper repeatedly merges totals and updates the window
// ring, the exact concurrency shape of serving traffic during a METRICS
// scrape.
TEST(MetricWindowsTest, ConcurrentObserveVersusScrape) {
  ObsSink sink;
  SetObsSink(&sink);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ObsIncrement(kWinCounter);
        ObsObserve(kWinHist, i++ & 0xFFF);
      }
    });
  }
  MetricWindows windows(/*slot_ms=*/1, /*capacity=*/4);
  uint64_t last_total = 0;
  for (uint64_t scrape = 0; scrape < 200; ++scrape) {
    const std::vector<PromFamily> families = CollectPromFamilies(
        &sink, &windows, /*now_ms=*/scrape * 2, /*uptime_s=*/1.0,
        /*start_time_s=*/0.0);
    EXPECT_GE(families.size(), 2u);  // uptime + start_time at minimum
    const uint64_t total = sink.CounterTotals().at("window_test.ops");
    EXPECT_GE(total, last_total) << "merged totals must be monotone";
    last_total = total;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& writer : writers) writer.join();
  SetObsSink(nullptr);
}

}  // namespace
}  // namespace lamo
