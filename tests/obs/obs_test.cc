#include "obs/obs.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/run_report.h"
#include "parallel/parallel_for.h"

namespace lamo {
namespace {

const size_t kTestCounter = ObsCounterId("obs_test.widgets");
const size_t kTestCounterB = ObsCounterId("obs_test.gadgets");

TEST(ObsTest, CounterIdIsIdempotent) {
  EXPECT_EQ(ObsCounterId("obs_test.widgets"), kTestCounter);
  EXPECT_EQ(ObsCounterId("obs_test.gadgets"), kTestCounterB);
  EXPECT_NE(kTestCounter, kTestCounterB);
  const auto names = ObsCounterNames();
  ASSERT_GT(names.size(), kTestCounter);
  EXPECT_EQ(names[kTestCounter], "obs_test.widgets");
}

TEST(ObsTest, DisabledByDefault) {
  ASSERT_EQ(GetObsSink(), nullptr);
  EXPECT_FALSE(ObsEnabled());
  ObsAdd(kTestCounter, 5);  // must be a no-op, not a crash
}

TEST(ObsTest, CountsAreMergedAcrossThreads) {
  ObsSink sink;
  SetObsSink(&sink);
  ObsAdd(kTestCounter, 2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) ObsIncrement(kTestCounter);
    });
  }
  for (auto& thread : threads) thread.join();
  SetObsSink(nullptr);
  const auto totals = sink.CounterTotals();
  EXPECT_EQ(totals.at("obs_test.widgets"), 4002u);
  EXPECT_EQ(totals.at("obs_test.gadgets"), 0u)
      << "registered counters must appear even when untouched";
}

TEST(ObsTest, SinkSwapIsolatesCounts) {
  ObsSink first;
  SetObsSink(&first);
  ObsAdd(kTestCounter, 7);
  SetObsSink(nullptr);
  ObsSink second;
  SetObsSink(&second);
  ObsAdd(kTestCounter, 1);
  SetObsSink(nullptr);
  EXPECT_EQ(first.CounterTotals().at("obs_test.widgets"), 7u);
  EXPECT_EQ(second.CounterTotals().at("obs_test.widgets"), 1u);
}

TEST(ObsTest, PhaseTreeNestsAndTimes) {
  ObsSink sink;
  SetObsSink(&sink);
  {
    ScopedTimer outer("outer");
    { ScopedTimer inner("first"); }
    { ScopedTimer inner("second"); }
  }
  { ScopedTimer other("tail"); }
  SetObsSink(nullptr);
  const auto phases = sink.Phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "outer");
  ASSERT_EQ(phases[0].children.size(), 2u);
  EXPECT_EQ(phases[0].children[0].name, "first");
  EXPECT_EQ(phases[0].children[1].name, "second");
  EXPECT_GE(phases[0].wall_ms, phases[0].children[0].wall_ms);
  EXPECT_EQ(phases[1].name, "tail");
  EXPECT_TRUE(phases[1].children.empty());
}

TEST(ObsTest, GaugesRoundTrip) {
  ObsSink sink;
  SetObsSink(&sink);
  sink.SetGauge("obs_test.rate", 0.25);
  sink.SetGauge("obs_test.rate", 0.75);  // overwrite
  SetObsSink(nullptr);
  const auto gauges = sink.Gauges();
  ASSERT_EQ(gauges.count("obs_test.rate"), 1u);
  EXPECT_DOUBLE_EQ(gauges.at("obs_test.rate"), 0.75);
}

TEST(ObsTest, WorkerThreadsAppearInPerThreadBreakdown) {
  ObsSink sink;
  SetObsSink(&sink);
  SetThreadCount(3);
  ParallelFor(0, 64, 1, [](size_t) { ObsIncrement(kTestCounter); });
  SetThreadCount(0);
  SetObsSink(nullptr);
  const auto per_thread = sink.PerThreadCounters();
  ASSERT_FALSE(per_thread.empty());
  uint64_t total = 0;
  for (const auto& worker : per_thread) {
    EXPECT_FALSE(worker.thread_name.empty());
    auto it = worker.counters.find("obs_test.widgets");
    if (it != worker.counters.end()) total += it->second;
  }
  EXPECT_EQ(total, 64u);
}

TEST(ObsTest, RunReportJsonHasRequiredKeys) {
  ObsSink sink;
  SetObsSink(&sink);
  { ScopedTimer timer("stage"); ObsIncrement(kTestCounter); }
  SetObsSink(nullptr);
  const std::string json = RunReportJson(sink, "test", 2);
  for (const char* key :
       {"\"lamo_report_version\":2", "\"command\":\"test\"", "\"threads\":2",
        "\"wall_ms\":", "\"phases\":", "\"counters\":", "\"gauges\":",
        "\"histograms\":", "\"trace.dropped\":", "\"workers\":",
        "\"obs_test.widgets\":1"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(ObsTest, DestructorUninstallsItself) {
  {
    ObsSink sink;
    SetObsSink(&sink);
    EXPECT_TRUE(ObsEnabled());
  }
  EXPECT_FALSE(ObsEnabled()) << "destroyed sink left installed";
}

}  // namespace
}  // namespace lamo
