#include "obs/json.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace lamo {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.Key("b");
  w.BeginArray();
  w.String("x");
  w.Bool(true);
  w.Null();
  w.EndArray();
  w.Key("c");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":["x",true,null],"c":{}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.String("a\"b\\c\n\t\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(HUGE_VAL);
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonParserTest, ParsesScalars) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("42.5", &v, &error)) << error;
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.number_value, 42.5);
  ASSERT_TRUE(ParseJson("true", &v, &error));
  EXPECT_TRUE(v.bool_value);
  ASSERT_TRUE(ParseJson("null", &v, &error));
  EXPECT_EQ(v.type, JsonValue::Type::kNull);
  ASSERT_TRUE(ParseJson(R"("hi A\n")", &v, &error));
  EXPECT_EQ(v.string_value, "hi A\n");
  ASSERT_TRUE(ParseJson("\"\\u0041\\u00e9\"", &v, &error));
  EXPECT_EQ(v.string_value, "A\xc3\xa9");  // \u escapes decode to UTF-8
}

TEST(JsonParserTest, ParsesNestedDocument) {
  JsonValue v;
  std::string error;
  const std::string doc =
      R"({"counters":{"esu.subgraphs":123},"phases":[{"name":"mine","wall_ms":1.5}]})";
  ASSERT_TRUE(ParseJson(doc, &v, &error)) << error;
  const JsonValue* counters = v.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* subgraphs = counters->Find("esu.subgraphs");
  ASSERT_NE(subgraphs, nullptr);
  EXPECT_DOUBLE_EQ(subgraphs->number_value, 123.0);
  const JsonValue* phases = v.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->items.size(), 1u);
  EXPECT_EQ(phases->items[0].Find("name")->string_value, "mine");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "1 2",
                          "\"unterminated", "{\"a\" 1}"}) {
    EXPECT_FALSE(ParseJson(bad, &v, &error)) << "accepted: " << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonParserTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("wall_ms");
  w.Double(152.625);
  w.Key("name");
  w.String("esu \"phase\" \n one");
  w.Key("count");
  w.Int(18446744073709551615ULL);
  w.EndObject();
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(w.str(), &v, &error)) << error;
  EXPECT_DOUBLE_EQ(v.Find("wall_ms")->number_value, 152.625);
  EXPECT_EQ(v.Find("name")->string_value, "esu \"phase\" \n one");
}

}  // namespace
}  // namespace lamo
