#!/bin/sh
# Schema test for --report: run the ESU miner over a small synthetic graph
# with a JSON run report enabled, then validate the document's required keys
# (and that the ESU/parallel counters actually recorded work) with
# lamo_report_check. Also exercises --stats and checks the predictor path
# emits a report at all.
set -e
LAMO="$1"
CHECK="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$LAMO" generate --proteins 300 --copies 20 --seed 9 --out "$WORK/ds" \
  > /dev/null

"$LAMO" mine --graph "$WORK/ds.graph.txt" --algo esu --min-size 3 \
  --max-size 4 --min-freq 15 --networks 3 --uniqueness 0.5 --threads 2 \
  --report "$WORK/mine.json" --stats --out "$WORK/motifs.txt" \
  > /dev/null 2> "$WORK/mine.stats.txt"
"$CHECK" "$WORK/mine.json" \
  esu.subgraphs esu.canon_cache_misses parallel.chunks \
  uniqueness.replicates \
  hist:esu.chunk_us hist:uniqueness.replicate_us hist:pool.queue_wait_us

grep -q "lamo mine run stats" "$WORK/mine.stats.txt" || {
  echo "FAIL: --stats printed no summary" >&2
  exit 1
}

"$LAMO" label --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --motifs "$WORK/motifs.txt" \
  --sigma 5 --report "$WORK/label.json" --out "$WORK/labeled.txt" > /dev/null
"$CHECK" "$WORK/label.json" lamofinder.so_cells similarity.memo_misses \
  hist:lamofinder.so_cell_us hist:similarity.compute_us

"$LAMO" predict --graph "$WORK/ds.graph.txt" --obo "$WORK/ds.obo" \
  --annotations "$WORK/ds.annotations.tsv" --labeled "$WORK/labeled.txt" \
  --protein 1 --report "$WORK/predict.json" > /dev/null
"$CHECK" "$WORK/predict.json"

echo "report schema OK"
