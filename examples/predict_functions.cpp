// Protein function prediction with labeled network motifs (Section 5 of the
// paper) against the four baselines, on a scaled-down MIPS-like dataset.
//
// Usage: predict_functions [--proteins N]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/lamofinder.h"
#include "motif/uniqueness.h"
#include "predict/chi_square.h"
#include "predict/dataset_context.h"
#include "predict/evaluation.h"
#include "predict/labeled_motif_predictor.h"
#include "predict/mrf.h"
#include "predict/neighbor_counting.h"
#include "predict/prodistin.h"
#include "synth/dataset.h"

int main(int argc, char** argv) {
  using namespace lamo;
  size_t num_proteins = 800;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--proteins") == 0) {
      num_proteins = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  SyntheticDatasetConfig config = MipsScaleConfig();
  config.num_proteins = num_proteins;
  config.copies_per_template = 40;
  config.template_min_size = 4;
  config.template_max_size = 5;
  config.role_annotation_probability = 0.9;
  config.complex_template_fraction = 0.0;
  config.informative_threshold = std::max<size_t>(5, num_proteins / 100);
  const SyntheticDataset dataset = BuildSyntheticDataset(config);
  std::printf("dataset: %s, %zu categories\n", dataset.ppi.ToString().c_str(),
              dataset.categories.size());

  // Mine and label motifs.
  MotifFindingConfig motif_config;
  motif_config.miner.min_size = 4;
  motif_config.miner.max_size = 5;
  motif_config.miner.min_frequency = 30;
  motif_config.uniqueness.num_random_networks = 10;
  motif_config.uniqueness_threshold = 0.95;  // the paper's motif criterion
  const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);

  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 8;
  label_config.max_occurrences = 200;
  const auto labeled = finder.LabelAll(motifs, label_config);
  std::printf("labeled motifs: %zu\n", labeled.size());

  // Predictors.
  const PredictionContext context = BuildPredictionContext(dataset);
  LabeledMotifPredictor motif_predictor(context, dataset.ontology, labeled);
  NeighborCountingPredictor nc(context);
  ChiSquarePredictor chi2(context);
  MrfPredictor mrf(context);
  ProdistinConfig prodistin_config;
  prodistin_config.max_tree_proteins = 500;
  ProdistinPredictor prodistin(context, prodistin_config);
  std::printf("labeled-motif coverage of annotated proteins: %.1f%%\n",
              100.0 * motif_predictor.CoverageOfAnnotated());

  // Evaluate on motif-covered annotated proteins (reported restriction).
  EvaluationConfig eval;
  for (ProteinId p = 0; p < dataset.ppi.num_vertices(); ++p) {
    if (context.IsAnnotated(p) && motif_predictor.Covers(p)) {
      eval.evaluation_set.push_back(p);
    }
  }
  eval.max_k = 5;
  std::printf("evaluating on %zu motif-covered annotated proteins\n\n",
              eval.evaluation_set.size());

  const FunctionPredictor* predictors[] = {&motif_predictor, &mrf, &chi2,
                                           &nc, &prodistin};
  std::printf("%-14s", "method");
  for (size_t k = 1; k <= eval.max_k; ++k) {
    std::printf("  P@%zu/R@%zu     ", k, k);
  }
  std::printf("\n");
  for (const FunctionPredictor* predictor : predictors) {
    const PrCurve curve = EvaluateLeaveOneOut(*predictor, context, eval);
    std::printf("%-14s", curve.method.c_str());
    for (const PrPoint& point : curve.points) {
      std::printf("  %.3f/%.3f  ", point.precision, point.recall);
    }
    std::printf("\n");
  }

  // The Figure-8 story: one concrete prediction explained.
  for (ProteinId p = 0; p < dataset.ppi.num_vertices(); ++p) {
    if (!context.IsAnnotated(p) && motif_predictor.Covers(p)) {
      const auto predictions = motif_predictor.Predict(p);
      std::printf(
          "\nunannotated protein %u sits in a labeled motif; top prediction: "
          "category %s (score %.2f)\n",
          p, dataset.ontology.TermName(predictions[0].category).c_str(),
          predictions[0].score);
      break;
    }
  }
  return 0;
}
