// Labels network motifs mined from a whole synthetic interactome — the
// Section-4 pipeline of the paper (NeMoFinder-style mining, uniqueness
// testing, LaMoFinder labeling) on a scaled-down yeast-like network.
//
// Usage: label_interactome [--proteins N] [--max-size K] [--min-freq F]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "core/lamofinder.h"
#include "graph/algorithms.h"
#include "motif/uniqueness.h"
#include "synth/dataset.h"
#include "util/timer.h"

namespace {

size_t FlagValue(int argc, char** argv, const char* name, size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lamo;

  const size_t num_proteins = FlagValue(argc, argv, "--proteins", 1200);
  const size_t max_size = FlagValue(argc, argv, "--max-size", 5);
  const size_t min_freq = FlagValue(argc, argv, "--min-freq", 40);

  // 1. Synthetic yeast-like interactome with annotations (see DESIGN.md
  // section 2 for the substitution rationale).
  SyntheticDatasetConfig config = BindScaleConfig();
  config.num_proteins = num_proteins;
  config.copies_per_template = min_freq + 20;
  config.informative_threshold =
      std::max<size_t>(5, num_proteins / 140);  // scale Zhou's 30-of-4141
  Timer timer;
  const SyntheticDataset dataset = BuildSyntheticDataset(config);
  std::printf("interactome: %s, clustering coefficient %.3f\n",
              dataset.ppi.ToString().c_str(),
              GlobalClusteringCoefficient(dataset.ppi));
  std::printf("annotated proteins: %zu / %zu (mean %.2f terms each)\n",
              dataset.annotations.CountAnnotated(), num_proteins,
              dataset.annotations.MeanTermsPerAnnotatedProtein());

  // 2. Tasks 1 + 2: repeated and unique subgraphs.
  MotifFindingConfig motif_config;
  motif_config.miner.min_size = 3;
  motif_config.miner.max_size = max_size;
  motif_config.miner.min_frequency = min_freq;
  motif_config.miner.max_occurrences_per_pattern = 20000;
  motif_config.uniqueness.num_random_networks = 10;
  motif_config.uniqueness_threshold = 0.95;
  const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);
  std::printf("network motifs (freq >= %zu, uniq > 0.95): %zu  [%.1fs]\n",
              min_freq, motifs.size(), timer.ElapsedSeconds());

  // 3. Task 3: label them.
  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 10;
  label_config.max_occurrences = 300;
  const auto labeled = finder.LabelAll(motifs, label_config);
  std::printf("labeled network motifs (sigma = %zu): %zu  [%.1fs]\n",
              label_config.sigma, labeled.size(), timer.ElapsedSeconds());

  // 4. Distribution by size (the Figure-6 readout).
  std::map<size_t, size_t> by_size;
  for (const auto& lm : labeled) ++by_size[lm.size()];
  std::printf("\nsize  count\n");
  for (const auto& [size, count] : by_size) {
    std::printf("%4zu  %zu\n", size, count);
  }

  // 5. A small gallery of schemes (the Figure-7 readout).
  std::printf("\nsample labeled motifs:\n");
  size_t shown = 0;
  for (const auto& lm : labeled) {
    if (shown++ >= 5) break;
    std::printf("  size %zu, freq %zu, LMS %.2f: %s\n", lm.size(),
                lm.frequency, lm.strength,
                lm.SchemeToString(dataset.ontology).c_str());
  }
  return 0;
}
