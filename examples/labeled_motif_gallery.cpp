// The Figure-7 gallery: labels motifs in all three GO branches (function,
// process, cellular component) over one interactome, then prints
//   g1-style  uni-labeled motifs (functional homogeneity),
//   g2-style  non-uni-labeled motifs (distinct but related labels), and
//   g3-style  parallel-labeled motifs (function + location on the same
//             occurrences).
//
// Usage: labeled_motif_gallery [--proteins N]
#include <cstdio>
#include <cstring>

#include "core/lamofinder.h"
#include "core/parallel_labels.h"
#include "motif/uniqueness.h"
#include "synth/multi_branch.h"

namespace {

using namespace lamo;

// A scheme is "uni-labeled" when every vertex carries the same label set.
bool IsUniLabeled(const LabelProfile& scheme) {
  for (size_t i = 1; i < scheme.size(); ++i) {
    if (scheme[i] != scheme[0]) return false;
  }
  return !scheme.empty() && !scheme[0].empty();
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_proteins = 700;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--proteins") == 0) {
      num_proteins = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  MultiBranchConfig config;
  config.base = MipsScaleConfig();
  config.base.num_proteins = num_proteins;
  config.base.copies_per_template = 35;
  config.base.template_min_size = 4;
  config.base.template_max_size = 5;
  config.base.informative_threshold = std::max<size_t>(5, num_proteins / 100);
  const MultiBranchDataset dataset = BuildMultiBranchDataset(config);
  std::printf("interactome: %s, annotated in 3 GO branches\n",
              dataset.ppi.ToString().c_str());

  MotifFindingConfig motif_config;
  motif_config.miner.min_size = 4;
  motif_config.miner.max_size = 5;
  motif_config.miner.min_frequency = 25;
  motif_config.uniqueness.num_random_networks = 8;
  motif_config.uniqueness_threshold = 0.95;
  const auto motifs = FindNetworkMotifs(dataset.ppi, motif_config);
  std::printf("network motifs: %zu\n\n", motifs.size());

  // Label per branch, as the paper does ("We call LaMoFinder 3 times").
  std::array<std::vector<LabeledMotif>, 3> per_branch;
  LaMoFinderConfig label_config;
  label_config.sigma = 8;
  label_config.max_occurrences = 150;
  for (size_t b = 0; b < 3; ++b) {
    const BranchData& branch = dataset.branches[b];
    LaMoFinder finder(branch.ontology, branch.weights, branch.informative,
                      branch.annotations);
    per_branch[b] = finder.LabelAll(motifs, label_config);
    std::printf("%-18s: %zu labeled motifs\n",
                GoBranchName(branch.branch), per_branch[b].size());
  }

  // g1: uni-labeled motifs.
  std::printf("\n--- g1-style (uni-labeled, functional homogeneity) ---\n");
  size_t shown = 0;
  for (const LabeledMotif& lm : per_branch[0]) {
    if (!IsUniLabeled(lm.scheme) || shown >= 3) continue;
    ++shown;
    std::printf("  size %zu, freq %zu: %s\n", lm.size(), lm.frequency,
                lm.SchemeToString(dataset.branches[0].ontology).c_str());
  }
  if (shown == 0) std::printf("  (none at this scale)\n");

  // g2: non-uni-labeled motifs.
  std::printf("\n--- g2-style (distinct but related labels) ---\n");
  shown = 0;
  for (const LabeledMotif& lm : per_branch[0]) {
    if (IsUniLabeled(lm.scheme) || shown >= 3) continue;
    bool all_labeled = true;
    for (const LabelSet& labels : lm.scheme) {
      if (labels.empty()) all_labeled = false;
    }
    if (!all_labeled) continue;
    ++shown;
    std::printf("  size %zu, freq %zu: %s\n", lm.size(), lm.frequency,
                lm.SchemeToString(dataset.branches[0].ontology).c_str());
  }
  if (shown == 0) std::printf("  (none at this scale)\n");

  // g3: parallel function + location labels.
  std::printf("\n--- g3-style (parallel labels across branches) ---\n");
  const auto parallel = CombineBranchLabels(per_branch, 8);
  shown = 0;
  for (const ParallelLabeledMotif& pm : parallel) {
    if (shown >= 3) break;
    ++shown;
    std::printf("  size %zu, %zu branches, freq %zu:\n",
                pm.pattern.num_vertices(), pm.num_branches(), pm.frequency);
    for (size_t b = 0; b < 3; ++b) {
      if (!pm.schemes[b].has_value()) continue;
      const Ontology& onto = dataset.branches[b].ontology;
      std::printf("    %-18s [", GoBranchName(static_cast<GoBranch>(b)));
      for (size_t pos = 0; pos < pm.schemes[b]->size(); ++pos) {
        std::printf("%s%s", pos ? ", " : "",
                    LabelSetToString(onto, (*pm.schemes[b])[pos]).c_str());
      }
      std::printf("]\n");
    }
  }
  std::printf("\nparallel-labeled motifs total: %zu\n", parallel.size());
  return 0;
}
