// Labeled *directed* network motifs — the extension the paper names as
// future work ("we plan to look into mining labeled and directed network
// motifs"). Builds a synthetic gene regulatory network with planted
// feed-forward loops (FFLs), recovers the FFL as a directed motif (the
// classic Milo et al. result), and labels it with GO terms via LaMoFinder,
// whose clustering honors the *directed* symmetric vertex sets.
//
// Usage: directed_motifs [--genes N]
#include <cstdio>
#include <cstring>

#include "core/lamofinder.h"
#include "graph/small_digraph.h"
#include "motif/directed_motifs.h"
#include "synth/grn_generator.h"

namespace {

// The canonical FFL pattern a->b, a->c, b->c.
lamo::SmallDigraph FflPattern() {
  lamo::SmallDigraph ffl(3);
  ffl.AddArc(0, 1);
  ffl.AddArc(0, 2);
  ffl.AddArc(1, 2);
  return ffl;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lamo;
  size_t num_genes = 500;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--genes") == 0) {
      num_genes = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  GrnConfig config;
  config.num_genes = num_genes;
  const GrnDataset dataset = BuildGrnDataset(config);
  std::printf("regulatory network: %s (%zu planted FFLs)\n",
              dataset.grn.ToString().c_str(), dataset.ffls.size());

  // Directed motif finding at size 3.
  DirectedMotifConfig motif_config;
  motif_config.size = 3;
  motif_config.min_frequency = 20;
  motif_config.num_random_networks = 10;
  motif_config.uniqueness_threshold = 0.95;
  const auto motifs = FindDirectedNetworkMotifs(dataset.grn, motif_config);
  std::printf("directed network motifs (size 3, freq >= 20, uniq > 0.95): "
              "%zu\n\n", motifs.size());

  const auto ffl_code = DirectedCanonicalCode(FflPattern());
  const DirectedMotif* ffl = nullptr;
  for (const DirectedMotif& m : motifs) {
    std::printf("  %-60s freq %zu  uniq %.2f%s\n",
                m.pattern.ToString().c_str(), m.as_motif.frequency,
                m.as_motif.uniqueness,
                m.as_motif.code == ffl_code ? "   <- feed-forward loop" : "");
    if (m.as_motif.code == ffl_code) ffl = &m;
  }
  if (ffl == nullptr) {
    std::printf("\nfeed-forward loop not among the motifs (unexpected)\n");
    return 1;
  }

  // Label the FFL with GO terms: the directed symmetric sets (all
  // singletons: an FFL is asymmetric) flow into LaMoFinder via the
  // override.
  std::printf("\ndirected symmetric sets of the FFL:");
  for (const auto& cls : ffl->as_motif.symmetric_sets_override) {
    std::printf(" {");
    for (size_t i = 0; i < cls.size(); ++i) {
      std::printf("%s%u", i ? "," : "", cls[i]);
    }
    std::printf("}");
  }
  std::printf("  (all singletons: the FFL has no interchangeable roles)\n");

  LaMoFinder finder(dataset.ontology, dataset.weights, dataset.informative,
                    dataset.annotations);
  LaMoFinderConfig label_config;
  label_config.sigma = 10;
  label_config.max_occurrences = 200;
  const auto labeled = finder.LabelAll({ffl->as_motif}, label_config);
  std::printf("\nlabeled directed motifs from the FFL: %zu\n", labeled.size());
  for (const LabeledMotif& lm : labeled) {
    std::printf("  freq %zu: %s\n", lm.frequency,
                lm.SchemeToString(dataset.ontology).c_str());
  }
  std::printf("\nplanted role terms were: regulator %s, intermediate %s, "
              "target %s\n",
              dataset.ontology.TermName(dataset.ffl_role_terms[0]).c_str(),
              dataset.ontology.TermName(dataset.ffl_role_terms[1]).c_str(),
              dataset.ontology.TermName(dataset.ffl_role_terms[2]).c_str());
  return 0;
}
