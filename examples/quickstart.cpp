// Quickstart: the paper's worked example end to end in ~60 lines of API.
//
// Builds the Section-2 ontology (Figure 1 / Table 1), the small PPI network
// with four occurrences of the 4-cycle motif (Figures 2-3), and runs
// LaMoFinder to derive labeling schemes, printing everything it computes
// along the way.
#include <cstdio>

#include "core/lamofinder.h"
#include "core/occurrence_similarity.h"
#include "core/paper_example.h"
#include "graph/automorphism.h"
#include "graph/canonical.h"

int main() {
  using namespace lamo;

  // 1. The worked example of the paper: ontology, weights, PPI, motif.
  const PaperExample example = MakePaperExample();
  std::printf("PPI network: %s\n", example.ppi.ToString().c_str());
  std::printf("Ontology: %zu terms, root %s\n",
              example.ontology.num_terms(),
              example.ontology.TermName(example.ontology.Roots()[0]).c_str());

  // 2. GO term weights (Lord et al.) and Lin similarity (Eq. 1).
  TermSimilarity st(example.ontology, example.weights);
  const TermId g08 = example.term("G08");
  const TermId g09 = example.term("G09");
  std::printf("w(G08) = %.2f, w(G09) = %.2f, ST(G08, G09) = %.2f\n",
              example.weights.Weight(g08), example.weights.Weight(g09),
              st.Similarity(g08, g09));

  // 3. The motif's symmetric vertex sets (Section 2, issue 2).
  std::printf("Motif: %s\n", example.motif.ToString().c_str());
  for (const auto& set : SymmetricVertexSets(example.motif)) {
    std::printf("  symmetric set: {");
    for (size_t i = 0; i < set.size(); ++i) {
      std::printf("%sv%u", i ? ", " : "", set[i] + 1);
    }
    std::printf("}\n");
  }

  // 4. Package the occurrences as a Motif and label it.
  Motif motif;
  motif.pattern = example.motif;
  motif.code = CanonicalCode(example.motif);
  for (const auto& occ : example.occurrences) {
    motif.occurrences.push_back(MotifOccurrence{occ});
  }
  motif.frequency = motif.occurrences.size();
  motif.uniqueness = 1.0;

  LaMoFinder finder(example.ontology, example.weights, example.informative,
                    example.protein_annotations);
  LaMoFinderConfig config;
  config.sigma = 2;  // the toy network has only 4 occurrences
  config.min_similarity = 0.3;

  const auto labeled = finder.LabelAll({motif}, config);
  std::printf("\nLaMoFinder produced %zu labeling scheme(s):\n",
              labeled.size());
  for (const LabeledMotif& lm : labeled) {
    std::printf("  %s  (frequency %zu, LMS %.2f)\n",
                lm.SchemeToString(example.ontology).c_str(), lm.frequency,
                lm.strength);
  }
  return 0;
}
