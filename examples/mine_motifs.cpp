// Network motif mining demo: exhaustive ESU enumeration, the level-wise
// NeMoFinder-style miner, and the mfinder-style sampling estimator, cross-
// checked against each other on one network (Tasks 1-2 of the paper).
//
// Usage: mine_motifs [--proteins N] [--size K]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "graph/canonical.h"
#include "graph/generators.h"
#include "motif/esu.h"
#include "motif/miner.h"
#include "motif/uniqueness.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace lamo;
  size_t num_proteins = 600;
  size_t k = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--proteins") == 0) {
      num_proteins = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--size") == 0) {
      k = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  Rng rng(7);
  const Graph g = DuplicationDivergence(num_proteins, 0.3, 0.15, rng);
  std::printf("network: %s\n\n", g.ToString().c_str());

  // 1. Exhaustive ESU: ground-truth class counts.
  Timer timer;
  const auto exact = CountSubgraphClasses(g, k);
  size_t exact_total = 0;
  for (const auto& [code, count] : exact) exact_total += count;
  std::printf("ESU: %zu size-%zu classes, %zu connected sets  [%.2fs]\n",
              exact.size(), k, exact_total, timer.ElapsedSeconds());

  // 2. Level-wise miner restricted to frequent classes.
  timer.Reset();
  MinerConfig miner_config;
  miner_config.min_size = k;
  miner_config.max_size = k;
  miner_config.min_frequency = 20;
  const auto motifs = FrequentSubgraphMiner(g, miner_config).Mine();
  std::printf("miner: %zu classes with frequency >= 20  [%.2fs]\n",
              motifs.size(), timer.ElapsedSeconds());
  for (const Motif& m : motifs) {
    const auto it = exact.find(m.code);
    std::printf("  %-40s  miner=%zu  esu=%zu  %s\n", m.ToString().c_str(),
                m.frequency, it == exact.end() ? 0 : it->second,
                (it != exact.end() && it->second == m.frequency) ? "OK"
                                                                 : "MISMATCH");
  }

  // 3. Sampling estimator (RAND-ESU / mfinder style).
  timer.Reset();
  Rng sample_rng(11);
  std::vector<double> probabilities(k, 1.0);
  probabilities[k - 1] = 0.3;
  probabilities[k - 2] = 0.5;
  const auto sampled = SampleSubgraphClasses(g, k, probabilities, sample_rng);
  std::printf(
      "\nsampling: %zu sets sampled, estimated total %.0f (exact %zu)  "
      "[%.2fs]\n",
      sampled.samples, sampled.estimated_total, exact_total,
      timer.ElapsedSeconds());

  // 4. Uniqueness of the frequent classes.
  timer.Reset();
  std::vector<Motif> scored = motifs;
  UniquenessConfig uniq;
  uniq.num_random_networks = 10;
  EvaluateUniqueness(g, uniq, &scored);
  std::printf("\nuniqueness against 10 rewired networks:\n");
  for (const Motif& m : scored) {
    std::printf("  freq %6zu  uniqueness %.2f  %s\n", m.frequency,
                m.uniqueness, m.uniqueness > 0.95 ? "MOTIF" : "");
  }
  std::printf("[%.2fs]\n", timer.ElapsedSeconds());
  return 0;
}
