#!/bin/sh
# Rebuilds the library and regenerates every table and figure of the paper
# (plus the ablations and the future-work extension), leaving outputs in
# reproduction_output/.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

OUT=reproduction_output
mkdir -p "$OUT"
for bench in build/bench/*; do
  name="$(basename "$bench")"
  echo "== $name =="
  "$bench" | tee "$OUT/$name.txt"
done
echo "All outputs in $OUT/; compare against EXPERIMENTS.md."
