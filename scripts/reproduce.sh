#!/bin/sh
# Rebuilds the library and regenerates every table and figure of the paper
# (plus the ablations and the future-work extension), leaving outputs in
# reproduction_output/.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

OUT=reproduction_output
mkdir -p "$OUT"
for bench in build/bench/*; do
  name="$(basename "$bench")"
  echo "== $name =="
  case "$name" in
    bench_micro|bench_scaling)
      # google-benchmark harnesses also emit machine-readable JSON (the
      # thread-sweep benchmarks tag each measurement with a "threads"
      # counter) so later PRs can track parallel speedup over time.
      "$bench" --benchmark_out="$OUT/$name.json" \
        --benchmark_out_format=json | tee "$OUT/$name.txt"
      ;;
    *)
      "$bench" | tee "$OUT/$name.txt"
      ;;
  esac
done

# ThreadSanitizer smoke run of the parallel runtime: rebuilds just the
# parallel tests under -fsanitize=thread and fails on any reported race.
echo "== tsan smoke (parallel runtime) =="
cmake -B build-tsan -G Ninja -DLAMO_SANITIZE=thread
cmake --build build-tsan --target parallel_tests
LAMO_THREADS=4 ./build-tsan/tests/parallel_tests

echo "All outputs in $OUT/; compare against EXPERIMENTS.md."
