#!/bin/sh
# Rebuilds the library and regenerates every table and figure of the paper
# (plus the ablations and the future-work extension), leaving outputs in
# reproduction_output/.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

OUT=reproduction_output
mkdir -p "$OUT"
for bench in build/bench/*; do
  name="$(basename "$bench")"
  echo "== $name =="
  case "$name" in
    bench_micro|bench_scaling)
      # google-benchmark harnesses also emit machine-readable JSON (the
      # thread-sweep benchmarks tag each measurement with a "threads"
      # counter) so later PRs can track parallel speedup over time.
      "$bench" --benchmark_out="$OUT/$name.json" \
        --benchmark_out_format=json | tee "$OUT/$name.txt"
      ;;
    bench_update)
      # Dynamic-interactome perf gate: one incremental UpdateEngine::Apply
      # must beat a full re-mine+relabel+repack by 10x; BENCH_update.json
      # archives the measured ratio so the incremental path is tracked
      # across PRs like the mining and routing throughput numbers.
      "$bench" --json "$OUT/BENCH_update.json" --min-speedup 10 \
        | tee "$OUT/$name.txt"
      ;;
    bench_fig9_precision_recall)
      # Also archives the registered-backend comparison (LabeledMotif vs
      # GDS vs RoleSimilarity leave-one-out P/R, the same backends `lamo
      # serve --predictor` offers) as BENCH_predictors.json.
      "$bench" --json "$OUT/BENCH_predictors.json" | tee "$OUT/$name.txt"
      ;;
    *)
      "$bench" | tee "$OUT/$name.txt"
      ;;
  esac
done

# Mining perf-regression gate: archive the ESU thread sweep on its own
# (BENCH_mine.json) with the headline esu.subgraphs/sec rate, the shared
# canonicalization-table hit rate and the p99 chunk time, so the enumeration
# engine's throughput is tracked across PRs exactly like the serving and
# routing benchmarks (EXPERIMENTS.md records the baseline).
echo "== mining perf gate (BENCH_mine.json) =="
build/bench/bench_scaling \
  --benchmark_filter=BM_EsuEnumerationThreads \
  --benchmark_out="$OUT/BENCH_mine.json" --benchmark_out_format=json \
  | tee "$OUT/mine_bench.txt"

# Observability artifacts: run the ESU pipeline with --report/--stats over
# a pinned synthetic dataset, validate the JSON against the documented
# schema, and keep both documents with the other outputs so instrumentation
# (phase times, counter totals, per-worker load) can be tracked across PRs.
echo "== run reports (lamo mine/label --report) =="
build/tools/lamo generate --proteins 500 --copies 40 --seed 11 \
  --out "$OUT/obs_ds" > /dev/null
build/tools/lamo mine --graph "$OUT/obs_ds.graph.txt" --algo esu \
  --min-size 3 --max-size 4 --min-freq 20 --networks 5 --uniqueness 0.8 \
  --report "$OUT/mine_report.json" --stats \
  --trace "$OUT/mine_trace.json" \
  --out "$OUT/obs_motifs.txt" > /dev/null 2> "$OUT/mine_stats.txt"
build/tools/lamo_report_check "$OUT/mine_report.json" \
  esu.subgraphs esu.canon_shared_lookups parallel.chunks \
  uniqueness.replicates hist:esu.chunk_us hist:uniqueness.replicate_us
build/tools/lamo label --graph "$OUT/obs_ds.graph.txt" \
  --obo "$OUT/obs_ds.obo" --annotations "$OUT/obs_ds.annotations.tsv" \
  --motifs "$OUT/obs_motifs.txt" --sigma 6 \
  --report "$OUT/label_report.json" --stats \
  --trace "$OUT/label_trace.json" \
  --out "$OUT/obs_labeled.txt" > /dev/null 2> "$OUT/label_stats.txt"
build/tools/lamo_report_check "$OUT/label_report.json" \
  hist:lamofinder.so_cell_us

# Span-trace artifacts: the Chrome traces archived above load directly in
# chrome://tracing or ui.perfetto.dev; keep their terminal digests next to
# them so span coverage can be compared across PRs without a browser.
echo "== span traces (lamo mine/label --trace) =="
build/tools/lamo_trace_summary "$OUT/mine_trace.json" \
  | tee "$OUT/mine_trace_summary.txt"
build/tools/lamo_trace_summary "$OUT/label_trace.json" \
  | tee "$OUT/label_trace_summary.txt"

# Serving artifacts: pack the obs dataset into a snapshot, serve it over
# TCP, load-test with 4 concurrent connections and archive the throughput +
# p50/p99 numbers (BENCH_serve.json) plus the daemon's own run report, with
# the serve.* counter/histogram invariants validated by lamo_report_check.
echo "== serving (lamo pack/serve + bench client) =="
build/tools/lamo pack --graph "$OUT/obs_ds.graph.txt" \
  --obo "$OUT/obs_ds.obo" --annotations "$OUT/obs_ds.annotations.tsv" \
  --labeled "$OUT/obs_labeled.txt" --out "$OUT/obs_model.lamosnap" \
  | tee "$OUT/pack.txt"
build/tools/lamo serve --snapshot "$OUT/obs_model.lamosnap" --port 0 \
  --report "$OUT/serve_report.json" \
  --access-log "$OUT/serve_access.jsonl" --access-sample 5 --slow-ms 50 \
  > "$OUT/serve.log" 2>&1 &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$OUT/serve.log")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
test -n "$PORT"
build/tools/lamo_bench_client --port "$PORT" --connections 4 \
  --requests 100 --out "$OUT/BENCH_serve.json" | tee "$OUT/serve_bench.txt"
# Archive a live METRICS scrape (Prometheus text exposition) and validate it
# against the documented grammar; after shutdown the scraped totals must sit
# within the final --report counters.
build/tools/lamo_bench_client --port "$PORT" --query METRICS \
  > "$OUT/serve_metrics.txt"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
build/tools/lamo_metrics_check "$OUT/serve_metrics.txt" \
  --report "$OUT/serve_report.json"
build/tools/lamo_report_check "$OUT/serve_report.json" serve.requests \
  serve.connections serve.access_logged hist:serve.request_us

# Cluster routing artifacts: shard the snapshot, then bench the SAME
# workload against 1, 2 and 4 sharded backends behind `lamo router` —
# BENCH_router.json archives the throughput scaling curve, and the router's
# own run report is validated against the router.* invariants
# (backend request sums == proxied, retries <= requests).
echo "== cluster routing (lamo router + bench client scaling) =="
build/tools/lamo pack --graph "$OUT/obs_ds.graph.txt" \
  --obo "$OUT/obs_ds.obo" --annotations "$OUT/obs_ds.annotations.tsv" \
  --labeled "$OUT/obs_labeled.txt" --out "$OUT/obs_model.lamosnap" \
  --shards 2 > /dev/null
build/tools/lamo pack --graph "$OUT/obs_ds.graph.txt" \
  --obo "$OUT/obs_ds.obo" --annotations "$OUT/obs_ds.annotations.tsv" \
  --labeled "$OUT/obs_labeled.txt" --out "$OUT/obs_model.lamosnap" \
  --shards 4 > /dev/null
PROTEINS=500
: > "$OUT/router_bench.txt"
for N in 1 2 4; do
  rm -f "$OUT/router.log"
  build/tools/lamo router --snapshot "$OUT/obs_model.lamosnap" \
    --backends "$N" --mode sharded --port 0 \
    --report "$OUT/router_report_${N}.json" \
    --access-log "$OUT/router_access_${N}.jsonl" --access-sample 5 \
    --backend-access-log "$OUT/backend_access_${N}.jsonl" --slow-ms 50 \
    > "$OUT/router.log" 2>&1 &
  ROUTER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$OUT/router.log")"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  test -n "$PORT"
  build/tools/lamo_bench_client --port "$PORT" --cluster \
    --proteins "$PROTEINS" --connections 4 --requests 100 \
    --name "router/sharded_x$N" --out "$OUT/BENCH_router_${N}.json" \
    | tee -a "$OUT/router_bench.txt"
  # Aggregated scrape: the router's own series plus every backend's,
  # re-exported with backend=/shard= labels.
  build/tools/lamo_bench_client --port "$PORT" --query METRICS \
    > "$OUT/router_metrics_${N}.txt"
  kill -TERM "$ROUTER_PID"
  wait "$ROUTER_PID"
  build/tools/lamo_metrics_check "$OUT/router_metrics_${N}.txt" \
    --report "$OUT/router_report_${N}.json"
  build/tools/lamo_report_check "$OUT/router_report_${N}.json" \
    router.requests router.proxied router.backend_requests \
    router.ids_issued hist:router.request_us
done
# Stitch the three scaling points into one BENCH_router.json (same shape as
# the per-run files: one context, benchmarks array ordered 1 -> 2 -> 4).
python3 - "$OUT" << 'PYEOF'
import json, sys
d = sys.argv[1]
merged = None
for n in (1, 2, 4):
    with open(f"{d}/BENCH_router_{n}.json") as f:
        run = json.load(f)
    if merged is None:
        merged = run
    else:
        merged["benchmarks"].extend(run["benchmarks"])
with open(f"{d}/BENCH_router.json", "w") as f:
    json.dump(merged, f, indent=1)
PYEOF

# ThreadSanitizer smoke run of the parallel runtime, the tracer and the
# serving stack: rebuilds those tests under -fsanitize=thread and fails on
# any reported race (serve_tests hammers the sharded cache and the stream
# server from multiple threads, plus the live-update writer applying
# ADDEDGE/DELEDGE against concurrent PREDICT readers in update_test; router_tests exercises the monitor/reload
# threads against live backend processes; motif_tests drives the shared
# canonicalization table — lock-free CAS inserts on the dense path, mutex
# shards past k=6 — from concurrent enumeration chunks; obs_tests hammers
# the metric-window ring with concurrent observers vs METRICS scrapes;
# predict_tests runs the per-vertex parallel GDS orbit counter, whose
# relaxed-atomic signature cells TSan must see as race-free).
echo "== tsan smoke (parallel runtime + tracer + serve + router + motif" \
  "+ predict) =="
cmake -B build-tsan -G Ninja -DLAMO_SANITIZE=thread
cmake --build build-tsan --target parallel_tests obs_tests serve_tests \
  router_tests motif_tests predict_tests
LAMO_THREADS=4 ./build-tsan/tests/parallel_tests
LAMO_THREADS=4 ./build-tsan/tests/obs_tests
LAMO_THREADS=4 ./build-tsan/tests/serve_tests
LAMO_THREADS=4 ./build-tsan/tests/router_tests
LAMO_THREADS=4 ./build-tsan/tests/motif_tests
LAMO_THREADS=4 ./build-tsan/tests/predict_tests

# AddressSanitizer smoke run alongside it: the motif + obs tests cover the
# enumeration hot paths and the metrics layer's thread-local blocks,
# graph_tests runs the GraphIndex property battery (bitset kernels, CSR
# round trips), serve_tests replays the snapshot corruption matrix and the
# incremental-update differential (update_test's in-place occurrence/site
# patches are the overwrite-prone path) under ASan, and io_tests runs the parser fuzz matrix (every reader x 500
# deterministic mutations) plus the GraphIndex build fuzz (500 mutated edge
# lists through ReadEdgeList -> index build -> Validate) where ASan turns
# silent overreads into hard failures; predict_tests runs the GDS
# brute-force differential, where the orbit lookup tables and the ESU
# extension buffers are the overread-prone hot path.
echo "== asan smoke (motif + graph + obs + serve + router + predict" \
  "+ fuzz) =="
cmake -B build-asan -G Ninja -DLAMO_SANITIZE=address
cmake --build build-asan --target motif_tests graph_tests obs_tests \
  serve_tests io_tests router_tests predict_tests
LAMO_THREADS=4 ./build-asan/tests/motif_tests
LAMO_THREADS=4 ./build-asan/tests/graph_tests
LAMO_THREADS=4 ./build-asan/tests/obs_tests
LAMO_THREADS=4 ./build-asan/tests/serve_tests
LAMO_THREADS=4 ./build-asan/tests/io_tests
LAMO_THREADS=4 ./build-asan/tests/router_tests
LAMO_THREADS=4 ./build-asan/tests/predict_tests

# Fault-injection smoke: crash the level-wise miner mid-run with LAMO_FAULT,
# resume from the checkpoint, and require byte-identical output — the full
# crash matrix over every registered fault point runs in ctest
# (`ctest -L fault`), this is the one-command sanity check.
echo "== fault smoke (crash + resume, byte-identical) =="
rm -rf "$OUT/fault_ck"
rc=0
LAMO_FAULT="mine.level:2" build/tools/lamo mine \
  --graph "$OUT/obs_ds.graph.txt" --min-size 3 --max-size 4 --min-freq 20 \
  --checkpoint "$OUT/fault_ck" --out "$OUT/fault_motifs.txt" \
  > /dev/null 2>&1 || rc=$?
test "$rc" -eq 42  # the injected crash, not an ordinary failure
build/tools/lamo mine \
  --graph "$OUT/obs_ds.graph.txt" --min-size 3 --max-size 4 --min-freq 20 \
  --checkpoint "$OUT/fault_ck" --resume --out "$OUT/fault_motifs.txt" \
  > /dev/null
build/tools/lamo mine \
  --graph "$OUT/obs_ds.graph.txt" --min-size 3 --max-size 4 --min-freq 20 \
  --out "$OUT/fault_baseline.txt" > /dev/null
cmp "$OUT/fault_motifs.txt" "$OUT/fault_baseline.txt"
echo "crash/resume reproduced the uninterrupted run byte-for-byte"

echo "All outputs in $OUT/; compare against EXPERIMENTS.md."
