#include "graph/isomorphism.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace lamo {
namespace {

// FNV-1a over the bytes of a sorted vertex set; used to deduplicate
// occurrences.
struct VertexSetHash {
  size_t operator()(const std::vector<VertexId>& vs) const {
    uint64_t h = 1469598103934665603ULL;
    for (VertexId v : vs) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Static matching order: start at the max-degree pattern vertex, then grow by
// connectivity, preferring vertices with the most already-ordered neighbors
// (most constrained first).
std::vector<uint32_t> MatchOrder(const SmallGraph& pattern) {
  const size_t k = pattern.num_vertices();
  std::vector<uint32_t> order;
  order.reserve(k);
  std::vector<bool> placed(k, false);

  uint32_t start = 0;
  for (uint32_t v = 1; v < k; ++v) {
    if (pattern.Degree(v) > pattern.Degree(start)) start = v;
  }
  order.push_back(start);
  placed[start] = true;

  while (order.size() < k) {
    int best = -1;
    size_t best_connected = 0;
    for (uint32_t v = 0; v < k; ++v) {
      if (placed[v]) continue;
      size_t connected = 0;
      for (uint32_t u : order) {
        if (pattern.HasEdge(v, u)) ++connected;
      }
      if (best < 0 || connected > best_connected ||
          (connected == best_connected &&
           pattern.Degree(v) > pattern.Degree(static_cast<uint32_t>(best)))) {
        best = static_cast<int>(v);
        best_connected = connected;
      }
    }
    LAMO_CHECK_GE(best, 0);
    // A connected pattern always has a next vertex touching the ordered
    // prefix; disconnected patterns are matched component by component.
    order.push_back(static_cast<uint32_t>(best));
    placed[best] = true;
  }
  return order;
}

class Vf2State {
 public:
  Vf2State(const SmallGraph& pattern, const Graph& target,
           const EmbeddingOptions& options,
           const std::function<bool(const Embedding&)>& callback)
      : pattern_(pattern),
        target_(target),
        options_(options),
        callback_(callback),
        order_(MatchOrder(pattern)),
        map_(pattern.num_vertices(), kInvalidVertex) {
    // Precompute, for each position, the matched pattern neighbors and
    // matched pattern non-neighbors of the vertex placed there.
    const size_t k = pattern.num_vertices();
    matched_neighbors_.resize(k);
    matched_non_neighbors_.resize(k);
    for (size_t pos = 0; pos < k; ++pos) {
      const uint32_t u = order_[pos];
      for (size_t prev = 0; prev < pos; ++prev) {
        const uint32_t w = order_[prev];
        if (pattern.HasEdge(u, w)) {
          matched_neighbors_[pos].push_back(w);
        } else {
          matched_non_neighbors_[pos].push_back(w);
        }
      }
    }
  }

  // Runs the enumeration; returns false if the callback aborted.
  bool Run() { return Extend(0); }

 private:
  bool Extend(size_t pos) {
    const size_t k = pattern_.num_vertices();
    if (pos == k) {
      ++emitted_;
      const bool keep_going = callback_(map_);
      if (options_.max_embeddings != 0 &&
          emitted_ >= options_.max_embeddings) {
        return false;
      }
      return keep_going;
    }
    const uint32_t u = order_[pos];
    const size_t u_degree = pattern_.Degree(u);

    if (matched_neighbors_[pos].empty()) {
      // Root of a component: scan all target vertices.
      for (VertexId cand = 0; cand < target_.num_vertices(); ++cand) {
        if (!TryCandidate(pos, u, u_degree, cand)) return false;
      }
      return true;
    }
    // Candidates come from the neighborhood of the matched image with the
    // smallest target degree (tightest candidate set).
    VertexId anchor = map_[matched_neighbors_[pos][0]];
    for (uint32_t w : matched_neighbors_[pos]) {
      if (target_.Degree(map_[w]) < target_.Degree(anchor)) anchor = map_[w];
    }
    for (VertexId cand : target_.Neighbors(anchor)) {
      if (!TryCandidate(pos, u, u_degree, cand)) return false;
    }
    return true;
  }

  // Returns false iff enumeration must stop entirely.
  bool TryCandidate(size_t pos, uint32_t u, size_t u_degree, VertexId cand) {
    if (used_.count(cand) != 0) return true;
    if (target_.Degree(cand) < u_degree) return true;
    for (uint32_t w : matched_neighbors_[pos]) {
      if (!target_.HasEdge(cand, map_[w])) return true;
    }
    if (options_.induced) {
      for (uint32_t w : matched_non_neighbors_[pos]) {
        if (target_.HasEdge(cand, map_[w])) return true;
      }
    }
    map_[u] = cand;
    used_.insert(cand);
    const bool keep_going = Extend(pos + 1);
    used_.erase(cand);
    map_[u] = kInvalidVertex;
    return keep_going;
  }

  const SmallGraph& pattern_;
  const Graph& target_;
  const EmbeddingOptions& options_;
  const std::function<bool(const Embedding&)>& callback_;
  std::vector<uint32_t> order_;
  Embedding map_;
  std::unordered_set<VertexId> used_;
  std::vector<std::vector<uint32_t>> matched_neighbors_;
  std::vector<std::vector<uint32_t>> matched_non_neighbors_;
  size_t emitted_ = 0;
};

}  // namespace

void ForEachEmbedding(const SmallGraph& pattern, const Graph& target,
                      const EmbeddingOptions& options,
                      const std::function<bool(const Embedding&)>& callback) {
  if (pattern.num_vertices() == 0 ||
      pattern.num_vertices() > target.num_vertices()) {
    return;
  }
  Vf2State state(pattern, target, options, callback);
  state.Run();
}

std::vector<Embedding> FindEmbeddings(const SmallGraph& pattern,
                                      const Graph& target,
                                      const EmbeddingOptions& options) {
  std::vector<Embedding> embeddings;
  ForEachEmbedding(pattern, target, options,
                   [&](const Embedding& e) {
                     embeddings.push_back(e);
                     return true;
                   });
  return embeddings;
}

std::vector<std::vector<VertexId>> FindOccurrences(const SmallGraph& pattern,
                                                   const Graph& target,
                                                   size_t max_occurrences) {
  std::unordered_set<std::vector<VertexId>, VertexSetHash> seen;
  std::vector<std::vector<VertexId>> occurrences;
  EmbeddingOptions options;  // induced
  ForEachEmbedding(pattern, target, options, [&](const Embedding& e) {
    std::vector<VertexId> sorted = e;
    std::sort(sorted.begin(), sorted.end());
    if (seen.insert(sorted).second) {
      occurrences.push_back(std::move(sorted));
      if (max_occurrences != 0 && occurrences.size() >= max_occurrences) {
        return false;
      }
    }
    return true;
  });
  return occurrences;
}

size_t CountOccurrences(const SmallGraph& pattern, const Graph& target,
                        size_t cap) {
  return FindOccurrences(pattern, target, cap).size();
}

}  // namespace lamo
