#ifndef LAMO_GRAPH_DIRECTED_ISOMORPHISM_H_
#define LAMO_GRAPH_DIRECTED_ISOMORPHISM_H_

#include <functional>
#include <vector>

#include "graph/digraph.h"
#include "graph/small_digraph.h"

namespace lamo {

/// Options for directed embedding enumeration.
struct DirectedEmbeddingOptions {
  /// Demand arc-induced embeddings: pattern non-arcs must be target
  /// non-arcs (in both directions, per ordered pair).
  bool induced = true;
  /// Stop after this many embeddings (0 = unlimited).
  size_t max_embeddings = 0;
};

/// VF2-style enumeration of embeddings of a directed pattern into a
/// directed target. `callback` receives mapping[i] = target vertex playing
/// pattern vertex i; return false to stop. Matching order follows the
/// pattern's *underlying* connectivity; candidates are drawn from the in-
/// and out-neighborhoods of already-matched images.
void ForEachDirectedEmbedding(
    const SmallDigraph& pattern, const DiGraph& target,
    const DirectedEmbeddingOptions& options,
    const std::function<bool(const std::vector<VertexId>&)>& callback);

/// Collects embeddings into a vector.
std::vector<std::vector<VertexId>> FindDirectedEmbeddings(
    const SmallDigraph& pattern, const DiGraph& target,
    const DirectedEmbeddingOptions& options = {});

/// Distinct vertex sets inducing a sub-digraph isomorphic to `pattern`
/// (each set reported once, sorted). 0 = unlimited.
std::vector<std::vector<VertexId>> FindDirectedOccurrences(
    const SmallDigraph& pattern, const DiGraph& target,
    size_t max_occurrences = 0);

/// Counts directed occurrences, stopping at `cap` if nonzero.
size_t CountDirectedOccurrences(const SmallDigraph& pattern,
                                const DiGraph& target, size_t cap = 0);

}  // namespace lamo

#endif  // LAMO_GRAPH_DIRECTED_ISOMORPHISM_H_
