#include "graph/graph_index.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"

namespace lamo {

GraphIndex::GraphIndex(const Graph& g, size_t dense_vertex_limit) {
  num_vertices_ = g.num_vertices();
  const size_t total_neighbors = 2 * g.num_edges();
  LAMO_CHECK_LT(total_neighbors, static_cast<size_t>(UINT32_MAX));

  offsets_.assign(num_vertices_ + 1, 0);
  neighbors_.reserve(total_neighbors);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const auto nbrs = g.Neighbors(v);
    neighbors_.insert(neighbors_.end(), nbrs.begin(), nbrs.end());
    offsets_[v + 1] = static_cast<uint32_t>(neighbors_.size());
  }

  if (num_vertices_ > 0 && num_vertices_ <= dense_vertex_limit) {
    words_per_row_ = (num_vertices_ + 63) / 64;
    bits_.assign(num_vertices_ * words_per_row_, 0);
    for (VertexId v = 0; v < num_vertices_; ++v) {
      uint64_t* row = bits_.data() + static_cast<size_t>(v) * words_per_row_;
      for (const VertexId u : Neighbors(v)) {
        row[u >> 6] |= uint64_t{1} << (u & 63);
      }
    }
  }
}

bool GraphIndex::HasEdge(VertexId a, VertexId b) const {
  if (a >= num_vertices_ || b >= num_vertices_) return false;
  if (dense()) {
    return (Row(a)[b >> 6] >> (b & 63)) & 1;
  }
  if (Degree(a) > Degree(b)) std::swap(a, b);
  const auto nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

uint64_t GraphIndex::InducedBits(const VertexId* verts, size_t k) const {
  LAMO_CHECK_LE(k, kMaxInducedBitsVertices);
  uint64_t bits = 0;
  size_t pair = 0;
  if (dense()) {
    for (size_t i = 0; i < k; ++i) {
      const uint64_t* row = Row(verts[i]);
      for (size_t j = i + 1; j < k; ++j, ++pair) {
        const VertexId u = verts[j];
        bits |= ((row[u >> 6] >> (u & 63)) & 1) << pair;
      }
    }
  } else {
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j, ++pair) {
        if (HasEdge(verts[i], verts[j])) bits |= uint64_t{1} << pair;
      }
    }
  }
  return bits;
}

size_t GraphIndex::CommonNeighbors(VertexId a, VertexId b,
                                   std::vector<VertexId>* out) const {
  out->clear();
  if (a >= num_vertices_ || b >= num_vertices_) return 0;
  if (dense()) {
    const uint64_t* ra = Row(a);
    const uint64_t* rb = Row(b);
    for (size_t w = 0; w < words_per_row_; ++w) {
      uint64_t word = ra[w] & rb[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        out->push_back(static_cast<VertexId>(w * 64 + bit));
        word &= word - 1;
      }
    }
    return out->size();
  }
  return IntersectSorted(Neighbors(a), Neighbors(b), out);
}

size_t GraphIndex::IntersectSorted(std::span<const VertexId> a,
                                   std::span<const VertexId> b,
                                   std::vector<VertexId>* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out->size();
}

Status GraphIndex::Validate() const {
  if (offsets_.size() != num_vertices_ + 1) {
    return Status::Corruption("offset array size mismatch");
  }
  if (offsets_.front() != 0 || offsets_.back() != neighbors_.size()) {
    return Status::Corruption("offset bounds do not cover neighbor array");
  }
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      return Status::Corruption("offsets not monotone at vertex " +
                                std::to_string(v));
    }
    const auto nbrs = Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= num_vertices_) {
        return Status::Corruption("neighbor out of range at vertex " +
                                  std::to_string(v));
      }
      if (nbrs[i] == v) {
        return Status::Corruption("self-loop at vertex " + std::to_string(v));
      }
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) {
        return Status::Corruption("neighbors not sorted+deduped at vertex " +
                                  std::to_string(v));
      }
      const auto back = Neighbors(nbrs[i]);
      if (!std::binary_search(back.begin(), back.end(), v)) {
        return Status::Corruption("asymmetric edge {" + std::to_string(v) +
                                  ", " + std::to_string(nbrs[i]) + "}");
      }
    }
  }
  if (dense()) {
    if (bits_.size() != num_vertices_ * words_per_row_) {
      return Status::Corruption("dense bitset size mismatch");
    }
    for (VertexId v = 0; v < num_vertices_; ++v) {
      const uint64_t* row = Row(v);
      size_t popcount = 0;
      for (size_t w = 0; w < words_per_row_; ++w) {
        popcount += static_cast<size_t>(std::popcount(row[w]));
      }
      if (popcount != Degree(v)) {
        return Status::Corruption("dense row popcount != degree at vertex " +
                                  std::to_string(v));
      }
      for (const VertexId u : Neighbors(v)) {
        if (((row[u >> 6] >> (u & 63)) & 1) == 0) {
          return Status::Corruption("dense row missing CSR edge {" +
                                    std::to_string(v) + ", " +
                                    std::to_string(u) + "}");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace lamo
