#ifndef LAMO_GRAPH_ISOMORPHISM_H_
#define LAMO_GRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "graph/small_graph.h"

namespace lamo {

/// One embedding of a pattern into a target: mapping[i] is the target vertex
/// playing the role of pattern vertex i.
using Embedding = std::vector<VertexId>;

/// Options for subgraph-embedding enumeration.
struct EmbeddingOptions {
  /// If true (the default, and what motif occurrence counting needs), demand
  /// vertex-induced embeddings: pattern non-edges must be target non-edges.
  bool induced = true;
  /// Stop after this many embeddings have been emitted (0 = unlimited).
  size_t max_embeddings = 0;
};

/// VF2-style backtracking enumeration of all embeddings of `pattern` into
/// `target`. Calls `callback` for each embedding; if the callback returns
/// false, enumeration stops early. Pattern vertices are matched in a
/// connectivity-respecting static order; candidate target vertices for
/// non-root positions are drawn from neighborhoods of already-matched
/// vertices, so runtime scales with the pattern's embedding count rather
/// than |target|^|pattern|.
void ForEachEmbedding(const SmallGraph& pattern, const Graph& target,
                      const EmbeddingOptions& options,
                      const std::function<bool(const Embedding&)>& callback);

/// Collects embeddings into a vector (respecting options.max_embeddings).
std::vector<Embedding> FindEmbeddings(const SmallGraph& pattern,
                                      const Graph& target,
                                      const EmbeddingOptions& options = {});

/// Enumerates *occurrences*: distinct vertex sets that induce a subgraph
/// isomorphic to `pattern` (each set reported once, sorted ascending),
/// which is the paper's D_g. `max_occurrences` of 0 means unlimited.
std::vector<std::vector<VertexId>> FindOccurrences(const SmallGraph& pattern,
                                                   const Graph& target,
                                                   size_t max_occurrences = 0);

/// Counts occurrences, stopping at `cap` if nonzero.
size_t CountOccurrences(const SmallGraph& pattern, const Graph& target,
                        size_t cap = 0);

}  // namespace lamo

#endif  // LAMO_GRAPH_ISOMORPHISM_H_
