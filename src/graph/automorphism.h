#ifndef LAMO_GRAPH_AUTOMORPHISM_H_
#define LAMO_GRAPH_AUTOMORPHISM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/small_graph.h"

namespace lamo {

/// Searches for an automorphism of `g` that maps vertex `from` to vertex
/// `to`. Returns the full permutation (perm[v] = image of v) if one exists.
/// Backtracking with color-refinement pruning; exact.
std::optional<std::vector<uint32_t>> FindAutomorphismMapping(
    const SmallGraph& g, uint32_t from, uint32_t to);

/// Computes the orbits of the automorphism group of `g`: vertices u, v are in
/// the same orbit iff some automorphism maps u to v. Each orbit is sorted
/// ascending; orbits are sorted by their minimum element.
///
/// Orbits of size >= 2 are exactly the paper's "sets of symmetric vertices"
/// (Section 2, issue 2): vertices that can be interchanged without affecting
/// the topology. The paper delegates this to the PIGALE library's heuristic;
/// we compute orbits exactly, which is fast at motif scale.
std::vector<std::vector<uint32_t>> VertexOrbits(const SmallGraph& g);

/// Twin classes: u and v are twins iff the transposition (u v) alone is an
/// automorphism, i.e. N(u)\{v} = N(v)\{u}. Twin-ness is an equivalence
/// relation, and *any* permutation within a twin class is an automorphism —
/// which is exactly the property Eq. 3 needs when it maximizes over
/// independent pairings inside each symmetric set. Every class is returned
/// (including singletons), ascending, ordered by minimum element.
std::vector<std::vector<uint32_t>> TwinClasses(const SmallGraph& g);

/// The paper's "sets of symmetric vertices" (Section 2, issue 2): vertices
/// that can be interchanged without affecting the topology. These are the
/// twin classes of size >= 2 — for the paper's Figure-2 motif (the 4-cycle)
/// exactly {v1, v3} and {v2, v4}. Note this is deliberately narrower than
/// VertexOrbits: full orbits also relate vertices whose exchange requires
/// moving *other* vertices (e.g. rotations of a cycle), for which Eq. 3's
/// independent per-set pairing would not be automorphism-sound.
std::vector<std::vector<uint32_t>> SymmetricVertexSets(const SmallGraph& g);

/// Number of automorphisms of `g` (exact, computed by orbit-stabilizer
/// recursion). Useful for relating embedding counts to occurrence counts.
uint64_t AutomorphismGroupSize(const SmallGraph& g);

}  // namespace lamo

#endif  // LAMO_GRAPH_AUTOMORPHISM_H_
