#include "graph/mutable_index.h"

#include <algorithm>
#include <string>

namespace lamo {
namespace {

Status CheckEndpoints(size_t n, VertexId u, VertexId v) {
  if (u >= n || v >= n) {
    return Status::InvalidArgument("edge endpoint out of range: {" +
                                   std::to_string(u) + ", " +
                                   std::to_string(v) + "} on " +
                                   std::to_string(n) + " vertices");
  }
  if (u == v) {
    return Status::InvalidArgument("self-link {" + std::to_string(u) + ", " +
                                   std::to_string(u) + "} rejected");
  }
  return Status::OK();
}

}  // namespace

MutableGraphIndex::MutableGraphIndex(const Graph& g, size_t dense_vertex_limit)
    : adjacency_(g.num_vertices()),
      num_edges_(g.num_edges()),
      dense_vertex_limit_(dense_vertex_limit) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.Neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
}

bool MutableGraphIndex::HasEdge(VertexId u, VertexId v) const {
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  const std::vector<VertexId>& nbrs =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const VertexId other =
      adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::binary_search(nbrs.begin(), nbrs.end(), other);
}

Status MutableGraphIndex::AddEdge(VertexId u, VertexId v) {
  const Status check = CheckEndpoints(adjacency_.size(), u, v);
  if (!check.ok()) return check;
  if (HasEdge(u, v)) {
    return Status::AlreadyExists("edge {" + std::to_string(u) + ", " +
                                 std::to_string(v) + "} already present");
  }
  adjacency_[u].insert(
      std::lower_bound(adjacency_[u].begin(), adjacency_[u].end(), v), v);
  adjacency_[v].insert(
      std::lower_bound(adjacency_[v].begin(), adjacency_[v].end(), u), u);
  ++num_edges_;
  dirty_ = true;
  return Status::OK();
}

Status MutableGraphIndex::RemoveEdge(VertexId u, VertexId v) {
  const Status check = CheckEndpoints(adjacency_.size(), u, v);
  if (!check.ok()) return check;
  if (!HasEdge(u, v)) {
    return Status::NotFound("edge {" + std::to_string(u) + ", " +
                            std::to_string(v) + "} does not exist");
  }
  adjacency_[u].erase(
      std::lower_bound(adjacency_[u].begin(), adjacency_[u].end(), v));
  adjacency_[v].erase(
      std::lower_bound(adjacency_[v].begin(), adjacency_[v].end(), u));
  --num_edges_;
  dirty_ = true;
  return Status::OK();
}

const Graph& MutableGraphIndex::graph() {
  Materialize();
  return graph_;
}

const GraphIndex& MutableGraphIndex::index() {
  Materialize();
  return index_;
}

void MutableGraphIndex::Materialize() {
  if (!dirty_) return;
  GraphBuilder builder(adjacency_.size());
  for (VertexId v = 0; v < adjacency_.size(); ++v) {
    for (const VertexId w : adjacency_[v]) {
      if (v < w) {
        const Status status = builder.AddEdge(v, w);
        (void)status;  // endpoints were validated at edit time
      }
    }
  }
  graph_ = builder.Build();
  index_ = GraphIndex(graph_, dense_vertex_limit_);
  dirty_ = false;
}

}  // namespace lamo
