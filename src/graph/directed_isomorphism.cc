#include "graph/directed_isomorphism.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/logging.h"

namespace lamo {
namespace {

struct VertexSetHash {
  size_t operator()(const std::vector<VertexId>& vs) const {
    uint64_t h = 1469598103934665603ULL;
    for (VertexId v : vs) {
      h ^= v;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

// Matching order over the underlying connectivity, most-constrained first.
std::vector<uint32_t> MatchOrder(const SmallDigraph& pattern) {
  const size_t k = pattern.num_vertices();
  const SmallGraph underlying = pattern.Underlying();
  std::vector<uint32_t> order;
  std::vector<bool> placed(k, false);
  uint32_t start = 0;
  for (uint32_t v = 1; v < k; ++v) {
    if (underlying.Degree(v) > underlying.Degree(start)) start = v;
  }
  order.push_back(start);
  placed[start] = true;
  while (order.size() < k) {
    int best = -1;
    size_t best_connected = 0;
    for (uint32_t v = 0; v < k; ++v) {
      if (placed[v]) continue;
      size_t connected = 0;
      for (uint32_t u : order) {
        if (underlying.HasEdge(v, u)) ++connected;
      }
      if (best < 0 || connected > best_connected) {
        best = static_cast<int>(v);
        best_connected = connected;
      }
    }
    order.push_back(static_cast<uint32_t>(best));
    placed[best] = true;
  }
  return order;
}

class DirectedVf2 {
 public:
  DirectedVf2(const SmallDigraph& pattern, const DiGraph& target,
              const DirectedEmbeddingOptions& options,
              const std::function<bool(const std::vector<VertexId>&)>& cb)
      : pattern_(pattern),
        target_(target),
        options_(options),
        callback_(cb),
        order_(MatchOrder(pattern)),
        map_(pattern.num_vertices(), kInvalidVertex) {}

  void Run() { Extend(0); }

 private:
  bool Extend(size_t pos) {
    const size_t k = pattern_.num_vertices();
    if (pos == k) {
      ++emitted_;
      const bool keep_going = callback_(map_);
      if (options_.max_embeddings != 0 &&
          emitted_ >= options_.max_embeddings) {
        return false;
      }
      return keep_going;
    }
    const uint32_t u = order_[pos];

    // Candidate pool: the tightest neighborhood of a matched image touching
    // u in the pattern (via out- or in-arc); fall back to all vertices at
    // component roots.
    std::vector<VertexId> candidates;
    bool have_anchor = false;
    size_t best_size = 0;
    bool anchor_out = false;
    VertexId anchor = kInvalidVertex;
    for (size_t prev = 0; prev < pos; ++prev) {
      const uint32_t w = order_[prev];
      if (pattern_.HasArc(w, u)) {
        const size_t size = target_.OutDegree(map_[w]);
        if (!have_anchor || size < best_size) {
          have_anchor = true;
          best_size = size;
          anchor = map_[w];
          anchor_out = true;
        }
      }
      if (pattern_.HasArc(u, w)) {
        const size_t size = target_.InDegree(map_[w]);
        if (!have_anchor || size < best_size) {
          have_anchor = true;
          best_size = size;
          anchor = map_[w];
          anchor_out = false;
        }
      }
    }
    if (have_anchor) {
      const auto pool = anchor_out ? target_.OutNeighbors(anchor)
                                   : target_.InNeighbors(anchor);
      candidates.assign(pool.begin(), pool.end());
    } else {
      candidates.resize(target_.num_vertices());
      for (VertexId v = 0; v < target_.num_vertices(); ++v) candidates[v] = v;
    }

    for (VertexId cand : candidates) {
      if (used_.count(cand) != 0) continue;
      if (target_.OutDegree(cand) < pattern_.OutDegree(u)) continue;
      if (target_.InDegree(cand) < pattern_.InDegree(u)) continue;
      bool consistent = true;
      for (size_t prev = 0; prev < pos && consistent; ++prev) {
        const uint32_t w = order_[prev];
        const bool pattern_uw = pattern_.HasArc(u, w);
        const bool pattern_wu = pattern_.HasArc(w, u);
        const bool target_uw = target_.HasArc(cand, map_[w]);
        const bool target_wu = target_.HasArc(map_[w], cand);
        if (options_.induced) {
          consistent = pattern_uw == target_uw && pattern_wu == target_wu;
        } else {
          consistent = (!pattern_uw || target_uw) && (!pattern_wu || target_wu);
        }
      }
      if (!consistent) continue;
      map_[u] = cand;
      used_.insert(cand);
      const bool keep_going = Extend(pos + 1);
      used_.erase(cand);
      map_[u] = kInvalidVertex;
      if (!keep_going) return false;
    }
    return true;
  }

  const SmallDigraph& pattern_;
  const DiGraph& target_;
  const DirectedEmbeddingOptions& options_;
  const std::function<bool(const std::vector<VertexId>&)>& callback_;
  std::vector<uint32_t> order_;
  std::vector<VertexId> map_;
  std::unordered_set<VertexId> used_;
  size_t emitted_ = 0;
};

}  // namespace

void ForEachDirectedEmbedding(
    const SmallDigraph& pattern, const DiGraph& target,
    const DirectedEmbeddingOptions& options,
    const std::function<bool(const std::vector<VertexId>&)>& callback) {
  if (pattern.num_vertices() == 0 ||
      pattern.num_vertices() > target.num_vertices()) {
    return;
  }
  DirectedVf2 state(pattern, target, options, callback);
  state.Run();
}

std::vector<std::vector<VertexId>> FindDirectedEmbeddings(
    const SmallDigraph& pattern, const DiGraph& target,
    const DirectedEmbeddingOptions& options) {
  std::vector<std::vector<VertexId>> embeddings;
  ForEachDirectedEmbedding(pattern, target, options,
                           [&](const std::vector<VertexId>& e) {
                             embeddings.push_back(e);
                             return true;
                           });
  return embeddings;
}

std::vector<std::vector<VertexId>> FindDirectedOccurrences(
    const SmallDigraph& pattern, const DiGraph& target,
    size_t max_occurrences) {
  std::unordered_set<std::vector<VertexId>, VertexSetHash> seen;
  std::vector<std::vector<VertexId>> occurrences;
  DirectedEmbeddingOptions options;
  ForEachDirectedEmbedding(
      pattern, target, options, [&](const std::vector<VertexId>& e) {
        std::vector<VertexId> sorted = e;
        std::sort(sorted.begin(), sorted.end());
        if (seen.insert(sorted).second) {
          occurrences.push_back(std::move(sorted));
          if (max_occurrences != 0 && occurrences.size() >= max_occurrences) {
            return false;
          }
        }
        return true;
      });
  return occurrences;
}

size_t CountDirectedOccurrences(const SmallDigraph& pattern,
                                const DiGraph& target, size_t cap) {
  return FindDirectedOccurrences(pattern, target, cap).size();
}

}  // namespace lamo
