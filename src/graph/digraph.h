#ifndef LAMO_GRAPH_DIGRAPH_H_
#define LAMO_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace lamo {

/// An immutable simple directed graph in dual-CSR form (out- and
/// in-adjacency, both sorted). The substrate for the paper's future-work
/// direction of labeled *directed* network motifs — gene regulatory
/// networks are the canonical instance.
class DiGraph {
 public:
  DiGraph() = default;

  /// Number of vertices.
  size_t num_vertices() const {
    return out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  }

  /// Number of arcs.
  size_t num_arcs() const { return out_flat_.size(); }

  /// Sorted out-neighbors of `v` (targets of arcs v -> u).
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_flat_.data() + out_offsets_[v],
            out_flat_.data() + out_offsets_[v + 1]};
  }

  /// Sorted in-neighbors of `v` (sources of arcs u -> v).
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_flat_.data() + in_offsets_[v],
            in_flat_.data() + in_offsets_[v + 1]};
  }

  size_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// True iff the arc a -> b exists. O(log out-degree).
  bool HasArc(VertexId a, VertexId b) const;

  /// All arcs (source, target), lexicographic.
  std::vector<std::pair<VertexId, VertexId>> Arcs() const;

  /// The underlying undirected graph (arc direction dropped, antiparallel
  /// pairs merged). Used for weak-connectivity enumeration.
  Graph Underlying() const;

  /// "DiGraph(50 vertices, 120 arcs)".
  std::string ToString() const;

 private:
  friend class DiGraphBuilder;

  std::vector<size_t> out_offsets_, in_offsets_;
  std::vector<VertexId> out_flat_, in_flat_;
};

/// Accumulates arcs and produces a DiGraph. Self-loops are dropped and
/// duplicate arcs deduplicated; antiparallel pairs (a->b and b->a) are kept,
/// as in real regulatory networks.
class DiGraphBuilder {
 public:
  explicit DiGraphBuilder(size_t num_vertices)
      : num_vertices_(num_vertices) {}

  /// Adds the arc a -> b. InvalidArgument on out-of-range endpoints.
  Status AddArc(VertexId a, VertexId b);

  size_t num_vertices() const { return num_vertices_; }

  /// Finalizes into an immutable DiGraph (builder reusable afterwards).
  DiGraph Build() const;

 private:
  size_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> arcs_;
};

}  // namespace lamo

#endif  // LAMO_GRAPH_DIGRAPH_H_
