#ifndef LAMO_GRAPH_ALGORITHMS_H_
#define LAMO_GRAPH_ALGORITHMS_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace lamo {

/// Per-vertex connected-component ids (dense, 0-based, in order of discovery
/// from vertex 0 upward).
std::vector<uint32_t> ConnectedComponents(const Graph& g);

/// Number of connected components.
size_t CountComponents(const Graph& g);

/// Vertices of the largest connected component, ascending.
std::vector<VertexId> LargestComponent(const Graph& g);

/// BFS distances from `source` (kUnreachable for unreachable vertices).
inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);
std::vector<uint32_t> BfsDistances(const Graph& g, VertexId source);

/// Global clustering coefficient: 3 * #triangles / #connected-triples.
/// Returns 0 for graphs with no connected triple.
double GlobalClusteringCoefficient(const Graph& g);

/// Number of triangles in the graph.
size_t CountTriangles(const Graph& g);

/// Degree histogram: entry d is the number of vertices with degree d.
std::vector<size_t> DegreeHistogram(const Graph& g);

/// Mean degree (2m/n); 0 for the empty graph.
double MeanDegree(const Graph& g);

}  // namespace lamo

#endif  // LAMO_GRAPH_ALGORITHMS_H_
