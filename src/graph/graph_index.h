#ifndef LAMO_GRAPH_GRAPH_INDEX_H_
#define LAMO_GRAPH_GRAPH_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace lamo {

/// A precomputed, cache-friendly query index over an immutable Graph — the
/// build-once-query-forever layout the mining hot paths run on. Two parallel
/// representations are kept:
///
///  * a private CSR copy (uint32 offsets + sorted, deduplicated neighbor
///    arrays) so enumeration walks flat contiguous memory regardless of how
///    the source Graph stores its adjacency, and
///  * a dense bitset adjacency matrix (one n-bit row per vertex, packed into
///    64-bit words) built whenever n <= dense_vertex_limit. A row probe
///    replaces the O(log d) binary search of Graph::HasEdge with one shift
///    and mask, and whole-row word operations (union, intersection) power
///    the ESU exclusive-neighborhood computation.
///
/// The build is strictly serial and depends only on the Graph contents, so
/// the index bytes are identical for any --threads setting. At the default
/// cap (8192 vertices) the bitset tops out at 8 MiB; beyond it the index
/// degrades to CSR-only and queries fall back to sorted-neighbor merges.
class GraphIndex {
 public:
  /// Default dense-adjacency cap: 8192 vertices = 8 MiB of bits, which
  /// comfortably covers PPI-scale interactomes (the paper's BIND network has
  /// 4141 proteins).
  static constexpr size_t kDenseVertexLimit = 8192;

  /// Maximum subgraph size whose upper-triangle adjacency fits the 64-bit
  /// key produced by InducedBits (11 * 10 / 2 = 55 bits).
  static constexpr size_t kMaxInducedBitsVertices = 11;

  /// An empty index (0 vertices).
  GraphIndex() = default;

  /// Builds the index for `g`. The dense bitset is materialized only when
  /// g.num_vertices() <= dense_vertex_limit (tests pass 0 to force the
  /// sparse fallback paths).
  explicit GraphIndex(const Graph& g,
                      size_t dense_vertex_limit = kDenseVertexLimit);

  size_t num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return neighbors_.size() / 2; }

  /// True when the dense bitset adjacency was built.
  bool dense() const { return words_per_row_ != 0; }

  /// 64-bit words per dense row (0 when the index is CSR-only).
  size_t words_per_row() const { return words_per_row_; }

  /// Dense adjacency row of `v`: bit u set iff {v, u} is an edge. Only
  /// valid when dense().
  const uint64_t* Row(VertexId v) const {
    return bits_.data() + static_cast<size_t>(v) * words_per_row_;
  }

  /// Sorted, deduplicated neighbors of `v`.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// CSR offset array (size n + 1); exposed for round-trip property tests.
  std::span<const uint32_t> Offsets() const { return offsets_; }

  /// Flat neighbor array (size 2m); exposed for round-trip property tests.
  std::span<const VertexId> NeighborArray() const { return neighbors_; }

  /// Raw dense bitset words (empty when CSR-only); exposed for the
  /// byte-stability property test.
  std::span<const uint64_t> DenseBits() const { return bits_; }

  /// Edge probe: one bit test when dense, binary search on the smaller
  /// neighbor list otherwise.
  bool HasEdge(VertexId a, VertexId b) const;

  /// Packs the upper-triangle adjacency of the subgraph induced by
  /// verts[0..k) into a 64-bit key: pair (i, j), i < j, in lexicographic
  /// order, lowest bit first. Requires k <= kMaxInducedBitsVertices and
  /// distinct in-range vertices. The key depends only on the induced
  /// adjacency pattern, so it is shareable across graphs of the same order
  /// (SharedCanonCache keys on it).
  uint64_t InducedBits(const VertexId* verts, size_t k) const;

  /// Common neighbors of `a` and `b` in ascending order, appended to *out
  /// (cleared first). Word-at-a-time row intersection when dense, sorted
  /// merge otherwise. Returns the count.
  size_t CommonNeighbors(VertexId a, VertexId b,
                         std::vector<VertexId>* out) const;

  /// Sorted-list intersection (ascending, deduplicated inputs), appended to
  /// *out (cleared first). Returns the count. Exposed so property tests can
  /// pin it against std::set_intersection.
  static size_t IntersectSorted(std::span<const VertexId> a,
                                std::span<const VertexId> b,
                                std::vector<VertexId>* out);

  /// Structural self-check used by the fuzzing harness: offsets monotone
  /// and consistent with the neighbor array, every neighbor list strictly
  /// increasing (sorted + deduplicated), in range, self-loop-free and
  /// symmetric, and — when dense — the bitset in exact agreement with the
  /// CSR. Returns the first violation as a non-OK Status.
  Status Validate() const;

 private:
  size_t num_vertices_ = 0;
  std::vector<uint32_t> offsets_;    // size n+1
  std::vector<VertexId> neighbors_;  // size 2m, sorted per vertex
  size_t words_per_row_ = 0;         // 0 = CSR-only
  std::vector<uint64_t> bits_;       // n * words_per_row_ when dense
};

}  // namespace lamo

#endif  // LAMO_GRAPH_GRAPH_INDEX_H_
