#include "graph/small_graph.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "util/logging.h"

namespace lamo {

SmallGraph::SmallGraph(size_t n) : n_(n) {
  LAMO_CHECK_LE(n, kMaxVertices);
  std::memset(rows_, 0, sizeof(rows_));
}

StatusOr<SmallGraph> SmallGraph::FromEdges(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  if (n > kMaxVertices) {
    return Status::InvalidArgument("SmallGraph supports at most 64 vertices");
  }
  SmallGraph g(n);
  for (const auto& [a, b] : edges) {
    if (a >= n || b >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (a == b) {
      return Status::InvalidArgument("self-loop not allowed");
    }
    g.AddEdge(a, b);
  }
  return g;
}

SmallGraph SmallGraph::InducedSubgraph(const Graph& g,
                                       const std::vector<VertexId>& vertices) {
  LAMO_CHECK_LE(vertices.size(), kMaxVertices);
  SmallGraph sub(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = i + 1; j < vertices.size(); ++j) {
      LAMO_CHECK_NE(vertices[i], vertices[j]);
      if (g.HasEdge(vertices[i], vertices[j])) {
        sub.AddEdge(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      }
    }
  }
  return sub;
}

size_t SmallGraph::num_edges() const {
  size_t total = 0;
  for (size_t v = 0; v < n_; ++v) total += Degree(static_cast<uint32_t>(v));
  return total / 2;
}

void SmallGraph::AddEdge(uint32_t a, uint32_t b) {
  assert(a < n_ && b < n_);
  if (a == b) return;
  rows_[a] |= 1ULL << b;
  rows_[b] |= 1ULL << a;
}

void SmallGraph::RemoveEdge(uint32_t a, uint32_t b) {
  assert(a < n_ && b < n_);
  rows_[a] &= ~(1ULL << b);
  rows_[b] &= ~(1ULL << a);
}

size_t SmallGraph::Degree(uint32_t v) const {
  assert(v < n_);
  return static_cast<size_t>(std::popcount(rows_[v]));
}

std::vector<std::pair<uint32_t, uint32_t>> SmallGraph::Edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t v = 0; v < n_; ++v) {
    uint64_t higher = rows_[v] >> (v + 1) << (v + 1);
    while (higher != 0) {
      uint32_t u = static_cast<uint32_t>(std::countr_zero(higher));
      edges.emplace_back(v, u);
      higher &= higher - 1;
    }
  }
  return edges;
}

std::vector<uint32_t> SmallGraph::Neighbors(uint32_t v) const {
  std::vector<uint32_t> nbrs;
  uint64_t mask = rows_[v];
  while (mask != 0) {
    nbrs.push_back(static_cast<uint32_t>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
  return nbrs;
}

bool SmallGraph::IsConnected() const {
  if (n_ == 0) return true;
  uint64_t visited = 1ULL;
  uint64_t frontier = 1ULL;
  while (frontier != 0) {
    uint64_t next = 0;
    uint64_t f = frontier;
    while (f != 0) {
      uint32_t v = static_cast<uint32_t>(std::countr_zero(f));
      next |= rows_[v];
      f &= f - 1;
    }
    frontier = next & ~visited;
    visited |= next;
  }
  const uint64_t all =
      n_ == 64 ? ~0ULL : ((1ULL << n_) - 1);
  return (visited & all) == all;
}

SmallGraph SmallGraph::Permuted(const std::vector<uint32_t>& perm) const {
  LAMO_CHECK_EQ(perm.size(), n_);
  SmallGraph out(n_);
  for (uint32_t i = 0; i < n_; ++i) {
    for (uint32_t j = i + 1; j < n_; ++j) {
      if (HasEdge(perm[i], perm[j])) out.AddEdge(i, j);
    }
  }
  return out;
}

std::vector<uint8_t> SmallGraph::AdjacencyCode() const {
  std::vector<uint8_t> code;
  code.reserve(n_ * (n_ - 1) / 16 + 2);
  code.push_back(static_cast<uint8_t>(n_));
  uint8_t current = 0;
  int bits = 0;
  for (uint32_t i = 0; i < n_; ++i) {
    for (uint32_t j = i + 1; j < n_; ++j) {
      current = static_cast<uint8_t>((current << 1) | (HasEdge(i, j) ? 1 : 0));
      if (++bits == 8) {
        code.push_back(current);
        current = 0;
        bits = 0;
      }
    }
  }
  if (bits > 0) {
    code.push_back(static_cast<uint8_t>(current << (8 - bits)));
  }
  return code;
}

std::string SmallGraph::ToString() const {
  std::string out = "SmallGraph(n=" + std::to_string(n_) + ", edges={";
  bool first = true;
  for (const auto& [a, b] : Edges()) {
    if (!first) out += ", ";
    first = false;
    out += "{" + std::to_string(a) + "," + std::to_string(b) + "}";
  }
  out += "})";
  return out;
}

}  // namespace lamo
