#include "graph/canonical.h"

#include <algorithm>

#include "graph/refinement.h"
#include "util/logging.h"

namespace lamo {
namespace {

// Ordered partition represented by per-vertex cell index (cells ordered by
// index) plus the derived cells.
struct SearchState {
  const SmallGraph* g;
  std::vector<uint8_t> best_code;            // current minimum
  std::vector<uint32_t> best_labeling;       // canonical pos -> original
  bool have_best = false;
};

// Returns cell mask (bitset of members) for each cell.
uint64_t CellMask(const std::vector<uint32_t>& cell) {
  uint64_t mask = 0;
  for (uint32_t v : cell) mask |= 1ULL << v;
  return mask;
}

// True if all vertices of `cell` are pairwise interchangeable "twins":
// identical neighborhoods outside the cell, and the cell induces a complete
// or empty subgraph. Any within-cell ordering then yields the same adjacency
// code, so the search may order the cell arbitrarily without branching.
bool IsTwinCell(const SmallGraph& g, const std::vector<uint32_t>& cell) {
  if (cell.size() < 2) return true;
  const uint64_t mask = CellMask(cell);
  const uint64_t outside0 = g.NeighborMask(cell[0]) & ~mask;
  const uint64_t inside0 = g.NeighborMask(cell[0]) & mask;
  const bool complete = inside0 == (mask & ~(1ULL << cell[0]));
  const bool empty = inside0 == 0;
  if (!complete && !empty) return false;
  for (size_t i = 1; i < cell.size(); ++i) {
    const uint64_t row = g.NeighborMask(cell[i]);
    if ((row & ~mask) != outside0) return false;
    const uint64_t inside = row & mask;
    if (complete && inside != (mask & ~(1ULL << cell[i]))) return false;
    if (empty && inside != 0) return false;
  }
  return true;
}

// Recursive canonical search over ordered partitions encoded as colors.
void Search(SearchState& state, std::vector<uint32_t> colors) {
  const SmallGraph& g = *state.g;
  const size_t n = g.num_vertices();

  // Split twin cells greedily (ascending vertex order) until none remain or
  // we must branch.
  while (true) {
    auto cells = ColorCells(colors);
    // Find first non-singleton cell.
    int target = -1;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].size() > 1) {
        target = static_cast<int>(c);
        break;
      }
    }
    if (target < 0) {
      // Discrete partition: colors are a bijection onto 0..n-1.
      std::vector<uint32_t> labeling(n);
      for (uint32_t v = 0; v < n; ++v) labeling[colors[v]] = v;
      SmallGraph candidate = g.Permuted(labeling);
      std::vector<uint8_t> code = candidate.AdjacencyCode();
      if (!state.have_best || code < state.best_code) {
        state.best_code = std::move(code);
        state.best_labeling = std::move(labeling);
        state.have_best = true;
      }
      return;
    }

    const std::vector<uint32_t>& cell = cells[target];
    if (IsTwinCell(g, cell)) {
      // Order the twins ascending, then renumber colors densely and continue
      // (no refinement needed: twins have identical signatures forever).
      std::vector<uint32_t> updated(n);
      for (uint32_t v = 0; v < n; ++v) {
        uint32_t base = 0;
        for (size_t c = 0; c < static_cast<size_t>(colors[v]); ++c) {
          base += static_cast<uint32_t>(cells[c].size());
        }
        if (colors[v] == static_cast<uint32_t>(target)) {
          // Position within the (sorted) twin cell.
          uint32_t rank = 0;
          while (cell[rank] != v) ++rank;
          updated[v] = base + rank;
        } else {
          updated[v] = base;  // cell start; cells stay grouped
        }
      }
      // Re-normalize to dense colors preserving order: vertices in the same
      // untouched cell share `base`, twins got distinct values.
      colors = RefineColors(g, std::move(updated));
      continue;
    }

    // Branch: individualize each vertex of the target cell in turn.
    for (uint32_t v : cell) {
      std::vector<uint32_t> branched(n);
      for (uint32_t u = 0; u < n; ++u) branched[u] = colors[u] * 2 + 1;
      branched[v] = colors[v] * 2;  // v precedes the rest of its cell
      Search(state, RefineColors(g, std::move(branched)));
    }
    return;
  }
}

}  // namespace

CanonicalResult Canonicalize(const SmallGraph& g) {
  CanonicalResult result;
  if (g.num_vertices() == 0) {
    result.graph = g;
    result.code = g.AdjacencyCode();
    return result;
  }
  SearchState state;
  state.g = &g;
  Search(state, RefineColors(g));
  LAMO_CHECK(state.have_best);
  result.canonical_to_original = state.best_labeling;
  result.graph = g.Permuted(state.best_labeling);
  result.code = std::move(state.best_code);
  return result;
}

std::vector<uint8_t> CanonicalCode(const SmallGraph& g) {
  return Canonicalize(g).code;
}

bool AreIsomorphic(const SmallGraph& a, const SmallGraph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  return CanonicalCode(a) == CanonicalCode(b);
}

}  // namespace lamo
