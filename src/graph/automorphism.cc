#include "graph/automorphism.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "graph/refinement.h"
#include "util/logging.h"

namespace lamo {
namespace {

// Disjoint-set over vertex ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

// Backtracking search for a color-preserving automorphism with optional
// initial constraint map[from] = to. Vertices are assigned in descending
// degree order (ties by id) to fail fast.
class AutomorphismSearch {
 public:
  AutomorphismSearch(const SmallGraph& g, const std::vector<uint32_t>& colors)
      : g_(g), colors_(colors), n_(g.num_vertices()) {
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(),
                     [&](uint32_t a, uint32_t b) {
                       return g_.Degree(a) > g_.Degree(b);
                     });
    map_.assign(n_, kUnset);
    used_ = 0;
  }

  std::optional<std::vector<uint32_t>> Find(uint32_t from, uint32_t to) {
    if (colors_[from] != colors_[to]) return std::nullopt;
    map_[from] = to;
    used_ |= 1ULL << to;
    mapped_mask_ = 1ULL << from;
    if (Extend(0)) return map_;
    return std::nullopt;
  }

 private:
  static constexpr uint32_t kUnset = static_cast<uint32_t>(-1);

  bool Extend(size_t pos) {
    while (pos < n_ && map_[order_[pos]] != kUnset) ++pos;
    if (pos == n_) return true;
    const uint32_t u = order_[pos];
    for (uint32_t w = 0; w < n_; ++w) {
      if ((used_ >> w) & 1ULL) continue;
      if (colors_[w] != colors_[u]) continue;
      if (!Consistent(u, w)) continue;
      map_[u] = w;
      used_ |= 1ULL << w;
      mapped_mask_ |= 1ULL << u;
      if (Extend(pos + 1)) return true;
      map_[u] = kUnset;
      used_ &= ~(1ULL << w);
      mapped_mask_ &= ~(1ULL << u);
    }
    return false;
  }

  // Adjacency of u to every already-mapped vertex must equal adjacency of w
  // to its image.
  bool Consistent(uint32_t u, uint32_t w) const {
    uint64_t mapped_neighbors = g_.NeighborMask(u) & mapped_mask_;
    uint64_t image_of_neighbors = 0;
    while (mapped_neighbors != 0) {
      const uint32_t x =
          static_cast<uint32_t>(std::countr_zero(mapped_neighbors));
      image_of_neighbors |= 1ULL << map_[x];
      mapped_neighbors &= mapped_neighbors - 1;
    }
    uint64_t mapped_images = 0;
    uint64_t m = mapped_mask_;
    while (m != 0) {
      const uint32_t x = static_cast<uint32_t>(std::countr_zero(m));
      mapped_images |= 1ULL << map_[x];
      m &= m - 1;
    }
    return (g_.NeighborMask(w) & mapped_images) == image_of_neighbors;
  }

  const SmallGraph& g_;
  const std::vector<uint32_t>& colors_;
  size_t n_;
  std::vector<uint32_t> order_;
  std::vector<uint32_t> map_;
  uint64_t used_ = 0;
  uint64_t mapped_mask_ = 0;
};

// |Aut| via orbit-stabilizer: |G| = |orbit(u)| * |stab(u)|, where stab(u) is
// the automorphism group with u individualized (given its own color).
uint64_t GroupSizeRec(const SmallGraph& g, std::vector<uint32_t> colors) {
  colors = RefineColors(g, std::move(colors));
  auto cells = ColorCells(colors);
  const std::vector<uint32_t>* target = nullptr;
  for (const auto& cell : cells) {
    if (cell.size() > 1) {
      target = &cell;
      break;
    }
  }
  if (target == nullptr) return 1;  // discrete: only the identity remains

  const uint32_t u = (*target)[0];
  uint64_t orbit_size = 1;
  for (size_t i = 1; i < target->size(); ++i) {
    AutomorphismSearch search(g, colors);
    if (search.Find(u, (*target)[i]).has_value()) ++orbit_size;
  }
  std::vector<uint32_t> individualized(colors.size());
  for (uint32_t v = 0; v < colors.size(); ++v) {
    individualized[v] = colors[v] * 2 + 1;
  }
  individualized[u] = colors[u] * 2;
  return orbit_size * GroupSizeRec(g, std::move(individualized));
}

}  // namespace

std::optional<std::vector<uint32_t>> FindAutomorphismMapping(
    const SmallGraph& g, uint32_t from, uint32_t to) {
  LAMO_CHECK_LT(from, g.num_vertices());
  LAMO_CHECK_LT(to, g.num_vertices());
  const std::vector<uint32_t> colors = RefineColors(g);
  AutomorphismSearch search(g, colors);
  return search.Find(from, to);
}

std::vector<std::vector<uint32_t>> VertexOrbits(const SmallGraph& g) {
  const size_t n = g.num_vertices();
  UnionFind uf(n);
  const std::vector<uint32_t> colors = RefineColors(g);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (colors[u] != colors[v]) continue;  // different WL classes: never
      if (uf.Find(u) == uf.Find(v)) continue;
      AutomorphismSearch search(g, colors);
      auto mapping = search.Find(u, v);
      if (!mapping.has_value()) continue;
      for (uint32_t x = 0; x < n; ++x) uf.Union(x, (*mapping)[x]);
    }
  }
  std::vector<std::vector<uint32_t>> orbits;
  std::vector<int> orbit_of_root(n, -1);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t root = uf.Find(v);
    if (orbit_of_root[root] < 0) {
      orbit_of_root[root] = static_cast<int>(orbits.size());
      orbits.emplace_back();
    }
    orbits[orbit_of_root[root]].push_back(v);
  }
  return orbits;  // each orbit ascending; orbits ordered by min element
}

std::vector<std::vector<uint32_t>> TwinClasses(const SmallGraph& g) {
  const size_t n = g.num_vertices();
  UnionFind uf(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      // (u v) is an automorphism iff N(u)\{v} == N(v)\{u}.
      const uint64_t nu = g.NeighborMask(u) & ~(1ULL << v);
      const uint64_t nv = g.NeighborMask(v) & ~(1ULL << u);
      if (nu == nv) uf.Union(u, v);
    }
  }
  std::vector<std::vector<uint32_t>> classes;
  std::vector<int> class_of_root(n, -1);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t root = uf.Find(v);
    if (class_of_root[root] < 0) {
      class_of_root[root] = static_cast<int>(classes.size());
      classes.emplace_back();
    }
    classes[class_of_root[root]].push_back(v);
  }
  return classes;
}

std::vector<std::vector<uint32_t>> SymmetricVertexSets(const SmallGraph& g) {
  std::vector<std::vector<uint32_t>> sets;
  for (auto& cls : TwinClasses(g)) {
    if (cls.size() >= 2) sets.push_back(std::move(cls));
  }
  return sets;
}

uint64_t AutomorphismGroupSize(const SmallGraph& g) {
  if (g.num_vertices() == 0) return 1;
  return GroupSizeRec(g, std::vector<uint32_t>(g.num_vertices(), 0));
}

}  // namespace lamo
