#ifndef LAMO_GRAPH_SMALL_DIGRAPH_H_
#define LAMO_GRAPH_SMALL_DIGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/small_graph.h"

namespace lamo {

/// A simple directed graph with at most 64 vertices, one out-adjacency
/// bitmask per vertex. The motif-sized counterpart of DiGraph.
class SmallDigraph {
 public:
  static constexpr size_t kMaxVertices = 64;

  explicit SmallDigraph(size_t n = 0);

  /// Builds from explicit arcs; rejects self-loops and out-of-range ids.
  static StatusOr<SmallDigraph> FromArcs(
      size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& arcs);

  /// Arc-induced subgraph of `g` on `vertices` (position i of the result is
  /// vertices[i]).
  static SmallDigraph InducedSubgraph(const DiGraph& g,
                                      const std::vector<VertexId>& vertices);

  size_t num_vertices() const { return n_; }
  size_t num_arcs() const;

  void AddArc(uint32_t a, uint32_t b);
  void RemoveArc(uint32_t a, uint32_t b);
  bool HasArc(uint32_t a, uint32_t b) const { return (out_[a] >> b) & 1ULL; }

  /// Out-neighbor bitmask of `v`.
  uint64_t OutMask(uint32_t v) const { return out_[v]; }
  /// In-neighbor bitmask of `v` (computed by scan).
  uint64_t InMask(uint32_t v) const;

  size_t OutDegree(uint32_t v) const;
  size_t InDegree(uint32_t v) const;

  /// All arcs (source, target), lexicographic.
  std::vector<std::pair<uint32_t, uint32_t>> Arcs() const;

  /// True iff the underlying undirected graph is connected.
  bool IsWeaklyConnected() const;

  /// The underlying undirected SmallGraph.
  SmallGraph Underlying() const;

  /// Relabels vertices: vertex i of the result is vertex perm[i] of *this.
  SmallDigraph Permuted(const std::vector<uint32_t>& perm) const;

  /// Packs the full off-diagonal adjacency matrix row-major into bytes:
  /// equal codes <=> identical digraphs.
  std::vector<uint8_t> AdjacencyCode() const;

  friend bool operator==(const SmallDigraph& a, const SmallDigraph& b) {
    if (a.n_ != b.n_) return false;
    for (size_t i = 0; i < a.n_; ++i) {
      if (a.out_[i] != b.out_[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  size_t n_;
  uint64_t out_[kMaxVertices];
};

/// Canonical form of a directed graph: refinement on (out, in) color
/// multisets plus branch-and-min individualization (the directed analogue of
/// Canonicalize()).
struct DirectedCanonicalResult {
  SmallDigraph graph;
  std::vector<uint32_t> canonical_to_original;
  std::vector<uint8_t> code;
};
DirectedCanonicalResult CanonicalizeDirected(const SmallDigraph& g);

/// Shorthand for CanonicalizeDirected(g).code.
std::vector<uint8_t> DirectedCanonicalCode(const SmallDigraph& g);

/// True iff `a` and `b` are isomorphic as digraphs.
bool AreIsomorphicDirected(const SmallDigraph& a, const SmallDigraph& b);

/// Directed twin classes: u ~ v iff the transposition (u v) is a digraph
/// automorphism, i.e. out(u)\{v} = out(v)\{u}, in(u)\{v} = in(v)\{u} and the
/// arcs between u and v are mutually symmetric. The directed counterpart of
/// the symmetric vertex sets used by Eq. 3.
std::vector<std::vector<uint32_t>> DirectedTwinClasses(const SmallDigraph& g);

}  // namespace lamo

#endif  // LAMO_GRAPH_SMALL_DIGRAPH_H_
