#include "graph/generators.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace lamo {

Graph ErdosRenyi(size_t n, size_t m, Rng& rng) {
  LAMO_CHECK_GE(n, 2u);
  const size_t max_edges = n * (n - 1) / 2;
  LAMO_CHECK_LE(m, max_edges);
  GraphBuilder builder(n);
  std::set<std::pair<VertexId, VertexId>> chosen;
  while (chosen.size() < m) {
    VertexId a = static_cast<VertexId>(rng.Uniform(n));
    VertexId b = static_cast<VertexId>(rng.Uniform(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (chosen.emplace(a, b).second) {
      LAMO_CHECK(builder.AddEdge(a, b).ok());
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(size_t n, size_t edges_per_vertex, Rng& rng) {
  LAMO_CHECK_GE(edges_per_vertex, 1u);
  LAMO_CHECK_GT(n, edges_per_vertex);
  GraphBuilder builder(n);
  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<VertexId> endpoints;
  const size_t seed_size = edges_per_vertex + 1;
  for (VertexId a = 0; a < seed_size; ++a) {
    for (VertexId b = a + 1; b < seed_size; ++b) {
      LAMO_CHECK(builder.AddEdge(a, b).ok());
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  for (VertexId v = static_cast<VertexId>(seed_size); v < n; ++v) {
    std::set<VertexId> targets;
    while (targets.size() < edges_per_vertex) {
      targets.insert(rng.Choice(endpoints));
    }
    for (VertexId t : targets) {
      LAMO_CHECK(builder.AddEdge(v, t).ok());
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

Graph DuplicationDivergence(size_t n, double retention, double parent_link,
                            Rng& rng) {
  LAMO_CHECK_GE(n, 3u);
  // Adjacency sets during growth; converted to Graph at the end.
  std::vector<std::set<VertexId>> adj(n);
  auto add = [&](VertexId a, VertexId b) {
    if (a == b) return;
    adj[a].insert(b);
    adj[b].insert(a);
  };
  // Seed triangle.
  add(0, 1);
  add(1, 2);
  add(0, 2);
  for (VertexId v = 3; v < n; ++v) {
    const VertexId parent = static_cast<VertexId>(rng.Uniform(v));
    bool linked = false;
    // Copy first: `adj[parent]` may grow as we insert edges of v.
    const std::vector<VertexId> parent_neighbors(adj[parent].begin(),
                                                 adj[parent].end());
    for (VertexId u : parent_neighbors) {
      if (rng.Bernoulli(retention)) {
        add(v, u);
        linked = true;
      }
    }
    if (rng.Bernoulli(parent_link)) {
      add(v, parent);
      linked = true;
    }
    if (!linked) {
      add(v, static_cast<VertexId>(rng.Uniform(v)));
    }
  }
  GraphBuilder builder(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : adj[v]) {
      if (v < u) LAMO_CHECK(builder.AddEdge(v, u).ok());
    }
  }
  return builder.Build();
}

Graph DegreePreservingRewire(const Graph& g, double swaps_per_edge, Rng& rng) {
  auto edges = g.Edges();
  const size_t m = edges.size();
  if (m < 2) return g;

  // Mutable edge membership for O(1)-ish conflict checks.
  std::set<std::pair<VertexId, VertexId>> edge_set(edges.begin(), edges.end());
  auto has = [&](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return edge_set.count({a, b}) != 0;
  };

  const size_t target_swaps =
      static_cast<size_t>(swaps_per_edge * static_cast<double>(m));
  size_t done = 0;
  size_t attempts = 0;
  const size_t max_attempts = target_swaps * 50 + 100;
  while (done < target_swaps && attempts < max_attempts) {
    ++attempts;
    const size_t i = static_cast<size_t>(rng.Uniform(m));
    const size_t j = static_cast<size_t>(rng.Uniform(m));
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    // Randomize orientation of the second edge.
    if (rng.Bernoulli(0.5)) std::swap(c, d);
    // Proposed: (a,d) and (c,b).
    if (a == d || c == b) continue;
    if (has(a, d) || has(c, b)) continue;
    auto norm = [](VertexId x, VertexId y) {
      return x < y ? std::make_pair(x, y) : std::make_pair(y, x);
    };
    edge_set.erase(norm(a, b));
    edge_set.erase(norm(c, d));
    edge_set.insert(norm(a, d));
    edge_set.insert(norm(c, b));
    edges[i] = norm(a, d);
    edges[j] = norm(c, b);
    ++done;
  }

  GraphBuilder builder(g.num_vertices());
  for (const auto& [a, b] : edge_set) {
    LAMO_CHECK(builder.AddEdge(a, b).ok());
  }
  return builder.Build();
}

}  // namespace lamo
