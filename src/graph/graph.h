#ifndef LAMO_GRAPH_GRAPH_H_
#define LAMO_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace lamo {

/// Vertex identifier within a Graph. Vertices are dense 0..n-1.
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An immutable, simple, undirected graph in CSR (compressed sparse row)
/// form with sorted neighbor lists. This is the representation used for the
/// interactome: the PPI networks in the paper have thousands of vertices and
/// edges, and motif mining spends nearly all of its time in adjacency probes,
/// so neighbors are kept sorted for O(log d) `HasEdge` and cache-friendly
/// iteration.
///
/// Build one via GraphBuilder, which removes self-links and redundant links
/// exactly as the paper's preprocessing does.
class Graph {
 public:
  /// Creates an empty graph (0 vertices).
  Graph() = default;

  /// Number of vertices.
  size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges.
  size_t num_edges() const { return neighbors_.size() / 2; }

  /// Sorted neighbors of `v`.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// Degree of `v`.
  size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// True iff the undirected edge {a, b} exists. O(log min-degree).
  bool HasEdge(VertexId a, VertexId b) const;

  /// All undirected edges, each reported once with first < second, in
  /// lexicographic order.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// Degree sequence indexed by vertex.
  std::vector<size_t> Degrees() const;

  /// Maximum degree over all vertices (0 for the empty graph).
  size_t MaxDegree() const;

  /// Human-readable one-line summary, e.g. "Graph(4141 vertices, 7095 edges)".
  std::string ToString() const;

 private:
  friend class GraphBuilder;
  // Snapshot serialization (serve/snapshot.cc) restores the CSR arrays
  // directly so loading skips the builder's sort/dedup pass.
  friend struct SnapshotAccess;

  std::vector<size_t> offsets_;      // size n+1
  std::vector<VertexId> neighbors_;  // size 2m, sorted per vertex
};

/// Accumulates edges and produces a Graph. Duplicate edges and self-links are
/// dropped (mirroring the paper's preprocessing of the BIND data, which
/// removed "redundant links and self-links").
class GraphBuilder {
 public:
  /// Creates a builder for a graph over `num_vertices` vertices.
  explicit GraphBuilder(size_t num_vertices) : num_vertices_(num_vertices) {}

  /// Adds the undirected edge {a, b}. Self-links are silently ignored;
  /// duplicates are deduplicated at Build time. Returns InvalidArgument if
  /// either endpoint is out of range.
  Status AddEdge(VertexId a, VertexId b);

  /// Number of vertices the resulting graph will have.
  size_t num_vertices() const { return num_vertices_; }

  /// Finalizes into an immutable Graph. The builder may be reused afterwards
  /// (it retains its edges).
  Graph Build() const;

 private:
  size_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace lamo

#endif  // LAMO_GRAPH_GRAPH_H_
