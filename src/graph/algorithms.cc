#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

namespace lamo {

std::vector<uint32_t> ConnectedComponents(const Graph& g) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> component(n, kUnreachable);
  uint32_t next_id = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (component[start] != kUnreachable) continue;
    component[start] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.Neighbors(v)) {
        if (component[u] == kUnreachable) {
          component[u] = next_id;
          stack.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return component;
}

size_t CountComponents(const Graph& g) {
  const auto component = ConnectedComponents(g);
  uint32_t max_id = 0;
  for (uint32_t c : component) max_id = std::max(max_id, c);
  return component.empty() ? 0 : max_id + 1;
}

std::vector<VertexId> LargestComponent(const Graph& g) {
  const auto component = ConnectedComponents(g);
  if (component.empty()) return {};
  uint32_t max_id = *std::max_element(component.begin(), component.end());
  std::vector<size_t> sizes(max_id + 1, 0);
  for (uint32_t c : component) ++sizes[c];
  const uint32_t largest = static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < component.size(); ++v) {
    if (component[v] == largest) vertices.push_back(v);
  }
  return vertices;
}

std::vector<uint32_t> BfsDistances(const Graph& g, VertexId source) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop();
    for (VertexId u : g.Neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  return dist;
}

size_t CountTriangles(const Graph& g) {
  // For each edge (v,u) with v < u, intersect sorted neighbor lists above u.
  size_t triangles = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nv = g.Neighbors(v);
    for (VertexId u : nv) {
      if (u <= v) continue;
      const auto nu = g.Neighbors(u);
      // Count common neighbors w > u to count each triangle once.
      auto it_v = std::lower_bound(nv.begin(), nv.end(), u + 1);
      auto it_u = std::lower_bound(nu.begin(), nu.end(), u + 1);
      while (it_v != nv.end() && it_u != nu.end()) {
        if (*it_v < *it_u) {
          ++it_v;
        } else if (*it_u < *it_v) {
          ++it_u;
        } else {
          ++triangles;
          ++it_v;
          ++it_u;
        }
      }
    }
  }
  return triangles;
}

double GlobalClusteringCoefficient(const Graph& g) {
  size_t triples = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const size_t d = g.Degree(v);
    triples += d * (d - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(triples);
}

std::vector<size_t> DegreeHistogram(const Graph& g) {
  std::vector<size_t> hist(g.MaxDegree() + 1, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) ++hist[g.Degree(v)];
  return hist;
}

double MeanDegree(const Graph& g) {
  if (g.num_vertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_vertices());
}

}  // namespace lamo
