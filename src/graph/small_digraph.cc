#include "graph/small_digraph.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <functional>
#include <map>
#include <numeric>

#include "util/logging.h"

namespace lamo {

SmallDigraph::SmallDigraph(size_t n) : n_(n) {
  LAMO_CHECK_LE(n, kMaxVertices);
  std::memset(out_, 0, sizeof(out_));
}

StatusOr<SmallDigraph> SmallDigraph::FromArcs(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& arcs) {
  if (n > kMaxVertices) {
    return Status::InvalidArgument("SmallDigraph supports at most 64 vertices");
  }
  SmallDigraph g(n);
  for (const auto& [a, b] : arcs) {
    if (a >= n || b >= n) {
      return Status::InvalidArgument("arc endpoint out of range");
    }
    if (a == b) return Status::InvalidArgument("self-loop not allowed");
    g.AddArc(a, b);
  }
  return g;
}

SmallDigraph SmallDigraph::InducedSubgraph(
    const DiGraph& g, const std::vector<VertexId>& vertices) {
  LAMO_CHECK_LE(vertices.size(), kMaxVertices);
  SmallDigraph sub(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (size_t j = 0; j < vertices.size(); ++j) {
      if (i == j) continue;
      if (g.HasArc(vertices[i], vertices[j])) {
        sub.AddArc(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      }
    }
  }
  return sub;
}

size_t SmallDigraph::num_arcs() const {
  size_t total = 0;
  for (size_t v = 0; v < n_; ++v) total += OutDegree(static_cast<uint32_t>(v));
  return total;
}

void SmallDigraph::AddArc(uint32_t a, uint32_t b) {
  if (a == b) return;
  out_[a] |= 1ULL << b;
}

void SmallDigraph::RemoveArc(uint32_t a, uint32_t b) {
  out_[a] &= ~(1ULL << b);
}

uint64_t SmallDigraph::InMask(uint32_t v) const {
  uint64_t mask = 0;
  for (uint32_t u = 0; u < n_; ++u) {
    if (HasArc(u, v)) mask |= 1ULL << u;
  }
  return mask;
}

size_t SmallDigraph::OutDegree(uint32_t v) const {
  return static_cast<size_t>(std::popcount(out_[v]));
}

size_t SmallDigraph::InDegree(uint32_t v) const {
  return static_cast<size_t>(std::popcount(InMask(v)));
}

std::vector<std::pair<uint32_t, uint32_t>> SmallDigraph::Arcs() const {
  std::vector<std::pair<uint32_t, uint32_t>> arcs;
  for (uint32_t v = 0; v < n_; ++v) {
    uint64_t mask = out_[v];
    while (mask != 0) {
      arcs.emplace_back(v, static_cast<uint32_t>(std::countr_zero(mask)));
      mask &= mask - 1;
    }
  }
  return arcs;
}

bool SmallDigraph::IsWeaklyConnected() const {
  return Underlying().IsConnected();
}

SmallGraph SmallDigraph::Underlying() const {
  SmallGraph g(n_);
  for (const auto& [a, b] : Arcs()) g.AddEdge(a, b);
  return g;
}

SmallDigraph SmallDigraph::Permuted(const std::vector<uint32_t>& perm) const {
  LAMO_CHECK_EQ(perm.size(), n_);
  SmallDigraph out(n_);
  for (uint32_t i = 0; i < n_; ++i) {
    for (uint32_t j = 0; j < n_; ++j) {
      if (i != j && HasArc(perm[i], perm[j])) out.AddArc(i, j);
    }
  }
  return out;
}

std::vector<uint8_t> SmallDigraph::AdjacencyCode() const {
  std::vector<uint8_t> code;
  code.push_back(static_cast<uint8_t>(n_));
  uint8_t current = 0;
  int bits = 0;
  for (uint32_t i = 0; i < n_; ++i) {
    for (uint32_t j = 0; j < n_; ++j) {
      if (i == j) continue;
      current = static_cast<uint8_t>((current << 1) | (HasArc(i, j) ? 1 : 0));
      if (++bits == 8) {
        code.push_back(current);
        current = 0;
        bits = 0;
      }
    }
  }
  if (bits > 0) code.push_back(static_cast<uint8_t>(current << (8 - bits)));
  return code;
}

std::string SmallDigraph::ToString() const {
  std::string out = "SmallDigraph(n=" + std::to_string(n_) + ", arcs={";
  bool first = true;
  for (const auto& [a, b] : Arcs()) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(a) + "->" + std::to_string(b);
  }
  out += "})";
  return out;
}

namespace {

// Directed color refinement: signature = (color, sorted out-neighbor
// colors, sorted in-neighbor colors).
std::vector<uint32_t> RefineDirected(const SmallDigraph& g,
                                     std::vector<uint32_t> colors) {
  const size_t n = g.num_vertices();
  if (colors.size() != n) colors.assign(n, 0);
  while (true) {
    std::vector<std::vector<uint32_t>> signatures(n);
    for (uint32_t v = 0; v < n; ++v) {
      auto& sig = signatures[v];
      sig.push_back(colors[v]);
      std::vector<uint32_t> outs, ins;
      uint64_t mask = g.OutMask(v);
      while (mask != 0) {
        outs.push_back(colors[std::countr_zero(mask)]);
        mask &= mask - 1;
      }
      mask = g.InMask(v);
      while (mask != 0) {
        ins.push_back(colors[std::countr_zero(mask)]);
        mask &= mask - 1;
      }
      std::sort(outs.begin(), outs.end());
      std::sort(ins.begin(), ins.end());
      sig.push_back(static_cast<uint32_t>(outs.size()));
      sig.insert(sig.end(), outs.begin(), outs.end());
      sig.push_back(static_cast<uint32_t>(-1));  // separator
      sig.insert(sig.end(), ins.begin(), ins.end());
    }
    std::map<std::vector<uint32_t>, uint32_t> ids;
    for (uint32_t v = 0; v < n; ++v) ids.emplace(signatures[v], 0);
    uint32_t next = 0;
    for (auto& [sig, id] : ids) id = next++;
    std::vector<uint32_t> refined(n);
    bool changed = false;
    for (uint32_t v = 0; v < n; ++v) {
      refined[v] = ids[signatures[v]];
      if (refined[v] != colors[v]) changed = true;
    }
    colors = std::move(refined);
    if (!changed) break;
  }
  return colors;
}

std::vector<std::vector<uint32_t>> Cells(const std::vector<uint32_t>& colors) {
  uint32_t max_color = 0;
  for (uint32_t c : colors) max_color = std::max(max_color, c);
  std::vector<std::vector<uint32_t>> cells(colors.empty() ? 0 : max_color + 1);
  for (uint32_t v = 0; v < colors.size(); ++v) cells[colors[v]].push_back(v);
  return cells;
}

// True iff u and v are directed twins (their transposition is an
// automorphism).
bool AreDirectedTwins(const SmallDigraph& g, uint32_t u, uint32_t v) {
  const uint64_t exclude = (1ULL << u) | (1ULL << v);
  if ((g.OutMask(u) & ~exclude) != (g.OutMask(v) & ~exclude)) return false;
  if ((g.InMask(u) & ~exclude) != (g.InMask(v) & ~exclude)) return false;
  // Arcs between u and v must be symmetric under the swap: u->v maps to
  // v->u, so both or neither must exist (in each direction independently,
  // the swap exchanges them).
  return g.HasArc(u, v) == g.HasArc(v, u);
}

bool IsDirectedTwinCell(const SmallDigraph& g,
                        const std::vector<uint32_t>& cell) {
  for (size_t i = 0; i < cell.size(); ++i) {
    for (size_t j = i + 1; j < cell.size(); ++j) {
      if (!AreDirectedTwins(g, cell[i], cell[j])) return false;
    }
  }
  return true;
}

struct DirectedSearchState {
  const SmallDigraph* g;
  std::vector<uint8_t> best_code;
  std::vector<uint32_t> best_labeling;
  bool have_best = false;
};

void SearchDirected(DirectedSearchState& state, std::vector<uint32_t> colors) {
  const SmallDigraph& g = *state.g;
  const size_t n = g.num_vertices();
  while (true) {
    auto cells = Cells(colors);
    int target = -1;
    for (size_t c = 0; c < cells.size(); ++c) {
      if (cells[c].size() > 1) {
        target = static_cast<int>(c);
        break;
      }
    }
    if (target < 0) {
      std::vector<uint32_t> labeling(n);
      for (uint32_t v = 0; v < n; ++v) labeling[colors[v]] = v;
      SmallDigraph candidate = g.Permuted(labeling);
      std::vector<uint8_t> code = candidate.AdjacencyCode();
      if (!state.have_best || code < state.best_code) {
        state.best_code = std::move(code);
        state.best_labeling = std::move(labeling);
        state.have_best = true;
      }
      return;
    }
    const std::vector<uint32_t>& cell = cells[target];
    if (IsDirectedTwinCell(g, cell)) {
      std::vector<uint32_t> updated(n);
      for (uint32_t v = 0; v < n; ++v) {
        uint32_t base = 0;
        for (size_t c = 0; c < static_cast<size_t>(colors[v]); ++c) {
          base += static_cast<uint32_t>(cells[c].size());
        }
        if (colors[v] == static_cast<uint32_t>(target)) {
          uint32_t rank = 0;
          while (cell[rank] != v) ++rank;
          updated[v] = base + rank;
        } else {
          updated[v] = base;
        }
      }
      colors = RefineDirected(g, std::move(updated));
      continue;
    }
    for (uint32_t v : cell) {
      std::vector<uint32_t> branched(n);
      for (uint32_t u = 0; u < n; ++u) branched[u] = colors[u] * 2 + 1;
      branched[v] = colors[v] * 2;
      SearchDirected(state, RefineDirected(g, std::move(branched)));
    }
    return;
  }
}

}  // namespace

DirectedCanonicalResult CanonicalizeDirected(const SmallDigraph& g) {
  DirectedCanonicalResult result;
  if (g.num_vertices() == 0) {
    result.graph = g;
    result.code = g.AdjacencyCode();
    return result;
  }
  DirectedSearchState state;
  state.g = &g;
  SearchDirected(state, RefineDirected(g, {}));
  LAMO_CHECK(state.have_best);
  result.canonical_to_original = state.best_labeling;
  result.graph = g.Permuted(state.best_labeling);
  result.code = std::move(state.best_code);
  return result;
}

std::vector<uint8_t> DirectedCanonicalCode(const SmallDigraph& g) {
  return CanonicalizeDirected(g).code;
}

bool AreIsomorphicDirected(const SmallDigraph& a, const SmallDigraph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_arcs() != b.num_arcs()) return false;
  return DirectedCanonicalCode(a) == DirectedCanonicalCode(b);
}

std::vector<std::vector<uint32_t>> DirectedTwinClasses(const SmallDigraph& g) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (AreDirectedTwins(g, u, v)) parent[find(u)] = find(v);
    }
  }
  std::vector<std::vector<uint32_t>> classes;
  std::vector<int> class_of_root(n, -1);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t root = find(v);
    if (class_of_root[root] < 0) {
      class_of_root[root] = static_cast<int>(classes.size());
      classes.emplace_back();
    }
    classes[class_of_root[root]].push_back(v);
  }
  return classes;
}

}  // namespace lamo
