#ifndef LAMO_GRAPH_MUTABLE_INDEX_H_
#define LAMO_GRAPH_MUTABLE_INDEX_H_

#include <vector>

#include "graph/graph.h"
#include "graph/graph_index.h"
#include "util/status.h"

namespace lamo {

/// A mutable adjacency overlay over the immutable Graph/GraphIndex pair — the
/// graph-layer half of the dynamic-interactome path. Graph and GraphIndex
/// stay build-once artifacts (every mining and serving hot path keeps its
/// flat CSR + dense-bitset layout); this class owns the edit state as sorted
/// per-vertex neighbor lists and re-materializes both immutable views lazily
/// after a batch of edits.
///
/// Edits are validated (range, self-link, duplicate add, missing delete) so
/// callers can rely on the overlay and the materialized views never
/// disagreeing. Materialization is deterministic: the same edit sequence
/// always yields byte-identical CSR arrays, which the serve-path update
/// engine depends on for its online/offline byte-identity contract.
///
/// Cost model: an edit is O(degree) (one sorted insert/erase); Materialize is
/// O(n + m log m) via GraphBuilder. At PPI scale (thousands of vertices, tens
/// of thousands of edges) a full re-materialization is microseconds — noise
/// next to the subgraph re-enumeration an update triggers — so no
/// incremental CSR surgery is attempted.
class MutableGraphIndex {
 public:
  /// Copies the adjacency of `g`. `dense_vertex_limit` is forwarded to every
  /// GraphIndex this overlay materializes (tests pass 0 to force the sparse
  /// index paths).
  explicit MutableGraphIndex(
      const Graph& g, size_t dense_vertex_limit = GraphIndex::kDenseVertexLimit);

  size_t num_vertices() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// True iff the undirected edge {u, v} exists in the *current* (edited)
  /// adjacency. O(log degree).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Adds the undirected edge {u, v}. InvalidArgument when an endpoint is
  /// out of range, u == v, or the edge already exists.
  Status AddEdge(VertexId u, VertexId v);

  /// Removes the undirected edge {u, v}. InvalidArgument when an endpoint is
  /// out of range, u == v, or the edge does not exist.
  Status RemoveEdge(VertexId u, VertexId v);

  /// The current adjacency as an immutable Graph, re-materialized lazily
  /// after edits. The reference is invalidated by the next edit.
  const Graph& graph();

  /// The current adjacency as a query index, re-materialized lazily after
  /// edits (same dense/sparse mode as construction chose). The reference is
  /// invalidated by the next edit.
  const GraphIndex& index();

 private:
  void Materialize();

  std::vector<std::vector<VertexId>> adjacency_;  // sorted neighbor lists
  size_t num_edges_ = 0;
  size_t dense_vertex_limit_;
  bool dirty_ = true;
  Graph graph_;
  GraphIndex index_;
};

}  // namespace lamo

#endif  // LAMO_GRAPH_MUTABLE_INDEX_H_
