#ifndef LAMO_GRAPH_REFINEMENT_H_
#define LAMO_GRAPH_REFINEMENT_H_

#include <cstdint>
#include <vector>

#include "graph/small_graph.h"

namespace lamo {

/// Iterative color refinement (1-dimensional Weisfeiler-Leman) on a
/// SmallGraph. Starting from `initial` colors (empty => all vertices share
/// color 0), repeatedly re-colors each vertex by (current color, multiset of
/// neighbor colors) until a fixed point. The returned coloring is normalized:
/// colors are dense 0..k-1, assigned in order of (first occurrence of the
/// refined class signature sorted by class signature), so that isomorphic
/// graphs receive identical color histograms.
///
/// Refinement is the pruning invariant behind canonical labeling and
/// automorphism/orbit computation: vertices in different classes can never be
/// mapped to each other by any automorphism.
std::vector<uint32_t> RefineColors(const SmallGraph& g,
                                   std::vector<uint32_t> initial = {});

/// Groups vertices by color; cells ordered by color id, vertices ascending
/// within each cell.
std::vector<std::vector<uint32_t>> ColorCells(
    const std::vector<uint32_t>& colors);

}  // namespace lamo

#endif  // LAMO_GRAPH_REFINEMENT_H_
