#ifndef LAMO_GRAPH_CANONICAL_H_
#define LAMO_GRAPH_CANONICAL_H_

#include <cstdint>
#include <vector>

#include "graph/small_graph.h"

namespace lamo {

/// Result of canonical labeling.
struct CanonicalResult {
  /// The canonical representative of the isomorphism class: two SmallGraphs
  /// are isomorphic iff their canonical graphs are structurally equal.
  SmallGraph graph;
  /// canonical_to_original[i] = vertex of the input graph placed at canonical
  /// position i.
  std::vector<uint32_t> canonical_to_original;
  /// Packed upper-triangle adjacency of `graph` — a compact byte string that
  /// can serve as a hash-map key for isomorphism classes.
  std::vector<uint8_t> code;
};

/// Computes a canonical form of `g` (a "nauty-lite"): color refinement to an
/// equitable ordered partition, a twin-cell shortcut that orders mutually
/// interchangeable vertices without branching (this collapses the huge
/// automorphism groups of cliques/bicliques/stars common in PPI motifs), and
/// a branch-and-min search over individualizations otherwise. Exact for all
/// inputs; fast for motif-scale graphs (n <= ~25).
CanonicalResult Canonicalize(const SmallGraph& g);

/// Shorthand for Canonicalize(g).code.
std::vector<uint8_t> CanonicalCode(const SmallGraph& g);

/// True iff `a` and `b` are isomorphic (via canonical codes).
bool AreIsomorphic(const SmallGraph& a, const SmallGraph& b);

}  // namespace lamo

#endif  // LAMO_GRAPH_CANONICAL_H_
