#ifndef LAMO_GRAPH_SMALL_GRAPH_H_
#define LAMO_GRAPH_SMALL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace lamo {

/// A simple undirected graph with at most 64 vertices, stored as one 64-bit
/// adjacency bitmask per vertex. Network motifs are meso-scale (the paper
/// mines sizes 3..20), so this representation makes isomorphism, automorphism
/// and canonical-form computation branch-light bit arithmetic.
class SmallGraph {
 public:
  /// Maximum supported vertex count.
  static constexpr size_t kMaxVertices = 64;

  /// Creates an edgeless graph with `n` vertices (n <= 64).
  explicit SmallGraph(size_t n = 0);

  /// Builds a SmallGraph from explicit edges over `n` vertices. Self-loops
  /// and out-of-range endpoints are rejected.
  static StatusOr<SmallGraph> FromEdges(
      size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  /// Extracts the subgraph of `g` induced by `vertices` (motif occurrences
  /// are vertex-induced subgraphs). Vertex i of the result corresponds to
  /// vertices[i]. Requires vertices.size() <= 64 and distinct entries.
  static SmallGraph InducedSubgraph(const Graph& g,
                                    const std::vector<VertexId>& vertices);

  /// Number of vertices.
  size_t num_vertices() const { return n_; }

  /// Number of undirected edges.
  size_t num_edges() const;

  /// Adds the undirected edge {a, b}; no-op for self-loops.
  void AddEdge(uint32_t a, uint32_t b);

  /// Removes the undirected edge {a, b} if present.
  void RemoveEdge(uint32_t a, uint32_t b);

  /// True iff {a, b} is an edge.
  bool HasEdge(uint32_t a, uint32_t b) const {
    return (rows_[a] >> b) & 1ULL;
  }

  /// Neighbor bitmask of vertex `v`.
  uint64_t NeighborMask(uint32_t v) const { return rows_[v]; }

  /// Degree of vertex `v`.
  size_t Degree(uint32_t v) const;

  /// All edges with first < second, lexicographic.
  std::vector<std::pair<uint32_t, uint32_t>> Edges() const;

  /// Neighbor list of `v` in increasing order.
  std::vector<uint32_t> Neighbors(uint32_t v) const;

  /// True iff the graph is connected (the empty graph is connected).
  bool IsConnected() const;

  /// Relabels vertices: vertex i of the result is vertex perm[i] of *this.
  /// `perm` must be a permutation of 0..n-1.
  SmallGraph Permuted(const std::vector<uint32_t>& perm) const;

  /// Packs the upper triangle of the adjacency matrix row-major into bytes;
  /// equal codes <=> identical (not just isomorphic) graphs. Used as a hash
  /// key; combine with Canonicalize() for isomorphism classes.
  std::vector<uint8_t> AdjacencyCode() const;

  /// Structural equality (same n, same adjacency).
  friend bool operator==(const SmallGraph& a, const SmallGraph& b) {
    if (a.n_ != b.n_) return false;
    for (size_t i = 0; i < a.n_; ++i) {
      if (a.rows_[i] != b.rows_[i]) return false;
    }
    return true;
  }

  /// Multi-line ASCII adjacency dump for debugging.
  std::string ToString() const;

 private:
  size_t n_;
  uint64_t rows_[kMaxVertices];
};

}  // namespace lamo

#endif  // LAMO_GRAPH_SMALL_GRAPH_H_
