#include "graph/refinement.h"

#include <algorithm>
#include <map>

namespace lamo {

std::vector<uint32_t> RefineColors(const SmallGraph& g,
                                   std::vector<uint32_t> initial) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> colors = std::move(initial);
  if (colors.size() != n) colors.assign(n, 0);

  while (true) {
    // Signature of v: (old color, sorted neighbor colors).
    std::vector<std::vector<uint32_t>> signatures(n);
    for (uint32_t v = 0; v < n; ++v) {
      auto& sig = signatures[v];
      sig.push_back(colors[v]);
      for (uint32_t u : g.Neighbors(v)) sig.push_back(colors[u]);
      std::sort(sig.begin() + 1, sig.end());
    }
    // Normalize signatures to dense ids ordered by signature value. Ordering
    // by signature (not first appearance) keeps the result invariant under
    // vertex relabeling of isomorphic graphs.
    std::map<std::vector<uint32_t>, uint32_t> ids;
    for (uint32_t v = 0; v < n; ++v) ids.emplace(signatures[v], 0);
    uint32_t next = 0;
    for (auto& [sig, id] : ids) id = next++;

    std::vector<uint32_t> refined(n);
    bool changed = false;
    for (uint32_t v = 0; v < n; ++v) {
      refined[v] = ids[signatures[v]];
      if (refined[v] != colors[v]) changed = true;
    }
    colors = std::move(refined);
    if (!changed) break;
  }
  return colors;
}

std::vector<std::vector<uint32_t>> ColorCells(
    const std::vector<uint32_t>& colors) {
  uint32_t max_color = 0;
  for (uint32_t c : colors) max_color = std::max(max_color, c);
  std::vector<std::vector<uint32_t>> cells(colors.empty() ? 0 : max_color + 1);
  for (uint32_t v = 0; v < colors.size(); ++v) {
    cells[colors[v]].push_back(v);
  }
  return cells;
}

}  // namespace lamo
