#include "graph/graph.h"

#include <algorithm>

namespace lamo {

bool Graph::HasEdge(VertexId a, VertexId b) const {
  if (a >= num_vertices() || b >= num_vertices()) return false;
  // Probe the smaller adjacency list.
  if (Degree(a) > Degree(b)) std::swap(a, b);
  auto nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (VertexId u : Neighbors(v)) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return edges;
}

std::vector<size_t> Graph::Degrees() const {
  std::vector<size_t> degrees(num_vertices());
  for (VertexId v = 0; v < num_vertices(); ++v) degrees[v] = Degree(v);
  return degrees;
}

size_t Graph::MaxDegree() const {
  size_t max_degree = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

std::string Graph::ToString() const {
  return "Graph(" + std::to_string(num_vertices()) + " vertices, " +
         std::to_string(num_edges()) + " edges)";
}

Status GraphBuilder::AddEdge(VertexId a, VertexId b) {
  if (a >= num_vertices_ || b >= num_vertices_) {
    return Status::InvalidArgument(
        "edge endpoint out of range: {" + std::to_string(a) + ", " +
        std::to_string(b) + "} with " + std::to_string(num_vertices_) +
        " vertices");
  }
  if (a == b) return Status::OK();  // self-links removed, per the paper
  if (a > b) std::swap(a, b);
  edges_.emplace_back(a, b);
  return Status::OK();
}

Graph GraphBuilder::Build() const {
  std::vector<std::pair<VertexId, VertexId>> edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(num_vertices_ + 1, 0);
  for (const auto& [a, b] : edges) {
    ++g.offsets_[a + 1];
    ++g.offsets_[b + 1];
  }
  for (size_t v = 1; v <= num_vertices_; ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  g.neighbors_.resize(edges.size() * 2);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    g.neighbors_[cursor[a]++] = b;
    g.neighbors_[cursor[b]++] = a;
  }
  // Each vertex's slice is already sorted because edges were emitted in
  // lexicographic order, but re-sorting keeps the invariant explicit and
  // robust against future changes.
  for (size_t v = 0; v < num_vertices_; ++v) {
    std::sort(g.neighbors_.begin() + g.offsets_[v],
              g.neighbors_.begin() + g.offsets_[v + 1]);
  }
  return g;
}

}  // namespace lamo
