#ifndef LAMO_GRAPH_GENERATORS_H_
#define LAMO_GRAPH_GENERATORS_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/random.h"

namespace lamo {

/// Erdős–Rényi G(n, m): n vertices, m distinct uniform random edges.
Graph ErdosRenyi(size_t n, size_t m, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices chosen
/// proportionally to degree. Produces the heavy-tailed degree distribution
/// characteristic of PPI networks.
Graph BarabasiAlbert(size_t n, size_t edges_per_vertex, Rng& rng);

/// Duplication–divergence model (Vázquez et al. 2003), the standard
/// generative model for protein interactomes: each new protein duplicates a
/// random existing protein, keeps each of its interactions with probability
/// `retention`, and gains an interaction with its parent with probability
/// `parent_link`. Duplicated proteins with no retained interaction get one
/// uniform random link so the network stays connected-ish.
///
/// With retention ~0.35-0.45 this reproduces the sparse, clustered,
/// power-law-ish topology of the yeast Y2H interactome the paper mines.
Graph DuplicationDivergence(size_t n, double retention, double parent_link,
                            Rng& rng);

/// Degree-preserving randomization: performs edge swaps (a,b),(c,d) ->
/// (a,d),(c,b), rejecting swaps that would create self-loops or parallel
/// edges, until `swaps_per_edge * m` successful swaps. This is the standard
/// null model ("randomized networks") used for the uniqueness test of network
/// motifs [Milo et al. 2002].
Graph DegreePreservingRewire(const Graph& g, double swaps_per_edge, Rng& rng);

}  // namespace lamo

#endif  // LAMO_GRAPH_GENERATORS_H_
