#include "graph/digraph.h"

#include <algorithm>

namespace lamo {

bool DiGraph::HasArc(VertexId a, VertexId b) const {
  if (a >= num_vertices() || b >= num_vertices()) return false;
  const auto out = OutNeighbors(a);
  return std::binary_search(out.begin(), out.end(), b);
}

std::vector<std::pair<VertexId, VertexId>> DiGraph::Arcs() const {
  std::vector<std::pair<VertexId, VertexId>> arcs;
  arcs.reserve(num_arcs());
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (VertexId u : OutNeighbors(v)) arcs.emplace_back(v, u);
  }
  return arcs;
}

Graph DiGraph::Underlying() const {
  GraphBuilder builder(num_vertices());
  for (const auto& [a, b] : Arcs()) {
    (void)builder.AddEdge(a, b);  // dedup handled by the builder
  }
  return builder.Build();
}

std::string DiGraph::ToString() const {
  return "DiGraph(" + std::to_string(num_vertices()) + " vertices, " +
         std::to_string(num_arcs()) + " arcs)";
}

Status DiGraphBuilder::AddArc(VertexId a, VertexId b) {
  if (a >= num_vertices_ || b >= num_vertices_) {
    return Status::InvalidArgument("arc endpoint out of range");
  }
  if (a == b) return Status::OK();  // self-regulation dropped, as for edges
  arcs_.emplace_back(a, b);
  return Status::OK();
}

DiGraph DiGraphBuilder::Build() const {
  std::vector<std::pair<VertexId, VertexId>> arcs = arcs_;
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

  DiGraph g;
  g.out_offsets_.assign(num_vertices_ + 1, 0);
  g.in_offsets_.assign(num_vertices_ + 1, 0);
  for (const auto& [a, b] : arcs) {
    ++g.out_offsets_[a + 1];
    ++g.in_offsets_[b + 1];
  }
  for (size_t v = 1; v <= num_vertices_; ++v) {
    g.out_offsets_[v] += g.out_offsets_[v - 1];
    g.in_offsets_[v] += g.in_offsets_[v - 1];
  }
  g.out_flat_.resize(arcs.size());
  g.in_flat_.resize(arcs.size());
  std::vector<size_t> out_cursor(g.out_offsets_.begin(),
                                 g.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (const auto& [a, b] : arcs) {
    g.out_flat_[out_cursor[a]++] = b;
    g.in_flat_[in_cursor[b]++] = a;
  }
  for (size_t v = 0; v < num_vertices_; ++v) {
    std::sort(g.in_flat_.begin() + g.in_offsets_[v],
              g.in_flat_.begin() + g.in_offsets_[v + 1]);
  }
  return g;
}

}  // namespace lamo
