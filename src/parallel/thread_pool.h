#ifndef LAMO_PARALLEL_THREAD_POOL_H_
#define LAMO_PARALLEL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lamo {

/// Fixed-size worker pool over a FIFO task queue. Workers are started in the
/// constructor and joined in the destructor (pending tasks are drained
/// first). This is the low-level engine behind ParallelFor/ParallelMap
/// (parallel_for.h); most code should use those instead of raw Submit.
///
/// Exceptions thrown by tasks are captured; the first one is rethrown from
/// the next Wait() call. Subsequent tasks still run.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 is allowed: Submit still accepts tasks
  /// but nothing runs them until destruction drains the queue inline).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Never blocks on task execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Rethrows the
  /// first exception captured since the previous Wait(), if any.
  void Wait();

  /// True when called from one of this process's pool worker threads (any
  /// pool). Parallel regions use this to reject nested fan-out.
  static bool InWorker();

 private:
  /// A queued task plus its enqueue timestamp. The timestamp is only taken
  /// when an observability sink is installed (obs/obs.h); `stamped` records
  /// that, so queue-wait accounting costs nothing when disabled.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool stamped = false;
  };

  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable done_cv_;   // signals Wait(): queue drained
  std::deque<QueuedTask> queue_;      // guarded by mu_
  size_t in_flight_ = 0;              // guarded by mu_
  bool stop_ = false;                 // guarded by mu_
  std::exception_ptr first_error_;    // guarded by mu_
};

}  // namespace lamo

#endif  // LAMO_PARALLEL_THREAD_POOL_H_
