#include "parallel/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/obs.h"
#include "parallel/thread_pool.h"
#include "util/string_util.h"

namespace lamo {
namespace {

/// Chunks executed, per thread — the report's per-worker task counts
/// ("tasks" in the workers array; see obs/run_report.h).
const size_t kObsChunks = ObsCounterId("parallel.chunks");

/// Explicit override from SetThreadCount (0 = unset).
std::atomic<size_t> g_explicit_threads{0};

/// True while this thread runs inside a parallel region it entered as the
/// calling (non-pool) participant.
thread_local bool tls_in_region = false;

/// Serializes top-level parallel regions and guards the shared pool. Regions
/// are short-lived and the pipeline drives them from one thread, so the
/// serialization is contention-free in practice; it is what makes resizing
/// the pool between regions trivially safe.
std::mutex g_region_mu;
ThreadPool* g_pool = nullptr;  // guarded by g_region_mu; leaked at exit

/// Shared state of one parallel region.
struct RegionState {
  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> abort{false};
  std::mutex mu;
  std::condition_variable done;
  size_t active_runners = 0;          // guarded by mu
  std::exception_ptr first_error;     // guarded by mu
};

class ScopedRegionFlag {
 public:
  ScopedRegionFlag() : previous_(tls_in_region) { tls_in_region = true; }
  ~ScopedRegionFlag() { tls_in_region = previous_; }

 private:
  bool previous_;
};

}  // namespace

void SetThreadCount(size_t n) { g_explicit_threads.store(n); }

size_t HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ThreadCount() {
  const size_t explicit_count = g_explicit_threads.load();
  if (explicit_count > 0) return explicit_count;
  if (const char* env = std::getenv("LAMO_THREADS")) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed) && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  return HardwareConcurrency();
}

bool InParallelRegion() { return tls_in_region || ThreadPool::InWorker(); }

void ParallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;
  auto run_chunk = [&](size_t chunk) {
    const size_t lo = begin + chunk * grain;
    const size_t hi = std::min(end, lo + grain);
    ObsIncrement(kObsChunks);
    fn(chunk, lo, hi);
  };

  const size_t threads = std::min(ThreadCount(), num_chunks);
  if (threads <= 1 || InParallelRegion()) {
    // Serial path: one thread requested, a single chunk, or a nested call
    // (fanning out from inside a region is rejected — it degrades to this
    // inline loop rather than deadlocking on the shared pool). The region
    // flag is deliberately left alone: a single-chunk outer loop must not
    // suppress fan-out in the loops it contains.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    return;
  }

  std::lock_guard<std::mutex> region_lock(g_region_mu);
  // The pool only ever grows; when a smaller count is requested the extra
  // workers simply receive no runners. Replacing it here is safe because the
  // region mutex guarantees no other region is in flight.
  if (g_pool == nullptr || g_pool->num_threads() + 1 < threads) {
    delete g_pool;
    g_pool = new ThreadPool(threads - 1);
  }

  auto state = std::make_shared<RegionState>();
  state->active_runners = threads;
  auto runner = [state, run_chunk, num_chunks]() {
    size_t chunk;
    while (!state->abort.load(std::memory_order_relaxed) &&
           (chunk = state->next_chunk.fetch_add(1)) < num_chunks) {
      try {
        run_chunk(chunk);
      } catch (...) {
        state->abort.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->first_error == nullptr) {
          state->first_error = std::current_exception();
        }
      }
    }
    std::lock_guard<std::mutex> lock(state->mu);
    if (--state->active_runners == 0) state->done.notify_all();
  };

  for (size_t i = 0; i + 1 < threads; ++i) g_pool->Submit(runner);
  {
    // The caller participates as the final runner instead of idling.
    ScopedRegionFlag region;
    runner();
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->active_runners == 0; });
  if (state->first_error != nullptr) {
    std::rethrow_exception(state->first_error);
  }
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn) {
  ParallelForChunks(begin, end, grain,
                    [&](size_t, size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) fn(i);
                    });
}

}  // namespace lamo
