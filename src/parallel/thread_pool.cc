#include "parallel/thread_pool.h"

#include <string>
#include <utility>

#include "obs/obs.h"
#include "obs/trace.h"

namespace lamo {
namespace {

thread_local bool tls_pool_worker = false;

/// Tasks executed by pool workers (Submit-level granularity; the chunk-level
/// breakdown is parallel.chunks).
const size_t kObsPoolTasks = ObsCounterId("pool.tasks");
/// Total time tasks spent queued before a worker picked them up, in
/// microseconds. Only accumulated while a sink is installed.
const size_t kObsQueueWaitUs = ObsCounterId("pool.queue_wait_us");
/// Per-task queue-wait distribution (same samples as the counter above);
/// its p99 is the scheduling-delay headline in bench_scaling.
const size_t kHistQueueWaitUs = ObsHistogramId("pool.queue_wait_us");
/// One span per executed task, so traces show worker occupancy gaps.
const size_t kSpanPoolTask = ObsSpanId("pool.task");

/// Records queue-wait for a task that was stamped at Submit time.
void RecordDequeue(const std::chrono::steady_clock::time_point& enqueued,
                   bool stamped) {
  if (!stamped || !ObsEnabled()) return;
  const auto waited = std::chrono::steady_clock::now() - enqueued;
  const uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(waited).count());
  ObsAdd(kObsQueueWaitUs, us);
  ObsObserve(kHistQueueWaitUs, us);
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // With zero workers the queue may still hold tasks: honor the "drained
  // before shutdown" contract by running them inline.
  while (!queue_.empty()) {
    QueuedTask task = std::move(queue_.front());
    queue_.pop_front();
    try {
      task.fn();
    } catch (...) {
      // Destruction cannot rethrow; the error is dropped with the pool.
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  QueuedTask queued;
  queued.fn = std::move(task);
  if (ObsEnabled()) {
    queued.enqueued = std::chrono::steady_clock::now();
    queued.stamped = true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(queued));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

bool ThreadPool::InWorker() { return tls_pool_worker; }

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_pool_worker = true;
  ObsSetThreadName("worker" + std::to_string(worker_index));
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    RecordDequeue(task.enqueued, task.stamped);
    ObsIncrement(kObsPoolTasks);
    try {
      const ScopedSpan span(kSpanPoolTask);
      task.fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace lamo
