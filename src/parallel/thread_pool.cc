#include "parallel/thread_pool.h"

#include <utility>

namespace lamo {
namespace {

thread_local bool tls_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // With zero workers the queue may still hold tasks: honor the "drained
  // before shutdown" contract by running them inline.
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    try {
      task();
    } catch (...) {
      // Destruction cannot rethrow; the error is dropped with the pool.
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

bool ThreadPool::InWorker() { return tls_pool_worker; }

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace lamo
