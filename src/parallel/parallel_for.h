#ifndef LAMO_PARALLEL_PARALLEL_FOR_H_
#define LAMO_PARALLEL_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace lamo {

/// ---- Thread-count policy -------------------------------------------------
///
/// The effective thread count is resolved in priority order:
///   1. an explicit SetThreadCount(n > 0) — the CLI's --threads flag;
///   2. the LAMO_THREADS environment variable (positive integer);
///   3. std::thread::hardware_concurrency().
/// A resolved count of 1 makes every parallel primitive run inline, with no
/// pool, locks, or thread startup at all.

/// Sets the process-wide thread count; 0 restores automatic resolution.
void SetThreadCount(size_t n);

/// The resolved thread count (always >= 1).
size_t ThreadCount();

/// std::thread::hardware_concurrency(), never 0.
size_t HardwareConcurrency();

/// True while the calling thread is executing inside a parallel region
/// (either as a pool worker or as the caller participating in its own
/// region). Parallel primitives invoked here are *rejected*: they degrade to
/// plain serial loops instead of deadlocking on the shared pool.
bool InParallelRegion();

/// ---- Parallel loops ------------------------------------------------------
///
/// Determinism contract: the index space [begin, end) is split into fixed
/// chunks of `grain` indices (the last chunk may be short). Chunk boundaries
/// depend only on (begin, end, grain) — never on the thread count — and
/// every merge step below recombines per-chunk results in chunk-index
/// order, so the output of any parallel primitive is byte-identical to a
/// serial run. Workers claim chunks dynamically (an atomic cursor), which
/// balances skewed per-index costs.

/// Runs fn(chunk_index, lo, hi) for every chunk [lo, hi) of [begin, end).
/// Blocks until all chunks finish. The first exception thrown by `fn` is
/// rethrown here (remaining chunks may be skipped).
void ParallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn);

/// Runs fn(i) for every i in [begin, end), chunked by `grain`.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn);

/// results[i] = fn(i) for i in [0, n): computed in parallel, stored by
/// index, so the result vector is identical to a serial evaluation. The
/// result type must be default-constructible and move-assignable.
template <typename Fn>
auto ParallelMap(size_t n, size_t grain, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(size_t{0}))>> {
  using R = std::decay_t<decltype(fn(size_t{0}))>;
  std::vector<R> results(n);
  ParallelFor(0, n, grain, [&](size_t i) { results[i] = fn(i); });
  return results;
}

/// Ordered reduction: chunk_fn(lo, hi) -> partial result per chunk;
/// partials are folded left-to-right in chunk-index order via
/// combine(accumulator, partial), starting from `identity`. Because the
/// fold order is fixed, even non-commutative / floating-point combines give
/// thread-count-independent results.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(size_t n, size_t grain, T identity, ChunkFn&& chunk_fn,
                 CombineFn&& combine) {
  if (n == 0) return identity;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  std::vector<T> partials(num_chunks);
  ParallelForChunks(0, n, grain, [&](size_t chunk, size_t lo, size_t hi) {
    partials[chunk] = chunk_fn(lo, hi);
  });
  T accumulator = std::move(identity);
  for (T& partial : partials) {
    accumulator = combine(std::move(accumulator), std::move(partial));
  }
  return accumulator;
}

}  // namespace lamo

#endif  // LAMO_PARALLEL_PARALLEL_FOR_H_
