#include "core/occurrence_similarity.h"

#include <numeric>

#include "core/assignment.h"
#include "graph/automorphism.h"
#include "util/logging.h"

namespace lamo {

OccurrenceSimilarity::OccurrenceSimilarity(const TermSimilarity& st,
                                           const SmallGraph& motif,
                                           SymmetryMode mode)
    : st_(st),
      num_vertices_(motif.num_vertices()),
      orbits_(mode == SymmetryMode::kTwinSets ? TwinClasses(motif)
                                              : VertexOrbits(motif)) {}

OccurrenceSimilarity::OccurrenceSimilarity(
    const TermSimilarity& st, size_t num_vertices,
    std::vector<std::vector<uint32_t>> orbits)
    : st_(st), num_vertices_(num_vertices), orbits_(std::move(orbits)) {
  size_t covered = 0;
  for (const auto& orbit : orbits_) covered += orbit.size();
  LAMO_CHECK_EQ(covered, num_vertices_);
}

double OccurrenceSimilarity::Score(const LabelProfile& a,
                                   const LabelProfile& b,
                                   std::vector<uint32_t>* best_pairing) const {
  LAMO_CHECK_EQ(a.size(), num_vertices_);
  LAMO_CHECK_EQ(b.size(), num_vertices_);
  if (best_pairing != nullptr) {
    best_pairing->resize(num_vertices_);
    std::iota(best_pairing->begin(), best_pairing->end(), 0);
  }
  if (num_vertices_ == 0) return 0.0;

  double total = 0.0;
  for (const auto& orbit : orbits_) {
    if (orbit.size() == 1) {
      total += VertexSimilarity(st_, a[orbit[0]], b[orbit[0]]);
      continue;
    }
    std::vector<std::vector<double>> score(
        orbit.size(), std::vector<double>(orbit.size()));
    for (size_t i = 0; i < orbit.size(); ++i) {
      for (size_t j = 0; j < orbit.size(); ++j) {
        score[i][j] = VertexSimilarity(st_, a[orbit[i]], b[orbit[j]]);
      }
    }
    std::vector<int> matching;
    total += MaxSumAssignment(score, &matching);
    if (best_pairing != nullptr) {
      for (size_t i = 0; i < orbit.size(); ++i) {
        (*best_pairing)[orbit[i]] = orbit[matching[i]];
      }
    }
  }
  return total / static_cast<double>(num_vertices_);
}

}  // namespace lamo
