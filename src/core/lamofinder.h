#ifndef LAMO_CORE_LAMOFINDER_H_
#define LAMO_CORE_LAMOFINDER_H_

#include <cstdint>
#include <vector>

#include "core/label_profile.h"
#include "core/labeled_motif.h"
#include "motif/motif.h"
#include "ontology/annotation.h"
#include "ontology/informative.h"
#include "ontology/ontology.h"
#include "ontology/similarity.h"
#include "ontology/weights.h"
#include "util/checkpoint.h"

namespace lamo {

/// Tuning knobs of the labeling algorithm (Algorithms 1-2 of the paper).
struct LaMoFinderConfig {
  /// sigma: a labeling scheme must conform to at least this many occurrences
  /// to be emitted. The paper uses 10 on the yeast interactome.
  size_t sigma = 10;
  /// Stop generalizing a cluster once more than this fraction of its motif
  /// vertices carry at least one border-informative label ("more than half"
  /// in the paper).
  double border_fraction = 0.5;
  /// Clusters are merged only while their occurrence similarity is at least
  /// this much; below it, an unsaturated cluster has no occurrence to
  /// combine with and "proceeds to the next step".
  double min_similarity = 0.5;
  /// Deterministic cap on |D_g| used for clustering (evenly-strided sample)
  /// to bound the O(|D|^2) similarity stage; 0 = no cap. Conformance-based
  /// frequency is still counted over the full occurrence set.
  size_t max_occurrences = 600;
  /// Cap on a vertex's label-set size after a merge; the most informative
  /// (lowest-weight) labels are kept. 0 = unlimited.
  size_t max_labels_per_vertex = 6;
  /// Also emit saturated intermediate clusters (dendrogram nodes), not only
  /// the final partition. This is what lets hierarchical clustering find
  /// overlapping labeling schemes that k-means misses (Figure 5).
  bool emit_intermediate = true;
  /// Crash-safe progress saves per motif group in LabelAll (stage "label",
  /// keyed by motif index). Resumed runs are byte-identical: batches
  /// concatenate in motif order and LMS strengths are computed once at the
  /// end over the full result.
  CheckpointOptions checkpoint;
};

/// LaMoFinder: labels network motifs with GO terms (Task 3 of network motif
/// mining). For each motif g with occurrence set D_g, agglomeratively
/// clusters the occurrences under the occurrence similarity SO (Eq. 3),
/// deriving at each merge the least general labeling scheme of the merged
/// cluster; saturated clusters (enough border-informative vertices) with at
/// least sigma conforming occurrences are emitted as labeled motifs.
class LaMoFinder {
 public:
  /// All references must outlive the finder. `annotations` maps the PPI
  /// graph's vertices (proteins) to direct GO terms of one branch; call the
  /// finder once per branch as the paper does.
  LaMoFinder(const Ontology& ontology, const TermWeights& weights,
             const InformativeClasses& informative,
             const AnnotationTable& annotations);

  LaMoFinder(const LaMoFinder&) = delete;
  LaMoFinder& operator=(const LaMoFinder&) = delete;

  /// Labels one motif, returning zero or more labeled motifs (distinct
  /// labeling schemes with >= sigma conforming occurrences each).
  std::vector<LabeledMotif> LabelMotif(const Motif& motif,
                                       const LaMoFinderConfig& config) const;

  /// Labels every motif and computes LMS strengths over the whole result.
  std::vector<LabeledMotif> LabelAll(const std::vector<Motif>& motifs,
                                     const LaMoFinderConfig& config) const;

  /// Counts the occurrences of `motif` that conform to `scheme` and returns
  /// them re-aligned to the scheme (public for tests and the prediction
  /// stage).
  std::vector<MotifOccurrence> ConformingOccurrences(
      const Motif& motif, const LabelProfile& scheme) const;

  /// The memoizing term-similarity engine (shared with callers that need
  /// consistent ST values).
  const TermSimilarity& term_similarity() const { return st_; }

 private:
  const Ontology& ontology_;
  const TermWeights& weights_;
  const InformativeClasses& informative_;
  const AnnotationTable& annotations_;
  TermSimilarity st_;
  std::vector<bool> candidate_filter_;
};

}  // namespace lamo

#endif  // LAMO_CORE_LAMOFINDER_H_
