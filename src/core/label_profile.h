#ifndef LAMO_CORE_LABEL_PROFILE_H_
#define LAMO_CORE_LABEL_PROFILE_H_

#include <string>
#include <vector>

#include "ontology/ontology.h"
#include "ontology/similarity.h"

namespace lamo {

/// A set of GO terms attached to one motif vertex (sorted ascending,
/// duplicate-free). Empty means "unknown": no annotation evidence at all.
using LabelSet = std::vector<TermId>;

/// Per-vertex label sets for a motif: profile[i] labels canonical motif
/// vertex i. Both raw occurrence annotations and generalized cluster labels
/// take this shape.
using LabelProfile = std::vector<LabelSet>;

/// Inserts `t` keeping the set sorted and duplicate-free.
void InsertLabel(LabelSet* set, TermId t);

/// Vertex similarity SV (Eq. 2 of the paper):
///
///   SV(vi, vj) = 1 - prod over (ta in Tvi, tb in Tvj) of (1 - ST(ta, tb))
///
/// Close to 1 as soon as one label pair matches well: two vertices are
/// similar if they share at least one biological feature. By convention two
/// "unknown" vertices score 1 (no evidence of difference) and an unknown
/// versus an annotated vertex scores 0.5 (uninformative prior); tests pin
/// this behavior.
double VertexSimilarity(const TermSimilarity& st, const LabelSet& a,
                        const LabelSet& b);

/// The pairwise least-general labels of two label sets (the paper's "minimum
/// common father" of Table 4): { LowestCommonParent(ta, tb) } over all label
/// pairs, deduplicated. If `candidate_filter` is non-null, the result keeps
/// only terms for which the filter returns true (the paper keeps label
/// candidates: border informative FCs and their descendants); when the
/// filtered set would be empty the unfiltered set is returned so evidence is
/// never silently dropped.
///
/// An empty (unknown) side yields the other side unchanged: the paper
/// determines labels of unannotated proteins from the corresponding proteins
/// of the other occurrences.
LabelSet LeastGeneralLabels(const TermSimilarity& st, const LabelSet& a,
                            const LabelSet& b,
                            const std::vector<bool>* candidate_filter);

/// True iff every label in `scheme_labels` is the same as or more general
/// than some direct annotation in `protein_terms` (the paper's conformance
/// test). An empty scheme label set ("unknown") conforms to anything; an
/// unannotated protein conforms to anything.
bool LabelsConform(const Ontology& ontology, const LabelSet& scheme_labels,
                   const LabelSet& protein_terms);

/// Renders "{G04, G09}" using ontology term names; "{unknown}" when empty.
std::string LabelSetToString(const Ontology& ontology, const LabelSet& set);

}  // namespace lamo

#endif  // LAMO_CORE_LABEL_PROFILE_H_
