#ifndef LAMO_CORE_LABELED_MOTIF_H_
#define LAMO_CORE_LABELED_MOTIF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/label_profile.h"
#include "graph/small_graph.h"
#include "motif/motif.h"

namespace lamo {

/// A labeled network motif g_labeled: a network motif together with a
/// labeling scheme (per-vertex GO label sets) and the occurrences of the
/// motif that conform to the scheme. The product of Task 3.
struct LabeledMotif {
  /// The unlabeled pattern in canonical form (shared with the source Motif).
  SmallGraph pattern;
  /// Canonical code of the pattern.
  std::vector<uint8_t> code;
  /// The labeling scheme: scheme[i] is the label set of canonical vertex i.
  /// An empty set renders as "unknown".
  LabelProfile scheme;
  /// Conforming occurrences, re-aligned so that proteins[i] plays scheme
  /// position i under the symmetric-vertex pairing that makes the occurrence
  /// conform.
  std::vector<MotifOccurrence> occurrences;
  /// |g_labeled|: the number of occurrences of the underlying motif that
  /// conform to the scheme (= occurrences.size()).
  size_t frequency = 0;
  /// s(g_labeled): inherited uniqueness of the underlying motif.
  double uniqueness = 0.0;
  /// LMS(g_labeled) per Eq. 4, normalized within its size class by
  /// ComputeMotifStrengths. 0 until computed.
  double strength = 0.0;

  /// Number of motif vertices.
  size_t size() const { return pattern.num_vertices(); }

  /// Renders the scheme, e.g. "[{G04}, {G08, G10}, {G04}, {G05}]".
  std::string SchemeToString(const Ontology& ontology) const;
};

/// Fills in LMS (Eq. 4) for every labeled motif:
///
///   LMS(g) = s(g) * |g| / max_k
///
/// where max_k is the maximal s*frequency among all labeled motifs of the
/// same size k, so strengths are comparable within a size class and the best
/// motif of each class has strength 1.
void ComputeMotifStrengths(std::vector<LabeledMotif>* motifs);

/// Binary codecs used by label-stage checkpoint payloads; same contract as
/// EncodeMotif/DecodeMotif.
void EncodeLabeledMotif(const LabeledMotif& m, ByteWriter* w);
Status DecodeLabeledMotif(ByteReader* r, LabeledMotif* m);

}  // namespace lamo

#endif  // LAMO_CORE_LABELED_MOTIF_H_
