#include "core/kmedoids_baseline.h"

#include <algorithm>

#include "core/occurrence_similarity.h"
#include "util/logging.h"

namespace lamo {
namespace {

// Builds the annotation profile of one occurrence.
LabelProfile OccurrenceProfile(const AnnotationTable& annotations,
                               const MotifOccurrence& occ) {
  LabelProfile profile(occ.proteins.size());
  for (size_t pos = 0; pos < occ.proteins.size(); ++pos) {
    const auto terms = annotations.TermsOf(occ.proteins[pos]);
    profile[pos].assign(terms.begin(), terms.end());
  }
  return profile;
}

}  // namespace

std::vector<LabeledMotif> LabelMotifKMedoids(
    const Ontology& ontology, const TermWeights& weights,
    const InformativeClasses& informative, const AnnotationTable& annotations,
    const Motif& motif, const KMedoidsConfig& config) {
  std::vector<LabeledMotif> results;
  const size_t num_vertices = motif.pattern.num_vertices();
  if (num_vertices == 0 || motif.occurrences.empty()) return results;

  std::vector<const MotifOccurrence*> sample;
  if (config.max_occurrences != 0 &&
      motif.occurrences.size() > config.max_occurrences) {
    const double stride = static_cast<double>(motif.occurrences.size()) /
                          static_cast<double>(config.max_occurrences);
    for (size_t i = 0; i < config.max_occurrences; ++i) {
      sample.push_back(&motif.occurrences[static_cast<size_t>(i * stride)]);
    }
  } else {
    for (const auto& occ : motif.occurrences) sample.push_back(&occ);
  }
  const size_t n = sample.size();
  const size_t k =
      config.k != 0 ? config.k : std::max<size_t>(1, n / config.sigma);

  TermSimilarity st(ontology, weights);
  OccurrenceSimilarity so(st, motif.pattern);
  std::vector<LabelProfile> profiles;
  profiles.reserve(n);
  for (const MotifOccurrence* occ : sample) {
    profiles.push_back(OccurrenceProfile(annotations, *occ));
  }

  // Initialize medoids with distinct random occurrences.
  Rng rng(config.seed);
  std::vector<size_t> medoids = rng.SampleWithoutReplacement(n, std::min(k, n));
  std::vector<size_t> assignment(n, 0);

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Assign each occurrence to its most similar medoid.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = assignment[i];
      double best_sim = -1.0;
      for (size_t c = 0; c < medoids.size(); ++c) {
        const double s = so.Score(profiles[i], profiles[medoids[c]]);
        if (s > best_sim) {
          best_sim = s;
          best = c;
        }
      }
      if (best != assignment[i]) {
        assignment[i] = best;
        changed = true;
      }
    }
    // Recompute medoids: the member maximizing total similarity to its
    // cluster.
    for (size_t c = 0; c < medoids.size(); ++c) {
      std::vector<size_t> members;
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] == c) members.push_back(i);
      }
      if (members.empty()) continue;
      size_t best_medoid = medoids[c];
      double best_total = -1.0;
      for (size_t candidate : members) {
        double total = 0.0;
        for (size_t other : members) {
          total += so.Score(profiles[candidate], profiles[other]);
        }
        if (total > best_total) {
          best_total = total;
          best_medoid = candidate;
        }
      }
      medoids[c] = best_medoid;
    }
    if (!changed) break;
  }

  // Derive one labeling scheme per cluster of >= sigma occurrences.
  std::vector<bool> candidate_filter(ontology.num_terms());
  for (TermId t = 0; t < ontology.num_terms(); ++t) {
    candidate_filter[t] = informative.IsLabelCandidate(t);
  }
  for (size_t c = 0; c < medoids.size(); ++c) {
    std::vector<size_t> members;
    for (size_t i = 0; i < n; ++i) {
      if (assignment[i] == c) members.push_back(i);
    }
    if (members.size() < config.sigma) continue;

    // Fold members into the medoid's profile pairwise (same least-general
    // rule as LaMoFinder, but over a fixed disjoint cluster).
    LabelProfile scheme = profiles[medoids[c]];
    std::vector<MotifOccurrence> occurrences;
    for (size_t i : members) {
      std::vector<uint32_t> pairing;
      so.Score(scheme, profiles[i], &pairing);
      for (size_t pos = 0; pos < num_vertices; ++pos) {
        scheme[pos] = LeastGeneralLabels(st, scheme[pos],
                                         profiles[i][pairing[pos]],
                                         &candidate_filter);
        if (config.max_labels_per_vertex != 0 &&
            scheme[pos].size() > config.max_labels_per_vertex) {
          std::sort(scheme[pos].begin(), scheme[pos].end(),
                    [&](TermId a, TermId b) {
                      return weights.Weight(a) < weights.Weight(b);
                    });
          scheme[pos].resize(config.max_labels_per_vertex);
          std::sort(scheme[pos].begin(), scheme[pos].end());
        }
      }
      MotifOccurrence realigned;
      realigned.proteins.resize(num_vertices);
      for (size_t pos = 0; pos < num_vertices; ++pos) {
        realigned.proteins[pos] = sample[i]->proteins[pairing[pos]];
      }
      occurrences.push_back(std::move(realigned));
    }
    // Same emission rule as LaMoFinder: labels restricted to candidates,
    // at least half of the vertices labeled.
    LabelProfile filtered(num_vertices);
    size_t labeled_vertices = 0;
    for (size_t pos = 0; pos < num_vertices; ++pos) {
      for (TermId t : scheme[pos]) {
        if (candidate_filter[t]) filtered[pos].push_back(t);
      }
      if (!filtered[pos].empty()) ++labeled_vertices;
    }
    if (2 * labeled_vertices < num_vertices || labeled_vertices == 0) {
      continue;
    }

    LabeledMotif labeled;
    labeled.pattern = motif.pattern;
    labeled.code = motif.code;
    labeled.scheme = std::move(filtered);
    labeled.occurrences = std::move(occurrences);
    labeled.frequency = labeled.occurrences.size();
    labeled.uniqueness = motif.uniqueness >= 0.0 ? motif.uniqueness : 1.0;
    results.push_back(std::move(labeled));
  }
  return results;
}

}  // namespace lamo
