#include "core/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace lamo {

double MaxSumAssignment(const std::vector<std::vector<double>>& score,
                        std::vector<int>* matching) {
  const size_t n = score.size();
  if (n == 0) {
    if (matching != nullptr) matching->clear();
    return 0.0;
  }
  for (const auto& row : score) LAMO_CHECK_EQ(row.size(), n);

  // Hungarian algorithm (Kuhn-Munkres with potentials), minimizing the
  // negated scores. 1-indexed internal arrays per the classic formulation.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  auto cost = [&](size_t i, size_t j) { return -score[i - 1][j - 1]; };

  for (size_t i = 1; i <= n; ++i) {
    p[0] = static_cast<int>(i);
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = static_cast<int>(j);
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> result(n, -1);
  double total = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    if (p[j] > 0) {
      result[p[j] - 1] = static_cast<int>(j) - 1;
      total += score[p[j] - 1][j - 1];
    }
  }
  if (matching != nullptr) *matching = std::move(result);
  return total;
}

double MaxSumAssignmentBruteForce(
    const std::vector<std::vector<double>>& score,
    std::vector<int>* matching) {
  const size_t n = score.size();
  LAMO_CHECK_LE(n, 10u);
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = -std::numeric_limits<double>::infinity();
  std::vector<int> best_perm = perm;
  if (n == 0) best = 0.0;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += score[i][perm[i]];
    if (total > best) {
      best = total;
      best_perm = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  if (matching != nullptr) *matching = best_perm;
  return best;
}

}  // namespace lamo
