#include "core/labeled_motif.h"

#include <map>

namespace lamo {

std::string LabeledMotif::SchemeToString(const Ontology& ontology) const {
  std::string out = "[";
  for (size_t i = 0; i < scheme.size(); ++i) {
    if (i > 0) out += ", ";
    out += LabelSetToString(ontology, scheme[i]);
  }
  out += "]";
  return out;
}

void ComputeMotifStrengths(std::vector<LabeledMotif>* motifs) {
  std::map<size_t, double> max_per_size;
  for (const LabeledMotif& m : *motifs) {
    const double raw = m.uniqueness * static_cast<double>(m.frequency);
    auto [it, inserted] = max_per_size.emplace(m.size(), raw);
    if (!inserted && raw > it->second) it->second = raw;
  }
  for (LabeledMotif& m : *motifs) {
    const double max_k = max_per_size[m.size()];
    const double raw = m.uniqueness * static_cast<double>(m.frequency);
    m.strength = max_k > 0.0 ? raw / max_k : 0.0;
  }
}

void EncodeLabeledMotif(const LabeledMotif& m, ByteWriter* w) {
  EncodeSmallGraph(m.pattern, w);
  w->PutU64(m.code.size());
  for (const uint8_t b : m.code) w->PutU8(b);
  w->PutU64(m.scheme.size());
  for (const LabelSet& set : m.scheme) {
    w->PutU64(set.size());
    for (const TermId t : set) w->PutU32(t);
  }
  w->PutU64(m.occurrences.size());
  for (const MotifOccurrence& occ : m.occurrences) {
    w->PutU64(occ.proteins.size());
    for (const VertexId v : occ.proteins) w->PutU32(v);
  }
  w->PutU64(m.frequency);
  w->PutDouble(m.uniqueness);
  w->PutDouble(m.strength);
}

Status DecodeLabeledMotif(ByteReader* r, LabeledMotif* m) {
  LAMO_RETURN_IF_ERROR(DecodeSmallGraph(r, &m->pattern));
  uint64_t code_size = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&code_size));
  if (code_size > r->remaining()) {
    return Status::Corruption("labeled motif code length out of range");
  }
  m->code.assign(static_cast<size_t>(code_size), 0);
  for (uint8_t& b : m->code) LAMO_RETURN_IF_ERROR(r->GetU8(&b));
  uint64_t scheme_size = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&scheme_size));
  if (scheme_size > SmallGraph::kMaxVertices) {
    return Status::Corruption("labeled motif scheme size out of range");
  }
  m->scheme.assign(static_cast<size_t>(scheme_size), {});
  for (LabelSet& set : m->scheme) {
    uint64_t set_size = 0;
    LAMO_RETURN_IF_ERROR(r->GetU64(&set_size));
    if (set_size > r->remaining()) {
      return Status::Corruption("labeled motif label-set size out of range");
    }
    set.assign(static_cast<size_t>(set_size), 0);
    for (TermId& t : set) LAMO_RETURN_IF_ERROR(r->GetU32(&t));
  }
  uint64_t num_occurrences = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&num_occurrences));
  m->occurrences.clear();
  for (uint64_t i = 0; i < num_occurrences; ++i) {
    uint64_t num_proteins = 0;
    LAMO_RETURN_IF_ERROR(r->GetU64(&num_proteins));
    if (num_proteins > SmallGraph::kMaxVertices) {
      return Status::Corruption("labeled occurrence size out of range");
    }
    MotifOccurrence occ;
    occ.proteins.assign(static_cast<size_t>(num_proteins), 0);
    for (VertexId& v : occ.proteins) LAMO_RETURN_IF_ERROR(r->GetU32(&v));
    m->occurrences.push_back(std::move(occ));
  }
  uint64_t frequency = 0;
  LAMO_RETURN_IF_ERROR(r->GetU64(&frequency));
  m->frequency = static_cast<size_t>(frequency);
  LAMO_RETURN_IF_ERROR(r->GetDouble(&m->uniqueness));
  LAMO_RETURN_IF_ERROR(r->GetDouble(&m->strength));
  return Status::OK();
}

}  // namespace lamo
