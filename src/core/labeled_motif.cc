#include "core/labeled_motif.h"

#include <map>

namespace lamo {

std::string LabeledMotif::SchemeToString(const Ontology& ontology) const {
  std::string out = "[";
  for (size_t i = 0; i < scheme.size(); ++i) {
    if (i > 0) out += ", ";
    out += LabelSetToString(ontology, scheme[i]);
  }
  out += "]";
  return out;
}

void ComputeMotifStrengths(std::vector<LabeledMotif>* motifs) {
  std::map<size_t, double> max_per_size;
  for (const LabeledMotif& m : *motifs) {
    const double raw = m.uniqueness * static_cast<double>(m.frequency);
    auto [it, inserted] = max_per_size.emplace(m.size(), raw);
    if (!inserted && raw > it->second) it->second = raw;
  }
  for (LabeledMotif& m : *motifs) {
    const double max_k = max_per_size[m.size()];
    const double raw = m.uniqueness * static_cast<double>(m.frequency);
    m.strength = max_k > 0.0 ? raw / max_k : 0.0;
  }
}

}  // namespace lamo
