#ifndef LAMO_CORE_ASSIGNMENT_H_
#define LAMO_CORE_ASSIGNMENT_H_

#include <vector>

namespace lamo {

/// Solves the square maximum-sum assignment problem: given an n x n score
/// matrix, finds a permutation `matching` (matching[row] = column) that
/// maximizes the total score, returning that total.
///
/// Used to pick the best pairing of symmetric vertices between two motif
/// occurrences (the max over pair(Ia, Ib) in Eq. 3 of the paper). The paper
/// enumerates all pairings, which is factorial in the orbit size; the
/// Hungarian algorithm gives the same optimum in O(n^3), which matters for
/// meso-scale motifs whose orbits can hold 10+ interchangeable vertices.
double MaxSumAssignment(const std::vector<std::vector<double>>& score,
                        std::vector<int>* matching);

/// Brute-force reference implementation (exhaustive over permutations), used
/// by tests to validate MaxSumAssignment and by the ablation bench to show
/// the paper's enumeration cost. Requires n <= 10.
double MaxSumAssignmentBruteForce(
    const std::vector<std::vector<double>>& score, std::vector<int>* matching);

}  // namespace lamo

#endif  // LAMO_CORE_ASSIGNMENT_H_
