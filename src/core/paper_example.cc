#include "core/paper_example.h"

#include <cmath>

#include "util/logging.h"

namespace lamo {
namespace {

constexpr int kNumTerms = 11;

// Direct annotation counts of Table 1, indexed by term (G01..G11).
constexpr size_t kDirectCounts[kNumTerms] = {0,  0,  20, 100, 70, 150,
                                             10, 25, 100, 90, 20};

// Closure counts of Table 1 ("annotated with t and its descendants"),
// validated at fixture construction.
constexpr size_t kClosureCounts[kNumTerms] = {585, 415, 475, 245, 280, 250,
                                              100, 135, 100, 90,  20};

}  // namespace

TermId PaperExample::term(const std::string& name) const {
  const TermId t = ontology.FindTerm(name);
  LAMO_CHECK(t != kInvalidTerm) << "unknown example term " << name;
  return t;
}

ProteinId PaperExample::protein(int one_based) const {
  LAMO_CHECK_GE(one_based, 1);
  LAMO_CHECK_LE(one_based, 22);
  return static_cast<ProteinId>(one_based - 1);
}

PaperExample MakePaperExample() {
  PaperExample ex;

  // --- Ontology (Figure 1, reconstructed; see header comment). ---
  OntologyBuilder builder;
  std::vector<TermId> g(kNumTerms + 1);  // g[1] = G01 ... g[11] = G11
  for (int i = 1; i <= kNumTerms; ++i) {
    g[i] = builder.AddTerm("G" + std::string(i < 10 ? "0" : "") +
                           std::to_string(i));
  }
  auto rel = [&](int child, int parent, RelationType r) {
    LAMO_CHECK(builder.AddRelation(g[child], g[parent], r).ok());
  };
  rel(2, 1, RelationType::kIsA);
  rel(3, 1, RelationType::kIsA);
  rel(4, 2, RelationType::kIsA);
  rel(5, 2, RelationType::kIsA);
  rel(5, 3, RelationType::kIsA);
  rel(6, 3, RelationType::kPartOf);
  rel(8, 3, RelationType::kIsA);
  rel(7, 4, RelationType::kIsA);
  rel(8, 4, RelationType::kIsA);
  rel(9, 5, RelationType::kPartOf);
  rel(10, 5, RelationType::kIsA);
  rel(11, 5, RelationType::kIsA);
  rel(9, 6, RelationType::kPartOf);
  rel(10, 7, RelationType::kIsA);
  rel(10, 8, RelationType::kIsA);
  rel(11, 8, RelationType::kIsA);
  auto built = builder.Build();
  LAMO_CHECK(built.ok()) << built.status().ToString();
  ex.ontology = std::move(built).value();

  // --- Genome: 585 proteins, one direct term each (Table 1 counts). ---
  size_t total = 0;
  for (int i = 1; i <= kNumTerms; ++i) total += kDirectCounts[i - 1];
  LAMO_CHECK_EQ(total, 585u);
  ex.genome = AnnotationTable(total);
  {
    ProteinId next = 0;
    for (int i = 1; i <= kNumTerms; ++i) {
      for (size_t c = 0; c < kDirectCounts[i - 1]; ++c) {
        LAMO_CHECK(ex.genome.Annotate(next++, g[i]).ok());
      }
    }
  }
  // Validate the closure counts against Table 1.
  const std::vector<size_t> closure = ex.genome.ClosureCounts(ex.ontology);
  for (int i = 1; i <= kNumTerms; ++i) {
    LAMO_CHECK_EQ(closure[g[i]], kClosureCounts[i - 1])
        << "closure count mismatch for G" << i;
  }
  ex.weights = TermWeights::Compute(ex.ontology, ex.genome);
  ex.informative = InformativeClasses::Compute(ex.ontology, ex.genome);

  // --- Motif g (Figure 2): 4-cycle v1-v2-v3-v4. ---
  ex.motif = SmallGraph(4);
  ex.motif.AddEdge(0, 1);
  ex.motif.AddEdge(1, 2);
  ex.motif.AddEdge(2, 3);
  ex.motif.AddEdge(3, 0);

  // --- PPI network G (Figure 3): P1..P22 (vertices 0..21). ---
  GraphBuilder ppi(22);
  auto edge = [&](int a, int b) {
    LAMO_CHECK(ppi.AddEdge(static_cast<VertexId>(a - 1),
                           static_cast<VertexId>(b - 1))
                   .ok());
  };
  // Occurrence cycles (chordless 4-cycles).
  edge(1, 2), edge(2, 3), edge(3, 4), edge(4, 1);        // o1
  edge(12, 9), edge(9, 10), edge(10, 11), edge(11, 12);  // o2
  edge(5, 6), edge(6, 7), edge(7, 8), edge(8, 5);        // o3
  edge(13, 14), edge(14, 15), edge(15, 16), edge(16, 13);  // o4
  // Background proteins P17..P22, attached as bridges (no new cycles).
  edge(17, 1), edge(18, 17), edge(19, 18), edge(20, 19), edge(21, 20),
      edge(22, 21);
  edge(22, 9), edge(20, 5), edge(19, 13);
  ex.ppi = ppi.Build();

  // --- Occurrences in motif vertex order [v1, v2, v3, v4] (Figure 4). ---
  auto p = [](int one_based) { return static_cast<VertexId>(one_based - 1); };
  ex.occurrences = {
      {p(1), p(2), p(3), p(4)},
      {p(12), p(9), p(10), p(11)},
      {p(5), p(6), p(7), p(8)},
      {p(13), p(14), p(15), p(16)},
  };

  // --- Protein annotations (Table 2); P17..P22 unannotated. ---
  ex.protein_annotations = AnnotationTable(22);
  auto annotate = [&](int protein_1b, std::initializer_list<int> terms) {
    for (int t : terms) {
      LAMO_CHECK(ex.protein_annotations.Annotate(p(protein_1b), g[t]).ok());
    }
  };
  annotate(1, {4, 9, 10});
  annotate(2, {3, 10});
  annotate(3, {8});
  annotate(4, {7, 9});
  annotate(5, {3});
  annotate(6, {10});
  annotate(7, {3});
  annotate(8, {5});
  annotate(9, {10, 11});
  annotate(10, {3, 5, 7});
  annotate(11, {5});
  annotate(12, {9});
  annotate(13, {11});
  annotate(14, {4, 5});
  annotate(15, {4});
  annotate(16, {4, 9});
  return ex;
}

}  // namespace lamo
