#include "core/parallel_labels.h"

#include <algorithm>
#include <set>

namespace lamo {
namespace {

std::vector<VertexId> SortedSet(const MotifOccurrence& occ) {
  std::vector<VertexId> sorted = occ.proteins;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::set<std::vector<VertexId>> OccurrenceSets(const LabeledMotif& lm) {
  std::set<std::vector<VertexId>> sets;
  for (const MotifOccurrence& occ : lm.occurrences) {
    sets.insert(SortedSet(occ));
  }
  return sets;
}

size_t OverlapSize(const std::set<std::vector<VertexId>>& a,
                   const std::set<std::vector<VertexId>>& b) {
  size_t overlap = 0;
  for (const auto& set : a) {
    if (b.count(set) != 0) ++overlap;
  }
  return overlap;
}

}  // namespace

std::vector<ParallelLabeledMotif> CombineBranchLabels(
    const std::array<std::vector<LabeledMotif>, 3>& per_branch,
    size_t min_common_occurrences) {
  std::vector<ParallelLabeledMotif> results;

  // Seed from the first branch that has any labeled motifs; extend greedily
  // with the best-overlapping labeled motif of each later branch.
  for (size_t seed_branch = 0; seed_branch < per_branch.size();
       ++seed_branch) {
    for (const LabeledMotif& seed : per_branch[seed_branch]) {
      ParallelLabeledMotif combined;
      combined.pattern = seed.pattern;
      combined.code = seed.code;
      combined.schemes[seed_branch] = seed.scheme;
      combined.occurrences = seed.occurrences;
      std::set<std::vector<VertexId>> common = OccurrenceSets(seed);

      for (size_t branch = seed_branch + 1; branch < per_branch.size();
           ++branch) {
        const LabeledMotif* best = nullptr;
        size_t best_overlap = 0;
        std::set<std::vector<VertexId>> best_sets;
        for (const LabeledMotif& candidate : per_branch[branch]) {
          if (candidate.code != seed.code) continue;
          std::set<std::vector<VertexId>> sets = OccurrenceSets(candidate);
          const size_t overlap = OverlapSize(common, sets);
          if (overlap > best_overlap) {
            best_overlap = overlap;
            best = &candidate;
            best_sets = std::move(sets);
          }
        }
        if (best == nullptr || best_overlap < min_common_occurrences) {
          continue;
        }
        combined.schemes[branch] = best->scheme;
        std::set<std::vector<VertexId>> intersection;
        for (const auto& set : common) {
          if (best_sets.count(set) != 0) intersection.insert(set);
        }
        common = std::move(intersection);
      }

      if (combined.num_branches() < 2) continue;
      if (common.size() < min_common_occurrences) continue;
      // Keep the seed-aligned occurrences whose vertex set survived.
      std::vector<MotifOccurrence> kept;
      for (const MotifOccurrence& occ : seed.occurrences) {
        if (common.count(SortedSet(occ)) != 0) kept.push_back(occ);
      }
      combined.occurrences = std::move(kept);
      combined.frequency = combined.occurrences.size();
      results.push_back(std::move(combined));
    }
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const ParallelLabeledMotif& a,
                      const ParallelLabeledMotif& b) {
                     return a.frequency > b.frequency;
                   });
  return results;
}

}  // namespace lamo
