#ifndef LAMO_CORE_PARALLEL_LABELS_H_
#define LAMO_CORE_PARALLEL_LABELS_H_

#include <array>
#include <optional>
#include <vector>

#include "core/labeled_motif.h"
#include "ontology/ontology.h"

namespace lamo {

/// A network motif labeled in several GO branches at once — Figure 7's g3:
/// functional labels alongside cellular-location labels on the same
/// occurrences, revealing e.g. where a functional complex operates.
struct ParallelLabeledMotif {
  /// The shared unlabeled pattern.
  SmallGraph pattern;
  std::vector<uint8_t> code;
  /// Per GO branch (function/process/component): the scheme, if that branch
  /// contributed one for this occurrence population.
  std::array<std::optional<LabelProfile>, 3> schemes;
  /// Occurrences conforming to every present scheme (aligned to the first
  /// contributing branch's vertex order).
  std::vector<MotifOccurrence> occurrences;
  /// |occurrences|.
  size_t frequency = 0;

  /// Number of branches with a scheme.
  size_t num_branches() const {
    size_t n = 0;
    for (const auto& s : schemes) {
      if (s.has_value()) ++n;
    }
    return n;
  }
};

/// Combines per-branch labeling results for the same motif universe into
/// parallel-labeled motifs: labeled motifs with identical canonical codes
/// whose conforming occurrence sets overlap in at least
/// `min_common_occurrences` vertex sets are fused, keeping the intersection
/// as the parallel motif's occurrences. Entries of `per_branch` are indexed
/// by GoBranch; empty vectors are allowed. Only fusions covering at least
/// two branches are returned, ordered by descending frequency.
std::vector<ParallelLabeledMotif> CombineBranchLabels(
    const std::array<std::vector<LabeledMotif>, 3>& per_branch,
    size_t min_common_occurrences);

}  // namespace lamo

#endif  // LAMO_CORE_PARALLEL_LABELS_H_
