#include "core/label_profile.h"

#include <algorithm>

namespace lamo {

void InsertLabel(LabelSet* set, TermId t) {
  auto it = std::lower_bound(set->begin(), set->end(), t);
  if (it == set->end() || *it != t) set->insert(it, t);
}

double VertexSimilarity(const TermSimilarity& st, const LabelSet& a,
                        const LabelSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.5;
  double product = 1.0;
  for (TermId ta : a) {
    for (TermId tb : b) {
      product *= 1.0 - st.Similarity(ta, tb);
      if (product == 0.0) return 1.0;
    }
  }
  return 1.0 - product;
}

LabelSet LeastGeneralLabels(const TermSimilarity& st, const LabelSet& a,
                            const LabelSet& b,
                            const std::vector<bool>* candidate_filter) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  LabelSet all;
  for (TermId ta : a) {
    for (TermId tb : b) {
      const TermId lcp = st.LowestCommonParent(ta, tb);
      if (lcp != kInvalidTerm) InsertLabel(&all, lcp);
    }
  }
  if (candidate_filter == nullptr) return all;
  LabelSet filtered;
  for (TermId t : all) {
    if ((*candidate_filter)[t]) filtered.push_back(t);
  }
  return filtered.empty() ? all : filtered;
}

bool LabelsConform(const Ontology& ontology, const LabelSet& scheme_labels,
                   const LabelSet& protein_terms) {
  if (scheme_labels.empty() || protein_terms.empty()) return true;
  for (TermId label : scheme_labels) {
    bool generalizes_some = false;
    for (TermId t : protein_terms) {
      if (ontology.IsAncestorOrEqual(label, t)) {
        generalizes_some = true;
        break;
      }
    }
    if (!generalizes_some) return false;
  }
  return true;
}

std::string LabelSetToString(const Ontology& ontology, const LabelSet& set) {
  if (set.empty()) return "{unknown}";
  std::string out = "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out += ", ";
    out += ontology.TermName(set[i]);
  }
  out += "}";
  return out;
}

}  // namespace lamo
