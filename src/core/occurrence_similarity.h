#ifndef LAMO_CORE_OCCURRENCE_SIMILARITY_H_
#define LAMO_CORE_OCCURRENCE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "core/label_profile.h"
#include "graph/small_graph.h"
#include "ontology/similarity.h"

namespace lamo {

/// Computes the occurrence similarity SO (Eq. 3 of the paper) for a fixed
/// network motif:
///
///   SO(oi, oj) = (1/|V|) * sum over symmetric vertex sets I of
///                max over pairings of I's vertices of sum SV(v_alpha, v_beta)
///
/// Symmetric vertex sets are the orbits of the motif's automorphism group
/// (computed exactly; the paper used the PIGALE heuristic). Singleton orbits
/// pair with themselves; within a larger orbit the best pairing is found
/// with the Hungarian algorithm instead of the paper's factorial
/// enumeration.
class OccurrenceSimilarity {
 public:
  /// How the symmetric vertex sets are derived from the motif.
  enum class SymmetryMode {
    /// Twin classes (default): every independent within-set permutation is a
    /// true automorphism, so Eq. 3's per-set maximization is sound. This is
    /// the paper's semantics (its Figure-2 example sets are twin classes).
    kTwinSets,
    /// Full automorphism orbits: a looser relaxation (rotational symmetry
    /// also pools vertices) that can overestimate SO; kept as an ablation.
    kFullOrbits,
  };

  /// `st` must outlive this object; the motif's orbits are precomputed here.
  OccurrenceSimilarity(const TermSimilarity& st, const SmallGraph& motif,
                       SymmetryMode mode = SymmetryMode::kTwinSets);

  /// Variant with explicitly supplied symmetric sets (must partition
  /// 0..num_vertices-1). Used for directed motifs, whose symmetries are
  /// computed on the digraph rather than the undirected pattern.
  OccurrenceSimilarity(const TermSimilarity& st, size_t num_vertices,
                       std::vector<std::vector<uint32_t>> orbits);

  OccurrenceSimilarity(const OccurrenceSimilarity&) = delete;
  OccurrenceSimilarity& operator=(const OccurrenceSimilarity&) = delete;

  /// SO between two label profiles aligned to the motif's canonical vertex
  /// order. If `best_pairing` is non-null it receives the permutation pi of
  /// motif positions realizing the maximum: position p of profile `a`
  /// corresponds to position pi[p] of profile `b` (identity outside
  /// symmetric sets).
  double Score(const LabelProfile& a, const LabelProfile& b,
               std::vector<uint32_t>* best_pairing = nullptr) const;

  /// All automorphism orbits of the motif (including singletons).
  const std::vector<std::vector<uint32_t>>& orbits() const { return orbits_; }

  /// Number of motif vertices.
  size_t num_vertices() const { return num_vertices_; }

 private:
  const TermSimilarity& st_;
  size_t num_vertices_;
  std::vector<std::vector<uint32_t>> orbits_;
};

}  // namespace lamo

#endif  // LAMO_CORE_OCCURRENCE_SIMILARITY_H_
