#ifndef LAMO_CORE_PAPER_EXAMPLE_H_
#define LAMO_CORE_PAPER_EXAMPLE_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/small_graph.h"
#include "ontology/annotation.h"
#include "ontology/informative.h"
#include "ontology/ontology.h"
#include "ontology/weights.h"

namespace lamo {

/// The worked example of the paper (Figures 1-4, Tables 1-4), reconstructed
/// as a reusable fixture for tests and the table-regeneration benches.
///
/// The ontology is the 11-term DAG G01..G11. The paper's Figure 1 and
/// Table 1 are mutually inconsistent in one place (the text claims G05 is a
/// common parent of G08 and G09 while Table 1's closure counts forbid it);
/// we reconstruct the unique DAG consistent with *all* of Table 1's closure
/// counts, and Table 1 is then reproduced exactly:
///
///   G01 -> {G02, G03};  G02 -> {G04, G05};  G03 -> {G05, G06, G08};
///   G04 -> {G07, G08};  G05 -> {G09, G10, G11};  G06 -> {G09};
///   G07 -> {G10};       G08 -> {G10, G11}
///
/// (with G06->G03 and G09->G05 as part-of, all other edges is-a, matching
/// the figure's annotations).
struct PaperExample {
  /// The 11-term ontology.
  Ontology ontology;
  /// A genome of 585 single-term proteins realizing Table 1's direct counts.
  AnnotationTable genome;
  /// Lord weights over the genome (Table 1's w(t) column).
  TermWeights weights;
  /// Informative classes with the paper's threshold of 30: informative =
  /// {G04, G05, G06, G09, G10}, border = {G04, G05, G06}.
  InformativeClasses informative;
  /// The small PPI network G of Figure 3 (22 proteins P1..P22, indices 0-21)
  /// containing four occurrences of the motif.
  Graph ppi;
  /// GO annotations of P1..P16 per Table 2 (P17..P22 unannotated).
  AnnotationTable protein_annotations;
  /// The network motif g of Figure 2: the 4-cycle v1-v2-v3-v4 with symmetric
  /// vertex sets {v1, v3} and {v2, v4}.
  SmallGraph motif;
  /// The four occurrences o1..o4 in motif vertex order [v1, v2, v3, v4]:
  /// o1 = (P1, P2, P3, P4), o2 = (P12, P9, P10, P11),
  /// o3 = (P5, P6, P7, P8), o4 = (P13, P14, P15, P16).
  std::vector<std::vector<VertexId>> occurrences;

  /// Term id of "G01".."G11".
  TermId term(const std::string& name) const;
  /// Protein id of the 1-based paper name: protein(1) == P1 == vertex 0.
  ProteinId protein(int one_based) const;
};

/// Builds the fixture. Aborts on internal inconsistency (checked invariants).
PaperExample MakePaperExample();

}  // namespace lamo

#endif  // LAMO_CORE_PAPER_EXAMPLE_H_
