#include "core/lamofinder.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <optional>
#include <set>

#include "core/assignment.h"
#include "core/occurrence_similarity.h"
#include "motif/stage_checkpoint.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/fault.h"
#include "util/logging.h"

namespace lamo {
namespace {

/// SO-matrix cells filled (initial pairwise stage plus row refreshes).
const size_t kObsSoCells = ObsCounterId("lamofinder.so_cells");
/// Agglomerative merges performed across all motifs.
const size_t kObsClusterMerges = ObsCounterId("lamofinder.cluster_merges");
/// Labeling schemes surviving dedup + conformance + subsumption.
const size_t kObsSchemesEmitted = ObsCounterId("lamofinder.schemes_emitted");
/// Motifs that produced at least one labeled variant.
const size_t kObsMotifsLabeled = ObsCounterId("lamofinder.motifs_labeled");
/// Per-SO-cell latency (initial matrix fill + row refreshes). Histogram
/// only: one cell is far below useful trace-event resolution.
const size_t kHistSoCellUs = ObsHistogramId("lamofinder.so_cell_us");
/// Per-merge latency: label generalization + member realignment + the row
/// refresh that follows. args = (surviving cluster, absorbed cluster).
const size_t kHistClusterMergeUs = ObsHistogramId("lamofinder.cluster_merge_us");
const size_t kSpanClusterMerge = ObsSpanId("lamofinder.cluster_merge");
/// One span per motif labeled in LabelAll; arg = motif index.
const size_t kSpanLabelMotif = ObsSpanId("lamofinder.label_motif");

/// Crash point, hit once per motif group in LabelAll (fault.h).
const size_t kFpLabelMotif = FaultPointId("label.motif");

// One cluster of occurrences during agglomeration.
struct Cluster {
  LabelProfile profile;                    // generalized labels per vertex
  std::vector<MotifOccurrence> members;    // aligned occurrences
  bool saturated = false;
  bool alive = true;
};

// Fraction of vertices with at least one border-informative label.
double BorderFraction(const InformativeClasses& informative,
                      const LabelProfile& profile) {
  if (profile.empty()) return 0.0;
  size_t border_vertices = 0;
  for (const LabelSet& labels : profile) {
    for (TermId t : labels) {
      if (informative.IsBorderInformative(t)) {
        ++border_vertices;
        break;
      }
    }
  }
  return static_cast<double>(border_vertices) /
         static_cast<double>(profile.size());
}

// Keeps the `cap` most informative (lowest-weight) labels.
void CapLabels(const TermWeights& weights, size_t cap, LabelSet* labels) {
  if (cap == 0 || labels->size() <= cap) return;
  std::sort(labels->begin(), labels->end(), [&](TermId a, TermId b) {
    if (weights.Weight(a) != weights.Weight(b)) {
      return weights.Weight(a) < weights.Weight(b);
    }
    return a < b;
  });
  labels->resize(cap);
  std::sort(labels->begin(), labels->end());
}

// Serialized identity of a labeling scheme, used to deduplicate emissions.
std::vector<TermId> SchemeKey(const LabelProfile& scheme) {
  std::vector<TermId> key;
  for (const LabelSet& labels : scheme) {
    key.insert(key.end(), labels.begin(), labels.end());
    key.push_back(kInvalidTerm);  // separator
  }
  return key;
}

}  // namespace

LaMoFinder::LaMoFinder(const Ontology& ontology, const TermWeights& weights,
                       const InformativeClasses& informative,
                       const AnnotationTable& annotations)
    : ontology_(ontology),
      weights_(weights),
      informative_(informative),
      annotations_(annotations),
      st_(ontology, weights) {
  candidate_filter_.resize(ontology.num_terms());
  for (TermId t = 0; t < ontology.num_terms(); ++t) {
    candidate_filter_[t] = informative.IsLabelCandidate(t);
  }
}

std::vector<MotifOccurrence> LaMoFinder::ConformingOccurrences(
    const Motif& motif, const LabelProfile& scheme) const {
  std::vector<MotifOccurrence> conforming;
  const size_t k = motif.pattern.num_vertices();
  std::optional<OccurrenceSimilarity> so_storage;
  if (motif.symmetric_sets_override.empty()) {
    so_storage.emplace(st_, motif.pattern);
  } else {
    so_storage.emplace(st_, k, motif.symmetric_sets_override);
  }
  const OccurrenceSimilarity& so = *so_storage;
  for (const MotifOccurrence& occ : motif.occurrences) {
    // Per symmetric set, find a pairing in which every scheme position's
    // labels conform to the annotations of the protein assigned to it.
    // Feasibility per orbit is a perfect matching on the boolean
    // conformance matrix, found via max-sum assignment.
    std::vector<uint32_t> alignment(k);
    std::iota(alignment.begin(), alignment.end(), 0);
    bool feasible = true;
    for (const auto& orbit : so.orbits()) {
      if (orbit.size() == 1) {
        const VertexId protein = occ.proteins[orbit[0]];
        if (!LabelsConform(ontology_, scheme[orbit[0]],
                           LabelSet(annotations_.TermsOf(protein).begin(),
                                    annotations_.TermsOf(protein).end()))) {
          feasible = false;
          break;
        }
        continue;
      }
      std::vector<std::vector<double>> score(
          orbit.size(), std::vector<double>(orbit.size(), 0.0));
      for (size_t i = 0; i < orbit.size(); ++i) {
        for (size_t j = 0; j < orbit.size(); ++j) {
          const VertexId protein = occ.proteins[orbit[j]];
          const auto terms = annotations_.TermsOf(protein);
          score[i][j] = LabelsConform(ontology_, scheme[orbit[i]],
                                      LabelSet(terms.begin(), terms.end()))
                            ? 1.0
                            : 0.0;
        }
      }
      std::vector<int> matching;
      const double total = MaxSumAssignment(score, &matching);
      if (total + 0.5 < static_cast<double>(orbit.size())) {
        feasible = false;
        break;
      }
      for (size_t i = 0; i < orbit.size(); ++i) {
        alignment[orbit[i]] = orbit[matching[i]];
      }
    }
    if (!feasible) continue;
    MotifOccurrence aligned;
    aligned.proteins.resize(k);
    for (size_t pos = 0; pos < k; ++pos) {
      aligned.proteins[pos] = occ.proteins[alignment[pos]];
    }
    conforming.push_back(std::move(aligned));
  }
  return conforming;
}

std::vector<LabeledMotif> LaMoFinder::LabelMotif(
    const Motif& motif, const LaMoFinderConfig& config) const {
  std::vector<LabeledMotif> results;
  const size_t k = motif.pattern.num_vertices();
  if (k == 0 || motif.occurrences.empty()) return results;

  // Deterministic strided sample of the occurrence set (caps the O(|D|^2)
  // pairwise-similarity stage).
  std::vector<const MotifOccurrence*> sample;
  if (config.max_occurrences != 0 &&
      motif.occurrences.size() > config.max_occurrences) {
    const double stride = static_cast<double>(motif.occurrences.size()) /
                          static_cast<double>(config.max_occurrences);
    for (size_t i = 0; i < config.max_occurrences; ++i) {
      sample.push_back(
          &motif.occurrences[static_cast<size_t>(i * stride)]);
    }
  } else {
    for (const auto& occ : motif.occurrences) sample.push_back(&occ);
  }

  // Initial clusters: one per occurrence, labeled with the proteins' direct
  // annotations (line 4 of Algorithm 1: C <- D).
  std::vector<Cluster> clusters;
  clusters.reserve(sample.size());
  for (const MotifOccurrence* occ : sample) {
    Cluster c;
    c.profile.resize(k);
    c.members.push_back(*occ);
    for (size_t pos = 0; pos < k; ++pos) {
      const auto terms = annotations_.TermsOf(occ->proteins[pos]);
      c.profile[pos].assign(terms.begin(), terms.end());
    }
    c.saturated =
        BorderFraction(informative_, c.profile) > config.border_fraction;
    clusters.push_back(std::move(c));
  }

  std::optional<OccurrenceSimilarity> so_storage;
  if (motif.symmetric_sets_override.empty()) {
    so_storage.emplace(st_, motif.pattern);
  } else {
    so_storage.emplace(st_, k, motif.symmetric_sets_override);
  }
  const OccurrenceSimilarity& so = *so_storage;

  // Pairwise similarity matrix over live clusters: the O(|D|^2) stage of
  // Eq. 3. Rows are distributed over the parallel runtime; every (i, j)
  // entry is written exactly once (row i owns the cells (i, j) and (j, i)
  // for j > i), and SO is a pure function of the two profiles, so the
  // matrix is identical for any thread count. Row costs shrink with i,
  // hence the small grain for dynamic balance.
  const size_t n = clusters.size();
  std::vector<std::vector<double>> sim(n, std::vector<double>(n, 0.0));
  // Scores one SO cell, feeding the per-cell latency histogram when a sink
  // is installed (a cell is too fine-grained to trace as a span).
  const auto score_cell = [&](const LabelProfile& a, const LabelProfile& b) {
    if ((ObsActiveMask() & kObsSinkBit) == 0) return so.Score(a, b);
    const auto t0 = std::chrono::steady_clock::now();
    const double s = so.Score(a, b);
    ObsObserve(kHistSoCellUs,
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count()));
    return s;
  };
  ParallelFor(0, n, 4, [&](size_t i) {
    if (n > i + 1) ObsAdd(kObsSoCells, n - i - 1);
    for (size_t j = i + 1; j < n; ++j) {
      sim[i][j] = sim[j][i] =
          score_cell(clusters[i].profile, clusters[j].profile);
    }
  });

  std::set<std::vector<TermId>> emitted;
  auto try_emit = [&](const Cluster& c) {
    if (c.members.size() < config.sigma) return;
    // The problem definition restricts labels to border informative FCs and
    // their descendants: labels that had to fall back to more general terms
    // during merging are dropped at emission, leaving "unknown" vertices.
    LabelProfile scheme(k);
    size_t labeled_vertices = 0;
    for (size_t pos = 0; pos < k; ++pos) {
      for (TermId t : c.profile[pos]) {
        if (candidate_filter_[t]) scheme[pos].push_back(t);
      }
      if (!scheme[pos].empty()) ++labeled_vertices;
    }
    // A scheme that labels under half of its vertices is uninformative: it
    // conforms to nearly everything and predicts nothing.
    if (2 * labeled_vertices < k || labeled_vertices == 0) return;
    const std::vector<TermId> key = SchemeKey(scheme);
    if (!emitted.insert(key).second) return;
    // The labeled motif's frequency is the number of occurrences of g in G
    // that conform to the scheme (Section 5.1), counted over the *full*
    // occurrence set.
    std::vector<MotifOccurrence> conforming =
        ConformingOccurrences(motif, scheme);
    if (conforming.size() < config.sigma) return;
    LabeledMotif labeled;
    labeled.pattern = motif.pattern;
    labeled.code = motif.code;
    labeled.scheme = std::move(scheme);
    labeled.frequency = conforming.size();
    labeled.occurrences = std::move(conforming);
    labeled.uniqueness = motif.uniqueness >= 0.0 ? motif.uniqueness : 1.0;
    results.push_back(std::move(labeled));
  };

  // Agglomeration: repeatedly merge the most similar pair in which at least
  // one side is unsaturated (saturated clusters no longer seek merges,
  // Algorithm 2 line 5).
  while (true) {
    double best_sim = -1.0;
    int best_i = -1;
    int best_j = -1;
    for (size_t i = 0; i < n; ++i) {
      if (!clusters[i].alive) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!clusters[j].alive) continue;
        if (clusters[i].saturated && clusters[j].saturated) continue;
        if (sim[i][j] > best_sim) {
          best_sim = sim[i][j];
          best_i = static_cast<int>(i);
          best_j = static_cast<int>(j);
        }
      }
    }
    if (best_i < 0 || best_sim < config.min_similarity) break;

    // Covers generalization, realignment, and the row refresh below (the
    // timer closes at the end of this loop iteration).
    const ScopedItemTimer merge_timer(kSpanClusterMerge, kHistClusterMergeUs,
                                      static_cast<uint64_t>(best_i),
                                      static_cast<uint64_t>(best_j), 2);
    ObsIncrement(kObsClusterMerges);
    Cluster& a = clusters[best_i];
    Cluster& b = clusters[best_j];
    std::vector<uint32_t> pairing;
    so.Score(a.profile, b.profile, &pairing);

    // Merge b into a under the best symmetric-vertex pairing: position pos
    // of a corresponds to position pairing[pos] of b.
    LabelProfile merged(k);
    for (size_t pos = 0; pos < k; ++pos) {
      merged[pos] = LeastGeneralLabels(st_, a.profile[pos],
                                       b.profile[pairing[pos]],
                                       &candidate_filter_);
      CapLabels(weights_, config.max_labels_per_vertex, &merged[pos]);
    }
    a.profile = std::move(merged);
    for (const MotifOccurrence& occ : b.members) {
      MotifOccurrence realigned;
      realigned.proteins.resize(k);
      for (size_t pos = 0; pos < k; ++pos) {
        realigned.proteins[pos] = occ.proteins[pairing[pos]];
      }
      a.members.push_back(std::move(realigned));
    }
    b.alive = false;
    a.saturated =
        BorderFraction(informative_, a.profile) > config.border_fraction;

    // The merged cluster's labeling scheme becomes a candidate once
    // saturated (its labels are as general as allowed).
    if (config.emit_intermediate && a.saturated) try_emit(a);

    // Refresh similarities of the merged cluster.
    for (size_t j = 0; j < n; ++j) {
      if (!clusters[j].alive || j == static_cast<size_t>(best_i)) continue;
      ObsIncrement(kObsSoCells);
      sim[best_i][j] = sim[j][best_i] =
          score_cell(a.profile, clusters[j].profile);
    }
  }

  // Final partition: every remaining cluster with >= sigma occurrences
  // contributes its scheme (Algorithm 1 lines 14-18).
  for (const Cluster& c : clusters) {
    if (c.alive) try_emit(c);
  }

  // Subsumption pruning: intermediate emissions can produce nested variants
  // of one scheme (per-vertex label subsets) that conform to exactly the
  // same occurrences. Keep only the most specific representative of each
  // such chain — the least general description, in the paper's sense.
  auto subsumes = [](const LabelProfile& specific,
                     const LabelProfile& general) {
    for (size_t pos = 0; pos < specific.size(); ++pos) {
      if (!std::includes(specific[pos].begin(), specific[pos].end(),
                         general[pos].begin(), general[pos].end())) {
        return false;
      }
    }
    return true;
  };
  std::vector<bool> dropped(results.size(), false);
  for (size_t i = 0; i < results.size(); ++i) {
    for (size_t j = 0; j < results.size(); ++j) {
      if (i == j || dropped[i] || dropped[j]) continue;
      if (results[i].frequency != results[j].frequency) continue;
      // j's scheme is a per-vertex subset of i's: same conforming set,
      // strictly less information -> drop j.
      if (subsumes(results[i].scheme, results[j].scheme)) dropped[j] = true;
    }
  }
  std::vector<LabeledMotif> pruned;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!dropped[i]) pruned.push_back(std::move(results[i]));
  }
  ObsAdd(kObsSchemesEmitted, pruned.size());
  if (!pruned.empty()) ObsIncrement(kObsMotifsLabeled);
  return pruned;
}

namespace {

uint64_t LabelFingerprint(const std::vector<Motif>& motifs,
                          const LaMoFinderConfig& config) {
  ByteWriter w;
  w.PutU64(config.sigma);
  w.PutDouble(config.border_fraction);
  w.PutDouble(config.min_similarity);
  w.PutU64(config.max_occurrences);
  w.PutU64(config.max_labels_per_vertex);
  w.PutU8(config.emit_intermediate ? 1 : 0);
  // The checkpoint stores progress keyed by motif index, so it is only
  // valid for this exact motif list.
  w.PutU64(motifs.size());
  for (const Motif& m : motifs) {
    w.PutString(std::string_view(reinterpret_cast<const char*>(m.code.data()),
                                 m.code.size()));
    w.PutU64(m.frequency);
    w.PutU64(m.occurrences.size());
    w.PutDouble(m.uniqueness);
  }
  return Fnv1a64(w.bytes());
}

std::string EncodeLabelState(size_t next_motif,
                             const std::vector<LabeledMotif>& labeled) {
  ByteWriter w;
  w.PutU64(next_motif);
  w.PutU64(labeled.size());
  for (const LabeledMotif& lm : labeled) EncodeLabeledMotif(lm, &w);
  return w.TakeBytes();
}

Status DecodeLabelState(std::string_view payload, size_t* next_motif,
                        std::vector<LabeledMotif>* labeled) {
  ByteReader r(payload);
  uint64_t next = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&next));
  *next_motif = static_cast<size_t>(next);
  uint64_t count = 0;
  LAMO_RETURN_IF_ERROR(r.GetU64(&count));
  labeled->clear();
  for (uint64_t i = 0; i < count; ++i) {
    LabeledMotif lm;
    LAMO_RETURN_IF_ERROR(DecodeLabeledMotif(&r, &lm));
    labeled->push_back(std::move(lm));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in label state");
  return Status::OK();
}

}  // namespace

std::vector<LabeledMotif> LaMoFinder::LabelAll(
    const std::vector<Motif>& motifs, const LaMoFinderConfig& config) const {
  // One task per motif, results concatenated in motif order — identical to
  // the serial loop. The shared TermSimilarity memo is sharded-lock safe;
  // everything else LabelMotif touches is per-call. When only one motif is
  // in flight the inner similarity-matrix loop parallelizes instead (the
  // runtime rejects nested fan-out, so the two levels never compete).
  //
  // With checkpointing on, motifs are labeled in index-ordered groups of
  // `every`; a resumed run appends where the checkpoint left off, and LMS
  // strengths are computed once at the end over the full result, so resumed
  // output is byte-identical to an uninterrupted run.
  const StageCheckpointer ckpt(config.checkpoint, "label",
                               LabelFingerprint(motifs, config));
  std::vector<LabeledMotif> all;
  size_t next_motif = 0;
  std::string payload;
  if (ckpt.TryLoad(&payload)) {
    size_t restored_motif = 0;
    std::vector<LabeledMotif> restored;
    const Status status =
        DecodeLabelState(payload, &restored_motif, &restored);
    if (status.ok() && restored_motif <= motifs.size()) {
      all = std::move(restored);
      next_motif = restored_motif;
    } else {
      ckpt.RecordDecodeFailure();
    }
  }
  ckpt.RecordChunks(motifs.size(), next_motif);
  const size_t motifs_per_group =
      ckpt.enabled() ? std::max<size_t>(1, config.checkpoint.every)
                     : std::max<size_t>(1, motifs.size());
  for (size_t mlo = next_motif; mlo < motifs.size();
       mlo += motifs_per_group) {
    FaultHit(kFpLabelMotif);
    const size_t mhi = std::min(motifs.size(), mlo + motifs_per_group);
    std::vector<std::vector<LabeledMotif>> per_motif =
        ParallelMap(mhi - mlo, 1, [&](size_t i) {
          const ScopedSpan span(kSpanLabelMotif, mlo + i);
          return LabelMotif(motifs[mlo + i], config);
        });
    for (auto& labeled : per_motif) {
      for (auto& lm : labeled) all.push_back(std::move(lm));
    }
    if (ckpt.enabled()) ckpt.Save(EncodeLabelState(mhi, all));
  }
  ComputeMotifStrengths(&all);
  return all;
}

}  // namespace lamo
