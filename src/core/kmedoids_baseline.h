#ifndef LAMO_CORE_KMEDOIDS_BASELINE_H_
#define LAMO_CORE_KMEDOIDS_BASELINE_H_

#include <cstdint>
#include <vector>

#include "core/lamofinder.h"
#include "util/random.h"

namespace lamo {

/// Configuration of the k-means-style baseline clusterer.
struct KMedoidsConfig {
  /// Number of clusters; 0 derives k = max(1, |D| / sigma).
  size_t k = 0;
  /// sigma: minimum cluster size for a scheme to be emitted.
  size_t sigma = 10;
  /// Lloyd-style iterations.
  size_t max_iterations = 20;
  /// Seed for medoid initialization.
  uint64_t seed = 7;
  /// Same occurrence cap as LaMoFinderConfig.
  size_t max_occurrences = 600;
  /// Same per-vertex label cap as LaMoFinderConfig.
  size_t max_labels_per_vertex = 6;
};

/// The non-overlapping clustering baseline the paper argues against
/// (Figure 5): k-medoids over the occurrence similarity SO (k-means proper
/// is undefined for this non-Euclidean similarity; medoids are its standard
/// stand-in). Occurrences are partitioned into disjoint clusters, each
/// cluster derives its least general labeling scheme, and clusters of at
/// least sigma occurrences are emitted.
///
/// Because the partition is disjoint, overlapping labeling schemes cannot be
/// found — the ablation bench (bench_fig5) quantifies the schemes this
/// misses relative to LaMoFinder's hierarchical clustering.
std::vector<LabeledMotif> LabelMotifKMedoids(
    const Ontology& ontology, const TermWeights& weights,
    const InformativeClasses& informative, const AnnotationTable& annotations,
    const Motif& motif, const KMedoidsConfig& config);

}  // namespace lamo

#endif  // LAMO_CORE_KMEDOIDS_BASELINE_H_
