#ifndef LAMO_SYNTH_GO_GENERATOR_H_
#define LAMO_SYNTH_GO_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "ontology/ontology.h"
#include "util/random.h"

namespace lamo {

/// Shape parameters of a synthetic GO branch.
struct GoGeneratorConfig {
  /// Total number of terms (root included).
  size_t num_terms = 150;
  /// Number of depth levels below the root. Real GO branches are 8-14 deep;
  /// the labeling algorithm only needs "deep enough to generalize several
  /// steps".
  size_t depth = 6;
  /// Probability that a non-root term gains one extra parent from the level
  /// above (GO terms frequently have multiple parents).
  double extra_parent_probability = 0.25;
  /// Fraction of relations that are part-of rather than is-a.
  double part_of_fraction = 0.2;
  /// Exact number of level-1 terms (the root's children). These double as
  /// the top functional categories for prediction (the paper evaluates on
  /// yeast's 13 top functions). 0 = proportional allocation.
  size_t first_level_terms = 13;
};

/// Generates a GO-like DAG: a single root, `depth` levels, each term with
/// one uniformly-chosen parent in the previous level plus occasional extra
/// parents (possibly skipping levels), mixing is-a and part-of relations.
/// Term names are "T0001".. so datasets serialize cleanly.
///
/// This substitutes for the 2006 GO download (unavailable offline): the
/// labeling pipeline consumes only DAG structure, annotation counts and the
/// derived Lord weights, all of which this generator exercises, including
/// the multi-parent paths that make lowest-common-parent search nontrivial.
Ontology GenerateGoBranch(const GoGeneratorConfig& config, Rng& rng);

/// Returns the terms at maximal depth (leaf-ish specific terms), handy for
/// sampling realistic direct annotations.
std::vector<TermId> DeepTerms(const Ontology& ontology, uint32_t min_depth);

}  // namespace lamo

#endif  // LAMO_SYNTH_GO_GENERATOR_H_
