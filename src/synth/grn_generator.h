#ifndef LAMO_SYNTH_GRN_GENERATOR_H_
#define LAMO_SYNTH_GRN_GENERATOR_H_

#include <array>
#include <vector>

#include "graph/digraph.h"
#include "ontology/annotation.h"
#include "ontology/informative.h"
#include "ontology/ontology.h"
#include "ontology/weights.h"
#include "synth/go_generator.h"
#include "util/random.h"

namespace lamo {

/// Shape of the synthetic gene regulatory network (GRN).
struct GrnConfig {
  /// Number of genes. A fraction of them act as transcription factors
  /// (arc sources).
  size_t num_genes = 500;
  /// Fraction of genes in the TF pool (real GRNs: few regulators, many
  /// targets).
  double tf_fraction = 0.12;
  /// Background arcs (TF -> random target).
  size_t background_arcs = 900;
  /// Planted feed-forward loops a -> b, a -> c, b -> c — the canonical
  /// directed motif of regulatory networks [Milo et al. 2002].
  size_t planted_ffls = 60;

  /// Ontology shape and annotation behavior (as in the PPI generator).
  GoGeneratorConfig go;
  double annotated_fraction = 0.9;
  double mean_terms_per_gene = 2.5;
  double role_annotation_probability = 0.85;
  size_t informative_threshold = 8;

  uint64_t seed = 77;
};

/// A synthetic GRN with GO annotations whose roles correlate with the
/// planted feed-forward loops: position 0 (the master regulator), 1 (the
/// intermediate regulator) and 2 (the regulated target) each draw from a
/// distinct role term. Substrate for labeled *directed* motif mining — the
/// paper's future-work extension.
struct GrnDataset {
  DiGraph grn;
  Ontology ontology;
  AnnotationTable annotations;
  TermWeights weights;
  InformativeClasses informative;
  /// Planted loops as (regulator, intermediate, target).
  std::vector<std::array<VertexId, 3>> ffls;
  /// Role terms of positions 0..2.
  std::array<TermId, 3> ffl_role_terms = {0, 0, 0};
};

/// Builds the dataset; deterministic in `config.seed`.
GrnDataset BuildGrnDataset(const GrnConfig& config);

}  // namespace lamo

#endif  // LAMO_SYNTH_GRN_GENERATOR_H_
