#ifndef LAMO_SYNTH_MULTI_BRANCH_H_
#define LAMO_SYNTH_MULTI_BRANCH_H_

#include <array>
#include <vector>

#include "synth/dataset.h"

namespace lamo {

/// One GO branch's worth of annotation layers over a shared interactome.
struct BranchData {
  GoBranch branch = GoBranch::kMolecularFunction;
  Ontology ontology;
  AnnotationTable annotations;
  TermWeights weights;
  InformativeClasses informative;
  /// Per-branch role terms of each planted template (aligned with
  /// MultiBranchDataset::templates instances).
  std::vector<std::vector<TermId>> template_role_terms;
};

/// A synthetic interactome annotated in all three GO branches (function,
/// process, location), sharing one PPI network and one set of planted
/// templates. This is the substrate for the paper's Section-4 protocol of
/// calling LaMoFinder once per branch, and for Figure 7's parallel-labeled
/// motifs (functional labels alongside cellular-location labels).
struct MultiBranchDataset {
  Graph ppi;
  std::vector<PlantedTemplate> templates;  // instances only; terms per branch
  std::array<BranchData, 3> branches;

  const BranchData& branch(GoBranch b) const {
    return branches[static_cast<size_t>(b)];
  }
};

/// Configuration: the single-branch config is reused per branch; the
/// location branch is generated shallower and with fewer terms (cellular
/// components are far fewer than functions, as in real GO).
struct MultiBranchConfig {
  SyntheticDatasetConfig base;
  /// Shrink factors applied to the cellular-component branch.
  double location_term_fraction = 0.4;
  size_t location_depth = 4;
};

/// Builds the shared interactome once, then annotates it independently per
/// branch with branch-specific ontologies and role terms (roles correlate
/// across branches: one template's roles share a category within every
/// branch, mirroring complexes that share function *and* localization).
MultiBranchDataset BuildMultiBranchDataset(const MultiBranchConfig& config);

}  // namespace lamo

#endif  // LAMO_SYNTH_MULTI_BRANCH_H_
