#include "synth/grn_generator.h"

#include <algorithm>

#include "util/logging.h"

namespace lamo {

GrnDataset BuildGrnDataset(const GrnConfig& config) {
  Rng rng(config.seed);
  GrnDataset ds;

  // --- Ontology. ---
  ds.ontology = GenerateGoBranch(config.go, rng);
  const std::vector<TermId> deep = DeepTerms(ds.ontology, 2);
  LAMO_CHECK_GE(deep.size(), 3u);

  // --- Regulatory network. ---
  const size_t num_tfs = std::max<size_t>(
      3, static_cast<size_t>(config.tf_fraction *
                             static_cast<double>(config.num_genes)));
  DiGraphBuilder builder(config.num_genes);
  for (size_t i = 0; i < config.background_arcs; ++i) {
    const VertexId source = static_cast<VertexId>(rng.Uniform(num_tfs));
    const VertexId target =
        static_cast<VertexId>(rng.Uniform(config.num_genes));
    LAMO_CHECK(builder.AddArc(source, target).ok());
  }
  // Planted feed-forward loops: a, b from the TF pool, c anywhere.
  for (size_t i = 0; i < config.planted_ffls; ++i) {
    VertexId a = static_cast<VertexId>(rng.Uniform(num_tfs));
    VertexId b = static_cast<VertexId>(rng.Uniform(num_tfs));
    while (b == a) b = static_cast<VertexId>(rng.Uniform(num_tfs));
    VertexId c = static_cast<VertexId>(rng.Uniform(config.num_genes));
    while (c == a || c == b) {
      c = static_cast<VertexId>(rng.Uniform(config.num_genes));
    }
    LAMO_CHECK(builder.AddArc(a, b).ok());
    LAMO_CHECK(builder.AddArc(a, c).ok());
    LAMO_CHECK(builder.AddArc(b, c).ok());
    ds.ffls.push_back({a, b, c});
  }
  ds.grn = builder.Build();

  // --- Role-correlated annotations. ---
  for (size_t r = 0; r < 3; ++r) {
    ds.ffl_role_terms[r] = deep[rng.Uniform(deep.size())];
  }
  ds.annotations = AnnotationTable(config.num_genes);
  std::vector<bool> annotated(config.num_genes, false);
  {
    std::vector<VertexId> order(config.num_genes);
    for (VertexId v = 0; v < config.num_genes; ++v) order[v] = v;
    rng.Shuffle(order);
    const size_t target = static_cast<size_t>(
        config.annotated_fraction * static_cast<double>(config.num_genes));
    for (size_t i = 0; i < target; ++i) annotated[order[i]] = true;
  }
  for (const auto& ffl : ds.ffls) {
    for (size_t r = 0; r < 3; ++r) {
      if (!annotated[ffl[r]]) continue;
      if (!rng.Bernoulli(config.role_annotation_probability)) continue;
      LAMO_CHECK(ds.annotations.Annotate(ffl[r], ds.ffl_role_terms[r]).ok());
    }
  }
  for (VertexId v = 0; v < config.num_genes; ++v) {
    if (!annotated[v]) continue;
    const size_t want =
        1 + rng.Poisson(std::max(0.0, config.mean_terms_per_gene - 1.0));
    while (ds.annotations.TermsOf(v).size() < want) {
      LAMO_CHECK(
          ds.annotations.Annotate(v, deep[rng.Uniform(deep.size())]).ok());
    }
  }

  // --- Derived layers. ---
  ds.weights = TermWeights::Compute(ds.ontology, ds.annotations);
  InformativeConfig informative_config;
  informative_config.min_direct_proteins = config.informative_threshold;
  ds.informative = InformativeClasses::Compute(ds.ontology, ds.annotations,
                                               informative_config);
  return ds;
}

}  // namespace lamo
