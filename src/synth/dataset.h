#ifndef LAMO_SYNTH_DATASET_H_
#define LAMO_SYNTH_DATASET_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/small_graph.h"
#include "ontology/annotation.h"
#include "ontology/informative.h"
#include "ontology/ontology.h"
#include "ontology/weights.h"
#include "synth/go_generator.h"
#include "util/random.h"

namespace lamo {

/// Ground truth for one planted recurring subgraph template.
struct PlantedTemplate {
  /// The template pattern over role positions 0..k-1.
  SmallGraph pattern;
  /// Role term per pattern position: proteins playing role i tend to be
  /// annotated with role_terms[i] or one of its descendants.
  std::vector<TermId> role_terms;
  /// The planted instances: instance[i] lists the proteins at each role.
  std::vector<std::vector<VertexId>> instances;
};

/// Knobs of the synthetic interactome builder.
struct SyntheticDatasetConfig {
  /// Proteome size (the paper's BIND network: 4141; MIPS: 1877).
  size_t num_proteins = 4141;
  /// Duplication-divergence retention / parent-link probabilities for the
  /// background interactome.
  double retention = 0.30;
  double parent_link = 0.15;

  /// Ontology shape (one branch).
  GoGeneratorConfig go;

  /// Number of distinct motif templates to plant and copies of each. Copies
  /// should clear the miner's frequency threshold.
  size_t num_templates = 6;
  size_t copies_per_template = 120;
  size_t template_min_size = 3;
  size_t template_max_size = 5;

  /// Fraction of proteins with at least one GO annotation (paper: 3554/4141
  /// ~ 0.86) and the mean number of terms per annotated protein (paper:
  /// 9.34 across the three branches; ~3 per branch).
  double annotated_fraction = 0.86;
  double mean_terms_per_protein = 3.0;
  /// Probability that a protein playing role i is annotated with the role
  /// term (or a descendant); the correlation that makes motif labeling
  /// meaningful, mirroring the functional homogeneity of real complexes
  /// [Wuchty et al.].
  double role_annotation_probability = 0.8;
  /// Probability that a role annotation is a *descendant* of the role term
  /// rather than the term itself (drives label generalization).
  double role_specialization_probability = 0.5;
  /// Fraction of templates that are "complex-like": all roles share one
  /// term (real protein complexes are functionally homogeneous — the
  /// uni-labeled motifs of Figure 7's g1). The rest get independent role
  /// terms within one category (g2-style).
  double complex_template_fraction = 0.5;

  /// Informative-FC threshold used downstream (Zhou et al.: 30).
  size_t informative_threshold = 30;

  uint64_t seed = 2007;
};

/// A fully-materialized synthetic benchmark dataset: the stand-in for the
/// paper's BIND/MIPS + GO downloads (see DESIGN.md section 2).
struct SyntheticDataset {
  Graph ppi;
  Ontology ontology;
  AnnotationTable annotations;
  TermWeights weights;
  InformativeClasses informative;
  std::vector<PlantedTemplate> templates;

  /// Top-level functional categories: the root's direct children, used as
  /// the paper's "top 13 key functions" for prediction evaluation.
  std::vector<TermId> categories;

  /// Generalizes a protein's direct annotations to the top categories
  /// (deduplicated, ascending). Empty if unannotated or nothing maps.
  std::vector<TermId> CategoriesOf(ProteinId p) const;

  /// Generalizes one term to the top categories it falls under.
  std::vector<TermId> CategoriesOfTerm(TermId t) const;
};

/// Builds the dataset: duplication-divergence background + planted motif
/// template instances (edges added among sampled proteins) + role-correlated,
/// true-path-consistent annotations with a configurable unannotated
/// fraction.
SyntheticDataset BuildSyntheticDataset(const SyntheticDatasetConfig& config);

/// Preset calibrated to the paper's BIND yeast network (4141 proteins,
/// ~7095 edges after preprocessing) for the Figure 6 pipeline.
SyntheticDatasetConfig BindScaleConfig();

/// Preset calibrated to the paper's MIPS dataset (1877 proteins, ~2448
/// interactions, 13 top functional categories) for the Figure 9 evaluation.
SyntheticDatasetConfig MipsScaleConfig();

/// (Advanced; used by the multi-branch builder.) Annotates an *existing*
/// interactome against `ontology`: chooses fresh role terms for each planted
/// template (one category per template, returned via `role_terms_out`,
/// aligned with `templates`), then applies the same role-correlated +
/// homophilous annotation process BuildSyntheticDataset uses.
AnnotationTable SynthesizeAnnotations(
    const Graph& ppi, const std::vector<PlantedTemplate>& templates,
    const Ontology& ontology, const SyntheticDatasetConfig& config,
    std::vector<std::vector<TermId>>* role_terms_out, Rng& rng);

}  // namespace lamo

#endif  // LAMO_SYNTH_DATASET_H_
