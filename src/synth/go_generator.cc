#include "synth/go_generator.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace lamo {

Ontology GenerateGoBranch(const GoGeneratorConfig& config, Rng& rng) {
  LAMO_CHECK_GE(config.num_terms, 2u);
  LAMO_CHECK_GE(config.depth, 1u);
  OntologyBuilder builder;

  // Name terms T0000 (root), T0001, ...
  std::vector<TermId> terms(config.num_terms);
  for (size_t i = 0; i < config.num_terms; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "T%04zu", i);
    terms[i] = builder.AddTerm(name);
  }

  // Distribute non-root terms over levels 1..depth, widening with depth
  // (real ontologies broaden downward).
  std::vector<std::vector<TermId>> levels(config.depth + 1);
  levels[0].push_back(terms[0]);
  size_t next_term = 1;
  // Level 1 gets exactly first_level_terms when requested (these become the
  // top functional categories).
  if (config.first_level_terms > 0) {
    for (size_t i = 0;
         i < config.first_level_terms && next_term < config.num_terms; ++i) {
      levels[1].push_back(terms[next_term++]);
    }
  }
  const size_t remaining_start = next_term;
  double weight_sum = 0.0;
  std::vector<double> level_weight(config.depth + 1, 0.0);
  for (size_t d = 1; d <= config.depth; ++d) {
    if (d == 1 && config.first_level_terms > 0) continue;
    level_weight[d] = static_cast<double>(d);
    weight_sum += level_weight[d];
  }
  for (size_t d = 1; d <= config.depth && next_term < config.num_terms; ++d) {
    if (d == 1 && config.first_level_terms > 0) continue;
    size_t quota = static_cast<size_t>(
        (config.num_terms - remaining_start) * level_weight[d] / weight_sum);
    if (d == config.depth) quota = config.num_terms - next_term;  // remainder
    quota = std::min(quota, config.num_terms - next_term);
    if (quota == 0 && next_term < config.num_terms) quota = 1;
    for (size_t i = 0; i < quota && next_term < config.num_terms; ++i) {
      levels[d].push_back(terms[next_term++]);
    }
  }

  auto relation = [&]() {
    return rng.Bernoulli(config.part_of_fraction) ? RelationType::kPartOf
                                                  : RelationType::kIsA;
  };

  for (size_t d = 1; d <= config.depth; ++d) {
    // Guard against empty intermediate levels (tiny configs).
    size_t parent_level = d - 1;
    while (levels[parent_level].empty() && parent_level > 0) --parent_level;
    for (TermId t : levels[d]) {
      const TermId parent = rng.Choice(levels[parent_level]);
      LAMO_CHECK(builder.AddRelation(t, parent, relation()).ok());
      if (d >= 2 && rng.Bernoulli(config.extra_parent_probability)) {
        // Extra parent from any strictly shallower non-root level (extra
        // edges to the root would inflate the category set).
        const size_t extra_level = 1 + rng.Uniform(d - 1);
        if (!levels[extra_level].empty()) {
          const TermId extra = rng.Choice(levels[extra_level]);
          if (extra != parent && extra != t) {
            LAMO_CHECK(builder.AddRelation(t, extra, relation()).ok());
          }
        }
      }
    }
  }

  auto built = builder.Build();
  LAMO_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

std::vector<TermId> DeepTerms(const Ontology& ontology, uint32_t min_depth) {
  std::vector<TermId> deep;
  for (TermId t = 0; t < ontology.num_terms(); ++t) {
    if (ontology.Depth(t) >= min_depth) deep.push_back(t);
  }
  return deep;
}

}  // namespace lamo
