#include "synth/dataset.h"

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "util/logging.h"

namespace lamo {
namespace {

// Random connected pattern with `size` vertices: a random spanning tree plus
// extra edges. Planted templates are deliberately denser than the sparse
// background (extra edges ~ size), mirroring the protein complexes real
// motifs correspond to — density is what makes them *unique* under
// degree-preserving rewiring.
SmallGraph RandomConnectedPattern(size_t size, Rng& rng) {
  SmallGraph pattern(size);
  for (uint32_t v = 1; v < size; ++v) {
    pattern.AddEdge(v, static_cast<uint32_t>(rng.Uniform(v)));
  }
  const size_t extra = size;
  for (size_t i = 0; i < extra; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Uniform(size));
    const uint32_t b = static_cast<uint32_t>(rng.Uniform(size));
    if (a != b) pattern.AddEdge(a, b);
  }
  LAMO_CHECK(pattern.IsConnected());
  return pattern;
}

}  // namespace

std::vector<TermId> SyntheticDataset::CategoriesOfTerm(TermId t) const {
  std::vector<TermId> result;
  const auto ancestors = ontology.AncestorsOf(t);
  for (TermId c : categories) {
    if (std::binary_search(ancestors.begin(), ancestors.end(), c)) {
      result.push_back(c);
    }
  }
  return result;
}

std::vector<TermId> SyntheticDataset::CategoriesOf(ProteinId p) const {
  std::set<TermId> found;
  for (TermId t : annotations.TermsOf(p)) {
    for (TermId c : CategoriesOfTerm(t)) found.insert(c);
  }
  return {found.begin(), found.end()};
}

AnnotationTable SynthesizeAnnotations(
    const Graph& ppi, const std::vector<PlantedTemplate>& templates,
    const Ontology& ontology, const SyntheticDatasetConfig& config,
    std::vector<std::vector<TermId>>* role_terms_out, Rng& rng) {
  const size_t num_proteins = ppi.num_vertices();
  const std::vector<TermId>& roots = ontology.Roots();
  LAMO_CHECK_EQ(roots.size(), 1u);
  const TermId root = roots[0];
  const std::vector<TermId> categories(ontology.Children(root).begin(),
                                       ontology.Children(root).end());
  LAMO_CHECK(!categories.empty());

  // Descendants of each category, for sampling category-coherent terms.
  std::vector<std::vector<TermId>> category_terms;
  category_terms.reserve(categories.size());
  for (TermId c : categories) {
    std::vector<TermId> desc = ontology.DescendantsOf(c);
    // Avoid annotating directly with the category root: real annotations
    // are specific.
    if (desc.size() > 1) {
      desc.erase(std::remove(desc.begin(), desc.end(), c), desc.end());
    }
    category_terms.push_back(std::move(desc));
  }

  // Fresh role terms per template: all roles of one template draw from one
  // category (functional homogeneity of complexes).
  std::vector<std::vector<TermId>> role_terms(templates.size());
  for (size_t t = 0; t < templates.size(); ++t) {
    const size_t size = templates[t].pattern.num_vertices();
    const auto& pool = category_terms[rng.Uniform(categories.size())];
    role_terms[t].resize(size);
    if (rng.Bernoulli(config.complex_template_fraction)) {
      // Complex-like template: one shared term across all roles.
      const TermId shared = pool[rng.Uniform(pool.size())];
      for (size_t r = 0; r < size; ++r) role_terms[t][r] = shared;
    } else {
      for (size_t r = 0; r < size; ++r) {
        role_terms[t][r] = pool[rng.Uniform(pool.size())];
      }
    }
  }

  AnnotationTable annotations(num_proteins);
  const std::vector<TermId> deep = DeepTerms(ontology, 2);
  LAMO_CHECK(!deep.empty());

  // Choose which proteins are annotated at all (the partial labeling).
  std::vector<bool> annotated(num_proteins, false);
  const size_t annotated_target = static_cast<size_t>(
      config.annotated_fraction * static_cast<double>(num_proteins));
  {
    std::vector<VertexId> order(num_proteins);
    for (VertexId v = 0; v < num_proteins; ++v) order[v] = v;
    rng.Shuffle(order);
    for (size_t i = 0; i < annotated_target; ++i) annotated[order[i]] = true;
  }

  // Role-correlated annotations.
  for (size_t t = 0; t < templates.size(); ++t) {
    for (const auto& instance : templates[t].instances) {
      for (size_t r = 0; r < instance.size(); ++r) {
        const VertexId p = instance[r];
        if (!annotated[p]) continue;
        if (!rng.Bernoulli(config.role_annotation_probability)) continue;
        TermId term = role_terms[t][r];
        if (rng.Bernoulli(config.role_specialization_probability)) {
          const std::vector<TermId> desc = ontology.DescendantsOf(term);
          term = desc[rng.Uniform(desc.size())];
        }
        LAMO_CHECK(annotations.Annotate(p, term).ok());
      }
    }
  }

  // Neighborhood homophily + background noise for everyone annotated.
  for (VertexId p = 0; p < num_proteins; ++p) {
    if (!annotated[p]) continue;
    size_t want = 1 + rng.Poisson(std::max(
                          0.0, config.mean_terms_per_protein - 1.0));
    // Keep what roles already contributed.
    const size_t have = annotations.TermsOf(p).size();
    if (want <= have) continue;
    want -= have;
    for (size_t i = 0; i < want; ++i) {
      // With probability 1/2 copy a category from an annotated neighbor and
      // specialize inside it (interacting proteins share function);
      // otherwise draw uniformly from the deep terms.
      TermId term = kInvalidTerm;
      const auto neighbors = ppi.Neighbors(p);
      if (!neighbors.empty() && rng.Bernoulli(0.5)) {
        const VertexId q = neighbors[rng.Uniform(neighbors.size())];
        const auto q_terms = annotations.TermsOf(q);
        if (!q_terms.empty()) {
          term = q_terms[rng.Uniform(q_terms.size())];
        }
      }
      if (term == kInvalidTerm) {
        term = deep[rng.Uniform(deep.size())];
      }
      LAMO_CHECK(annotations.Annotate(p, term).ok());
    }
  }

  if (role_terms_out != nullptr) *role_terms_out = std::move(role_terms);
  return annotations;
}

SyntheticDataset BuildSyntheticDataset(const SyntheticDatasetConfig& config) {
  Rng rng(config.seed);
  SyntheticDataset ds;

  // --- Ontology & category layer. ---
  ds.ontology = GenerateGoBranch(config.go, rng);
  const std::vector<TermId>& roots = ds.ontology.Roots();
  LAMO_CHECK_EQ(roots.size(), 1u);
  ds.categories.assign(ds.ontology.Children(roots[0]).begin(),
                       ds.ontology.Children(roots[0]).end());
  LAMO_CHECK(!ds.categories.empty());

  // --- Background interactome. ---
  const Graph background = DuplicationDivergence(
      config.num_proteins, config.retention, config.parent_link, rng);

  GraphBuilder builder(config.num_proteins);
  for (const auto& [a, b] : background.Edges()) {
    LAMO_CHECK(builder.AddEdge(a, b).ok());
  }

  // --- Plant motif templates. ---
  for (size_t t = 0; t < config.num_templates; ++t) {
    PlantedTemplate planted;
    const size_t size =
        config.template_min_size +
        rng.Uniform(config.template_max_size - config.template_min_size + 1);
    planted.pattern = RandomConnectedPattern(size, rng);
    for (size_t copy = 0; copy < config.copies_per_template; ++copy) {
      std::vector<VertexId> members;
      const auto sampled =
          rng.SampleWithoutReplacement(config.num_proteins, size);
      members.assign(sampled.begin(), sampled.end());
      for (const auto& [a, b] : planted.pattern.Edges()) {
        LAMO_CHECK(builder.AddEdge(members[a], members[b]).ok());
      }
      planted.instances.push_back(std::move(members));
    }
    ds.templates.push_back(std::move(planted));
  }
  ds.ppi = builder.Build();

  // --- Annotations (role terms recorded back into the templates). ---
  std::vector<std::vector<TermId>> role_terms;
  ds.annotations = SynthesizeAnnotations(ds.ppi, ds.templates, ds.ontology,
                                         config, &role_terms, rng);
  for (size_t t = 0; t < ds.templates.size(); ++t) {
    ds.templates[t].role_terms = role_terms[t];
  }

  // --- Derived layers. ---
  ds.weights = TermWeights::Compute(ds.ontology, ds.annotations);
  InformativeConfig informative_config;
  informative_config.min_direct_proteins = config.informative_threshold;
  ds.informative = InformativeClasses::Compute(ds.ontology, ds.annotations,
                                               informative_config);
  return ds;
}

SyntheticDatasetConfig BindScaleConfig() {
  SyntheticDatasetConfig config;
  config.num_proteins = 4141;
  config.retention = 0.24;
  config.parent_link = 0.10;
  config.go.num_terms = 150;
  config.go.depth = 6;
  config.num_templates = 6;
  config.copies_per_template = 120;
  config.template_min_size = 3;
  config.template_max_size = 5;
  config.annotated_fraction = 3554.0 / 4141.0;
  config.mean_terms_per_protein = 3.0;
  config.informative_threshold = 30;
  config.seed = 2007;
  return config;
}

SyntheticDatasetConfig MipsScaleConfig() {
  SyntheticDatasetConfig config;
  config.num_proteins = 1877;
  config.retention = 0.20;
  config.parent_link = 0.08;
  config.go.num_terms = 120;
  config.go.depth = 5;
  config.num_templates = 5;
  config.copies_per_template = 60;
  config.template_min_size = 3;
  config.template_max_size = 5;
  config.annotated_fraction = 0.9;
  config.mean_terms_per_protein = 3.0;
  config.informative_threshold = 20;
  config.seed = 1877;
  return config;
}

}  // namespace lamo
