#include "synth/multi_branch.h"

#include <algorithm>

#include "util/logging.h"

namespace lamo {

MultiBranchDataset BuildMultiBranchDataset(const MultiBranchConfig& config) {
  MultiBranchDataset ds;

  // The shared interactome, planted templates and the molecular-function
  // branch come from the single-branch builder.
  SyntheticDataset base = BuildSyntheticDataset(config.base);
  ds.ppi = std::move(base.ppi);
  ds.templates = std::move(base.templates);

  BranchData& function = ds.branches[0];
  function.branch = GoBranch::kMolecularFunction;
  function.ontology = std::move(base.ontology);
  function.annotations = std::move(base.annotations);
  function.weights = std::move(base.weights);
  function.informative = std::move(base.informative);
  function.template_role_terms.reserve(ds.templates.size());
  for (const PlantedTemplate& t : ds.templates) {
    function.template_role_terms.push_back(t.role_terms);
  }

  // The process and location branches annotate the same proteins and the
  // same planted instances against branch-specific ontologies. Each branch
  // gets an independent, deterministic RNG stream.
  const GoBranch others[] = {GoBranch::kBiologicalProcess,
                             GoBranch::kCellularComponent};
  for (GoBranch branch : others) {
    BranchData& data = ds.branches[static_cast<size_t>(branch)];
    data.branch = branch;

    SyntheticDatasetConfig branch_config = config.base;
    if (branch == GoBranch::kCellularComponent) {
      branch_config.go.num_terms = std::max<size_t>(
          20, static_cast<size_t>(config.location_term_fraction *
                                  static_cast<double>(
                                      config.base.go.num_terms)));
      branch_config.go.depth = config.location_depth;
      // Localizations are broader: less specialization below the role term.
      branch_config.role_specialization_probability = 0.3;
    }
    Rng rng(config.base.seed + 1000 * (static_cast<uint64_t>(branch) + 1));
    data.ontology = GenerateGoBranch(branch_config.go, rng);
    data.annotations =
        SynthesizeAnnotations(ds.ppi, ds.templates, data.ontology,
                              branch_config, &data.template_role_terms, rng);
    data.weights = TermWeights::Compute(data.ontology, data.annotations);
    InformativeConfig informative_config;
    informative_config.min_direct_proteins =
        branch_config.informative_threshold;
    data.informative = InformativeClasses::Compute(
        data.ontology, data.annotations, informative_config);
  }
  return ds;
}

}  // namespace lamo
