#include "router/cluster.h"

#include <signal.h>
#include <sys/wait.h>

#include <chrono>
#include <thread>

#include "serve/snapshot.h"
#include "util/fault.h"

namespace lamo {
namespace {

using Clock = std::chrono::steady_clock;

/// Armed by the crash matrix: kills the router between backend spawns so the
/// harness can assert backends die with it (PR_SET_PDEATHSIG) instead of
/// leaking.
const size_t kFaultSpawn = FaultPointId("router.spawn");

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  base_snapshot_ = options_.snapshot;
  backends_.reserve(options_.num_backends);
  for (size_t i = 0; i < options_.num_backends; ++i) {
    backends_.push_back(std::make_unique<Backend>(i));
  }
}

Cluster::~Cluster() { Stop(); }

std::string Cluster::SnapshotPathFor(const std::string& base,
                                     size_t index) const {
  if (!options_.sharded || options_.num_backends == 1) return base;
  return ShardSnapshotPath(base, static_cast<uint32_t>(index),
                           static_cast<uint32_t>(options_.num_backends));
}

std::string Cluster::base_snapshot() const {
  std::lock_guard<std::mutex> lock(base_mu_);
  return base_snapshot_;
}

BackendConfig Cluster::MakeBackendConfig(
    size_t index, const std::string& snapshot_path) const {
  BackendConfig config;
  config.binary = options_.binary;
  config.snapshot = snapshot_path;
  config.spawn_timeout_ms = options_.spawn_timeout_ms;
  config.log = options_.log;
  if (!options_.backend_access_log.empty()) {
    config.extra_args.push_back("--access-log");
    config.extra_args.push_back(options_.backend_access_log + "." +
                                std::to_string(index));
    config.extra_args.push_back("--access-sample");
    config.extra_args.push_back(std::to_string(options_.backend_access_sample));
    config.extra_args.push_back("--slow-ms");
    config.extra_args.push_back(std::to_string(options_.backend_slow_ms));
  }
  if (!options_.predictors.empty()) {
    config.extra_args.push_back("--predictor");
    config.extra_args.push_back(
        options_.predictors[index % options_.predictors.size()]);
  }
  return config;
}

Status Cluster::SpawnBackend(size_t index, const std::string& base) {
  if (FaultHit(kFaultSpawn) == FaultAction::kError) {
    return Status::IoError("injected fault: router.spawn");
  }
  return backends_[index]->Spawn(
      MakeBackendConfig(index, SnapshotPathFor(base, index)));
}

Status Cluster::Start() {
  const std::string base = base_snapshot();
  for (size_t i = 0; i < backends_.size(); ++i) {
    const Status status = SpawnBackend(i, base);
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  running_.store(true, std::memory_order_release);
  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

void Cluster::Stop() {
  running_.store(false, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  for (auto& backend : backends_) {
    backend->Kill(SIGTERM);
  }
  for (auto& backend : backends_) {
    const pid_t p = backend->pid();
    if (p > 0) {
      // Graceful drain first; SIGKILL after a short grace so Stop cannot
      // hang on a wedged child.
      const Clock::time_point deadline =
          Clock::now() + std::chrono::seconds(5);
      while (backend->pid() > 0 && !backend->Reap() &&
             Clock::now() < deadline) {
        SleepMs(10);
      }
      if (backend->pid() > 0) {
        backend->Kill(SIGKILL);
        waitpid(backend->pid(), nullptr, 0);
      }
    }
    backend->set_state(BackendState::kDown);
  }
}

void Cluster::MonitorLoop() {
  while (running_.load(std::memory_order_acquire)) {
    for (auto& backend : backends_) {
      backend->DrainOutput();
      // While Reload holds reload_mu_ it kills and respawns backends
      // deliberately; the monitor must not reap or respawn behind its back
      // (Reap() transiently drops a backend to kDown mid-swap, and a
      // monitor respawn would resurrect the OLD snapshot and clobber the
      // reload's spawn). try_lock instead of lock so supervision never
      // stalls the tick loop — the swapped backends are re-checked on the
      // first tick after the reload releases the mutex.
      std::unique_lock<std::mutex> reload_lock(reload_mu_, std::try_to_lock);
      if (!reload_lock.owns_lock()) continue;
      // A dead kUp backend is respawned on the snapshot it was serving
      // (which may be mid-reload newer than other backends'); a respawn
      // failure leaves it kDown for the next tick.
      if (backend->state() == BackendState::kDraining) continue;
      const bool died = backend->Reap();
      if (died || (backend->state() == BackendState::kDown &&
                   backend->pid() <= 0)) {
        if (options_.log != nullptr) {
          std::fprintf(options_.log,
                       "lamo router: backend %zu died, respawning\n",
                       backend->index());
          std::fflush(options_.log);
        }
        // Respawn on the exact snapshot the dead incarnation served (not
        // recomputed from the base, which may already point at a newer
        // model mid-reload).
        std::string snapshot = backend->snapshot_path();
        if (snapshot.empty()) {
          snapshot = SnapshotPathFor(base_snapshot(), backend->index());
        }
        const Status status =
            backend->Spawn(MakeBackendConfig(backend->index(), snapshot));
        (void)status;  // kDown until a later tick succeeds
      }
    }
    SleepMs(options_.monitor_interval_ms);
  }
}

Status Cluster::Forward(size_t index, const std::string& line,
                        std::string* response, bool* retried) {
  *retried = false;
  Backend& backend = *backends_[index];
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::milliseconds(options_.retry_deadline_ms);
  Status last = Status::Unavailable("backend " + std::to_string(index) +
                                    " not attempted");
  bool first = true;
  while (true) {
    if (!first) *retried = true;
    first = false;
    if (backend.state() == BackendState::kUp) {
      last = backend.SendRequest(line, response);
      if (last.ok()) return last;
      // Transport failure: the process may be dead (monitor will respawn)
      // or the connection stale (redial next attempt).
    } else {
      last = Status::Unavailable("backend " + std::to_string(index) + " " +
                                 BackendStateName(backend.state()));
    }
    if (Clock::now() >= deadline) return last;
    SleepMs(10);
  }
}

Status Cluster::ProbeHealth(size_t index) {
  std::string response;
  bool retried = false;
  const Status status = Forward(index, "HEALTH", &response, &retried);
  if (!status.ok()) return status;
  if (response.rfind("OK ", 0) != 0) {
    return Status::Unavailable("backend " + std::to_string(index) +
                               ": HEALTH answered " + response);
  }
  return Status::OK();
}

Status Cluster::Reload(const std::string& new_base) {
  std::lock_guard<std::mutex> lock(reload_mu_);

  // Pack-validate every file the swap will load before touching any
  // backend: a bad snapshot must leave the cluster exactly as it was.
  for (size_t i = 0; i < backends_.size(); ++i) {
    const std::string path = SnapshotPathFor(new_base, i);
    auto snapshot = ReadSnapshot(path);
    if (!snapshot.ok()) {
      return Status::InvalidArgument("reload rejected: " + path + ": " +
                                     snapshot.status().message());
    }
    if (options_.sharded && options_.num_backends > 1 &&
        (snapshot->num_shards != options_.num_backends ||
         snapshot->shard_id != i)) {
      return Status::InvalidArgument(
          "reload rejected: " + path + " is shard " +
          std::to_string(snapshot->shard_id) + "/" +
          std::to_string(snapshot->num_shards) + ", want " +
          std::to_string(i) + "/" + std::to_string(backends_.size()));
    }
  }

  for (size_t i = 0; i < backends_.size(); ++i) {
    Backend& backend = *backends_[i];
    // Drain: stop placing new requests (Forward treats kDraining as
    // not-up), wait for in-flight ones to finish.
    backend.set_state(BackendState::kDraining);
    const Clock::time_point drain_deadline =
        Clock::now() + std::chrono::seconds(10);
    while (backend.inflight() > 0 && Clock::now() < drain_deadline) {
      SleepMs(5);
    }
    backend.Kill(SIGTERM);
    const Clock::time_point reap_deadline =
        Clock::now() + std::chrono::seconds(10);
    while (backend.pid() > 0 && !backend.Reap() &&
           Clock::now() < reap_deadline) {
      SleepMs(10);
    }
    if (backend.pid() > 0) {
      backend.Kill(SIGKILL);
      while (backend.pid() > 0 && !backend.Reap()) SleepMs(10);
    }

    const Status spawned = SpawnBackend(i, new_base);
    if (!spawned.ok()) return spawned;
    const Status healthy = ProbeHealth(i);
    if (!healthy.ok()) return healthy;
    if (options_.log != nullptr) {
      std::fprintf(options_.log,
                   "lamo router: backend %zu reloaded onto %s\n", i,
                   SnapshotPathFor(new_base, i).c_str());
      std::fflush(options_.log);
    }
  }

  {
    std::lock_guard<std::mutex> base_lock(base_mu_);
    base_snapshot_ = new_base;
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

size_t Cluster::num_up() const {
  size_t up = 0;
  for (const auto& backend : backends_) {
    if (backend->state() == BackendState::kUp) ++up;
  }
  return up;
}

}  // namespace lamo
