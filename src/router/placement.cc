#include "router/placement.h"

#include <algorithm>
#include <cassert>

namespace lamo {

uint64_t RouterHash(const std::string& key) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV-1a prime
  }
  return hash;
}

size_t ShardBackend(uint32_t protein, size_t num_backends) {
  assert(num_backends > 0);
  return protein % num_backends;
}

HashRing::HashRing(size_t num_nodes, size_t virtual_nodes)
    : num_nodes_(num_nodes) {
  assert(num_nodes > 0);
  points_.reserve(num_nodes * virtual_nodes);
  for (size_t node = 0; node < num_nodes; ++node) {
    for (size_t v = 0; v < virtual_nodes; ++v) {
      const std::string label =
          "node-" + std::to_string(node) + "#" + std::to_string(v);
      points_.push_back({RouterHash(label), static_cast<uint32_t>(node)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
}

size_t HashRing::Primary(const std::string& key) const {
  const uint64_t hash = RouterHash(key);
  auto it = std::lower_bound(points_.begin(), points_.end(), hash,
                             [](const Point& p, uint64_t h) {
                               return p.hash < h;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->node;
}

std::vector<size_t> HashRing::Preference(const std::string& key) const {
  const uint64_t hash = RouterHash(key);
  auto start = std::lower_bound(points_.begin(), points_.end(), hash,
                                [](const Point& p, uint64_t h) {
                                  return p.hash < h;
                                });
  std::vector<size_t> order;
  order.reserve(num_nodes_);
  std::vector<bool> seen(num_nodes_, false);
  for (size_t walked = 0;
       walked < points_.size() && order.size() < num_nodes_; ++walked) {
    if (start == points_.end()) start = points_.begin();
    if (!seen[start->node]) {
      seen[start->node] = true;
      order.push_back(start->node);
    }
    ++start;
  }
  // A node with pathological hash collisions could in principle contribute no
  // point; append any stragglers in index order so the result always covers
  // every node.
  for (size_t node = 0; node < num_nodes_; ++node) {
    if (!seen[node]) order.push_back(node);
  }
  return order;
}

}  // namespace lamo
