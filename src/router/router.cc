#include "router/router.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "obs/obs.h"
#include "obs/prometheus.h"
#include "serve/request.h"

namespace lamo {
namespace {

using Clock = std::chrono::steady_clock;

/// router.* metrics. request_us covers every request (parse errors
/// included), so its count always equals router.requests.
/// backend_requests is incremented once per backend-served forward, at the
/// same site as proxied — lamo_report_check asserts the two stay equal, the
/// "no request lost or double-counted between front and backends" invariant.
/// ids_issued counts request IDs stamped (queries and unparseable lines);
/// errors counts only router-originated failures (see RouterStats), so
/// ids_issued == backend_requests + errors is the end-to-end conservation
/// law lamo_report_check enforces: every stamped request was either answered
/// by a backend or turned into a router error, never lost, never both.
const size_t kObsRequests = ObsCounterId("router.requests");
const size_t kObsErrors = ObsCounterId("router.errors");
const size_t kObsProxied = ObsCounterId("router.proxied");
const size_t kObsBackendRequests = ObsCounterId("router.backend_requests");
const size_t kObsRetries = ObsCounterId("router.retries");
const size_t kObsReloads = ObsCounterId("router.reloads");
const size_t kObsConnections = ObsCounterId("router.connections");
const size_t kObsIdsIssued = ObsCounterId("router.ids_issued");
const size_t kObsAccessLogged = ObsCounterId("router.access_logged");
/// Edge mutations (ADDEDGE/DELEDGE) fanned out to every backend. These are
/// admin-style: id 0, not counted as proxied/backend_requests (they go to
/// all N backends, which would break the proxied == backend_requests
/// invariant), and a backend-relayed rejection is not a router error.
const size_t kObsUpdatesFanned = ObsCounterId("router.updates_fanned");
const size_t kHistRequestUs = ObsHistogramId("router.request_us");

uint64_t ElapsedUs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// First whitespace-separated token of `line` plus the remainder (trimmed).
void SplitVerb(const std::string& line, std::string* verb,
               std::string* rest) {
  std::istringstream in(line);
  in >> *verb;
  std::getline(in, *rest);
  const size_t start = rest->find_first_not_of(" \t\r");
  if (start == std::string::npos) {
    rest->clear();
  } else {
    const size_t end = rest->find_last_not_of(" \t\r");
    *rest = rest->substr(start, end - start + 1);
  }
}

/// Parses one `key value...` payload line of a backend STATS response.
void ParseStatsLine(const std::string& line,
                    std::map<std::string, std::string>* fields) {
  const size_t space = line.find(' ');
  if (space == std::string::npos) return;
  (*fields)[line.substr(0, space)] = line.substr(space + 1);
}

}  // namespace

RouterService::RouterService(Cluster* cluster, bool sharded)
    : cluster_(cluster), sharded_(sharded), ring_(cluster->size()) {}

RouterService::~RouterService() {
  std::lock_guard<std::mutex> lock(reload_worker_mu_);
  if (reload_worker_.joinable()) reload_worker_.join();
}

void RouterService::OnConnection() {
  stats_.connections.fetch_add(1, std::memory_order_relaxed);
  ObsIncrement(kObsConnections);
}

std::string RouterService::Handle(const std::string& line) {
  const bool observed = ObsEnabled();
  const bool timed = observed || access_log_ != nullptr;
  const Clock::time_point start = timed ? Clock::now() : Clock::time_point();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  ObsIncrement(kObsRequests);

  std::string response;
  std::string verb, rest;
  SplitVerb(line, &verb, &rest);
  // Every query gets a fresh monotonic request ID, forwarded to the backend
  // as a `#<id>` line prefix; unparseable lines are stamped too so the
  // ids_issued == backend_requests + errors conservation law closes.
  // Admin verbs answered in-process (HEALTH/STATS/METRICS/RELOAD) carry
  // id 0 in the access log.
  uint64_t id = 0;
  bool router_error = false;  // router-originated failure (not a relayed ERR)
  RouteResult routed;
  if (verb == "RELOAD") {
    response = Reload(rest);
  } else {
    auto parsed = ParseRequest(line);
    if (!parsed.ok()) {
      id = next_id_.fetch_add(1, std::memory_order_relaxed);
      stats_.ids_issued.fetch_add(1, std::memory_order_relaxed);
      ObsIncrement(kObsIdsIssued);
      router_error = true;
      response = FormatErrorResponse(parsed.status());
    } else {
      const Request& request = *parsed;
      switch (request.type) {
        case RequestType::kHealth:
          response = Health();
          break;
        case RequestType::kStats:
          response = StatsView();
          break;
        case RequestType::kMetrics:
          response = Metrics();
          break;
        case RequestType::kAddEdge:
        case RequestType::kDelEdge:
          // Admin-style (id 0): applied on every backend or reported as a
          // failure, never silently partial.
          response = FanOutUpdate(request);
          break;
        case RequestType::kPredict:
        case RequestType::kMotifs:
        case RequestType::kTermInfo:
        case RequestType::kPredictEdge: {
          id = next_id_.fetch_add(1, std::memory_order_relaxed);
          stats_.ids_issued.fetch_add(1, std::memory_order_relaxed);
          ObsIncrement(kObsIdsIssued);
          // Forward the canonical spelling so every client phrasing of the
          // same query shares one backend cache entry; TERMINFO may go to
          // any backend (every shard keeps the full ontology), the ring
          // gives cache affinity in both modes.
          const std::string forwarded =
              "#" + std::to_string(id) + " " + CacheKey(request);
          if (request.type == RequestType::kTermInfo) {
            response = Route("t:" + request.term, 0, false, forwarded, &routed);
          } else {
            response = Route("p:" + std::to_string(request.protein),
                             request.protein, sharded_, forwarded, &routed);
          }
          router_error = !routed.from_backend;
          break;
        }
      }
    }
  }

  if (router_error && response.rfind("ERR", 0) == 0) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    ObsIncrement(kObsErrors);
  }
  const uint64_t total_us = timed ? ElapsedUs(start) : 0;
  if (observed) ObsObserve(kHistRequestUs, total_us);
  if (access_log_ != nullptr) {
    AccessLog::Entry entry;
    entry.id = id;
    entry.verb = verb.empty() ? "-" : verb;
    entry.request = line;
    entry.ok = response.rfind("ERR", 0) != 0;
    entry.total_us = total_us;
    if (routed.from_backend) {
      entry.backend = static_cast<int64_t>(routed.backend);
      entry.spans_us.emplace_back("backend_us", routed.backend_us);
      entry.spans_us.emplace_back(
          "route_us", total_us >= routed.backend_us
                          ? total_us - routed.backend_us
                          : 0);
    } else {
      entry.spans_us.emplace_back("handle_us", total_us);
    }
    if (access_log_->Log(entry)) ObsIncrement(kObsAccessLogged);
  }
  return response;
}

std::string RouterService::Route(const std::string& key, uint32_t protein,
                                 bool pinned, const std::string& line,
                                 RouteResult* result) {
  const std::vector<size_t> preference =
      pinned ? std::vector<size_t>{ShardBackend(protein, cluster_->size())}
             : ring_.Preference(key);

  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::milliseconds(cluster_->retry_deadline_ms());
  Status last = Status::Unavailable("no backend attempted");
  bool retried = false;
  while (true) {
    // Pick this attempt's backend. Pinned (sharded) requests have exactly
    // one valid destination and wait for it; replicated requests use the
    // ring primary when it is up, otherwise the least-loaded up candidate.
    size_t index = preference[0];
    bool candidate_up =
        cluster_->backend(index).state() == BackendState::kUp;
    if (!candidate_up && !pinned) {
      uint64_t best_load = 0;
      for (const size_t cand : preference) {
        const Backend& backend = cluster_->backend(cand);
        if (backend.state() != BackendState::kUp) continue;
        if (!candidate_up || backend.inflight() < best_load) {
          candidate_up = true;
          index = cand;
          best_load = backend.inflight();
        }
      }
    }
    if (candidate_up) {
      std::string response;
      const Clock::time_point attempt_start = Clock::now();
      last = cluster_->backend(index).SendRequest(line, &response);
      if (last.ok()) {
        if (retried) {
          stats_.retries.fetch_add(1, std::memory_order_relaxed);
          ObsIncrement(kObsRetries);
        }
        stats_.proxied.fetch_add(1, std::memory_order_relaxed);
        ObsIncrement(kObsProxied);
        ObsIncrement(kObsBackendRequests);
        if (result != nullptr) {
          result->from_backend = true;
          result->backend = index;
          result->backend_us = ElapsedUs(attempt_start);
        }
        return response;
      }
    } else {
      last = Status::Unavailable("backend " + std::to_string(index) + " " +
                                 BackendStateName(
                                     cluster_->backend(index).state()));
    }
    if (Clock::now() >= deadline) break;
    retried = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (retried) {
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    ObsIncrement(kObsRetries);
  }
  return FormatErrorResponse(last);
}

std::string RouterService::FanOutUpdate(const Request& request) {
  // An edge mutation must land on every backend or the shards' global
  // frequency/strength state diverges, so refuse up front unless the whole
  // cluster is up — the client retries once the supervisor has respawned
  // the missing backend.
  const std::string line = CacheKey(request);
  for (size_t i = 0; i < cluster_->size(); ++i) {
    const BackendState state = cluster_->backend(i).state();
    if (state != BackendState::kUp) {
      return FormatErrorResponse(Status::Unavailable(
          "backend " + std::to_string(i) + " " + BackendStateName(state) +
          "; update not applied"));
    }
  }
  size_t applied = 0;
  for (size_t i = 0; i < cluster_->size(); ++i) {
    std::string response;
    const Status status = cluster_->backend(i).SendRequest(line, &response);
    const bool ok = status.ok() && response.rfind("OK", 0) == 0;
    if (ok) {
      ++applied;
      continue;
    }
    if (applied == 0 && status.ok()) {
      // First backend rejected (bad vertex, duplicate edge, ...). Nothing
      // has been applied anywhere, and the same validation would fail on
      // every backend, so relay its answer verbatim.
      return response;
    }
    std::string detail = status.ok()
                             ? response.substr(0, response.find('\n'))
                             : status.message();
    return FormatErrorResponse(Status::Internal(
        "backend " + std::to_string(i) + " failed \"" + line + "\" (" +
        detail + "); applied on " + std::to_string(applied) + "/" +
        std::to_string(cluster_->size()) +
        " backends — cluster may be inconsistent, RELOAD to converge"));
  }
  ObsIncrement(kObsUpdatesFanned);
  char out[256];
  std::snprintf(out, sizeof out, "applied %s backends=%zu", line.c_str(),
                applied);
  return FormatOkResponse({out});
}

std::string RouterService::Health() {
  const size_t up = cluster_->num_up();
  const size_t total = cluster_->size();
  char line[256];
  std::snprintf(line, sizeof line,
                "%s backends=%zu/%zu mode=%s snapshot=%s reloads=%llu",
                up == total ? "ready" : "degraded", up, total,
                sharded_ ? "sharded" : "replicated",
                cluster_->base_snapshot().c_str(),
                static_cast<unsigned long long>(cluster_->reloads()));
  return FormatOkResponse({line});
}

std::string RouterService::StatsView() {
  std::vector<std::string> lines;
  lines.push_back(std::string("mode ") +
                  (sharded_ ? "sharded" : "replicated"));
  lines.push_back("backends " + std::to_string(cluster_->size()));
  lines.push_back("snapshot " + cluster_->base_snapshot());
  lines.push_back(
      "requests " +
      std::to_string(stats_.requests.load(std::memory_order_relaxed)));
  lines.push_back(
      "errors " + std::to_string(stats_.errors.load(std::memory_order_relaxed)));
  lines.push_back(
      "proxied " +
      std::to_string(stats_.proxied.load(std::memory_order_relaxed)));
  lines.push_back(
      "retries " +
      std::to_string(stats_.retries.load(std::memory_order_relaxed)));
  lines.push_back("reloads " + std::to_string(cluster_->reloads()));
  lines.push_back(
      "ids_issued " +
      std::to_string(stats_.ids_issued.load(std::memory_order_relaxed)));
  lines.push_back(
      "connections " +
      std::to_string(stats_.connections.load(std::memory_order_relaxed)));
  // Monotonic-clock fields so external scrapers can turn counter deltas
  // into rates (same contract as `lamo serve` STATS).
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "uptime_s %.3f",
                std::chrono::duration<double>(Clock::now() - start_).count());
  lines.emplace_back(buffer);
  std::snprintf(buffer, sizeof buffer, "start_time %.3f",
                std::chrono::duration<double>(start_.time_since_epoch()).count());
  lines.emplace_back(buffer);

  // One line per backend with the identity fields from its own STATS —
  // after a rolling reload this is how an operator verifies every backend
  // swapped onto the new model (matching checksums), straight through the
  // router.
  for (size_t i = 0; i < cluster_->size(); ++i) {
    Backend& backend = cluster_->backend(i);
    const BackendState state = backend.state();
    std::string line = "backend " + std::to_string(i) + " " +
                       BackendStateName(state) +
                       " port=" + std::to_string(backend.port()) +
                       " pid=" + std::to_string(backend.pid()) +
                       " inflight=" + std::to_string(backend.inflight()) +
                       " respawns=" + std::to_string(backend.respawns());
    if (state == BackendState::kUp) {
      std::string response;
      if (backend.SendRequest("STATS", &response).ok() &&
          response.rfind("OK ", 0) == 0) {
        std::map<std::string, std::string> fields;
        std::istringstream in(response);
        std::string payload_line;
        std::getline(in, payload_line);  // OK <n>
        while (std::getline(in, payload_line)) {
          ParseStatsLine(payload_line, &fields);
        }
        line += " snapshot=" + fields["snapshot_path"] +
                " checksum=" + fields["snapshot_checksum"] +
                " shard=" + fields["shard"] +
                " predictor=" + fields["predictor"] +
                " requests=" + fields["requests"];
      }
    }
    lines.push_back(line);
  }
  return FormatOkResponse(lines);
}

std::string RouterService::Metrics() {
  // The router's own registry first (its serve.* instrumentation is all
  // zero and therefore omitted by CollectPromFamilies, so the router-level
  // families are exclusively router.*, uptime and gauges)...
  std::vector<PromFamily> families;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    const Clock::time_point now = Clock::now();
    const double uptime_s = std::chrono::duration<double>(now - start_).count();
    const double start_time_s =
        std::chrono::duration<double>(start_.time_since_epoch()).count();
    const uint64_t now_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
            .count());
    ObsSink* sink = GetObsSink();
    families = CollectPromFamilies(sink, sink != nullptr ? &windows_ : nullptr,
                                   now_ms, uptime_s, start_time_s);
  }
  // ...then every up backend's METRICS scrape re-exported with
  // backend/shard labels injected, merged at family level so each `# TYPE`
  // header appears once with all backends' samples grouped under it.
  for (size_t i = 0; i < cluster_->size(); ++i) {
    Backend& backend = cluster_->backend(i);
    if (backend.state() != BackendState::kUp) continue;
    std::string response;
    if (!backend.SendRequest("METRICS", &response).ok() ||
        response.rfind("OK ", 0) != 0) {
      continue;
    }
    const size_t newline = response.find('\n');
    const std::string payload =
        newline == std::string::npos ? std::string() : response.substr(newline + 1);
    std::vector<PromFamily> scraped;
    std::string error;
    if (!ParsePromFamilies(payload, &scraped, &error)) continue;
    const std::string shard =
        sharded_ ? std::to_string(i) + "/" + std::to_string(cluster_->size())
                 : "0/1";
    MergePromFamilies(&families, scraped,
                      "backend=\"" + std::to_string(i) + "\",shard=\"" + shard +
                          "\"");
  }
  return FormatOkResponse(RenderPromLines(families));
}

std::string RouterService::Reload(const std::string& path) {
  if (path.empty()) {
    return FormatErrorResponse(
        Status::InvalidArgument("RELOAD requires a snapshot path"));
  }
  const Status status = cluster_->Reload(path);
  if (!status.ok()) return FormatErrorResponse(status);
  ObsIncrement(kObsReloads);
  char line[512];
  std::snprintf(line, sizeof line, "reloaded backends=%zu snapshot=%s",
                cluster_->size(), path.c_str());
  return FormatOkResponse({line});
}

void RouterService::ReloadAsync() {
  bool expected = false;
  if (!reload_running_.compare_exchange_strong(expected, true)) return;
  std::lock_guard<std::mutex> lock(reload_worker_mu_);
  if (reload_worker_.joinable()) reload_worker_.join();
  reload_worker_ = std::thread([this] {
    const Status status = cluster_->Reload(cluster_->base_snapshot());
    if (status.ok()) ObsIncrement(kObsReloads);
    reload_running_.store(false, std::memory_order_release);
  });
}

}  // namespace lamo
