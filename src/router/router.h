#ifndef LAMO_ROUTER_ROUTER_H_
#define LAMO_ROUTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/cluster.h"
#include "router/placement.h"
#include "serve/server.h"
#include "util/status.h"

namespace lamo {

/// ---- Cluster router --------------------------------------------------------
///
/// `lamo router` front-end: speaks the same line protocol as `lamo serve`,
/// but instead of answering from a snapshot it forwards PREDICT / MOTIFS /
/// TERMINFO to one of N supervised backend serve processes and aggregates
/// HEALTH / STATS into cluster views. Placement is sharded (protein % N,
/// matching `lamo pack --shards`) or replicated (consistent hashing with
/// least-loaded fallback); see router/placement.h. The admin verb
///
///   RELOAD <path>
///
/// (grammar in docs/FORMATS.md) and SIGHUP both trigger a rolling snapshot
/// swap via Cluster::Reload: clients keep getting answers for the whole
/// swap. Because RouterService implements LineService, the TCP front shares
/// every overload protection `lamo serve` has (slowloris guard, idle
/// reaper, line-length cap, accept backpressure, graceful drain).

/// Live router counters, exposed by the aggregated STATS view and mirrored
/// into the router.* obs metrics. Invariants (checked by lamo_report_check):
/// proxied == sum of backend requests; retries <= requests.
struct RouterStats {
  std::atomic<uint64_t> requests{0};   // lines entering Handle
  std::atomic<uint64_t> errors{0};     // ERR responses (any cause)
  std::atomic<uint64_t> proxied{0};    // forwards answered by a backend
  std::atomic<uint64_t> retries{0};    // requests retried at least once
  std::atomic<uint64_t> connections{0};
};

class RouterService : public LineService {
 public:
  /// Borrows the started cluster (caller keeps it alive and running).
  RouterService(Cluster* cluster, bool sharded);
  ~RouterService() override;

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// Routes one request line: forwards queries, aggregates HEALTH/STATS,
  /// executes RELOAD. Thread-safe.
  std::string Handle(const std::string& line) override;

  void OnConnection() override;
  uint64_t TotalRequests() const override {
    return stats_.requests.load(std::memory_order_relaxed);
  }
  uint64_t TotalConnections() const override {
    return stats_.connections.load(std::memory_order_relaxed);
  }

  /// SIGHUP entry point: kicks off Reload(current base) on a detached
  /// worker so the accept loop is never blocked; a reload already in
  /// flight makes this a no-op.
  void ReloadAsync();

  const RouterStats& stats() const { return stats_; }

 private:
  /// Picks the backend for a query and forwards it. Sharded placement is
  /// pinned (waits for the owning backend); replicated placement walks the
  /// ring preference order, skipping not-up backends, preferring the
  /// least-loaded candidate on failover.
  std::string Route(const std::string& key, uint32_t protein,
                    bool pinned, const std::string& line);
  std::string Health();
  std::string StatsView();
  std::string Reload(const std::string& path);

  Cluster* cluster_;
  const bool sharded_;
  HashRing ring_;
  RouterStats stats_;
  std::atomic<bool> reload_running_{false};
  std::thread reload_worker_;
  std::mutex reload_worker_mu_;
};

}  // namespace lamo

#endif  // LAMO_ROUTER_ROUTER_H_
