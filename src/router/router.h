#ifndef LAMO_ROUTER_ROUTER_H_
#define LAMO_ROUTER_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/window.h"
#include "router/cluster.h"
#include "router/placement.h"
#include "serve/access_log.h"
#include "serve/server.h"
#include "util/status.h"

namespace lamo {

/// ---- Cluster router --------------------------------------------------------
///
/// `lamo router` front-end: speaks the same line protocol as `lamo serve`,
/// but instead of answering from a snapshot it forwards PREDICT / MOTIFS /
/// TERMINFO / PREDICT_EDGE to one of N supervised backend serve processes,
/// fans the edge mutations ADDEDGE / DELEDGE out to every backend (each
/// shard keeps the full graph and the global motif frequencies, so all of
/// them must see every delta), and aggregates HEALTH / STATS into cluster
/// views. Placement is sharded (protein % N,
/// matching `lamo pack --shards`) or replicated (consistent hashing with
/// least-loaded fallback); see router/placement.h. The admin verb
///
///   RELOAD <path>
///
/// (grammar in docs/FORMATS.md) and SIGHUP both trigger a rolling snapshot
/// swap via Cluster::Reload: clients keep getting answers for the whole
/// swap. Because RouterService implements LineService, the TCP front shares
/// every overload protection `lamo serve` has (slowloris guard, idle
/// reaper, line-length cap, accept backpressure, graceful drain).

/// Live router counters, exposed by the aggregated STATS view and mirrored
/// into the router.* obs metrics. Invariants (checked by lamo_report_check):
/// proxied == sum of backend requests; retries <= requests; ids_issued ==
/// backend_requests + errors (every stamped request ends either answered by
/// a backend or as a router-originated error, never both, never neither).
struct RouterStats {
  std::atomic<uint64_t> requests{0};    // lines entering Handle
  /// Router-originated ERR responses: unparseable request lines and
  /// forwards that exhausted the retry deadline without a backend answer.
  /// An ERR *relayed* from a backend counts as proxied here (the backend's
  /// own serve.errors accounts for it), and failed admin commands (RELOAD
  /// of a bad snapshot) are reported to the caller without touching this —
  /// errors measures lost/rejected traffic, not rejected administration.
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> proxied{0};     // forwards answered by a backend
  std::atomic<uint64_t> retries{0};     // requests retried at least once
  std::atomic<uint64_t> ids_issued{0};  // request IDs stamped onto queries
  std::atomic<uint64_t> connections{0};
};

class RouterService : public LineService {
 public:
  /// Borrows the started cluster (caller keeps it alive and running).
  RouterService(Cluster* cluster, bool sharded);
  ~RouterService() override;

  RouterService(const RouterService&) = delete;
  RouterService& operator=(const RouterService&) = delete;

  /// Routes one request line: forwards queries, aggregates HEALTH/STATS,
  /// executes RELOAD. Thread-safe.
  std::string Handle(const std::string& line) override;

  void OnConnection() override;
  uint64_t TotalRequests() const override {
    return stats_.requests.load(std::memory_order_relaxed);
  }
  uint64_t TotalConnections() const override {
    return stats_.connections.load(std::memory_order_relaxed);
  }

  /// SIGHUP entry point: kicks off Reload(current base) on a detached
  /// worker so the accept loop is never blocked; a reload already in
  /// flight makes this a no-op.
  void ReloadAsync();

  const RouterStats& stats() const { return stats_; }

  /// Attaches a sampled JSONL access log (borrowed; caller keeps it alive
  /// past the last Handle call). Entries carry the stamped request ID and
  /// the answering backend, joining with the backends' own access logs.
  void set_access_log(AccessLog* log) { access_log_ = log; }

 private:
  /// Where a Route answer came from, for error accounting and access logs.
  struct RouteResult {
    bool from_backend = false;      ///< a backend answered (even with ERR)
    size_t backend = SIZE_MAX;      ///< answering backend index
    uint64_t backend_us = 0;        ///< time inside the winning SendRequest
  };

  /// Picks the backend for a query and forwards it. Sharded placement is
  /// pinned (waits for the owning backend); replicated placement walks the
  /// ring preference order, skipping not-up backends, preferring the
  /// least-loaded candidate on failover.
  std::string Route(const std::string& key, uint32_t protein,
                    bool pinned, const std::string& line, RouteResult* result);
  /// Fans an ADDEDGE/DELEDGE out to every backend sequentially. All-up
  /// precondition, all-must-apply postcondition; a mid-sequence failure is
  /// reported with how far it got so the operator can RELOAD to converge.
  std::string FanOutUpdate(const Request& request);
  std::string Health();
  std::string StatsView();
  std::string Metrics();
  std::string Reload(const std::string& path);

  Cluster* cluster_;
  const bool sharded_;
  HashRing ring_;
  RouterStats stats_;
  std::atomic<uint64_t> next_id_{1};
  AccessLog* access_log_ = nullptr;
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  std::mutex metrics_mu_;
  MetricWindows windows_;  // guarded by metrics_mu_
  std::atomic<bool> reload_running_{false};
  std::thread reload_worker_;
  std::mutex reload_worker_mu_;
};

}  // namespace lamo

#endif  // LAMO_ROUTER_ROUTER_H_
