#include "router/backend.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/fault.h"

namespace lamo {
namespace {

using Clock = std::chrono::steady_clock;

/// Injected transport failure on the forward path: `error` action makes
/// SendRequest report IoError as if the socket died, exercising the router's
/// retry machinery; `crash` kills the router mid-forward for the crash
/// matrix.
const size_t kFaultForward = FaultPointId("router.forward");

/// Parses "...listening on 127.0.0.1:<port>..." out of a banner chunk.
bool ParsePortFromBanner(const std::string& text, uint16_t* port) {
  const std::string needle = "listening on 127.0.0.1:";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  unsigned long value = 0;
  const char* digits = text.c_str() + at + needle.size();
  char* end = nullptr;
  value = std::strtoul(digits, &end, 10);
  if (end == digits || value == 0 || value > 65535) return false;
  *port = static_cast<uint16_t>(value);
  return true;
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Dials 127.0.0.1:port. Returns -1 on failure.
int DialBackend(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

/// Writes all of `data` to `fd`, retrying short writes and EINTR.
bool WriteAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line from `fd` into `*line` (newline stripped),
/// using and refilling `*buffer`. False on EOF/error before a full line.
bool ReadLine(int fd, std::string* buffer, std::string* line) {
  while (true) {
    const size_t newline = buffer->find('\n');
    if (newline != std::string::npos) {
      line->assign(*buffer, 0, newline);
      buffer->erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-response
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

const char* BackendStateName(BackendState state) {
  switch (state) {
    case BackendState::kDown:
      return "down";
    case BackendState::kUp:
      return "up";
    case BackendState::kDraining:
      return "draining";
  }
  return "unknown";
}

Backend::~Backend() {
  Kill(SIGKILL);
  if (pid() > 0) waitpid(pid(), nullptr, 0);
  SwapStdoutFd(-1);
  CloseAllConns();
}

void Backend::SwapStdoutFd(int fd) {
  std::lock_guard<std::mutex> lock(stdout_mu_);
  if (stdout_fd_ >= 0) close(stdout_fd_);
  stdout_fd_ = fd;
}

Status Backend::Spawn(const BackendConfig& config) {
  if (generation_.fetch_add(1, std::memory_order_acq_rel) > 0) {
    respawns_.fetch_add(1, std::memory_order_relaxed);
  }
  CloseAllConns();
  SwapStdoutFd(-1);

  int out_pipe[2];
  if (pipe(out_pipe) != 0) {
    return Status::IoError("backend " + std::to_string(index_) +
                           ": pipe() failed");
  }

  const pid_t child = fork();
  if (child < 0) {
    close(out_pipe[0]);
    close(out_pipe[1]);
    return Status::IoError("backend " + std::to_string(index_) +
                           ": fork() failed");
  }
  if (child == 0) {
    // Child: stdout -> pipe (the router parses the listening banner from
    // it); die with the router so killed tests cannot leak serve processes.
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    // A backend must not inherit the router's fault arming: the injected
    // fault targets the router process, and kFaultExitCode from a backend
    // would masquerade as the router crash the matrix looks for.
    unsetenv("LAMO_FAULT");
    std::vector<const char*> argv = {config.binary.c_str(), "serve",
                                     "--snapshot", config.snapshot.c_str(),
                                     "--port", "0"};
    for (const std::string& arg : config.extra_args) {
      argv.push_back(arg.c_str());
    }
    argv.push_back(nullptr);
    execv(config.binary.c_str(), const_cast<char* const*>(argv.data()));
    _exit(127);  // exec failed
  }

  close(out_pipe[1]);
  pid_.store(child, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_path_ = config.snapshot;
  }

  // Read the child's stdout until the listening banner appears (or the
  // budget expires / the child exits). The pipe stays open afterwards and
  // the monitor thread keeps draining it.
  std::string banner;
  uint16_t port = 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(config.spawn_timeout_ms);
  bool ok = false;
  while (Clock::now() < deadline) {
    pollfd pfd{out_pipe[0], POLLIN, 0};
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
      char chunk[512];
      const ssize_t n = read(out_pipe[0], chunk, sizeof chunk);
      if (n <= 0) break;  // EOF: child died before listening
      banner.append(chunk, static_cast<size_t>(n));
      if (ParsePortFromBanner(banner, &port)) {
        ok = true;
        break;
      }
    }
    int wait_status = 0;
    if (waitpid(child, &wait_status, WNOHANG) == child) {
      pid_.store(-1, std::memory_order_release);
      close(out_pipe[0]);
      return Status::IoError("backend " + std::to_string(index_) +
                             ": serve process exited before listening");
    }
  }
  if (!ok) {
    close(out_pipe[0]);
    Kill(SIGKILL);
    if (pid() > 0) {
      waitpid(pid(), nullptr, 0);
      pid_.store(-1, std::memory_order_release);
    }
    return Status::DeadlineExceeded("backend " + std::to_string(index_) +
                                    ": no listening banner within " +
                                    std::to_string(config.spawn_timeout_ms) +
                                    "ms");
  }

  SetNonBlocking(out_pipe[0]);
  SwapStdoutFd(out_pipe[0]);
  port_.store(port, std::memory_order_release);
  set_state(BackendState::kUp);
  if (config.log != nullptr) {
    std::fprintf(config.log,
                 "lamo router: backend %zu up (pid %ld, port %u, %s)\n",
                 index_, static_cast<long>(child), port,
                 config.snapshot.c_str());
    std::fflush(config.log);
  }
  return Status::OK();
}

void Backend::Kill(int signal_number) {
  const pid_t p = pid();
  if (p > 0) kill(p, signal_number);
}

bool Backend::Reap() {
  const pid_t p = pid();
  if (p <= 0) return false;
  int wait_status = 0;
  if (waitpid(p, &wait_status, WNOHANG) != p) return false;
  pid_.store(-1, std::memory_order_release);
  set_state(BackendState::kDown);
  SwapStdoutFd(-1);
  CloseAllConns();
  return true;
}

void Backend::DrainOutput() {
  std::lock_guard<std::mutex> lock(stdout_mu_);
  if (stdout_fd_ < 0) return;
  char chunk[1024];
  while (read(stdout_fd_, chunk, sizeof chunk) > 0) {
  }
}

std::string Backend::snapshot_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_path_;
}

Status Backend::AcquireConn(BackendConn* conn) {
  const uint64_t gen = generation();
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!pool_.empty()) {
      BackendConn cached = std::move(pool_.back());
      pool_.pop_back();
      if (cached.generation == gen && cached.fd >= 0) {
        *conn = std::move(cached);
        return Status::OK();
      }
      if (cached.fd >= 0) close(cached.fd);
    }
  }
  const int fd = DialBackend(port());
  if (fd < 0) {
    return Status::Unavailable("backend " + std::to_string(index_) +
                               ": connect failed");
  }
  conn->fd = fd;
  conn->buffer.clear();
  conn->generation = gen;
  return Status::OK();
}

void Backend::ReleaseConn(BackendConn conn, bool healthy) {
  if (conn.fd < 0) return;
  if (!healthy || conn.generation != generation() ||
      state() == BackendState::kDown) {
    close(conn.fd);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  pool_.push_back(std::move(conn));
}

void Backend::CloseAllConns() {
  std::lock_guard<std::mutex> lock(mu_);
  for (BackendConn& conn : pool_) {
    if (conn.fd >= 0) close(conn.fd);
  }
  pool_.clear();
}

Status Backend::SendRequest(const std::string& line, std::string* response) {
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  struct InflightGuard {
    std::atomic<uint64_t>* counter;
    ~InflightGuard() { counter->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&inflight_};

  if (FaultHit(kFaultForward) == FaultAction::kError) {
    return Status::IoError("injected fault: router.forward");
  }

  BackendConn conn;
  Status acquired = AcquireConn(&conn);
  if (!acquired.ok()) return acquired;

  bool healthy = false;
  Status result = Status::OK();
  do {
    if (!WriteAll(conn.fd, line + "\n")) {
      result = Status::IoError("backend " + std::to_string(index_) +
                               ": write failed");
      break;
    }
    std::string head;
    if (!ReadLine(conn.fd, &conn.buffer, &head)) {
      result = Status::IoError("backend " + std::to_string(index_) +
                               ": connection closed mid-response");
      break;
    }
    std::string full = head + "\n";
    if (head.rfind("OK ", 0) == 0) {
      char* end = nullptr;
      const unsigned long count = std::strtoul(head.c_str() + 3, &end, 10);
      if (end == head.c_str() + 3) {
        result = Status::IoError("backend " + std::to_string(index_) +
                                 ": malformed OK header");
        break;
      }
      std::string payload_line;
      bool truncated = false;
      for (unsigned long i = 0; i < count; ++i) {
        if (!ReadLine(conn.fd, &conn.buffer, &payload_line)) {
          truncated = true;
          break;
        }
        full += payload_line + "\n";
      }
      if (truncated) {
        result = Status::IoError("backend " + std::to_string(index_) +
                                 ": truncated payload");
        break;
      }
    }
    // ERR responses are one line and already complete; any other shape is
    // passed through verbatim as a single line.
    *response = std::move(full);
    healthy = true;
    requests_.fetch_add(1, std::memory_order_relaxed);
  } while (false);

  ReleaseConn(std::move(conn), healthy);
  return result;
}

}  // namespace lamo
