#ifndef LAMO_ROUTER_PLACEMENT_H_
#define LAMO_ROUTER_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lamo {

/// ---- Request placement -----------------------------------------------------
///
/// How the router picks a backend for a request. Two modes:
///
///   sharded     backend i serves shard i of N (`<base>.shard<i>of<N>`), and a
///               protein's shard is fixed by `p % N` — the same rule
///               MakeShard uses for ownership, so routing and data placement
///               cannot drift. A sharded request has exactly one valid
///               destination; when it is down the router waits for the
///               respawn instead of failing over.
///
///   replicated  every backend serves the full snapshot, so any of them can
///               answer any request. Placement uses a consistent-hash ring
///               for cache affinity (the same key keeps hitting the same
///               backend's response cache) and falls back to the
///               least-loaded up backend when the primary is down.

/// FNV-1a 64-bit over `key`. The router's only hash: ring points, key
/// placement and TERMINFO affinity all use it, so placement is stable across
/// runs and platforms.
uint64_t RouterHash(const std::string& key);

/// The backend that owns `protein` under sharded placement: p % num_backends,
/// matching Snapshot::OwnsProtein for shard i of num_backends.
size_t ShardBackend(uint32_t protein, size_t num_backends);

/// Default virtual points per node. 64 keeps the max/min key-share ratio
/// under ~1.3 for small clusters while the ring stays a few KB.
inline constexpr size_t kDefaultVirtualNodes = 64;

/// Consistent-hash ring over nodes 0..num_nodes-1, each represented by
/// `virtual_nodes` points. Lookup cost is one binary search. Adding or
/// removing one node moves only ~1/num_nodes of the key space — the
/// stability property the unit tests assert.
class HashRing {
 public:
  explicit HashRing(size_t num_nodes,
                    size_t virtual_nodes = kDefaultVirtualNodes);

  /// The node owning `key`: first ring point clockwise from RouterHash(key).
  size_t Primary(const std::string& key) const;

  /// All nodes in fallback order for `key`: the primary first, then each
  /// remaining node in the order its first point appears clockwise.
  /// Deterministic for a given (key, ring).
  std::vector<size_t> Preference(const std::string& key) const;

  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Point {
    uint64_t hash;
    uint32_t node;
  };

  size_t num_nodes_;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace lamo

#endif  // LAMO_ROUTER_PLACEMENT_H_
