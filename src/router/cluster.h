#ifndef LAMO_ROUTER_CLUSTER_H_
#define LAMO_ROUTER_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "router/backend.h"
#include "util/status.h"

namespace lamo {

/// ---- Backend cluster -------------------------------------------------------
///
/// Owns the router's N backend processes: spawns them at Start, watches them
/// from a monitor thread (reap + respawn a dead backend, drain its stdout
/// pipe), forwards requests with bounded retries, and performs the rolling
/// snapshot reload that swaps every backend one at a time without failing a
/// request.

struct ClusterOptions {
  std::string binary;    // path to the lamo executable (exec'd for backends)
  std::string snapshot;  // base snapshot path
  bool sharded = false;  // backend i serves <snapshot>.shard<i>of<N>
  size_t num_backends = 1;
  /// Forward() keeps retrying transport failures and down backends until
  /// this budget expires. Must stay below the front server's
  /// request_timeout_ms or a respawn window turns into client-visible
  /// DeadlineExceeded instead of a served-late response.
  uint64_t retry_deadline_ms = 10'000;
  /// Monitor thread poll cadence: death detection and respawn latency.
  uint64_t monitor_interval_ms = 50;
  uint64_t spawn_timeout_ms = 20'000;
  std::FILE* log = nullptr;
  /// When non-empty, backend i is spawned with
  /// `--access-log <backend_access_log>.<i>` (one JSONL file per backend so
  /// concurrent processes never interleave lines) plus the sampling knobs
  /// below, mirroring the router's own --access-log flags.
  std::string backend_access_log;
  uint64_t backend_access_sample = 1;
  uint64_t backend_slow_ms = 0;
  /// When non-empty, backend i is spawned with
  /// `--predictor predictors[i % predictors.size()]`. A single entry pins
  /// every backend to one predictor; several entries interleave backends
  /// across predictors for A/B serving (e.g. {"lms", "gds"} alternates).
  /// Names are validated by the CLI against the predictor registry before
  /// the cluster is built.
  std::vector<std::string> predictors;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Spawns every backend and starts the monitor thread. Fails fast if any
  /// backend cannot start (bad snapshot path, exec failure).
  Status Start();

  /// Kills every backend and joins the monitor thread. Idempotent.
  void Stop();

  /// The snapshot file backend `index` serves under `base`: the shard file
  /// in sharded mode, `base` itself in replicated mode.
  std::string SnapshotPathFor(const std::string& base, size_t index) const;

  /// Forwards one request line to backend `index`, retrying transport
  /// failures — and waiting out kDown/kDraining windows — until the retry
  /// deadline. `*retried` is set true iff at least one retry happened
  /// (feeds router.retries).
  Status Forward(size_t index, const std::string& line, std::string* response,
                 bool* retried);

  /// Rolling reload: pack-validates `new_base` (and every shard file in
  /// sharded mode), then for each backend in turn drains it (state
  /// kDraining, wait for inflight == 0), terminates it, spawns the
  /// replacement on the new snapshot and waits until a HEALTH probe answers.
  /// Requests keep flowing: replicated traffic fails over to other
  /// backends, sharded traffic for the draining shard waits inside
  /// Forward's retry loop. On success the cluster's base path becomes
  /// `new_base`.
  Status Reload(const std::string& new_base);

  size_t size() const { return backends_.size(); }
  Backend& backend(size_t index) { return *backends_[index]; }
  const Backend& backend(size_t index) const { return *backends_[index]; }

  /// Backends currently kUp.
  size_t num_up() const;
  uint64_t retry_deadline_ms() const { return options_.retry_deadline_ms; }
  /// Completed rolling reloads (router.reloads).
  uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }
  /// Current base snapshot path (updated by a successful Reload).
  std::string base_snapshot() const;

 private:
  void MonitorLoop();
  Status SpawnBackend(size_t index, const std::string& base);
  Status ProbeHealth(size_t index);
  /// The spawn config for backend `index` serving `snapshot_path` — the one
  /// place the access-log extra args are composed, so initial spawns,
  /// monitor respawns and rolling reloads all agree.
  BackendConfig MakeBackendConfig(size_t index,
                                  const std::string& snapshot_path) const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::thread monitor_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> reloads_{0};
  /// Held across a rolling reload so concurrent RELOAD/SIGHUP serialize.
  std::mutex reload_mu_;
  mutable std::mutex base_mu_;  // guards base_snapshot_
  std::string base_snapshot_;
};

}  // namespace lamo

#endif  // LAMO_ROUTER_CLUSTER_H_
