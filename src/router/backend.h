#ifndef LAMO_ROUTER_BACKEND_H_
#define LAMO_ROUTER_BACKEND_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace lamo {

/// ---- Backend process supervision -------------------------------------------
///
/// One Backend wraps one child `lamo serve` process: fork/exec with an
/// ephemeral port, parse the `listening on 127.0.0.1:<port>` banner from the
/// child's stdout pipe, then keep the pipe open (closing it would SIGPIPE
/// the child on its next log line) and drain it from the monitor thread. The
/// router holds N of these plus a pool of persistent TCP connections per
/// backend; a dead connection is dropped and redialed, a dead process is
/// reaped and respawned by the cluster's monitor.

/// How a backend participates in routing. kDraining is the rolling-reload
/// window: no new requests are placed, in-flight ones finish, then the
/// process is swapped.
enum class BackendState : uint8_t { kDown, kUp, kDraining };

const char* BackendStateName(BackendState state);

/// Everything needed to (re)spawn one backend process.
struct BackendConfig {
  std::string binary;          // path to the lamo executable
  std::string snapshot;        // snapshot file this backend serves
  uint64_t spawn_timeout_ms = 20'000;  // banner-parse budget
  std::FILE* log = nullptr;    // nullptr silences supervision chatter
  /// Extra argv entries appended to `serve --snapshot <path> --port 0`
  /// (e.g. `--access-log <path>`); identical across respawns.
  std::vector<std::string> extra_args;
};

/// One pooled TCP connection to a backend, with its read buffer (leftover
/// bytes between requests stay with the connection) and the backend
/// generation it was dialed against — a respawn bumps the generation so
/// stale sockets are discarded instead of returned to the pool.
struct BackendConn {
  int fd = -1;
  std::string buffer;
  uint64_t generation = 0;
};

class Backend {
 public:
  explicit Backend(size_t index) : index_(index) {}
  ~Backend();

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Spawns `lamo serve --snapshot <config.snapshot> --port 0`, waits for
  /// the listening banner, and marks the backend kUp. Bumps the generation
  /// so connections to a previous incarnation cannot be reused.
  Status Spawn(const BackendConfig& config);

  /// Signals the child (idempotent; no-op when not running).
  void Kill(int signal_number);

  /// Non-blocking waitpid. Returns true (and transitions to kDown, closing
  /// the pipe and pooled connections) iff the child has exited.
  bool Reap();

  /// Non-blocking drain of the child's stdout pipe so a chatty backend
  /// cannot fill it and block. Called from the monitor thread.
  void DrainOutput();

  /// Sends one request line and reads the complete wire response (`OK <n>` +
  /// n lines, or one `ERR` line). Transport failures (dial/write/read/EOF)
  /// return a Status error — the response string, including backend-side
  /// `ERR`, is a success. Thread-safe; connections come from the pool.
  Status SendRequest(const std::string& line, std::string* response);

  size_t index() const { return index_; }
  BackendState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(BackendState s) { state_.store(s, std::memory_order_release); }
  uint16_t port() const { return port_.load(std::memory_order_acquire); }
  pid_t pid() const { return pid_.load(std::memory_order_acquire); }
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Requests currently inside SendRequest — the drain condition for rolling
  /// reload and the load signal for least-loaded fallback.
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }
  /// Lifetime requests forwarded to this backend (router.backend_requests).
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Times this backend was (re)spawned, minus the initial start.
  uint64_t respawns() const {
    return respawns_.load(std::memory_order_relaxed);
  }

  /// Snapshot path of the current incarnation (set by Spawn).
  std::string snapshot_path() const;

 private:
  Status AcquireConn(BackendConn* conn);
  void ReleaseConn(BackendConn conn, bool healthy);
  void CloseAllConns();

  const size_t index_;
  std::atomic<BackendState> state_{BackendState::kDown};
  std::atomic<pid_t> pid_{-1};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> respawns_{0};

  /// Swaps the stored stdout pipe fd for `fd`, closing the old one. The
  /// mutex serializes this against the monitor thread's non-blocking reads
  /// in DrainOutput — an fd must never be closed (and possibly reused) while
  /// a read on it is in flight.
  void SwapStdoutFd(int fd);

  mutable std::mutex stdout_mu_;  // guards stdout_fd_ (close vs. drain race)
  int stdout_fd_ = -1;

  mutable std::mutex mu_;  // guards pool_ and snapshot_path_
  std::vector<BackendConn> pool_;
  std::string snapshot_path_;
};

}  // namespace lamo

#endif  // LAMO_ROUTER_BACKEND_H_
