#include "serve/cache.h"

#include <functional>

namespace lamo {

ResponseCache::ResponseCache(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  if (num_shards == 0) num_shards = 1;
  if (num_shards > capacity && capacity > 0) num_shards = capacity;
  per_shard_capacity_ =
      capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResponseCache::Shard& ResponseCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ResponseCache::Get(const std::string& key, std::string* value) {
  if (capacity_ == 0) return false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
  *value = it->second->second;
  return true;
}

void ResponseCache::Put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return;
  }
  shard.entries.emplace_front(key, std::move(value));
  shard.index[key] = shard.entries.begin();
  if (shard.entries.size() > per_shard_capacity_) {
    shard.index.erase(shard.entries.back().first);
    shard.entries.pop_back();
  }
}

size_t ResponseCache::EraseIf(
    const std::function<bool(const std::string&)>& pred) {
  if (capacity_ == 0) return 0;
  size_t erased = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (pred(it->first)) {
        shard->index.erase(it->first);
        it = shard->entries.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  return erased;
}

size_t ResponseCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

}  // namespace lamo
