#include "serve/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstring>
#include <sstream>

#include "util/fault.h"

namespace lamo {
namespace {

const size_t kFaultJournal = FaultPointId("update.journal");

std::string HeaderLine(uint64_t checksum) {
  char buf[64];
  snprintf(buf, sizeof(buf), "LAMOJOURNAL 1 %016" PRIx64, checksum);
  return buf;
}

}  // namespace

StatusOr<DeltaEntry> ParseDeltaLine(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  DeltaEntry entry;
  if (verb == "ADDEDGE") {
    entry.add = true;
  } else if (verb == "DELEDGE") {
    entry.add = false;
  } else {
    return Status::InvalidArgument("delta line must start with ADDEDGE or "
                                   "DELEDGE, got: " + line);
  }
  uint64_t u = 0, v = 0;
  std::string extra;
  if (!(in >> u >> v) || (in >> extra)) {
    return Status::InvalidArgument("delta line wants exactly two vertex ids: " +
                                   line);
  }
  entry.u = static_cast<VertexId>(u);
  entry.v = static_cast<VertexId>(v);
  return entry;
}

bool IsDeltaComment(const std::string& line) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                             line[i] == '\r')) {
    ++i;
  }
  if (i == line.size()) return true;
  if (line[i] == '#') return true;
  return line.compare(i, 11, "LAMOJOURNAL") == 0;
}

StatusOr<UpdateJournal> UpdateJournal::Open(const std::string& path,
                                            uint64_t snapshot_checksum,
                                            std::vector<DeltaEntry>* replay) {
  replay->clear();
  const std::string header = HeaderLine(snapshot_checksum);
  FILE* existing = fopen(path.c_str(), "r");
  size_t entries = 0;
  if (existing != nullptr) {
    // Replay a pre-existing journal: header must bind to this snapshot;
    // complete entry lines are parsed; a torn trailing fragment (no '\n')
    // is the unacknowledged update a crash left behind — skip it.
    std::string content;
    char buf[4096];
    size_t got;
    while ((got = fread(buf, 1, sizeof(buf), existing)) > 0) {
      content.append(buf, got);
    }
    fclose(existing);
    size_t pos = 0;
    bool saw_header = false;
    while (pos < content.size()) {
      const size_t nl = content.find('\n', pos);
      if (nl == std::string::npos) break;  // torn trailing line
      std::string line = content.substr(pos, nl - pos);
      pos = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!saw_header) {
        if (line != header) {
          return Status::Corruption(
              "journal " + path + " does not belong to this snapshot: "
              "header \"" + line + "\" wants \"" + header + "\"");
        }
        saw_header = true;
        continue;
      }
      if (IsDeltaComment(line)) continue;
      StatusOr<DeltaEntry> entry = ParseDeltaLine(line);
      if (!entry.ok()) return entry.status();
      replay->push_back(*entry);
      ++entries;
    }
    if (!saw_header && !content.empty()) {
      return Status::Corruption("journal " + path +
                                " has no complete header line");
    }
    FILE* file = fopen(path.c_str(), "a");
    if (file == nullptr) {
      return Status::IoError("cannot reopen journal " + path +
                             " for append: " + strerror(errno));
    }
    if (content.empty()) {
      // An empty file (e.g. touch'd by an operator): write the header now.
      if (fprintf(file, "%s\n", header.c_str()) < 0 || fflush(file) != 0 ||
          fsync(fileno(file)) != 0) {
        fclose(file);
        return Status::IoError("cannot write journal header to " + path);
      }
    }
    return UpdateJournal(path, file, entries);
  }
  FILE* file = fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::IoError("cannot create journal " + path + ": " +
                           strerror(errno));
  }
  if (fprintf(file, "%s\n", header.c_str()) < 0 || fflush(file) != 0 ||
      fsync(fileno(file)) != 0) {
    fclose(file);
    return Status::IoError("cannot write journal header to " + path);
  }
  return UpdateJournal(path, file, 0);
}

UpdateJournal::UpdateJournal(UpdateJournal&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      entries_(other.entries_) {
  other.file_ = nullptr;
}

UpdateJournal& UpdateJournal::operator=(UpdateJournal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) fclose(file_);
    path_ = std::move(other.path_);
    file_ = other.file_;
    entries_ = other.entries_;
    other.file_ = nullptr;
  }
  return *this;
}

UpdateJournal::~UpdateJournal() {
  if (file_ != nullptr) fclose(file_);
}

Status UpdateJournal::Append(const DeltaEntry& entry) {
  // The fault point sits before the first byte reaches the file: a crash
  // here leaves no trace, so replay reproduces the pre-update state and the
  // client never saw an ack — the "entry absent" consistency case.
  const FaultAction action = FaultHit(kFaultJournal);
  if (action == FaultAction::kError) {
    return Status::IoError("injected journal append failure");
  }
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal is closed");
  }
  if (fprintf(file_, "%s %u %u\n", entry.add ? "ADDEDGE" : "DELEDGE",
              entry.u, entry.v) < 0 ||
      fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::IoError("journal append to " + path_ + " failed: " +
                           strerror(errno));
  }
  ++entries_;
  return Status::OK();
}

}  // namespace lamo
