#include "serve/access_log.h"

#include <chrono>

#include "obs/json.h"

namespace lamo {

StatusOr<std::unique_ptr<AccessLog>> AccessLog::Open(
    const AccessLogOptions& options) {
  std::FILE* file = std::fopen(options.path.c_str(), "a");
  if (file == nullptr) {
    return Status::IoError("cannot open access log " + options.path);
  }
  return std::unique_ptr<AccessLog>(new AccessLog(file, options));
}

AccessLog::AccessLog(std::FILE* file, const AccessLogOptions& options)
    : file_(file), options_(options) {}

AccessLog::~AccessLog() { std::fclose(file_); }

bool AccessLog::Log(const Entry& entry) {
  const bool slow =
      options_.slow_ms > 0 && entry.total_us >= options_.slow_ms * 1000;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = seq_++;
  const uint64_t sample = options_.sample == 0 ? 1 : options_.sample;
  if (!slow && seq % sample != 0) return false;

  JsonWriter json;
  json.BeginObject();
  json.Key("ts_ms");
  json.Int(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));
  json.Key("id");
  json.Int(entry.id);
  json.Key("verb");
  json.String(entry.verb);
  json.Key("req");
  json.String(entry.request);
  json.Key("status");
  json.String(entry.ok ? "ok" : "err");
  json.Key("us");
  json.Int(entry.total_us);
  json.Key("slow");
  json.Bool(slow);
  if (entry.cache != nullptr) {
    json.Key("cache");
    json.String(entry.cache);
  }
  if (entry.backend >= 0) {
    json.Key("backend");
    json.Int(static_cast<uint64_t>(entry.backend));
  }
  if (!entry.spans_us.empty()) {
    json.Key("spans");
    json.BeginObject();
    for (const auto& [name, us] : entry.spans_us) {
      json.Key(name);
      json.Int(us);
    }
    json.EndObject();
  }
  json.EndObject();
  std::fprintf(file_, "%s\n", json.str().c_str());
  std::fflush(file_);
  return true;
}

}  // namespace lamo
