#ifndef LAMO_SERVE_SNAPSHOT_H_
#define LAMO_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/labeled_motif.h"
#include "graph/graph.h"
#include "ontology/annotation.h"
#include "ontology/informative.h"
#include "ontology/ontology.h"
#include "ontology/weights.h"
#include "util/status.h"

namespace lamo {

/// ---- Model snapshot (`.lamosnap`) ----------------------------------------
///
/// The serving subsystem's binary artifact: everything `lamo predict` would
/// re-derive from the text inputs (OBO ontology with its ancestor closures,
/// GAF annotations, Lord term weights, informative/border functional-class
/// flags, labeled motifs with strengths, a per-protein motif-site index and
/// the top-category prediction context) compiled once by `lamo pack` and
/// loaded back with one sequential read — no text parsing, no closure or
/// weight recomputation on the serve path.
///
/// The on-disk layout (field by field) is documented in docs/FORMATS.md
/// ("Model snapshot"). The file is versioned and checksummed; the reader
/// rejects truncated files, wrong magic, unsupported versions and checksum
/// mismatches with a Status error and never crashes on corrupt input.

/// File magic, first 8 bytes of every snapshot.
inline constexpr char kSnapshotMagic[8] = {'L', 'A', 'M', 'O',
                                           'S', 'N', 'A', 'P'};

/// Current format version. Readers accept kMinSnapshotVersion through this.
/// Version 2 added the shard section (num_shards, shard_id) right after the
/// version word; version 3 added the predictor section (precomputed GDS
/// signature and role-vector matrices) between the prediction context and
/// the checksum; see docs/FORMATS.md.
inline constexpr uint32_t kSnapshotVersion = 3;

/// Oldest version this build still reads. A version-2 file decodes with an
/// empty predictor section, so it can serve the lms backend but `lamo serve
/// --predictor gds|role` asks for a repack.
inline constexpr uint32_t kMinSnapshotVersion = 2;

/// One motif site a protein appears at: `motifs[motif]`'s canonical vertex
/// `vertex`. Mirrors LabeledMotifPredictor's per-protein index.
struct SnapshotSite {
  uint32_t motif = 0;
  uint32_t vertex = 0;

  friend bool operator==(const SnapshotSite& a, const SnapshotSite& b) {
    return a.motif == b.motif && a.vertex == b.vertex;
  }
};

/// The in-memory image of a snapshot.
struct Snapshot {
  Graph graph;
  Ontology ontology;
  AnnotationTable annotations;
  TermWeights weights;
  InformativeClasses informative;
  std::vector<LabeledMotif> motifs;

  /// Per-protein motif-occurrence index: sites[p] lists the (motif, vertex)
  /// pairs protein p plays, deduplicated, in first-seen order (identical to
  /// the index LabeledMotifPredictor builds).
  std::vector<std::vector<SnapshotSite>> sites;

  /// Prediction context, materialized at pack time: the top categories
  /// (children of the first ontology root) and each protein's known
  /// categories generalized via the true path — exactly what `lamo predict`
  /// derives before answering.
  std::vector<TermId> categories;
  std::vector<std::vector<TermId>> protein_categories;

  /// Predictor section (version 3): precomputed inputs of the non-default
  /// backends, so `lamo serve --predictor gds|role` loads instead of
  /// recounting orbits at startup. Both computations are deterministic, so
  /// the packed matrices equal what offline `lamo predict` recomputes — the
  /// basis of the offline/serving byte-identity contract. Shards keep the
  /// full matrices (scoring must be identical everywhere). Empty when a
  /// version-2 file was loaded.
  std::vector<uint64_t> gds_signatures;  // flat n x kGdsOrbits
  uint32_t role_dim = 0;                 // role-vector dimension
  std::vector<double> role_vectors;      // flat n x role_dim

  /// Format version to encode as / decoded from. BuildSnapshot leaves the
  /// current version; `lamo pack --snapshot-version 2` downgrades for
  /// compatibility testing (the encoder then omits the predictor section).
  uint32_t version = kSnapshotVersion;

  /// Shard section. An unsharded snapshot is shard 0 of 1. Shard k of N
  /// keeps the full graph, ontology, annotations, weights, motifs and
  /// prediction context (so scoring is identical everywhere), but retains
  /// only the motif occurrences touching at least one owned protein
  /// (p % num_shards == shard_id) and only the owned rows of the per-protein
  /// site index — the memory that actually scales with query ownership.
  uint32_t num_shards = 1;
  uint32_t shard_id = 0;

  /// Identity, filled by DecodeSnapshot/ReadSnapshot (not serialized): the
  /// file's trailing FNV-1a checksum and the path it was loaded from.
  /// Surfaced by STATS so operators (and the router) can verify which model
  /// a backend is serving after a rolling reload.
  uint64_t checksum = 0;
  std::string source_path;

  /// True iff this shard owns protein p (always true when num_shards == 1).
  bool OwnsProtein(uint32_t p) const { return p % num_shards == shard_id; }
};

/// Canonical on-disk name of shard `shard_id` of `num_shards` derived from a
/// base snapshot path: `<base>.shard<k>of<N>`. Shared by `lamo pack
/// --shards` and the router's sharded placement so the two cannot drift.
std::string ShardSnapshotPath(const std::string& base, uint32_t shard_id,
                              uint32_t num_shards);

/// Extracts shard `shard_id` of `num_shards` from a full snapshot: drops
/// motif occurrences containing no owned protein and clears the site-index
/// rows of non-owned proteins. For every owned protein the shard answers
/// PREDICT and MOTIFS byte-identically to the full snapshot (the predictor's
/// index is rebuilt from exactly the occurrences that involve owned
/// proteins, in the same first-seen order). Requires shard_id < num_shards.
Snapshot MakeShard(const Snapshot& full, uint32_t shard_id,
                   uint32_t num_shards);

/// Derives the packed artifacts (weights, informative classes, site index,
/// prediction context) from pipeline outputs. Deterministic: depends only on
/// the inputs, never on thread count.
Snapshot BuildSnapshot(Graph graph, Ontology ontology,
                       AnnotationTable annotations,
                       std::vector<LabeledMotif> motifs,
                       const InformativeConfig& informative_config);

/// Serializes `snapshot` to its canonical byte string (magic, version,
/// sections, trailing FNV-1a checksum). Byte-reproducible for equal inputs.
std::string EncodeSnapshot(const Snapshot& snapshot);

/// Parses a byte string produced by EncodeSnapshot. Corrupt input (short
/// file, bad magic, unsupported version, checksum mismatch, malformed or
/// out-of-range section data) yields a descriptive error Status.
StatusOr<Snapshot> DecodeSnapshot(const std::string& bytes);

/// Writes EncodeSnapshot(snapshot) to `path`.
Status WriteSnapshot(const Snapshot& snapshot, const std::string& path);

/// Reads and decodes `path`.
StatusOr<Snapshot> ReadSnapshot(const std::string& path);

}  // namespace lamo

#endif  // LAMO_SERVE_SNAPSHOT_H_
